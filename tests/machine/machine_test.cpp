#include "machine/machine.hpp"

#include <gtest/gtest.h>

#include "machine/host_reinit.hpp"

namespace sap {
namespace {

Machine make_machine(std::uint32_t pes, std::int64_t cache = 256) {
  MachineConfig config;
  config.num_pes = pes;
  config.cache_elements = cache;
  return Machine(config);
}

TEST(MachineTest, ReadByOwnerIsLocal) {
  Machine m = make_machine(4);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(128));
  const SaArray& a = m.arrays().at(id);
  EXPECT_EQ(m.account_read(/*reader=*/0, a, /*linear=*/5),
            AccessKind::kLocalRead);
  EXPECT_EQ(m.pe(0).counters().local_reads, 1u);
  EXPECT_EQ(m.network().stats().messages, 0u);
}

TEST(MachineTest, RemoteThenCached) {
  // §4: first off-owner touch fetches the page (two messages), later
  // touches of the same page hit the cache for free.
  Machine m = make_machine(4);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(128));
  const SaArray& a = m.arrays().at(id);
  // Element 32 lives on page 1 -> PE 1; PE 0 reads it.
  EXPECT_EQ(m.account_read(0, a, 32), AccessKind::kRemoteRead);
  EXPECT_EQ(m.network().stats().messages, 2u);  // PAGE_REQ + PAGE_REPLY
  EXPECT_EQ(m.network().stats().payload_elements, 32u);
  EXPECT_EQ(m.account_read(0, a, 40), AccessKind::kCachedRead);
  EXPECT_EQ(m.network().stats().messages, 2u);  // no new traffic
  EXPECT_EQ(m.pe(0).counters().remote_reads, 1u);
  EXPECT_EQ(m.pe(0).counters().cached_reads, 1u);
}

TEST(MachineTest, NoCacheMeansEveryOffOwnerReadIsRemote) {
  Machine m = make_machine(4, /*cache=*/0);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(128));
  const SaArray& a = m.arrays().at(id);
  EXPECT_EQ(m.account_read(0, a, 32), AccessKind::kRemoteRead);
  EXPECT_EQ(m.account_read(0, a, 33), AccessKind::kRemoteRead);
  EXPECT_EQ(m.pe(0).counters().remote_reads, 2u);
}

TEST(MachineTest, CachesArePerPe) {
  Machine m = make_machine(4);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(256));
  const SaArray& a = m.arrays().at(id);
  EXPECT_EQ(m.account_read(0, a, 32), AccessKind::kRemoteRead);
  // PE 2 has its own cache: same page is remote for it too.
  EXPECT_EQ(m.account_read(2, a, 32), AccessKind::kRemoteRead);
}

TEST(MachineTest, WriteIsAlwaysLocal) {
  Machine m = make_machine(4);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(128));
  const SaArray& a = m.arrays().at(id);
  m.account_write(m.owner_of(a, 64), a, 64);
  EXPECT_EQ(m.pe(2).counters().writes, 1u);
  EXPECT_EQ(m.network().stats().messages, 0u);
}

TEST(MachineTest, PartialFinalPagePayload) {
  Machine m = make_machine(2);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(100));
  const SaArray& a = m.arrays().at(id);
  // Page 3 holds 4 valid elements (the §2 example); fetching it ships 4.
  m.account_read(/*reader=*/0, a, 97);
  EXPECT_EQ(m.network().stats().payload_elements, 4u);
}

TEST(MachineTest, PartialPageRefetchExtension) {
  MachineConfig config;
  config.num_pes = 2;
  config.count_partial_page_refetch = true;
  Machine m(config);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(64));
  SaArray& a = m.arrays().at(id);
  // Page 1 (PE 1) is only partially defined: PE 0's reads keep refetching.
  a.write(32, 1.0);
  EXPECT_EQ(m.account_read(0, a, 32), AccessKind::kRemoteRead);
  EXPECT_EQ(m.account_read(0, a, 32), AccessKind::kRemoteRead);
  // Complete the page: now it caches.
  for (std::int64_t i = 33; i < 64; ++i) a.write(i, 0.0);
  EXPECT_EQ(m.account_read(0, a, 33), AccessKind::kRemoteRead);
  EXPECT_EQ(m.account_read(0, a, 34), AccessKind::kCachedRead);
}

TEST(MachineTest, InvalidateCachesDropsArrayEverywhere) {
  Machine m = make_machine(2);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(64));
  const SaArray& a = m.arrays().at(id);
  m.account_read(0, a, 32);  // PE 0 caches page 1
  m.invalidate_caches(id);
  EXPECT_EQ(m.account_read(0, a, 32), AccessKind::kRemoteRead);
}

TEST(MachineTest, SnapshotAggregates) {
  Machine m = make_machine(2);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(64));
  const SaArray& a = m.arrays().at(id);
  m.account_read(0, a, 0);
  m.account_read(0, a, 32);
  m.account_write(1, a, 32);
  const SimulationResult result = m.snapshot("test");
  EXPECT_EQ(result.totals.local_reads, 1u);
  EXPECT_EQ(result.totals.remote_reads, 1u);
  EXPECT_EQ(result.totals.writes, 1u);
  EXPECT_EQ(result.per_pe.size(), 2u);
  EXPECT_DOUBLE_EQ(result.remote_read_fraction(), 0.5);
  EXPECT_EQ(result.program_name, "test");
}

TEST(MachineTest, ResetStatsKeepsArrayContents) {
  Machine m = make_machine(2);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(64));
  SaArray& a = m.arrays().at(id);
  a.write(0, 5.0);
  m.account_read(0, a, 32);
  m.reset_stats();
  EXPECT_EQ(m.snapshot("x").totals.total_reads(), 0u);
  EXPECT_DOUBLE_EQ(a.read(0), 5.0);
}

}  // namespace
}  // namespace sap
