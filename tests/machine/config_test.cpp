#include "machine/config.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace sap {
namespace {

TEST(MachineConfigTest, DefaultsAreThePaperSetup) {
  const MachineConfig c;
  EXPECT_EQ(c.page_size, 32);
  EXPECT_EQ(c.cache_elements, 256);  // §6: "small fixed cache size"
  EXPECT_EQ(c.replacement, ReplacementPolicy::kLru);
  EXPECT_EQ(c.partition, PartitionKind::kModulo);
  EXPECT_NO_THROW(c.validate());
}

TEST(MachineConfigTest, FluentCopies) {
  const MachineConfig base;
  const auto c = base.with_pes(16).with_page_size(64).with_cache(0);
  EXPECT_EQ(c.num_pes, 16u);
  EXPECT_EQ(c.page_size, 64);
  EXPECT_EQ(c.cache_elements, 0);
  EXPECT_EQ(base.num_pes, 1u);  // original untouched
}

TEST(MachineConfigTest, RejectsInvalid) {
  EXPECT_THROW(MachineConfig{}.with_pes(0).validate(), ConfigError);
  EXPECT_THROW(MachineConfig{}.with_page_size(0).validate(), ConfigError);
  EXPECT_THROW(MachineConfig{}.with_cache(-1).validate(), ConfigError);
  // Cache smaller than one page cannot hold anything.
  EXPECT_THROW(MachineConfig{}.with_page_size(64).with_cache(32).validate(),
               ConfigError);
  // Hypercube needs power-of-two PEs.
  EXPECT_THROW(
      MachineConfig{}.with_pes(6).with_topology(TopologyKind::kHypercube)
          .validate(),
      ConfigError);
}

TEST(MachineConfigTest, ToStringMentionsKeyKnobs) {
  const auto s = MachineConfig{}.with_pes(8).to_string();
  EXPECT_NE(s.find("pes=8"), std::string::npos);
  EXPECT_NE(s.find("cache=256"), std::string::npos);
  EXPECT_NE(s.find("modulo"), std::string::npos);
}

}  // namespace
}  // namespace sap
