#include "machine/config.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace sap {
namespace {

TEST(MachineConfigTest, DefaultsAreThePaperSetup) {
  const MachineConfig c;
  EXPECT_EQ(c.page_size, 32);
  EXPECT_EQ(c.cache_elements, 256);  // §6: "small fixed cache size"
  EXPECT_EQ(c.replacement, ReplacementPolicy::kLru);
  EXPECT_EQ(c.partition, PartitionKind::kModulo);
  EXPECT_NO_THROW(c.validate());
}

TEST(MachineConfigTest, FluentCopies) {
  const MachineConfig base;
  const auto c = base.with_pes(16).with_page_size(64).with_cache(0);
  EXPECT_EQ(c.num_pes, 16u);
  EXPECT_EQ(c.page_size, 64);
  EXPECT_EQ(c.cache_elements, 0);
  EXPECT_EQ(base.num_pes, 1u);  // original untouched
}

TEST(MachineConfigTest, RejectsInvalid) {
  EXPECT_THROW(MachineConfig{}.with_pes(0).validate(), ConfigError);
  EXPECT_THROW(MachineConfig{}.with_page_size(0).validate(), ConfigError);
  EXPECT_THROW(MachineConfig{}.with_cache(-1).validate(), ConfigError);
  // Cache smaller than one page cannot hold anything.
  EXPECT_THROW(MachineConfig{}.with_page_size(64).with_cache(32).validate(),
               ConfigError);
  // Hypercube needs power-of-two PEs.
  EXPECT_THROW(
      MachineConfig{}.with_pes(6).with_topology(TopologyKind::kHypercube)
          .validate(),
      ConfigError);
}

TEST(MachineConfigTest, ToStringMentionsKeyKnobs) {
  const auto s = MachineConfig{}.with_pes(8).to_string();
  EXPECT_NE(s.find("pes=8"), std::string::npos);
  EXPECT_NE(s.find("cache=256"), std::string::npos);
  EXPECT_NE(s.find("modulo"), std::string::npos);
}

TEST(MachineConfigTest, PerArrayFluentHelpers) {
  const MachineConfig base;
  const auto c =
      base.with_block_cyclic_pages(8)
          .with_array_partition("B", PartitionKind::kBlock)
          .with_array_partition("A", PartitionKind::kBlockCyclic, 4);
  EXPECT_EQ(c.block_cyclic_pages, 8);
  EXPECT_TRUE(c.has_array_partition("A"));
  EXPECT_TRUE(c.has_array_partition("B"));
  EXPECT_FALSE(c.has_array_partition("C"));
  EXPECT_TRUE(base.per_array.empty());  // original untouched
  // Overrides are kept name-sorted; replacing updates in place.
  ASSERT_EQ(c.per_array.size(), 2u);
  EXPECT_EQ(c.per_array[0].array, "A");
  EXPECT_EQ(c.per_array[1].array, "B");
  const auto c2 = c.with_array_partition("B", PartitionKind::kModulo);
  ASSERT_EQ(c2.per_array.size(), 2u);
  EXPECT_EQ(c2.partition_spec_for("B").partition, PartitionKind::kModulo);
  const auto c3 = c2.without_array_partition("B");
  EXPECT_FALSE(c3.has_array_partition("B"));
  // Lookup falls back to the machine-wide default spec.
  EXPECT_EQ(c3.partition_spec_for("B").partition, PartitionKind::kModulo);
  EXPECT_EQ(c3.partition_spec_for("A").partition,
            PartitionKind::kBlockCyclic);
  EXPECT_EQ(c3.partition_spec_for("A").block_cyclic_pages, 4);
}

TEST(MachineConfigTest, PerArrayValidation) {
  EXPECT_THROW(MachineConfig{}
                   .with_array_partition("A", PartitionKind::kBlockCyclic, 0)
                   .validate(),
               ConfigError);
  MachineConfig dup;
  dup.per_array.push_back({"A", {PartitionKind::kBlock, 0}});
  dup.per_array.push_back({"A", {PartitionKind::kModulo, 0}});
  EXPECT_THROW(dup.validate(), ConfigError);
  MachineConfig unnamed;
  unnamed.per_array.push_back({"", {PartitionKind::kBlock, 0}});
  EXPECT_THROW(unnamed.validate(), ConfigError);
}

TEST(MachineConfigTest, ToStringDistinguishesWhatIdentityMustDistinguish) {
  // config_identity() is MachineConfig::to_string(); any pair of configs
  // that simulate differently must stringify differently.  The canonical
  // memo-soundness cases:
  const MachineConfig base = MachineConfig{}.with_pes(8);
  const auto bc2 =
      base.with_partition(PartitionKind::kBlockCyclic).with_block_cyclic_pages(2);
  const auto bc4 =
      base.with_partition(PartitionKind::kBlockCyclic).with_block_cyclic_pages(4);
  EXPECT_NE(bc2.to_string(), bc4.to_string());

  const auto with_override =
      base.with_array_partition("A", PartitionKind::kBlock);
  EXPECT_NE(base.to_string(), with_override.to_string());
  const auto other_block =
      base.with_array_partition("A", PartitionKind::kBlockCyclic, 2);
  const auto other_block4 =
      base.with_array_partition("A", PartitionKind::kBlockCyclic, 4);
  EXPECT_NE(other_block.to_string(), other_block4.to_string());

  MachineConfig partial = base;
  partial.count_partial_page_refetch = true;
  EXPECT_NE(base.to_string(), partial.to_string());

  MachineConfig seeded = base;
  seeded.seed = MachineConfig{}.seed + 1;
  EXPECT_NE(base.to_string(), seeded.to_string());

  // And what simulation cannot see must NOT split the memo key: the
  // block-cyclic block is meaningless under modulo/block.
  const auto block_a = base.with_array_partition(
      "A", ArrayPartitionSpec{PartitionKind::kBlock, 2});
  const auto block_b = base.with_array_partition(
      "A", ArrayPartitionSpec{PartitionKind::kBlock, 4});
  EXPECT_EQ(block_a.to_string(), block_b.to_string());
}

}  // namespace
}  // namespace sap
