#include "machine/host_collect.hpp"

#include <gtest/gtest.h>

#include "machine/host_reinit.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

Machine make_machine(std::uint32_t pes) {
  MachineConfig config;
  config.num_pes = pes;
  return Machine(config);
}

TEST(HostCollectTest, SumOfKnownValues) {
  Machine m = make_machine(4);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(128));
  SaArray& a = m.arrays().at(id);
  double expected = 0.0;
  for (std::int64_t i = 0; i < 128; ++i) {
    a.initialize(i, static_cast<double>(i));
    expected += static_cast<double>(i);
  }
  const CollectResult result = host_collect(m, a, CollectOp::kSum);
  EXPECT_DOUBLE_EQ(result.value, expected);
}

TEST(HostCollectTest, MinAndMax) {
  Machine m = make_machine(2);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(64));
  SaArray& a = m.arrays().at(id);
  for (std::int64_t i = 0; i < 64; ++i) {
    a.initialize(i, static_cast<double>((i * 37) % 64));
  }
  EXPECT_DOUBLE_EQ(host_collect(m, a, CollectOp::kMin).value, 0.0);
  EXPECT_DOUBLE_EQ(host_collect(m, a, CollectOp::kMax).value, 63.0);
}

TEST(HostCollectTest, AllReadsAreLocal) {
  // The whole point of subrange collection (§9): every PE folds only the
  // elements it owns, so no page ever travels.
  Machine m = make_machine(8);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(512));
  SaArray& a = m.arrays().at(id);
  a.initialize_all(1.0);
  const CollectResult result = host_collect(m, a, CollectOp::kSum);
  EXPECT_DOUBLE_EQ(result.value, 512.0);
  const SimulationResult snapshot = m.snapshot("collect");
  EXPECT_EQ(snapshot.totals.remote_reads, 0u);
  EXPECT_EQ(snapshot.totals.local_reads, 512u);
}

TEST(HostCollectTest, MessageCountIsContributorsMinusHost) {
  Machine m = make_machine(8);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(512));
  SaArray& a = m.arrays().at(id);
  a.initialize_all(2.0);
  const CollectResult result = host_collect(m, a, CollectOp::kSum);
  // 512 elements = 16 pages over 8 PEs: all contribute; host is silent.
  EXPECT_EQ(result.messages, 7u);
}

TEST(HostCollectTest, SilentPesWhenArraySmall) {
  Machine m = make_machine(8);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(64));
  SaArray& a = m.arrays().at(id);
  a.initialize_all(1.0);
  // 2 pages -> PEs 0 and 1 own data; host of array 0 is PE 0.
  const CollectResult result = host_collect(m, a, CollectOp::kSum);
  EXPECT_EQ(result.messages, 1u);
  EXPECT_EQ(result.per_pe_elements[0], 32);
  EXPECT_EQ(result.per_pe_elements[1], 32);
  EXPECT_EQ(result.per_pe_elements[2], 0);
}

TEST(HostCollectTest, SkipsUndefinedCells) {
  Machine m = make_machine(2);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(64));
  SaArray& a = m.arrays().at(id);
  a.initialize(3, 5.0);
  a.initialize(40, 7.0);
  EXPECT_DOUBLE_EQ(host_collect(m, a, CollectOp::kSum).value, 12.0);
}

TEST(HostCollectTest, CollectIntoWritesOnHost) {
  Machine m = make_machine(4);
  const ArrayId src = m.arrays().declare("A", ArrayShape::vector_1based(128));
  const ArrayId dst = m.arrays().declare("R", ArrayShape::vector_1based(64));
  SaArray& a = m.arrays().at(src);
  SaArray& r = m.arrays().at(dst);
  a.initialize_all(1.0);
  // Host of A (array id 0) is PE 0, which owns R's page 0: element 0 is a
  // legal target, element 32 (page 1 -> PE 1) is not.
  const CollectResult result =
      host_collect_into(m, a, CollectOp::kSum, r, /*target_linear=*/0);
  EXPECT_DOUBLE_EQ(result.value, 128.0);
  EXPECT_DOUBLE_EQ(r.read(0), 128.0);
  // Wrong placement is rejected, not silently mis-attributed.
  EXPECT_THROW(host_collect_into(m, a, CollectOp::kSum, r, 32), ConfigError);
}

TEST(HostCollectTest, BeatsOwnerComputesOnCommunication) {
  // Owner-computes dot product: one PE reads everything (7/8 remote
  // before caching).  Host collection: zero remote reads + 7 messages.
  Machine m = make_machine(8);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(1024));
  SaArray& a = m.arrays().at(id);
  a.initialize_all(1.0);

  const CollectResult collect = host_collect(m, a, CollectOp::kSum);
  const std::uint64_t collect_msgs = collect.messages;

  // Owner-computes equivalent: PE 0 reads every element (28 of 32 pages
  // are foreign, one fetch each = 56 messages with the cache).
  m.reset_stats();
  for (std::int64_t i = 0; i < 1024; ++i) m.account_read(0, a, i);
  const std::uint64_t owner_msgs = m.network().stats().messages;
  EXPECT_GT(owner_msgs, 5 * collect_msgs);
}

}  // namespace
}  // namespace sap
