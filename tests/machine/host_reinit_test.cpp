#include "machine/host_reinit.hpp"

#include <gtest/gtest.h>

#include "machine/machine.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

Machine make_machine(std::uint32_t pes) {
  MachineConfig config;
  config.num_pes = pes;
  return Machine(config);
}

TEST(HostReinitTest, HostsDealtRoundRobin) {
  // §5: "the compiler ensures that the host processors are evenly
  // distributed among the arrays."
  Machine m = make_machine(3);
  EXPECT_EQ(m.reinit().host_of(0), 0u);
  EXPECT_EQ(m.reinit().host_of(1), 1u);
  EXPECT_EQ(m.reinit().host_of(2), 2u);
  EXPECT_EQ(m.reinit().host_of(3), 0u);
}

TEST(HostReinitTest, CompletesOnLastRequest) {
  Machine m = make_machine(4);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(64));
  m.arrays().at(id).write(0, 1.0);

  EXPECT_FALSE(m.reinit().request_reinit(1, id));
  EXPECT_FALSE(m.reinit().request_reinit(2, id));
  EXPECT_EQ(m.reinit().pending_requests(id), 2u);
  EXPECT_FALSE(m.reinit().request_reinit(3, id));
  // Host (PE 0) asks last; re-init fires.
  EXPECT_TRUE(m.reinit().request_reinit(0, id));
  EXPECT_EQ(m.arrays().at(id).generation(), 1u);
  EXPECT_EQ(m.arrays().at(id).defined_count(), 0);
  EXPECT_EQ(m.reinit().rounds_completed(id), 1u);
}

TEST(HostReinitTest, MessageAccounting) {
  // N-1 requests travel to the host (its own is local) and N-1 grants
  // travel back out (§5's gather + broadcast).
  Machine m = make_machine(4);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(64));
  for (PeId pe = 0; pe < 4; ++pe) m.reinit().request_reinit(pe, id);
  EXPECT_EQ(m.reinit().protocol_messages(), 6u);  // 3 requests + 3 grants
  EXPECT_EQ(m.network().stats().control_messages, 6u);
}

TEST(HostReinitTest, DoubleRequestInOneRoundIsProtocolViolation) {
  Machine m = make_machine(3);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(8));
  m.reinit().request_reinit(1, id);
  EXPECT_THROW(m.reinit().request_reinit(1, id), Error);
}

TEST(HostReinitTest, CachesInvalidatedOnReinit) {
  Machine m = make_machine(2);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(64));
  const SaArray& a = m.arrays().at(id);
  m.account_read(0, a, 32);  // PE 0 caches page 1 (generation 0)
  m.reinit().request_reinit(0, id);
  m.reinit().request_reinit(1, id);
  // Stale page must not hit, by eager invalidation and generation tag.
  EXPECT_EQ(m.account_read(0, a, 32), AccessKind::kRemoteRead);
}

TEST(HostReinitTest, MultipleRoundsSequence) {
  Machine m = make_machine(2);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(8));
  for (int round = 1; round <= 3; ++round) {
    m.arrays().at(id).write(0, round);
    m.reinit().request_reinit(0, id);
    m.reinit().request_reinit(1, id);
    EXPECT_EQ(m.reinit().rounds_completed(id),
              static_cast<std::uint64_t>(round));
  }
  EXPECT_EQ(m.arrays().at(id).generation(), 3u);
}

TEST(HostReinitTest, SinglePeDegenerateCase) {
  Machine m = make_machine(1);
  const ArrayId id = m.arrays().declare("A", ArrayShape::vector_1based(8));
  EXPECT_TRUE(m.reinit().request_reinit(0, id));
  EXPECT_EQ(m.reinit().protocol_messages(), 0u);  // host talks to itself
}

}  // namespace
}  // namespace sap
