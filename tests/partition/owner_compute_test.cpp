#include "partition/owner_compute.hpp"

#include <gtest/gtest.h>

namespace sap {
namespace {

TEST(OwnerComputeTest, ScreeningMatchesOwnership) {
  // §3: "screening the array indices so that the right hand side ... is
  // evaluated only for a given PE's subranges."  The fast enumeration must
  // agree with per-element screening.
  const Partitioner part(make_partition_scheme(PartitionKind::kModulo), 32, 4);
  const SaArray a(0, "X", ArrayShape::vector_1based(200));

  std::int64_t total = 0;
  for (PeId pe = 0; pe < 4; ++pe) {
    const auto owned =
        owned_iterations_affine(part, a, /*stride=*/1, /*offset=*/0,
                                /*lo=*/1, /*hi=*/200, /*step=*/1, pe);
    total += static_cast<std::int64_t>(owned.size());
    for (const std::int64_t k : owned) {
      EXPECT_EQ(part.owner_of_element(a, k - 1), pe);
    }
  }
  EXPECT_EQ(total, 200);
}

TEST(OwnerComputeTest, StridedLoop) {
  const Partitioner part(make_partition_scheme(PartitionKind::kModulo), 8, 2);
  const SaArray a(0, "X", ArrayShape::vector_1based(64));
  const auto pe0 =
      owned_iterations_affine(part, a, 2, 0, 1, 32, 2, /*pe=*/0);
  for (const std::int64_t k : pe0) {
    EXPECT_EQ(part.owner_of_element(a, 2 * k - 1), 0u);
  }
}

TEST(OwnerComputeTest, OutOfRangeIterationsSkipped) {
  const Partitioner part(make_partition_scheme(PartitionKind::kModulo), 8, 2);
  const SaArray a(0, "X", ArrayShape::vector_1based(16));
  // k + 10 exceeds the array for k > 6: those iterations belong to no PE.
  std::int64_t total = 0;
  for (PeId pe = 0; pe < 2; ++pe) {
    total += static_cast<std::int64_t>(
        owned_iterations_affine(part, a, 1, 10, 1, 16, 1, pe).size());
  }
  EXPECT_EQ(total, 6);
}

TEST(OwnerComputeTest, ExecutingPeHelper) {
  const Partitioner part(make_partition_scheme(PartitionKind::kModulo), 32, 4);
  const SaArray a(0, "X", ArrayShape::vector_1based(128));
  EXPECT_EQ(executing_pe(part, a, 0), 0u);
  EXPECT_EQ(executing_pe(part, a, 33), 1u);
}

}  // namespace
}  // namespace sap
