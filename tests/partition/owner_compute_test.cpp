#include "partition/owner_compute.hpp"

#include <gtest/gtest.h>

namespace sap {
namespace {

TEST(OwnerComputeTest, ScreeningMatchesOwnership) {
  // §3: "screening the array indices so that the right hand side ... is
  // evaluated only for a given PE's subranges."  The fast enumeration must
  // agree with per-element screening.
  const Partitioner part(make_partition_scheme(PartitionKind::kModulo), 32, 4);
  const SaArray a(0, "X", ArrayShape::vector_1based(200));

  std::int64_t total = 0;
  for (PeId pe = 0; pe < 4; ++pe) {
    const auto owned =
        owned_iterations_affine(part, a, /*stride=*/1, /*offset=*/0,
                                /*lo=*/1, /*hi=*/200, /*step=*/1, pe);
    total += static_cast<std::int64_t>(owned.size());
    for (const std::int64_t k : owned) {
      EXPECT_EQ(part.owner_of_element(a, k - 1), pe);
    }
  }
  EXPECT_EQ(total, 200);
}

TEST(OwnerComputeTest, StridedLoop) {
  const Partitioner part(make_partition_scheme(PartitionKind::kModulo), 8, 2);
  const SaArray a(0, "X", ArrayShape::vector_1based(64));
  const auto pe0 =
      owned_iterations_affine(part, a, 2, 0, 1, 32, 2, /*pe=*/0);
  for (const std::int64_t k : pe0) {
    EXPECT_EQ(part.owner_of_element(a, 2 * k - 1), 0u);
  }
}

TEST(OwnerComputeTest, OutOfRangeIterationsSkipped) {
  const Partitioner part(make_partition_scheme(PartitionKind::kModulo), 8, 2);
  const SaArray a(0, "X", ArrayShape::vector_1based(16));
  // k + 10 exceeds the array for k > 6: those iterations belong to no PE.
  std::int64_t total = 0;
  for (PeId pe = 0; pe < 2; ++pe) {
    total += static_cast<std::int64_t>(
        owned_iterations_affine(part, a, 1, 10, 1, 16, 1, pe).size());
  }
  EXPECT_EQ(total, 6);
}

TEST(OwnerComputeTest, ExecutingPeHelper) {
  const Partitioner part(make_partition_scheme(PartitionKind::kModulo), 32, 4);
  const SaArray a(0, "X", ArrayShape::vector_1based(128));
  EXPECT_EQ(executing_pe(part, a, 0), 0u);
  EXPECT_EQ(executing_pe(part, a, 33), 1u);
}

// Edge cases cross-checked against the screen-everything path: the fast
// enumeration and per-element screening must agree on exactly which
// in-bounds iterations each PE owns, and together cover each exactly once.
namespace {

void expect_matches_screening(const Partitioner& part, const SaArray& a,
                              std::int64_t stride, std::int64_t offset,
                              std::int64_t lo, std::int64_t hi,
                              std::int64_t step) {
  const std::int64_t lower = a.shape().dims()[0].lower;
  std::int64_t covered = 0;
  for (PeId pe = 0; pe < part.num_pes(); ++pe) {
    const auto owned =
        owned_iterations_affine(part, a, stride, offset, lo, hi, step, pe);
    covered += static_cast<std::int64_t>(owned.size());
    for (const std::int64_t k : owned) {
      const std::int64_t linear = stride * k + offset - lower;
      ASSERT_GE(linear, 0);
      ASSERT_LT(linear, a.element_count());
      EXPECT_EQ(part.owner_of_element(a, linear), pe)
          << "k=" << k << " stride=" << stride << " offset=" << offset;
    }
  }
  // Screen-everything: count the in-bounds iterations directly.
  std::int64_t in_bounds = 0;
  for (std::int64_t k = lo; k <= hi; k += step) {
    const std::int64_t linear = stride * k + offset - lower;
    if (linear >= 0 && linear < a.element_count()) ++in_bounds;
  }
  EXPECT_EQ(covered, in_bounds);
}

}  // namespace

TEST(OwnerComputeTest, StrideLargerThanPageSize) {
  // Stride 40 over 8-element pages: every iteration jumps past at least
  // four page boundaries, so ownership follows no simple run pattern.
  for (const PartitionKind kind :
       {PartitionKind::kModulo, PartitionKind::kBlock,
        PartitionKind::kBlockCyclic}) {
    const Partitioner part(make_partition_scheme(kind), 8, 4);
    const SaArray a(0, "X", ArrayShape::vector_1based(1000));
    expect_matches_screening(part, a, /*stride=*/40, /*offset=*/0,
                             /*lo=*/1, /*hi=*/24, /*step=*/1);
  }
}

TEST(OwnerComputeTest, NegativeOffsetSkipsUnderflow) {
  // k - 12 is below the array for small k: those iterations belong to no
  // PE, exactly like the over-bounds case.
  const Partitioner part(make_partition_scheme(PartitionKind::kModulo), 8, 3);
  const SaArray a(0, "X", ArrayShape::vector_1based(64));
  expect_matches_screening(part, a, /*stride=*/1, /*offset=*/-12,
                           /*lo=*/1, /*hi=*/64, /*step=*/1);
  // The first 12 iterations (k=1..12 => linear < 0) are skipped.
  std::int64_t total = 0;
  for (PeId pe = 0; pe < 3; ++pe) {
    total += static_cast<std::int64_t>(
        owned_iterations_affine(part, a, 1, -12, 1, 64, 1, pe).size());
  }
  EXPECT_EQ(total, 52);
}

TEST(OwnerComputeTest, NegativeStrideWalksBackwards) {
  const Partitioner part(make_partition_scheme(PartitionKind::kBlock), 8, 4);
  const SaArray a(0, "X", ArrayShape::vector_1based(100));
  expect_matches_screening(part, a, /*stride=*/-2, /*offset=*/100,
                           /*lo=*/1, /*hi=*/60, /*step=*/1);
}

TEST(OwnerComputeTest, PartialFinalPage) {
  // 21 elements over 8-element pages: the last page holds 5 elements.
  // Under block partitioning the page count (3) drives the division, and
  // the partial page's elements must still screen to its owner.
  for (const PartitionKind kind :
       {PartitionKind::kModulo, PartitionKind::kBlock,
        PartitionKind::kBlockCyclic}) {
    const Partitioner part(make_partition_scheme(kind), 8, 2);
    const SaArray a(0, "X", ArrayShape::vector_1based(21));
    expect_matches_screening(part, a, /*stride=*/1, /*offset=*/0,
                             /*lo=*/1, /*hi=*/21, /*step=*/1);
  }
}

TEST(OwnerComputeTest, SinglePeOwnsEverything) {
  for (const PartitionKind kind :
       {PartitionKind::kModulo, PartitionKind::kBlock,
        PartitionKind::kBlockCyclic}) {
    const Partitioner part(make_partition_scheme(kind), 32, 1);
    const SaArray a(0, "X", ArrayShape::vector_1based(77));
    const auto owned =
        owned_iterations_affine(part, a, 1, 0, 1, 77, 1, /*pe=*/0);
    EXPECT_EQ(owned.size(), 77u);
    expect_matches_screening(part, a, 3, -2, 1, 40, 2);
  }
}

}  // namespace
}  // namespace sap
