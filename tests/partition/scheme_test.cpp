#include "partition/scheme.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace sap {
namespace {

TEST(ModuloSchemeTest, PaperRule) {
  // §2: "A page p is allocated to the local memory of PE P if p = P mod N."
  const auto scheme = make_partition_scheme(PartitionKind::kModulo);
  EXPECT_EQ(scheme->owner(0, 100, 4), 0u);
  EXPECT_EQ(scheme->owner(1, 100, 4), 1u);
  EXPECT_EQ(scheme->owner(5, 100, 4), 1u);
  EXPECT_EQ(scheme->owner(7, 100, 4), 3u);
}

TEST(ModuloSchemeTest, PaperExample100Elements4Pes) {
  // §2's worked example: 100-element arrays, page size 32, 4 PEs:
  // PEs 0..2 hold one full page, PE 3 the 4-element partial page.
  const auto scheme = make_partition_scheme(PartitionKind::kModulo);
  for (PageIndex p = 0; p < 4; ++p) {
    EXPECT_EQ(scheme->owner(p, 4, 4), static_cast<PeId>(p));
  }
}

TEST(BlockSchemeTest, ContiguousRuns) {
  const auto scheme = make_partition_scheme(PartitionKind::kBlock);
  // 10 pages over 3 PEs: 4 + 3 + 3.
  std::vector<PeId> owners;
  for (PageIndex p = 0; p < 10; ++p) owners.push_back(scheme->owner(p, 10, 3));
  EXPECT_EQ(owners,
            (std::vector<PeId>{0, 0, 0, 0, 1, 1, 1, 2, 2, 2}));
}

TEST(BlockCyclicSchemeTest, DealsBlocks) {
  const auto scheme = make_partition_scheme(PartitionKind::kBlockCyclic, 2);
  std::vector<PeId> owners;
  for (PageIndex p = 0; p < 8; ++p) owners.push_back(scheme->owner(p, 8, 2));
  EXPECT_EQ(owners, (std::vector<PeId>{0, 0, 1, 1, 0, 0, 1, 1}));
}

TEST(SchemeNamesTest, ToString) {
  EXPECT_EQ(to_string(PartitionKind::kModulo), "modulo");
  EXPECT_EQ(to_string(PartitionKind::kBlock), "block");
  EXPECT_EQ(to_string(PartitionKind::kBlockCyclic), "block-cyclic");
  EXPECT_EQ(make_partition_scheme(PartitionKind::kBlockCyclic, 4)->name(),
            "block-cyclic(b=4)");
}

struct SchemeCase {
  PartitionKind kind;
  std::int64_t pages;
  std::uint32_t pes;
};

class SchemeProperty : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(SchemeProperty, TotalAndBalanced) {
  // Every page has exactly one owner in range, and no PE owns more than
  // ceil(pages/pes) + small slack (block-cyclic rounds by block).
  const auto [kind, pages, pes] = GetParam();
  const auto scheme = make_partition_scheme(kind, 2);
  std::map<PeId, std::int64_t> counts;
  for (PageIndex p = 0; p < pages; ++p) {
    const PeId owner = scheme->owner(p, pages, pes);
    ASSERT_LT(owner, pes);
    ++counts[owner];
  }
  std::int64_t total = 0;
  const std::int64_t fair = (pages + pes - 1) / pes;
  for (const auto& [pe, count] : counts) {
    total += count;
    EXPECT_LE(count, fair + 2) << to_string(kind) << " pe=" << pe;
  }
  EXPECT_EQ(total, pages);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchemeProperty,
    ::testing::Values(SchemeCase{PartitionKind::kModulo, 100, 4},
                      SchemeCase{PartitionKind::kModulo, 7, 16},
                      SchemeCase{PartitionKind::kModulo, 1024, 64},
                      SchemeCase{PartitionKind::kBlock, 100, 4},
                      SchemeCase{PartitionKind::kBlock, 7, 16},
                      SchemeCase{PartitionKind::kBlock, 1024, 64},
                      SchemeCase{PartitionKind::kBlockCyclic, 100, 4},
                      SchemeCase{PartitionKind::kBlockCyclic, 7, 16},
                      SchemeCase{PartitionKind::kBlockCyclic, 1024, 64}));

}  // namespace
}  // namespace sap
