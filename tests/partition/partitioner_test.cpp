#include "partition/partitioner.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace sap {
namespace {

SaArray make_array(std::int64_t n) {
  return SaArray(0, "A", ArrayShape::vector_1based(n));
}

Partitioner make_partitioner(std::uint32_t pes, std::int64_t ps = 32,
                             PartitionKind kind = PartitionKind::kModulo) {
  return Partitioner(make_partition_scheme(kind), ps, pes);
}

TEST(PartitionerTest, OwnerOfElementFollowsPage) {
  const auto part = make_partitioner(4);
  const auto a = make_array(100);
  EXPECT_EQ(part.owner_of_element(a, 0), 0u);
  EXPECT_EQ(part.owner_of_element(a, 31), 0u);
  EXPECT_EQ(part.owner_of_element(a, 32), 1u);
  EXPECT_EQ(part.owner_of_element(a, 96), 3u);  // partial page -> PE 3 (§2)
}

TEST(PartitionerTest, PagesOwnedByCoverDisjointly) {
  const auto part = make_partitioner(3);
  const auto a = make_array(300);  // 10 pages
  std::int64_t total = 0;
  for (PeId pe = 0; pe < 3; ++pe) {
    total += static_cast<std::int64_t>(part.pages_owned_by(a, pe).size());
  }
  EXPECT_EQ(total, 10);
}

TEST(PartitionerTest, ElementsOwnedAccountsPartialPage) {
  // §2 example: 100 elements, ps 32, 4 PEs -> 32/32/32/4.
  const auto part = make_partitioner(4);
  const auto a = make_array(100);
  EXPECT_EQ(part.elements_owned_by(a, 0), 32);
  EXPECT_EQ(part.elements_owned_by(a, 1), 32);
  EXPECT_EQ(part.elements_owned_by(a, 2), 32);
  EXPECT_EQ(part.elements_owned_by(a, 3), 4);
}

TEST(PartitionerTest, SinglePeOwnsEverything) {
  const auto part = make_partitioner(1);
  const auto a = make_array(100);
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(part.owner_of_element(a, i), 0u);
  }
}

TEST(PartitionerTest, ValidatesConfig) {
  EXPECT_THROW(Partitioner(nullptr, 32, 4), ConfigError);
  EXPECT_THROW(make_partitioner(0), ConfigError);
  EXPECT_THROW(make_partitioner(4, 0), ConfigError);
}

class ElementCover : public ::testing::TestWithParam<
                         std::tuple<std::uint32_t, std::int64_t, int>> {};

TEST_P(ElementCover, EveryElementOwnedOnce) {
  const auto [pes, ps, kind_idx] = GetParam();
  const auto kind = static_cast<PartitionKind>(kind_idx);
  const Partitioner part(make_partition_scheme(kind, 2), ps, pes);
  const auto a = make_array(517);  // prime-ish, forces a partial page
  std::int64_t total = 0;
  for (PeId pe = 0; pe < pes; ++pe) {
    total += part.elements_owned_by(a, pe);
  }
  EXPECT_EQ(total, 517);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ElementCover,
    ::testing::Combine(::testing::Values(1u, 2u, 5u, 16u, 64u),
                       ::testing::Values<std::int64_t>(8, 32, 64, 256),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace sap
