#include "partition/partitioner.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace sap {
namespace {

SaArray make_array(std::int64_t n) {
  return SaArray(0, "A", ArrayShape::vector_1based(n));
}

Partitioner make_partitioner(std::uint32_t pes, std::int64_t ps = 32,
                             PartitionKind kind = PartitionKind::kModulo) {
  return Partitioner(make_partition_scheme(kind), ps, pes);
}

TEST(PartitionerTest, OwnerOfElementFollowsPage) {
  const auto part = make_partitioner(4);
  const auto a = make_array(100);
  EXPECT_EQ(part.owner_of_element(a, 0), 0u);
  EXPECT_EQ(part.owner_of_element(a, 31), 0u);
  EXPECT_EQ(part.owner_of_element(a, 32), 1u);
  EXPECT_EQ(part.owner_of_element(a, 96), 3u);  // partial page -> PE 3 (§2)
}

TEST(PartitionerTest, PagesOwnedByCoverDisjointly) {
  const auto part = make_partitioner(3);
  const auto a = make_array(300);  // 10 pages
  std::int64_t total = 0;
  for (PeId pe = 0; pe < 3; ++pe) {
    total += static_cast<std::int64_t>(part.pages_owned_by(a, pe).size());
  }
  EXPECT_EQ(total, 10);
}

TEST(PartitionerTest, ElementsOwnedAccountsPartialPage) {
  // §2 example: 100 elements, ps 32, 4 PEs -> 32/32/32/4.
  const auto part = make_partitioner(4);
  const auto a = make_array(100);
  EXPECT_EQ(part.elements_owned_by(a, 0), 32);
  EXPECT_EQ(part.elements_owned_by(a, 1), 32);
  EXPECT_EQ(part.elements_owned_by(a, 2), 32);
  EXPECT_EQ(part.elements_owned_by(a, 3), 4);
}

TEST(PartitionerTest, SinglePeOwnsEverything) {
  const auto part = make_partitioner(1);
  const auto a = make_array(100);
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(part.owner_of_element(a, i), 0u);
  }
}

TEST(PartitionerTest, ValidatesConfig) {
  EXPECT_THROW(Partitioner(nullptr, 32, 4), ConfigError);
  EXPECT_THROW(make_partitioner(0), ConfigError);
  EXPECT_THROW(make_partitioner(4, 0), ConfigError);
}

SaArray make_named_array(const std::string& name, std::int64_t n) {
  return SaArray(0, name, ArrayShape::vector_1based(n));
}

TEST(PartitionerTest, PerArrayAssignmentResolvesByName) {
  MachineConfig config;
  config.num_pes = 4;
  config.page_size = 32;
  config = config.with_array_partition("B", PartitionKind::kBlock);
  const Partitioner part(config);
  const auto a = make_named_array("A", 256);  // 8 pages, default modulo
  const auto b = make_named_array("B", 256);  // 8 pages, block override
  // Modulo: page p -> p % 4.  Block: 2 pages per PE.
  EXPECT_EQ(part.owner_of_element(a, 32), 1u);   // page 1, modulo
  EXPECT_EQ(part.owner_of_element(b, 32), 0u);   // page 1, block
  EXPECT_EQ(part.owner_of_element(a, 224), 3u);  // page 7, modulo
  EXPECT_EQ(part.owner_of_element(b, 224), 3u);  // page 7, block
  // scheme() still reports the machine-wide default.
  EXPECT_EQ(part.scheme().kind(), PartitionKind::kModulo);
  EXPECT_EQ(part.scheme_for(a).kind(), PartitionKind::kModulo);
  EXPECT_EQ(part.scheme_for(b).kind(), PartitionKind::kBlock);
}

TEST(PartitionerTest, PartialFinalPageOwnershipUnderMixedSchemes) {
  // §2's partial-page rule per array, per scheme: 100 elements at ps 32
  // on 4 PEs is pages 0..3 with page 3 partial (4 elements).
  MachineConfig config;
  config.num_pes = 4;
  config.page_size = 32;
  config = config.with_array_partition("B", PartitionKind::kBlock)
               .with_array_partition("C", PartitionKind::kBlockCyclic, 2);
  const Partitioner part(config);
  const auto a = make_named_array("A", 100);  // modulo: 32/32/32/4
  EXPECT_EQ(part.elements_owned_by(a, 3), 4);
  const auto b = make_named_array("B", 100);  // block: one page per PE
  EXPECT_EQ(part.elements_owned_by(b, 3), 4);
  const auto c = make_named_array("C", 100);  // BC(2): pages 01/23 -> PE 0/1
  EXPECT_EQ(part.elements_owned_by(c, 0), 64);
  EXPECT_EQ(part.elements_owned_by(c, 1), 36);
  EXPECT_EQ(part.elements_owned_by(c, 2), 0);
  // Every element is still owned exactly once under every mix.
  for (const SaArray* arr : {&a, &b, &c}) {
    std::int64_t total = 0;
    for (PeId pe = 0; pe < 4; ++pe) total += part.elements_owned_by(*arr, pe);
    EXPECT_EQ(total, 100) << arr->name();
  }
}

TEST(PartitionerTest, ResolutionHintSurvivesPartitionerPingPong) {
  // The memoized per-array resolution is tagged with its owning
  // Partitioner: one SaArray queried through two machines alternately
  // must resolve correctly every time, not reuse the other's cached
  // scheme.
  MachineConfig block_config;
  block_config.num_pes = 4;
  block_config.page_size = 32;
  block_config =
      block_config.with_array_partition("A", PartitionKind::kBlock);
  const Partitioner modulo_part(
      make_partition_scheme(PartitionKind::kModulo), 32, 4);
  const Partitioner block_part(block_config);
  const auto a = make_named_array("A", 256);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(modulo_part.owner_of_element(a, 32), 1u);  // page 1, modulo
    EXPECT_EQ(block_part.owner_of_element(a, 32), 0u);   // page 1, block
  }
}

TEST(PartitionerTest, ConfigConstructorValidates) {
  MachineConfig config;
  config.num_pes = 4;
  config = config.with_array_partition("A", PartitionKind::kBlockCyclic, 0);
  // MachineConfig::validate() reports this as ConfigError up front; the
  // scheme factory's own check is the backstop for direct construction.
  EXPECT_THROW(config.validate(), ConfigError);
  EXPECT_THROW(Partitioner{config}, Error);
}

class ElementCover : public ::testing::TestWithParam<
                         std::tuple<std::uint32_t, std::int64_t, int>> {};

TEST_P(ElementCover, EveryElementOwnedOnce) {
  const auto [pes, ps, kind_idx] = GetParam();
  const auto kind = static_cast<PartitionKind>(kind_idx);
  const Partitioner part(make_partition_scheme(kind, 2), ps, pes);
  const auto a = make_array(517);  // prime-ish, forces a partial page
  std::int64_t total = 0;
  for (PeId pe = 0; pe < pes; ++pe) {
    total += part.elements_owned_by(a, pe);
  }
  EXPECT_EQ(total, 517);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ElementCover,
    ::testing::Combine(::testing::Values(1u, 2u, 5u, 16u, 64u),
                       ::testing::Values<std::int64_t>(8, 32, 64, 256),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace sap
