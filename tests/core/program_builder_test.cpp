#include "core/program_builder.hpp"

#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "frontend/printer.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

TEST(ProgramBuilderTest, BuildsEquivalentAstToParser) {
  ProgramBuilder b("T");
  b.array("A", {10});
  b.input_array("B", {10});
  b.scalar("Q", 0.5);
  b.begin_loop("K", 1, 10);
  b.assign("A", {b.var("K")}, b.var("Q") + b.at("B", {b.var("K")}));
  b.end_loop();
  const Program built = b.build();

  const Program parsed = Parser::parse(
      "PROGRAM T\nARRAY A(10) INIT NONE\nARRAY B(10) INIT ALL\n"
      "SCALAR Q = 0.5\nDO K = 1, 10\n  A(K) = Q + B(K)\nEND DO\n"
      "END PROGRAM\n");
  EXPECT_EQ(print_program(built), print_program(parsed));
}

TEST(ProgramBuilderTest, ExpressionHandleCopiesDeeply) {
  const Ex k = ex_var("K");
  const Ex a = k + 1;  // consumes copies, not k itself
  const Ex b = k + 2;
  EXPECT_TRUE(k.valid());
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
}

TEST(ProgramBuilderTest, TakeConsumesHandle) {
  Ex e = Ex(1.0) + Ex(2.0);
  auto ptr = e.take();
  EXPECT_FALSE(e.valid());
  EXPECT_THROW(e.take(), Error);
  EXPECT_NE(ptr, nullptr);
}

TEST(ProgramBuilderTest, NestedLoopsAndScalarAssign) {
  ProgramBuilder b("T");
  b.array("A", {4, 4});
  b.scalar("S", 0.0);
  b.begin_loop("I", 1, 4);
  b.scalar_assign("S", b.var("I") * 2.0);
  b.begin_loop("J", 1, 4);
  b.assign("A", {b.var("I"), b.var("J")}, b.var("S"));
  b.end_loop();
  b.end_loop();
  const Program p = b.build();
  const auto& outer = std::get<DoLoop>(p.body[0]->node);
  EXPECT_EQ(outer.body.size(), 2u);
}

TEST(ProgramBuilderTest, UnclosedLoopFailsBuild) {
  ProgramBuilder b("T");
  b.array("A", {4});
  b.begin_loop("K", 1, 4);
  EXPECT_THROW(b.build(), Error);
}

TEST(ProgramBuilderTest, EndLoopWithoutBeginFails) {
  ProgramBuilder b("T");
  EXPECT_THROW(b.end_loop(), Error);
}

TEST(ProgramBuilderTest, CompileRunsSemaAndKeepsCustomInits) {
  ProgramBuilder b("T");
  b.array("A", {8});
  b.input_array("P", {8});
  b.custom_init("P", [](std::int64_t i) { return double(i + 1); });
  b.begin_loop("K", 1, 8);
  b.assign("A", {b.var("K")}, b.at("P", {b.var("K")}));
  b.end_loop();
  const CompiledProgram compiled = b.compile();
  EXPECT_EQ(compiled.custom_inits.size(), 1u);
  EXPECT_TRUE(compiled.sema.arrays.count("A"));
}

TEST(ProgramBuilderTest, CompileRejectsSemanticErrors) {
  ProgramBuilder b("T");
  b.array("A", {8});
  b.begin_loop("K", 1, 8);
  b.assign("A", {b.var("K")}, b.at("MISSING", {b.var("K")}));
  b.end_loop();
  EXPECT_THROW(b.compile(), SemanticError);
}

TEST(ProgramBuilderTest, ImplicitNumericConversions) {
  // int and double literals convert implicitly in expression positions.
  ProgramBuilder b("T");
  b.array("A", {4});
  b.begin_loop("K", 1, 4);
  b.assign("A", {b.var("K")}, b.var("K") * 2 + 0.5);
  b.end_loop();
  EXPECT_NO_THROW(b.compile());
}

TEST(ProgramBuilderTest, PrefixArrayDeclaration) {
  ProgramBuilder b("T");
  b.prefix_array("X", {100}, 10);
  const Program p = b.build();
  EXPECT_EQ(p.arrays[0].init, InitMode::kPrefix);
  EXPECT_EQ(p.arrays[0].init_prefix, 10);
}

TEST(ProgramBuilderTest, ReinitStatement) {
  ProgramBuilder b("T");
  b.array("A", {4});
  b.begin_loop("K", 1, 4);
  b.assign("A", {b.var("K")}, 1.0);
  b.end_loop();
  b.reinit("A");
  const Program p = b.build();
  EXPECT_TRUE(std::holds_alternative<ReinitStmt>(p.body[1]->node));
}

}  // namespace
}  // namespace sap
