#include "core/empirical_classifier.hpp"

#include <gtest/gtest.h>

#include "kernels/synthetic.hpp"

namespace sap {
namespace {

TEST(EmpiricalClassifierTest, MatchedSynthetic) {
  const auto result = classify_empirical(make_matched(512), MachineConfig{});
  EXPECT_EQ(result.cls, AccessClass::kMatched);
  EXPECT_LT(result.nocache_max_percent, 0.5);
}

TEST(EmpiricalClassifierTest, SkewedSynthetic) {
  const auto result =
      classify_empirical(make_skewed(512, 11), MachineConfig{});
  EXPECT_EQ(result.cls, AccessClass::kSkewed);
  EXPECT_LT(result.cached_max_percent, 12.0);
}

TEST(EmpiricalClassifierTest, RandomSynthetic) {
  const auto result =
      classify_empirical(make_random_permutation(1024, 7), MachineConfig{});
  EXPECT_EQ(result.cls, AccessClass::kRandom);
  // At 2 PEs half the permuted reads still land on the owner, diluting
  // the minimum; the max stays high regardless of the cache (§7.1.4).
  EXPECT_GT(result.cached_min_percent, 10.0);
  EXPECT_GT(result.cached_max_percent, 20.0);
}

TEST(EmpiricalClassifierTest, CyclicSyntheticViaCacheRescue) {
  // Read advances 4x faster than the write: page-jumping without a cache,
  // one fetch per page with one (§7.1.3's signature).
  const auto result =
      classify_empirical(make_cyclic(512, 4), MachineConfig{});
  EXPECT_EQ(result.cls, AccessClass::kCyclic);
  EXPECT_GT(result.nocache_max_percent, 25.0);
  EXPECT_LT(result.cached_max_percent, 12.0);
}

TEST(EmpiricalClassifierTest, RationaleIsInformative) {
  const auto result = classify_empirical(make_matched(256), MachineConfig{});
  EXPECT_FALSE(result.rationale.empty());
  EXPECT_NE(result.rationale.find("0%"), std::string::npos);
}

}  // namespace
}  // namespace sap
