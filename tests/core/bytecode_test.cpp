// Unit tests for the bytecode twin of the eval.hpp tree walk: identical
// values, identical read sequences (order included), identical errors and
// identical suspension behaviour, expression by expression.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/bytecode.hpp"
#include "core/program_builder.hpp"
#include "core/reference_interpreter.hpp"
#include "core/simulator.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sap {
namespace {

/// Map-backed reader that logs every read (array + indices, in order) and
/// optionally suspends on one designated cell.
class LoggingReader final : public ArrayReader {
 public:
  std::map<std::pair<std::string, std::vector<std::int64_t>>, double> cells;
  std::optional<std::pair<std::string, std::vector<std::int64_t>>> suspend_on;
  std::vector<std::pair<std::string, std::vector<std::int64_t>>> log;

  std::optional<double> read(
      const std::string& array,
      const std::vector<std::int64_t>& indices) override {
    log.emplace_back(array, indices);
    if (suspend_on && suspend_on->first == array &&
        suspend_on->second == indices) {
      return std::nullopt;
    }
    const auto it = cells.find({array, indices});
    return it == cells.end() ? 7.0 : it->second;
  }
};

struct Harness {
  Program program;       // empty: expressions are compiled standalone
  SemanticInfo sema;
  std::vector<const DoLoop*> loops;
  EvalEnv env;

  /// Runs `expr` through both engines against *independent* readers and
  /// requires identical outcomes: value/suspension, and the exact read
  /// sequence.  Returns the common result.
  std::optional<double> check(const Ex& expr, LoggingReader tree_reader) {
    LoggingReader bytecode_reader = tree_reader;
    const ExprPtr ast = expr.materialize();

    const auto tree = eval_expr(*ast, env, tree_reader);
    const CompiledExpr compiled =
        compile_value_expr(*ast, program, sema, loops);
    BytecodeFrame frame;
    const auto bytecode = frame.run(compiled, env, bytecode_reader);

    EXPECT_EQ(tree.has_value(), bytecode.has_value());
    if (tree && bytecode) EXPECT_EQ(*tree, *bytecode);  // bitwise, not approx
    EXPECT_EQ(tree_reader.log, bytecode_reader.log);
    return bytecode;
  }
};

TEST(BytecodeTest, ArithmeticMatchesTreeWalk) {
  Harness h;
  h.env.set("i", 3.0);
  h.env.set("q", 0.25);
  const Ex e = (ex_var("i") + 1.5) * ex_var("q") - 2.0 / (ex_var("i") - 1.0);
  const auto v = h.check(e, {});
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, (3.0 + 1.5) * 0.25 - 2.0 / (3.0 - 1.0));
}

TEST(BytecodeTest, IntrinsicsMatchTreeWalk) {
  Harness h;
  h.env.set("a", 7.0);
  h.env.set("b", -3.0);
  h.check(ex_idiv(ex_var("a"), 2.0), {});
  h.check(ex_mod(ex_var("a"), 3.0), {});
  h.check(ex_min(ex_var("a"), ex_var("b")), {});
  h.check(ex_max(ex_var("a"), ex_var("b")), {});
  h.check(ex_abs(ex_var("b")), {});
  h.check(-ex_var("a") + ex_abs(ex_min(ex_var("a"), ex_var("b"))), {});
}

TEST(BytecodeTest, ReadsHappenInTreeOrder) {
  Harness h;
  h.env.set("i", 2.0);
  LoggingReader reader;
  reader.cells[{"A", {2}}] = 1.0;
  reader.cells[{"B", {3}}] = 2.0;
  reader.cells[{"C", {1}}] = 3.0;
  // Left-to-right through the tree: A(i), then B(i+1), then C(i-1).
  const Ex e = ex_at("A", {ex_var("i")}) *
               (ex_at("B", {ex_var("i") + 1}) + ex_at("C", {ex_var("i") - 1}));
  const auto v = h.check(e, reader);
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 1.0 * (2.0 + 3.0));
}

TEST(BytecodeTest, IndirectIndexReadsMatch) {
  Harness h;
  h.env.set("i", 1.0);
  LoggingReader reader;
  reader.cells[{"P", {1}}] = 4.0;
  reader.cells[{"A", {4}}] = 9.0;
  const Ex e = ex_at("A", {ex_at("P", {ex_var("i")})});
  const auto v = h.check(e, reader);
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 9.0);
}

TEST(BytecodeTest, SuspensionAbortsBothEnginesAtTheSamePoint) {
  Harness h;
  h.env.set("i", 2.0);
  LoggingReader reader;
  reader.suspend_on = {{"B", {3}}};
  // B(3) suspends; C must never be read by either engine.
  const Ex e = ex_at("A", {ex_var("i")}) + ex_at("B", {ex_var("i") + 1}) +
               ex_at("C", {ex_var("i")});
  const auto v = h.check(e, reader);
  EXPECT_FALSE(v.has_value());
}

TEST(BytecodeTest, ErrorsMatchTreeWalk) {
  Harness h;
  h.env.set("z", 0.0);
  const auto expect_same_error = [&](const Ex& expr) {
    const ExprPtr ast = expr.materialize();
    LoggingReader reader;
    std::string tree_error = "<none>";
    std::string bytecode_error = "<none>";
    try {
      eval_expr(*ast, h.env, reader);
    } catch (const Error& e) {
      tree_error = e.what();
    }
    try {
      BytecodeFrame frame;
      frame.run(compile_value_expr(*ast, h.program, h.sema, h.loops), h.env,
                reader);
    } catch (const Error& e) {
      bytecode_error = e.what();
    }
    EXPECT_NE(tree_error, "<none>");
    EXPECT_EQ(tree_error, bytecode_error);
  };
  expect_same_error(Ex(1.0) / ex_var("z"));
  expect_same_error(ex_idiv(1.0, ex_var("z")));
  expect_same_error(ex_mod(1.0, ex_var("z")));
  expect_same_error(ex_var("unbound"));
  expect_same_error(ex_at("A", {ex_var("z") + 0.5}));  // non-integer index
}

TEST(BytecodeTest, AffineGuardFallsBackForNonIntegralVariables) {
  // i = 0.5 defeats the integer fast path, but i*2 is a valid index (1);
  // the guard must fall through to the generic sequence and agree with the
  // tree walk.  A DoLoop makes "i" a loop variable so the affine form is
  // built at all.
  Program program;
  SemanticInfo sema;
  DoLoop loop;
  loop.var = "i";
  loop.lower = make_number(1);
  loop.upper = make_number(4);
  const std::vector<const DoLoop*> loops = {&loop};

  EvalEnv env;
  env.set("i", 0.5);
  const ExprPtr index = (ex_var("i") * 2).materialize();
  const ExprPtr ref = ex_at("A", {Ex(clone(*index))}).materialize();

  LoggingReader tree_reader;
  tree_reader.cells[{"A", {1}}] = 42.0;
  LoggingReader bytecode_reader = tree_reader;

  const auto tree = eval_expr(*ref, env, tree_reader);
  BytecodeFrame frame;
  const CompiledExpr compiled =
      compile_value_expr(*ref, program, sema, loops);
  // The guard must actually exist for this test to cover the fallback.
  bool has_guard = false;
  for (const Instr& in : compiled.code) {
    if (in.op == Op::kAffineIndex) has_guard = true;
  }
  EXPECT_TRUE(has_guard);
  const auto bytecode = frame.run(compiled, env, bytecode_reader);
  ASSERT_TRUE(tree.has_value());
  ASSERT_TRUE(bytecode.has_value());
  EXPECT_EQ(*tree, *bytecode);
  EXPECT_EQ(tree_reader.log, bytecode_reader.log);
}

TEST(BytecodeTest, AffineFastPathProducesIntegerIndices) {
  Program program;
  SemanticInfo sema;
  DoLoop loop;
  loop.var = "i";
  loop.lower = make_number(1);
  loop.upper = make_number(10);
  const std::vector<const DoLoop*> loops = {&loop};

  EvalEnv env;
  env.set("i", 6.0);
  const ExprPtr ref = ex_at("A", {ex_var("i") * 3 - 2}).materialize();
  LoggingReader reader;
  BytecodeFrame frame;
  const auto v = frame.run(compile_value_expr(*ref, program, sema, loops),
                           env, reader);
  ASSERT_TRUE(v.has_value());
  ASSERT_EQ(reader.log.size(), 1u);
  EXPECT_EQ(reader.log[0].second, (std::vector<std::int64_t>{16}));
}

TEST(BytecodeTest, ComparisonsAndLogicalsMatchTreeWalk) {
  Harness h;
  h.env.set("x", 2.0);
  LoggingReader reader;
  reader.cells[{"A", {1}}] = 1.0;
  reader.cells[{"A", {2}}] = 3.0;
  const Ex e = ex_and(ex_lt(ex_at("A", {Ex(1)}), ex_var("x")),
                      ex_or(ex_ge(ex_at("A", {Ex(2)}), Ex(3.0)),
                            ex_not(ex_ne(ex_var("x"), Ex(2.0)))));
  const auto v = h.check(e, reader);
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 1.0);
}

TEST(BytecodeTest, SelectBranchesLazilyInBothEngines) {
  // The untaken arm is skipped by the kJumpIfZero/kJump pair exactly like
  // the tree walk: the harness requires identical read logs, and that
  // common log must not contain the untaken arm's read.
  Harness h;
  LoggingReader reader;
  reader.cells[{"A", {1}}] = 10.0;
  reader.cells[{"B", {1}}] = 20.0;
  {
    LoggingReader probe = reader;
    const Ex e = ex_select(ex_lt(Ex(1.0), Ex(2.0)), ex_at("A", {Ex(1)}),
                           ex_at("B", {Ex(1)}));
    const auto v = h.check(e, probe);
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(*v, 10.0);
  }
  {
    LoggingReader tree_reader = reader;
    const Ex e = ex_select(ex_gt(Ex(1.0), Ex(2.0)), ex_at("A", {Ex(1)}),
                           ex_at("B", {Ex(1)}));
    const ExprPtr ast = e.materialize();
    const auto tree = eval_expr(*ast, h.env, tree_reader);
    ASSERT_TRUE(tree.has_value());
    EXPECT_DOUBLE_EQ(*tree, 20.0);
    ASSERT_EQ(tree_reader.log.size(), 1u);
    EXPECT_EQ(tree_reader.log[0].first, "B");  // A(1) never read
    LoggingReader bytecode_reader = reader;
    const CompiledExpr compiled =
        compile_value_expr(*ast, h.program, h.sema, h.loops);
    BytecodeFrame frame;
    const auto bytecode = frame.run(compiled, h.env, bytecode_reader);
    ASSERT_TRUE(bytecode.has_value());
    EXPECT_DOUBLE_EQ(*bytecode, 20.0);
    EXPECT_EQ(bytecode_reader.log, tree_reader.log);
  }
}

TEST(BytecodeTest, NestedSelectMatchesTreeWalk) {
  Harness h;
  h.env.set("k", 5.0);
  LoggingReader reader;
  reader.cells[{"X", {5}}] = 0.75;
  reader.cells[{"LO", {5}}] = 0.25;
  reader.cells[{"HI", {5}}] = 0.5;
  const Ex k = ex_var("k");
  // clip(X(k)) via nested SELECTs, reads resolved lazily arm by arm.
  const Ex e = ex_select(
      ex_lt(ex_at("X", {k}), ex_at("LO", {k})), ex_at("LO", {k}),
      ex_select(ex_gt(ex_at("X", {k}), ex_at("HI", {k})), ex_at("HI", {k}),
                ex_at("X", {k})));
  const auto v = h.check(e, reader);
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 0.5);
}

TEST(BytecodeTest, SelectSuspensionMatchesTreeWalk) {
  Harness h;
  LoggingReader reader;
  reader.cells[{"A", {1}}] = 1.0;
  reader.suspend_on = {{"B", {1}}};
  // Taken arm reads the suspending cell: both engines abort identically.
  const Ex e = ex_select(ex_gt(Ex(1.0), Ex(2.0)), ex_at("A", {Ex(1)}),
                         ex_at("B", {Ex(1)}));
  const auto v = h.check(e, reader);
  EXPECT_FALSE(v.has_value());
}

TEST(BytecodeTest, GuardCompiledForIfStatements) {
  ProgramBuilder b("guards");
  b.array("A", {8});
  b.input_array("B", {8});
  const Ex k = b.var("K");
  b.begin_loop("K", 1, 8);
  b.begin_if(ex_gt(b.at("B", {k}), ex_num(0.5)));
  b.assign("A", {k}, b.at("B", {k}));
  b.begin_else();
  b.assign("A", {k}, -b.at("B", {k}));
  b.end_if();
  b.end_loop();
  const CompiledProgram prog = compile(b.build(), EvalEngine::kBytecode);
  ASSERT_NE(prog.bytecode, nullptr);
  const auto& branch =
      std::get<IfStmt>(std::get<DoLoop>(prog.program.body[0]->node)
                           .body[0]
                           ->node);
  EXPECT_EQ(prog.bytecode->guards.count(&branch), 1u);
  EXPECT_EQ(prog.bytecode->assigns.size(), 2u);  // both arms compiled
}

TEST(BytecodeTest, CompileBytecodeCoversEveryStatement) {
  ProgramBuilder b("cover");
  b.input_array("B", {32}).array("A", {32}).array("S", {1}).scalar("q", 2.0);
  b.scalar_assign("q", b.var("q") + 1);
  b.begin_loop("i", 1, 32);
  b.assign("A", {b.var("i")}, b.at("B", {b.var("i")}) * b.var("q"));
  b.end_loop();
  b.begin_loop("j", 1, 32);
  b.assign("S", {1}, b.at("S", {1}) + b.at("A", {b.var("j")}));
  b.end_loop();
  // Explicit engine: this test must hold under SAPART_EVAL=tree too.
  const CompiledProgram prog = compile(b.build(), EvalEngine::kBytecode);

  ASSERT_NE(prog.bytecode, nullptr);
  EXPECT_EQ(prog.bytecode->assigns.size(), 2u);
  EXPECT_EQ(prog.bytecode->scalar_assigns.size(), 1u);
  EXPECT_EQ(prog.bytecode->loops.size(), 2u);

  // And the program executes identically under both engines.
  const auto with_bytecode = run_reference(prog);
  CompiledProgram tree = [] {
    // Rebuild the same program for the tree engine.
    ProgramBuilder b2("cover");
    b2.input_array("B", {32}).array("A", {32}).array("S", {1}).scalar("q",
                                                                      2.0);
    b2.scalar_assign("q", b2.var("q") + 1);
    b2.begin_loop("i", 1, 32);
    b2.assign("A", {b2.var("i")}, b2.at("B", {b2.var("i")}) * b2.var("q"));
    b2.end_loop();
    b2.begin_loop("j", 1, 32);
    b2.assign("S", {1}, b2.at("S", {1}) + b2.at("A", {b2.var("j")}));
    b2.end_loop();
    return b2.compile();
  }();
  tree.bytecode.reset();
  const auto with_tree = run_reference(tree);
  for (const auto& array : *with_tree) {
    const SaArray& got = with_bytecode->by_name(array->name());
    ASSERT_EQ(got.defined_count(), array->defined_count());
    for (std::int64_t i = 0; i < array->element_count(); ++i) {
      if (!array->is_defined(i)) continue;
      EXPECT_EQ(got.read(i), array->read(i)) << array->name() << "[" << i
                                             << "]";
    }
  }
}

TEST(BytecodeTest, EvalEngineFromEnv) {
  const char* saved = std::getenv("SAPART_EVAL");
  const std::string saved_value = saved ? saved : "";

  unsetenv("SAPART_EVAL");
  EXPECT_EQ(eval_engine_from_env(), EvalEngine::kBytecode);
  setenv("SAPART_EVAL", "bytecode", 1);
  EXPECT_EQ(eval_engine_from_env(), EvalEngine::kBytecode);
  setenv("SAPART_EVAL", "tree", 1);
  EXPECT_EQ(eval_engine_from_env(), EvalEngine::kTree);
  setenv("SAPART_EVAL", "jit", 1);
  EXPECT_THROW(eval_engine_from_env(), ConfigError);
  // Unknown values name the valid set so the fix is obvious from the error.
  setenv("SAPART_EVAL", "treewalk", 1);
  try {
    eval_engine_from_env();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("'bytecode' or 'tree'"), std::string::npos);
    EXPECT_NE(message.find("treewalk"), std::string::npos);
  }
  // Empty is invalid too, not a silent bytecode fallback.
  setenv("SAPART_EVAL", "", 1);
  EXPECT_THROW(eval_engine_from_env(), ConfigError);

  if (saved) {
    setenv("SAPART_EVAL", saved_value.c_str(), 1);
  } else {
    unsetenv("SAPART_EVAL");
  }
}

// ---------------------------------------------------------------------------
// Optimization tier (fuse_superinstructions / optimize_bytecode): the
// optimizer must be inert — identical values (bitwise), identical read
// sequences, identical suspension points and identical error messages
// against BOTH oracles (tree walk and unoptimized bytecode).  DESIGN.md
// claim 11.
// ---------------------------------------------------------------------------

/// Counts occurrences of one opcode in a compiled program.
std::size_t count_op(const CompiledExpr& expr, Op op) {
  std::size_t n = 0;
  for (const Instr& in : expr.code) {
    if (in.op == op) ++n;
  }
  return n;
}

/// Three-way differential harness: tree walk vs straight-line bytecode vs
/// fused bytecode, all against independent readers.
struct FusionHarness {
  Program program;
  SemanticInfo sema;
  std::vector<const DoLoop*> loops;
  EvalEnv env;
  CompiledExpr last_fused;  // inspected by tests for expected opcodes

  std::optional<double> check(const Ex& expr, LoggingReader reader) {
    const ExprPtr ast = expr.materialize();
    LoggingReader tree_reader = reader;
    LoggingReader plain_reader = reader;
    LoggingReader fused_reader = reader;

    const auto tree = eval_expr(*ast, env, tree_reader);
    const CompiledExpr plain =
        compile_value_expr(*ast, program, sema, loops);
    CompiledExpr fused = plain;
    fuse_superinstructions(fused);
    last_fused = fused;

    BytecodeFrame plain_frame;
    const auto plain_v = plain_frame.run(plain, env, plain_reader);
    BytecodeFrame fused_frame;
    const auto fused_v = fused_frame.run(fused, env, fused_reader);

    EXPECT_EQ(tree.has_value(), plain_v.has_value());
    EXPECT_EQ(tree.has_value(), fused_v.has_value());
    if (tree && plain_v) EXPECT_EQ(*tree, *plain_v);  // bitwise
    if (tree && fused_v) EXPECT_EQ(*tree, *fused_v);
    EXPECT_EQ(tree_reader.log, plain_reader.log);
    EXPECT_EQ(tree_reader.log, fused_reader.log);
    return fused_v;
  }
};

TEST(BytecodeOptTest, ConstOperandArithmeticFusesAndMatches) {
  FusionHarness h;
  h.env.set("x", 3.5);
  // Const on either side of every fusable operator, including the
  // commuted add/mul forms.
  h.check(ex_var("x") + 2.5, {});
  EXPECT_EQ(count_op(h.last_fused, Op::kAddConst), 1u);
  h.check(Ex(2.5) + ex_var("x"), {});
  EXPECT_EQ(count_op(h.last_fused, Op::kAddConst), 1u);
  h.check(ex_var("x") - 2.5, {});
  EXPECT_EQ(count_op(h.last_fused, Op::kSubConst), 1u);
  h.check(Ex(2.5) - ex_var("x"), {});
  EXPECT_EQ(count_op(h.last_fused, Op::kConstSub), 1u);
  h.check(ex_var("x") * 0.25, {});
  EXPECT_EQ(count_op(h.last_fused, Op::kMulConst), 1u);
  h.check(Ex(0.25) * ex_var("x"), {});
  EXPECT_EQ(count_op(h.last_fused, Op::kMulConst), 1u);
  h.check(ex_var("x") / 0.5, {});
  EXPECT_EQ(count_op(h.last_fused, Op::kDivConst), 1u);
  h.check(Ex(7.0) / ex_var("x"), {});
  EXPECT_EQ(count_op(h.last_fused, Op::kConstDiv), 1u);
  // A chain: every kConst feeding a single arithmetic use disappears.
  h.check((ex_var("x") + 1.0) * 2.0 - 0.5, {});
  EXPECT_EQ(count_op(h.last_fused, Op::kConst), 0u);
}

TEST(BytecodeOptTest, DivisionByConstZeroKeepsTheError) {
  FusionHarness h;
  h.env.set("x", 1.0);
  h.env.set("z", 0.0);
  const auto expect_same_error = [&](const Ex& expr) {
    const ExprPtr ast = expr.materialize();
    LoggingReader reader;
    std::string tree_error = "<none>";
    std::string fused_error = "<none>";
    try {
      eval_expr(*ast, h.env, reader);
    } catch (const Error& e) {
      tree_error = e.what();
    }
    CompiledExpr fused = compile_value_expr(*ast, h.program, h.sema, h.loops);
    fuse_superinstructions(fused);
    try {
      BytecodeFrame frame;
      frame.run(fused, h.env, reader);
    } catch (const Error& e) {
      fused_error = e.what();
    }
    EXPECT_NE(tree_error, "<none>");
    EXPECT_EQ(tree_error, fused_error);
  };
  expect_same_error(ex_var("x") / 0.0);   // kDivConst with a zero const
  expect_same_error(Ex(1.0) / ex_var("z"));  // kConstDiv with a zero reg
}

TEST(BytecodeOptTest, CompareBranchFusesAndStaysLazy) {
  FusionHarness h;
  h.env.set("x", 1.0);
  h.env.set("y", 2.0);
  LoggingReader reader;
  reader.cells[{"A", {1}}] = 10.0;
  reader.cells[{"B", {1}}] = 20.0;
  // Taken arm: only A is read, by all three engines.
  const auto v = h.check(ex_select(ex_lt(ex_var("x"), ex_var("y")),
                                   ex_at("A", {Ex(1)}), ex_at("B", {Ex(1)})),
                         reader);
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 10.0);
  EXPECT_EQ(count_op(h.last_fused, Op::kJumpIfNotLt), 1u);
  EXPECT_EQ(count_op(h.last_fused, Op::kJumpIfZero), 0u);
  // Untaken arm, every comparison operator fused.
  h.check(ex_select(ex_gt(ex_var("x"), ex_var("y")), ex_at("A", {Ex(1)}),
                    ex_at("B", {Ex(1)})),
          reader);
  EXPECT_EQ(count_op(h.last_fused, Op::kJumpIfNotGt), 1u);
  h.check(ex_select(ex_le(ex_var("x"), ex_var("y")), Ex(1.0), Ex(2.0)), {});
  EXPECT_EQ(count_op(h.last_fused, Op::kJumpIfNotLe), 1u);
  h.check(ex_select(ex_ge(ex_var("x"), ex_var("y")), Ex(1.0), Ex(2.0)), {});
  EXPECT_EQ(count_op(h.last_fused, Op::kJumpIfNotGe), 1u);
  h.check(ex_select(ex_eq(ex_var("x"), ex_var("y")), Ex(1.0), Ex(2.0)), {});
  EXPECT_EQ(count_op(h.last_fused, Op::kJumpIfNotEq), 1u);
  h.check(ex_select(ex_ne(ex_var("x"), ex_var("y")), Ex(1.0), Ex(2.0)), {});
  EXPECT_EQ(count_op(h.last_fused, Op::kJumpIfNotNe), 1u);
}

TEST(BytecodeOptTest, AffineReadFusesAndKeepsTheFallback) {
  DoLoop loop;
  loop.var = "i";
  loop.lower = make_number(1);
  loop.upper = make_number(10);
  FusionHarness h;
  h.loops = {&loop};

  LoggingReader reader;
  reader.cells[{"A", {16}}] = 42.0;
  reader.cells[{"A", {7}}] = 5.0;
  h.env.set("i", 6.0);
  const Ex e = ex_at("A", {ex_var("i") * 3 - 2}) + ex_at("A", {ex_var("i") + 1});
  const auto v = h.check(e, reader);
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 42.0 + 5.0);
  EXPECT_EQ(count_op(h.last_fused, Op::kAffineRead), 2u);
  // The generic sequence (and its kRead) must survive as the non-integral
  // fallback — and still agree with the tree walk when i defeats the
  // integer fast path.
  EXPECT_EQ(count_op(h.last_fused, Op::kRead), 2u);
  h.env.set("i", 0.5);
  LoggingReader frac;
  frac.cells[{"A", {1}}] = 3.0;  // i*2 = 1
  const auto w = h.check(ex_at("A", {ex_var("i") * 2}), frac);
  ASSERT_TRUE(w.has_value());
  EXPECT_DOUBLE_EQ(*w, 3.0);
}

TEST(BytecodeOptTest, SuspensionSurvivesFusion) {
  FusionHarness h;
  h.env.set("x", 1.0);
  LoggingReader reader;
  reader.cells[{"A", {1}}] = 1.0;
  reader.suspend_on = {{"B", {2}}};
  // B(2) suspends after A(1); C(3) must never be read by any engine.
  const Ex e = ex_at("A", {Ex(1)}) + ex_at("B", {Ex(2)}) * 2.0 +
               ex_at("C", {Ex(3)});
  const auto v = h.check(e, reader);
  EXPECT_FALSE(v.has_value());
}

TEST(BytecodeOptTest, RandomizedDifferentialSweep) {
  // Seeded random expressions over arithmetic, intrinsics, reads and
  // SELECT: tree walk, straight-line bytecode and fused bytecode must
  // agree bitwise on value and read order for every seed.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    SplitMix64 rng(seed);
    std::function<Ex(int)> gen = [&](int depth) -> Ex {
      if (depth <= 0) {
        switch (rng.next_below(3)) {
          case 0: return Ex(static_cast<double>(rng.next_below(7)) - 2.0);
          case 1: return ex_var("i");
          default:
            return ex_at("A", {ex_var("i") +
                               static_cast<double>(rng.next_below(3))});
        }
      }
      switch (rng.next_below(8)) {
        case 0: return gen(depth - 1) + gen(depth - 1);
        case 1: return gen(depth - 1) - gen(depth - 1);
        case 2: return gen(depth - 1) * gen(depth - 1);
        case 3: return gen(depth - 1) / (ex_abs(gen(depth - 1)) + 1.5);
        case 4: return ex_min(gen(depth - 1), gen(depth - 1));
        case 5: return ex_max(gen(depth - 1), gen(depth - 1));
        case 6:
          return ex_select(ex_lt(gen(depth - 1), gen(depth - 1)),
                           gen(depth - 1), gen(depth - 1));
        default:
          return gen(depth - 1) + Ex(static_cast<double>(rng.next_below(5)));
      }
    };
    FusionHarness h;
    h.env.set("i", static_cast<double>(1 + rng.next_below(4)));
    LoggingReader reader;
    for (std::int64_t c = 0; c <= 8; ++c) {
      reader.cells[{"A", {c}}] = 0.25 * static_cast<double>(c * c - 3);
    }
    h.check(gen(4), reader);
  }
}

TEST(BytecodeOptTest, HoistedIndicesMatchBothOracles) {
  // B's column index depends only on the outer loop variable (and a
  // constant scalar), so the optimizer hoists it into the inner loop's
  // preamble.  All three engines must produce identical arrays.
  const auto build = [] {
    ProgramBuilder b("hoist");
    b.input_array("B", {8, 10}).array("A", {8, 4}).scalar("q", 2.0);
    b.begin_loop("j", 1, 4);
    b.begin_loop("i", 1, 8);
    b.assign("A", {b.var("i"), b.var("j")},
             b.at("B", {b.var("i"), b.var("j") * 2 + 1}) + b.var("q"));
    b.end_loop();
    b.end_loop();
    return b.build();
  };
  const CompiledProgram opt =
      compile(build(), EvalEngine::kBytecode, BytecodeOpt::kOn);
  const CompiledProgram unopt =
      compile(build(), EvalEngine::kBytecode, BytecodeOpt::kOff);
  const CompiledProgram tree = compile(build(), EvalEngine::kTree);

  ASSERT_NE(opt.bytecode, nullptr);
  EXPECT_TRUE(opt.bytecode->optimized);
  EXPECT_FALSE(unopt.bytecode->optimized);
  // The hoist actually happened: preamble programs exist and some program
  // consumes a hoist slot.
  EXPECT_FALSE(opt.bytecode->hoists.empty());
  EXPECT_FALSE(opt.bytecode->preambles.empty());

  const auto expected = run_reference(tree);
  for (const CompiledProgram* prog : {&unopt, &opt}) {
    const auto got = run_reference(*prog);
    for (const auto& array : *expected) {
      const SaArray& mine = got->by_name(array->name());
      ASSERT_EQ(mine.defined_count(), array->defined_count());
      for (std::int64_t i = 0; i < array->element_count(); ++i) {
        if (!array->is_defined(i)) continue;
        EXPECT_EQ(mine.read(i), array->read(i))
            << array->name() << "[" << i << "]";
      }
    }
  }
}

TEST(BytecodeOptTest, NonIntegerHoistedIndexKeepsTheError) {
  // q*3 = 1.5: the hoisted index program must report the identical
  // non-integer index error the tree walk reports, not a different one
  // and not a silent truncation.
  const auto build = [] {
    ProgramBuilder b("hoist_err");
    b.input_array("B", {8, 4}).array("A", {8}).scalar("q", 0.5);
    b.begin_loop("i", 1, 8);
    b.assign("A", {b.var("i")}, b.at("B", {b.var("i"), b.var("q") * 3}));
    b.end_loop();
    return b.build();
  };
  const auto error_of = [&](const CompiledProgram& prog) -> std::string {
    try {
      run_reference(prog);
      return "<none>";
    } catch (const Error& e) {
      return e.what();
    }
  };
  const std::string tree_error =
      error_of(compile(build(), EvalEngine::kTree));
  const std::string opt_error =
      error_of(compile(build(), EvalEngine::kBytecode, BytecodeOpt::kOn));
  EXPECT_NE(tree_error, "<none>");
  EXPECT_EQ(tree_error, opt_error);
}

TEST(BytecodeOptTest, CompileHonorsTheOptKnob) {
  const auto build = [] {
    ProgramBuilder b("knob");
    b.input_array("B", {8}).array("A", {8});
    b.begin_loop("i", 1, 8);
    b.assign("A", {b.var("i")}, b.at("B", {b.var("i")}) * 2.0);
    b.end_loop();
    return b.build();
  };
  const CompiledProgram on =
      compile(build(), EvalEngine::kBytecode, BytecodeOpt::kOn);
  const CompiledProgram off =
      compile(build(), EvalEngine::kBytecode, BytecodeOpt::kOff);
  ASSERT_NE(on.bytecode, nullptr);
  ASSERT_NE(off.bytecode, nullptr);
  EXPECT_TRUE(on.bytecode->optimized);
  EXPECT_FALSE(off.bytecode->optimized);
}

TEST(BytecodeTest, CompileEngineControlsBytecodePresence) {
  const auto build = [] {
    ProgramBuilder b("engine");
    b.input_array("B", {8}).array("A", {8});
    b.begin_loop("i", 1, 8);
    b.assign("A", {b.var("i")}, b.at("B", {b.var("i")}));
    b.end_loop();
    return b.build();
  };
  EXPECT_NE(compile(build(), EvalEngine::kBytecode).bytecode, nullptr);
  EXPECT_EQ(compile(build(), EvalEngine::kTree).bytecode, nullptr);
}

}  // namespace
}  // namespace sap
