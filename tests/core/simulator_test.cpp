#include "core/simulator.hpp"

#include <gtest/gtest.h>

#include "core/program_builder.hpp"
#include "kernels/synthetic.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

TEST(SimulatorTest, CompileSourceEndToEnd) {
  const CompiledProgram prog = compile_source(
      "PROGRAM demo\nARRAY A(64)\nARRAY B(64) INIT ALL\n"
      "DO k = 1, 64\n  A(k) = B(k)\nEND DO\nEND PROGRAM\n");
  EXPECT_EQ(prog.name(), "DEMO");
  const Simulator sim(MachineConfig{}.with_pes(4));
  const SimulationResult result = sim.run(prog);
  EXPECT_EQ(result.totals.writes, 64u);
  EXPECT_EQ(result.remote_read_fraction(), 0.0);  // matched
}

TEST(SimulatorTest, CompileRejectsBadSource) {
  EXPECT_THROW(compile_source("PROGRAM x\nA(1) = 2\nEND PROGRAM\n"),
               SemanticError);
  EXPECT_THROW(compile_source("not a program"), ParseError);
}

TEST(SimulatorTest, SyntheticInitIsDeterministicAndPositive) {
  EXPECT_DOUBLE_EQ(synthetic_init_value("A", 3),
                   synthetic_init_value("A", 3));
  EXPECT_NE(synthetic_init_value("A", 3), synthetic_init_value("A", 4));
  EXPECT_NE(synthetic_init_value("A", 3), synthetic_init_value("B", 3));
  for (std::int64_t i = 0; i < 100; ++i) {
    const double v = synthetic_init_value("X", i);
    EXPECT_GE(v, 0.5);
    EXPECT_LT(v, 1.5);
  }
}

TEST(SimulatorTest, MaterializeRespectsInitModes) {
  ProgramBuilder b("T");
  b.array("OUT", {8});
  b.input_array("IN", {8});
  b.prefix_array("SEED", {8}, 3);
  b.begin_loop("K", 1, 8);
  b.assign("OUT", {b.var("K")}, b.at("IN", {b.var("K")}));
  b.end_loop();
  const CompiledProgram prog = b.compile();
  ArrayRegistry registry;
  materialize_arrays(prog, registry);
  EXPECT_EQ(registry.by_name("OUT").defined_count(), 0);
  EXPECT_EQ(registry.by_name("IN").defined_count(), 8);
  EXPECT_EQ(registry.by_name("SEED").defined_count(), 3);
}

TEST(SimulatorTest, CustomInitOverridesSynthetic) {
  ProgramBuilder b("T");
  b.array("A", {4});
  b.input_array("P", {4});
  b.custom_init("P", [](std::int64_t i) { return double(10 + i); });
  b.begin_loop("K", 1, 4);
  b.assign("A", {b.var("K")}, b.at("P", {b.var("K")}));
  b.end_loop();
  const CompiledProgram prog = b.compile();
  ArrayRegistry registry;
  materialize_arrays(prog, registry);
  EXPECT_DOUBLE_EQ(registry.by_name("P").read(0), 10.0);
  EXPECT_DOUBLE_EQ(registry.by_name("P").read(3), 13.0);
}

TEST(SimulatorTest, BothModesProduceSameResultObjectShape) {
  const CompiledProgram prog = make_skewed(128, 3);
  const Simulator sim(MachineConfig{}.with_pes(4));
  const auto counting = sim.run(prog, ExecutionMode::kCounting);
  const auto dataflow = sim.run(prog, ExecutionMode::kDataflow);
  EXPECT_EQ(counting.per_pe.size(), 4u);
  EXPECT_EQ(dataflow.per_pe.size(), 4u);
  EXPECT_EQ(counting.totals, dataflow.totals);
}

TEST(SimulatorTest, RunWithMachineExposesInternals) {
  const CompiledProgram prog = make_skewed(128, 3);
  const Simulator sim(MachineConfig{}.with_pes(4));
  std::unique_ptr<Machine> machine;
  sim.run_with_machine(prog, ExecutionMode::kCounting, machine);
  ASSERT_NE(machine, nullptr);
  EXPECT_EQ(machine->arrays().size(), 3u);  // A, B, C
  EXPECT_TRUE(machine->arrays().by_name("A").is_defined(0));
}

TEST(SimulatorTest, InvalidConfigRejectedAtConstruction) {
  EXPECT_THROW(Simulator(MachineConfig{}.with_pes(0)), ConfigError);
}

TEST(SimulatorTest, CommitPointsPrecomputedForReductions) {
  const CompiledProgram dot = make_dot_product(32);
  ASSERT_EQ(dot.commit_loops.size(), 1u);
  EXPECT_TRUE(dot.commit_loops.begin()->second.at_exit);

  ProgramBuilder b("per_elem");
  b.array("W", {8});
  b.input_array("B", {8, 8});
  b.begin_loop("I", 1, 8);
  b.begin_loop("K", 1, 8);
  b.assign("W", {b.var("I")},
           b.at("W", {b.var("I")}) + b.at("B", {b.var("K"), b.var("I")}));
  b.end_loop();
  b.end_loop();
  const CompiledProgram prog = b.compile();
  ASSERT_EQ(prog.commit_loops.size(), 1u);
  const CommitPoint cp = prog.commit_loops.begin()->second;
  EXPECT_FALSE(cp.at_exit);
  ASSERT_NE(cp.loop, nullptr);
  EXPECT_EQ(cp.loop->var, "I");  // commits at each trip of the I loop
}

TEST(SimulatorTest, ExecutionModeNames) {
  EXPECT_EQ(to_string(ExecutionMode::kCounting), "counting");
  EXPECT_EQ(to_string(ExecutionMode::kDataflow), "dataflow");
}

}  // namespace
}  // namespace sap
