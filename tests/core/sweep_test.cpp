#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include "kernels/synthetic.hpp"

namespace sap {
namespace {

TEST(SweepTest, PeSweepProducesOnePointPerCount) {
  const CompiledProgram prog = make_skewed(256, 11);
  const auto series = sweep_pes(prog, MachineConfig{}, {1, 2, 4, 8}, "s",
                                remote_read_percent());
  ASSERT_EQ(series.points.size(), 4u);
  EXPECT_DOUBLE_EQ(series.y_at(1), 0.0);  // single PE: everything local
  EXPECT_GT(series.y_at(2), 0.0);
}

TEST(SweepTest, PageSizeSweep) {
  const CompiledProgram prog = make_skewed(256, 11);
  const auto series =
      sweep_page_sizes(prog, MachineConfig{}.with_pes(4).with_cache(0),
                       {16, 32, 64}, "ps", remote_read_percent());
  ASSERT_EQ(series.points.size(), 3u);
  // Larger pages -> fewer boundary crossings -> lower remote fraction.
  EXPECT_GT(series.y_at(16), series.y_at(64));
}

TEST(SweepTest, CacheSizeSweepMonotoneForRandom) {
  const CompiledProgram prog = make_random_permutation(512, 3);
  const auto series = sweep_cache_sizes(
      prog, MachineConfig{}.with_pes(8), {32, 128, 512, 2048}, "c",
      remote_read_percent());
  // §7.1.4: "Increasing the cache size will help."
  EXPECT_GT(series.y_at(32), series.y_at(2048));
}

TEST(SweepTest, FigureSeriesLayout) {
  const CompiledProgram prog = make_skewed(256, 11);
  const auto series = figure_series(prog, MachineConfig{}, {1, 2, 4}, {32, 64});
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[0].label, "Cache, ps 32");
  EXPECT_EQ(series[1].label, "Cache, ps 64");
  EXPECT_EQ(series[2].label, "No Cache, ps 32");
  EXPECT_EQ(series[3].label, "No Cache, ps 64");
  for (const auto& s : series) EXPECT_EQ(s.points.size(), 3u);
  // Cache never loses to no-cache at the same page size.
  EXPECT_LE(series[0].y_at(4), series[2].y_at(4));
  EXPECT_LE(series[1].y_at(4), series[3].y_at(4));
}

TEST(SweepTest, MetricIsPercent) {
  const CompiledProgram prog = make_skewed(256, 11);
  const auto series = sweep_pes(prog, MachineConfig{}.with_cache(0), {2}, "s",
                                remote_read_percent());
  // Fractions would be < 1; percentages are > 1 for this workload.
  EXPECT_GT(series.y_at(2), 1.0);
}

}  // namespace
}  // namespace sap
