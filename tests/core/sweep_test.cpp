#include "core/sweep.hpp"

#include <gtest/gtest.h>

#include "kernels/synthetic.hpp"

namespace sap {
namespace {

TEST(SweepTest, PeSweepProducesOnePointPerCount) {
  const CompiledProgram prog = make_skewed(256, 11);
  const auto series = sweep_pes(prog, MachineConfig{}, {1, 2, 4, 8}, "s",
                                remote_read_percent());
  ASSERT_EQ(series.points.size(), 4u);
  EXPECT_DOUBLE_EQ(series.y_at(1), 0.0);  // single PE: everything local
  EXPECT_GT(series.y_at(2), 0.0);
}

TEST(SweepTest, PageSizeSweep) {
  const CompiledProgram prog = make_skewed(256, 11);
  const auto series =
      sweep_page_sizes(prog, MachineConfig{}.with_pes(4).with_cache(0),
                       {16, 32, 64}, "ps", remote_read_percent());
  ASSERT_EQ(series.points.size(), 3u);
  // Larger pages -> fewer boundary crossings -> lower remote fraction.
  EXPECT_GT(series.y_at(16), series.y_at(64));
}

TEST(SweepTest, CacheSizeSweepMonotoneForRandom) {
  const CompiledProgram prog = make_random_permutation(512, 3);
  const auto series = sweep_cache_sizes(
      prog, MachineConfig{}.with_pes(8), {32, 128, 512, 2048}, "c",
      remote_read_percent());
  // §7.1.4: "Increasing the cache size will help."
  EXPECT_GT(series.y_at(32), series.y_at(2048));
}

TEST(SweepTest, FigureSeriesLayout) {
  const CompiledProgram prog = make_skewed(256, 11);
  const auto series = figure_series(prog, MachineConfig{}, {1, 2, 4}, {32, 64});
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series[0].label, "Cache, ps 32");
  EXPECT_EQ(series[1].label, "Cache, ps 64");
  EXPECT_EQ(series[2].label, "No Cache, ps 32");
  EXPECT_EQ(series[3].label, "No Cache, ps 64");
  for (const auto& s : series) EXPECT_EQ(s.points.size(), 3u);
  // Cache never loses to no-cache at the same page size.
  EXPECT_LE(series[0].y_at(4), series[2].y_at(4));
  EXPECT_LE(series[1].y_at(4), series[3].y_at(4));
}

TEST(SweepTest, MetricIsPercent) {
  const CompiledProgram prog = make_skewed(256, 11);
  const auto series = sweep_pes(prog, MachineConfig{}.with_cache(0), {2}, "s",
                                remote_read_percent());
  // Fractions would be < 1; percentages are > 1 for this workload.
  EXPECT_GT(series.y_at(2), 1.0);
}

TEST(SweepTest, ConfigIdentityCoversSimulationVisibleFields) {
  const MachineConfig base;
  // The block-cyclic block changes ownership, so the memo key must see it.
  MachineConfig b2 = base.with_partition(PartitionKind::kBlockCyclic);
  MachineConfig b4 = b2;
  b2.block_cyclic_pages = 2;
  b4.block_cyclic_pages = 4;
  EXPECT_NE(config_identity(b2), config_identity(b4));
  EXPECT_EQ(config_identity(b2), config_identity(b2));
  MachineConfig partial = base;
  partial.count_partial_page_refetch = true;
  EXPECT_NE(config_identity(base), config_identity(partial));
  MachineConfig seeded = base;
  seeded.seed = 7;
  EXPECT_NE(config_identity(base), config_identity(seeded));
  // Per-array assignment is simulation-visible: the override itself and a
  // block-cyclic override's block must both split the key...
  const MachineConfig with_override =
      base.with_array_partition("A", PartitionKind::kBlock);
  EXPECT_NE(config_identity(base), config_identity(with_override));
  EXPECT_NE(
      config_identity(
          base.with_array_partition("A", PartitionKind::kBlockCyclic, 2)),
      config_identity(
          base.with_array_partition("A", PartitionKind::kBlockCyclic, 4)));
  // ...while a block stored on a non-block-cyclic override is invisible to
  // the machine and must NOT split it.
  EXPECT_EQ(config_identity(base.with_array_partition(
                "A", ArrayPartitionSpec{PartitionKind::kBlock, 2})),
            config_identity(base.with_array_partition(
                "A", ArrayPartitionSpec{PartitionKind::kBlock, 4})));
}

TEST(SweepTest, BudgetedSweeperStopsAtTheBudgetAndMemoizes) {
  const CompiledProgram prog = make_skewed(256, 11);
  const MachineConfig base = MachineConfig{}.with_pes(4);
  BudgetedSweeper sweeper(prog, ExecutionMode::kCounting, 2);
  const std::vector<MachineConfig> configs = {
      base.with_page_size(16), base.with_page_size(32),
      base.with_page_size(64)};

  const auto first = sweeper.measure(configs);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_NE(first[0], nullptr);
  EXPECT_NE(first[1], nullptr);
  EXPECT_EQ(first[2], nullptr);  // over budget
  EXPECT_EQ(sweeper.spent(), 2u);
  EXPECT_EQ(sweeper.remaining(), 0u);

  // Re-requesting measured configs is free and answered from the memo,
  // pointer-stable; the unmeasured one stays null.
  const auto second = sweeper.measure(configs);
  EXPECT_EQ(second[0], first[0]);
  EXPECT_EQ(second[1], first[1]);
  EXPECT_EQ(second[2], nullptr);
  EXPECT_EQ(sweeper.spent(), 2u);
}

TEST(SweepTest, BudgetedSweeperDeduplicatesWithinOneRequest) {
  const CompiledProgram prog = make_skewed(256, 11);
  const MachineConfig config = MachineConfig{}.with_pes(4);
  BudgetedSweeper sweeper(prog, ExecutionMode::kCounting, 8);
  const auto results = sweeper.measure({config, config, config});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(sweeper.spent(), 1u);
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[1], results[2]);
  ASSERT_NE(results[0], nullptr);
}

TEST(SweepTest, BudgetedSweeperMatchesDirectRunsForAnyWorkerCount) {
  const CompiledProgram prog = make_cyclic(512, 2);
  const MachineConfig base = MachineConfig{}.with_pes(8);
  const std::vector<MachineConfig> configs = {
      base, base.with_page_size(64), base.with_cache(0)};
  std::vector<SweepJob> jobs;
  for (const MachineConfig& c : configs) jobs.push_back({&prog, c});
  const std::vector<SimulationResult> direct = parallel_sweep_results(jobs);
  for (const unsigned workers : {0u, 2u, 8u}) {
    ThreadPool pool(workers == 0 ? 1 : workers);
    BudgetedSweeper sweeper(prog, ExecutionMode::kCounting, 10,
                            workers == 0 ? nullptr : &pool);
    const auto measured = sweeper.measure(configs);
    for (std::size_t i = 0; i < configs.size(); ++i) {
      ASSERT_NE(measured[i], nullptr);
      EXPECT_EQ(measured[i]->remote_read_fraction(),
                direct[i].remote_read_fraction())
          << workers << " workers, config " << i;
    }
  }
}

}  // namespace
}  // namespace sap
