#include "core/dataflow_interpreter.hpp"

#include <gtest/gtest.h>

#include "core/program_builder.hpp"
#include "core/reference_interpreter.hpp"
#include "core/simulator.hpp"
#include "kernels/synthetic.hpp"
#include "machine/host_reinit.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

TEST(DataflowInterpreterTest, RunsSimpleLoop) {
  MachineConfig config;
  config.num_pes = 4;
  Machine machine(config);
  const CompiledProgram prog = make_matched(128);
  materialize_arrays(prog, machine);
  const DataflowStats stats = run_dataflow(prog, machine);
  EXPECT_GE(stats.scheduler_rounds, 1u);
  EXPECT_EQ(machine.snapshot("t").totals.writes, 128u);
}

TEST(DataflowInterpreterTest, RecurrencePipelinesAcrossPes) {
  // X(i) = X(i-1) + 1: PE boundaries force genuine suspensions — the
  // consumer PE probes before the producer PE has written.
  ProgramBuilder b("chain");
  b.prefix_array("X", {128}, 1);
  b.begin_loop("I", 2, 128);
  b.assign("X", {b.var("I")}, b.at("X", {b.var("I") - 1}) + 1.0);
  b.end_loop();
  const CompiledProgram prog = b.compile();

  MachineConfig config;
  config.num_pes = 4;
  config.page_size = 8;
  Machine machine(config);
  materialize_arrays(prog, machine);
  const DataflowStats stats = run_dataflow(prog, machine);
  EXPECT_GT(stats.suspensions, 0u);

  // Values match the sequential reference execution bit-for-bit.
  const auto reference = run_reference(prog);
  const SaArray& expect = reference->by_name("X");
  const SaArray& got = machine.arrays().by_name("X");
  for (std::int64_t i = 0; i < 128; ++i) {
    EXPECT_DOUBLE_EQ(got.read(i), expect.read(i)) << i;
  }
}

TEST(DataflowInterpreterTest, IllegalReadBeforeWriteDeadlocks) {
  // A(k) = A(k + 1) reads values sequential order never produced.
  ProgramBuilder b("bad");
  b.array("A", {16});
  b.begin_loop("K", 1, 15);
  b.assign("A", {b.var("K")}, b.at("A", {b.var("K") + 1}));
  b.end_loop();
  const CompiledProgram prog = b.compile();

  MachineConfig config;
  config.num_pes = 2;
  config.page_size = 4;
  Machine machine(config);
  materialize_arrays(prog, machine);
  EXPECT_THROW(run_dataflow(prog, machine), DeadlockError);
}

TEST(DataflowInterpreterTest, ReductionValuesMatchReference) {
  const CompiledProgram prog = make_dot_product(200);
  MachineConfig config;
  config.num_pes = 4;
  Machine machine(config);
  materialize_arrays(prog, machine);
  run_dataflow(prog, machine);
  const auto reference = run_reference(prog);
  EXPECT_DOUBLE_EQ(machine.arrays().by_name("S").read(0),
                   reference->by_name("S").read(0));
}

TEST(DataflowInterpreterTest, ReinitBarrierCompletes) {
  ProgramBuilder b("reuse");
  b.array("A", {64});
  b.input_array("B", {64});
  b.begin_loop("T", 1, 3);
  b.reinit("A");
  b.begin_loop("I", 1, 64);
  b.assign("A", {b.var("I")}, b.at("B", {b.var("I")}) * b.var("T"));
  b.end_loop();
  b.end_loop();
  const CompiledProgram prog = b.compile();

  MachineConfig config;
  config.num_pes = 4;
  Machine machine(config);
  materialize_arrays(prog, machine);
  EXPECT_NO_THROW(run_dataflow(prog, machine));
  EXPECT_EQ(machine.arrays().by_name("A").generation(), 3u);
  const double b0 = synthetic_init_value("B", 0);
  EXPECT_DOUBLE_EQ(machine.arrays().by_name("A").read(0), b0 * 3.0);
  EXPECT_GT(machine.reinit().protocol_messages(), 0u);
}

TEST(DataflowInterpreterTest, SinglePeNeverSuspends) {
  const CompiledProgram prog = make_skewed(256, 5);
  MachineConfig config;
  config.num_pes = 1;
  Machine machine(config);
  materialize_arrays(prog, machine);
  const DataflowStats stats = run_dataflow(prog, machine);
  EXPECT_EQ(stats.suspensions, 0u);
}

}  // namespace
}  // namespace sap
