#include "core/counting_interpreter.hpp"

#include <gtest/gtest.h>

#include "core/program_builder.hpp"
#include "core/simulator.hpp"
#include "kernels/synthetic.hpp"

namespace sap {
namespace {

SimulationResult run(const CompiledProgram& prog, std::uint32_t pes,
                     std::int64_t cache = 256, std::int64_t ps = 32) {
  MachineConfig config;
  config.num_pes = pes;
  config.cache_elements = cache;
  config.page_size = ps;
  return Simulator(config).run(prog, ExecutionMode::kCounting);
}

TEST(CountingInterpreterTest, MatchedLoopHasZeroRemote) {
  // §7.1.1: matched distribution always achieves 0% remote.
  const auto result = run(make_matched(400), 8);
  EXPECT_EQ(result.totals.remote_reads, 0u);
  EXPECT_EQ(result.totals.cached_reads, 0u);
  EXPECT_EQ(result.totals.local_reads, 800u);
  EXPECT_EQ(result.totals.writes, 400u);
}

TEST(CountingInterpreterTest, SinglePeIsAllLocal) {
  const auto result = run(make_skewed(400, 11), 1);
  EXPECT_EQ(result.totals.remote_reads, 0u);
  EXPECT_EQ(result.totals.cached_reads, 0u);
}

TEST(CountingInterpreterTest, SkewedNoCacheCountsExactly) {
  // Skew 11, ps 32: the last 11 iterations of each 32-element page read
  // the next page — remote on every multi-PE machine without a cache.
  const auto result = run(make_skewed(320, 11), 4, /*cache=*/0);
  // Reads: B(k+11) and C(k): C is matched (local). B remote for 11/32.
  EXPECT_EQ(result.totals.total_reads(), 640u);
  EXPECT_EQ(result.totals.remote_reads, 110u);  // 10 pages x 11
  EXPECT_DOUBLE_EQ(result.remote_read_fraction(), 110.0 / 640.0);
}

TEST(CountingInterpreterTest, SkewedWithCacheOneFetchPerPage) {
  const auto result = run(make_skewed(320, 11), 4, /*cache=*/256);
  // One remote fetch per foreign page touched; the rest hit the cache.
  EXPECT_EQ(result.totals.remote_reads, 10u);
  EXPECT_EQ(result.totals.cached_reads, 100u);
}

TEST(CountingInterpreterTest, WritesBalancedUnderModulo) {
  const auto result = run(make_matched(32 * 8 * 4), 8);
  const auto balance = result.write_balance();
  EXPECT_DOUBLE_EQ(balance.imbalance(), 1.0);  // every PE writes 4 pages
}

TEST(CountingInterpreterTest, NetworkTrafficMatchesRemoteReads) {
  const auto result = run(make_skewed(320, 11), 4, /*cache=*/0);
  // Each remote read = request + reply.
  EXPECT_EQ(result.network.messages, 2 * result.totals.remote_reads);
  EXPECT_EQ(result.network.data_messages, result.totals.remote_reads);
}

TEST(CountingInterpreterTest, PayloadIsWholePages) {
  const auto result = run(make_skewed(320, 11), 4, /*cache=*/256);
  // 10 fetched pages of B(331): 9 full pages of 32 plus the partial final
  // page holding 331 - 320 = 11 valid elements (§2's partial page).
  EXPECT_EQ(result.network.payload_elements, 9u * 32u + 11u);
}

TEST(CountingInterpreterTest, RandomPermutationMostlyRemote) {
  const auto result = run(make_random_permutation(1024, 7), 8, 256);
  // Indirect reads of B plus reads of the permutation table P (matched).
  EXPECT_GT(result.remote_read_fraction(), 0.25);
}

TEST(CountingInterpreterTest, CacheStatsConsistent) {
  const auto result = run(make_skewed(320, 11), 4, 256);
  EXPECT_EQ(result.cache_totals.hits, result.totals.cached_reads);
  // Every remote read was a cache miss first.
  EXPECT_EQ(result.cache_totals.misses, result.totals.remote_reads);
}

TEST(CountingInterpreterTest, DotProductSerializesOnOwner) {
  const auto result = run(make_dot_product(256), 4);
  // All reads happen on the PE owning S(1) = page 0 = PE 0.
  EXPECT_EQ(result.per_pe[0].total_reads(), 512u);
  EXPECT_EQ(result.per_pe[1].total_reads(), 0u);
  EXPECT_EQ(result.per_pe[0].writes, 1u);  // single commit
}

TEST(CountingInterpreterTest, StencilBoundaryCounts) {
  const auto result = run(make_stencil_2d(20, 20), 4);
  // (rows-2)*(cols-2) interior writes; IN is read 6 times per point
  // (4 neighbours + the centre twice).
  EXPECT_EQ(result.totals.writes, 18u * 18u);
  EXPECT_EQ(result.totals.total_reads(), 6u * 18u * 18u);
}

}  // namespace
}  // namespace sap
