// Determinism guarantee of the parallel sweep layer: for any worker count,
// the parallel path must produce output byte-identical to the serial path.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "kernels/livermore.hpp"
#include "kernels/synthetic.hpp"
#include "stats/report.hpp"
#include "support/thread_pool.hpp"

namespace sap {
namespace {

/// Byte-level rendering of a figure: every x/y of every series.
std::string render(const std::vector<SweepSeries>& series) {
  std::ostringstream os;
  series_csv(os, series, "PEs");
  return os.str();
}

TEST(ParallelSweepTest, FigureSeriesByteIdenticalAcrossWorkerCounts) {
  const CompiledProgram prog = build_k1_hydro();
  const std::vector<std::uint32_t> pes = {1, 2, 4, 8, 16};
  const std::vector<std::int64_t> page_sizes = {32, 64};

  const std::string serial =
      render(figure_series(prog, MachineConfig{}, pes, page_sizes));
  for (const unsigned workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    const std::string parallel =
        render(figure_series(prog, MachineConfig{}, pes, page_sizes, &pool));
    EXPECT_EQ(parallel, serial) << "workers = " << workers;
  }
}

TEST(ParallelSweepTest, SweepHelpersMatchSerialWithPool) {
  const CompiledProgram prog = make_skewed(256, 11);
  ThreadPool pool(4);

  const SweepSeries serial_pes = sweep_pes(prog, MachineConfig{}, {1, 2, 4, 8},
                                           "s", remote_read_percent());
  const SweepSeries pooled_pes = sweep_pes(prog, MachineConfig{}, {1, 2, 4, 8},
                                           "s", remote_read_percent(), &pool);
  ASSERT_EQ(pooled_pes.points.size(), serial_pes.points.size());
  for (std::size_t i = 0; i < serial_pes.points.size(); ++i) {
    EXPECT_EQ(pooled_pes.points[i].x, serial_pes.points[i].x);
    EXPECT_EQ(pooled_pes.points[i].y, serial_pes.points[i].y);
  }

  const MachineConfig base = MachineConfig{}.with_pes(4).with_cache(0);
  const SweepSeries serial_ps = sweep_page_sizes(
      prog, base, {16, 32, 64}, "ps", remote_read_percent());
  const SweepSeries pooled_ps = sweep_page_sizes(
      prog, base, {16, 32, 64}, "ps", remote_read_percent(), &pool);
  for (std::size_t i = 0; i < serial_ps.points.size(); ++i) {
    EXPECT_EQ(pooled_ps.points[i].y, serial_ps.points[i].y);
  }

  const SweepSeries serial_cs = sweep_cache_sizes(
      prog, base.with_pes(8), {0, 64, 256}, "c", remote_read_percent());
  const SweepSeries pooled_cs = sweep_cache_sizes(
      prog, base.with_pes(8), {0, 64, 256}, "c", remote_read_percent(), &pool);
  for (std::size_t i = 0; i < serial_cs.points.size(); ++i) {
    EXPECT_EQ(pooled_cs.points[i].y, serial_cs.points[i].y);
  }
}

TEST(ParallelSweepTest, ResultsComeBackInJobOrder) {
  const CompiledProgram prog = make_skewed(256, 11);
  ThreadPool pool(8);

  // Distinguishable jobs: PE counts 1..8 give distinct distributions.
  std::vector<SweepJob> jobs;
  for (std::uint32_t pes = 1; pes <= 8; ++pes) {
    jobs.push_back({&prog, MachineConfig{}.with_pes(pes)});
  }
  const auto serial = parallel_sweep_results(jobs);
  const auto pooled = parallel_sweep_results(jobs, &pool);
  ASSERT_EQ(pooled.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(pooled[i].totals.local_reads, serial[i].totals.local_reads)
        << "job " << i;
    EXPECT_EQ(pooled[i].totals.remote_reads, serial[i].totals.remote_reads)
        << "job " << i;
    EXPECT_EQ(pooled[i].per_pe.size(), i + 1);  // num_pes of job i
  }
}

TEST(ParallelSweepTest, SweepGridIsRowMajorAndMatchesSerial) {
  std::vector<CompiledProgram> programs;
  programs.push_back(make_skewed(256, 11));
  programs.push_back(make_random_permutation(256, 3));
  std::vector<MachineConfig> configs;
  for (const std::uint32_t pes : {2u, 4u, 8u}) {
    configs.push_back(MachineConfig{}.with_pes(pes));
  }

  ThreadPool pool(4);
  const SweepGrid serial = sweep_grid(programs, configs);
  const SweepGrid pooled = sweep_grid(programs, configs, &pool);
  ASSERT_EQ(pooled.columns, configs.size());
  ASSERT_EQ(pooled.results.size(), programs.size() * configs.size());
  for (std::size_t p = 0; p < programs.size(); ++p) {
    for (std::size_t c = 0; c < configs.size(); ++c) {
      // Row-major addressing: cell (p, c) ran program p on config c.
      EXPECT_EQ(pooled.at(p, c).per_pe.size(), configs[c].num_pes);
      EXPECT_EQ(pooled.at(p, c).totals.remote_reads,
                serial.at(p, c).totals.remote_reads);
      EXPECT_EQ(pooled.at(p, c).totals.local_reads,
                serial.at(p, c).totals.local_reads);
    }
  }
  // The two programs produce different distributions, so a transposed or
  // mis-strided grid would be caught here.
  EXPECT_NE(pooled.at(0, 2).totals.remote_reads,
            pooled.at(1, 2).totals.remote_reads);

  // grid_series: one labeled series per program row, xs per column.
  const auto series = grid_series(pooled, {"skewed", "random"}, {2, 4, 8},
                                  remote_read_percent());
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].label, "skewed");
  ASSERT_EQ(series[1].points.size(), 3u);
  for (std::size_t c = 0; c < configs.size(); ++c) {
    EXPECT_EQ(series[1].points[c].y,
              remote_read_percent()(pooled.at(1, c)));
  }
}

TEST(ParallelSweepTest, RepeatedParallelRunsAreStable) {
  const CompiledProgram prog = build_k1_hydro();
  ThreadPool pool(8);
  const std::string first =
      render(figure_series(prog, MachineConfig{}, {1, 4, 16}, {32}, &pool));
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(
        render(figure_series(prog, MachineConfig{}, {1, 4, 16}, {32}, &pool)),
        first);
  }
}

}  // namespace
}  // namespace sap
