#include "core/eval.hpp"

#include <gtest/gtest.h>

#include "core/program_builder.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

/// Reader over a fixed map of (array, first-index) -> value.
class MapReader final : public ArrayReader {
 public:
  void set(const std::string& array, std::int64_t i, double v) {
    values_[{array, i}] = v;
  }
  std::optional<double> read(
      const std::string& array,
      const std::vector<std::int64_t>& indices) override {
    const auto it = values_.find({array, indices.at(0)});
    if (it == values_.end()) return std::nullopt;  // simulate suspension
    return it->second;
  }

 private:
  std::map<std::pair<std::string, std::int64_t>, double> values_;
};

TEST(EvalTest, Arithmetic) {
  EvalEnv env;
  MapReader reader;
  const Ex e = (Ex(2.0) + Ex(3.0)) * Ex(4.0) - Ex(10.0) / Ex(5.0);
  EXPECT_DOUBLE_EQ(*eval_expr(*e.materialize(), env, reader), 18.0);
}

TEST(EvalTest, VariablesAndNegation) {
  EvalEnv env;
  env.set("X", 7.0);
  MapReader reader;
  const Ex e = -ex_var("X") + Ex(1.0);
  EXPECT_DOUBLE_EQ(*eval_expr(*e.materialize(), env, reader), -6.0);
}

TEST(EvalTest, UnboundVariableThrows) {
  EvalEnv env;
  MapReader reader;
  const Ex e = ex_var("NOPE");
  EXPECT_THROW(eval_expr(*e.materialize(), env, reader), Error);
}

TEST(EvalTest, Intrinsics) {
  EvalEnv env;
  MapReader reader;
  EXPECT_DOUBLE_EQ(
      *eval_expr(*ex_idiv(Ex(7.0), Ex(2.0)).materialize(), env, reader), 3.0);
  EXPECT_DOUBLE_EQ(
      *eval_expr(*ex_idiv(Ex(-7.0), Ex(2.0)).materialize(), env, reader),
      -3.0);  // truncation like Fortran INTEGER division
  EXPECT_DOUBLE_EQ(
      *eval_expr(*ex_mod(Ex(7.0), Ex(3.0)).materialize(), env, reader), 1.0);
  EXPECT_DOUBLE_EQ(
      *eval_expr(*ex_min(Ex(2.0), Ex(5.0)).materialize(), env, reader), 2.0);
  EXPECT_DOUBLE_EQ(
      *eval_expr(*ex_max(Ex(2.0), Ex(5.0)).materialize(), env, reader), 5.0);
  EXPECT_DOUBLE_EQ(
      *eval_expr(*ex_abs(Ex(-4.0)).materialize(), env, reader), 4.0);
}

TEST(EvalTest, DivisionByZeroThrows) {
  EvalEnv env;
  MapReader reader;
  EXPECT_THROW(eval_expr(*(Ex(1.0) / Ex(0.0)).materialize(), env, reader),
               Error);
  EXPECT_THROW(
      eval_expr(*ex_idiv(Ex(1.0), Ex(0.0)).materialize(), env, reader), Error);
}

TEST(EvalTest, ArrayReadGoesThroughReader) {
  EvalEnv env;
  env.set("K", 3.0);
  MapReader reader;
  reader.set("B", 3, 42.0);
  const Ex e = ex_at("B", {ex_var("K")});
  EXPECT_DOUBLE_EQ(*eval_expr(*e.materialize(), env, reader), 42.0);
}

TEST(EvalTest, SuspensionPropagates) {
  EvalEnv env;
  MapReader reader;  // empty: every read suspends
  const Ex e = Ex(1.0) + ex_at("B", {Ex(1.0)});
  EXPECT_EQ(eval_expr(*e.materialize(), env, reader), std::nullopt);
}

TEST(EvalTest, IndexMustBeIntegral) {
  EvalEnv env;
  MapReader reader;
  EXPECT_EQ(*eval_index(*Ex(3.0).materialize(), env, reader), 3);
  EXPECT_THROW(eval_index(*Ex(2.5).materialize(), env, reader), Error);
}

TEST(EvalTest, IndirectIndexReadsInnerArray) {
  EvalEnv env;
  env.set("K", 1.0);
  MapReader reader;
  reader.set("P", 1, 5.0);
  reader.set("B", 5, 99.0);
  const Ex e = ex_at("B", {ex_at("P", {ex_var("K")})});
  EXPECT_DOUBLE_EQ(*eval_expr(*e.materialize(), env, reader), 99.0);
}

TEST(EvalTest, ComparisonsYieldOneOrZero) {
  EvalEnv env;
  MapReader reader;
  const auto run = [&](Ex e) {
    return *eval_expr(*e.materialize(), env, reader);
  };
  EXPECT_DOUBLE_EQ(run(ex_lt(Ex(1.0), Ex(2.0))), 1.0);
  EXPECT_DOUBLE_EQ(run(ex_lt(Ex(2.0), Ex(2.0))), 0.0);
  EXPECT_DOUBLE_EQ(run(ex_le(Ex(2.0), Ex(2.0))), 1.0);
  EXPECT_DOUBLE_EQ(run(ex_gt(Ex(3.0), Ex(2.0))), 1.0);
  EXPECT_DOUBLE_EQ(run(ex_ge(Ex(1.0), Ex(2.0))), 0.0);
  EXPECT_DOUBLE_EQ(run(ex_eq(Ex(2.0), Ex(2.0))), 1.0);
  EXPECT_DOUBLE_EQ(run(ex_ne(Ex(2.0), Ex(2.0))), 0.0);
  EXPECT_DOUBLE_EQ(run(ex_ne(Ex(-0.0), Ex(0.0))), 0.0);  // IEEE equality
}

TEST(EvalTest, LogicalsAreStrict) {
  EvalEnv env;
  MapReader reader;
  reader.set("A", 1, 0.0);
  const auto run = [&](Ex e) {
    return *eval_expr(*e.materialize(), env, reader);
  };
  EXPECT_DOUBLE_EQ(run(ex_and(ex_gt(Ex(1.0), Ex(0.0)),
                              ex_gt(Ex(2.0), Ex(0.0)))), 1.0);
  EXPECT_DOUBLE_EQ(run(ex_and(ex_gt(Ex(1.0), Ex(0.0)),
                              ex_gt(Ex(0.0), Ex(1.0)))), 0.0);
  EXPECT_DOUBLE_EQ(run(ex_or(ex_gt(Ex(0.0), Ex(1.0)),
                             ex_gt(Ex(2.0), Ex(0.0)))), 1.0);
  EXPECT_DOUBLE_EQ(run(ex_not(ex_gt(Ex(0.0), Ex(1.0)))), 1.0);
  EXPECT_DOUBLE_EQ(run(ex_not(ex_gt(Ex(1.0), Ex(0.0)))), 0.0);
}

TEST(EvalTest, SelectPicksByCondition) {
  EvalEnv env;
  MapReader reader;
  reader.set("A", 1, 10.0);
  reader.set("B", 1, 20.0);
  const auto run = [&](Ex e) {
    return *eval_expr(*e.materialize(), env, reader);
  };
  EXPECT_DOUBLE_EQ(run(ex_select(ex_lt(Ex(1.0), Ex(2.0)),
                                 ex_at("A", {Ex(1)}), ex_at("B", {Ex(1)}))),
                   10.0);
  EXPECT_DOUBLE_EQ(run(ex_select(ex_gt(Ex(1.0), Ex(2.0)),
                                 ex_at("A", {Ex(1)}), ex_at("B", {Ex(1)}))),
                   20.0);
}

TEST(EvalTest, SelectOnlyReadsTheTakenArm) {
  // The untaken arm's read must never reach the reader: B(1) is undefined
  // in the reader (a read would "suspend"), yet the SELECT succeeds.
  EvalEnv env;
  MapReader reader;
  reader.set("A", 1, 10.0);  // B deliberately absent
  const Ex e = ex_select(ex_lt(Ex(1.0), Ex(2.0)), ex_at("A", {Ex(1)}),
                         ex_at("B", {Ex(1)}));
  const auto v = eval_expr(*e.materialize(), env, reader);
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 10.0);
}

TEST(EvalTest, SelectSuspendsWhenTakenArmSuspends) {
  EvalEnv env;
  MapReader reader;
  reader.set("B", 1, 20.0);  // A absent: the taken arm suspends
  const Ex e = ex_select(ex_lt(Ex(1.0), Ex(2.0)), ex_at("A", {Ex(1)}),
                         ex_at("B", {Ex(1)}));
  EXPECT_FALSE(eval_expr(*e.materialize(), env, reader).has_value());
}

TEST(EvalTest, EnvSnapshotRestore) {
  EvalEnv env;
  env.set("A", 1.0);
  env.set("B", 2.0);
  const auto snapshot = env.values();
  env.set("A", 9.0);
  env.erase("B");
  EvalEnv restored;
  restored.restore(snapshot);
  EXPECT_DOUBLE_EQ(restored.get("A"), 1.0);
  EXPECT_DOUBLE_EQ(restored.get("B"), 2.0);
}

}  // namespace
}  // namespace sap
