#include "core/reference_interpreter.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/program_builder.hpp"
#include "kernels/livermore.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

TEST(ReferenceInterpreterTest, SimpleLoopValues) {
  ProgramBuilder b("T");
  b.array("A", {10});
  b.begin_loop("K", 1, 10);
  b.assign("A", {b.var("K")}, b.var("K") * 2.0);
  b.end_loop();
  const auto registry = run_reference(b.compile());
  const SaArray& a = registry->by_name("A");
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.read(i), 2.0 * static_cast<double>(i + 1));
  }
}

TEST(ReferenceInterpreterTest, InputArraysGetSyntheticData) {
  ProgramBuilder b("T");
  b.array("A", {4});
  b.input_array("B", {4});
  b.begin_loop("K", 1, 4);
  b.assign("A", {b.var("K")}, b.at("B", {b.var("K")}));
  b.end_loop();
  const auto registry = run_reference(b.compile());
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(registry->by_name("A").read(i),
                     synthetic_init_value("B", i));
    EXPECT_GE(registry->by_name("B").read(i), 0.5);  // positive init data
  }
}

TEST(ReferenceInterpreterTest, RecurrenceUsesEarlierWrites) {
  // X(i) = X(i-1) + 1 with X(1) = seed: X(i) = seed + i - 1.
  ProgramBuilder b("T");
  b.prefix_array("X", {10}, 1);
  b.begin_loop("I", 2, 10);
  b.assign("X", {b.var("I")}, b.at("X", {b.var("I") - 1}) + 1.0);
  b.end_loop();
  const auto registry = run_reference(b.compile());
  const double seed = synthetic_init_value("X", 0);
  EXPECT_DOUBLE_EQ(registry->by_name("X").read(9), seed + 9.0);
}

TEST(ReferenceInterpreterTest, ReductionCommitsOnce) {
  // Dot product of the synthetic init data.
  ProgramBuilder b("T");
  b.array("S", {1});
  b.input_array("X", {50});
  b.begin_loop("K", 1, 50);
  b.assign("S", {1}, b.at("S", {1}) + b.at("X", {b.var("K")}));
  b.end_loop();
  const auto registry = run_reference(b.compile());
  double expected = 0.0;
  for (std::int64_t i = 0; i < 50; ++i) {
    expected += synthetic_init_value("X", i);
  }
  EXPECT_DOUBLE_EQ(registry->by_name("S").read(0), expected);
}

TEST(ReferenceInterpreterTest, PerElementReductionCommitsAtTripEnd) {
  // W(i) accumulates i-1 terms then commits; later iterations read it.
  ProgramBuilder b("T");
  b.prefix_array("W", {6}, 1);
  b.begin_loop("I", 2, 6);
  b.begin_loop("K", 1, b.var("I") - 1);
  b.assign("W", {b.var("I")}, b.at("W", {b.var("I")}) + b.at("W", {b.var("K")}));
  b.end_loop();
  b.end_loop();
  const auto registry = run_reference(b.compile());
  // W(2) = W(1); W(3) = W(1)+W(2); each is a prefix-sum doubling chain.
  const double w1 = synthetic_init_value("W", 0);
  EXPECT_DOUBLE_EQ(registry->by_name("W").read(1), w1);
  EXPECT_DOUBLE_EQ(registry->by_name("W").read(2), 2.0 * w1);
  EXPECT_DOUBLE_EQ(registry->by_name("W").read(3), 4.0 * w1);
}

TEST(ReferenceInterpreterTest, DoubleWriteTraps) {
  ProgramBuilder b("T");
  b.array("A", {4});
  b.begin_loop("K", 1, 4);
  b.assign("A", {1}, b.var("K"));
  b.end_loop();
  EXPECT_THROW(run_reference(b.compile()), DoubleWriteError);
}

TEST(ReferenceInterpreterTest, ReadBeforeWriteTraps) {
  ProgramBuilder b("T");
  b.array("A", {4});
  b.array("B", {4});
  b.begin_loop("K", 1, 4);
  b.assign("A", {b.var("K")}, b.at("B", {b.var("K")}));  // B never written
  b.end_loop();
  EXPECT_THROW(run_reference(b.compile()), UndefinedReadError);
}

TEST(ReferenceInterpreterTest, ZeroTripLoopRunsNothing) {
  ProgramBuilder b("T");
  b.array("A", {4});
  b.begin_loop("K", 5, 4);  // empty range
  b.assign("A", {b.var("K")}, 1.0);
  b.end_loop();
  const auto registry = run_reference(b.compile());
  EXPECT_EQ(registry->by_name("A").defined_count(), 0);
}

TEST(ReferenceInterpreterTest, NegativeStepLoop) {
  ProgramBuilder b("T");
  b.array("A", {5});
  b.begin_loop_step("K", 5, 1, Ex(-2));
  b.assign("A", {b.var("K")}, b.var("K"));
  b.end_loop();
  const auto registry = run_reference(b.compile());
  EXPECT_EQ(registry->by_name("A").defined_count(), 3);  // 5, 3, 1
  EXPECT_DOUBLE_EQ(registry->by_name("A").read(4), 5.0);
}

TEST(ReferenceInterpreterTest, GuardedBranchesComputeGroundTruth) {
  // k16's running minimum must equal the true prefix minimum of the
  // synthetic input data — guards actually steer the values, not just
  // the accounting.
  const CompiledProgram prog = build_k16_min_search(64);
  const auto registry = run_reference(prog);
  const SaArray& x = registry->by_name("X");
  const SaArray& xm = registry->by_name("XM");
  double running = xm.read(0);  // the seeded prefix cell
  for (std::int64_t i = 1; i < 64; ++i) {
    running = std::min(running, x.read(i));
    EXPECT_DOUBLE_EQ(xm.read(i), running) << "XM[" << i << "]";
  }
}

TEST(ReferenceInterpreterTest, SelectRecurrenceComputesArgmin) {
  // k24's LOC chain: LOC(k) is the 1-based position of the minimum of
  // {XM(1), X(2..k)} — SELECT picks lazily but must pick correctly.
  const CompiledProgram prog = build_k24_first_min(64);
  const auto registry = run_reference(prog);
  const SaArray& x = registry->by_name("X");
  const SaArray& xm = registry->by_name("XM");
  const SaArray& loc = registry->by_name("LOC");
  double best = xm.read(0);
  double best_pos = loc.read(0);
  for (std::int64_t i = 1; i < 64; ++i) {
    if (x.read(i) < best) {
      best = x.read(i);
      best_pos = static_cast<double>(i + 1);  // DSL indices are 1-based
    }
    EXPECT_DOUBLE_EQ(loc.read(i), best_pos) << "LOC[" << i << "]";
    EXPECT_DOUBLE_EQ(xm.read(i), best) << "XM[" << i << "]";
  }
}

TEST(ReferenceInterpreterTest, UndefinedGuardReadTraps) {
  // A guard reading a never-written cell is illegal input and must trap
  // like any other read-before-write in the strict modes.
  ProgramBuilder b("bad_guard");
  b.array("A", {4});
  b.array("U", {4});  // INIT NONE, never written
  b.begin_if(ex_gt(b.at("U", {Ex(1)}), ex_num(0.0)));
  b.assign("A", {Ex(1)}, ex_num(1.0));
  b.end_if();
  EXPECT_THROW(run_reference(b.compile()), UndefinedReadError);
}

TEST(ReferenceInterpreterTest, AllKernelsExecuteCleanly) {
  for (const auto& spec : livermore_kernels()) {
    EXPECT_NO_THROW({
      const auto registry = run_reference(spec.build());
      EXPECT_GT(registry->total_elements(), 0) << spec.id;
    }) << spec.id;
  }
}

}  // namespace
}  // namespace sap
