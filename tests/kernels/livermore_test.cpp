#include "kernels/livermore.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

TEST(LivermoreTest, RegistryIsCompleteAndOrdered) {
  const auto& kernels = livermore_kernels();
  EXPECT_EQ(kernels.size(), 19u);
  for (std::size_t i = 1; i < kernels.size(); ++i) {
    EXPECT_LT(kernels[i - 1].lfk_number, kernels[i].lfk_number);
  }
  // The paper's named kernels are all present.
  int named = 0;
  for (const auto& spec : kernels) {
    if (spec.named_in_paper) ++named;
  }
  EXPECT_EQ(named, 10);
}

TEST(LivermoreTest, LookupById) {
  EXPECT_EQ(kernel_by_id("k01_hydro").lfk_number, 1);
  EXPECT_EQ(kernel_by_id("k18_hydro2d").title,
            "2-D Explicit Hydrodynamics Fragment");
  EXPECT_THROW(kernel_by_id("k99_nope"), Error);
}

TEST(LivermoreTest, EveryKernelCompilesAndSimulates) {
  const Simulator sim(MachineConfig{}.with_pes(8));
  for (const auto& spec : livermore_kernels()) {
    const CompiledProgram prog = spec.build();
    const SimulationResult result = sim.run(prog);
    EXPECT_GT(result.totals.writes, 0u) << spec.id;
    EXPECT_GT(result.totals.total_reads(), 0u) << spec.id;
  }
}

TEST(LivermoreTest, HydroCountsMatchHandAnalysis) {
  // K1: 400 iterations, 3 reads each; skew 10/11 with ps 32 makes 21 of
  // every 96 reads remote without a cache (the paper's ~21%), and exactly
  // one page fetch per crossed boundary with the cache (the paper's 1%).
  const CompiledProgram prog = build_k1_hydro();
  const Simulator nocache(MachineConfig{}.with_pes(4).with_cache(0));
  const auto r0 = nocache.run(prog);
  EXPECT_EQ(r0.totals.writes, 400u);
  EXPECT_EQ(r0.totals.total_reads(), 1200u);
  EXPECT_NEAR(r0.remote_read_fraction(), 0.21, 0.001);

  const Simulator cached(MachineConfig{}.with_pes(4).with_cache(256));
  const auto r1 = cached.run(prog);
  EXPECT_NEAR(r1.remote_read_fraction(), 0.01, 0.001);
}

TEST(LivermoreTest, IccgWriteCountIsGeometricSum) {
  // Levels of length n/2, n/4, ..., 2 writes: n=512 -> 256+...+2 = 510.
  const CompiledProgram prog = build_k2_iccg(512);
  const Simulator sim(MachineConfig{}.with_pes(1));
  EXPECT_EQ(sim.run(prog).totals.writes, 510u);
}

TEST(LivermoreTest, IccgParameterized) {
  const CompiledProgram prog = build_k2_iccg(128);
  const Simulator sim(MachineConfig{}.with_pes(4));
  EXPECT_EQ(sim.run(prog).totals.writes, 126u);  // 64+32+16+8+4+2
  EXPECT_THROW(build_k2_iccg(100), Error);  // not a power of two
}

TEST(LivermoreTest, PicMatchedIsZeroRemoteEverywhere) {
  // §7.1.1: "Access patterns that fall into this class will always
  // achieve a 0% remote access ratio."
  const CompiledProgram prog = build_k14_pic_1d();
  for (const std::uint32_t pes : {1u, 2u, 7u, 16u, 64u}) {
    const Simulator sim(MachineConfig{}.with_pes(pes));
    EXPECT_EQ(sim.run(prog).totals.remote_reads, 0u) << pes;
  }
}

TEST(LivermoreTest, GlrReductionCommitsOncePerElement) {
  const CompiledProgram prog = build_k6_general_linear_recurrence(50);
  const Simulator sim(MachineConfig{}.with_pes(4));
  // W(2..50) committed once each: 49 writes.
  EXPECT_EQ(sim.run(prog).totals.writes, 49u);
}

TEST(LivermoreTest, MatmulWriteCount) {
  const CompiledProgram prog = build_k21_matmul(16);
  const Simulator sim(MachineConfig{}.with_pes(4));
  EXPECT_EQ(sim.run(prog).totals.writes, 16u * 16u);
}

TEST(LivermoreTest, Hydro2dLoadBalanceIsFlat) {
  // §7.2 / Figure 5: every PE performs a comparable number of local and
  // remote reads under the area-of-responsibility rule.
  const CompiledProgram prog = build_k18_explicit_hydro_2d(400);
  const Simulator sim(MachineConfig{}.with_pes(64).with_page_size(32));
  const SimulationResult result = sim.run(prog);
  const LoadBalance local = result.local_read_balance();
  EXPECT_LT(local.coefficient_of_variation(), 0.35);
  EXPECT_GT(result.totals.remote_reads, 0u);
}

TEST(LivermoreTest, AdiStaysRandomAcrossPageSizes) {
  const CompiledProgram prog = build_k8_adi(200);
  for (const std::int64_t ps : {32, 64}) {
    const Simulator sim(
        MachineConfig{}.with_pes(16).with_page_size(ps).with_cache(256));
    EXPECT_GT(sim.run(prog).remote_read_fraction(), 0.10) << ps;
  }
}

}  // namespace
}  // namespace sap
