#include "kernels/dsl_sources.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "kernels/livermore.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

TEST(DslSourcesTest, LookupByIdWorks) {
  EXPECT_FALSE(dsl_source_for("k01_hydro").empty());
  EXPECT_THROW(dsl_source_for("k99_missing"), Error);
}

TEST(DslSourcesTest, EverySourceCompiles) {
  for (const auto& entry : dsl_kernel_sources()) {
    EXPECT_NO_THROW(compile_source(entry.source)) << entry.id;
  }
}

/// The front-end path (DSL text) must produce the exact same access
/// distribution as the ProgramBuilder path for every kernel that has both
/// forms — this pins lexer, parser, sema and lowering end to end.
class DslBuilderEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DslBuilderEquivalence, SameAccessDistribution) {
  const auto& entry = dsl_kernel_sources().at(GetParam());
  const CompiledProgram from_dsl = compile_source(entry.source);
  const CompiledProgram from_builder = build_kernel(entry.id);

  for (const std::uint32_t pes : {2u, 8u}) {
    const Simulator sim(MachineConfig{}.with_pes(pes));
    const auto a = sim.run(from_dsl);
    const auto b = sim.run(from_builder);
    EXPECT_EQ(a.totals, b.totals) << entry.id << " pes=" << pes;
    EXPECT_EQ(a.per_pe.size(), b.per_pe.size());
    for (std::size_t pe = 0; pe < a.per_pe.size(); ++pe) {
      EXPECT_EQ(a.per_pe[pe], b.per_pe[pe])
          << entry.id << " pes=" << pes << " pe=" << pe;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDslKernels, DslBuilderEquivalence,
                         ::testing::Range<std::size_t>(0, 12));

}  // namespace
}  // namespace sap
