#include "kernels/synthetic.hpp"

#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "frontend/classifier.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

TEST(SyntheticTest, MatchedAlwaysZeroRemote) {
  // Property: matched class gives 0% remote for every size and PE count.
  for (const std::int64_t n : {33, 256, 1000}) {
    const CompiledProgram prog = make_matched(n);
    for (const std::uint32_t pes : {2u, 8u, 32u}) {
      const Simulator sim(MachineConfig{}.with_pes(pes));
      EXPECT_EQ(sim.run(prog).totals.remote_reads, 0u)
          << "n=" << n << " pes=" << pes;
    }
  }
}

class SkewSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(SkewSweep, RemoteFractionBoundedBySkew) {
  // Without a cache, at most min(|skew|, ps)/ps of the skewed stream plus
  // nothing else is remote.
  const auto [n, skew] = GetParam();
  const CompiledProgram prog = make_skewed(n, skew);
  const Simulator sim(MachineConfig{}.with_pes(4).with_cache(0));
  const auto result = sim.run(prog);
  const double ps = 32.0;
  const double bound =
      std::min<double>(static_cast<double>(std::llabs(skew)), ps) / ps / 2.0;
  EXPECT_LE(result.remote_read_fraction(), bound + 1e-9)
      << "n=" << n << " skew=" << skew;
  if (skew != 0) EXPECT_GT(result.totals.remote_reads, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SkewSweep,
    ::testing::Combine(::testing::Values<std::int64_t>(128, 512),
                       ::testing::Values<std::int64_t>(1, 2, 11, 31, 100,
                                                       -11)));

TEST(SyntheticTest, NegativeSkewWorks) {
  const CompiledProgram prog = make_skewed(256, -5);
  const Simulator sim(MachineConfig{}.with_pes(4));
  EXPECT_GT(sim.run(prog).totals.remote_reads, 0u);
}

TEST(SyntheticTest, CyclicReadsTwoPerIteration) {
  const CompiledProgram prog = make_cyclic(128, 2);
  const Simulator sim(MachineConfig{}.with_pes(2));
  const auto result = sim.run(prog);
  EXPECT_EQ(result.totals.writes, 128u);
  EXPECT_EQ(result.totals.total_reads(), 256u);
}

TEST(SyntheticTest, PermutationUsesEveryElementOnce) {
  const CompiledProgram prog = make_random_permutation(64, 5);
  const Simulator sim(MachineConfig{}.with_pes(2));
  const auto result = sim.run(prog);
  // Reads: 64 of P + 64 of B (indirect).
  EXPECT_EQ(result.totals.total_reads(), 128u);
}

TEST(SyntheticTest, PermutationClassIsRandomStatically) {
  const CompiledProgram prog = make_random_permutation(64, 5);
  EXPECT_EQ(classify_program(prog.program, prog.sema).cls,
            AccessClass::kRandom);
}

TEST(SyntheticTest, DotProductSingleCommit) {
  const CompiledProgram prog = make_dot_product(100);
  const Simulator sim(MachineConfig{}.with_pes(4));
  EXPECT_EQ(sim.run(prog).totals.writes, 1u);
}

TEST(SyntheticTest, StencilMatchedUnderAlignedPartitions) {
  const CompiledProgram prog = make_stencil_2d(12, 12);
  EXPECT_EQ(classify_program(prog.program, prog.sema).cls,
            AccessClass::kCyclic);  // multi-dim offsets revisit pages
}

TEST(SyntheticTest, GeneratorsValidateArguments) {
  EXPECT_THROW(make_matched(0), Error);
  EXPECT_THROW(make_cyclic(16, 1), Error);
  EXPECT_THROW(make_stencil_2d(2, 5), Error);
  EXPECT_THROW(make_nonsa_timestep(4, 1), Error);
  EXPECT_THROW(make_mixed_skew_vs_rate(0, 256), Error);
  EXPECT_THROW(make_mixed_multigroup(1024, 0), Error);
}

TEST(SyntheticTest, MixedWorkloadsOnlyHeterogeneityIsFullyLocal) {
  // The design invariant behind ablation A9 (no cache, so the counts are
  // exact): the skew group {A, D} is local only under modulo (the skew is
  // a whole multiple of pages * PEs), the rate group {C, B} is local only
  // under block, so every uniform scheme pays remote reads on one group
  // and the heterogeneous assignment pays none at all.
  const MachineConfig base =
      MachineConfig{}.with_pes(8).with_page_size(32).with_cache(0);
  for (const auto& prog :
       {make_mixed_skew_vs_rate(1024, 256), make_mixed_multigroup(1024, 256)}) {
    const auto remote_under = [&](const MachineConfig& config) {
      return Simulator(config).run(prog).totals.remote_reads;
    };
    EXPECT_GT(remote_under(base), 0u) << prog.name() << " modulo";
    EXPECT_GT(remote_under(base.with_partition(PartitionKind::kBlock)), 0u)
        << prog.name() << " block";
    EXPECT_GT(remote_under(base.with_partition(PartitionKind::kBlockCyclic)),
              0u)
        << prog.name() << " block-cyclic";
    const MachineConfig mixed =
        base.with_array_partition("C", PartitionKind::kBlock)
            .with_array_partition("B", PartitionKind::kBlock);
    EXPECT_EQ(remote_under(mixed), 0u) << prog.name() << " heterogeneous";
  }
}

}  // namespace
}  // namespace sap
