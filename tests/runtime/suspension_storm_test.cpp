// Cross-shard suspension storms: adversarial programs whose dataflow
// replay suspends constantly across PE boundaries — deep read-before-write
// chains, reduction commits feeding later reads, §5 re-init barriers —
// run under the sharded runtime at 1/2/8 workers and checked byte-identical
// against the serial oracle, plus DeadlockError/DoubleWriteError parity.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/dataflow_interpreter.hpp"
#include "core/program_builder.hpp"
#include "core/simulator.hpp"
#include "runtime/sim_runtime.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sap {
namespace {

SimulationResult run_mode(const CompiledProgram& prog,
                          const MachineConfig& config, unsigned workers,
                          std::unique_ptr<Machine>& machine_out,
                          DataflowStats* stats_out = nullptr) {
  machine_out = std::make_unique<Machine>(config);
  materialize_arrays(prog, *machine_out);
  DataflowStats stats;
  if (workers == 0) {
    stats = run_dataflow_serial(prog, *machine_out);
  } else {
    stats = run_dataflow_sharded(prog, *machine_out,
                                 ShardRuntimeOptions{workers});
  }
  if (stats_out != nullptr) *stats_out = stats;
  return machine_out->snapshot(prog.name());
}

void expect_identical_runs(const CompiledProgram& prog,
                           const MachineConfig& config,
                           const std::string& label) {
  std::unique_ptr<Machine> serial_machine;
  const SimulationResult serial = run_mode(prog, config, 0, serial_machine);
  for (const unsigned workers : {1u, 2u, 8u}) {
    std::unique_ptr<Machine> machine;
    const SimulationResult sharded = run_mode(prog, config, workers, machine);
    const std::string tag = label + "/w" + std::to_string(workers);
    EXPECT_EQ(sharded.totals, serial.totals) << tag;
    ASSERT_EQ(sharded.per_pe.size(), serial.per_pe.size()) << tag;
    for (std::size_t pe = 0; pe < serial.per_pe.size(); ++pe) {
      EXPECT_EQ(sharded.per_pe[pe], serial.per_pe[pe]) << tag << " pe=" << pe;
    }
    EXPECT_EQ(sharded.network, serial.network) << tag;
    EXPECT_EQ(sharded.cache_totals.hits, serial.cache_totals.hits) << tag;
    EXPECT_EQ(sharded.cache_totals.misses, serial.cache_totals.misses) << tag;
    EXPECT_EQ(sharded.cache_totals.evictions, serial.cache_totals.evictions)
        << tag;
    EXPECT_EQ(sharded.max_link_load, serial.max_link_load) << tag;
    EXPECT_EQ(sharded.contention_factor, serial.contention_factor) << tag;
    EXPECT_EQ(sharded.reinit_messages, serial.reinit_messages) << tag;
    for (const auto& want : serial_machine->arrays()) {
      const SaArray& got = machine->arrays().by_name(want->name());
      ASSERT_EQ(got.defined_count(), want->defined_count())
          << tag << " " << want->name();
      for (std::int64_t i = 0; i < want->element_count(); ++i) {
        if (!want->is_defined(i)) continue;
        EXPECT_EQ(got.read(i), want->read(i))
            << tag << " " << want->name() << "[" << i << "]";
      }
    }
  }
}

/// X(i) = X(i-1) + 1 with one element per page: every instance depends on
/// the previous PE's write — a maximal cross-shard dependence chain.
CompiledProgram chain_program(std::int64_t n) {
  ProgramBuilder b("chain");
  b.prefix_array("X", {n}, 1);
  b.begin_loop("I", 2, Ex(static_cast<double>(n)));
  b.assign("X", {b.var("I")}, b.at("X", {b.var("I") - 1}) + 1.0);
  b.end_loop();
  return b.compile();
}

TEST(SuspensionStormTest, DeepCrossPeChain) {
  const CompiledProgram prog = chain_program(512);
  MachineConfig config;
  config.num_pes = 16;
  config.page_size = 1;  // every element its own page: owner hops each step
  config.cache_elements = 8;

  // Prove it is a storm: the serial oracle suspends on most instances.
  std::unique_ptr<Machine> machine;
  DataflowStats stats;
  run_mode(prog, config, 0, machine, &stats);
  EXPECT_GT(stats.suspensions, 200u);

  expect_identical_runs(prog, config, "chain512");
}

/// Interleaved chains + trip-end reduction commits + a final pass reading
/// the committed values: commits feed cross-PE reads, so shards park on
/// cells whose defining write is a commit on another shard.
CompiledProgram chains_and_reductions(std::int64_t n, std::int64_t rows) {
  ProgramBuilder b("storm_mix");
  b.prefix_array("X", {n}, 1);
  b.array("ROWSUM", {rows});
  b.input_array("W", {n});
  b.array("OUT", {n});
  b.begin_loop("I", 2, Ex(static_cast<double>(n)));
  b.assign("X", {b.var("I")}, b.at("X", {b.var("I") - 1}) + 1.0);
  b.end_loop();
  b.begin_loop("R", 1, Ex(static_cast<double>(rows)));
  b.begin_loop("K", 1, Ex(static_cast<double>(n / rows)));
  b.assign("ROWSUM", {b.var("R")},
           b.at("ROWSUM", {b.var("R")}) +
               b.at("X", {(b.var("R") - 1) * static_cast<int>(n / rows) +
                          b.var("K")}) *
                   b.at("W", {b.var("K")}));
  b.end_loop();
  b.end_loop();
  b.begin_loop("J", 1, Ex(static_cast<double>(n)));
  b.assign("OUT", {b.var("J")},
           b.at("X", {b.var("J")}) +
               b.at("ROWSUM", {ex_min(ex_idiv(b.var("J") - 1,
                                              static_cast<int>(n / rows)) +
                                          1,
                                      Ex(static_cast<double>(rows)))}));
  b.end_loop();
  return b.compile();
}

TEST(SuspensionStormTest, ChainsReductionsAndCommitConsumers) {
  const CompiledProgram prog = chains_and_reductions(240, 8);
  MachineConfig config;
  config.num_pes = 12;
  config.page_size = 2;
  config.cache_elements = 16;
  expect_identical_runs(prog, config, "storm_mix");
}

/// §5 barriers under the storm: a timestep loop re-initializing the chain
/// array each trip, so every shard parks at the barrier between chains.
CompiledProgram reinit_storm(std::int64_t n, std::int64_t steps) {
  ProgramBuilder b("reinit_storm");
  b.array("A", {n});
  b.input_array("B", {n});
  b.array("LAST", {static_cast<std::int64_t>(1)});
  b.begin_loop("T", 1, Ex(static_cast<double>(steps)));
  b.reinit("A");
  b.begin_loop("I", 1, Ex(static_cast<double>(n)));
  b.assign("A", {b.var("I")}, b.at("B", {b.var("I")}) * b.var("T"));
  b.end_loop();
  b.end_loop();
  b.assign("LAST", {1}, b.at("A", {1}));
  return b.compile();
}

TEST(SuspensionStormTest, ReinitBarriersUnderStorm) {
  const CompiledProgram prog = reinit_storm(192, 5);
  MachineConfig config;
  config.num_pes = 8;
  config.page_size = 4;
  expect_identical_runs(prog, config, "reinit_storm");
}

/// Seeded random chain/reduction mixes — randomized lag patterns create
/// irregular cross-shard wait graphs.
CompiledProgram random_storm(std::uint64_t seed) {
  SplitMix64 rng(seed);
  const std::int64_t n =
      96 + static_cast<std::int64_t>(rng.next_below(5)) * 32;
  const std::int64_t lag = 1 + static_cast<std::int64_t>(rng.next_below(7));
  ProgramBuilder b("rstorm" + std::to_string(seed));
  b.prefix_array("X", {n}, lag);
  b.input_array("B", {n});
  b.array("S", {static_cast<std::int64_t>(1)});
  b.begin_loop("I", Ex(static_cast<double>(lag + 1)),
               Ex(static_cast<double>(n)));
  Ex value = b.at("X", {b.var("I") - static_cast<int>(lag)}) +
             b.at("B", {b.var("I")});
  if (rng.next_below(2) == 0) {
    value = value + b.at("B", {ex_max(b.var("I") - 3, 1)});
  }
  b.assign("X", {b.var("I")}, std::move(value));
  b.end_loop();
  b.begin_loop("K", 1, Ex(static_cast<double>(n)));
  b.assign("S", {1}, b.at("S", {1}) + b.at("X", {b.var("K")}));
  b.end_loop();
  return b.compile();
}

TEST(SuspensionStormTest, SeededRandomStorms) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const CompiledProgram prog = random_storm(seed);
    MachineConfig config;
    config.num_pes = 1 + static_cast<std::uint32_t>(seed % 3) * 7;  // 1/8/15
    config.page_size = 1 + static_cast<std::int64_t>(seed % 4);
    expect_identical_runs(prog, config, "rstorm" + std::to_string(seed));
  }
}

// ------------------------------------------------------------ error parity

TEST(SuspensionStormTest, DeadlockErrorParity) {
  // OUT(K) = A(K) with A never written: sequential read-before-write.  The
  // serial oracle deadlocks; so must the sharded runtime, at every worker
  // count, with the scheduler-level quiescence detector.
  ProgramBuilder b("rbw");
  b.array("A", {64});
  b.array("OUT", {64});
  b.begin_loop("K", 1, 64);
  b.assign("OUT", {b.var("K")}, b.at("A", {b.var("K")}));
  b.end_loop();
  const CompiledProgram prog = b.compile();
  const MachineConfig config = MachineConfig{}.with_pes(8);

  {
    Machine machine(config);
    materialize_arrays(prog, machine);
    EXPECT_THROW(run_dataflow_serial(prog, machine), DeadlockError);
  }
  for (const unsigned workers : {1u, 2u, 8u}) {
    Machine machine(config);
    materialize_arrays(prog, machine);
    EXPECT_THROW(
        run_dataflow_sharded(prog, machine, ShardRuntimeOptions{workers}),
        DeadlockError)
        << "workers=" << workers;
  }
}

TEST(SuspensionStormTest, DoubleWriteErrorParity) {
  // A(IDIV(K+1, 2)) hits each cell twice — the paper's runtime trap.
  ProgramBuilder b("dw");
  b.array("A", {32});
  b.begin_loop("K", 1, 64);
  b.assign("A", {ex_idiv(b.var("K") + 1, 2)}, b.var("K"));
  b.end_loop();
  const CompiledProgram prog = b.compile();
  const MachineConfig config = MachineConfig{}.with_pes(8);

  {
    Machine machine(config);
    materialize_arrays(prog, machine);
    EXPECT_THROW(run_dataflow_serial(prog, machine), DoubleWriteError);
  }
  for (const unsigned workers : {1u, 2u, 8u}) {
    Machine machine(config);
    materialize_arrays(prog, machine);
    EXPECT_THROW(
        run_dataflow_sharded(prog, machine, ShardRuntimeOptions{workers}),
        DoubleWriteError)
        << "workers=" << workers;
  }
}

}  // namespace
}  // namespace sap
