// Unit tests for the sharded runtime's building blocks: env knobs,
// the streaming instance container, per-shard network buffers, and the
// scheduler's equivalence on small programs.
#include "runtime/sim_runtime.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/dataflow_trace.hpp"
#include "core/program_builder.hpp"
#include "kernels/synthetic.hpp"
#include "network/topology.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* current = std::getenv(name);
    if (current != nullptr) saved_ = current;
    had_ = current != nullptr;
  }
  ~EnvGuard() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(DataflowSchedulerEnvTest, DefaultsToSharded) {
  const EnvGuard guard("SAPART_DATAFLOW");
  unsetenv("SAPART_DATAFLOW");
  EXPECT_EQ(dataflow_scheduler_from_env(), DataflowScheduler::kSharded);
  setenv("SAPART_DATAFLOW", "sharded", 1);
  EXPECT_EQ(dataflow_scheduler_from_env(), DataflowScheduler::kSharded);
  setenv("SAPART_DATAFLOW", "serial", 1);
  EXPECT_EQ(dataflow_scheduler_from_env(), DataflowScheduler::kSerial);
}

TEST(DataflowSchedulerEnvTest, RejectsUnknownValuesNamingTheValidSet) {
  const EnvGuard guard("SAPART_DATAFLOW");
  setenv("SAPART_DATAFLOW", "parallel", 1);
  try {
    dataflow_scheduler_from_env();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("'sharded' or 'serial'"), std::string::npos);
    EXPECT_NE(message.find("parallel"), std::string::npos);
  }
  setenv("SAPART_DATAFLOW", "", 1);
  EXPECT_THROW(dataflow_scheduler_from_env(), ConfigError);
}

TEST(ShardWorkersEnvTest, ParsesLikeSapartWorkers) {
  const EnvGuard guard("SAPART_SHARD_WORKERS");
  unsetenv("SAPART_SHARD_WORKERS");
  EXPECT_EQ(shard_workers_from_env(), 0u);  // 0 = no override
  setenv("SAPART_SHARD_WORKERS", "6", 1);
  EXPECT_EQ(shard_workers_from_env(), 6u);
  setenv("SAPART_SHARD_WORKERS", "0", 1);
  EXPECT_THROW(shard_workers_from_env(), ConfigError);
  setenv("SAPART_SHARD_WORKERS", "-2", 1);
  EXPECT_THROW(shard_workers_from_env(), ConfigError);
  setenv("SAPART_SHARD_WORKERS", "many", 1);
  EXPECT_THROW(shard_workers_from_env(), ConfigError);
}

TEST(InstanceStreamTest, PublishGatesVisibilityAcrossChunks) {
  InstanceStream stream;
  const std::size_t total = InstanceStream::kChunkSize * 3 + 17;
  for (std::size_t i = 0; i < total; ++i) {
    TraceInstance& inst = stream.append();
    inst.kind = TraceInstance::Kind::kStatement;
    inst.target_linear = static_cast<std::int64_t>(i);
    if (i == InstanceStream::kChunkSize) stream.publish();
  }
  // Only the prefix published mid-way is visible...
  EXPECT_EQ(stream.published(), InstanceStream::kChunkSize + 1);
  EXPECT_EQ(stream.size(), total);
  stream.publish();
  EXPECT_EQ(stream.published(), total);

  InstanceStream::Reader reader(stream);
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_EQ(reader.get(i).target_linear, static_cast<std::int64_t>(i));
  }
  // Readers may revisit earlier chunks (another consumer's view).
  InstanceStream::Reader second(stream);
  EXPECT_EQ(second.get(total - 1).target_linear,
            static_cast<std::int64_t>(total - 1));
  EXPECT_EQ(second.get(0).target_linear, 0);
}

TEST(NetworkBufferTest, AbsorbMatchesDirectSends) {
  const auto messages = [] {
    std::vector<Message> out;
    for (std::uint32_t i = 0; i < 12; ++i) {
      out.push_back({i % 4, (i + 1) % 4,
                     i % 3 == 0 ? MessageKind::kPageRequest
                                : MessageKind::kPageReply,
                     static_cast<std::int64_t>(i * 5)});
    }
    return out;
  }();

  Network direct(make_topology(TopologyKind::kMesh2D, 4));
  for (const Message& m : messages) direct.send(m);

  // Same messages split across two per-shard buffers, merged in order.
  Network merged(make_topology(TopologyKind::kMesh2D, 4));
  NetworkBuffer shard0(merged.topology());
  NetworkBuffer shard1(merged.topology());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    (i % 2 == 0 ? shard0 : shard1).send(messages[i]);
  }
  merged.absorb(shard0);
  merged.absorb(shard1);

  EXPECT_EQ(merged.stats(), direct.stats());
  EXPECT_EQ(merged.max_link_load(), direct.max_link_load());
  EXPECT_EQ(merged.mean_link_load(), direct.mean_link_load());
  EXPECT_EQ(merged.pair_traffic(), direct.pair_traffic());
}

SimulationResult run_serial(const CompiledProgram& prog,
                            const MachineConfig& config) {
  Machine machine(config);
  materialize_arrays(prog, machine);
  run_dataflow_serial(prog, machine);
  return machine.snapshot(prog.name());
}

SimulationResult run_sharded(const CompiledProgram& prog,
                             const MachineConfig& config, unsigned workers) {
  Machine machine(config);
  materialize_arrays(prog, machine);
  const DataflowStats stats =
      run_dataflow_sharded(prog, machine, ShardRuntimeOptions{workers});
  EXPECT_EQ(stats.workers, std::min(workers, config.num_pes));
  return machine.snapshot(prog.name());
}

void expect_identical(const SimulationResult& a, const SimulationResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.totals, b.totals) << label;
  ASSERT_EQ(a.per_pe.size(), b.per_pe.size()) << label;
  for (std::size_t pe = 0; pe < a.per_pe.size(); ++pe) {
    EXPECT_EQ(a.per_pe[pe], b.per_pe[pe]) << label << " pe=" << pe;
  }
  EXPECT_EQ(a.network, b.network) << label;
  EXPECT_EQ(a.cache_totals.hits, b.cache_totals.hits) << label;
  EXPECT_EQ(a.cache_totals.misses, b.cache_totals.misses) << label;
  EXPECT_EQ(a.cache_totals.evictions, b.cache_totals.evictions) << label;
  EXPECT_EQ(a.cache_totals.invalidations, b.cache_totals.invalidations)
      << label;
  EXPECT_EQ(a.max_link_load, b.max_link_load) << label;
  EXPECT_EQ(a.contention_factor, b.contention_factor) << label;
  EXPECT_EQ(a.reinit_messages, b.reinit_messages) << label;
}

TEST(SimRuntimeTest, MatchesSerialOnSmallPrograms) {
  const MachineConfig config =
      MachineConfig{}.with_pes(4).with_page_size(8);
  const std::vector<std::pair<std::string, CompiledProgram>> programs = [] {
    std::vector<std::pair<std::string, CompiledProgram>> out;
    out.emplace_back("matched", make_matched(100));
    out.emplace_back("dot", make_dot_product(64));
    out.emplace_back("stencil", make_stencil_2d(8, 8));
    return out;
  }();
  for (const auto& [label, prog] : programs) {
    const SimulationResult serial = run_serial(prog, config);
    for (const unsigned workers : {1u, 2u, 8u}) {
      expect_identical(run_sharded(prog, config, workers), serial,
                       label + "/w" + std::to_string(workers));
    }
  }
}

TEST(SimRuntimeTest, WorkerCountClampsToPeCount) {
  const CompiledProgram prog = make_matched(32);
  Machine machine(MachineConfig{}.with_pes(2));
  materialize_arrays(prog, machine);
  const DataflowStats stats =
      run_dataflow_sharded(prog, machine, ShardRuntimeOptions{16});
  EXPECT_EQ(stats.workers, 2u);
}

TEST(SimRuntimeTest, ExternalPoolIsUsable) {
  ThreadPool pool(3);
  const CompiledProgram prog = make_skewed(120, 7);
  const MachineConfig config = MachineConfig{}.with_pes(4);
  const SimulationResult serial = run_serial(prog, config);
  Machine machine(config);
  materialize_arrays(prog, machine);
  run_dataflow_sharded(prog, machine, ShardRuntimeOptions{4, &pool});
  expect_identical(machine.snapshot(prog.name()), serial, "external-pool");
}

TEST(SimRuntimeTest, RunDataflowDispatchesOnEnv) {
  const EnvGuard guard("SAPART_DATAFLOW");
  const CompiledProgram prog = make_matched(64);
  const MachineConfig config = MachineConfig{}.with_pes(4);

  setenv("SAPART_DATAFLOW", "serial", 1);
  Machine serial_machine(config);
  materialize_arrays(prog, serial_machine);
  run_dataflow(prog, serial_machine);

  setenv("SAPART_DATAFLOW", "sharded", 1);
  Machine sharded_machine(config);
  materialize_arrays(prog, sharded_machine);
  run_dataflow(prog, sharded_machine);

  expect_identical(sharded_machine.snapshot(prog.name()),
                   serial_machine.snapshot(prog.name()), "env-dispatch");
}

TEST(SimRuntimeTest, PartialPageRefetchRoutesToSerialScheduler) {
  // The §4-footnote extension's cache admission depends on the serial
  // interleaving; with the *default* (auto) scheduler choice, run_dataflow
  // must stay on the oracle for such configs.
  const EnvGuard guard("SAPART_DATAFLOW");
  unsetenv("SAPART_DATAFLOW");
  MachineConfig config = MachineConfig{}.with_pes(4).with_page_size(8);
  config.count_partial_page_refetch = true;
  const CompiledProgram prog = make_skewed(96, 5);

  Machine via_dispatch(config);
  materialize_arrays(prog, via_dispatch);
  const DataflowStats stats = run_dataflow(prog, via_dispatch);
  EXPECT_GE(stats.scheduler_rounds, 1u);
  EXPECT_EQ(stats.parks, 0u);  // serial scheduler: no shard parks

  // Direct calls hit the same guard: the byte-identical contract must be
  // enforced, not merely advised, for this config.
  Machine direct(config);
  materialize_arrays(prog, direct);
  const DataflowStats direct_stats =
      run_dataflow_sharded(prog, direct, ShardRuntimeOptions{8});
  EXPECT_EQ(direct_stats.parks, 0u);

  Machine serial(config);
  materialize_arrays(prog, serial);
  run_dataflow_serial(prog, serial);
  expect_identical(via_dispatch.snapshot(prog.name()),
                   serial.snapshot(prog.name()), "partial-page-fallback");
  expect_identical(direct.snapshot(prog.name()), serial.snapshot(prog.name()),
                   "partial-page-direct");
}

TEST(SimRuntimeTest, ExplicitShardedWithRefetchIsConfigError) {
  // Honoring SAPART_DATAFLOW=sharded on a count_partial_page_refetch
  // config would silently run a different scheduler than asked (the old
  // behaviour); it must fail loudly instead.
  const EnvGuard guard("SAPART_DATAFLOW");
  MachineConfig config = MachineConfig{}.with_pes(4).with_page_size(8);
  config.count_partial_page_refetch = true;
  const CompiledProgram prog = make_skewed(96, 5);

  setenv("SAPART_DATAFLOW", "sharded", 1);
  Machine machine(config);
  materialize_arrays(prog, machine);
  try {
    run_dataflow(prog, machine);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("count_partial_page_refetch"), std::string::npos);
    EXPECT_NE(message.find("serial"), std::string::npos);
  }

  // An explicit 'serial' request on the same config is of course fine.
  setenv("SAPART_DATAFLOW", "serial", 1);
  Machine serial_machine(config);
  materialize_arrays(prog, serial_machine);
  EXPECT_NO_THROW(run_dataflow(prog, serial_machine));

  // And the selection helper reports explicitness correctly.
  unsetenv("SAPART_DATAFLOW");
  EXPECT_FALSE(dataflow_scheduler_selection_from_env().explicit_env);
  setenv("SAPART_DATAFLOW", "sharded", 1);
  EXPECT_TRUE(dataflow_scheduler_selection_from_env().explicit_env);
}

}  // namespace
}  // namespace sap
