#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace sap::obs {
namespace {

const CounterSample* find_counter(const MetricsSnapshot& snapshot,
                                  const std::string& name) {
  for (const CounterSample& c : snapshot.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const HistogramSample* find_histogram(const MetricsSnapshot& snapshot,
                                      const std::string& name) {
  for (const HistogramSample& h : snapshot.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

TEST(MetricsRegistryTest, CounterAccumulates) {
  reset_metrics();
  Counter& c = counter("test/metrics/basic");
  c.add();
  c.add(41);
  const auto* sample = find_counter(snapshot_metrics(), "test/metrics/basic");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, 42u);
  EXPECT_EQ(sample->det, Determinism::kDeterministic);
}

TEST(MetricsRegistryTest, SameNameSameHandle) {
  Counter& a = counter("test/metrics/same");
  Counter& b = counter("test/metrics/same");
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistryTest, CrossThreadCounterMerge) {
  reset_metrics();
  Counter& c = counter("test/metrics/threads");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  const auto* sample =
      find_counter(snapshot_metrics(), "test/metrics/threads");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, kThreads * kPerThread);
}

TEST(MetricsRegistryTest, DeterminismIsFixedByFirstRegistration) {
  counter("test/metrics/sched", Determinism::kScheduler);
  // A second registration with a different class does not flip it.
  counter("test/metrics/sched", Determinism::kDeterministic).add(1);
  const auto* sample = find_counter(snapshot_metrics(), "test/metrics/sched");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->det, Determinism::kScheduler);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  counter("test/metrics/zz").add(1);
  counter("test/metrics/aa").add(1);
  const MetricsSnapshot snapshot = snapshot_metrics();
  EXPECT_TRUE(std::is_sorted(
      snapshot.counters.begin(), snapshot.counters.end(),
      [](const CounterSample& a, const CounterSample& b) {
        return a.name < b.name;
      }));
}

TEST(MetricsRegistryTest, HistogramStatsAndPercentiles) {
  reset_metrics();
  Histogram& h = histogram("test/metrics/hist");
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const auto* sample = find_histogram(snapshot_metrics(), "test/metrics/hist");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 1000u);
  EXPECT_EQ(sample->sum, 500500u);
  EXPECT_EQ(sample->min, 1u);
  EXPECT_EQ(sample->max, 1000u);
  // Percentiles are log2-bucket upper bounds: within a factor of two of
  // the exact value, monotone, and clamped to the observed range.
  EXPECT_GE(sample->p50, 500.0 / 2);
  EXPECT_LE(sample->p50, 500.0 * 2);
  EXPECT_GE(sample->p90, 900.0 / 2);
  EXPECT_LE(sample->p99, 1000.0);
  EXPECT_LE(sample->p50, sample->p90);
  EXPECT_LE(sample->p90, sample->p99);
}

TEST(MetricsRegistryTest, HistogramSingleValue) {
  reset_metrics();
  Histogram& h = histogram("test/metrics/single");
  h.record(77);
  const auto* sample =
      find_histogram(snapshot_metrics(), "test/metrics/single");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 1u);
  EXPECT_EQ(sample->min, 77u);
  EXPECT_EQ(sample->max, 77u);
  EXPECT_EQ(sample->p50, 77.0);
  EXPECT_EQ(sample->p99, 77.0);
}

TEST(MetricsRegistryTest, CollectionFlagRoundTrip) {
  const bool was = metrics_collection_enabled();
  set_metrics_collection(true);
  EXPECT_TRUE(metrics_collection_enabled());
  EXPECT_TRUE(collecting());
  set_metrics_collection(false);
  EXPECT_FALSE(metrics_collection_enabled());
  set_metrics_collection(was);
}

TEST(MetricsRegistryTest, JsonExportSegregatesByDeterminism) {
  reset_metrics();
  counter("test/metrics/det_section").add(3);
  counter("test/metrics/sched_section", Determinism::kScheduler).add(5);
  std::ostringstream out;
  write_metrics_json(out, snapshot_metrics());
  const std::string json = out.str();
  EXPECT_NE(json.find("\"sap-metrics-v1\""), std::string::npos);
  const auto det_pos = json.find("\"deterministic\"");
  const auto sched_pos = json.find("\"scheduler\"");
  ASSERT_NE(det_pos, std::string::npos);
  ASSERT_NE(sched_pos, std::string::npos);
  const auto det_metric = json.find("test/metrics/det_section");
  const auto sched_metric = json.find("test/metrics/sched_section");
  ASSERT_NE(det_metric, std::string::npos);
  ASSERT_NE(sched_metric, std::string::npos);
  // The deterministic metric lands between the two section keys, the
  // scheduler one after the scheduler key.
  EXPECT_GT(det_metric, det_pos);
  EXPECT_LT(det_metric, sched_pos);
  EXPECT_GT(sched_metric, sched_pos);
}

TEST(MetricsRegistryTest, ResetZeroesEverything) {
  counter("test/metrics/reset_me").add(9);
  reset_metrics();
  const auto* sample =
      find_counter(snapshot_metrics(), "test/metrics/reset_me");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->value, 0u);
}

}  // namespace
}  // namespace sap::obs
