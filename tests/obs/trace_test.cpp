#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>

#include "support/error.hpp"

namespace sap::obs {
namespace {

/// RAII guard: every test leaves tracing off and the buffers empty.
struct TraceGuard {
  TraceGuard() {
    stop_tracing();
    clear_trace();
  }
  ~TraceGuard() {
    stop_tracing();
    clear_trace();
  }
};

TEST(TraceTest, DisabledSpansRecordNothing) {
  const TraceGuard guard;
  {
    const Span span("test", "disabled");
    instant_event("test", "disabled-instant");
  }
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST(TraceTest, EnabledSpansAreCaptured) {
  const TraceGuard guard;
  start_tracing();
  {
    Span span("test", "captured");
    span.arg("pe", 3);
  }
  instant_event("test", "edge", "pe", 5);
  stop_tracing();
  EXPECT_EQ(trace_event_count(), 2u);
}

TEST(TraceTest, StartTracingClearsPreviousSession) {
  const TraceGuard guard;
  start_tracing();
  { const Span span("test", "first"); }
  stop_tracing();
  EXPECT_EQ(trace_event_count(), 1u);
  start_tracing();
  stop_tracing();
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST(TraceTest, SpanOpenWhenTracingStopsIsDropped) {
  const TraceGuard guard;
  start_tracing();
  {
    const Span span("test", "half-open");
    stop_tracing();
  }
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST(TraceTest, ExportIsWellFormedChromeTrace) {
  const TraceGuard guard;
  start_tracing();
  set_thread_name("main-test-thread");
  {
    Span span("compile", "parse");
    span.arg("tokens", 42);
  }
  instant_event("runtime", "park", "pe", 7);
  std::thread worker([] {
    const Span span("runtime", "replay");
    (void)span;
  });
  worker.join();
  stop_tracing();

  std::ostringstream out;
  write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("main-test-thread"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"compile\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"runtime\""), std::string::npos);
  EXPECT_NE(json.find("\"tokens\":42"), std::string::npos);
  EXPECT_NE(json.find("\"pe\":7"), std::string::npos);
}

TEST(TraceTest, ExportIncludesMetricsCounterDump) {
  const TraceGuard guard;
  counter("tracetest/dumped").add(11);
  start_tracing();
  stop_tracing();
  std::ostringstream out;
  write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("tracetest/dumped"), std::string::npos);
}

TEST(TraceTest, EventsFromDifferentThreadsKeepDistinctTids) {
  const TraceGuard guard;
  start_tracing();
  { const Span span("test", "main-thread"); }
  std::thread other([] { const Span span("test", "other-thread"); });
  other.join();
  stop_tracing();
  std::ostringstream out;
  write_chrome_trace(out);
  const std::string json = out.str();
  // Two X events with different tids: both names present, and at least
  // one non-zero tid in an X event.
  EXPECT_NE(json.find("main-thread"), std::string::npos);
  EXPECT_NE(json.find("other-thread"), std::string::npos);
  std::size_t tid_hits = 0;
  for (std::size_t pos = json.find("\"tid\":"); pos != std::string::npos;
       pos = json.find("\"tid\":", pos + 1)) {
    if (json.compare(pos, 8, "\"tid\":0,") != 0 &&
        json.compare(pos, 8, "\"tid\":0}") != 0) {
      ++tid_hits;
    }
  }
  EXPECT_GE(tid_hits, 1u);
}

TEST(TraceTest, PathFromEnvRejectsGarbage) {
  // Validation is shared with parse_output_path; this only pins the knob
  // names to the right parser.
  setenv("SAPART_TRACE", "", 1);
  EXPECT_THROW(trace_path_from_env(), ConfigError);
  setenv("SAPART_TRACE", " x", 1);
  EXPECT_THROW(trace_path_from_env(), ConfigError);
  setenv("SAPART_TRACE", "ok.json", 1);
  EXPECT_EQ(trace_path_from_env(), "ok.json");
  unsetenv("SAPART_TRACE");
  EXPECT_EQ(trace_path_from_env(), std::nullopt);

  setenv("SAPART_METRICS", "", 1);
  EXPECT_THROW(metrics_path_from_env(), ConfigError);
  setenv("SAPART_METRICS", "m.json", 1);
  EXPECT_EQ(metrics_path_from_env(), "m.json");
  unsetenv("SAPART_METRICS");
  EXPECT_EQ(metrics_path_from_env(), std::nullopt);
}

TEST(TraceTest, EnableTraceOutputRejectsUnwritablePath) {
  const TraceGuard guard;
  EXPECT_THROW(enable_trace_output("/nonexistent-dir-xyz/trace.json"),
               ConfigError);
  EXPECT_FALSE(tracing_enabled());
}

}  // namespace
}  // namespace sap::obs
