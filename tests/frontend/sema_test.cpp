#include "frontend/sema.hpp"

#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

Program parse(std::string_view src) { return Parser::parse(src); }

TEST(SemaTest, ResolvesAndCollectsSets) {
  Program p = parse(
      "PROGRAM t\nARRAY A(10)\nARRAY B(10) INIT ALL\nSCALAR q = 1\n"
      "DO k = 1, 10\n  A(k) = B(k) + q\nEND DO\nEND PROGRAM\n");
  const SemanticInfo info = analyze(p);
  EXPECT_TRUE(info.written_arrays.count("A"));
  EXPECT_TRUE(info.read_arrays.count("B"));
  EXPECT_FALSE(info.read_arrays.count("A"));
  ASSERT_EQ(info.assign_sites.size(), 1u);
  EXPECT_EQ(info.assign_sites[0].loops.size(), 1u);
  EXPECT_TRUE(info.scalars.at("Q").is_constant());
}

TEST(SemaTest, MarksReduction) {
  Program p = parse(
      "PROGRAM t\nARRAY W(10) INIT PREFIX 1\nARRAY B(10) INIT ALL\n"
      "DO i = 2, 10\n  W(i) = W(i) + B(i)\nEND DO\nEND PROGRAM\n");
  analyze(p);
  const auto& loop = std::get<DoLoop>(p.body[0]->node);
  EXPECT_TRUE(std::get<ArrayAssign>(loop.body[0]->node).is_reduction);
}

TEST(SemaTest, DifferentIndexIsNotReduction) {
  Program p = parse(
      "PROGRAM t\nARRAY W(10) INIT PREFIX 1\n"
      "DO i = 2, 10\n  W(i) = W(i - 1) + 1\nEND DO\nEND PROGRAM\n");
  analyze(p);
  const auto& loop = std::get<DoLoop>(p.body[0]->node);
  EXPECT_FALSE(std::get<ArrayAssign>(loop.body[0]->node).is_reduction);
}

TEST(SemaTest, SimpleInductionVariable) {
  Program p = parse(
      "PROGRAM t\nARRAY A(20)\nSCALAR i = 0\n"
      "DO k = 1, 10\n  i = i + 2\n  A(i) = k\nEND DO\nEND PROGRAM\n");
  const SemanticInfo info = analyze(p);
  const auto& si = info.scalars.at("I");
  ASSERT_TRUE(si.induction_step.has_value());
  EXPECT_DOUBLE_EQ(*si.induction_step, 2.0);
  EXPECT_NE(si.induction_loop, nullptr);
}

TEST(SemaTest, InductionWithOuterResetStillDetected) {
  // The ICCG pattern: reset outside the loop, increment inside.
  Program p = parse(
      "PROGRAM t\nARRAY A(100)\nSCALAR i = 0\nSCALAR base = 0\n"
      "DO l = 1, 5\n  i = base\n  DO k = 1, 4\n    i = i + 1\n"
      "    A(i + l * 10) = k\n  END DO\nEND DO\nEND PROGRAM\n");
  const SemanticInfo info = analyze(p);
  const auto& si = info.scalars.at("I");
  ASSERT_TRUE(si.induction_step.has_value());
  EXPECT_DOUBLE_EQ(*si.induction_step, 1.0);
}

TEST(SemaTest, TwoIncrementsInSameLoopNotInduction) {
  Program p = parse(
      "PROGRAM t\nARRAY A(100)\nSCALAR i = 0\n"
      "DO k = 1, 10\n  i = i + 1\n  i = i + 1\n  A(k) = i\nEND DO\n"
      "END PROGRAM\n");
  const SemanticInfo info = analyze(p);
  EXPECT_FALSE(info.scalars.at("I").induction_step.has_value());
}

TEST(SemaTest, WarnsAboutUnusedAndUninitialized) {
  Program p = parse(
      "PROGRAM t\nARRAY UNUSED(4)\nARRAY GHOST(4)\nARRAY OUT(4)\n"
      "DO k = 1, 4\n  OUT(k) = GHOST(k)\nEND DO\nEND PROGRAM\n");
  const SemanticInfo info = analyze(p);
  ASSERT_EQ(info.warnings.size(), 2u);
  EXPECT_NE(info.warnings[0].find("UNUSED"), std::string::npos);
  EXPECT_NE(info.warnings[1].find("GHOST"), std::string::npos);
}

TEST(SemaTest, ConditionalArmsRecordedOnAssignSites) {
  Program p = parse(
      "PROGRAM t\nARRAY A(10)\nARRAY B(10) INIT ALL\n"
      "DO k = 1, 10\n"
      "  IF (B(k) > 0.5) THEN\n"
      "    A(k) = B(k)\n"
      "  ELSE\n"
      "    A(k) = -B(k)\n"
      "  END IF\n"
      "END DO\nEND PROGRAM\n");
  const SemanticInfo info = analyze(p);
  ASSERT_EQ(info.assign_sites.size(), 2u);
  const AssignSite& then_site = info.assign_sites[0];
  const AssignSite& else_site = info.assign_sites[1];
  ASSERT_EQ(then_site.conditionals.size(), 1u);
  ASSERT_EQ(else_site.conditionals.size(), 1u);
  EXPECT_EQ(then_site.conditionals[0].stmt, else_site.conditionals[0].stmt);
  EXPECT_FALSE(then_site.conditionals[0].in_else);
  EXPECT_TRUE(else_site.conditionals[0].in_else);
  EXPECT_TRUE(mutually_exclusive(then_site, else_site));
  EXPECT_FALSE(mutually_exclusive(then_site, then_site));
}

TEST(SemaTest, GuardedSelfIncrementIsNotInduction) {
  Program p = parse(
      "PROGRAM t\nARRAY A(40)\nARRAY B(20) INIT ALL\nSCALAR i = 0\n"
      "DO k = 1, 10\n"
      "  IF (B(k) > 0.5) THEN\n"
      "    i = i + 2\n"
      "  END IF\n"
      "  A(k + 20) = i\n"
      "END DO\nEND PROGRAM\n");
  const SemanticInfo info = analyze(p);
  EXPECT_FALSE(info.scalars.at("I").induction_step.has_value());
}

struct BadProgram {
  const char* what;
  const char* src;
};

class SemaRejects : public ::testing::TestWithParam<BadProgram> {};

TEST_P(SemaRejects, Throws) {
  Program p = parse(GetParam().src);
  EXPECT_THROW(analyze(p), SemanticError) << GetParam().what;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SemaRejects,
    ::testing::Values(
        BadProgram{"undeclared array",
                   "PROGRAM t\nDO k = 1, 2\n  A(k) = 1\nEND DO\nEND PROGRAM\n"},
        BadProgram{"undeclared read",
                   "PROGRAM t\nARRAY A(2)\nA(1) = B(1)\nEND PROGRAM\n"},
        BadProgram{"undeclared scalar",
                   "PROGRAM t\nq = 1\nEND PROGRAM\n"},
        BadProgram{"rank mismatch",
                   "PROGRAM t\nARRAY A(2, 2)\nA(1) = 1\nEND PROGRAM\n"},
        BadProgram{"write to INIT ALL input",
                   "PROGRAM t\nARRAY A(2) INIT ALL\nA(1) = 1\nEND PROGRAM\n"},
        BadProgram{"duplicate array",
                   "PROGRAM t\nARRAY A(2)\nARRAY A(3)\nEND PROGRAM\n"},
        BadProgram{"array/scalar clash",
                   "PROGRAM t\nARRAY A(2)\nSCALAR A\nEND PROGRAM\n"},
        BadProgram{"loop var assigned",
                   "PROGRAM t\nSCALAR x\nDO k = 1, 2\n  k = 3\nEND DO\n"
                   "END PROGRAM\n"},
        BadProgram{"nested loop var reuse",
                   "PROGRAM t\nARRAY A(9, 9)\nDO k = 1, 3\n  DO k = 1, 3\n"
                   "    A(k, k) = 1\n  END DO\nEND DO\nEND PROGRAM\n"},
        BadProgram{"loop var shadows scalar",
                   "PROGRAM t\nARRAY A(3)\nSCALAR k\nDO k = 1, 3\n"
                   "  A(k) = 1\nEND DO\nEND PROGRAM\n"},
        BadProgram{"array used without indices",
                   "PROGRAM t\nARRAY A(2)\nARRAY B(2)\nB(1) = A\n"
                   "END PROGRAM\n"},
        BadProgram{"intrinsic arity",
                   "PROGRAM t\nSCALAR s\ns = IDIV(4)\nEND PROGRAM\n"},
        BadProgram{"reserved intrinsic name",
                   "PROGRAM t\nARRAY MOD(4)\nEND PROGRAM\n"},
        BadProgram{"reinit of undeclared",
                   "PROGRAM t\nREINIT Z\nEND PROGRAM\n"},
        BadProgram{"reinit of input",
                   "PROGRAM t\nARRAY A(2) INIT ALL\nREINIT A\nEND PROGRAM\n"},
        BadProgram{"prefix exceeds size",
                   "PROGRAM t\nARRAY A(4) INIT PREFIX 9\nEND PROGRAM\n"},
        BadProgram{"non-boolean IF condition",
                   "PROGRAM t\nARRAY A(2)\nIF (1 + 2) THEN\nA(1) = 1\n"
                   "END IF\nEND PROGRAM\n"},
        BadProgram{"non-boolean SELECT condition",
                   "PROGRAM t\nARRAY A(2)\nA(1) = SELECT(1, 2, 3)\n"
                   "END PROGRAM\n"},
        BadProgram{"boolean as assigned value",
                   "PROGRAM t\nARRAY A(2)\nA(1) = 1 < 2\nEND PROGRAM\n"},
        BadProgram{"boolean as scalar value",
                   "PROGRAM t\nSCALAR s\ns = 1 < 2\nEND PROGRAM\n"},
        BadProgram{"boolean inside arithmetic",
                   "PROGRAM t\nARRAY A(2)\nA(1) = (1 < 2) + 1\n"
                   "END PROGRAM\n"},
        BadProgram{"boolean as array index",
                   "PROGRAM t\nARRAY A(2)\nA(1 < 2) = 1\nEND PROGRAM\n"},
        BadProgram{"boolean as loop bound",
                   "PROGRAM t\nARRAY A(2)\nDO k = 1, 1 < 2\nA(k) = 1\n"
                   "END DO\nEND PROGRAM\n"},
        BadProgram{"numeric AND operand",
                   "PROGRAM t\nARRAY A(2)\nIF (AND(1, 2 < 3)) THEN\n"
                   "A(1) = 1\nEND IF\nEND PROGRAM\n"},
        BadProgram{"numeric NOT operand",
                   "PROGRAM t\nARRAY A(2)\nIF (NOT(1)) THEN\nA(1) = 1\n"
                   "END IF\nEND PROGRAM\n"},
        BadProgram{"boolean SELECT arm",
                   "PROGRAM t\nARRAY A(2)\nA(1) = SELECT(1 < 2, 2 < 3, 4)\n"
                   "END PROGRAM\n"},
        BadProgram{"SELECT arity",
                   "PROGRAM t\nARRAY A(2)\nA(1) = SELECT(1 < 2, 3)\n"
                   "END PROGRAM\n"},
        BadProgram{"reserved name SELECT",
                   "PROGRAM t\nARRAY SELECT(4)\nEND PROGRAM\n"},
        BadProgram{"reserved name AND",
                   "PROGRAM t\nSCALAR AND\nEND PROGRAM\n"}));

}  // namespace
}  // namespace sap
