#include "frontend/convert.hpp"

#include <gtest/gtest.h>

#include "core/reference_interpreter.hpp"
#include "core/simulator.hpp"
#include "frontend/parser.hpp"
#include "frontend/sa_check.hpp"
#include "kernels/synthetic.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

TEST(ConvertTest, CleanProgramUnchanged) {
  const Program input = Parser::parse(
      "PROGRAM t\nARRAY A(10)\nARRAY B(10) INIT ALL\n"
      "DO k = 1, 10\n  A(k) = B(k)\nEND DO\nEND PROGRAM\n");
  const auto result = convert_to_single_assignment(input);
  EXPECT_FALSE(result.changed());
  EXPECT_NE(result.report().find("already"), std::string::npos);
}

TEST(ConvertTest, ReductionMarked) {
  const Program input = Parser::parse(
      "PROGRAM t\nARRAY W(10) INIT PREFIX 1\nARRAY B(10) INIT ALL\n"
      "DO i = 2, 10\n  W(i) = W(i) + B(i)\nEND DO\nEND PROGRAM\n");
  const auto result = convert_to_single_assignment(input);
  ASSERT_EQ(result.actions.size(), 1u);
  EXPECT_EQ(result.actions[0].kind, ConversionActionKind::kMarkedReduction);
}

TEST(ConvertTest, SequentialOverwriteVersioned) {
  const Program input = make_nonsa_sequential_overwrite(16);
  const auto result = convert_to_single_assignment(input);

  bool versioned = false;
  for (const auto& action : result.actions) {
    if (action.kind == ConversionActionKind::kRenamedVersion &&
        action.array == "A") {
      versioned = true;
    }
  }
  EXPECT_TRUE(versioned);

  // The converted program must now pass the static check cleanly and run
  // without traps; C must read the *new* version (B*2).
  Program converted = clone(result.program);
  const SemanticInfo sema = analyze(converted);
  EXPECT_FALSE(check_single_assignment(converted, sema)
                   .has_proven_violation());
  EXPECT_TRUE(sema.arrays.count("A__2"));

  const auto registry = run_reference(compile(clone(result.program)));
  const SaArray& c = registry->by_name("C");
  const SaArray& b = registry->by_name("B");
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(c.read(i), b.read(i) * 2.0) << i;
  }
}

TEST(ConvertTest, TimeStepLoopGetsReinit) {
  const Program input = make_nonsa_timestep(16, 3);
  const auto result = convert_to_single_assignment(input);

  bool reinit_inserted = false;
  for (const auto& action : result.actions) {
    if (action.kind == ConversionActionKind::kInsertedReinit &&
        action.array == "A") {
      reinit_inserted = true;
    }
  }
  EXPECT_TRUE(reinit_inserted);

  // Converted program executes cleanly: the final generation holds B*steps.
  const auto registry = run_reference(compile(clone(result.program)));
  const SaArray& a = registry->by_name("A");
  const SaArray& b = registry->by_name("B");
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(a.read(i), b.read(i) * 3.0) << i;
  }
  EXPECT_EQ(a.generation(), 3u);  // one re-init per time step
}

TEST(ConvertTest, OriginalTimeStepTrapsWithoutConversion) {
  const Program input = make_nonsa_timestep(8, 2);
  EXPECT_THROW(run_reference(compile(clone(input))), DoubleWriteError);
}

TEST(ConvertTest, ConditionalArmsAreNotOverwrites) {
  // Exclusive IF arms writing the same cells are already legal single
  // assignment: the converter must leave them alone.
  const Program input = Parser::parse(
      "PROGRAM t\nARRAY A(10)\nARRAY B(10) INIT ALL\n"
      "DO k = 1, 10\n"
      "  IF (B(k) > 0.5) THEN\n    A(k) = B(k)\n"
      "  ELSE\n    A(k) = -B(k)\n  END IF\n"
      "END DO\nEND PROGRAM\n");
  const auto result = convert_to_single_assignment(input);
  EXPECT_FALSE(result.changed());
}

TEST(ConvertTest, SequentialOverwriteThroughIfArmVersioned) {
  // A top-level overwrite where the second producer sits inside an IF:
  // versioning must rename the guarded write (and redirect later reads).
  const Program input = Parser::parse(
      "PROGRAM t\nARRAY A(10)\nARRAY B(10) INIT ALL\nARRAY C(10)\n"
      "DO k = 1, 10\n  A(k) = B(k)\nEND DO\n"
      "DO k = 1, 10\n"
      "  IF (B(k) > 0.5) THEN\n    A(k) = 2 * B(k)\n"
      "  ELSE\n    A(k) = 3 * B(k)\n  END IF\n"
      "END DO\n"
      "DO k = 1, 10\n  C(k) = A(k)\nEND DO\n"
      "END PROGRAM\n");
  const auto result = convert_to_single_assignment(input);
  EXPECT_TRUE(result.changed());
  // The converted program is legal: it executes without SA traps.
  EXPECT_NO_THROW(run_reference(compile(clone(result.program))));
  const auto sema_check = [&] {
    Program converted = clone(result.program);
    const SemanticInfo sema = analyze(converted);
    return check_single_assignment(converted, sema).has_proven_violation();
  };
  EXPECT_FALSE(sema_check());
}

TEST(ConvertTest, ActionsReportReadable) {
  const auto result =
      convert_to_single_assignment(make_nonsa_sequential_overwrite(8));
  const std::string report = result.report();
  EXPECT_NE(report.find("version"), std::string::npos);
  EXPECT_NE(report.find("A__2"), std::string::npos);
}

TEST(ConvertTest, InputNotMutated) {
  const Program input = make_nonsa_sequential_overwrite(8);
  const std::size_t arrays_before = input.arrays.size();
  (void)convert_to_single_assignment(input);
  EXPECT_EQ(input.arrays.size(), arrays_before);
}

}  // namespace
}  // namespace sap
