#include "frontend/printer.hpp"

#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "kernels/dsl_sources.hpp"

namespace sap {
namespace {

/// Structural equality of programs via printing both (printer output is
/// canonical: fixed spacing, explicit INIT clauses).
std::string canon(const Program& p) { return print_program(p); }

TEST(PrinterTest, RoundTripSimple) {
  const char* src =
      "PROGRAM t\n"
      "ARRAY A(10) INIT NONE\n"
      "ARRAY B(0:5, -2:2) INIT ALL\n"
      "SCALAR Q = 0.5\n"
      "DO K = 1, 10\n"
      "  A(K) = Q + B(0, -2)\n"
      "END DO\n"
      "END PROGRAM\n";
  const Program once = Parser::parse(src);
  const Program twice = Parser::parse(print_program(once));
  EXPECT_EQ(canon(once), canon(twice));
}

TEST(PrinterTest, PrecedenceParenthesization) {
  const Program p = Parser::parse(
      "PROGRAM t\nARRAY A(2)\nA(1) = (1 + 2) * 3 - 4 / (5 - 3)\n"
      "END PROGRAM\n");
  const Program reparsed = Parser::parse(print_program(p));
  EXPECT_EQ(canon(p), canon(reparsed));
  // The needed parentheses survive.
  EXPECT_NE(print_program(p).find("(1 + 2) * 3"), std::string::npos);
}

TEST(PrinterTest, NonAssociativeRhsParenthesized) {
  const Program p = Parser::parse(
      "PROGRAM t\nARRAY A(2)\nA(1) = 8 - (4 - 2)\nEND PROGRAM\n");
  EXPECT_NE(print_program(p).find("8 - (4 - 2)"), std::string::npos);
}

TEST(PrinterTest, ReinitAndStepAndIntrinsics) {
  const char* src =
      "PROGRAM t\n"
      "ARRAY A(64) INIT PREFIX 8\n"
      "SCALAR II = 16\n"
      "DO K = 2, 16, 2\n"
      "  II = IDIV(II, 2)\n"
      "  A(K) = -A(K - 1)\n"
      "END DO\n"
      "REINIT A\n"
      "END PROGRAM\n";
  const Program once = Parser::parse(src);
  const std::string printed = print_program(once);
  EXPECT_NE(printed.find("IDIV(II, 2)"), std::string::npos);
  EXPECT_NE(printed.find("REINIT A"), std::string::npos);
  EXPECT_NE(printed.find("DO K = 2, 16, 2"), std::string::npos);
  EXPECT_EQ(canon(once), canon(Parser::parse(printed)));
}

class DslRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DslRoundTrip, EveryKernelSourceRoundTrips) {
  const auto& sources = dsl_kernel_sources();
  const auto& entry = sources.at(GetParam());
  const Program once = Parser::parse(entry.source);
  const Program twice = Parser::parse(print_program(once));
  EXPECT_EQ(canon(once), canon(twice)) << entry.id;
}

INSTANTIATE_TEST_SUITE_P(AllDslKernels, DslRoundTrip,
                         ::testing::Range<std::size_t>(0, 12));

}  // namespace
}  // namespace sap
