#include "frontend/printer.hpp"

#include <gtest/gtest.h>

#include "core/program_builder.hpp"
#include "frontend/parser.hpp"
#include "kernels/dsl_sources.hpp"

namespace sap {
namespace {

/// Structural equality of programs via printing both (printer output is
/// canonical: fixed spacing, explicit INIT clauses).
std::string canon(const Program& p) { return print_program(p); }

TEST(PrinterTest, RoundTripSimple) {
  const char* src =
      "PROGRAM t\n"
      "ARRAY A(10) INIT NONE\n"
      "ARRAY B(0:5, -2:2) INIT ALL\n"
      "SCALAR Q = 0.5\n"
      "DO K = 1, 10\n"
      "  A(K) = Q + B(0, -2)\n"
      "END DO\n"
      "END PROGRAM\n";
  const Program once = Parser::parse(src);
  const Program twice = Parser::parse(print_program(once));
  EXPECT_EQ(canon(once), canon(twice));
}

TEST(PrinterTest, PrecedenceParenthesization) {
  const Program p = Parser::parse(
      "PROGRAM t\nARRAY A(2)\nA(1) = (1 + 2) * 3 - 4 / (5 - 3)\n"
      "END PROGRAM\n");
  const Program reparsed = Parser::parse(print_program(p));
  EXPECT_EQ(canon(p), canon(reparsed));
  // The needed parentheses survive.
  EXPECT_NE(print_program(p).find("(1 + 2) * 3"), std::string::npos);
}

TEST(PrinterTest, NonAssociativeRhsParenthesized) {
  const Program p = Parser::parse(
      "PROGRAM t\nARRAY A(2)\nA(1) = 8 - (4 - 2)\nEND PROGRAM\n");
  EXPECT_NE(print_program(p).find("8 - (4 - 2)"), std::string::npos);
}

TEST(PrinterTest, ReinitAndStepAndIntrinsics) {
  const char* src =
      "PROGRAM t\n"
      "ARRAY A(64) INIT PREFIX 8\n"
      "SCALAR II = 16\n"
      "DO K = 2, 16, 2\n"
      "  II = IDIV(II, 2)\n"
      "  A(K) = -A(K - 1)\n"
      "END DO\n"
      "REINIT A\n"
      "END PROGRAM\n";
  const Program once = Parser::parse(src);
  const std::string printed = print_program(once);
  EXPECT_NE(printed.find("IDIV(II, 2)"), std::string::npos);
  EXPECT_NE(printed.find("REINIT A"), std::string::npos);
  EXPECT_NE(printed.find("DO K = 2, 16, 2"), std::string::npos);
  EXPECT_EQ(canon(once), canon(Parser::parse(printed)));
}

TEST(PrinterTest, IfElseRoundTrip) {
  const char* src =
      "PROGRAM t\n"
      "ARRAY A(10) INIT NONE\n"
      "ARRAY B(10) INIT ALL\n"
      "DO K = 1, 10\n"
      "  IF (B(K) > 0.5) THEN\n"
      "    A(K) = B(K)\n"
      "  ELSE\n"
      "    A(K) = -B(K)\n"
      "  END IF\n"
      "END DO\n"
      "END PROGRAM\n";
  const Program once = Parser::parse(src);
  const std::string printed = print_program(once);
  EXPECT_NE(printed.find("IF (B(K) > 0.5) THEN"), std::string::npos);
  EXPECT_NE(printed.find("ELSE"), std::string::npos);
  EXPECT_NE(printed.find("END IF"), std::string::npos);
  EXPECT_EQ(canon(once), canon(Parser::parse(printed)));
}

TEST(PrinterTest, SelectAndLogicalsRoundTrip) {
  const char* src =
      "PROGRAM t\n"
      "ARRAY A(4) INIT NONE\n"
      "ARRAY B(4) INIT ALL\n"
      "DO K = 1, 4\n"
      "  A(K) = SELECT(OR(B(K) <= 0, NOT(B(K) /= 1)), 0, B(K))\n"
      "END DO\n"
      "END PROGRAM\n";
  const Program once = Parser::parse(src);
  const std::string printed = print_program(once);
  EXPECT_NE(printed.find("SELECT(OR(B(K) <= 0, NOT(B(K) /= 1)), 0, B(K))"),
            std::string::npos);
  EXPECT_EQ(canon(once), canon(Parser::parse(printed)));
}

TEST(PrinterTest, ComparisonParenthesizedInsideArithmetic) {
  // A comparison nested in arithmetic can only come from a hand-built
  // AST (sema rejects it), but the printer must still emit text that
  // re-parses to the same tree.
  const Ex bool_plus_one =
      Ex(make_binary(BinaryOp::kAdd, ex_lt(ex_var("A"), ex_var("B")).take(),
                     make_number(1.0)));
  EXPECT_EQ(print_expr(*bool_plus_one.materialize()), "(A < B) + 1");
}

TEST(PrinterTest, ComparisonOperandsKeepPrecedence) {
  const Program p = Parser::parse(
      "PROGRAM t\nARRAY A(2)\nARRAY B(4) INIT ALL\n"
      "IF (B(1) + B(2) * 2 >= B(3) - B(4)) THEN\n  A(1) = 1\nEND IF\n"
      "END PROGRAM\n");
  const std::string printed = print_program(p);
  EXPECT_NE(printed.find("IF (B(1) + B(2) * 2 >= B(3) - B(4)) THEN"),
            std::string::npos);
  EXPECT_EQ(canon(p), canon(Parser::parse(printed)));
}

class DslRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DslRoundTrip, EveryKernelSourceRoundTrips) {
  const auto& sources = dsl_kernel_sources();
  const auto& entry = sources.at(GetParam());
  const Program once = Parser::parse(entry.source);
  const Program twice = Parser::parse(print_program(once));
  EXPECT_EQ(canon(once), canon(twice)) << entry.id;
}

INSTANTIATE_TEST_SUITE_P(AllDslKernels, DslRoundTrip,
                         ::testing::Range<std::size_t>(0, 15));

}  // namespace
}  // namespace sap
