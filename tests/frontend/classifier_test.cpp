#include "frontend/classifier.hpp"

#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "kernels/livermore.hpp"
#include "kernels/synthetic.hpp"

namespace sap {
namespace {

AccessClass classify_src(std::string_view src) {
  Program p = Parser::parse(src);
  const SemanticInfo sema = analyze(p);
  return classify_program(p, sema).cls;
}

TEST(ClassifierTest, MatchedWhenAllIndicesEqual) {
  // §7.1.1: "all array indices equal to one another."
  EXPECT_EQ(classify_src("PROGRAM t\nARRAY A(100)\nARRAY B(100) INIT ALL\n"
                         "ARRAY C(100) INIT ALL\n"
                         "DO k = 1, 100\n  A(k) = B(k) - C(k)\nEND DO\n"
                         "END PROGRAM\n"),
            AccessClass::kMatched);
}

TEST(ClassifierTest, SkewedOnConstantOffset) {
  // §7.1.2: "indices ... offset from one another by a constant."
  EXPECT_EQ(classify_src("PROGRAM t\nARRAY A(100)\nARRAY B(200) INIT ALL\n"
                         "DO k = 1, 100\n  A(k) = B(k + 11)\nEND DO\n"
                         "END PROGRAM\n"),
            AccessClass::kSkewed);
}

TEST(ClassifierTest, CyclicOnStrideMismatch) {
  // §7.1.3: "the write index is changing twice as slowly as the read."
  EXPECT_EQ(classify_src("PROGRAM t\nARRAY A(100)\nARRAY B(200) INIT ALL\n"
                         "DO k = 1, 100\n  A(k) = B(2 * k)\nEND DO\n"
                         "END PROGRAM\n"),
            AccessClass::kCyclic);
}

TEST(ClassifierTest, RandomOnIndirectIndex) {
  // §7.1.4: "permutation lookups."
  EXPECT_EQ(classify_src("PROGRAM t\nARRAY A(100)\nARRAY B(100) INIT ALL\n"
                         "ARRAY P(100) INIT ALL\n"
                         "DO k = 1, 100\n  A(k) = B(P(k))\nEND DO\n"
                         "END PROGRAM\n"),
            AccessClass::kRandom);
}

TEST(ClassifierTest, MultiDimSkewIsCyclic) {
  // §7.1.3 / Figure 3: skew plus an outer sweep revisiting the pages.
  EXPECT_EQ(classify_src("PROGRAM t\nARRAY A(100, 7)\n"
                         "ARRAY B(101, 8) INIT ALL\n"
                         "DO k = 2, 6\n  DO j = 2, 100\n"
                         "    A(j, k) = B(j - 1, k + 1)\n  END DO\nEND DO\n"
                         "END PROGRAM\n"),
            AccessClass::kCyclic);
}

TEST(ClassifierTest, ReductionWithHugeRevisitedWindowIsRandom) {
  // GLR-style: the column walk revisits far more pages than the cache.
  EXPECT_EQ(classify_src("PROGRAM t\nARRAY W(100) INIT PREFIX 1\n"
                         "ARRAY B(100, 100) INIT ALL\n"
                         "DO i = 2, 100\n  DO k = 1, i - 1\n"
                         "    W(i) = W(i) + B(k, i) * W(i - k)\n"
                         "  END DO\nEND DO\nEND PROGRAM\n"),
            AccessClass::kRandom);
}

TEST(ClassifierTest, StreamOverflowEscalatesToRandom) {
  // Many distinct far-apart streams exceed the 8 frames (ADI-style).
  std::string src =
      "PROGRAM t\nARRAY A(2000)\n";
  for (char c = 'B'; c <= 'M'; ++c) {
    src += std::string("ARRAY ") + c + "(4000) INIT ALL\n";
  }
  src += "DO idx = 1, 1000\n  A(idx) = ";
  bool first = true;
  for (char c = 'B'; c <= 'M'; ++c) {
    if (!first) src += " + ";
    src += std::string(1, c) + "(idx + 999)";
    first = false;
  }
  src += "\nEND DO\nEND PROGRAM\n";
  EXPECT_EQ(classify_src(src), AccessClass::kRandom);
}

TEST(ClassifierTest, LoopInvariantReadIsMatched) {
  EXPECT_EQ(classify_src("PROGRAM t\nARRAY A(100)\nARRAY B(10) INIT ALL\n"
                         "DO k = 1, 100\n  A(k) = B(3)\nEND DO\n"
                         "END PROGRAM\n"),
            AccessClass::kMatched);
}

TEST(ClassifierTest, ClassOrderingIsWorstRead) {
  // One random read poisons an otherwise matched loop.
  EXPECT_EQ(classify_src("PROGRAM t\nARRAY A(100)\nARRAY B(100) INIT ALL\n"
                         "ARRAY P(100) INIT ALL\n"
                         "DO k = 1, 100\n  A(k) = B(k) + B(P(k))\nEND DO\n"
                         "END PROGRAM\n"),
            AccessClass::kRandom);
}

TEST(ClassifierTest, ReportMentionsLoopAndReads) {
  Program p = Parser::parse(
      "PROGRAM t\nARRAY A(100)\nARRAY B(200) INIT ALL\n"
      "DO k = 1, 100\n  A(k) = B(k + 5)\nEND DO\nEND PROGRAM\n");
  const SemanticInfo sema = analyze(p);
  const auto result = classify_program(p, sema);
  const std::string report = result.report();
  EXPECT_NE(report.find("skewed"), std::string::npos);
  EXPECT_NE(report.find("B"), std::string::npos);
  ASSERT_EQ(result.loops.size(), 1u);
  EXPECT_EQ(result.loops[0].reads.size(), 1u);
  EXPECT_EQ(result.loops[0].reads[0].skew, 5);
}

TEST(ClassifierTest, SkewMagnitudeDoesNotChangeClass) {
  // §8: "for an SD loop with large skew, we observed a reduction from 22%
  // remote reads to 1%" — large skews are still SD.
  for (const int skew : {1, 11, 100, 500}) {
    const auto prog = make_skewed(400, skew);
    EXPECT_EQ(classify_program(prog.program, prog.sema).cls,
              AccessClass::kSkewed)
        << "skew=" << skew;
  }
}

TEST(ClassifierTest, ClassifierConfigFrames) {
  ClassifierConfig config;
  config.page_size = 32;
  config.cache_elements = 256;
  EXPECT_EQ(config.cache_frames(), 8);
  config.page_size = 64;
  EXPECT_EQ(config.cache_frames(), 4);
}

TEST(ClassifierTest, ConditionalColumnFlagsGuardedSites) {
  Program p = Parser::parse(
      "PROGRAM t\nARRAY A(100)\nARRAY B(100) INIT ALL\n"
      "DO k = 1, 100\n"
      "  IF (B(k) > 0.5) THEN\n    A(k) = B(k)\n"
      "  ELSE\n    A(k) = -B(k)\n  END IF\n"
      "END DO\nEND PROGRAM\n");
  const SemanticInfo sema = analyze(p);
  const auto result = classify_program(p, sema);
  EXPECT_TRUE(result.conditional());
  EXPECT_EQ(result.guarded_sites, 2);
  ASSERT_EQ(result.loops.size(), 1u);
  EXPECT_TRUE(result.loops[0].conditional());
  EXPECT_EQ(result.loops[0].guarded_sites, 2);
  EXPECT_EQ(result.loops[0].total_sites, 2);
  EXPECT_NE(result.rationale.find("conditional"), std::string::npos);
  EXPECT_NE(result.report().find("guarded"), std::string::npos);
}

TEST(ClassifierTest, UnguardedProgramIsNotConditional) {
  Program p = Parser::parse(
      "PROGRAM t\nARRAY A(100)\nARRAY B(100) INIT ALL\n"
      "DO k = 1, 100\n  A(k) = B(k)\nEND DO\nEND PROGRAM\n");
  const SemanticInfo sema = analyze(p);
  const auto result = classify_program(p, sema);
  EXPECT_FALSE(result.conditional());
  EXPECT_EQ(result.guarded_sites, 0);
}

TEST(ClassifierTest, ConditionalKernelsFlagged) {
  for (const char* id :
       {"k15_flow_limiter", "k16_min_search", "k24_first_min"}) {
    const CompiledProgram prog = build_kernel(id);
    EXPECT_TRUE(
        classify_program(prog.program, prog.sema).conditional())
        << id;
  }
  const CompiledProgram hydro = build_kernel("k01_hydro");
  EXPECT_FALSE(classify_program(hydro.program, hydro.sema).conditional());
}

struct KernelClassCase {
  const char* id;
};

class KernelStaticClass : public ::testing::TestWithParam<KernelClassCase> {};

TEST_P(KernelStaticClass, MatchesPaperClass) {
  const KernelSpec& spec = kernel_by_id(GetParam().id);
  const CompiledProgram prog = spec.build();
  const auto result = classify_program(prog.program, prog.sema);
  EXPECT_EQ(result.cls, spec.paper_class) << result.report();
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelStaticClass,
    ::testing::Values(KernelClassCase{"k01_hydro"}, KernelClassCase{"k02_iccg"},
                      KernelClassCase{"k03_inner_product"},
                      KernelClassCase{"k05_tridiag"}, KernelClassCase{"k06_glr"},
                      KernelClassCase{"k07_eos"}, KernelClassCase{"k08_adi"},
                      KernelClassCase{"k09_integrate_predictors"},
                      KernelClassCase{"k10_diff_predictors"},
                      KernelClassCase{"k11_first_sum"},
                      KernelClassCase{"k12_first_diff"},
                      KernelClassCase{"k13_pic2d"},
                      KernelClassCase{"k14_pic1d"},
                      KernelClassCase{"k18_hydro2d"},
                      KernelClassCase{"k21_matmul"},
                      KernelClassCase{"k23_implicit_hydro2d"}));

}  // namespace
}  // namespace sap
