#include "frontend/parser.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace sap {
namespace {

TEST(ParserTest, MinimalProgram) {
  const Program p = Parser::parse(
      "PROGRAM t\n"
      "ARRAY A(10)\n"
      "DO k = 1, 10\n"
      "  A(k) = 1\n"
      "END DO\n"
      "END PROGRAM\n");
  EXPECT_EQ(p.name, "T");
  ASSERT_EQ(p.arrays.size(), 1u);
  EXPECT_EQ(p.arrays[0].name, "A");
  EXPECT_EQ(p.arrays[0].init, InitMode::kNone);
  ASSERT_EQ(p.body.size(), 1u);
  const auto& loop = std::get<DoLoop>(p.body[0]->node);
  EXPECT_EQ(loop.var, "K");
  ASSERT_EQ(loop.body.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<ArrayAssign>(loop.body[0]->node));
}

TEST(ParserTest, ArrayDeclVariants) {
  const Program p = Parser::parse(
      "PROGRAM t\n"
      "ARRAY A(10) INIT ALL\n"
      "ARRAY B(0:5, -2:2) INIT NONE\n"
      "ARRAY C(100) INIT PREFIX 7\n"
      "END PROGRAM\n");
  EXPECT_EQ(p.arrays[0].init, InitMode::kAll);
  EXPECT_EQ(p.arrays[1].dims[0].lower, 0);
  EXPECT_EQ(p.arrays[1].dims[1].lower, -2);
  EXPECT_EQ(p.arrays[1].dims[1].upper, 2);
  EXPECT_EQ(p.arrays[2].init, InitMode::kPrefix);
  EXPECT_EQ(p.arrays[2].init_prefix, 7);
}

TEST(ParserTest, ScalarDeclsWithInit) {
  const Program p = Parser::parse(
      "PROGRAM t\nSCALAR q = 0.5\nSCALAR r = -2\nSCALAR s\nEND PROGRAM\n");
  EXPECT_DOUBLE_EQ(p.scalars[0].init, 0.5);
  EXPECT_DOUBLE_EQ(p.scalars[1].init, -2.0);
  EXPECT_DOUBLE_EQ(p.scalars[2].init, 0.0);
}

TEST(ParserTest, PrecedenceAndAssociativity) {
  const Program p = Parser::parse(
      "PROGRAM t\nARRAY A(2)\nA(1) = 1 + 2 * 3 - 4 / 2\nEND PROGRAM\n");
  const auto& assign = std::get<ArrayAssign>(p.body[0]->node);
  // ((1 + (2*3)) - (4/2))
  const auto& top = std::get<BinaryExpr>(assign.value->node);
  EXPECT_EQ(top.op, BinaryOp::kSub);
  const auto& lhs = std::get<BinaryExpr>(top.lhs->node);
  EXPECT_EQ(lhs.op, BinaryOp::kAdd);
  const auto& mul = std::get<BinaryExpr>(lhs.rhs->node);
  EXPECT_EQ(mul.op, BinaryOp::kMul);
}

TEST(ParserTest, UnaryMinusAndParens) {
  const Program p = Parser::parse(
      "PROGRAM t\nARRAY A(2)\nA(1) = -(2 + 3) * -1\nEND PROGRAM\n");
  const auto& assign = std::get<ArrayAssign>(p.body[0]->node);
  EXPECT_TRUE(std::holds_alternative<BinaryExpr>(assign.value->node));
}

TEST(ParserTest, IntrinsicsParsed) {
  const Program p = Parser::parse(
      "PROGRAM t\nSCALAR i\ni = IDIV(7, 2) + MOD(5, 3) + MIN(1, 2) + "
      "MAX(1, 2) + ABS(-3)\nEND PROGRAM\n");
  const auto& assign = std::get<ScalarAssign>(p.body[0]->node);
  int intrinsics = 0;
  std::function<void(const Expr&)> walk = [&](const Expr& e) {
    if (std::holds_alternative<IntrinsicExpr>(e.node)) ++intrinsics;
    if (const auto* bin = std::get_if<BinaryExpr>(&e.node)) {
      walk(*bin->lhs);
      walk(*bin->rhs);
    }
  };
  walk(*assign.value);
  EXPECT_EQ(intrinsics, 5);
}

TEST(ParserTest, NestedLoopsWithStep) {
  const Program p = Parser::parse(
      "PROGRAM t\nARRAY A(10, 10)\n"
      "DO i = 1, 10\n  DO j = 1, 10, 2\n    A(i, j) = i + j\n  END DO\n"
      "END DO\nEND PROGRAM\n");
  const auto& outer = std::get<DoLoop>(p.body[0]->node);
  const auto& inner = std::get<DoLoop>(outer.body[0]->node);
  EXPECT_NE(inner.step, nullptr);
  EXPECT_EQ(outer.step, nullptr);
}

TEST(ParserTest, ReinitStatement) {
  const Program p = Parser::parse(
      "PROGRAM t\nARRAY A(4)\nREINIT A\nEND PROGRAM\n");
  EXPECT_EQ(std::get<ReinitStmt>(p.body[0]->node).array, "A");
}

TEST(ParserTest, MultiDimAccess) {
  const Program p = Parser::parse(
      "PROGRAM t\nARRAY A(5, 5)\nARRAY B(5, 5) INIT ALL\n"
      "DO i = 2, 4\n  A(i, 2) = B(i - 1, i + 1)\nEND DO\nEND PROGRAM\n");
  const auto& loop = std::get<DoLoop>(p.body[0]->node);
  const auto& assign = std::get<ArrayAssign>(loop.body[0]->node);
  EXPECT_EQ(assign.indices.size(), 2u);
}

TEST(ParserTest, IfThenElseBlocks) {
  const Program p = Parser::parse(
      "PROGRAM t\n"
      "ARRAY A(10)\n"
      "ARRAY B(10) INIT ALL\n"
      "DO k = 1, 10\n"
      "  IF (B(k) > 0.5) THEN\n"
      "    A(k) = B(k)\n"
      "  ELSE\n"
      "    A(k) = -B(k)\n"
      "  END IF\n"
      "END DO\n"
      "END PROGRAM\n");
  const auto& loop = std::get<DoLoop>(p.body[0]->node);
  const auto& branch = std::get<IfStmt>(loop.body[0]->node);
  EXPECT_TRUE(std::holds_alternative<CompareExpr>(branch.cond->node));
  ASSERT_EQ(branch.then_body.size(), 1u);
  ASSERT_EQ(branch.else_body.size(), 1u);
}

TEST(ParserTest, IfWithoutElse) {
  const Program p = Parser::parse(
      "PROGRAM t\nARRAY A(2)\nIF (1 < 2) THEN\n  A(1) = 1\nEND IF\n"
      "END PROGRAM\n");
  const auto& branch = std::get<IfStmt>(p.body[0]->node);
  EXPECT_EQ(branch.then_body.size(), 1u);
  EXPECT_TRUE(branch.else_body.empty());
}

TEST(ParserTest, NestedIfBindsToInnermost) {
  const Program p = Parser::parse(
      "PROGRAM t\nARRAY A(2)\n"
      "IF (1 < 2) THEN\n"
      "  IF (2 < 3) THEN\n"
      "    A(1) = 1\n"
      "  ELSE\n"
      "    A(1) = 2\n"
      "  END IF\n"
      "END IF\n"
      "END PROGRAM\n");
  const auto& outer = std::get<IfStmt>(p.body[0]->node);
  EXPECT_TRUE(outer.else_body.empty());  // the ELSE bound to the inner IF
  const auto& inner = std::get<IfStmt>(outer.then_body[0]->node);
  EXPECT_EQ(inner.else_body.size(), 1u);
}

TEST(ParserTest, AllComparisonOperators) {
  const Program p = Parser::parse(
      "PROGRAM t\nARRAY A(6)\nSCALAR x = 1\n"
      "IF (x < 1) THEN\nA(1) = 1\nEND IF\n"
      "IF (x <= 1) THEN\nA(2) = 1\nEND IF\n"
      "IF (x > 1) THEN\nA(3) = 1\nEND IF\n"
      "IF (x >= 1) THEN\nA(4) = 1\nEND IF\n"
      "IF (x == 1) THEN\nA(5) = 1\nEND IF\n"
      "IF (x /= 1) THEN\nA(6) = 1\nEND IF\n"
      "END PROGRAM\n");
  const CompareOp expected[] = {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt,
                                CompareOp::kGe, CompareOp::kEq, CompareOp::kNe};
  ASSERT_EQ(p.body.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    const auto& branch = std::get<IfStmt>(p.body[i]->node);
    EXPECT_EQ(std::get<CompareExpr>(branch.cond->node).op, expected[i]);
  }
}

TEST(ParserTest, SelectAndLogicalIntrinsics) {
  const Program p = Parser::parse(
      "PROGRAM t\nARRAY A(4)\nARRAY B(4) INIT ALL\n"
      "DO k = 1, 4\n"
      "  A(k) = SELECT(AND(B(k) > 0, NOT(B(k) > 1)), B(k), 0)\n"
      "END DO\n"
      "END PROGRAM\n");
  const auto& loop = std::get<DoLoop>(p.body[0]->node);
  const auto& assign = std::get<ArrayAssign>(loop.body[0]->node);
  const auto& select = std::get<IntrinsicExpr>(assign.value->node);
  EXPECT_EQ(select.kind, IntrinsicKind::kSelect);
  ASSERT_EQ(select.args.size(), 3u);
  const auto& conj = std::get<IntrinsicExpr>(select.args[0]->node);
  EXPECT_EQ(conj.kind, IntrinsicKind::kAnd);
}

TEST(ParserTest, SlashEqualOnlyLexesAsNotEqualNotDivision) {
  // `a / = b` must still fail, while `a /= b` is a comparison and
  // `a / b` stays a division.
  const Program p = Parser::parse(
      "PROGRAM t\nARRAY A(2)\nARRAY B(2) INIT ALL\n"
      "IF (B(1) / B(2) /= 1) THEN\n  A(1) = 1\nEND IF\nEND PROGRAM\n");
  const auto& branch = std::get<IfStmt>(p.body[0]->node);
  const auto& cmp = std::get<CompareExpr>(branch.cond->node);
  EXPECT_EQ(cmp.op, CompareOp::kNe);
  EXPECT_TRUE(std::holds_alternative<BinaryExpr>(cmp.lhs->node));
}

struct BadSource {
  const char* what;
  const char* src;
};

class ParserRejects : public ::testing::TestWithParam<BadSource> {};

TEST_P(ParserRejects, Throws) {
  EXPECT_THROW(Parser::parse(GetParam().src), ParseError) << GetParam().what;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParserRejects,
    ::testing::Values(
        BadSource{"missing END PROGRAM", "PROGRAM t\nARRAY A(2)\n"},
        BadSource{"missing END DO",
                  "PROGRAM t\nARRAY A(2)\nDO k = 1, 2\nA(k) = 1\nEND PROGRAM\n"},
        BadSource{"empty dimension", "PROGRAM t\nARRAY A(5:2)\nEND PROGRAM\n"},
        BadSource{"decl after stmt",
                  "PROGRAM t\nARRAY A(2)\nA(1) = 1\nARRAY B(2)\nEND PROGRAM\n"},
        BadSource{"garbage after end",
                  "PROGRAM t\nEND PROGRAM\nextra\n"},
        BadSource{"non-integer dim", "PROGRAM t\nARRAY A(2.5)\nEND PROGRAM\n"},
        BadSource{"negative prefix",
                  "PROGRAM t\nARRAY A(4) INIT PREFIX -1\nEND PROGRAM\n"},
        BadSource{"missing assign rhs",
                  "PROGRAM t\nARRAY A(2)\nA(1) =\nEND PROGRAM\n"},
        BadSource{"dangling ELSE",
                  "PROGRAM t\nARRAY A(2)\nELSE\nA(1) = 1\nEND PROGRAM\n"},
        BadSource{"ELSE after END IF",
                  "PROGRAM t\nARRAY A(2)\nIF (1 < 2) THEN\nA(1) = 1\n"
                  "END IF\nELSE\nA(2) = 1\nEND PROGRAM\n"},
        BadSource{"duplicate ELSE",
                  "PROGRAM t\nARRAY A(2)\nIF (1 < 2) THEN\nA(1) = 1\nELSE\n"
                  "A(2) = 1\nELSE\nA(2) = 2\nEND IF\nEND PROGRAM\n"},
        BadSource{"missing THEN",
                  "PROGRAM t\nARRAY A(2)\nIF (1 < 2)\nA(1) = 1\nEND IF\n"
                  "END PROGRAM\n"},
        BadSource{"missing END IF",
                  "PROGRAM t\nARRAY A(2)\nIF (1 < 2) THEN\nA(1) = 1\n"
                  "END PROGRAM\n"},
        BadSource{"unparenthesized guard",
                  "PROGRAM t\nARRAY A(2)\nIF 1 < 2 THEN\nA(1) = 1\nEND IF\n"
                  "END PROGRAM\n"},
        BadSource{"empty guard",
                  "PROGRAM t\nARRAY A(2)\nIF () THEN\nA(1) = 1\nEND IF\n"
                  "END PROGRAM\n"},
        BadSource{"guard with trailing operator",
                  "PROGRAM t\nARRAY A(2)\nIF (1 + ) THEN\nA(1) = 1\nEND IF\n"
                  "END PROGRAM\n"},
        BadSource{"chained comparison",
                  "PROGRAM t\nARRAY A(2)\nIF (1 < 2 < 3) THEN\nA(1) = 1\n"
                  "END IF\nEND PROGRAM\n"}));

}  // namespace
}  // namespace sap
