#include "frontend/sa_check.hpp"

#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "kernels/livermore.hpp"
#include "kernels/synthetic.hpp"

namespace sap {
namespace {

SaCheckResult check_src(std::string_view src) {
  Program p = Parser::parse(src);
  const SemanticInfo sema = analyze(p);
  return check_single_assignment(p, sema);
}

TEST(SaCheckTest, CleanLoopHasNoFindings) {
  const auto result = check_src(
      "PROGRAM t\nARRAY A(100)\nARRAY B(100) INIT ALL\n"
      "DO k = 1, 100\n  A(k) = B(k)\nEND DO\nEND PROGRAM\n");
  EXPECT_TRUE(result.findings.empty());
  EXPECT_FALSE(result.has_proven_violation());
  EXPECT_NE(result.report().find("OK"), std::string::npos);
}

TEST(SaCheckTest, ProvesInvariantTargetViolation) {
  // A(5) written 10 times: statically certain.
  const auto result = check_src(
      "PROGRAM t\nARRAY A(100)\nDO k = 1, 10\n  A(5) = k\nEND DO\n"
      "END PROGRAM\n");
  EXPECT_TRUE(result.has_proven_violation());
}

TEST(SaCheckTest, TimeStepRewriteProven) {
  Program p = make_nonsa_timestep(16, 3);
  const SemanticInfo sema = analyze(p);
  const auto result = check_single_assignment(p, sema);
  EXPECT_TRUE(result.has_proven_violation());
}

TEST(SaCheckTest, ReductionIsReportedNotViolated) {
  const auto result = check_src(
      "PROGRAM t\nARRAY W(10) INIT PREFIX 1\nARRAY B(10) INIT ALL\n"
      "DO i = 2, 10\n  W(i) = W(i) + B(i)\nEND DO\nEND PROGRAM\n");
  EXPECT_FALSE(result.has_proven_violation());
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].kind, SaFindingKind::kReductionRewrite);
}

TEST(SaCheckTest, OverlappingSitesPossibleViolation) {
  const auto result = check_src(
      "PROGRAM t\nARRAY A(100)\nARRAY B(100) INIT ALL\n"
      "DO k = 1, 60\n  A(k) = B(k)\nEND DO\n"
      "DO j = 50, 100\n  A(j) = B(j)\nEND DO\nEND PROGRAM\n");
  bool overlap_flagged = false;
  for (const auto& f : result.findings) {
    if (f.kind == SaFindingKind::kPossibleViolation &&
        f.message.find("overlapping") != std::string::npos) {
      overlap_flagged = true;
    }
  }
  EXPECT_TRUE(overlap_flagged);
}

TEST(SaCheckTest, DisjointSitesClean) {
  const auto result = check_src(
      "PROGRAM t\nARRAY A(100)\nARRAY B(100) INIT ALL\n"
      "DO k = 1, 50\n  A(k) = B(k)\nEND DO\n"
      "DO j = 51, 100\n  A(j) = B(j)\nEND DO\nEND PROGRAM\n");
  EXPECT_TRUE(result.findings.empty());
}

TEST(SaCheckTest, WriteIntoInitializedPrefixProven) {
  const auto result = check_src(
      "PROGRAM t\nARRAY A(100) INIT PREFIX 10\nARRAY B(100) INIT ALL\n"
      "DO k = 5, 50\n  A(k) = B(k)\nEND DO\nEND PROGRAM\n");
  EXPECT_TRUE(result.has_proven_violation());
}

TEST(SaCheckTest, IccgInductionWriteNotFlagged) {
  // The ICCG write target advances through induction resets the per-loop
  // stride analysis cannot see; the checker must not cry wolf.
  const CompiledProgram prog = build_k2_iccg();
  const auto result = check_single_assignment(prog.program, prog.sema);
  EXPECT_FALSE(result.has_proven_violation());
}

TEST(SaCheckTest, ExclusiveArmsMayWriteTheSameCell) {
  // Both arms of one IF define A(k): mutually exclusive, so the merged
  // definition is still single assignment (the DSA conditional merge).
  const auto result = check_src(
      "PROGRAM t\nARRAY A(100)\nARRAY B(100) INIT ALL\n"
      "DO k = 1, 100\n"
      "  IF (B(k) > 0.5) THEN\n    A(k) = B(k)\n"
      "  ELSE\n    A(k) = -B(k)\n  END IF\n"
      "END DO\nEND PROGRAM\n");
  EXPECT_TRUE(result.findings.empty()) << result.report();
}

TEST(SaCheckTest, SameArmOverlapStillFlagged) {
  // Two writes in the SAME arm overlap: the guard does not excuse them.
  const auto result = check_src(
      "PROGRAM t\nARRAY A(100)\nARRAY B(100) INIT ALL\n"
      "DO k = 1, 100\n"
      "  IF (B(k) > 0.5) THEN\n    A(k) = B(k)\n    A(k) = 2 * B(k)\n"
      "  END IF\n"
      "END DO\nEND PROGRAM\n");
  EXPECT_FALSE(result.findings.empty());
}

TEST(SaCheckTest, GuardedWriteOverlappingUnguardedIsFlagged) {
  const auto result = check_src(
      "PROGRAM t\nARRAY A(100)\nARRAY B(100) INIT ALL\n"
      "DO k = 1, 100\n"
      "  IF (B(k) > 0.5) THEN\n    A(k) = B(k)\n  END IF\n"
      "  A(k) = 0\n"
      "END DO\nEND PROGRAM\n");
  EXPECT_FALSE(result.findings.empty());
}

TEST(SaCheckTest, GuardedInvariantTargetIsPossibleNotProven) {
  // A(5) written on data-dependent trips only: a possible violation (the
  // runtime still traps the double write when the guard fires twice).
  const auto result = check_src(
      "PROGRAM t\nARRAY A(100)\nARRAY B(100) INIT ALL\n"
      "DO k = 1, 10\n"
      "  IF (B(k) > 0.5) THEN\n    A(5) = k\n  END IF\n"
      "END DO\nEND PROGRAM\n");
  EXPECT_FALSE(result.has_proven_violation());
  EXPECT_FALSE(result.findings.empty());
}

TEST(SaCheckTest, AllLivermoreKernelsAreViolationFree) {
  for (const auto& spec : livermore_kernels()) {
    const CompiledProgram prog = spec.build();
    const auto result = check_single_assignment(prog.program, prog.sema);
    EXPECT_FALSE(result.has_proven_violation())
        << spec.id << ":\n"
        << result.report();
  }
}

}  // namespace
}  // namespace sap
