#include "frontend/affine.hpp"

#include <gtest/gtest.h>

#include "frontend/parser.hpp"

namespace sap {
namespace {

/// Parses a one-loop program and returns the affine form of the first
/// read of `array` inside it, plus the context to query strides.
struct Fixture {
  Program program;
  SemanticInfo sema;
  AffineContext ctx;

  explicit Fixture(std::string_view src) : program(Parser::parse(src)) {
    sema = analyze(program);
    ctx.program = &program;
    ctx.sema = &sema;
    ctx.loops = sema.assign_sites.at(0).loops;
  }

  const ArrayAssign& assign() const {
    return *sema.assign_sites.at(0).assign;
  }

  AffineIndex target_affine() const {
    ArrayRefExpr target;
    target.name = assign().array;
    for (const auto& idx : assign().indices) {
      target.indices.push_back(clone(*idx));
    }
    const ArrayShape shape(
        program.arrays[sema.arrays.at(assign().array)].dims);
    return element_affine(target, shape, ctx);
  }
};

TEST(AffineTest, SimpleLoopVar) {
  Fixture f(
      "PROGRAM t\nARRAY A(100)\nDO k = 1, 50\n  A(k + 10) = 1\nEND DO\n"
      "END PROGRAM\n");
  const AffineIndex aff = f.target_affine();
  ASSERT_TRUE(aff.affine);
  EXPECT_TRUE(aff.constant_known);
  EXPECT_EQ(aff.coeffs.at("K"), 1);
  EXPECT_EQ(aff.constant, 9);  // (k + 10) - lower bound 1
}

TEST(AffineTest, ScaledAndFolded) {
  Fixture f(
      "PROGRAM t\nARRAY A(100)\nSCALAR c = 3\n"
      "DO k = 1, 20\n  A(2 * k + c - 1) = 1\nEND DO\nEND PROGRAM\n");
  const AffineIndex aff = f.target_affine();
  ASSERT_TRUE(aff.affine);
  EXPECT_EQ(aff.coeffs.at("K"), 2);
  EXPECT_EQ(aff.constant, 1);  // 2k + 3 - 1 -> -1 for the lower bound
}

TEST(AffineTest, RowMajorElementStrides) {
  Fixture f(
      "PROGRAM t\nARRAY A(10, 7)\nDO j = 2, 9\n  A(j, 3) = 1\nEND DO\n"
      "END PROGRAM\n");
  const AffineIndex aff = f.target_affine();
  ASSERT_TRUE(aff.affine);
  EXPECT_EQ(aff.coeffs.at("J"), 7);  // row stride
  const auto stride = stride_per_trip(aff, *f.ctx.loops[0], f.ctx);
  ASSERT_TRUE(stride.has_value());
  EXPECT_EQ(*stride, 7);
}

TEST(AffineTest, LoopStepScalesStride) {
  Fixture f(
      "PROGRAM t\nARRAY A(100)\nDO k = 1, 50, 2\n  A(k) = 1\nEND DO\n"
      "END PROGRAM\n");
  const auto stride =
      stride_per_trip(f.target_affine(), *f.ctx.loops[0], f.ctx);
  EXPECT_EQ(*stride, 2);
}

TEST(AffineTest, InductionScalarGivesStrideButUnknownConstant) {
  Fixture f(
      "PROGRAM t\nARRAY A(100)\nSCALAR i = 0\n"
      "DO k = 1, 50\n  i = i + 1\n  A(i) = k\nEND DO\nEND PROGRAM\n");
  const AffineIndex aff = f.target_affine();
  ASSERT_TRUE(aff.affine);
  EXPECT_FALSE(aff.constant_known);
  const auto stride = stride_per_trip(aff, *f.ctx.loops[0], f.ctx);
  EXPECT_EQ(*stride, 1);
}

TEST(AffineTest, IndirectIndexIsNotAffine) {
  Fixture f(
      "PROGRAM t\nARRAY A(10)\nARRAY P(10) INIT ALL\n"
      "DO k = 1, 10\n  A(k) = 1\nEND DO\nEND PROGRAM\n");
  // Build B(P(k)) by hand: indirect index.
  std::vector<ExprPtr> inner;
  inner.push_back(make_var("K"));
  std::vector<ExprPtr> outer;
  outer.push_back(make_array_ref("P", std::move(inner)));
  const Expr ref{{}, ArrayRefExpr{"A", std::move(outer)}};
  const AffineIndex aff = affine_of_index(
      *std::get<ArrayRefExpr>(ref.node).indices[0], f.ctx);
  EXPECT_FALSE(aff.affine);
}

TEST(AffineTest, NonConstScalarIsNotAffine) {
  Fixture f(
      "PROGRAM t\nARRAY A(100)\nSCALAR s = 0\n"
      "DO k = 1, 10\n  s = s * 2\n  A(k) = s\nEND DO\nEND PROGRAM\n");
  // s is assigned (not an induction: s = s*2 has no literal step form).
  AffineContext ctx = f.ctx;
  const Expr e{{}, VarRef{"S"}};
  EXPECT_FALSE(affine_of_index(e, ctx).affine);
}

TEST(AffineTest, ExactDivision) {
  Fixture f(
      "PROGRAM t\nARRAY A(100)\nDO k = 1, 20\n  A((4 * k) / 2) = 1\n"
      "END DO\nEND PROGRAM\n");
  const AffineIndex aff = f.target_affine();
  ASSERT_TRUE(aff.affine);
  EXPECT_EQ(aff.coeffs.at("K"), 2);
}

TEST(AffineTest, InexactDivisionNotAffine) {
  Fixture f(
      "PROGRAM t\nARRAY A(100)\nDO k = 1, 20\n  A(k / 2 + 50) = 1\n"
      "END DO\nEND PROGRAM\n");
  EXPECT_FALSE(f.target_affine().affine);
}

TEST(AffineTest, ConstExprEvaluation) {
  Fixture f(
      "PROGRAM t\nARRAY A(10)\nSCALAR c = 6\n"
      "DO k = 1, 5\n  A(k) = 1\nEND DO\nEND PROGRAM\n");
  const Expr e{{}, BinaryExpr{BinaryOp::kMul, make_var("C"), make_number(2)}};
  EXPECT_DOUBLE_EQ(*eval_const_expr(e, f.ctx), 12.0);
  const Expr idiv{{}, IntrinsicExpr{IntrinsicKind::kIDiv,
                                    [] {
                                      std::vector<ExprPtr> args;
                                      args.push_back(make_number(7));
                                      args.push_back(make_number(2));
                                      return args;
                                    }()}};
  EXPECT_DOUBLE_EQ(*eval_const_expr(idiv, f.ctx), 3.0);
}

TEST(AffineTest, TripCounts) {
  Fixture f(
      "PROGRAM t\nARRAY A(100)\nDO k = 2, 10, 3\n  A(k) = 1\nEND DO\n"
      "END PROGRAM\n");
  EXPECT_EQ(*const_trip_count(*f.ctx.loops[0], f.ctx), 3);  // 2, 5, 8
}

TEST(AffineTest, RuntimeBoundsHaveNoTripCount) {
  Fixture f(
      "PROGRAM t\nARRAY A(100)\nSCALAR n = 0\n"
      "DO l = 1, 3\n  n = n + 1\n  DO k = 1, n\n    A(k + 10 * l) = 1\n"
      "  END DO\nEND DO\nEND PROGRAM\n");
  // Inner loop bound depends on a live scalar.
  EXPECT_FALSE(const_trip_count(*f.ctx.loops[1], f.ctx).has_value());
}

}  // namespace
}  // namespace sap
