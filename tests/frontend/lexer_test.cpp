#include "frontend/lexer.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace sap {
namespace {

std::vector<Token> lex(std::string_view src) {
  return Lexer(src).tokenize();
}

TEST(LexerTest, KeywordsAndIdentifiersCaseInsensitive) {
  const auto tokens = lex("program Foo\narray x(10)\n");
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwProgram);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].text, "FOO");  // normalized to upper
  EXPECT_EQ(tokens[3].kind, TokenKind::kKwArray);
  EXPECT_EQ(tokens[4].text, "X");
}

TEST(LexerTest, Numbers) {
  const auto tokens = lex("1 2.5 1e3 4.2E-2 .5");
  EXPECT_DOUBLE_EQ(tokens[0].number, 1.0);
  EXPECT_DOUBLE_EQ(tokens[1].number, 2.5);
  EXPECT_DOUBLE_EQ(tokens[2].number, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].number, 0.042);
  EXPECT_DOUBLE_EQ(tokens[4].number, 0.5);
}

TEST(LexerTest, OperatorsAndPunctuation) {
  const auto tokens = lex("( ) , : + - * / =");
  const TokenKind expected[] = {
      TokenKind::kLParen, TokenKind::kRParen, TokenKind::kComma,
      TokenKind::kColon,  TokenKind::kPlus,   TokenKind::kMinus,
      TokenKind::kStar,   TokenKind::kSlash,  TokenKind::kEquals};
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << i;
  }
}

TEST(LexerTest, CommentsIgnoredToEndOfLine) {
  const auto tokens = lex("x ! this is ignored\ny # so is this\n");
  EXPECT_EQ(tokens[0].text, "X");
  EXPECT_EQ(tokens[1].kind, TokenKind::kNewline);
  EXPECT_EQ(tokens[2].text, "Y");
}

TEST(LexerTest, NewlinesCollapsedAndSemicolonsCount) {
  const auto tokens = lex("a\n\n\nb;c");
  // a NL b NL c EOF
  EXPECT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kNewline);
  EXPECT_EQ(tokens[3].kind, TokenKind::kNewline);
}

TEST(LexerTest, SourceLocations) {
  const auto tokens = lex("a\n  bb");
  EXPECT_EQ(tokens[0].loc.line, 1);
  EXPECT_EQ(tokens[0].loc.column, 1);
  EXPECT_EQ(tokens[2].loc.line, 2);
  EXPECT_EQ(tokens[2].loc.column, 3);
}

TEST(LexerTest, ReinitKeyword) {
  const auto tokens = lex("REINIT A");
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwReinit);
}

TEST(LexerTest, ComparisonOperators) {
  const auto tokens = lex("< <= > >= == /= / =");
  EXPECT_EQ(tokens[0].kind, TokenKind::kLess);
  EXPECT_EQ(tokens[1].kind, TokenKind::kLessEqual);
  EXPECT_EQ(tokens[2].kind, TokenKind::kGreater);
  EXPECT_EQ(tokens[3].kind, TokenKind::kGreaterEqual);
  EXPECT_EQ(tokens[4].kind, TokenKind::kEqualEqual);
  EXPECT_EQ(tokens[5].kind, TokenKind::kNotEqual);
  // Separated '/' '=' stay distinct tokens.
  EXPECT_EQ(tokens[6].kind, TokenKind::kSlash);
  EXPECT_EQ(tokens[7].kind, TokenKind::kEquals);
}

TEST(LexerTest, ConditionalKeywords) {
  const auto tokens = lex("IF then Else endif");
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwIf);
  EXPECT_EQ(tokens[1].kind, TokenKind::kKwThen);
  EXPECT_EQ(tokens[2].kind, TokenKind::kKwElse);
  // "endif" is one identifier, not END + IF.
  EXPECT_EQ(tokens[3].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[3].text, "ENDIF");
}

TEST(LexerTest, RejectsUnknownCharacter) {
  EXPECT_THROW(lex("a @ b"), ParseError);
}

TEST(LexerTest, RejectsMalformedNumber) {
  EXPECT_THROW(lex("1e"), ParseError);
}

TEST(LexerTest, EmptyInputHasOnlyEof) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEndOfFile);
}

}  // namespace
}  // namespace sap
