#include "memory/sa_array.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace sap {
namespace {

SaArray make(std::int64_t n = 8) {
  return SaArray(0, "A", ArrayShape::vector_1based(n));
}

TEST(SaArrayTest, WriteOnceThenRead) {
  SaArray a = make();
  a.write(3, 2.5);
  EXPECT_TRUE(a.is_defined(3));
  EXPECT_DOUBLE_EQ(a.read(3), 2.5);
}

TEST(SaArrayTest, SecondWriteTraps) {
  // §3: "writing more than once results in a runtime error."
  SaArray a = make();
  a.write(0, 1.0);
  EXPECT_THROW(a.write(0, 2.0), DoubleWriteError);
  EXPECT_DOUBLE_EQ(a.read(0), 1.0);  // first value preserved
}

TEST(SaArrayTest, ReadUndefinedThrows) {
  SaArray a = make();
  EXPECT_THROW(a.read(1), UndefinedReadError);
}

TEST(SaArrayTest, DeferredReadQueuesAndWakes) {
  // §3: undefined cells hold "a queue of read requests."
  SaArray a = make();
  EXPECT_EQ(a.read_or_defer(2, /*reader=*/5), std::nullopt);
  EXPECT_EQ(a.read_or_defer(2, 7), std::nullopt);
  EXPECT_EQ(a.read_or_defer(2, 5), std::nullopt);  // dedup
  const auto woken = a.write(2, 9.0);
  ASSERT_EQ(woken.size(), 2u);
  EXPECT_EQ(woken[0], 5u);
  EXPECT_EQ(woken[1], 7u);
  EXPECT_EQ(a.read_or_defer(2, 5), 9.0);
}

TEST(SaArrayTest, WakeListEmptyWhenNoWaiters) {
  SaArray a = make();
  EXPECT_TRUE(a.write(0, 1.0).empty());
}

TEST(SaArrayTest, InitializeOnlyTargetsUndefined) {
  SaArray a = make();
  a.initialize(0, 1.5);
  EXPECT_DOUBLE_EQ(a.read(0), 1.5);
  EXPECT_THROW(a.initialize(0, 2.0), Error);
}

TEST(SaArrayTest, InitializeAllDefinesEverything) {
  SaArray a = make(5);
  a.initialize_all(3.0);
  EXPECT_EQ(a.defined_count(), 5);
  for (std::int64_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(a.read(i), 3.0);
}

TEST(SaArrayTest, ReinitializeBumpsGenerationAndClears) {
  // §5: controlled reuse via the host protocol.
  SaArray a = make();
  a.write(1, 4.0);
  EXPECT_EQ(a.generation(), 0u);
  a.reinitialize();
  EXPECT_EQ(a.generation(), 1u);
  EXPECT_FALSE(a.is_defined(1));
  EXPECT_EQ(a.defined_count(), 0);
  // The cell is writable again in the new generation.
  a.write(1, 6.0);
  EXPECT_DOUBLE_EQ(a.read(1), 6.0);
}

TEST(SaArrayTest, ReinitializeDropsWaiters) {
  SaArray a = make();
  a.read_or_defer(0, 1);
  a.reinitialize();
  EXPECT_TRUE(a.write(0, 1.0).empty());
}

TEST(SaArrayTest, BoundsChecked) {
  SaArray a = make(4);
  EXPECT_THROW(a.write(-1, 0.0), BoundsError);
  EXPECT_THROW(a.write(4, 0.0), BoundsError);
  EXPECT_THROW(a.read(99), BoundsError);
  EXPECT_THROW(a.is_defined(-2), BoundsError);
}

TEST(SaArrayTest, DefinedCountTracksWrites) {
  SaArray a = make(10);
  EXPECT_EQ(a.defined_count(), 0);
  a.write(0, 1);
  a.write(5, 2);
  a.initialize(7, 3);
  EXPECT_EQ(a.defined_count(), 3);
}

}  // namespace
}  // namespace sap
