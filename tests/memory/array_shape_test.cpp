#include "memory/array_shape.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace sap {
namespace {

TEST(ArrayShapeTest, Vector1Based) {
  const auto s = ArrayShape::vector_1based(10);
  EXPECT_EQ(s.rank(), 1u);
  EXPECT_EQ(s.element_count(), 10);
  EXPECT_EQ(s.linearize({1}), 0);
  EXPECT_EQ(s.linearize({10}), 9);
}

TEST(ArrayShapeTest, RowMajorLastIndexFastest) {
  // §7: multidimensional arrays map row-major.
  const auto s = ArrayShape::of_extents({3, 4});
  EXPECT_EQ(s.linearize({1, 1}), 0);
  EXPECT_EQ(s.linearize({1, 2}), 1);   // last index fastest
  EXPECT_EQ(s.linearize({2, 1}), 4);   // first index strides a whole row
  EXPECT_EQ(s.linearize({3, 4}), 11);
  EXPECT_EQ(s.stride(0), 4);
  EXPECT_EQ(s.stride(1), 1);
}

TEST(ArrayShapeTest, CustomLowerBounds) {
  const ArrayShape s({DimBound{0, 4}, DimBound{-2, 2}});
  EXPECT_EQ(s.element_count(), 25);
  EXPECT_EQ(s.linearize({0, -2}), 0);
  EXPECT_EQ(s.linearize({4, 2}), 24);
}

TEST(ArrayShapeTest, DelinearizeInvertsLinearize) {
  const auto s = ArrayShape::of_extents({5, 7, 3});
  for (std::int64_t linear = 0; linear < s.element_count(); ++linear) {
    EXPECT_EQ(s.linearize(s.delinearize(linear)), linear);
  }
}

TEST(ArrayShapeTest, BoundsChecking) {
  const auto s = ArrayShape::of_extents({3, 3});
  EXPECT_THROW(s.linearize({0, 1}), BoundsError);
  EXPECT_THROW(s.linearize({1, 4}), BoundsError);
  EXPECT_THROW(s.linearize({1}), BoundsError);  // rank mismatch
  EXPECT_FALSE(s.contains({4, 1}));
  EXPECT_TRUE(s.contains({3, 3}));
}

TEST(ArrayShapeTest, RejectsInvalidDims) {
  EXPECT_THROW(ArrayShape({}), Error);
  EXPECT_THROW(ArrayShape({DimBound{2, 1}}), Error);
  EXPECT_THROW(ArrayShape::vector_1based(0), Error);
}

TEST(ArrayShapeTest, ToStringShowsBounds) {
  const ArrayShape s({DimBound{1, 10}, DimBound{0, 6}});
  EXPECT_EQ(s.to_string(), "(1:10, 0:6)");
}

class ShapeRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ShapeRoundTrip, ThreeDimRoundTrip) {
  const std::int64_t n = GetParam();
  const ArrayShape s({DimBound{1, n}, DimBound{0, 2}, DimBound{-1, 1}});
  EXPECT_EQ(s.element_count(), n * 3 * 3);
  EXPECT_EQ(s.linearize(s.delinearize(s.element_count() - 1)),
            s.element_count() - 1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShapeRoundTrip,
                         ::testing::Values(1, 2, 7, 32, 101));

}  // namespace
}  // namespace sap
