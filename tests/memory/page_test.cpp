#include "memory/page.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace sap {
namespace {

TEST(PageMathTest, PageOf) {
  EXPECT_EQ(page_of(0, 32), 0);
  EXPECT_EQ(page_of(31, 32), 0);
  EXPECT_EQ(page_of(32, 32), 1);
  EXPECT_EQ(page_of(100, 32), 3);
}

TEST(PageMathTest, PageCountRoundsUp) {
  EXPECT_EQ(page_count_for(100, 32), 4);  // paper §2: 3 full + 1 partial
  EXPECT_EQ(page_count_for(96, 32), 3);
  EXPECT_EQ(page_count_for(1, 32), 1);
  EXPECT_EQ(page_count_for(0, 32), 0);
}

TEST(PageMathTest, PartialFinalPage) {
  // §2's example: arrays of 100 elements, pages of 32: the last page has 4.
  EXPECT_EQ(page_valid_elements(3, 100, 32), 4);
  EXPECT_EQ(page_valid_elements(0, 100, 32), 32);
  EXPECT_EQ(page_first_element(3, 32), 96);
}

TEST(PageIdTest, EqualityAndOrdering) {
  const PageId a{1, 2}, b{1, 2}, c{1, 3}, d{2, 0};
  EXPECT_EQ(a, b);
  EXPECT_LT(a, c);
  EXPECT_LT(c, d);
}

TEST(PageIdTest, HashDistinguishes) {
  std::unordered_set<PageId> set;
  for (ArrayId array = 0; array < 8; ++array) {
    for (PageIndex page = 0; page < 64; ++page) {
      set.insert(PageId{array, page});
    }
  }
  EXPECT_EQ(set.size(), 8u * 64u);
}

TEST(PageIdTest, ToString) {
  EXPECT_EQ((PageId{3, 7}.to_string()), "page(3, 7)");
}

}  // namespace
}  // namespace sap
