#include "memory/array_registry.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace sap {
namespace {

TEST(ArrayRegistryTest, DeclareAndLookup) {
  ArrayRegistry reg;
  const ArrayId a = reg.declare("A", ArrayShape::vector_1based(10));
  const ArrayId b = reg.declare("B", ArrayShape::of_extents({2, 3}));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.at(a).name(), "A");
  EXPECT_EQ(reg.by_name("B").element_count(), 6);
  EXPECT_TRUE(reg.contains("A"));
  EXPECT_FALSE(reg.contains("C"));
}

TEST(ArrayRegistryTest, DuplicateNameRejected) {
  ArrayRegistry reg;
  reg.declare("A", ArrayShape::vector_1based(1));
  EXPECT_THROW(reg.declare("A", ArrayShape::vector_1based(2)), SemanticError);
}

TEST(ArrayRegistryTest, UnknownNameThrows) {
  ArrayRegistry reg;
  EXPECT_THROW(reg.by_name("nope"), SemanticError);
}

TEST(ArrayRegistryTest, TotalElements) {
  ArrayRegistry reg;
  reg.declare("A", ArrayShape::vector_1based(10));
  reg.declare("B", ArrayShape::of_extents({4, 5}));
  EXPECT_EQ(reg.total_elements(), 30);
}

TEST(ArrayRegistryTest, ReinitializeAll) {
  ArrayRegistry reg;
  reg.declare("A", ArrayShape::vector_1based(3));
  reg.by_name("A").write(0, 1.0);
  reg.reinitialize_all();
  EXPECT_EQ(reg.by_name("A").defined_count(), 0);
  EXPECT_EQ(reg.by_name("A").generation(), 1u);
}

TEST(ArrayRegistryTest, StableAddressesAcrossDeclarations) {
  // Interpreters hold SaArray references while declaring more arrays.
  ArrayRegistry reg;
  reg.declare("A", ArrayShape::vector_1based(4));
  const SaArray* a = &reg.by_name("A");
  for (int i = 0; i < 50; ++i) {
    reg.declare("X" + std::to_string(i), ArrayShape::vector_1based(1));
  }
  EXPECT_EQ(a, &reg.by_name("A"));
}

}  // namespace
}  // namespace sap
