#include "network/topology.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace sap {
namespace {

TEST(CrossbarTest, SingleHopBetweenDistinct) {
  const auto t = make_topology(TopologyKind::kCrossbar, 8);
  EXPECT_EQ(t->hops(0, 0), 0u);
  EXPECT_EQ(t->hops(0, 7), 1u);
  EXPECT_EQ(t->route(2, 5).size(), 1u);
}

TEST(RingTest, ShortestWayAround) {
  const auto t = make_topology(TopologyKind::kRing, 8);
  EXPECT_EQ(t->hops(0, 1), 1u);
  EXPECT_EQ(t->hops(0, 4), 4u);
  EXPECT_EQ(t->hops(0, 7), 1u);  // wraps backwards
  EXPECT_EQ(t->hops(6, 2), 4u);
}

TEST(RingTest, RouteIsConnected) {
  const auto t = make_topology(TopologyKind::kRing, 6);
  const auto route = t->route(1, 4);
  ASSERT_EQ(route.size(), t->hops(1, 4));
  EXPECT_EQ(route.front().from, 1u);
  EXPECT_EQ(route.back().to, 4u);
  for (std::size_t i = 1; i < route.size(); ++i) {
    EXPECT_EQ(route[i - 1].to, route[i].from);
  }
}

TEST(Mesh2DTest, SquareFactorization) {
  const auto t = make_topology(TopologyKind::kMesh2D, 16);
  EXPECT_EQ(t->name(), "mesh2d(4x4)");
  EXPECT_EQ(t->hops(0, 15), 6u);  // (0,0) -> (3,3) Manhattan
  EXPECT_EQ(t->hops(0, 3), 3u);
  EXPECT_EQ(t->hops(5, 5), 0u);
}

TEST(Mesh2DTest, NonSquareCounts) {
  const auto t = make_topology(TopologyKind::kMesh2D, 12);  // 3x4
  EXPECT_EQ(t->name(), "mesh2d(3x4)");
  EXPECT_EQ(t->hops(0, 11), 5u);
}

TEST(Mesh2DTest, XyRoutingDimensionOrder) {
  const auto t = make_topology(TopologyKind::kMesh2D, 16);
  const auto route = t->route(0, 15);
  ASSERT_EQ(route.size(), 6u);
  // X (column) first: first three links move within row 0.
  EXPECT_EQ(route[0].to, 1u);
  EXPECT_EQ(route[2].to, 3u);
  EXPECT_EQ(route[3].to, 7u);  // then down the column
  EXPECT_EQ(route.back().to, 15u);
}

TEST(HypercubeTest, HammingDistance) {
  const auto t = make_topology(TopologyKind::kHypercube, 16);
  EXPECT_EQ(t->hops(0, 15), 4u);
  EXPECT_EQ(t->hops(5, 6), 2u);  // 0101 vs 0110
  EXPECT_EQ(t->hops(3, 3), 0u);
}

TEST(HypercubeTest, EcubeRouteAscendingDimensions) {
  const auto t = make_topology(TopologyKind::kHypercube, 8);
  const auto route = t->route(0, 5);  // bits 0 and 2
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(route[0].to, 1u);  // bit 0 first
  EXPECT_EQ(route[1].to, 5u);
}

TEST(HypercubeTest, RequiresPowerOfTwo) {
  EXPECT_THROW(make_topology(TopologyKind::kHypercube, 6), ConfigError);
  EXPECT_NO_THROW(make_topology(TopologyKind::kHypercube, 1));
}

TEST(TopologyTest, ZeroPesRejected) {
  EXPECT_THROW(make_topology(TopologyKind::kRing, 0), ConfigError);
}

class RouteLengthMatchesHops
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(RouteLengthMatchesHops, Consistent) {
  const auto [kind_idx, pes] = GetParam();
  const auto kind = static_cast<TopologyKind>(kind_idx);
  if (kind == TopologyKind::kHypercube && (pes & (pes - 1)) != 0) GTEST_SKIP();
  const auto t = make_topology(kind, pes);
  for (std::uint32_t s = 0; s < pes; ++s) {
    for (std::uint32_t d = 0; d < pes; ++d) {
      EXPECT_EQ(t->route(s, d).size(), t->hops(s, d))
          << t->name() << " " << s << "->" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RouteLengthMatchesHops,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1u, 2u, 8u, 16u)));

}  // namespace
}  // namespace sap
