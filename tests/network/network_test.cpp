#include "network/network.hpp"

#include <gtest/gtest.h>

namespace sap {
namespace {

TEST(NetworkTest, CountsMessagesByKind) {
  Network net(make_topology(TopologyKind::kCrossbar, 4));
  net.send({0, 1, MessageKind::kPageRequest, 0});
  net.send({1, 0, MessageKind::kPageReply, 32});
  net.send({2, 3, MessageKind::kReinitRequest, 0});
  EXPECT_EQ(net.stats().messages, 3u);
  EXPECT_EQ(net.stats().control_messages, 2u);
  EXPECT_EQ(net.stats().data_messages, 1u);
  EXPECT_EQ(net.stats().payload_elements, 32u);
}

TEST(NetworkTest, HopAccounting) {
  Network net(make_topology(TopologyKind::kRing, 8));
  net.send({0, 4, MessageKind::kPageRequest, 0});  // 4 hops
  net.send({0, 1, MessageKind::kPageRequest, 0});  // 1 hop
  EXPECT_EQ(net.stats().hop_total, 5u);
  EXPECT_DOUBLE_EQ(net.stats().mean_hops(), 2.5);
}

TEST(NetworkTest, LinkLoadsFollowRoutes) {
  Network net(make_topology(TopologyKind::kRing, 4));
  // 0 -> 2 may go either way (2 hops): both routes load 2 links.
  net.send({0, 2, MessageKind::kPageRequest, 0});
  EXPECT_EQ(net.max_link_load(), 1u);
  net.send({0, 2, MessageKind::kPageRequest, 0});
  EXPECT_EQ(net.max_link_load(), 2u);
  EXPECT_GT(net.mean_link_load(), 0.0);
  EXPECT_GE(net.contention_factor(), 1.0);
}

TEST(NetworkTest, PairTraffic) {
  Network net(make_topology(TopologyKind::kCrossbar, 4));
  net.send({0, 1, MessageKind::kPageRequest, 0});
  net.send({0, 1, MessageKind::kPageRequest, 0});
  net.send({1, 0, MessageKind::kPageReply, 8});
  EXPECT_EQ(net.pair_traffic().at({0, 1}), 2u);
  EXPECT_EQ(net.pair_traffic().at({1, 0}), 1u);
}

TEST(NetworkTest, ResetClears) {
  Network net(make_topology(TopologyKind::kCrossbar, 2));
  net.send({0, 1, MessageKind::kPageRequest, 0});
  net.reset();
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_EQ(net.max_link_load(), 0u);
  EXPECT_TRUE(net.pair_traffic().empty());
}

TEST(NetworkTest, SelfMessageHasNoHops) {
  Network net(make_topology(TopologyKind::kMesh2D, 9));
  net.send({4, 4, MessageKind::kPageReply, 16});
  EXPECT_EQ(net.stats().hop_total, 0u);
  EXPECT_EQ(net.max_link_load(), 0u);
}

}  // namespace
}  // namespace sap
