#include "advisor/cost_model.hpp"

#include <gtest/gtest.h>

#include "advisor/access_summary.hpp"
#include "core/program_builder.hpp"
#include "core/simulator.hpp"
#include "kernels/livermore.hpp"
#include "kernels/synthetic.hpp"

namespace sap {
namespace {

MachineConfig config_of(std::uint32_t pes, std::int64_t page_size,
                        std::int64_t cache, PartitionKind kind) {
  MachineConfig c;
  c.num_pes = pes;
  c.page_size = page_size;
  c.cache_elements = cache;
  c.partition = kind;
  return c;
}

TEST(CostModelTest, MatchedPredictsZeroRemote) {
  const AccessSummary s = summarize_access(make_matched(4096));
  for (const PartitionKind kind :
       {PartitionKind::kModulo, PartitionKind::kBlock,
        PartitionKind::kBlockCyclic}) {
    for (const std::uint32_t pes : {1u, 4u, 64u}) {
      const CostEstimate est =
          estimate_cost(s, config_of(pes, 32, 256, kind));
      EXPECT_EQ(est.remote_reads, 0.0)
          << to_string(kind) << " @" << pes << " PEs";
      EXPECT_EQ(est.total_reads, 2 * 4096.0);
    }
  }
}

TEST(CostModelTest, SinglePeIsAllLocal) {
  for (const auto& program :
       {make_skewed(512, 7), make_cyclic(512, 2),
        make_random_permutation(256, 3)}) {
    const AccessSummary s = summarize_access(program);
    const CostEstimate est =
        estimate_cost(s, config_of(1, 32, 256, PartitionKind::kModulo));
    EXPECT_EQ(est.remote_reads, 0.0) << s.program;
  }
}

TEST(CostModelTest, SkewedNoCacheMatchesSimulatorExactly) {
  // The affine page-segment walk is exact for skewed loops without a
  // cache: every boundary-crossing read of a modulo-partitioned array is
  // remote.  Cross-check the prediction against the real machine.
  const CompiledProgram prog = make_skewed(2048, 11);
  const AccessSummary s = summarize_access(prog);
  const MachineConfig config =
      config_of(16, 32, /*cache=*/0, PartitionKind::kModulo);
  const CostEstimate est = estimate_cost(s, config);
  const SimulationResult real = Simulator(config).run(prog);
  EXPECT_EQ(static_cast<std::uint64_t>(est.total_reads),
            real.totals.total_reads());
  EXPECT_NEAR(est.remote_reads,
              static_cast<double>(real.totals.remote_reads), 1.0);
}

TEST(CostModelTest, BlockBeatsModuloOnSkewed) {
  // §9's observation: a division scheme keeps neighbour pages on one PE,
  // so a constant skew stops crossing ownership at almost every page
  // boundary.  The model must reproduce the preference.
  const AccessSummary s = summarize_access(make_skewed(4096, 11));
  const MachineConfig modulo =
      config_of(16, 32, 0, PartitionKind::kModulo);
  const MachineConfig block = config_of(16, 32, 0, PartitionKind::kBlock);
  const CostEstimate est_modulo = estimate_cost(s, modulo);
  const CostEstimate est_block = estimate_cost(s, block);
  EXPECT_GT(est_modulo.remote_reads, 0.0);
  EXPECT_LT(est_block.remote_reads, est_modulo.remote_reads * 0.25);
}

TEST(CostModelTest, CacheCollapsesTouchesToFetches) {
  const AccessSummary s = summarize_access(make_cyclic(4096, 2));
  const CostEstimate nocache =
      estimate_cost(s, config_of(16, 32, 0, PartitionKind::kModulo));
  const CostEstimate cached =
      estimate_cost(s, config_of(16, 32, 256, PartitionKind::kModulo));
  EXPECT_GT(nocache.remote_reads, 0.0);
  // A streaming cyclic read costs one fetch per page instead of one
  // remote read per touch.
  EXPECT_LT(cached.remote_reads, nocache.remote_reads / 4.0);
  // With the cache on, predicted remote reads ARE the page fetches.
  EXPECT_EQ(cached.page_fetches, cached.remote_reads);
}

TEST(CostModelTest, RandomStaysRemoteDespiteCache) {
  // §7.1.4: permutation lookups thrash a small cache.  The model's
  // coverage term must keep the cached prediction close to the uncached
  // one when the array dwarfs the cache.
  const AccessSummary s = summarize_access(make_random_permutation(8192, 5));
  const CostEstimate nocache =
      estimate_cost(s, config_of(16, 32, 0, PartitionKind::kModulo));
  const CostEstimate cached =
      estimate_cost(s, config_of(16, 32, 256, PartitionKind::kModulo));
  EXPECT_GT(cached.remote_reads, nocache.remote_reads * 0.5);
}

TEST(CostModelTest, WriteBalanceSeesBlockConcentration) {
  // Hydro's X is dimensioned 1001 but only 400 elements are written:
  // block partitioning parks the whole written prefix on the low PEs,
  // which the imbalance estimate must expose (and modulo must not).
  const AccessSummary s = summarize_access(build_k1_hydro());
  const CostEstimate modulo =
      estimate_cost(s, config_of(16, 32, 256, PartitionKind::kModulo));
  const CostEstimate block =
      estimate_cost(s, config_of(16, 32, 256, PartitionKind::kBlock));
  EXPECT_GT(block.write_balance.imbalance(),
            modulo.write_balance.imbalance() + 0.5);
}

TEST(CostModelTest, HostCollectVolumeForScalarReductions) {
  const AccessSummary s = summarize_access(make_dot_product(512));
  const CostEstimate est =
      estimate_cost(s, config_of(16, 32, 256, PartitionKind::kModulo));
  EXPECT_EQ(est.host_collect_messages, 15.0);
  EXPECT_EQ(est.writes, 1.0);
}

TEST(CostModelTest, PageTrafficScalesWithPageSize) {
  const AccessSummary s = summarize_access(make_cyclic(4096, 2));
  const CostEstimate ps32 =
      estimate_cost(s, config_of(16, 32, 256, PartitionKind::kModulo));
  const CostEstimate ps64 =
      estimate_cost(s, config_of(16, 64, 256, PartitionKind::kModulo));
  EXPECT_EQ(ps32.page_traffic_elements, ps32.page_fetches * 32.0);
  EXPECT_EQ(ps64.page_traffic_elements, ps64.page_fetches * 64.0);
}

TEST(CostModelTest, ScoreOrdersByRemoteFractionFirst) {
  CostEstimate cheap;
  cheap.total_reads = 100;
  cheap.remote_reads = 1;
  CostEstimate expensive;
  expensive.total_reads = 100;
  expensive.remote_reads = 50;
  EXPECT_LT(cheap.score(), expensive.score());
}

TEST(CostModelTest, DeterministicAcrossCalls) {
  const AccessSummary s = summarize_access(build_k18_explicit_hydro_2d());
  const MachineConfig config =
      config_of(16, 32, 256, PartitionKind::kBlockCyclic);
  const CostEstimate a = estimate_cost(s, config);
  const CostEstimate b = estimate_cost(s, config);
  EXPECT_EQ(a.remote_reads, b.remote_reads);
  EXPECT_EQ(a.page_fetches, b.page_fetches);
  EXPECT_EQ(a.score(), b.score());
}

TEST(CostModelTest, GuardedStatementHalvesPredictedTraffic) {
  // Twin programs: the same skewed read, unguarded vs under an IF arm.
  // The probability weight must scale every predicted quantity by 0.5.
  const auto build = [](bool guarded) {
    ProgramBuilder b(guarded ? "guarded" : "plain");
    b.array("A", {512});
    b.input_array("B", {1024});
    b.input_array("C", {512});
    const Ex k = b.var("K");
    b.begin_loop("K", 1, 512);
    if (guarded) b.begin_if(ex_gt(b.at("C", {k}), ex_num(1.0)));
    b.assign("A", {k}, b.at("B", {k + 40}));
    if (guarded) b.end_if();
    b.end_loop();
    return b.compile();
  };
  const AccessSummary plain = summarize_access(build(false));
  const AccessSummary guarded = summarize_access(build(true));
  const MachineConfig config =
      config_of(8, 32, 256, PartitionKind::kModulo);
  const CostEstimate plain_est = estimate_cost(plain, config);
  const CostEstimate guarded_est = estimate_cost(guarded, config);
  EXPECT_DOUBLE_EQ(guarded_est.total_reads, plain_est.total_reads * 0.5);
  EXPECT_DOUBLE_EQ(guarded_est.remote_reads, plain_est.remote_reads * 0.5);
  EXPECT_DOUBLE_EQ(guarded_est.page_fetches, plain_est.page_fetches * 0.5);
  EXPECT_DOUBLE_EQ(guarded_est.writes, plain_est.writes * 0.5);
  // The remote *fraction* — the ranking signal — is probability-invariant
  // for a uniform guard, so the guarded ranking stays consistent.
  EXPECT_DOUBLE_EQ(guarded_est.remote_read_fraction(),
                   plain_est.remote_read_fraction());
}

TEST(CostModelTest, SelectArmReadWeightedByProbability) {
  // A(k) = SELECT(C(k) > 1, B(k+40), B(k+296)): each arm's skewed read
  // contributes half its unconditional traffic.
  const auto build = [](bool with_select) {
    ProgramBuilder b(with_select ? "sel" : "flat");
    b.array("A", {512});
    b.input_array("B", {1024});
    b.input_array("C", {512});
    const Ex k = b.var("K");
    b.begin_loop("K", 1, 512);
    if (with_select) {
      b.assign("A", {k}, ex_select(ex_gt(b.at("C", {k}), ex_num(1.0)),
                                   b.at("B", {k + 40}),
                                   b.at("B", {k + 296})));
    } else {
      b.assign("A", {k}, b.at("B", {k + 40}) + b.at("B", {k + 296}));
    }
    b.end_loop();
    return b.compile();
  };
  const MachineConfig config =
      config_of(8, 32, 256, PartitionKind::kModulo);
  const CostEstimate sel = estimate_cost(summarize_access(build(true)), config);
  const CostEstimate flat =
      estimate_cost(summarize_access(build(false)), config);
  // The SELECT version reads C (local, matched) always and each B arm
  // half the time: its predicted B traffic is half the flat version's.
  EXPECT_LT(sel.page_fetches, flat.page_fetches);
  EXPECT_DOUBLE_EQ(sel.page_fetches, flat.page_fetches * 0.5);
}

TEST(CostModelTest, PerArrayAssignmentPricesEachArrayUnderItsScheme) {
  // The mixed-shape synthetic: {A, D} local only under modulo, {C, B}
  // local only under block.  Without a cache the affine walk is exact,
  // so the model must price the heterogeneous assignment at zero remote
  // while every uniform scheme pays on one statement — and the
  // prediction must agree with the real machine.
  const CompiledProgram prog = make_mixed_skew_vs_rate(1024, 256);
  const AccessSummary s = summarize_access(prog);
  const MachineConfig modulo =
      config_of(8, 32, /*cache=*/0, PartitionKind::kModulo);
  const MachineConfig mixed =
      modulo.with_array_partition("C", PartitionKind::kBlock)
          .with_array_partition("B", PartitionKind::kBlock);

  const CostEstimate uniform_est = estimate_cost(s, modulo);
  const CostEstimate mixed_est = estimate_cost(s, mixed);
  EXPECT_GT(uniform_est.remote_reads, 0.0);
  EXPECT_EQ(mixed_est.remote_reads, 0.0);

  for (const MachineConfig& config : {modulo, mixed}) {
    const CostEstimate est = estimate_cost(s, config);
    const SimulationResult real = Simulator(config).run(prog);
    EXPECT_NEAR(est.remote_reads,
                static_cast<double>(real.totals.remote_reads), 1.0)
        << config.to_string();
  }
}

TEST(CostModelTest, WriteDistributionFollowsTheWritersScheme) {
  // One array written with a block override on a modulo machine: the
  // exec-PE distribution (and so the write imbalance estimate) must
  // follow the override, identically to pricing a uniform block machine.
  const CompiledProgram prog = make_matched(1024);
  const AccessSummary s = summarize_access(prog);
  const MachineConfig base =
      config_of(8, 32, /*cache=*/0, PartitionKind::kModulo);
  const CostEstimate overridden = estimate_cost(
      s, base.with_array_partition("A", PartitionKind::kBlock));
  const CostEstimate uniform_block = estimate_cost(
      s, base.with_partition(PartitionKind::kBlock));
  EXPECT_DOUBLE_EQ(overridden.write_balance.imbalance(),
                   uniform_block.write_balance.imbalance());
}

}  // namespace
}  // namespace sap
