#include "advisor/access_summary.hpp"

#include <gtest/gtest.h>

#include "core/program_builder.hpp"
#include "kernels/livermore.hpp"
#include "kernels/synthetic.hpp"

namespace sap {
namespace {

TEST(AccessSummaryTest, MatchedKernel) {
  const AccessSummary s = summarize_access(make_matched(256));
  ASSERT_EQ(s.statements.size(), 1u);
  const StatementAccess& st = s.statements[0];
  EXPECT_EQ(st.array, "A");
  EXPECT_EQ(st.array_elements, 256);
  ASSERT_EQ(st.loops.size(), 1u);
  EXPECT_EQ(st.loops[0].trips, 256);
  EXPECT_TRUE(st.loops[0].trips_exact);
  EXPECT_TRUE(st.write_affine);
  EXPECT_TRUE(st.write_start_known);
  EXPECT_EQ(st.write_start, 0);
  ASSERT_EQ(st.write_strides.size(), 1u);
  EXPECT_EQ(st.write_strides[0], 1);
  EXPECT_FALSE(st.is_reduction);
  EXPECT_EQ(st.instances, 256);
  EXPECT_EQ(st.distinct_writes, 256);

  ASSERT_EQ(st.reads.size(), 2u);
  for (const ReadAccess& read : st.reads) {
    EXPECT_TRUE(read.affine);
    EXPECT_TRUE(read.start_known);
    EXPECT_EQ(read.start, 0);  // both B(k) and C(k) align with A(k)
    EXPECT_EQ(read.strides[0], 1);
    EXPECT_FALSE(read.self_accumulation);
  }
  EXPECT_EQ(s.total_reads, 512);
  EXPECT_EQ(s.total_writes, 256);
  EXPECT_EQ(s.classification.cls, AccessClass::kMatched);
}

TEST(AccessSummaryTest, SkewedOffsetIsVisible) {
  const AccessSummary s = summarize_access(make_skewed(256, 11));
  ASSERT_EQ(s.statements.size(), 1u);
  const StatementAccess& st = s.statements[0];
  // Reads in source order: B(k+11) then C(k).
  ASSERT_EQ(st.reads.size(), 2u);
  EXPECT_EQ(st.reads[0].array, "B");
  EXPECT_EQ(st.reads[0].start, st.write_start + 11);
  EXPECT_EQ(st.reads[1].array, "C");
  EXPECT_EQ(st.reads[1].start, st.write_start);
}

TEST(AccessSummaryTest, CyclicStrideMismatch) {
  const AccessSummary s = summarize_access(make_cyclic(256, 2));
  const StatementAccess& st = s.statements.at(0);
  EXPECT_EQ(st.write_strides.at(0), 1);
  ASSERT_EQ(st.reads.size(), 2u);
  EXPECT_EQ(st.reads[0].strides.at(0), 2);  // B(2k) advances twice as fast
  EXPECT_EQ(st.reads[1].strides.at(0), 2);
}

TEST(AccessSummaryTest, RandomPermutationIsNonAffine) {
  const AccessSummary s = summarize_access(make_random_permutation(128, 7));
  const StatementAccess& st = s.statements.at(0);
  // B(P(k)) is indirect; P(k) itself is an affine read stream.
  bool saw_indirect = false;
  bool saw_affine_p = false;
  for (const ReadAccess& read : st.reads) {
    if (read.array == "B") {
      EXPECT_FALSE(read.affine);
      saw_indirect = true;
    }
    if (read.array == "P") {
      EXPECT_TRUE(read.affine);
      saw_affine_p = true;
    }
  }
  EXPECT_TRUE(saw_indirect);
  EXPECT_TRUE(saw_affine_p);
  EXPECT_EQ(s.classification.cls, AccessClass::kRandom);
}

TEST(AccessSummaryTest, ReductionRegisterReadExcluded) {
  const AccessSummary s = summarize_access(make_dot_product(64));
  const StatementAccess& st = s.statements.at(0);
  EXPECT_TRUE(st.is_reduction);
  EXPECT_EQ(st.distinct_writes, 1);  // one committed scalar
  std::int64_t self = 0;
  for (const ReadAccess& read : st.reads) {
    if (read.self_accumulation) ++self;
  }
  EXPECT_EQ(self, 1);
  // X(k) and Y(k) are memory reads; S(1) is an owner-local register.
  EXPECT_EQ(st.memory_reads(), 2 * 64);
  EXPECT_EQ(s.total_writes, 1);
}

TEST(AccessSummaryTest, TriangularBoundsEstimated) {
  // GLR's inner loop runs K = 1 .. I-1: not constant, but affine in I —
  // the midpoint estimate must land near (n-1)/2, not collapse to 1 or
  // blow up to the array size.
  const AccessSummary s =
      summarize_access(build_k6_general_linear_recurrence(100));
  const StatementAccess& st = s.statements.at(0);
  ASSERT_EQ(st.loops.size(), 2u);
  EXPECT_TRUE(st.loops[0].trips_exact);
  EXPECT_EQ(st.loops[0].trips, 99);
  EXPECT_FALSE(st.loops[1].trips_exact);
  EXPECT_GE(st.loops[1].trips, 30);
  EXPECT_LE(st.loops[1].trips, 70);
}

TEST(AccessSummaryTest, TwoDimensionalStrides) {
  // 2-D stencil: OUT(i,j) over a rows x cols grid — the i stride is the
  // row length, the j stride 1, and neighbour reads carry their offsets.
  const AccessSummary s = summarize_access(make_stencil_2d(8, 16));
  const StatementAccess& st = s.statements.at(0);
  ASSERT_EQ(st.loops.size(), 2u);
  EXPECT_EQ(st.write_strides[0], 16);
  EXPECT_EQ(st.write_strides[1], 1);
  EXPECT_EQ(st.loops[0].trips, 6);
  EXPECT_EQ(st.loops[1].trips, 14);
  // IN(i-1, j) sits one row before the write.
  bool found_north = false;
  for (const ReadAccess& read : st.reads) {
    if (read.start_known && read.start == st.write_start - 16) {
      found_north = true;
    }
  }
  EXPECT_TRUE(found_north);
}

TEST(AccessSummaryTest, ReportMentionsProgramAndReads) {
  const AccessSummary s = summarize_access(make_skewed(64, 3));
  const std::string text = s.report();
  EXPECT_NE(text.find("syn_skewed_64_s3"), std::string::npos);
  EXPECT_NE(text.find("read B"), std::string::npos);
  EXPECT_NE(text.find("skewed"), std::string::npos);
}

TEST(AccessSummaryTest, GuardedStatementsCarryExecutionProbability) {
  const AccessSummary s = summarize_access(build_k16_min_search(100));
  ASSERT_EQ(s.statements.size(), 2u);  // one per IF arm
  EXPECT_DOUBLE_EQ(s.statements[0].exec_probability, 0.5);
  EXPECT_DOUBLE_EQ(s.statements[1].exec_probability, 0.5);
  // Expected totals are half the structural ones: exactly one arm runs
  // per trip.
  EXPECT_DOUBLE_EQ(s.expected_reads,
                   static_cast<double>(s.total_reads) * 0.5);
  EXPECT_DOUBLE_EQ(s.expected_writes,
                   static_cast<double>(s.total_writes) * 0.5);
  EXPECT_NE(s.report().find("[p=0.5]"), std::string::npos);
}

TEST(AccessSummaryTest, NestedGuardsMultiplyProbability) {
  ProgramBuilder b("nested");
  b.array("A", {64});
  b.input_array("B", {64});
  const Ex k = b.var("K");
  b.begin_loop("K", 1, 64);
  b.begin_if(ex_gt(b.at("B", {k}), ex_num(0.5)));
  b.begin_if(ex_lt(b.at("B", {k}), ex_num(1.5)));
  b.assign("A", {k}, b.at("B", {k}));
  b.end_if();
  b.end_if();
  b.end_loop();
  const AccessSummary s = summarize_access(b.compile());
  ASSERT_EQ(s.statements.size(), 1u);
  EXPECT_DOUBLE_EQ(s.statements[0].exec_probability, 0.25);
}

TEST(AccessSummaryTest, SelectArmReadsCarryHalfProbability) {
  const AccessSummary s = summarize_access(build_k24_first_min(100));
  ASSERT_EQ(s.statements.size(), 2u);
  // LOC(K) = SELECT(X(K) < XM(K-1), K, LOC(K-1)): the condition's reads
  // are unconditional, the else-arm read runs half the time.
  const StatementAccess& loc = s.statements[1];
  EXPECT_DOUBLE_EQ(loc.exec_probability, 1.0);
  ASSERT_EQ(loc.reads.size(), 3u);
  EXPECT_EQ(loc.reads[0].array, "X");
  EXPECT_DOUBLE_EQ(loc.reads[0].probability, 1.0);
  EXPECT_EQ(loc.reads[1].array, "XM");
  EXPECT_DOUBLE_EQ(loc.reads[1].probability, 1.0);
  EXPECT_EQ(loc.reads[2].array, "LOC");
  EXPECT_DOUBLE_EQ(loc.reads[2].probability, 0.5);
}

TEST(AccessSummaryTest, UnguardedStatementsHaveUnitProbability) {
  const AccessSummary s = summarize_access(build_k1_hydro());
  for (const StatementAccess& st : s.statements) {
    EXPECT_DOUBLE_EQ(st.exec_probability, 1.0);
    for (const ReadAccess& read : st.reads) {
      EXPECT_DOUBLE_EQ(read.probability, 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(s.expected_reads, static_cast<double>(s.total_reads));
  EXPECT_DOUBLE_EQ(s.expected_writes, static_cast<double>(s.total_writes));
}

TEST(AccessSummaryTest, ArrayDigestsRollUpTrafficAndCoupling) {
  // make_mixed_skew_vs_rate: A(k) = D(k+skew); C(k) = B(2k) — two disjoint
  // statement groups over four arrays.
  const AccessSummary s = summarize_access(make_mixed_skew_vs_rate(1024, 256));
  ASSERT_EQ(s.arrays.size(), 4u);
  // Name-sorted.
  EXPECT_EQ(s.arrays[0].array, "A");
  EXPECT_EQ(s.arrays[1].array, "B");
  EXPECT_EQ(s.arrays[2].array, "C");
  EXPECT_EQ(s.arrays[3].array, "D");

  const ArrayDigest* a = s.digest_for("A");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->writes, 1024);
  EXPECT_EQ(a->reads, 0);
  EXPECT_EQ(a->statements, 1);
  EXPECT_EQ(a->coupled, std::vector<std::string>{"D"});

  const ArrayDigest* b = s.digest_for("B");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->reads, 1024);
  EXPECT_EQ(b->writes, 0);
  EXPECT_EQ(b->coupled, std::vector<std::string>{"C"});
  // No conditionals: expected traffic equals structural traffic.
  EXPECT_DOUBLE_EQ(b->traffic(), 1024.0);

  EXPECT_EQ(s.digest_for("NOPE"), nullptr);
}

TEST(AccessSummaryTest, DigestCouplingSpansSharedStatements) {
  // make_matched: A(k) = B(k) + C(k) — all three arrays share the one
  // statement, so each couples with the other two.
  const AccessSummary s = summarize_access(make_matched(128));
  const ArrayDigest* a = s.digest_for("A");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->coupled, (std::vector<std::string>{"B", "C"}));
  const ArrayDigest* c = s.digest_for("C");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->coupled, (std::vector<std::string>{"A", "B"}));
  // The report mentions the per-array rollup.
  EXPECT_NE(s.report().find("array A:"), std::string::npos);
}

}  // namespace
}  // namespace sap
