#include "advisor/advisor.hpp"

#include <gtest/gtest.h>

#include "kernels/livermore.hpp"
#include "kernels/synthetic.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

MachineConfig paper_machine(std::uint32_t pes) {
  MachineConfig c;
  c.num_pes = pes;
  c.page_size = 32;
  c.cache_elements = 256;
  return c;
}

TEST(AdvisorTest, BaselineAlwaysValidated) {
  const CompiledProgram prog = make_skewed(1024, 11);
  AdvisorOptions options;
  options.validate_top_k = 1;  // even with the tightest budget
  const AdvisorReport report = advise(prog, paper_machine(16), options);
  const AdvisorCandidate* baseline = report.baseline();
  ASSERT_NE(baseline, nullptr);
  EXPECT_TRUE(baseline->validated);
  EXPECT_EQ(baseline->config.partition, PartitionKind::kModulo);
  EXPECT_EQ(baseline->config.page_size, 32);
}

TEST(AdvisorTest, BestNeverWorseThanBaseline) {
  for (const auto& prog :
       {make_skewed(1024, 11), make_cyclic(1024, 2),
        make_random_permutation(512, 9), build_k5_tridiag()}) {
    const AdvisorReport report = advise(prog, paper_machine(16));
    ASSERT_FALSE(report.candidates.empty());
    const AdvisorCandidate& best = report.best();
    const AdvisorCandidate* baseline = report.baseline();
    ASSERT_NE(baseline, nullptr);
    EXPECT_TRUE(best.validated);
    EXPECT_LE(best.measured_remote_fraction,
              baseline->measured_remote_fraction)
        << report.program;
  }
}

TEST(AdvisorTest, PicksNonModuloForSkewedLoop) {
  // §9's motivating case: a skewed loop wants the division scheme (or a
  // coarse block-cyclic) so neighbour pages share a PE.
  const AdvisorReport report =
      advise(make_skewed(4096, 11), paper_machine(16));
  EXPECT_NE(report.best().config.partition, PartitionKind::kModulo);
  EXPECT_LT(report.best().measured_remote_fraction,
            report.baseline()->measured_remote_fraction);
}

TEST(AdvisorTest, CandidateSpaceHasNoDuplicates) {
  AdvisorOptions options;
  options.page_sizes = {32, 32, 64};  // deliberate duplicate
  const AdvisorReport report =
      advise(make_matched(256), paper_machine(4), options);
  for (std::size_t i = 0; i < report.candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < report.candidates.size(); ++j) {
      EXPECT_NE(report.candidates[i].label(), report.candidates[j].label());
    }
  }
}

TEST(AdvisorTest, DuplicatePageSizesDoNotGrowTheSpaceOrSpendBudget) {
  // {32, 32, 64} and {32, 64} must be the same request: same candidate
  // count, same validated count — a repeated entry must not burn a
  // validation run on a duplicate.
  AdvisorOptions with_dup;
  with_dup.page_sizes = {32, 32, 64};
  AdvisorOptions clean;
  clean.page_sizes = {32, 64};
  const CompiledProgram prog = make_matched(256);
  const AdvisorReport a = advise(prog, paper_machine(4), with_dup);
  const AdvisorReport b = advise(prog, paper_machine(4), clean);
  EXPECT_EQ(a.candidates.size(), b.candidates.size());
  EXPECT_EQ(a.validated_count, b.validated_count);
  EXPECT_EQ(a.report(), b.report());
}

TEST(AdvisorTest, NonPositivePageSizesRejected) {
  for (const std::int64_t bad : {std::int64_t{0}, std::int64_t{-1},
                                 std::int64_t{-32}}) {
    AdvisorOptions options;
    options.page_sizes = {32, bad};
    EXPECT_THROW(advise(make_matched(256), paper_machine(4), options),
                 ConfigError)
        << "page size " << bad;
  }
}

TEST(AdvisorTest, EnumerateCandidatesContract) {
  AdvisorOptions options;
  options.page_sizes = {16, 32};
  const std::vector<AdvisorCandidate> candidates =
      enumerate_candidates(paper_machine(8), options);
  // 2 page sizes x (modulo + block + 2 block-cyclic blocks) = 8, no
  // injected extra needed: modulo ps=32 is already in the space.
  EXPECT_EQ(candidates.size(), 8u);
  std::size_t baselines = 0;
  for (const AdvisorCandidate& c : candidates) {
    if (c.is_baseline) {
      ++baselines;
      EXPECT_EQ(c.config.partition, PartitionKind::kModulo);
      EXPECT_EQ(c.config.page_size, 32);
      EXPECT_EQ(c.config.cache_elements, 256);
    }
  }
  EXPECT_EQ(baselines, 1u);
}

TEST(AdvisorTest, BestAndBaselineContractsOnHandBuiltReports) {
  // best() on an empty report is a programming error and must throw.
  AdvisorReport empty;
  EXPECT_THROW(empty.best(), Error);
  // baseline() on a report with no baseline-flagged candidate is a legal
  // query answered with null (advise() never produces one, but consumers
  // must be able to rely on the null contract).
  AdvisorReport no_baseline;
  no_baseline.candidates.emplace_back();
  EXPECT_EQ(no_baseline.baseline(), nullptr);
  // best() is the front candidate; baseline() finds the flagged one
  // wherever it ranks.
  AdvisorReport report;
  AdvisorCandidate first;
  first.measured_remote_fraction = 0.125;
  first.validated = true;
  AdvisorCandidate second;
  second.is_baseline = true;
  second.measured_remote_fraction = 0.5;
  second.validated = true;
  report.candidates = {first, second};
  EXPECT_EQ(&report.best(), &report.candidates.front());
  EXPECT_EQ(report.baseline(), &report.candidates[1]);
  EXPECT_EQ(report.baseline()->measured_remote_fraction, 0.5);
}

TEST(AdvisorTest, RankCandidatesOrdersTiersAndBreaksTiesStably) {
  // Three validated with equal measured cost (stable order must hold),
  // one unvalidated with a better *predicted* score than the validated
  // ones (must still rank last: measurement outranks prediction).
  std::vector<AdvisorCandidate> candidates(4);
  candidates[0].validated = true;
  candidates[0].measured_remote_fraction = 0.25;
  candidates[0].config.page_size = 1;  // markers for order checking
  candidates[1].validated = true;
  candidates[1].measured_remote_fraction = 0.25;
  candidates[1].config.page_size = 2;
  candidates[2].validated = true;
  candidates[2].measured_remote_fraction = 0.125;
  candidates[2].config.page_size = 3;
  candidates[3].validated = false;
  candidates[3].config.page_size = 4;
  rank_candidates(candidates);
  EXPECT_EQ(candidates[0].config.page_size, 3);  // lowest measured first
  EXPECT_EQ(candidates[1].config.page_size, 1);  // tie: input order kept
  EXPECT_EQ(candidates[2].config.page_size, 2);
  EXPECT_EQ(candidates[3].config.page_size, 4);  // unvalidated last
}

TEST(AdvisorTest, RankingIsSorted) {
  const AdvisorReport report =
      advise(build_k2_iccg(), paper_machine(16));
  ASSERT_GT(report.validated_count, 0u);
  // Validated candidates come first, ordered by measured fraction.
  for (std::size_t i = 1; i < report.candidates.size(); ++i) {
    const AdvisorCandidate& prev = report.candidates[i - 1];
    const AdvisorCandidate& cur = report.candidates[i];
    EXPECT_GE(prev.validated, cur.validated);
    if (prev.validated && cur.validated) {
      EXPECT_LE(prev.measured_remote_fraction, cur.measured_remote_fraction);
    }
  }
}

TEST(AdvisorTest, ReportNamesRecommendationAndBaseline) {
  const AdvisorReport report =
      advise(make_skewed(1024, 7), paper_machine(8));
  const std::string text = report.report();
  EXPECT_NE(text.find("recommendation:"), std::string::npos);
  EXPECT_NE(text.find("paper default"), std::string::npos);
  EXPECT_NE(text.find(report.best().label()), std::string::npos);
}

TEST(AdvisorTest, DeterministicAcrossWorkerCounts) {
  // Validation fans across the pool; the report must be byte-identical
  // for any worker count (and for no pool at all).
  const CompiledProgram prog = build_k18_explicit_hydro_2d();
  const AdvisorReport serial = advise(prog, paper_machine(16));
  const std::string expected = serial.report();
  for (const unsigned workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    const AdvisorReport parallel =
        advise(prog, paper_machine(16), {}, &pool);
    EXPECT_EQ(parallel.report(), expected) << workers << " workers";
  }
}

TEST(AdvisorTest, SinglePeRecommendsAnythingWithZeroRemote) {
  const AdvisorReport report = advise(make_cyclic(512, 2), paper_machine(1));
  EXPECT_EQ(report.best().measured_remote_fraction, 0.0);
}

}  // namespace
}  // namespace sap
