#include "advisor/advisor.hpp"

#include <gtest/gtest.h>

#include "kernels/livermore.hpp"
#include "kernels/synthetic.hpp"

namespace sap {
namespace {

MachineConfig paper_machine(std::uint32_t pes) {
  MachineConfig c;
  c.num_pes = pes;
  c.page_size = 32;
  c.cache_elements = 256;
  return c;
}

TEST(AdvisorTest, BaselineAlwaysValidated) {
  const CompiledProgram prog = make_skewed(1024, 11);
  AdvisorOptions options;
  options.validate_top_k = 1;  // even with the tightest budget
  const AdvisorReport report = advise(prog, paper_machine(16), options);
  const AdvisorCandidate* baseline = report.baseline();
  ASSERT_NE(baseline, nullptr);
  EXPECT_TRUE(baseline->validated);
  EXPECT_EQ(baseline->config.partition, PartitionKind::kModulo);
  EXPECT_EQ(baseline->config.page_size, 32);
}

TEST(AdvisorTest, BestNeverWorseThanBaseline) {
  for (const auto& prog :
       {make_skewed(1024, 11), make_cyclic(1024, 2),
        make_random_permutation(512, 9), build_k5_tridiag()}) {
    const AdvisorReport report = advise(prog, paper_machine(16));
    ASSERT_FALSE(report.candidates.empty());
    const AdvisorCandidate& best = report.best();
    const AdvisorCandidate* baseline = report.baseline();
    ASSERT_NE(baseline, nullptr);
    EXPECT_TRUE(best.validated);
    EXPECT_LE(best.measured_remote_fraction,
              baseline->measured_remote_fraction)
        << report.program;
  }
}

TEST(AdvisorTest, PicksNonModuloForSkewedLoop) {
  // §9's motivating case: a skewed loop wants the division scheme (or a
  // coarse block-cyclic) so neighbour pages share a PE.
  const AdvisorReport report =
      advise(make_skewed(4096, 11), paper_machine(16));
  EXPECT_NE(report.best().config.partition, PartitionKind::kModulo);
  EXPECT_LT(report.best().measured_remote_fraction,
            report.baseline()->measured_remote_fraction);
}

TEST(AdvisorTest, CandidateSpaceHasNoDuplicates) {
  AdvisorOptions options;
  options.page_sizes = {32, 32, 64};  // deliberate duplicate
  const AdvisorReport report =
      advise(make_matched(256), paper_machine(4), options);
  for (std::size_t i = 0; i < report.candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < report.candidates.size(); ++j) {
      EXPECT_NE(report.candidates[i].label(), report.candidates[j].label());
    }
  }
}

TEST(AdvisorTest, RankingIsSorted) {
  const AdvisorReport report =
      advise(build_k2_iccg(), paper_machine(16));
  ASSERT_GT(report.validated_count, 0u);
  // Validated candidates come first, ordered by measured fraction.
  for (std::size_t i = 1; i < report.candidates.size(); ++i) {
    const AdvisorCandidate& prev = report.candidates[i - 1];
    const AdvisorCandidate& cur = report.candidates[i];
    EXPECT_GE(prev.validated, cur.validated);
    if (prev.validated && cur.validated) {
      EXPECT_LE(prev.measured_remote_fraction, cur.measured_remote_fraction);
    }
  }
}

TEST(AdvisorTest, ReportNamesRecommendationAndBaseline) {
  const AdvisorReport report =
      advise(make_skewed(1024, 7), paper_machine(8));
  const std::string text = report.report();
  EXPECT_NE(text.find("recommendation:"), std::string::npos);
  EXPECT_NE(text.find("paper default"), std::string::npos);
  EXPECT_NE(text.find(report.best().label()), std::string::npos);
}

TEST(AdvisorTest, DeterministicAcrossWorkerCounts) {
  // Validation fans across the pool; the report must be byte-identical
  // for any worker count (and for no pool at all).
  const CompiledProgram prog = build_k18_explicit_hydro_2d();
  const AdvisorReport serial = advise(prog, paper_machine(16));
  const std::string expected = serial.report();
  for (const unsigned workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    const AdvisorReport parallel =
        advise(prog, paper_machine(16), {}, &pool);
    EXPECT_EQ(parallel.report(), expected) << workers << " workers";
  }
}

TEST(AdvisorTest, SinglePeRecommendsAnythingWithZeroRemote) {
  const AdvisorReport report = advise(make_cyclic(512, 2), paper_machine(1));
  EXPECT_EQ(report.best().measured_remote_fraction, 0.0);
}

}  // namespace
}  // namespace sap
