#include "advisor/search.hpp"

#include <gtest/gtest.h>

#include "kernels/livermore.hpp"
#include "kernels/synthetic.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

MachineConfig paper_machine(std::uint32_t pes) {
  MachineConfig c;
  c.num_pes = pes;
  c.page_size = 32;
  c.cache_elements = 256;
  return c;
}

AdvisorOptions beam_options() {
  AdvisorOptions options;
  options.strategy = AdvisorStrategy::kBeam;
  options.page_sizes = {16, 32, 64};
  return options;
}

TEST(AdvisorSearchTest, StrategyNamesRoundTrip) {
  EXPECT_EQ(to_string(AdvisorStrategy::kEnumerate), "enumerate");
  EXPECT_EQ(to_string(AdvisorStrategy::kBeam), "beam");
  EXPECT_EQ(advisor_strategy_from_name("enumerate"),
            AdvisorStrategy::kEnumerate);
  EXPECT_EQ(advisor_strategy_from_name("beam"), AdvisorStrategy::kBeam);
  EXPECT_THROW(advisor_strategy_from_name("genetic"), ConfigError);
  EXPECT_THROW(advisor_strategy_from_name(""), ConfigError);
}

TEST(AdvisorSearchTest, AdviseDispatchesOnStrategy) {
  // advise() with strategy=kBeam must be the advise_beam pipeline:
  // identical report text.
  const CompiledProgram prog = make_skewed(1024, 11);
  const AdvisorOptions options = beam_options();
  const AdvisorReport via_advise = advise(prog, paper_machine(8), options);
  const AdvisorReport direct = advise_beam(prog, paper_machine(8), options);
  EXPECT_EQ(via_advise.report(), direct.report());
}

TEST(AdvisorSearchTest, BaselineAlwaysMeasuredEvenWithBudgetOne) {
  AdvisorOptions options = beam_options();
  options.measurement_budget = 1;
  const AdvisorReport report =
      advise(make_cyclic(512, 2), paper_machine(8), options);
  const AdvisorCandidate* baseline = report.baseline();
  ASSERT_NE(baseline, nullptr);
  EXPECT_TRUE(baseline->validated);
  // The only measured candidate IS the baseline, so it must be the pick.
  EXPECT_EQ(report.validated_count, 1u);
  EXPECT_TRUE(report.best().is_baseline);
}

TEST(AdvisorSearchTest, MeasurementBudgetIsRespected) {
  for (const std::size_t budget : {1u, 4u, 9u, 16u}) {
    AdvisorOptions options = beam_options();
    options.measurement_budget = budget;
    const AdvisorReport report =
        advise(build_k2_iccg(), paper_machine(16), options);
    EXPECT_LE(report.validated_count, budget) << "budget " << budget;
  }
}

TEST(AdvisorSearchTest, NeverWorseThanEnumerateWithSameOptions) {
  // The beam measures the enumerator's validated set first (baseline +
  // top predicted), so with the default budget its pick can only match
  // or beat the enumerate strategy's.
  for (const char* id :
       {"k01_hydro", "k02_iccg", "k06_glr", "k18_hydro2d", "k21_matmul"}) {
    const CompiledProgram prog = build_kernel(id);
    AdvisorOptions enumerate_options;
    enumerate_options.page_sizes = {16, 32, 64};
    AdvisorOptions options = beam_options();
    const AdvisorReport enumerated =
        advise(prog, paper_machine(16), enumerate_options);
    const AdvisorReport searched = advise(prog, paper_machine(16), options);
    EXPECT_LE(searched.best().measured_remote_fraction,
              enumerated.best().measured_remote_fraction)
        << id;
  }
}

TEST(AdvisorSearchTest, WidensPastTheConfiguredPageAxis) {
  // k21's matmul row reuse wants far bigger pages than the enumerate
  // axis offers; the beam's doubling moves must discover (and measure)
  // a page size outside {16,32,64}.
  const AdvisorReport report =
      advise(build_k21_matmul(), paper_machine(16), beam_options());
  bool saw_widened = false;
  for (const AdvisorCandidate& c : report.candidates) {
    if (c.validated &&
        (c.config.page_size > 64 || c.config.page_size < 16)) {
      saw_widened = true;
    }
  }
  EXPECT_TRUE(saw_widened);
  EXPECT_LT(report.best().measured_remote_fraction,
            report.baseline()->measured_remote_fraction);
}

TEST(AdvisorSearchTest, CacheAxisIsSearched) {
  AdvisorOptions options = beam_options();
  options.cache_sizes = {128, 512};
  const AdvisorReport report =
      advise(build_k2_iccg(), paper_machine(16), options);
  bool saw_other_cache = false;
  for (const AdvisorCandidate& c : report.candidates) {
    if (c.config.cache_elements != 256) saw_other_cache = true;
    EXPECT_TRUE(c.config.cache_elements == 128 ||
                c.config.cache_elements == 256 ||
                c.config.cache_elements == 512)
        << c.label();
  }
  EXPECT_TRUE(saw_other_cache);
  // The baseline stays the paper machine: modulo at the BASE cache.
  ASSERT_NE(report.baseline(), nullptr);
  EXPECT_EQ(report.baseline()->config.cache_elements, 256);
}

TEST(AdvisorSearchTest, NegativeCacheSizeRejected) {
  AdvisorOptions options = beam_options();
  options.cache_sizes = {-1};
  EXPECT_THROW(advise(build_k5_tridiag(), paper_machine(8), options),
               ConfigError);
}

TEST(AdvisorSearchTest, NonPositivePageSizeRejected) {
  AdvisorOptions options = beam_options();
  options.page_sizes = {0, 32};
  EXPECT_THROW(advise(build_k5_tridiag(), paper_machine(8), options),
               ConfigError);
}

TEST(AdvisorSearchTest, DeterministicAcrossWorkerCountsAndNoPool) {
  const CompiledProgram prog = build_k18_explicit_hydro_2d();
  AdvisorOptions options = beam_options();
  options.cache_sizes = {128, 512};
  const std::string expected =
      advise(prog, paper_machine(16), options).report();
  for (const unsigned workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    const AdvisorReport report =
        advise(prog, paper_machine(16), options, &pool);
    EXPECT_EQ(report.report(), expected) << workers << " workers";
  }
}

TEST(AdvisorSearchTest, NoDuplicateCandidates) {
  const AdvisorReport report =
      advise(build_k1_hydro(), paper_machine(16), beam_options());
  for (std::size_t i = 0; i < report.candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < report.candidates.size(); ++j) {
      EXPECT_NE(report.candidates[i].label(), report.candidates[j].label());
    }
  }
}

}  // namespace
}  // namespace sap
