#include "support/parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace sap {
namespace {

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

TEST(ParseStrictIntTest, PlainDecimalInRange) {
  EXPECT_EQ(parse_strict_int("0", -10, 10), 0);
  EXPECT_EQ(parse_strict_int("42", 0, 100), 42);
  EXPECT_EQ(parse_strict_int("-42", -100, 0), -42);
}

TEST(ParseStrictIntTest, RangeBoundsAreInclusive) {
  EXPECT_EQ(parse_strict_int("5", 5, 5), 5);
  EXPECT_EQ(parse_strict_int("5", 5, 10), 5);
  EXPECT_EQ(parse_strict_int("10", 5, 10), 10);
  EXPECT_EQ(parse_strict_int("4", 5, 10), std::nullopt);
  EXPECT_EQ(parse_strict_int("11", 5, 10), std::nullopt);
}

TEST(ParseStrictIntTest, Int64Extremes) {
  EXPECT_EQ(parse_strict_int("9223372036854775807", kMin, kMax), kMax);
  EXPECT_EQ(parse_strict_int("-9223372036854775808", kMin, kMax), kMin);
  // One past either end overflows the type itself, not just the range.
  EXPECT_EQ(parse_strict_int("9223372036854775808", kMin, kMax),
            std::nullopt);
  EXPECT_EQ(parse_strict_int("-9223372036854775809", kMin, kMax),
            std::nullopt);
}

TEST(ParseStrictIntTest, RejectsNonPlainDecimal) {
  for (const char* bad : {"", " 5", "5 ", "+5", "5x", "x5", "0x10", "5.0",
                          "1e3", "--5", "5-", "٥" /* non-ASCII digit */}) {
    EXPECT_EQ(parse_strict_int(bad, kMin, kMax), std::nullopt) << bad;
  }
}

TEST(ParseStrictIntTest, LeadingZerosAreStillDecimal) {
  // from_chars treats 007 as 7 — documented by this test so a future
  // tightening is a conscious choice.
  EXPECT_EQ(parse_strict_int("007", 0, 10), 7);
  EXPECT_EQ(parse_strict_int("-0", -1, 1), 0);
}

}  // namespace
}  // namespace sap
