#include "support/parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>

#include "core/bytecode.hpp"

namespace sap {
namespace {

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

TEST(ParseStrictIntTest, PlainDecimalInRange) {
  EXPECT_EQ(parse_strict_int("0", -10, 10), 0);
  EXPECT_EQ(parse_strict_int("42", 0, 100), 42);
  EXPECT_EQ(parse_strict_int("-42", -100, 0), -42);
}

TEST(ParseStrictIntTest, RangeBoundsAreInclusive) {
  EXPECT_EQ(parse_strict_int("5", 5, 5), 5);
  EXPECT_EQ(parse_strict_int("5", 5, 10), 5);
  EXPECT_EQ(parse_strict_int("10", 5, 10), 10);
  EXPECT_EQ(parse_strict_int("4", 5, 10), std::nullopt);
  EXPECT_EQ(parse_strict_int("11", 5, 10), std::nullopt);
}

TEST(ParseStrictIntTest, Int64Extremes) {
  EXPECT_EQ(parse_strict_int("9223372036854775807", kMin, kMax), kMax);
  EXPECT_EQ(parse_strict_int("-9223372036854775808", kMin, kMax), kMin);
  // One past either end overflows the type itself, not just the range.
  EXPECT_EQ(parse_strict_int("9223372036854775808", kMin, kMax),
            std::nullopt);
  EXPECT_EQ(parse_strict_int("-9223372036854775809", kMin, kMax),
            std::nullopt);
}

TEST(ParseStrictIntTest, RejectsNonPlainDecimal) {
  for (const char* bad : {"", " 5", "5 ", "+5", "5x", "x5", "0x10", "5.0",
                          "1e3", "--5", "5-", "٥" /* non-ASCII digit */}) {
    EXPECT_EQ(parse_strict_int(bad, kMin, kMax), std::nullopt) << bad;
  }
}

TEST(ParseStrictIntTest, LeadingZerosAreStillDecimal) {
  // from_chars treats 007 as 7 — documented by this test so a future
  // tightening is a conscious choice.
  EXPECT_EQ(parse_strict_int("007", 0, 10), 7);
  EXPECT_EQ(parse_strict_int("-0", -1, 1), 0);
}

TEST(ParseOutputPathTest, UnsetKnobIsNullopt) {
  EXPECT_EQ(parse_output_path(nullptr, "SAPART_TRACE"), std::nullopt);
}

TEST(ParseOutputPathTest, PlainPathsPassThrough) {
  EXPECT_EQ(parse_output_path("trace.json", "SAPART_TRACE"), "trace.json");
  EXPECT_EQ(parse_output_path("/tmp/out/metrics.json", "SAPART_METRICS"),
            "/tmp/out/metrics.json");
  // Interior spaces are a legal (if unusual) filename.
  EXPECT_EQ(parse_output_path("my trace.json", "SAPART_TRACE"),
            "my trace.json");
}

TEST(ParseOutputPathTest, EmptyValueThrows) {
  EXPECT_THROW(parse_output_path("", "SAPART_TRACE"), ConfigError);
}

TEST(ParseOutputPathTest, WrappingWhitespaceThrows) {
  for (const char* bad : {" trace.json", "trace.json ", "\ttrace.json",
                          "trace.json\t", " "}) {
    EXPECT_THROW(parse_output_path(bad, "SAPART_TRACE"), ConfigError) << bad;
  }
}

TEST(ParseOutputPathTest, ControlCharactersThrow) {
  EXPECT_THROW(parse_output_path("tra\nce.json", "SAPART_TRACE"),
               ConfigError);
  EXPECT_THROW(parse_output_path("tra\x01" "ce", "SAPART_METRICS"),
               ConfigError);
}

TEST(ParseOutputPathTest, ErrorNamesTheKnob) {
  try {
    parse_output_path("", "SAPART_METRICS");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("SAPART_METRICS"),
              std::string::npos);
  }
}

// SAPART_BYTECODE_OPT follows the same hardening convention as the other
// SAPART_* knobs: unset defaults, known values parse, empty and unknown
// values are a ConfigError naming the valid set (bench init turns that
// into the documented exit 2).
TEST(BytecodeOptFromEnvTest, KnobParsesAndRejectsLikeTheOthers) {
  const char* saved = std::getenv("SAPART_BYTECODE_OPT");
  const std::string saved_value = saved ? saved : "";

  unsetenv("SAPART_BYTECODE_OPT");
  EXPECT_EQ(bytecode_opt_from_env(), BytecodeOpt::kOn);
  setenv("SAPART_BYTECODE_OPT", "on", 1);
  EXPECT_EQ(bytecode_opt_from_env(), BytecodeOpt::kOn);
  setenv("SAPART_BYTECODE_OPT", "off", 1);
  EXPECT_EQ(bytecode_opt_from_env(), BytecodeOpt::kOff);
  // Empty is invalid, not a silent default.
  setenv("SAPART_BYTECODE_OPT", "", 1);
  EXPECT_THROW(bytecode_opt_from_env(), ConfigError);
  // Unknown values name the valid set and echo the offending value.
  setenv("SAPART_BYTECODE_OPT", "fast", 1);
  try {
    bytecode_opt_from_env();
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("'on' or 'off'"), std::string::npos);
    EXPECT_NE(message.find("fast"), std::string::npos);
  }

  if (saved) {
    setenv("SAPART_BYTECODE_OPT", saved_value.c_str(), 1);
  } else {
    unsetenv("SAPART_BYTECODE_OPT");
  }
}

}  // namespace
}  // namespace sap
