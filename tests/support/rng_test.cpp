#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace sap {
namespace {

TEST(SplitMix64Test, DeterministicForSameSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64Test, NextBelowStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(SplitMix64Test, NextDoubleInUnitInterval) {
  SplitMix64 rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(PermutationTest, IsAPermutation) {
  const auto perm = random_permutation(257, 42);
  ASSERT_EQ(perm.size(), 257u);
  std::set<std::int64_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 256);
}

TEST(PermutationTest, SeedChangesOrder) {
  const auto a = random_permutation(100, 1);
  const auto b = random_permutation(100, 2);
  EXPECT_NE(a, b);
}

TEST(PermutationTest, DeterministicPerSeed) {
  EXPECT_EQ(random_permutation(64, 5), random_permutation(64, 5));
}

TEST(PermutationTest, EmptyAndSingleton) {
  EXPECT_TRUE(random_permutation(0, 1).empty());
  const auto single = random_permutation(1, 1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], 0);
}

}  // namespace
}  // namespace sap
