#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/error.hpp"

namespace sap {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([&hits, i] { hits[i].fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkersMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsTaskResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1);
      });
    }
  }  // ~ThreadPool joins after the queue is drained
  EXPECT_EQ(done.load(), 64);
}

TEST(ParallelForEachTest, PreservesIndexToResultMappingUnderContention) {
  ThreadPool pool(8);
  constexpr std::size_t kCount = 500;
  std::vector<std::size_t> out(kCount, 0);
  // Uneven per-index work so workers constantly steal across the range.
  parallel_for_each(pool, kCount, [&out](std::size_t i) {
    std::size_t sink = 0;
    for (std::size_t k = 0; k < (i % 17) * 1000; ++k) sink += k;
    out[i] = i * i + (sink & 0);  // keep the busy loop observable
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(out[i], i * i) << "index " << i;
  }
}

TEST(ParallelForEachTest, EachIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  parallel_for_each(pool, kCount,
                    [&visits](std::size_t i) { visits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForEachTest, RethrowsFirstExceptionAfterDraining) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      parallel_for_each(pool, 100,
                        [&executed](std::size_t i) {
                          executed.fetch_add(1);
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Every index still ran: one failure does not abandon the sweep.
  EXPECT_EQ(executed.load(), 100);
}

TEST(ParallelForEachTest, NestedUseOfOnePoolDoesNotDeadlock) {
  // Every outer iteration runs an inner parallel_for_each on the SAME
  // pool; with only 2 workers all of them block-and-help concurrently.
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<std::vector<int>> out(kOuter,
                                    std::vector<int>(kInner, 0));
  parallel_for_each(pool, kOuter, [&pool, &out](std::size_t o) {
    parallel_for_each(pool, kInner, [&out, o](std::size_t i) {
      out[o][i] = static_cast<int>(o * kInner + i);
    });
  });
  for (std::size_t o = 0; o < kOuter; ++o) {
    for (std::size_t i = 0; i < kInner; ++i) {
      ASSERT_EQ(out[o][i], static_cast<int>(o * kInner + i));
    }
  }
}

TEST(ParallelForEachTest, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  parallel_for_each(pool, 0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelForEachTest, SingleWorkerPoolStillCompletes) {
  ThreadPool pool(1);
  std::vector<int> out(64, 0);
  parallel_for_each(pool, out.size(),
                    [&out](std::size_t i) { out[i] = static_cast<int>(i); });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 63 * 64 / 2);
}

// The SAPART_WORKERS convention (bench::pool and any other env-sized
// pool): unset means "hardware concurrency", anything else must be a
// plain positive integer — no silent fallbacks for typos.
TEST(ParseWorkerCountTest, UnsetMeansHardwareConcurrency) {
  EXPECT_EQ(parse_worker_count(nullptr), 0u);
}

TEST(ParseWorkerCountTest, AcceptsPlainPositiveIntegers) {
  EXPECT_EQ(parse_worker_count("1"), 1u);
  EXPECT_EQ(parse_worker_count("4"), 4u);
  EXPECT_EQ(parse_worker_count("128"), 128u);
}

TEST(ParseWorkerCountTest, RejectsZeroAndNegative) {
  EXPECT_THROW(parse_worker_count("0"), ConfigError);
  EXPECT_THROW(parse_worker_count("-1"), ConfigError);
  EXPECT_THROW(parse_worker_count("-32"), ConfigError);
}

TEST(ParseWorkerCountTest, RejectsGarbage) {
  EXPECT_THROW(parse_worker_count(""), ConfigError);
  EXPECT_THROW(parse_worker_count("abc"), ConfigError);
  EXPECT_THROW(parse_worker_count("4x"), ConfigError);
  EXPECT_THROW(parse_worker_count("4.5"), ConfigError);
  EXPECT_THROW(parse_worker_count(" 8"), ConfigError);
  EXPECT_THROW(parse_worker_count("+8"), ConfigError);
}

TEST(ParseWorkerCountTest, RejectsAbsurdCounts) {
  EXPECT_THROW(parse_worker_count("99999999999999999999"), ConfigError);
  EXPECT_THROW(parse_worker_count("1000000"), ConfigError);
}

TEST(ParseWorkerCountTest, ErrorNamesTheBadValue) {
  try {
    parse_worker_count("bogus");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

}  // namespace
}  // namespace sap
