#include "support/ascii_chart.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace sap {
namespace {

TEST(AsciiChartTest, RendersSeriesGlyphsAndLegend) {
  AsciiChart chart("Remote reads", "PEs", "%");
  chart.add_series({"Cache", {{2, 1.0}, {4, 1.0}, {8, 1.0}}});
  chart.add_series({"No Cache", {{2, 21.0}, {4, 21.0}, {8, 21.0}}});
  const std::string out = chart.render(10);
  EXPECT_NE(out.find("Remote reads"), std::string::npos);
  EXPECT_NE(out.find("* = Cache"), std::string::npos);
  EXPECT_NE(out.find("o = No Cache"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiChartTest, EmptyChartHasPlaceholder) {
  AsciiChart chart("t", "x", "y");
  EXPECT_NE(chart.render().find("<no data>"), std::string::npos);
}

TEST(AsciiChartTest, RejectsTinyHeight) {
  AsciiChart chart("t", "x", "y");
  chart.add_series({"s", {{1, 1}}});
  EXPECT_THROW(chart.render(2), Error);
}

TEST(AsciiChartTest, XAxisLabelsPresent) {
  AsciiChart chart("t", "PEs", "y");
  chart.add_series({"s", {{1, 0.5}, {64, 2.0}}});
  const std::string out = chart.render(8);
  EXPECT_NE(out.find('1'), std::string::npos);
  EXPECT_NE(out.find("64"), std::string::npos);
}

TEST(AsciiChartTest, CollisionRenderedAsEquals) {
  AsciiChart chart("t", "x", "y");
  chart.add_series({"a", {{1, 1.0}}});
  chart.add_series({"b", {{1, 1.0}}});
  EXPECT_NE(chart.render(8).find('='), std::string::npos);
}

}  // namespace
}  // namespace sap
