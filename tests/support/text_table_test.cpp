#include "support/text_table.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace sap {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"a", "long-header"});
  t.add_row({"xxxxxx", "1"});
  const std::string out = t.to_string();
  // Header row, underline row, one data row.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
}

TEST(TextTableTest, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTableTest, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), Error);
}

TEST(TextTableTest, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::pct(0.21, 2), "21.00%");
  EXPECT_EQ(TextTable::pct(0.005, 1), "0.5%");
}

TEST(TextTableTest, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace sap
