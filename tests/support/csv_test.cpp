#include "support/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sap {
namespace {

TEST(CsvTest, PlainCellsUnquoted) {
  EXPECT_EQ(CsvWriter::escape("abc"), "abc");
  EXPECT_EQ(CsvWriter::escape("1.5"), "1.5");
}

TEST(CsvTest, QuotesWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, WritesRows) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({"x", "y"});
  csv.write_row({"1", "2,3"});
  EXPECT_EQ(os.str(), "x,y\n1,\"2,3\"\n");
}

TEST(CsvTest, EmptyRow) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.write_row({});
  EXPECT_EQ(os.str(), "\n");
}

}  // namespace
}  // namespace sap
