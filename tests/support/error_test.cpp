#include "support/error.hpp"

#include <gtest/gtest.h>

namespace sap {
namespace {

TEST(ErrorTest, DoubleWriteCarriesContext) {
  const DoubleWriteError err("X", 42);
  EXPECT_EQ(err.array_name(), "X");
  EXPECT_EQ(err.linear_index(), 42);
  EXPECT_NE(std::string(err.what()).find("X[42]"), std::string::npos);
}

TEST(ErrorTest, UndefinedReadCarriesContext) {
  const UndefinedReadError err("V", 7);
  EXPECT_EQ(err.array_name(), "V");
  EXPECT_EQ(err.linear_index(), 7);
  EXPECT_NE(std::string(err.what()).find("undefined"), std::string::npos);
}

TEST(ErrorTest, ParseErrorCarriesPosition) {
  const ParseError err("bad token", 3, 14);
  EXPECT_EQ(err.line(), 3);
  EXPECT_EQ(err.column(), 14);
  EXPECT_NE(std::string(err.what()).find("3:14"), std::string::npos);
}

TEST(ErrorTest, HierarchyCatchableAsBase) {
  EXPECT_THROW(throw DoubleWriteError("A", 0), Error);
  EXPECT_THROW(throw DeadlockError("stuck"), Error);
  EXPECT_THROW(throw ConfigError("bad"), Error);
  EXPECT_THROW(throw BoundsError("oob"), Error);
  EXPECT_THROW(throw SemanticError("sem"), Error);
}

}  // namespace
}  // namespace sap
