// The ISSUE-6 acceptance criteria for the search-based advisor: on every
// kernel of the registry the beam strategy's pick must match or beat BOTH
// the paper's modulo default and the enumerate strategy's pick (the beam
// measures the enumerator's validated set first, so this holds by
// construction), and the whole ablation_search report — all 19 kernels —
// must be byte-identical across 1/2/8 validation workers.
#include <gtest/gtest.h>

#include <sstream>

#include "advisor/advisor.hpp"
#include "kernels/livermore.hpp"

namespace sap {
namespace {

MachineConfig paper_machine(std::uint32_t pes) {
  MachineConfig c;
  c.num_pes = pes;
  c.page_size = 32;
  c.cache_elements = 256;
  return c;
}

AdvisorOptions bench_beam_options() {
  // Mirror bench/ablation_search.cpp so the test pins the bench's claim.
  AdvisorOptions options;
  options.strategy = AdvisorStrategy::kBeam;
  options.page_sizes = {16, 32, 64};
  options.beam_width = 4;
  options.measurement_budget = 16;
  return options;
}

TEST(AdvisorSearchIntegrationTest, NeverWorseThanModuloOnAllRegistryKernels) {
  ThreadPool pool(2);
  const AdvisorOptions options = bench_beam_options();
  ASSERT_EQ(livermore_kernels().size(), 19u);
  for (const KernelSpec& spec : livermore_kernels()) {
    const AdvisorReport report =
        advise(spec.build(), paper_machine(16), options, &pool);
    const AdvisorCandidate& best = report.best();
    const AdvisorCandidate* baseline = report.baseline();
    ASSERT_NE(baseline, nullptr) << spec.id;
    ASSERT_TRUE(baseline->validated) << spec.id;
    ASSERT_TRUE(best.validated) << spec.id;
    EXPECT_LE(best.measured_remote_fraction,
              baseline->measured_remote_fraction)
        << spec.id << ": searched " << best.label() << " measured "
        << best.measured_remote_fraction << " vs modulo "
        << baseline->measured_remote_fraction;
  }
}

TEST(AdvisorSearchIntegrationTest, NeverWorseThanEnumerateOnAllRegistryKernels) {
  ThreadPool pool(2);
  AdvisorOptions enumerate_options;
  enumerate_options.page_sizes = {16, 32, 64};
  const AdvisorOptions beam_options = bench_beam_options();
  for (const KernelSpec& spec : livermore_kernels()) {
    const CompiledProgram program = spec.build();
    const AdvisorReport enumerated =
        advise(program, paper_machine(16), enumerate_options, &pool);
    const AdvisorReport searched =
        advise(program, paper_machine(16), beam_options, &pool);
    EXPECT_LE(searched.best().measured_remote_fraction,
              enumerated.best().measured_remote_fraction)
        << spec.id;
  }
}

TEST(AdvisorSearchIntegrationTest, ReportsByteIdenticalAcross128Workers) {
  // The exact shape of the bench artifact: every kernel's beam report,
  // concatenated, must not change with the worker count (pre-assigned
  // sweep slots + discovery-index tie-breaks).
  const AdvisorOptions options = bench_beam_options();
  std::string expected;
  for (const unsigned workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    std::ostringstream all;
    for (const KernelSpec& spec : livermore_kernels()) {
      all << advise(spec.build(), paper_machine(16), options, &pool).report()
          << '\n';
    }
    if (expected.empty()) {
      expected = all.str();
    } else {
      EXPECT_EQ(all.str(), expected) << workers << " workers";
    }
  }
}

}  // namespace
}  // namespace sap
