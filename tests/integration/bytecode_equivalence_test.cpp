// The bytecode engine's acceptance bar: byte-identical SimulationResults
// and array values across all three engine variants — the eval.hpp tree
// walk, the straight-line bytecode (SAPART_BYTECODE_OPT=off oracle), and
// the optimized bytecode (superinstructions + index hoisting) — across
// the fig1-fig5 kernels, all three partition schemes, both execution
// modes, randomized programs (seeded), and any sweep worker count.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/bytecode.hpp"
#include "core/program_builder.hpp"
#include "core/reference_interpreter.hpp"
#include "core/simulator.hpp"
#include "core/sweep.hpp"
#include "kernels/livermore.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace sap {
namespace {

using BuildFn = std::function<CompiledProgram()>;

/// The three engine variants under differential test.
enum class Variant { kTree, kUnopt, kOpt };

CompiledProgram build_variant(const BuildFn& build, Variant variant) {
  CompiledProgram prog = build();
  if (variant == Variant::kTree) {
    prog.bytecode.reset();
    return prog;
  }
  // Rebuild the bytecode explicitly so the test is independent of the
  // SAPART_BYTECODE_OPT value the kernel builder happened to see.
  ProgramBytecode bc = compile_bytecode(prog.program, prog.sema);
  if (variant == Variant::kOpt) {
    bc = optimize_bytecode(std::move(bc), prog.program, prog.sema);
  }
  prog.bytecode = std::make_shared<const ProgramBytecode>(std::move(bc));
  return prog;
}

void expect_results_equal(const SimulationResult& tree,
                          const SimulationResult& bytecode,
                          const std::string& label) {
  EXPECT_EQ(tree.totals, bytecode.totals) << label;
  ASSERT_EQ(tree.per_pe.size(), bytecode.per_pe.size()) << label;
  for (std::size_t pe = 0; pe < tree.per_pe.size(); ++pe) {
    EXPECT_EQ(tree.per_pe[pe], bytecode.per_pe[pe]) << label << " pe=" << pe;
  }
  EXPECT_EQ(tree.cache_totals.hits, bytecode.cache_totals.hits) << label;
  EXPECT_EQ(tree.cache_totals.misses, bytecode.cache_totals.misses) << label;
  EXPECT_EQ(tree.cache_totals.evictions, bytecode.cache_totals.evictions)
      << label;
  EXPECT_EQ(tree.cache_totals.invalidations,
            bytecode.cache_totals.invalidations)
      << label;
  EXPECT_EQ(tree.network.messages, bytecode.network.messages) << label;
  EXPECT_EQ(tree.network.control_messages, bytecode.network.control_messages)
      << label;
  EXPECT_EQ(tree.network.data_messages, bytecode.network.data_messages)
      << label;
  EXPECT_EQ(tree.network.payload_elements, bytecode.network.payload_elements)
      << label;
  EXPECT_EQ(tree.network.hop_total, bytecode.network.hop_total) << label;
  EXPECT_EQ(tree.max_link_load, bytecode.max_link_load) << label;
  EXPECT_EQ(tree.contention_factor, bytecode.contention_factor) << label;
  EXPECT_EQ(tree.reinit_messages, bytecode.reinit_messages) << label;
}

/// All three variants through the full simulator under one
/// configuration/mode, plus bit-identical reference values: the tree walk
/// is the oracle, the unoptimized bytecode the second oracle, and the
/// optimized bytecode must match both.
void expect_engines_equivalent(const BuildFn& build,
                               const MachineConfig& config,
                               ExecutionMode mode, const std::string& label) {
  const CompiledProgram tree = build_variant(build, Variant::kTree);
  const CompiledProgram unopt = build_variant(build, Variant::kUnopt);
  const CompiledProgram opt = build_variant(build, Variant::kOpt);
  ASSERT_EQ(tree.bytecode, nullptr) << label;
  ASSERT_NE(unopt.bytecode, nullptr) << label;
  ASSERT_NE(opt.bytecode, nullptr) << label;
  EXPECT_FALSE(unopt.bytecode->optimized) << label;
  EXPECT_TRUE(opt.bytecode->optimized) << label;

  const Simulator sim(config);
  const SimulationResult tree_result = sim.run(tree, mode);
  expect_results_equal(tree_result, sim.run(unopt, mode), label + "/unopt");
  expect_results_equal(tree_result, sim.run(opt, mode), label + "/opt");

  const auto tree_values = run_reference(tree);
  for (const CompiledProgram* prog : {&unopt, &opt}) {
    const auto values = run_reference(*prog);
    for (const auto& array : *tree_values) {
      const SaArray& got = values->by_name(array->name());
      ASSERT_EQ(got.defined_count(), array->defined_count())
          << label << " " << array->name();
      for (std::int64_t i = 0; i < array->element_count(); ++i) {
        if (!array->is_defined(i)) continue;
        EXPECT_EQ(got.read(i), array->read(i))
            << label << " " << array->name() << "[" << i << "]";
      }
    }
  }
}

// ---------------------------------------------------------------- kernels

struct FigWorkload {
  std::string label;
  BuildFn build;
};

const std::vector<FigWorkload>& fig_workloads() {
  static const std::vector<FigWorkload> workloads = {
      {"fig1/k01_hydro", [] { return build_k1_hydro(); }},
      {"fig2/k02_iccg", [] { return build_k2_iccg(); }},
      {"fig3/k18_hydro2d", [] { return build_k18_explicit_hydro_2d(); }},
      {"fig4/k06_glr", [] { return build_k6_general_linear_recurrence(); }},
      {"fig5/k18_hydro2d_400",
       [] { return build_k18_explicit_hydro_2d(400); }},
  };
  return workloads;
}

TEST(BytecodeEquivalenceTest, FigKernelsAllSchemesCounting) {
  for (const auto& w : fig_workloads()) {
    for (const PartitionKind kind :
         {PartitionKind::kModulo, PartitionKind::kBlock,
          PartitionKind::kBlockCyclic}) {
      const MachineConfig config =
          MachineConfig{}.with_pes(8).with_partition(kind);
      expect_engines_equivalent(w.build, config, ExecutionMode::kCounting,
                                w.label + "/" + to_string(kind));
    }
  }
}

TEST(BytecodeEquivalenceTest, FigKernelsAllSchemesDataflow) {
  for (const auto& w : fig_workloads()) {
    for (const PartitionKind kind :
         {PartitionKind::kModulo, PartitionKind::kBlock,
          PartitionKind::kBlockCyclic}) {
      const MachineConfig config =
          MachineConfig{}.with_pes(8).with_partition(kind);
      expect_engines_equivalent(w.build, config, ExecutionMode::kDataflow,
                                w.label + "/" + to_string(kind) + "/df");
    }
  }
}

// ----------------------------------------------------- randomized programs

/// Seeded random single-assignment programs: every output element written
/// exactly once (targets walk the full iteration space), reads drawn from
/// fully-initialized input arrays through affine offsets, MIN/MAX-clamped
/// (non-affine) indices, indirect permutation lookups, reductions and
/// induction scalars.
BuildFn random_program(std::uint64_t seed) {
  return [seed] {
    SplitMix64 rng(seed);
    const std::int64_t n = 8 + static_cast<std::int64_t>(rng.next_below(17));
    const bool two_dim = rng.next_below(3) == 0;
    const std::int64_t m =
        two_dim ? 4 + static_cast<std::int64_t>(rng.next_below(5)) : 1;
    const std::int64_t margin = 4;

    ProgramBuilder b("rand" + std::to_string(seed));
    if (two_dim) {
      b.array("A", {n, m});
      b.input_array("B", {n + margin, m + margin});
    } else {
      b.array("A", {n});
      b.input_array("B", {n + margin});
    }
    b.input_array("P", {n});
    // Permutation-ish input whose *values* are valid 1-based indices.
    const std::uint64_t perm_seed = rng.next();
    b.custom_init("P", [n, perm_seed](std::int64_t linear) {
      SplitMix64 cell(perm_seed ^ static_cast<std::uint64_t>(linear));
      return static_cast<double>(1 + cell.next_below(
                                         static_cast<std::uint64_t>(n)));
    });
    b.array("S", {1});
    const bool with_scalar = rng.next_below(2) == 0;
    if (with_scalar) b.scalar("s", 0.0);

    const auto read_b1 = [&](Ex index) { return b.at("B", {std::move(index)}); };

    b.begin_loop("i", 1, Ex(static_cast<double>(n)));
    if (with_scalar) b.scalar_assign("s", b.var("s") + 1);
    if (two_dim) {
      b.begin_loop("j", 1, Ex(static_cast<double>(m)));
      Ex value =
          b.at("B", {b.var("i") + static_cast<int>(rng.next_below(margin)),
                     b.var("j")}) *
          b.at("B", {b.var("i"),
                     b.var("j") + static_cast<int>(rng.next_below(margin))});
      if (rng.next_below(2) == 0) {
        value = value + ex_min(b.var("i") * b.var("j"), 100);
      }
      b.assign("A", {b.var("i"), b.var("j")}, std::move(value));
      b.end_loop();
    } else {
      Ex value =
          read_b1(b.var("i") + static_cast<int>(rng.next_below(margin))) +
          2.5;
      switch (rng.next_below(4)) {
        case 0:  // indirect permutation lookup
          value = value * read_b1(b.at("P", {b.var("i")}));
          break;
        case 1:  // MIN/MAX-clamped (non-affine) index
          value = value - read_b1(ex_max(ex_min(b.var("i") + 2, Ex(static_cast<double>(n))), 1));
          break;
        case 2:  // intrinsic arithmetic on the value side
          value = value + ex_mod(b.var("i") * 7, 5) - ex_idiv(b.var("i"), 3);
          break;
        default:  // induction-scalar or reversed index
          value = with_scalar
                      ? value * (b.var("s") + 1)
                      : value + read_b1(Ex(static_cast<double>(n + 1)) -
                                        b.var("i"));
          break;
      }
      b.assign("A", {b.var("i")}, std::move(value));
    }
    b.end_loop();

    // Reduction over the freshly-written output.
    b.begin_loop("k", 1, Ex(static_cast<double>(n)));
    if (two_dim) {
      b.assign("S", {1}, b.at("S", {1}) + b.at("A", {b.var("k"), 1}));
    } else {
      b.assign("S", {1}, b.at("S", {1}) + b.at("A", {b.var("k")}));
    }
    b.end_loop();
    return b.compile();
  };
}

TEST(BytecodeEquivalenceTest, RandomizedDifferential) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const BuildFn build = random_program(seed);
    for (const std::uint32_t pes : {1u, 4u}) {
      expect_engines_equivalent(
          build, MachineConfig{}.with_pes(pes), ExecutionMode::kCounting,
          "rand" + std::to_string(seed) + "/pes" + std::to_string(pes));
    }
    if (seed % 4 == 0) {
      expect_engines_equivalent(build, MachineConfig{}.with_pes(4),
                                ExecutionMode::kDataflow,
                                "rand" + std::to_string(seed) + "/df");
    }
  }
}

// --------------------------------------------------------- worker counts

TEST(BytecodeEquivalenceTest, SweepsIdenticalForAnyWorkerCount) {
  const BuildFn build = [] { return build_k1_hydro(); };
  const CompiledProgram tree = build_variant(build, Variant::kTree);
  const CompiledProgram unopt = build_variant(build, Variant::kUnopt);
  const CompiledProgram opt = build_variant(build, Variant::kOpt);

  std::vector<SweepJob> tree_jobs;
  std::vector<SweepJob> unopt_jobs;
  std::vector<SweepJob> opt_jobs;
  for (const std::uint32_t pes : {1u, 2u, 4u, 8u, 16u}) {
    const MachineConfig config = MachineConfig{}.with_pes(pes);
    tree_jobs.push_back(SweepJob{&tree, config, ExecutionMode::kCounting});
    unopt_jobs.push_back(SweepJob{&unopt, config, ExecutionMode::kCounting});
    opt_jobs.push_back(SweepJob{&opt, config, ExecutionMode::kCounting});
  }

  const auto serial_tree = parallel_sweep_results(tree_jobs, nullptr);
  for (const unsigned workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    const auto parallel_unopt = parallel_sweep_results(unopt_jobs, &pool);
    const auto parallel_opt = parallel_sweep_results(opt_jobs, &pool);
    ASSERT_EQ(parallel_unopt.size(), serial_tree.size());
    ASSERT_EQ(parallel_opt.size(), serial_tree.size());
    for (std::size_t i = 0; i < serial_tree.size(); ++i) {
      const std::string label =
          "workers" + std::to_string(workers) + "/job" + std::to_string(i);
      expect_results_equal(serial_tree[i], parallel_unopt[i],
                           label + "/unopt");
      expect_results_equal(serial_tree[i], parallel_opt[i], label + "/opt");
    }
  }
}

}  // namespace
}  // namespace sap
