// The ISSUE-2 acceptance criterion: on every figure workload of the
// paper, the advisor's recommended partition must match or beat the
// paper's fixed modulo scheme on the headline metric (remote-read
// fraction), and candidate validation must fan across the ThreadPool
// deterministically (identical reports for 1/2/8 workers).
#include <gtest/gtest.h>

#include "advisor/advisor.hpp"
#include "kernels/livermore.hpp"

namespace sap {
namespace {

struct FigWorkload {
  const char* figure;
  CompiledProgram program;
  std::uint32_t pes;
};

std::vector<FigWorkload> figure_workloads() {
  std::vector<FigWorkload> out;
  // Figure 1 highlights 8 PEs; figures 2-4 sweep to 32; figure 5 is the
  // 64-PE load-balance run on the enlarged Hydro-2D grid.
  out.push_back({"fig1", build_k1_hydro(), 8});
  out.push_back({"fig2", build_k2_iccg(), 16});
  out.push_back({"fig3", build_k18_explicit_hydro_2d(), 16});
  out.push_back({"fig4", build_k6_general_linear_recurrence(), 16});
  out.push_back({"fig5", build_k18_explicit_hydro_2d(400), 64});
  return out;
}

MachineConfig paper_machine(std::uint32_t pes) {
  MachineConfig c;
  c.num_pes = pes;
  c.page_size = 32;
  c.cache_elements = 256;
  return c;
}

TEST(AdvisorNeverWorseTest, BeatsOrMatchesModuloOnEveryFigureWorkload) {
  ThreadPool pool;
  AdvisorOptions options;
  options.page_sizes = {32, 64};
  for (const FigWorkload& w : figure_workloads()) {
    const AdvisorReport report =
        advise(w.program, paper_machine(w.pes), options, &pool);
    const AdvisorCandidate& best = report.best();
    const AdvisorCandidate* baseline = report.baseline();
    ASSERT_NE(baseline, nullptr) << w.figure;
    ASSERT_TRUE(baseline->validated) << w.figure;
    ASSERT_TRUE(best.validated) << w.figure;
    EXPECT_LE(best.measured_remote_fraction,
              baseline->measured_remote_fraction)
        << w.figure << ": advised " << best.label() << " measured "
        << best.measured_remote_fraction << " vs modulo "
        << baseline->measured_remote_fraction;
  }
}

TEST(AdvisorNeverWorseTest, ConditionalKernelsNoWorseThanModulo) {
  // ISSUE-5 acceptance: the advisor must rank a partition for each
  // conditional kernel no worse than the modulo baseline — the
  // probability-weighted cost model may only improve the ranking, never
  // break the never-worse construction.
  ThreadPool pool;
  AdvisorOptions options;
  options.page_sizes = {32, 64};
  struct CondWorkload {
    const char* id;
    CompiledProgram program;
  };
  std::vector<CondWorkload> kernels;
  kernels.push_back({"k15_flow_limiter", build_k15_flow_limiter()});
  kernels.push_back({"k16_min_search", build_k16_min_search()});
  kernels.push_back({"k24_first_min", build_k24_first_min()});
  for (const CondWorkload& w : kernels) {
    const AdvisorReport report =
        advise(w.program, paper_machine(16), options, &pool);
    const AdvisorCandidate& best = report.best();
    const AdvisorCandidate* baseline = report.baseline();
    ASSERT_NE(baseline, nullptr) << w.id;
    ASSERT_TRUE(baseline->validated) << w.id;
    ASSERT_TRUE(best.validated) << w.id;
    EXPECT_LE(best.measured_remote_fraction,
              baseline->measured_remote_fraction)
        << w.id << ": advised " << best.label() << " measured "
        << best.measured_remote_fraction << " vs modulo "
        << baseline->measured_remote_fraction;
  }
}

TEST(AdvisorNeverWorseTest, ValidationDeterministicAcrossWorkerCounts) {
  // Same program, same options — 1, 2 and 8 pool workers must produce a
  // byte-identical report (pre-assigned result slots, tie-broken sorts).
  const CompiledProgram prog = build_k2_iccg();
  AdvisorOptions options;
  options.page_sizes = {32, 64};
  std::string expected;
  for (const unsigned workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    const AdvisorReport report =
        advise(prog, paper_machine(16), options, &pool);
    if (expected.empty()) {
      expected = report.report();
    } else {
      EXPECT_EQ(report.report(), expected) << workers << " workers";
    }
  }
}

}  // namespace
}  // namespace sap
