// End-to-end exercise of the §5 host-processor re-initialization protocol:
// a non-single-assignment time-stepping program goes through the automatic
// conversion tool, runs on the machine in both execution modes, and the
// protocol cost matches the N-requests + (N-1)-grants accounting.
#include <gtest/gtest.h>

#include "core/program_builder.hpp"
#include "core/simulator.hpp"
#include "frontend/convert.hpp"
#include "kernels/synthetic.hpp"

namespace sap {
namespace {

CompiledProgram converted_timestep(std::int64_t n, std::int64_t steps) {
  const Program raw = make_nonsa_timestep(n, steps);
  ConversionResult conv = convert_to_single_assignment(raw);
  return compile(std::move(conv.program));
}

TEST(ReinitPipelineTest, ConvertedProgramRunsInBothModes) {
  const CompiledProgram prog = converted_timestep(128, 4);
  for (const auto mode :
       {ExecutionMode::kCounting, ExecutionMode::kDataflow}) {
    const Simulator sim(MachineConfig{}.with_pes(4));
    std::unique_ptr<Machine> machine;
    const auto result = sim.run_with_machine(prog, mode, machine);
    EXPECT_EQ(machine->arrays().by_name("A").generation(), 4u)
        << to_string(mode);
    EXPECT_EQ(result.totals.writes, 4u * 128u) << to_string(mode);
  }
}

TEST(ReinitPipelineTest, ProtocolMessageCountExact) {
  // Per round on N PEs: (N-1) REINIT_REQ to the host + (N-1) REINIT_GRANT.
  const CompiledProgram prog = converted_timestep(64, 3);
  const std::uint32_t pes = 8;
  const Simulator sim(MachineConfig{}.with_pes(pes));
  const auto result = sim.run(prog);
  const std::uint64_t per_round = 2ull * (pes - 1);
  EXPECT_EQ(result.reinit_messages, 3ull * per_round);
}

TEST(ReinitPipelineTest, GenerationsIsolateTimeSteps) {
  // Cached pages of generation g never serve generation g+1 reads: each
  // step's remote fetch pattern repeats instead of being poisoned by
  // stale values.
  const CompiledProgram prog = [] {
    ProgramBuilder b("gen_iso");
    b.array("A", {128});
    b.array("OUT", {128});
    b.input_array("B", {128});
    // Produce A, consume it with a skew (cross-PE reads), re-init, repeat.
    b.begin_loop("T", 1, 2);
    b.reinit("A");
    b.begin_loop("I", 1, 128);
    b.assign("A", {b.var("I")}, b.at("B", {b.var("I")}) + b.var("T"));
    b.end_loop();
    b.end_loop();
    // Consume the final generation.
    b.begin_loop("J", 1, 118);
    b.assign("OUT", {b.var("J")}, b.at("A", {b.var("J") + 10}));
    b.end_loop();
    return b.compile();
  }();
  const Simulator sim(MachineConfig{}.with_pes(4));
  std::unique_ptr<Machine> machine;
  sim.run_with_machine(prog, ExecutionMode::kCounting, machine);
  // OUT(j) = B(j+10) + 2 — the *final* generation's values.
  const SaArray& out = machine->arrays().by_name("OUT");
  for (std::int64_t j = 0; j < 118; ++j) {
    EXPECT_DOUBLE_EQ(out.read(j), synthetic_init_value("B", j + 10) + 2.0);
  }
}

TEST(ReinitPipelineTest, ReinitCostScalesLinearlyWithPes) {
  const CompiledProgram prog = converted_timestep(64, 2);
  std::uint64_t prev = 0;
  for (const std::uint32_t pes : {2u, 4u, 8u, 16u}) {
    const Simulator sim(MachineConfig{}.with_pes(pes));
    const std::uint64_t msgs = sim.run(prog).reinit_messages;
    EXPECT_EQ(msgs, 2ull * 2ull * (pes - 1));
    EXPECT_GT(msgs, prev);
    prev = msgs;
  }
}

}  // namespace
}  // namespace sap
