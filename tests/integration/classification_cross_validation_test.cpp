// Cross-validation of the three classification views (DESIGN.md §2):
//   paper class  — §7.1's labels (or our calibrated label for kernels the
//                  paper does not name),
//   static class — compile-time affine/stride analysis,
//   empirical    — derived from simulation sweeps like the paper did.
// All three must agree on every kernel in the suite.
#include <gtest/gtest.h>

#include "core/empirical_classifier.hpp"
#include "kernels/livermore.hpp"
#include "kernels/synthetic.hpp"

namespace sap {
namespace {

class ClassCrossValidation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ClassCrossValidation, StaticMatchesPaper) {
  const auto& spec = livermore_kernels().at(GetParam());
  const CompiledProgram prog = spec.build();
  const auto result = classify_program(prog.program, prog.sema);
  EXPECT_EQ(result.cls, spec.paper_class)
      << spec.id << "\n"
      << result.report();
}

TEST_P(ClassCrossValidation, EmpiricalMatchesPaper) {
  const auto& spec = livermore_kernels().at(GetParam());
  const CompiledProgram prog = spec.build();
  const auto result = classify_empirical(prog, MachineConfig{});
  EXPECT_EQ(result.cls, spec.paper_class)
      << spec.id << ": " << result.rationale;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, ClassCrossValidation,
                         ::testing::Range<std::size_t>(0, 19));

TEST(ClassCrossValidation, SyntheticsAgreeBothWays) {
  struct Case {
    CompiledProgram prog;
    AccessClass expected;
  };
  std::vector<Case> cases;
  cases.push_back({make_matched(512), AccessClass::kMatched});
  cases.push_back({make_skewed(512, 7), AccessClass::kSkewed});
  cases.push_back({make_cyclic(512, 4), AccessClass::kCyclic});
  cases.push_back({make_random_permutation(1024, 1), AccessClass::kRandom});
  for (const auto& c : cases) {
    EXPECT_EQ(classify_program(c.prog.program, c.prog.sema).cls, c.expected)
        << c.prog.name() << " (static)";
    EXPECT_EQ(classify_empirical(c.prog, MachineConfig{}).cls, c.expected)
        << c.prog.name() << " (empirical)";
  }
}

TEST(ClassCrossValidation, ClassifierFollowsCacheConfiguration) {
  // §7.1.4: a pattern is Random *relative to the cache*: GLR's window
  // fits a big enough cache, turning it cyclic.
  const CompiledProgram glr = build_k6_general_linear_recurrence(100);
  ClassifierConfig small;
  small.cache_elements = 256;
  ClassifierConfig huge;
  huge.cache_elements = 1 << 20;
  EXPECT_EQ(classify_program(glr.program, glr.sema, small).cls,
            AccessClass::kRandom);
  EXPECT_EQ(classify_program(glr.program, glr.sema, huge).cls,
            AccessClass::kCyclic);
}

}  // namespace
}  // namespace sap
