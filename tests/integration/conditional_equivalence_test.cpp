// Acceptance differential for conditional control flow (ISSUE 5): every
// conditional kernel (guarded assignments, DSA-merged arms, lazy SELECT)
// must produce byte-identical SimulationResults and array values across
//   - the tree-walk and bytecode expression engines, and
//   - the counting interpreter, the serial dataflow oracle, and the
//     sharded dataflow runtime at 1/2/8 replay workers,
// under all three partition schemes.  Guards are resolved by the trace
// pass, so the per-PE instance streams — and therefore every tally — are
// deterministic regardless of scheduler or worker count.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/bytecode.hpp"
#include "core/counting_interpreter.hpp"
#include "core/dataflow_interpreter.hpp"
#include "core/program_builder.hpp"
#include "core/simulator.hpp"
#include "kernels/livermore.hpp"
#include "runtime/sim_runtime.hpp"

namespace sap {
namespace {

struct Workload {
  std::string label;
  CompiledProgram program;
};

CompiledProgram guarded_reduction() {
  // A reduction whose accumulation is guarded: commits depend on how
  // often the guard fires per target element.
  ProgramBuilder b("guarded_reduction");
  b.array("W", {32});
  b.input_array("B", {32, 32});
  const Ex i = b.var("I");
  const Ex k = b.var("K");
  b.begin_loop("I", 1, 32);
  b.begin_loop("K", 1, 32);
  b.begin_if(ex_gt(b.at("B", {k, i}), ex_num(1.0)));
  b.assign("W", {i}, b.at("W", {i}) + b.at("B", {k, i}));
  b.end_if();
  b.end_loop();
  b.end_loop();
  return b.compile();
}

CompiledProgram guarded_scalar_control() {
  // A guarded induction-breaking scalar update: control divergence that
  // the trace pass must resolve identically for every consumer.
  ProgramBuilder b("guarded_scalar");
  b.array("A", {128});
  b.input_array("B", {64});
  b.scalar("S", 0.0);
  const Ex k = b.var("K");
  b.begin_loop("K", 1, 64);
  b.begin_if(ex_gt(b.at("B", {k}), ex_num(1.0)));
  b.scalar_assign("S", b.var("S") + 1);
  b.end_if();
  b.assign("A", {k + 64}, b.var("S") + b.at("B", {k}));
  b.end_loop();
  return b.compile();
}

const std::vector<Workload>& workloads() {
  static const std::vector<Workload> list = [] {
    std::vector<Workload> out;
    out.push_back({"k15_flow_limiter", build_k15_flow_limiter()});
    out.push_back({"k16_min_search", build_k16_min_search()});
    out.push_back({"k24_first_min", build_k24_first_min()});
    out.push_back({"guarded_reduction", guarded_reduction()});
    out.push_back({"guarded_scalar", guarded_scalar_control()});
    return out;
  }();
  return list;
}

// Recompile from a cloned AST so node-keyed tables stay coherent.
CompiledProgram with_engine(const CompiledProgram& prog, EvalEngine engine) {
  return compile(clone(prog.program), engine);
}

enum class Mode { kCounting, kSerial, kSharded };

SimulationResult run_mode(const CompiledProgram& prog,
                          const MachineConfig& config, Mode mode,
                          unsigned workers,
                          std::unique_ptr<Machine>& machine_out) {
  machine_out = std::make_unique<Machine>(config);
  materialize_arrays(prog, *machine_out);
  switch (mode) {
    case Mode::kCounting:
      run_counting(prog, *machine_out);
      break;
    case Mode::kSerial:
      run_dataflow_serial(prog, *machine_out);
      break;
    case Mode::kSharded:
      run_dataflow_sharded(prog, *machine_out, ShardRuntimeOptions{workers});
      break;
  }
  return machine_out->snapshot(prog.name());
}

void expect_byte_identical(const SimulationResult& got,
                           const SimulationResult& want, const Machine& got_m,
                           const Machine& want_m, const std::string& label) {
  EXPECT_EQ(got.totals, want.totals) << label;
  ASSERT_EQ(got.per_pe.size(), want.per_pe.size()) << label;
  for (std::size_t pe = 0; pe < got.per_pe.size(); ++pe) {
    EXPECT_EQ(got.per_pe[pe], want.per_pe[pe]) << label << " pe=" << pe;
  }
  EXPECT_EQ(got.network, want.network) << label;
  EXPECT_EQ(got.cache_totals.hits, want.cache_totals.hits) << label;
  EXPECT_EQ(got.cache_totals.misses, want.cache_totals.misses) << label;

  for (const auto& want_array : want_m.arrays()) {
    const SaArray& got_array = got_m.arrays().by_name(want_array->name());
    ASSERT_EQ(got_array.defined_count(), want_array->defined_count())
        << label << " " << want_array->name();
    for (std::int64_t i = 0; i < want_array->element_count(); ++i) {
      if (!want_array->is_defined(i)) continue;
      EXPECT_EQ(got_array.read(i), want_array->read(i))
          << label << " " << want_array->name() << "[" << i << "]";
    }
  }
}

TEST(ConditionalEquivalenceTest, EnginesModesSchedulersAllAgree) {
  for (const auto& w : workloads()) {
    for (const PartitionKind kind :
         {PartitionKind::kModulo, PartitionKind::kBlock,
          PartitionKind::kBlockCyclic}) {
      const MachineConfig config =
          MachineConfig{}.with_pes(8).with_partition(kind);
      const CompiledProgram tree = with_engine(w.program, EvalEngine::kTree);
      const CompiledProgram bytecode =
          with_engine(w.program, EvalEngine::kBytecode);
      ASSERT_EQ(tree.bytecode, nullptr);
      ASSERT_NE(bytecode.bytecode, nullptr);

      std::unique_ptr<Machine> base_machine;
      const SimulationResult base =
          run_mode(tree, config, Mode::kCounting, 0, base_machine);

      struct Variant {
        const CompiledProgram* prog;
        Mode mode;
        unsigned workers;
        const char* name;
      };
      const std::vector<Variant> variants = {
          {&bytecode, Mode::kCounting, 0, "bytecode/counting"},
          {&tree, Mode::kSerial, 0, "tree/serial"},
          {&bytecode, Mode::kSerial, 0, "bytecode/serial"},
          {&tree, Mode::kSharded, 1, "tree/sharded-w1"},
          {&bytecode, Mode::kSharded, 1, "bytecode/sharded-w1"},
          {&tree, Mode::kSharded, 2, "tree/sharded-w2"},
          {&bytecode, Mode::kSharded, 2, "bytecode/sharded-w2"},
          {&tree, Mode::kSharded, 8, "tree/sharded-w8"},
          {&bytecode, Mode::kSharded, 8, "bytecode/sharded-w8"},
      };
      for (const Variant& v : variants) {
        std::unique_ptr<Machine> machine;
        const SimulationResult got =
            run_mode(*v.prog, config, v.mode, v.workers, machine);
        expect_byte_identical(got, base, *machine, *base_machine,
                              w.label + "/" + to_string(kind) + "/" + v.name);
      }
    }
  }
}

TEST(ConditionalEquivalenceTest, NoCacheConfigsMatchToo) {
  const MachineConfig config = MachineConfig{}.with_pes(8).with_cache(0);
  for (const auto& w : workloads()) {
    const CompiledProgram tree = with_engine(w.program, EvalEngine::kTree);
    const CompiledProgram bytecode =
        with_engine(w.program, EvalEngine::kBytecode);
    std::unique_ptr<Machine> base_machine;
    const SimulationResult base =
        run_mode(tree, config, Mode::kCounting, 0, base_machine);
    std::unique_ptr<Machine> machine;
    const SimulationResult got =
        run_mode(bytecode, config, Mode::kSharded, 8, machine);
    expect_byte_identical(got, base, *machine, *base_machine,
                          w.label + "/nocache");
  }
}

}  // namespace
}  // namespace sap
