// Acceptance differential for the sharded dataflow runtime (DESIGN.md §9,
// consistency claim 7): across the fig1–fig5 workloads, all three partition
// schemes, and 1/2/8 replay workers, the sharded runtime's
// SimulationResult — every counter, cache tally, network field — and every
// array value are byte-identical to the serial round-robin oracle.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/dataflow_interpreter.hpp"
#include "core/simulator.hpp"
#include "kernels/livermore.hpp"
#include "runtime/sim_runtime.hpp"

namespace sap {
namespace {

struct FigWorkload {
  std::string label;
  CompiledProgram program;
};

const std::vector<FigWorkload>& fig_workloads() {
  static const std::vector<FigWorkload> workloads = [] {
    std::vector<FigWorkload> out;
    out.push_back({"fig1/k01_hydro", build_k1_hydro()});
    out.push_back({"fig2/k02_iccg", build_k2_iccg()});
    out.push_back({"fig3/k18_hydro2d", build_k18_explicit_hydro_2d()});
    out.push_back({"fig4/k06_glr", build_k6_general_linear_recurrence()});
    out.push_back(
        {"fig5/k18_hydro2d_400", build_k18_explicit_hydro_2d(400)});
    return out;
  }();
  return workloads;
}

SimulationResult snapshot_run(const CompiledProgram& prog,
                              const MachineConfig& config, unsigned workers,
                              std::unique_ptr<Machine>& machine_out) {
  machine_out = std::make_unique<Machine>(config);
  materialize_arrays(prog, *machine_out);
  if (workers == 0) {
    run_dataflow_serial(prog, *machine_out);
  } else {
    run_dataflow_sharded(prog, *machine_out, ShardRuntimeOptions{workers});
  }
  return machine_out->snapshot(prog.name());
}

void expect_byte_identical(const SimulationResult& got,
                           const SimulationResult& want, const Machine& got_m,
                           const Machine& want_m, const std::string& label) {
  EXPECT_EQ(got.totals, want.totals) << label;
  ASSERT_EQ(got.per_pe.size(), want.per_pe.size()) << label;
  for (std::size_t pe = 0; pe < got.per_pe.size(); ++pe) {
    EXPECT_EQ(got.per_pe[pe], want.per_pe[pe]) << label << " pe=" << pe;
  }
  EXPECT_EQ(got.network, want.network) << label;
  EXPECT_EQ(got.cache_totals.hits, want.cache_totals.hits) << label;
  EXPECT_EQ(got.cache_totals.misses, want.cache_totals.misses) << label;
  EXPECT_EQ(got.cache_totals.evictions, want.cache_totals.evictions) << label;
  EXPECT_EQ(got.cache_totals.invalidations, want.cache_totals.invalidations)
      << label;
  EXPECT_EQ(got.max_link_load, want.max_link_load) << label;
  EXPECT_EQ(got.contention_factor, want.contention_factor) << label;
  EXPECT_EQ(got.reinit_messages, want.reinit_messages) << label;

  // Array values, bit for bit.
  for (const auto& want_array : want_m.arrays()) {
    const SaArray& got_array = got_m.arrays().by_name(want_array->name());
    ASSERT_EQ(got_array.defined_count(), want_array->defined_count())
        << label << " " << want_array->name();
    for (std::int64_t i = 0; i < want_array->element_count(); ++i) {
      if (!want_array->is_defined(i)) continue;
      EXPECT_EQ(got_array.read(i), want_array->read(i))
          << label << " " << want_array->name() << "[" << i << "]";
    }
  }
}

TEST(ShardedEquivalenceTest, FigWorkloadsAllSchemesAllWorkerCounts) {
  for (const auto& w : fig_workloads()) {
    for (const PartitionKind kind :
         {PartitionKind::kModulo, PartitionKind::kBlock,
          PartitionKind::kBlockCyclic}) {
      const MachineConfig config =
          MachineConfig{}.with_pes(16).with_partition(kind);
      std::unique_ptr<Machine> serial_machine;
      const SimulationResult serial =
          snapshot_run(w.program, config, 0, serial_machine);
      for (const unsigned workers : {1u, 2u, 8u}) {
        std::unique_ptr<Machine> sharded_machine;
        const SimulationResult sharded =
            snapshot_run(w.program, config, workers, sharded_machine);
        expect_byte_identical(
            sharded, serial, *sharded_machine, *serial_machine,
            w.label + "/" + to_string(kind) + "/w" + std::to_string(workers));
      }
    }
  }
}

TEST(ShardedEquivalenceTest, NoCacheConfigsMatchToo) {
  const MachineConfig config =
      MachineConfig{}.with_pes(16).with_cache(0);
  for (const auto& w : fig_workloads()) {
    std::unique_ptr<Machine> serial_machine;
    const SimulationResult serial =
        snapshot_run(w.program, config, 0, serial_machine);
    std::unique_ptr<Machine> sharded_machine;
    const SimulationResult sharded =
        snapshot_run(w.program, config, 8, sharded_machine);
    expect_byte_identical(sharded, serial, *sharded_machine, *serial_machine,
                          w.label + "/nocache");
  }
}

}  // namespace
}  // namespace sap
