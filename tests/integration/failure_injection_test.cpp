// Failure injection: every trap the system promises must actually fire,
// with the right exception type, from every entry point.
#include <gtest/gtest.h>

#include "core/program_builder.hpp"
#include "core/reference_interpreter.hpp"
#include "core/simulator.hpp"
#include "frontend/sa_check.hpp"
#include "frontend/sema.hpp"
#include "kernels/synthetic.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

CompiledProgram double_write_program() {
  ProgramBuilder b("double_write");
  b.array("A", {8});
  b.begin_loop("K", 1, 8);
  b.assign("A", {ex_idiv(b.var("K") + 1, 2)}, b.var("K"));  // 1,1,2,2,...
  b.end_loop();
  return b.compile();
}

TEST(FailureInjectionTest, DoubleWriteTrapsEverywhere) {
  const CompiledProgram prog = double_write_program();
  EXPECT_THROW(run_reference(prog), DoubleWriteError);
  const Simulator sim(MachineConfig{}.with_pes(2).with_page_size(4));
  EXPECT_THROW(sim.run(prog, ExecutionMode::kCounting), DoubleWriteError);
  EXPECT_THROW(sim.run(prog, ExecutionMode::kDataflow), DoubleWriteError);
}

TEST(FailureInjectionTest, SequentialReadBeforeWrite) {
  ProgramBuilder b("rbw");
  b.array("A", {8});
  b.array("OUT", {8});
  b.begin_loop("K", 1, 8);
  b.assign("OUT", {b.var("K")}, b.at("A", {b.var("K")}));
  b.end_loop();
  const CompiledProgram prog = b.compile();
  EXPECT_THROW(run_reference(prog), UndefinedReadError);
  const Simulator sim(MachineConfig{}.with_pes(2));
  EXPECT_THROW(sim.run(prog, ExecutionMode::kCounting), UndefinedReadError);
  // The dataflow machine expresses the same bug as PEs waiting forever.
  EXPECT_THROW(sim.run(prog, ExecutionMode::kDataflow), DeadlockError);
}

TEST(FailureInjectionTest, OutOfBoundsIndex) {
  ProgramBuilder b("oob");
  b.array("A", {8});
  b.begin_loop("K", 1, 9);  // one past the end
  b.assign("A", {b.var("K")}, 1.0);
  b.end_loop();
  const CompiledProgram prog = b.compile();
  const Simulator sim(MachineConfig{}.with_pes(2));
  EXPECT_THROW(sim.run(prog), BoundsError);
}

TEST(FailureInjectionTest, ZeroStepLoop) {
  ProgramBuilder b("zstep");
  b.array("A", {8});
  b.begin_loop_step("K", 1, 8, Ex(0));
  b.assign("A", {b.var("K")}, 1.0);
  b.end_loop();
  const CompiledProgram prog = b.compile();
  EXPECT_THROW(run_reference(prog), Error);
}

TEST(FailureInjectionTest, NonIntegralIndex) {
  ProgramBuilder b("fracidx");
  b.array("A", {8});
  b.begin_loop("K", 1, 8);
  b.assign("A", {b.var("K") / 3.0}, 1.0);
  b.end_loop();
  const CompiledProgram prog = b.compile();
  EXPECT_THROW(run_reference(prog), Error);
}

TEST(FailureInjectionTest, DivisionByZeroValue) {
  ProgramBuilder b("div0");
  b.array("A", {4});
  b.begin_loop("K", 1, 4);
  b.assign("A", {b.var("K")}, 1.0 / (b.var("K") - 1.0));  // k=1 divides by 0
  b.end_loop();
  const CompiledProgram prog = b.compile();
  EXPECT_THROW(run_reference(prog), Error);
}

TEST(FailureInjectionTest, IndirectIndexOutOfRange) {
  // A permutation table scaled out of range must fault cleanly, not read
  // arbitrary memory.
  ProgramBuilder b("badperm");
  b.array("A", {16});
  b.input_array("B", {16});
  b.input_array("P", {16});
  b.custom_init("P", [](std::int64_t i) { return double(i + 100); });
  b.begin_loop("K", 1, 16);
  b.assign("A", {b.var("K")}, b.at("B", {b.at("P", {b.var("K")})}));
  b.end_loop();
  const CompiledProgram prog = b.compile();
  const Simulator sim(MachineConfig{}.with_pes(2));
  EXPECT_THROW(sim.run(prog), BoundsError);
}

TEST(FailureInjectionTest, RuntimeTrapsForUncheckableStatic) {
  // The static checker cannot bound IDIV targets, but the machine traps.
  const auto result = [] {
    Program p = double_write_program().program;
    const SemanticInfo sema = analyze(p);
    return check_single_assignment(p, sema);
  }();
  EXPECT_FALSE(result.has_proven_violation());  // static: only "possible"
  EXPECT_FALSE(result.findings.empty());
}

}  // namespace
}  // namespace sap
