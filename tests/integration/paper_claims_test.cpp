// Golden-shape tests: every quantitative claim the paper makes about its
// figures and conclusions, asserted against the simulator.  These are the
// reproduction's contract; EXPERIMENTS.md records the measured values.
#include <gtest/gtest.h>

#include "core/sweep.hpp"
#include "kernels/livermore.hpp"

namespace sap {
namespace {

const MachineConfig kPaperConfig = [] {
  MachineConfig c;
  c.page_size = 32;
  c.cache_elements = 256;  // §6: "a small fixed cache size (256 elements)"
  return c;
}();

// ---------------------------------------------------------------- Figure 1
TEST(Figure1, SkewedHydroShape) {
  const CompiledProgram prog = build_k1_hydro();
  const auto series = figure_series(prog, kPaperConfig, {1, 2, 4, 8, 16, 32},
                                    {32, 64});
  const auto& cache32 = series[0];
  const auto& cache64 = series[1];
  const auto& nocache32 = series[2];
  const auto& nocache64 = series[3];

  // Single PE: everything local.
  EXPECT_DOUBLE_EQ(nocache32.y_at(1), 0.0);

  for (const double pes : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    // §7.1.2 / Figure 1: no-cache ps 32 sits around 20%; caching collapses
    // it to ~1% ("for an SD loop with large skew ... 22% ... to 1%", §8).
    EXPECT_NEAR(nocache32.y_at(pes), 21.0, 1.5) << pes;
    EXPECT_NEAR(cache32.y_at(pes), 1.0, 0.5) << pes;
    // Doubling the page size halves the boundary-crossing fraction.
    EXPECT_NEAR(nocache64.y_at(pes), nocache32.y_at(pes) / 2.0, 1.0) << pes;
    EXPECT_LT(cache64.y_at(pes), cache32.y_at(pes) + 1e-9) << pes;
  }
}

// ---------------------------------------------------------------- Figure 2
TEST(Figure2, CyclicIccgShape) {
  const CompiledProgram prog = build_k2_iccg();
  const auto series =
      figure_series(prog, kPaperConfig, {1, 2, 4, 8, 16, 32}, {32, 64});
  const auto& cache32 = series[0];
  const auto& nocache32 = series[2];

  // §7.1.3: "Without a cache, CD displays poor performance, since the
  // accesses jump from page to page and most are remote" — rising towards
  // ~100% as PEs grow.
  EXPECT_GT(nocache32.y_at(2), 40.0);
  EXPECT_GT(nocache32.y_at(32), 90.0);
  EXPECT_LT(nocache32.y_at(2), nocache32.y_at(32));

  // With the cache, remote reads nearly vanish at scale ("caching to
  // become nearly perfect as the number of PEs increase").
  for (const double pes : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    EXPECT_LT(cache32.y_at(pes), 5.0) << pes;
    EXPECT_GT(nocache32.y_at(pes) / cache32.y_at(pes), 10.0) << pes;
  }
}

// ---------------------------------------------------------------- Figure 3
TEST(Figure3, CyclicSkewedHydro2dShape) {
  const CompiledProgram prog = build_k18_explicit_hydro_2d();
  const auto series =
      figure_series(prog, kPaperConfig, {1, 2, 4, 8, 16, 32}, {32, 64});
  const auto& cache32 = series[0];
  const auto& nocache32 = series[2];

  // Figure 3's axis tops out near 8%: a mild no-cache penalty...
  EXPECT_NEAR(nocache32.y_at(4), 8.0, 2.0);
  // ...flat in the PE count...
  EXPECT_NEAR(nocache32.y_at(32), nocache32.y_at(2), 1.0);
  // ...and a cached curve that *decreases* as PEs grow (§7.1.3: "we
  // observe a decrease in the percentage of remote accesses as the number
  // of PEs increases").
  EXPECT_LT(cache32.y_at(32), 0.6 * cache32.y_at(4));
  EXPECT_LT(cache32.y_at(32), 1.5);
}

// ---------------------------------------------------------------- Figure 4
TEST(Figure4, RandomGlrShape) {
  const CompiledProgram prog = build_k6_general_linear_recurrence();
  const auto series =
      figure_series(prog, kPaperConfig, {1, 2, 4, 8, 16, 32}, {32, 64});
  const auto& cache32 = series[0];
  const auto& nocache32 = series[2];

  // §7.1.4: "RD exhibits large remote access ratios regardless of the
  // presence or absence of caching."  Figure 4 peaks around 50-70%.
  for (const double pes : {4.0, 8.0, 16.0, 32.0}) {
    EXPECT_GT(cache32.y_at(pes), 25.0) << pes;
    EXPECT_GT(nocache32.y_at(pes), 50.0) << pes;
    // The cache never helps by more than ~2x here.
    EXPECT_LT(nocache32.y_at(pes) / cache32.y_at(pes), 3.0) << pes;
  }
}

// ---------------------------------------------------------------- Figure 5
TEST(Figure5, LoadBalanceAt64Pes) {
  // §7.2: "each of the sixty-four PEs performs a comparable number of
  // remote reads and local reads."
  const CompiledProgram prog = build_k18_explicit_hydro_2d(400);
  const Simulator sim(kPaperConfig.with_pes(64));
  const SimulationResult result = sim.run(prog);

  const LoadBalance local = result.local_read_balance();
  const LoadBalance writes = result.write_balance();
  EXPECT_LT(local.coefficient_of_variation(), 0.35);
  EXPECT_LT(writes.coefficient_of_variation(), 0.35);
  // "single assignment and equal partitioning force a nearly equal number
  // of writes on each processor" (§8).
  EXPECT_LT(writes.imbalance(), 1.5);
  EXPECT_GT(result.totals.remote_reads, 0u);

  // No-cache remote reads stay balanced too.
  const Simulator nocache(kPaperConfig.with_pes(64).with_cache(0));
  const LoadBalance remote = nocache.run(prog).remote_read_balance();
  EXPECT_LT(remote.coefficient_of_variation(), 0.5);
}

// ------------------------------------------------------------- Conclusions
TEST(Conclusions, LargeSkewReduction22To1) {
  // §8: "for an SD loop with large skew, we observed a reduction from 22%
  // remote reads to 1% remote reads."  K1's skew of 10/11 at ps 32 is
  // exactly that loop.
  const CompiledProgram prog = build_k1_hydro();
  const Simulator nocache(kPaperConfig.with_pes(8).with_cache(0));
  const Simulator cached(kPaperConfig.with_pes(8));
  EXPECT_NEAR(nocache.run(prog).remote_read_fraction(), 0.21, 0.02);
  EXPECT_NEAR(cached.run(prog).remote_read_fraction(), 0.01, 0.005);
}

TEST(Conclusions, MostClassesUnder10PercentWithSmallCache) {
  // §8: "For most access distributions, the percentages of remote accesses
  // are less than 10% when using a cache of 256 elements."
  const Simulator sim(kPaperConfig.with_pes(16));
  int under_10 = 0;
  int total = 0;
  for (const auto& spec : livermore_kernels()) {
    const double fraction = sim.run(spec.build()).remote_read_fraction();
    ++total;
    if (fraction < 0.10) ++under_10;
    if (spec.paper_class != AccessClass::kRandom) {
      EXPECT_LT(fraction, 0.10) << spec.id;
    }
  }
  EXPECT_GE(under_10 * 10, total * 6);  // at least 60% of the suite
}

TEST(Conclusions, CacheNeverHurts) {
  // Adding the cache can only convert remote reads into cached reads.
  const Simulator cached(kPaperConfig.with_pes(8));
  const Simulator nocache(kPaperConfig.with_pes(8).with_cache(0));
  for (const auto& spec : livermore_kernels()) {
    const CompiledProgram prog = spec.build();
    EXPECT_LE(cached.run(prog).totals.remote_reads,
              nocache.run(prog).totals.remote_reads)
        << spec.id;
  }
}

TEST(Conclusions, NetworkTrafficMinimalForSkewedClass) {
  // Abstract: "only a small fraction of data accesses are remote and thus
  // the degradation in network performance due to multiprocessing is
  // minimal."  Messages per read stays well under 0.1 for SD loops.
  const Simulator sim(kPaperConfig.with_pes(16));
  for (const char* id : {"k01_hydro", "k05_tridiag", "k07_eos",
                         "k11_first_sum", "k12_first_diff"}) {
    const auto result = sim.run(build_kernel(id));
    const double msgs_per_read =
        static_cast<double>(result.network.messages) /
        static_cast<double>(result.totals.total_reads());
    EXPECT_LT(msgs_per_read, 0.1) << id;
  }
}

}  // namespace
}  // namespace sap
