// Bit-reproducibility: EXPERIMENTS.md records absolute numbers, so every
// simulation must be deterministic — across repeated runs, across
// execution modes, and per-seed for the randomized cache policy.  Also
// pins the paper's §2 worked example (three 100-element arrays on four
// PEs with 32-element pages).
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "kernels/livermore.hpp"
#include "kernels/synthetic.hpp"

namespace sap {
namespace {

TEST(DeterminismTest, RepeatedRunsIdentical) {
  const CompiledProgram prog = build_kernel("k18_hydro2d");
  const Simulator sim(MachineConfig{}.with_pes(16));
  const auto first = sim.run(prog);
  const auto second = sim.run(prog);
  EXPECT_EQ(first.totals, second.totals);
  EXPECT_EQ(first.per_pe, second.per_pe);
  EXPECT_EQ(first.network.messages, second.network.messages);
}

TEST(DeterminismTest, RandomReplacementDeterministicPerSeed) {
  const CompiledProgram prog = make_random_permutation(512, 9);
  MachineConfig config;
  config.num_pes = 8;
  config.replacement = ReplacementPolicy::kRandom;
  config.seed = 1234;
  const auto a = Simulator(config).run(prog);
  const auto b = Simulator(config).run(prog);
  EXPECT_EQ(a.totals, b.totals);

  config.seed = 5678;
  const auto c = Simulator(config).run(prog);
  // Different victim choices almost surely change the distribution; if
  // not, the counts must still be internally consistent.
  EXPECT_EQ(c.totals.total_reads(), a.totals.total_reads());
}

TEST(DeterminismTest, RebuiltProgramsIdentical) {
  // Builders are pure: two builds of the same kernel simulate identically.
  const Simulator sim(MachineConfig{}.with_pes(8));
  const auto a = sim.run(build_k2_iccg());
  const auto b = sim.run(build_k2_iccg());
  EXPECT_EQ(a.totals, b.totals);
}

TEST(DeterminismTest, PaperSection2WorkedExample) {
  // §2: "suppose we have a multiprocessor with four PEs and a page size of
  // 32 elements. Given three arrays A, B, and C (each of size 100), PE 0,
  // PE 1, and PE 2 will each contain a single page of each array. PE 3
  // will contain a partial page (4 elements) of each array. ...
  // PE 0 fills A(1..32), PE 1 fills A(33..64), PE 2 fills A(65..96), and
  // PE 3 fills A(97..100)."
  const CompiledProgram prog = compile_source(R"(
PROGRAM section2
ARRAY A(100) INIT NONE
ARRAY B(100) INIT ALL
ARRAY C(100) INIT ALL
DO I = 1, 100
  A(I) = B(101 - I) + C(I)
END DO
END PROGRAM
)");
  const Simulator sim(MachineConfig{}.with_pes(4).with_page_size(32));
  const SimulationResult result = sim.run(prog);
  EXPECT_EQ(result.per_pe[0].writes, 32u);
  EXPECT_EQ(result.per_pe[1].writes, 32u);
  EXPECT_EQ(result.per_pe[2].writes, 32u);
  EXPECT_EQ(result.per_pe[3].writes, 4u);
  // "For most of the loop, each processor must access elements of array B
  // that lie on a different processor" — and C is always local.
  EXPECT_GT(result.totals.cached_reads + result.totals.remote_reads, 0u);
  EXPECT_EQ(result.totals.local_reads >= 100u, true);  // all of C at least
}

TEST(DeterminismTest, ModeChoiceDoesNotLeakIntoValues) {
  const CompiledProgram prog = build_kernel("k05_tridiag");
  const Simulator sim(MachineConfig{}.with_pes(4));
  std::unique_ptr<Machine> m1, m2;
  sim.run_with_machine(prog, ExecutionMode::kCounting, m1);
  sim.run_with_machine(prog, ExecutionMode::kDataflow, m2);
  const SaArray& x1 = m1->arrays().by_name("X");
  const SaArray& x2 = m2->arrays().by_name("X");
  for (std::int64_t i = 0; i < x1.element_count(); ++i) {
    ASSERT_EQ(x1.is_defined(i), x2.is_defined(i)) << i;
    if (x1.is_defined(i)) {
      // The recurrence chains 999 multiplications: bitwise equality.
      EXPECT_EQ(x1.read(i), x2.read(i)) << i;
    }
  }
}

}  // namespace
}  // namespace sap
