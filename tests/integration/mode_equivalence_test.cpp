// The central internal consistency claim (DESIGN.md §2): the one-pass
// counting interpreter and the split-phase dataflow machine produce
// identical per-PE access distributions AND identical array values for
// every legal single-assignment program.
#include <gtest/gtest.h>

#include "core/program_builder.hpp"
#include "core/reference_interpreter.hpp"
#include "core/simulator.hpp"
#include "kernels/livermore.hpp"
#include "kernels/synthetic.hpp"

namespace sap {
namespace {

void expect_equivalent(const CompiledProgram& prog, const MachineConfig& base,
                       const std::string& label) {
  const Simulator sim(base);
  std::unique_ptr<Machine> counting_machine;
  std::unique_ptr<Machine> dataflow_machine;
  const auto counting = sim.run_with_machine(
      prog, ExecutionMode::kCounting, counting_machine);
  const auto dataflow = sim.run_with_machine(
      prog, ExecutionMode::kDataflow, dataflow_machine);

  EXPECT_EQ(counting.totals, dataflow.totals) << label;
  ASSERT_EQ(counting.per_pe.size(), dataflow.per_pe.size()) << label;
  for (std::size_t pe = 0; pe < counting.per_pe.size(); ++pe) {
    EXPECT_EQ(counting.per_pe[pe], dataflow.per_pe[pe])
        << label << " pe=" << pe;
  }
  EXPECT_EQ(counting.network.messages, dataflow.network.messages) << label;
  EXPECT_EQ(counting.network.payload_elements,
            dataflow.network.payload_elements)
      << label;

  // Values equal the sequential reference execution, bit for bit.
  const auto reference = run_reference(prog);
  for (const auto& array : *reference) {
    const SaArray& expect = *array;
    const SaArray& got = dataflow_machine->arrays().by_name(expect.name());
    ASSERT_EQ(got.defined_count(), expect.defined_count())
        << label << " " << expect.name();
    for (std::int64_t i = 0; i < expect.element_count(); ++i) {
      if (!expect.is_defined(i)) continue;
      EXPECT_DOUBLE_EQ(got.read(i), expect.read(i))
          << label << " " << expect.name() << "[" << i << "]";
    }
  }
}

class KernelModeEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelModeEquivalence, CountingEqualsDataflow) {
  const auto& spec = livermore_kernels().at(GetParam());
  const CompiledProgram prog = spec.build();
  expect_equivalent(prog, MachineConfig{}.with_pes(8), spec.id);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelModeEquivalence,
                         ::testing::Range<std::size_t>(0, 19));

TEST(ModeEquivalenceTest, SyntheticsAcrossConfigs) {
  const std::vector<std::pair<std::string, CompiledProgram>> programs = [] {
    std::vector<std::pair<std::string, CompiledProgram>> out;
    out.emplace_back("matched", make_matched(300));
    out.emplace_back("skewed", make_skewed(300, 11));
    out.emplace_back("cyclic", make_cyclic(150, 2));
    out.emplace_back("random", make_random_permutation(256, 3));
    out.emplace_back("dot", make_dot_product(200));
    out.emplace_back("stencil", make_stencil_2d(16, 16));
    return out;
  }();
  for (const auto& [label, prog] : programs) {
    for (const std::uint32_t pes : {1u, 3u, 8u}) {
      for (const std::int64_t cache : {std::int64_t{0}, std::int64_t{256}}) {
        expect_equivalent(
            prog, MachineConfig{}.with_pes(pes).with_cache(cache),
            label + "/pes" + std::to_string(pes) + "/c" +
                std::to_string(cache));
      }
    }
  }
}

TEST(ModeEquivalenceTest, ReinitProgramEquivalent) {
  // §5 protocol interacts with caches and generations in both modes.
  const CompiledProgram prog = [] {
    ProgramBuilder b("reuse");
    b.array("A", {128});
    b.input_array("B", {128});
    b.begin_loop("T", 1, 4);
    b.reinit("A");
    b.begin_loop("I", 1, 128);
    b.assign("A", {b.var("I")}, b.at("B", {b.var("I")}) * b.var("T"));
    b.end_loop();
    b.end_loop();
    return b.compile();
  }();
  expect_equivalent(prog, MachineConfig{}.with_pes(4), "reinit");
}

}  // namespace
}  // namespace sap
