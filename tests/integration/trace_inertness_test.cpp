// Consistency claim 10 (DESIGN.md §12): instrumentation never perturbs
// results.  The same workload run with tracing + metrics collection fully
// enabled and fully disabled must produce byte-identical SimulationResults
// and array values at every worker count — the instrumentation layer is
// write-only observation, and this test is the gate that keeps it so.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "advisor/advisor.hpp"
#include "core/counting_interpreter.hpp"
#include "core/dataflow_interpreter.hpp"
#include "core/simulator.hpp"
#include "kernels/livermore.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/sim_runtime.hpp"

namespace sap {
namespace {

struct Workload {
  std::string label;
  CompiledProgram program;
};

const std::vector<Workload>& workloads() {
  static const std::vector<Workload> out = [] {
    std::vector<Workload> w;
    w.push_back({"fig1/k01_hydro", build_k1_hydro()});
    w.push_back({"fig5/k18_hydro2d_400", build_k18_explicit_hydro_2d(400)});
    return w;
  }();
  return out;
}

/// One run: counting mode for workers == npos, else serial (0) or sharded.
constexpr unsigned kCounting = static_cast<unsigned>(-1);

SimulationResult snapshot_run(const CompiledProgram& prog,
                              const MachineConfig& config, unsigned workers,
                              std::unique_ptr<Machine>& machine_out) {
  machine_out = std::make_unique<Machine>(config);
  materialize_arrays(prog, *machine_out);
  if (workers == kCounting) {
    run_counting(prog, *machine_out);
  } else if (workers == 0) {
    run_dataflow_serial(prog, *machine_out);
  } else {
    run_dataflow_sharded(prog, *machine_out, ShardRuntimeOptions{workers});
  }
  return machine_out->snapshot(prog.name());
}

void expect_byte_identical(const SimulationResult& got,
                           const SimulationResult& want, const Machine& got_m,
                           const Machine& want_m, const std::string& label) {
  EXPECT_EQ(got.totals, want.totals) << label;
  ASSERT_EQ(got.per_pe.size(), want.per_pe.size()) << label;
  for (std::size_t pe = 0; pe < got.per_pe.size(); ++pe) {
    EXPECT_EQ(got.per_pe[pe], want.per_pe[pe]) << label << " pe=" << pe;
  }
  EXPECT_EQ(got.network, want.network) << label;
  EXPECT_EQ(got.cache_totals.hits, want.cache_totals.hits) << label;
  EXPECT_EQ(got.cache_totals.misses, want.cache_totals.misses) << label;
  EXPECT_EQ(got.cache_totals.evictions, want.cache_totals.evictions) << label;
  EXPECT_EQ(got.cache_totals.invalidations, want.cache_totals.invalidations)
      << label;
  EXPECT_EQ(got.max_link_load, want.max_link_load) << label;
  EXPECT_EQ(got.contention_factor, want.contention_factor) << label;
  EXPECT_EQ(got.reinit_messages, want.reinit_messages) << label;
  for (const auto& want_array : want_m.arrays()) {
    const SaArray& got_array = got_m.arrays().by_name(want_array->name());
    ASSERT_EQ(got_array.defined_count(), want_array->defined_count())
        << label << " " << want_array->name();
    for (std::int64_t i = 0; i < want_array->element_count(); ++i) {
      if (!want_array->is_defined(i)) continue;
      EXPECT_EQ(got_array.read(i), want_array->read(i))
          << label << " " << want_array->name() << "[" << i << "]";
    }
  }
}

/// Runs a workload with all instrumentation off, then again with tracing
/// and metrics collection on, and demands byte-identical results.
void check_inert(const CompiledProgram& prog, const MachineConfig& config,
                 unsigned workers, const std::string& label) {
  obs::stop_tracing();
  obs::set_metrics_collection(false);
  std::unique_ptr<Machine> plain_machine;
  const SimulationResult plain =
      snapshot_run(prog, config, workers, plain_machine);

  obs::start_tracing();
  obs::set_metrics_collection(true);
  std::unique_ptr<Machine> traced_machine;
  const SimulationResult traced =
      snapshot_run(prog, config, workers, traced_machine);
  obs::stop_tracing();
  obs::set_metrics_collection(false);

  expect_byte_identical(traced, plain, *traced_machine, *plain_machine,
                        label);
}

TEST(TraceInertnessTest, ResultsIdenticalWithTracingOnAndOff) {
  const MachineConfig config =
      MachineConfig{}.with_pes(16).with_partition(PartitionKind::kModulo);
  for (const auto& w : workloads()) {
    check_inert(w.program, config, kCounting, w.label + "/counting");
    check_inert(w.program, config, 0, w.label + "/serial");
    for (const unsigned workers : {1u, 2u, 8u}) {
      check_inert(w.program, config, workers,
                  w.label + "/sharded-w" + std::to_string(workers));
    }
  }
  obs::clear_trace();
}

TEST(TraceInertnessTest, TracedRunIsAlsoIdenticalAcrossWorkerCounts) {
  // Tracing on, 1 vs 8 workers: the sharded-equivalence guarantee holds
  // while instrumented, not just when nobody is watching.
  const MachineConfig config = MachineConfig{}.with_pes(16);
  const CompiledProgram& prog = workloads()[1].program;
  obs::start_tracing();
  obs::set_metrics_collection(true);
  std::unique_ptr<Machine> one_machine;
  const SimulationResult one = snapshot_run(prog, config, 1, one_machine);
  std::unique_ptr<Machine> eight_machine;
  const SimulationResult eight = snapshot_run(prog, config, 8, eight_machine);
  obs::stop_tracing();
  obs::set_metrics_collection(false);
  expect_byte_identical(eight, one, *eight_machine, *one_machine,
                        "traced/w1-vs-w8");
  obs::clear_trace();
}

TEST(TraceInertnessTest, TraceCoversTheInstrumentedSubsystems) {
  // A fig5 run under tracing must yield a well-formed trace with spans or
  // counters from at least four subsystems (acceptance criterion).
  obs::reset_metrics();
  obs::start_tracing();
  obs::set_metrics_collection(true);
  const CompiledProgram prog = build_k18_explicit_hydro_2d(400);
  const Simulator sim(MachineConfig{}.with_pes(16));
  (void)sim.run(prog, ExecutionMode::kDataflow);
  AdvisorOptions options;
  options.validate_top_k = 1;
  (void)advise(prog, MachineConfig{}.with_pes(16), options, nullptr);
  // The joint strategy's span and counters must be observable too.
  AdvisorOptions joint_options;
  joint_options.strategy = AdvisorStrategy::kJoint;
  joint_options.measurement_budget = 4;
  joint_options.joint_measurement_budget = 4;
  (void)advise(prog, MachineConfig{}.with_pes(16), joint_options, nullptr);
  obs::stop_tracing();
  obs::set_metrics_collection(false);

  EXPECT_GT(obs::trace_event_count(), 0u);
  std::ostringstream out;
  obs::write_chrome_trace(out);
  const std::string json = out.str();

  std::set<std::string> cats;
  for (const char* cat :
       {"compile", "runtime", "cache", "network", "advisor", "sweep"}) {
    if (json.find("\"cat\":\"" + std::string(cat) + "\"") !=
        std::string::npos) {
      cats.insert(cat);
    }
  }
  EXPECT_GE(cats.size(), 4u) << json.substr(0, 2000);
  EXPECT_NE(json.find("\"cat\":\"compile\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"runtime\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"cache\""), std::string::npos);
  // The joint descent shows up as its own advisor-phase span, and its
  // counters land in the deterministic metrics section.
  EXPECT_NE(json.find("\"name\":\"joint\""), std::string::npos);
  EXPECT_NE(json.find("advisor/joint_rounds"), std::string::npos);
  obs::clear_trace();
}

}  // namespace
}  // namespace sap
