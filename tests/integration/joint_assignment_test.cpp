// Acceptance differential for per-array partition assignment (ISSUE 10):
// a heterogeneous array->scheme mapping must be invisible to every
// execution semantics.  For mixed assignments over the mixed-shape
// synthetics and a registry kernel, SimulationResults and array values
// must be byte-identical across
//   - the tree-walk engine and the bytecode engine with and without the
//     optimizer tier, and
//   - the counting interpreter, the serial dataflow oracle, and the
//     sharded dataflow runtime at 1/2/8 replay workers.
// Error semantics (BoundsError, DeadlockError) must also be unchanged by
// per-array overrides, the joint advisor must never rank behind the
// scalar beam (and must strictly beat it on the designed mixed
// synthetics), and joint reports must not depend on the worker count.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "advisor/advisor.hpp"
#include "advisor/search.hpp"
#include "core/bytecode.hpp"
#include "core/counting_interpreter.hpp"
#include "core/dataflow_interpreter.hpp"
#include "core/program_builder.hpp"
#include "core/simulator.hpp"
#include "kernels/livermore.hpp"
#include "kernels/synthetic.hpp"
#include "runtime/sim_runtime.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace sap {
namespace {

struct Workload {
  std::string label;
  CompiledProgram program;
};

const std::vector<Workload>& workloads() {
  static const std::vector<Workload> list = [] {
    std::vector<Workload> out;
    // Small instances of the A9 mixed-shape synthetics (skew = a whole
    // multiple of pages * PEs at the fixed test page size).
    out.push_back({"mixed_skew_rate", make_mixed_skew_vs_rate(1024, 256)});
    out.push_back({"mixed_multigroup", make_mixed_multigroup(1024, 256)});
    out.push_back({"k02_iccg", kernel_by_id("k02_iccg").build()});
    return out;
  }();
  return list;
}

/// Heterogeneous assignments exercised against every workload: every
/// scheme appears somewhere, the block-cyclic block varies, and at least
/// one named array keeps the machine default.
std::vector<MachineConfig> mixed_configs() {
  const MachineConfig base = MachineConfig{}.with_pes(8);
  return {
      base.with_array_partition("A", PartitionKind::kBlock)
          .with_array_partition("B", PartitionKind::kBlockCyclic, 4),
      base.with_partition(PartitionKind::kBlock)
          .with_array_partition("B", PartitionKind::kModulo)
          .with_array_partition("C", PartitionKind::kBlockCyclic, 2),
      base.with_partition(PartitionKind::kBlockCyclic)
          .with_block_cyclic_pages(2)
          .with_array_partition("A", PartitionKind::kBlockCyclic, 8)
          .with_array_partition("C", PartitionKind::kBlock),
  };
}

// Recompile from a cloned AST so node-keyed tables stay coherent.
CompiledProgram with_engine(const CompiledProgram& prog, EvalEngine engine,
                            BytecodeOpt opt = BytecodeOpt::kOn) {
  return compile(clone(prog.program), engine, opt);
}

enum class Mode { kCounting, kSerial, kSharded };

SimulationResult run_mode(const CompiledProgram& prog,
                          const MachineConfig& config, Mode mode,
                          unsigned workers,
                          std::unique_ptr<Machine>& machine_out) {
  machine_out = std::make_unique<Machine>(config);
  materialize_arrays(prog, *machine_out);
  switch (mode) {
    case Mode::kCounting:
      run_counting(prog, *machine_out);
      break;
    case Mode::kSerial:
      run_dataflow_serial(prog, *machine_out);
      break;
    case Mode::kSharded:
      run_dataflow_sharded(prog, *machine_out, ShardRuntimeOptions{workers});
      break;
  }
  return machine_out->snapshot(prog.name());
}

void expect_byte_identical(const SimulationResult& got,
                           const SimulationResult& want, const Machine& got_m,
                           const Machine& want_m, const std::string& label) {
  EXPECT_EQ(got.totals, want.totals) << label;
  ASSERT_EQ(got.per_pe.size(), want.per_pe.size()) << label;
  for (std::size_t pe = 0; pe < got.per_pe.size(); ++pe) {
    EXPECT_EQ(got.per_pe[pe], want.per_pe[pe]) << label << " pe=" << pe;
  }
  EXPECT_EQ(got.network, want.network) << label;
  EXPECT_EQ(got.cache_totals.hits, want.cache_totals.hits) << label;
  EXPECT_EQ(got.cache_totals.misses, want.cache_totals.misses) << label;

  for (const auto& want_array : want_m.arrays()) {
    const SaArray& got_array = got_m.arrays().by_name(want_array->name());
    ASSERT_EQ(got_array.defined_count(), want_array->defined_count())
        << label << " " << want_array->name();
    for (std::int64_t i = 0; i < want_array->element_count(); ++i) {
      if (!want_array->is_defined(i)) continue;
      EXPECT_EQ(got_array.read(i), want_array->read(i))
          << label << " " << want_array->name() << "[" << i << "]";
    }
  }
}

TEST(JointAssignmentTest, HeterogeneousAssignmentsAllEnginesModesAgree) {
  for (const auto& w : workloads()) {
    for (const MachineConfig& config : mixed_configs()) {
      const CompiledProgram tree = with_engine(w.program, EvalEngine::kTree);
      const CompiledProgram bytecode =
          with_engine(w.program, EvalEngine::kBytecode);
      const CompiledProgram bytecode_raw =
          with_engine(w.program, EvalEngine::kBytecode, BytecodeOpt::kOff);
      ASSERT_EQ(tree.bytecode, nullptr);
      ASSERT_NE(bytecode.bytecode, nullptr);

      std::unique_ptr<Machine> base_machine;
      const SimulationResult base =
          run_mode(tree, config, Mode::kCounting, 0, base_machine);

      struct Variant {
        const CompiledProgram* prog;
        Mode mode;
        unsigned workers;
        const char* name;
      };
      const std::vector<Variant> variants = {
          {&bytecode, Mode::kCounting, 0, "bytecode/counting"},
          {&bytecode_raw, Mode::kCounting, 0, "bytecode-raw/counting"},
          {&tree, Mode::kSerial, 0, "tree/serial"},
          {&bytecode, Mode::kSerial, 0, "bytecode/serial"},
          {&bytecode_raw, Mode::kSerial, 0, "bytecode-raw/serial"},
          {&tree, Mode::kSharded, 1, "tree/sharded-w1"},
          {&bytecode, Mode::kSharded, 1, "bytecode/sharded-w1"},
          {&tree, Mode::kSharded, 2, "tree/sharded-w2"},
          {&bytecode, Mode::kSharded, 2, "bytecode/sharded-w2"},
          {&tree, Mode::kSharded, 8, "tree/sharded-w8"},
          {&bytecode, Mode::kSharded, 8, "bytecode/sharded-w8"},
          {&bytecode_raw, Mode::kSharded, 8, "bytecode-raw/sharded-w8"},
      };
      for (const Variant& v : variants) {
        std::unique_ptr<Machine> machine;
        const SimulationResult got =
            run_mode(*v.prog, config, v.mode, v.workers, machine);
        expect_byte_identical(got, base, *machine, *base_machine,
                              w.label + "/" + config.to_string() + "/" +
                                  v.name);
      }
    }
  }
}

TEST(JointAssignmentTest, ErrorParityUnderMixedAssignment) {
  // Out of bounds: the trap fires regardless of which scheme owns the
  // offending array.
  ProgramBuilder oob("oob_mixed");
  oob.array("A", {8});
  oob.begin_loop("K", 1, 9);  // one past the end
  oob.assign("A", {oob.var("K")}, 1.0);
  oob.end_loop();
  const CompiledProgram oob_prog = oob.compile();
  const MachineConfig mixed =
      MachineConfig{}.with_pes(4).with_array_partition(
          "A", PartitionKind::kBlockCyclic, 2);
  EXPECT_THROW(Simulator(mixed).run(oob_prog), BoundsError);

  // Read before write: counting traps UndefinedReadError, the dataflow
  // machine expresses the same bug as PEs waiting forever — per-array
  // overrides must not change either verdict.
  ProgramBuilder rbw("rbw_mixed");
  rbw.array("A", {8});
  rbw.array("OUT", {8});
  rbw.begin_loop("K", 1, 8);
  rbw.assign("OUT", {rbw.var("K")}, rbw.at("A", {rbw.var("K")}));
  rbw.end_loop();
  const CompiledProgram rbw_prog = rbw.compile();
  const MachineConfig mixed2 =
      MachineConfig{}
          .with_pes(4)
          .with_array_partition("A", PartitionKind::kBlock)
          .with_array_partition("OUT", PartitionKind::kBlockCyclic, 2);
  EXPECT_THROW(Simulator(mixed2).run(rbw_prog, ExecutionMode::kCounting),
               UndefinedReadError);
  EXPECT_THROW(Simulator(mixed2).run(rbw_prog, ExecutionMode::kDataflow),
               DeadlockError);
}

TEST(JointAssignmentTest, JointNeverWorseAndStrictlyBetterOnMixed) {
  // The bench gate (A9) in miniature: on the designed mixed-shape
  // synthetic the joint pick must strictly beat the best uniform answer,
  // and by construction can never be worse.
  const MachineConfig base =
      MachineConfig{}.with_pes(16).with_page_size(32).with_cache(256);
  const CompiledProgram program = make_mixed_skew_vs_rate(16384, 4096);
  AdvisorOptions options;
  options.page_sizes = {16, 32, 64};
  options.measurement_budget = 16;
  options.joint_measurement_budget = 24;

  const AdvisorReport scalar = advise_beam(program, base, options);
  options.strategy = AdvisorStrategy::kJoint;
  const AdvisorReport joint = advise(program, base, options);

  EXPECT_LE(joint.best().measured_remote_fraction,
            scalar.best().measured_remote_fraction);
  EXPECT_LT(joint.best().measured_remote_fraction,
            scalar.best().measured_remote_fraction);
  EXPECT_EQ(joint.best().measured_remote_fraction, 0.0);
  EXPECT_FALSE(joint.best().config.per_array.empty());
  // The baseline (the paper's modulo default) rides along, measured.
  ASSERT_NE(joint.baseline(), nullptr);
  EXPECT_TRUE(joint.baseline()->validated);
}

TEST(JointAssignmentTest, JointReportIsWorkerCountInvariant) {
  const MachineConfig base =
      MachineConfig{}.with_pes(8).with_page_size(32).with_cache(128);
  const CompiledProgram program = make_mixed_skew_vs_rate(1024, 256);
  AdvisorOptions options;
  options.strategy = AdvisorStrategy::kJoint;
  options.measurement_budget = 8;
  options.joint_measurement_budget = 8;

  std::string reference;
  for (const unsigned workers : {1u, 2u, 8u}) {
    ThreadPool pool(workers);
    const std::string report =
        advise(program, base, options, &pool).report();
    if (reference.empty()) {
      reference = report;
    } else {
      EXPECT_EQ(report, reference) << "workers=" << workers;
    }
  }
}

TEST(JointAssignmentTest, PinnedArraysAreNeverMoved) {
  // A manual --assign pin must survive into every candidate the search
  // reports, machine-level scheme moves included.
  const MachineConfig base =
      MachineConfig{}.with_pes(8).with_page_size(32).with_cache(128)
          .with_array_partition("B", PartitionKind::kBlockCyclic, 4);
  const CompiledProgram program = make_mixed_skew_vs_rate(1024, 256);
  AdvisorOptions options;
  options.strategy = AdvisorStrategy::kJoint;
  options.measurement_budget = 8;
  options.joint_measurement_budget = 8;
  options.pinned_arrays = {"B"};

  const AdvisorReport report = advise(program, base, options);
  for (const AdvisorCandidate& c : report.candidates) {
    const ArrayPartitionSpec spec = c.config.partition_spec_for("B");
    EXPECT_EQ(spec.partition, PartitionKind::kBlockCyclic) << c.label();
    EXPECT_EQ(spec.block_cyclic_pages, 4) << c.label();
  }
}

}  // namespace
}  // namespace sap
