// Oracle test: the production PageCache against a deliberately naive
// reference implementation, step-for-step, under long random traffic with
// interleaved generation bumps and invalidations.  Any divergence in
// hit/miss behaviour or eviction policy shows up immediately.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/page_cache.hpp"
#include "support/rng.hpp"

namespace sap {
namespace {

/// O(n)-per-op reference cache: a plain vector ordered by recency
/// (LRU) or insertion (FIFO).
class ReferenceCache {
 public:
  ReferenceCache(std::int64_t frames, ReplacementPolicy policy)
      : frames_(frames), policy_(policy) {}

  bool lookup(PageId page, std::uint64_t generation) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].page == page) {
        if (entries_[i].generation != generation) {
          entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
          return false;
        }
        if (policy_ == ReplacementPolicy::kLru) {
          auto e = entries_[i];
          entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
          entries_.push_back(e);
        }
        return true;
      }
    }
    return false;
  }

  void insert(PageId page, std::uint64_t generation) {
    for (auto& e : entries_) {
      if (e.page == page) {
        e.generation = generation;
        return;
      }
    }
    if (static_cast<std::int64_t>(entries_.size()) >= frames_) {
      entries_.erase(entries_.begin());  // front = LRU victim / oldest
    }
    entries_.push_back({page, generation});
  }

  void invalidate_array(ArrayId array) {
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [&](const Entry& e) {
                                    return e.page.array == array;
                                  }),
                   entries_.end());
  }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    PageId page;
    std::uint64_t generation;
  };
  std::int64_t frames_;
  ReplacementPolicy policy_;
  std::vector<Entry> entries_;
};

class CacheOracle : public ::testing::TestWithParam<int> {};

TEST_P(CacheOracle, AgreesWithReferenceUnderRandomTraffic) {
  const auto policy = static_cast<ReplacementPolicy>(GetParam());
  PageCache cache(8 * 32, 32, policy);
  ReferenceCache oracle(8, policy);

  SplitMix64 rng(0xFEED);
  std::vector<std::uint64_t> generations(4, 0);
  for (int step = 0; step < 20000; ++step) {
    const auto action = rng.next_below(100);
    const ArrayId array = static_cast<ArrayId>(rng.next_below(4));
    if (action < 90) {
      const PageId page{array, static_cast<PageIndex>(rng.next_below(24))};
      const std::uint64_t gen = generations[array];
      const bool got = cache.lookup(page, gen);
      const bool want = oracle.lookup(page, gen);
      ASSERT_EQ(got, want) << "step " << step << " " << page.to_string();
      if (!got) {
        cache.insert(page, gen);
        oracle.insert(page, gen);
      }
    } else if (action < 95) {
      ++generations[array];  // §5 re-initialization: stale entries decay
    } else {
      cache.invalidate_array(array);
      oracle.invalidate_array(array);
    }
    ASSERT_EQ(static_cast<std::size_t>(cache.size()), oracle.size())
        << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(LruAndFifo, CacheOracle,
                         ::testing::Values(0, 1));  // LRU, FIFO

}  // namespace
}  // namespace sap
