#include "cache/page_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace sap {
namespace {

TEST(PageCacheTest, FrameCountIsCapacityOverPageSize) {
  // §6: cache fixed at 256 elements; the number of frames follows the
  // page size (8 frames at ps 32, 4 at ps 64).
  EXPECT_EQ(PageCache(256, 32).frame_count(), 8);
  EXPECT_EQ(PageCache(256, 64).frame_count(), 4);
  EXPECT_EQ(PageCache(0, 32).frame_count(), 0);
}

TEST(PageCacheTest, DisabledCacheAlwaysMisses) {
  PageCache cache(0, 32);
  EXPECT_FALSE(cache.enabled());
  cache.insert({0, 0}, 0);
  EXPECT_FALSE(cache.lookup({0, 0}, 0));
  EXPECT_EQ(cache.size(), 0);
}

TEST(PageCacheTest, HitAfterInsert) {
  PageCache cache(256, 32);
  EXPECT_FALSE(cache.lookup({0, 1}, 0));
  cache.insert({0, 1}, 0);
  EXPECT_TRUE(cache.lookup({0, 1}, 0));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PageCacheTest, LruEvictsLeastRecentlyUsed) {
  PageCache cache(2 * 32, 32, ReplacementPolicy::kLru);  // 2 frames
  cache.insert({0, 0}, 0);
  cache.insert({0, 1}, 0);
  EXPECT_TRUE(cache.lookup({0, 0}, 0));  // 0 now most recent
  cache.insert({0, 2}, 0);               // evicts page 1
  EXPECT_TRUE(cache.contains({0, 0}, 0));
  EXPECT_FALSE(cache.contains({0, 1}, 0));
  EXPECT_TRUE(cache.contains({0, 2}, 0));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(PageCacheTest, FifoIgnoresRecency) {
  PageCache cache(2 * 32, 32, ReplacementPolicy::kFifo);
  cache.insert({0, 0}, 0);
  cache.insert({0, 1}, 0);
  EXPECT_TRUE(cache.lookup({0, 0}, 0));  // does not refresh under FIFO
  cache.insert({0, 2}, 0);               // evicts oldest: page 0
  EXPECT_FALSE(cache.contains({0, 0}, 0));
  EXPECT_TRUE(cache.contains({0, 1}, 0));
}

TEST(PageCacheTest, RandomPolicyEvictsSomething) {
  PageCache cache(2 * 32, 32, ReplacementPolicy::kRandom, /*seed=*/7);
  cache.insert({0, 0}, 0);
  cache.insert({0, 1}, 0);
  cache.insert({0, 2}, 0);
  EXPECT_EQ(cache.size(), 2);
  EXPECT_TRUE(cache.contains({0, 2}, 0) || cache.contains({0, 1}, 0) ||
              cache.contains({0, 0}, 0));
}

TEST(PageCacheTest, GenerationMismatchIsMissAndDrop) {
  // §5: a re-initialized array's cached pages are stale.
  PageCache cache(256, 32);
  cache.insert({0, 3}, /*generation=*/0);
  EXPECT_FALSE(cache.lookup({0, 3}, /*generation=*/1));
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_FALSE(cache.contains({0, 3}, 0));
}

TEST(PageCacheTest, InsertRefreshesGeneration) {
  PageCache cache(256, 32);
  cache.insert({0, 3}, 0);
  cache.insert({0, 3}, 2);
  EXPECT_TRUE(cache.lookup({0, 3}, 2));
  EXPECT_EQ(cache.size(), 1);
}

TEST(PageCacheTest, InvalidateArrayDropsOnlyThatArray) {
  PageCache cache(256, 32);
  cache.insert({0, 0}, 0);
  cache.insert({1, 0}, 0);
  cache.insert({0, 5}, 0);
  cache.invalidate_array(0);
  EXPECT_FALSE(cache.contains({0, 0}, 0));
  EXPECT_FALSE(cache.contains({0, 5}, 0));
  EXPECT_TRUE(cache.contains({1, 0}, 0));
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(PageCacheTest, ClearEmptiesEverything) {
  PageCache cache(256, 32);
  cache.insert({0, 0}, 0);
  cache.insert({1, 1}, 0);
  cache.clear();
  EXPECT_EQ(cache.size(), 0);
}

TEST(PageCacheTest, HitRate) {
  PageCache cache(256, 32);
  cache.insert({0, 0}, 0);
  cache.lookup({0, 0}, 0);
  cache.lookup({0, 1}, 0);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
}

TEST(PageCacheTest, RejectsBadConfig) {
  EXPECT_THROW(PageCache(-1, 32), ConfigError);
  EXPECT_THROW(PageCache(256, 0), ConfigError);
}

class CacheInvariants
    : public ::testing::TestWithParam<std::tuple<int, std::int64_t>> {};

TEST_P(CacheInvariants, NeverExceedsFrameCountUnderRandomTraffic) {
  const auto [policy_idx, capacity] = GetParam();
  PageCache cache(capacity, 32, static_cast<ReplacementPolicy>(policy_idx),
                  /*seed=*/11);
  SplitMix64 rng(99);
  for (int i = 0; i < 5000; ++i) {
    const PageId page{static_cast<ArrayId>(rng.next_below(4)),
                      static_cast<PageIndex>(rng.next_below(200))};
    if (!cache.lookup(page, 0)) cache.insert(page, 0);
    ASSERT_LE(cache.size(), cache.frame_count());
  }
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 5000u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CacheInvariants,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values<std::int64_t>(32, 256, 1024)));

TEST(CacheInvariants, LruRetainsHotPageForever) {
  // A page touched between every insertion is never evicted.
  PageCache cache(3 * 32, 32, ReplacementPolicy::kLru);
  cache.insert({0, 999}, 0);
  for (PageIndex p = 0; p < 100; ++p) {
    ASSERT_TRUE(cache.lookup({0, 999}, 0)) << "evicted at p=" << p;
    cache.insert({0, p}, 0);
  }
}

}  // namespace
}  // namespace sap
