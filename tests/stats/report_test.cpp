#include "stats/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "stats/series.hpp"
#include "support/error.hpp"

namespace sap {
namespace {

std::vector<SweepSeries> sample_series() {
  SweepSeries cache{"Cache", {{2, 1.0}, {4, 1.0}}};
  SweepSeries nocache{"No Cache", {{2, 21.0}, {4, 21.0}}};
  return {cache, nocache};
}

TEST(SeriesTest, YAtAndExtremes) {
  const SweepSeries s{"s", {{2, 5.0}, {4, 1.0}}};
  EXPECT_DOUBLE_EQ(s.y_at(2), 5.0);
  EXPECT_DOUBLE_EQ(s.max_y(), 5.0);
  EXPECT_DOUBLE_EQ(s.min_y(), 1.0);
  EXPECT_THROW(s.y_at(3), Error);
}

TEST(ReportTest, SeriesTableHasAllColumns) {
  const std::string out = series_table(sample_series(), "PEs", false);
  EXPECT_NE(out.find("PEs"), std::string::npos);
  EXPECT_NE(out.find("Cache"), std::string::npos);
  EXPECT_NE(out.find("No Cache"), std::string::npos);
  EXPECT_NE(out.find("21.0000"), std::string::npos);
}

TEST(ReportTest, PercentMode) {
  const std::string out = series_table(sample_series(), "PEs", true);
  EXPECT_NE(out.find("%"), std::string::npos);
}

TEST(ReportTest, MissingPointsDashed) {
  SweepSeries a{"a", {{1, 1.0}}};
  SweepSeries b{"b", {{2, 2.0}}};
  const std::string out = series_table({a, b}, "x", false);
  EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(ReportTest, CsvRoundTrip) {
  std::ostringstream os;
  series_csv(os, sample_series(), "pes");
  const std::string csv = os.str();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "pes,Cache,No Cache");
  EXPECT_NE(csv.find("\n2,1.000000,21.000000"), std::string::npos);
}

TEST(ReportTest, ChartRenders) {
  const std::string out =
      series_chart(sample_series(), "Figure 1", "PEs", "% remote");
  EXPECT_NE(out.find("Figure 1"), std::string::npos);
  EXPECT_NE(out.find("Cache"), std::string::npos);
}

TEST(ReportTest, PerPeTable) {
  SimulationResult result;
  result.per_pe.resize(2);
  result.per_pe[0].writes = 3;
  result.per_pe[0].local_reads = 5;
  result.per_pe[1].remote_reads = 2;
  const std::string out = per_pe_table(result);
  EXPECT_NE(out.find("PE"), std::string::npos);
  EXPECT_NE(out.find("100.00%"), std::string::npos);  // PE1 all-remote
}

}  // namespace
}  // namespace sap
