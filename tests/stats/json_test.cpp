#include "stats/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace sap {
namespace {

TEST(JsonTest, EscapesSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string("ctl\x01", 4)), "ctl\\u0001");
}

TEST(JsonTest, WriterNestsObjectsAndArrays) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.key("name").value("sap");
  w.key("tags").begin_array().value("a").value("b").end_array();
  w.key("nested").begin_object().key("n").value(std::int64_t{3}).end_object();
  w.key("ok").value(true);
  w.end_object();
  EXPECT_EQ(out.str(),
            R"({"name":"sap","tags":["a","b"],"nested":{"n":3},"ok":true})");
}

TEST(JsonTest, NumbersRoundTripAndNonFiniteBecomesNull) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_array();
  w.value(0.5);
  w.value(std::int64_t{-7});
  w.value(std::uint64_t{18446744073709551615ull});
  w.value(std::nan(""));
  w.end_array();
  EXPECT_EQ(out.str(), "[0.5,-7,18446744073709551615,null]");
}

TEST(JsonTest, SeriesJsonShape) {
  SweepSeries s;
  s.label = "Cache, ps 32";
  s.add(1, 0.0);
  s.add(2, 12.5);
  std::ostringstream out;
  series_json(out, "fig1", {s}, "PEs");
  EXPECT_EQ(out.str(),
            "{\"artifact\":\"fig1\",\"x\":\"PEs\",\"series\":"
            "[{\"label\":\"Cache, ps 32\",\"points\":"
            "[{\"x\":1,\"y\":0},{\"x\":2,\"y\":12.5}]}]}\n");
}

TEST(JsonTest, TableJsonShape) {
  std::ostringstream out;
  table_json(out, "a7", {"kernel", "best"},
             {{"k01", "block"}, {"k02", "modulo"}});
  EXPECT_EQ(out.str(),
            "{\"artifact\":\"a7\",\"columns\":[\"kernel\",\"best\"],"
            "\"rows\":[[\"k01\",\"block\"],[\"k02\",\"modulo\"]]}\n");
}

}  // namespace
}  // namespace sap
