#include "stats/counters.hpp"

#include <gtest/gtest.h>

namespace sap {
namespace {

TEST(CountersTest, RecordEachKind) {
  AccessCounters c;
  c.record(AccessKind::kWrite);
  c.record(AccessKind::kLocalRead);
  c.record(AccessKind::kCachedRead);
  c.record(AccessKind::kRemoteRead);
  c.record(AccessKind::kRemoteRead);
  EXPECT_EQ(c.writes, 1u);
  EXPECT_EQ(c.local_reads, 1u);
  EXPECT_EQ(c.cached_reads, 1u);
  EXPECT_EQ(c.remote_reads, 2u);
  EXPECT_EQ(c.total_reads(), 4u);
}

TEST(CountersTest, RemoteFractionPerPaperDefinition) {
  // §7: "% of Reads Remote" — writes are excluded from the denominator.
  AccessCounters c;
  c.writes = 100;
  c.local_reads = 60;
  c.cached_reads = 20;
  c.remote_reads = 20;
  EXPECT_DOUBLE_EQ(c.remote_read_fraction(), 0.2);
}

TEST(CountersTest, ZeroReadsGiveZeroFraction) {
  AccessCounters c;
  c.writes = 10;
  EXPECT_DOUBLE_EQ(c.remote_read_fraction(), 0.0);
}

TEST(CountersTest, Merge) {
  AccessCounters a, b;
  a.writes = 1;
  a.remote_reads = 2;
  b.local_reads = 3;
  b.remote_reads = 4;
  a += b;
  EXPECT_EQ(a.writes, 1u);
  EXPECT_EQ(a.local_reads, 3u);
  EXPECT_EQ(a.remote_reads, 6u);
}

TEST(CountersTest, AccessKindNames) {
  EXPECT_EQ(to_string(AccessKind::kWrite), "write");
  EXPECT_EQ(to_string(AccessKind::kLocalRead), "local");
  EXPECT_EQ(to_string(AccessKind::kCachedRead), "cached");
  EXPECT_EQ(to_string(AccessKind::kRemoteRead), "remote");
}

}  // namespace
}  // namespace sap
