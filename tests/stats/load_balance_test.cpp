#include "stats/load_balance.hpp"

#include <gtest/gtest.h>

namespace sap {
namespace {

TEST(LoadBalanceTest, PerfectlyEven) {
  const auto lb = summarize_load({10, 10, 10, 10});
  EXPECT_DOUBLE_EQ(lb.mean, 10.0);
  EXPECT_DOUBLE_EQ(lb.min, 10.0);
  EXPECT_DOUBLE_EQ(lb.max, 10.0);
  EXPECT_DOUBLE_EQ(lb.stddev, 0.0);
  EXPECT_DOUBLE_EQ(lb.imbalance(), 1.0);
  EXPECT_DOUBLE_EQ(lb.coefficient_of_variation(), 0.0);
}

TEST(LoadBalanceTest, SkewedLoad) {
  const auto lb = summarize_load({0, 0, 0, 40});
  EXPECT_DOUBLE_EQ(lb.mean, 10.0);
  EXPECT_DOUBLE_EQ(lb.max, 40.0);
  EXPECT_DOUBLE_EQ(lb.imbalance(), 4.0);
  EXPECT_GT(lb.coefficient_of_variation(), 1.0);
}

TEST(LoadBalanceTest, EmptyAndZero) {
  const auto empty = summarize_load({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  const auto zeros = summarize_load({0, 0});
  EXPECT_DOUBLE_EQ(zeros.imbalance(), 0.0);  // guarded division
}

TEST(LoadBalanceTest, KnownStddev) {
  const auto lb = summarize_load({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(lb.mean, 5.0);
  EXPECT_DOUBLE_EQ(lb.stddev, 2.0);  // classic textbook example
}

}  // namespace
}  // namespace sap
