#!/usr/bin/env python3
"""Compare freshly emitted BENCH_*.json artifacts against their baselines.

Two artifact shapes are understood (auto-detected from the "artifact"
field):

- ``perf_simulator`` — timing rows joined on (workload, kernel, phase);
  the timing cells ("tree ms" and "bytecode ms", plus the ns/op value of
  micro rows) are compared as ratios and any slowdown beyond the
  threshold is reported.  The "stmt-exec geomean" summary row's speedup
  cell is additionally checked as an engine-level gate: a drop of more
  than 10% below the baseline geomean is a regression even when every
  individual timing cell is within threshold.  Timings are
  machine-dependent, so a machine-fingerprint mismatch
  (env/hardware_threads + env/compiler rows) SKIPS all ratio checks.
- ``ablation_search`` — advisor-quality rows joined on (kernel); the
  measured remote-fraction cells (modulo / enumerate / beam) are exact
  deterministic values, so ANY drift is reported regardless of the
  machine, and a "WORSE" verdict cell (the beam losing to the
  enumerator, impossible by construction) is always fatal to report.
- ``ablation_joint`` — same exact-compare discipline over the joint
  per-array assignment rows (modulo / beam / joint cells, "vs beam"
  verdict column).

Sub-resolution cells — a timing that rounds to "0.00" in either file —
are skipped rather than divided by: a ratio against (or of) zero is
noise at best and a ZeroDivisionError at worst.

Exit code is 0 by default — the perf-smoke CI job runs this as a
*non-fatal report step*, because shared-runner timing noise must not
gate merges (docs/BENCH_FORMAT.md).  Pass --fail-on-regression to make
regressions fatal for local use.

Usage:
  tools/bench_diff.py FRESH.json [BASELINE.json] [--threshold 0.15]
                      [--fail-on-regression]
  tools/bench_diff.py --self-test

BASELINE.json defaults to the committed repo-root twin of the fresh
artifact (BENCH_perf_simulator.json / BENCH_ablation_search.json /
BENCH_ablation_joint.json).
"""

import argparse
import json
import pathlib
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Columns holding comparable numbers, per artifact kind.  perf rows are
# irregular (see timing_cells); the deterministic advisor artifacts are
# uniform percent cells with a never-worse verdict column.
DETERMINISTIC_KINDS = {
    "ablation_search": {
        "values": ("modulo", "enumerate", "beam"),
        "verdict": "vs enumerate",
        "message": "beam ranked WORSE than enumerate — the never-worse "
                   "construction is broken",
    },
    "ablation_joint": {
        "values": ("modulo", "beam", "joint"),
        "verdict": "vs beam",
        "message": "joint ranked WORSE than the uniform beam — the "
                   "never-worse construction is broken",
    },
}


def load_artifact(path):
    with open(path, encoding="utf-8") as handle:
        artifact = json.load(handle)
    columns = artifact["columns"]
    rows = [dict(zip(columns, cells)) for cells in artifact["rows"]]
    return artifact.get("artifact", ""), rows


def row_key(kind, row):
    if kind in DETERMINISTIC_KINDS:
        return (row.get("kernel"),)
    return (row.get("workload"), row.get("kernel"), row.get("phase"))


def index_rows(kind, rows):
    return {row_key(kind, row): row for row in rows}


def parse_number(cell):
    """'12.34', '12.34%' or '3.32x' -> 12.34/3.32; '-'/unparseable -> None."""
    if isinstance(cell, str):
        cell = cell.rstrip("%x")
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def timing_cells(row):
    """(label, value) pairs of the comparable timings in one perf row."""
    out = []
    if row.get("phase") == "ns/op":
        out.append(("ns/op", parse_number(row.get("instances"))))
    for column in ("tree ms", "bytecode ms"):
        out.append((column, parse_number(row.get(column))))
    return [(label, value) for label, value in out if value is not None]


def value_cells(kind, row):
    if kind in DETERMINISTIC_KINDS:
        return [(column, parse_number(row.get(column)))
                for column in DETERMINISTIC_KINDS[kind]["values"]
                if parse_number(row.get(column)) is not None]
    return timing_cells(row)


def fingerprints_mismatch(fresh, baseline):
    """Fingerprint lines when the two perf artifacts disagree on the host."""
    keys = (("env", "hardware_threads", "count"),
            ("env", "compiler", "id"))
    mismatches = []
    for key in keys:
        fresh_value = fresh.get(key, {}).get("instances")
        base_value = baseline.get(key, {}).get("instances")
        if fresh_value != base_value:
            mismatches.append("%s: baseline %s vs fresh %s"
                              % (key[1], base_value, fresh_value))
    return mismatches


# Summary speedup rows whose "speedup" cell ("3.32x") is a same-machine
# ratio of ratios: dropping more than GEOMEAN_DROP below the baseline is a
# regression of the engine itself, not of one noisy timing cell.
GEOMEAN_KEYS = (("all", "-", "stmt-exec geomean"),)
GEOMEAN_DROP = 0.10


def geomean_regressions(fresh, baseline):
    """Regression lines for the summary speedup rows (same machine only)."""
    lines = []
    for key in GEOMEAN_KEYS:
        fresh_value = parse_number(fresh.get(key, {}).get("speedup"))
        base_value = parse_number(baseline.get(key, {}).get("speedup"))
        if fresh_value is None or base_value is None or base_value <= 0.0:
            continue
        ratio = fresh_value / base_value
        if ratio < 1.0 - GEOMEAN_DROP:
            lines.append(
                "%-40s %-12s %8.2fx -> %7.2fx  (%+5.1f%% — geomean dropped "
                "more than %.0f%%)" % (
                    "/".join(key), "speedup", base_value, fresh_value,
                    (ratio - 1.0) * 100.0, GEOMEAN_DROP * 100.0))
    return lines


def compare(fresh_path, baseline_path, threshold, out=sys.stdout):
    """Returns the regression lines (empty = clean).  Prints the report."""
    fresh_kind, fresh_rows = load_artifact(fresh_path)
    baseline_kind, baseline_rows = load_artifact(baseline_path)
    kind = fresh_kind or baseline_kind
    if fresh_kind != baseline_kind:
        print("bench_diff: artifact kinds differ (baseline %r vs fresh %r)"
              " — nothing comparable" % (baseline_kind, fresh_kind), file=out)
        return []
    fresh = index_rows(kind, fresh_rows)
    baseline = index_rows(kind, baseline_rows)

    if kind in DETERMINISTIC_KINDS:
        # Deterministic values: compare exactly, on any machine.
        threshold = 0.0
    else:
        # Timings are only comparable on the same machine; the artifact
        # embeds a fingerprint (docs/BENCH_FORMAT.md).  On a mismatch the
        # ratio checks are SKIPPED, not merely warned about: cross-machine
        # ratios are noise that would either cry wolf or lull.
        mismatches = fingerprints_mismatch(fresh, baseline)
        if mismatches:
            print("bench_diff: machine fingerprints differ — skipping all "
                  "cross-machine ratio checks", file=out)
            for line in mismatches:
                print("  " + line, file=out)
            return []

    regressions = []
    improvements = []
    if kind not in DETERMINISTIC_KINDS:
        regressions.extend(geomean_regressions(fresh, baseline))
    compared = 0
    sub_resolution = 0
    for key, base_row in baseline.items():
        fresh_row = fresh.get(key)
        if fresh_row is None:
            continue
        base_cells = dict(value_cells(kind, base_row))
        for label, fresh_value in value_cells(kind, fresh_row):
            base_value = base_cells.get(label)
            if base_value is None:
                continue
            # Sub-resolution cells: a value that rounds to zero carries no
            # magnitude to form a ratio with — skip instead of dividing.
            if base_value == 0.0 or fresh_value == 0.0:
                if fresh_value != base_value:
                    sub_resolution += 1
                else:
                    compared += 1
                continue
            compared += 1
            ratio = fresh_value / base_value
            line = "%-40s %-12s %8.2f -> %8.2f  (%+5.1f%%)" % (
                "/".join(str(part) for part in key), label,
                base_value, fresh_value, (ratio - 1.0) * 100.0)
            if ratio > 1.0 + threshold:
                regressions.append(line)
            elif ratio < 1.0 - threshold:
                improvements.append(line)
        if (kind in DETERMINISTIC_KINDS
                and fresh_row.get(
                    DETERMINISTIC_KINDS[kind]["verdict"]) == "WORSE"):
            regressions.append("%-40s %s" % (
                "/".join(str(k) for k in key),
                DETERMINISTIC_KINDS[kind]["message"]))

    print("bench_diff: %s — compared %d cells (threshold %.0f%%)"
          % (kind or "unknown artifact", compared, threshold * 100.0),
          file=out)
    if sub_resolution:
        print("  %d sub-resolution cell(s) skipped (a side rounds to 0.00)"
              % sub_resolution, file=out)
    missing = sorted(set(baseline) - set(fresh))
    if missing:
        print("  %d baseline row(s) missing from the fresh run:"
              % len(missing), file=out)
        for key in missing:
            print("    " + "/".join(str(part) for part in key), file=out)
    if improvements:
        print("improvements (> %.0f%% faster):" % (threshold * 100.0),
              file=out)
        for line in improvements:
            print("  " + line, file=out)
    if regressions:
        print("REGRESSIONS (> %.0f%% slower):" % (threshold * 100.0),
              file=out)
        for line in regressions:
            print("  " + line, file=out)
    else:
        print("no regressions beyond the threshold", file=out)
    return regressions


# ---------------------------------------------------------------------------
# Self-test: invoked from CI (tools/bench_diff.py --self-test) so the
# comparator cannot silently rot — it has no other test harness.
# ---------------------------------------------------------------------------

def _write_artifact(directory, name, artifact_id, columns, rows):
    path = pathlib.Path(directory) / name
    path.write_text(json.dumps(
        {"artifact": artifact_id, "columns": columns, "rows": rows}))
    return str(path)


def _perf_artifact(directory, name, tree_ms, threads="4", geomean=None):
    columns = ["workload", "kernel", "phase", "instances", "tree ms",
               "speedup"]
    rows = [["fig1", "k01_hydro", "stmt-exec", "1000", tree_ms, "-"],
            ["env", "hardware_threads", "count", threads, "-", "-"],
            ["env", "compiler", "id", "gcc-12", "-", "-"]]
    if geomean is not None:
        rows.append(["all", "-", "stmt-exec geomean", "-", "-", geomean])
    return _write_artifact(directory, name, "perf_simulator", columns, rows)


def _search_artifact(directory, name, beam, verdict="beats"):
    columns = ["kernel", "class", "modulo", "enumerate", "beam",
               "beam pick", "vs enumerate"]
    rows = [["k01_hydro", "skewed", "1.00%", "1.00%", beam, "block ps=16",
             verdict],
            ["k14_pic1d", "matched", "0.00%", "0.00%", "0.00%",
             "modulo ps=32", "ties"]]
    return _write_artifact(directory, name, "ablation_search", columns, rows)


def _joint_artifact(directory, name, joint, verdict="beats"):
    columns = ["kernel", "class", "modulo", "beam", "joint", "joint pick",
               "vs beam"]
    rows = [["syn_mixed_skew_rate", "mixed", "2.93%", "0.16%", joint,
             "block ps=256 [A=modulo,D=modulo]", verdict],
            ["k14_pic1d", "matched", "0.00%", "0.00%", "0.00%",
             "modulo ps=32", "ties"]]
    return _write_artifact(directory, name, "ablation_joint", columns, rows)


def self_test():
    import io
    failures = []

    def check(label, condition):
        print("%s %s" % ("ok  " if condition else "FAIL", label))
        if not condition:
            failures.append(label)

    with tempfile.TemporaryDirectory() as tmp:
        # 1. A baseline timing cell of "0.00" must be skipped, not divided
        #    by (the ZeroDivisionError regression this test pins down), and
        #    a fresh "0.00" against a nonzero baseline is equally skipped.
        base = _perf_artifact(tmp, "base_zero.json", "0.00")
        fresh = _perf_artifact(tmp, "fresh.json", "12.00")
        try:
            regs = compare(fresh, base, 0.15, out=io.StringIO())
            check("zero baseline cell is skipped without crashing",
                  regs == [])
            regs = compare(base, fresh, 0.15, out=io.StringIO())
            check("zero fresh cell is skipped without crashing", regs == [])
        except ZeroDivisionError:
            check("zero timing cell does not raise ZeroDivisionError", False)

        # 2. A real slowdown beyond the threshold is reported.
        slow = _perf_artifact(tmp, "slow.json", "24.00")
        ok = _perf_artifact(tmp, "ok.json", "12.00")
        regs = compare(slow, ok, 0.15, out=io.StringIO())
        check("2x slowdown is a regression", len(regs) == 1)
        regs = compare(ok, ok, 0.15, out=io.StringIO())
        check("identical artifacts are clean", regs == [])

        # 3. A fingerprint mismatch skips ratio checks entirely.
        other_host = _perf_artifact(tmp, "other.json", "24.00", threads="64")
        regs = compare(other_host, ok, 0.15, out=io.StringIO())
        check("fingerprint mismatch skips the 2x slowdown", regs == [])

        # 3b. The stmt-exec geomean speedup row: a >10% drop is a
        #     regression even though every timing cell is within threshold,
        #     a smaller wobble is clean, and the fingerprint skip applies
        #     to it like any other same-machine ratio.
        gbase = _perf_artifact(tmp, "gbase.json", "12.00", geomean="6.40x")
        gdrop = _perf_artifact(tmp, "gdrop.json", "12.00", geomean="5.00x")
        gwobble = _perf_artifact(tmp, "gwobble.json", "12.00",
                                 geomean="6.00x")
        gother = _perf_artifact(tmp, "gother.json", "12.00",
                                geomean="5.00x", threads="64")
        regs = compare(gdrop, gbase, 0.15, out=io.StringIO())
        check("geomean speedup drop beyond 10% is a regression",
              len(regs) == 1)
        regs = compare(gwobble, gbase, 0.15, out=io.StringIO())
        check("geomean wobble within 10% is clean", regs == [])
        regs = compare(gother, gbase, 0.15, out=io.StringIO())
        check("fingerprint mismatch skips the geomean check", regs == [])
        regs = compare(fresh, gbase, 0.15, out=io.StringIO())
        check("a fresh artifact without the geomean row is clean",
              regs == [])

        # 4. The search artifact is compared exactly on ANY machine (no
        #    fingerprint rows), including its all-zero matched-kernel row.
        sbase = _search_artifact(tmp, "sbase.json", "0.25%")
        same = _search_artifact(tmp, "ssame.json", "0.25%")
        drift = _search_artifact(tmp, "sdrift.json", "0.26%")
        regs = compare(same, sbase, 0.15, out=io.StringIO())
        check("identical search artifacts are clean", regs == [])
        regs = compare(drift, sbase, 0.15, out=io.StringIO())
        check("any search drift is a regression", len(regs) == 1)

        # 5. A WORSE verdict is always reported, even with equal numbers.
        worse = _search_artifact(tmp, "sworse.json", "0.25%",
                                 verdict="WORSE")
        regs = compare(worse, sbase, 0.15, out=io.StringIO())
        check("a WORSE search verdict is a regression", len(regs) == 1)

        # 6. Mixed artifact kinds refuse to compare rather than mis-join.
        regs = compare(fresh, sbase, 0.15, out=io.StringIO())
        check("mismatched artifact kinds compare nothing", regs == [])

        # 7. The joint artifact gets the same exact-compare discipline,
        #    keyed on its own "vs beam" verdict column.
        jbase = _joint_artifact(tmp, "jbase.json", "0.10%")
        jsame = _joint_artifact(tmp, "jsame.json", "0.10%")
        jdrift = _joint_artifact(tmp, "jdrift.json", "0.11%")
        jworse = _joint_artifact(tmp, "jworse.json", "0.10%",
                                 verdict="WORSE")
        regs = compare(jsame, jbase, 0.15, out=io.StringIO())
        check("identical joint artifacts are clean", regs == [])
        regs = compare(jdrift, jbase, 0.15, out=io.StringIO())
        check("any joint drift is a regression", len(regs) == 1)
        regs = compare(jworse, jbase, 0.15, out=io.StringIO())
        check("a WORSE joint verdict is a regression", len(regs) == 1)
        regs = compare(jbase, sbase, 0.15, out=io.StringIO())
        check("joint vs search artifacts compare nothing", regs == [])

    print("bench_diff self-test: %d failure(s)" % len(failures))
    return 1 if failures else 0


def default_baseline(fresh_path):
    kind, _ = load_artifact(fresh_path)
    name = "BENCH_%s.json" % (kind or "perf_simulator")
    return str(REPO_ROOT / name)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", nargs="?", help="freshly emitted BENCH json")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative slowdown that counts as a regression "
                             "(default 0.15 = 15%%; deterministic artifacts "
                             "always use 0)")
    parser.add_argument("--fail-on-regression", action="store_true")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded unit tests and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.fresh is None:
        parser.error("FRESH.json required (or --self-test)")

    baseline = args.baseline or default_baseline(args.fresh)
    regressions = compare(args.fresh, baseline, args.threshold)
    if regressions and args.fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
