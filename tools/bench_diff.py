#!/usr/bin/env python3
"""Compare a freshly emitted BENCH_perf_simulator.json against a baseline.

Rows are joined on (workload, kernel, phase); the timing cells ("tree ms"
and "bytecode ms", plus the ns/op value of micro rows) are compared and any
slowdown beyond the threshold is reported.

Exit code is 0 by default — the perf-smoke CI job runs this as a
*non-fatal report step*, because shared-runner timing noise must not gate
merges (docs/BENCH_FORMAT.md).  Pass --fail-on-regression to make
regressions fatal for local use.

Usage:
  tools/bench_diff.py FRESH.json [BASELINE.json] [--threshold 0.15]
                      [--fail-on-regression]

BASELINE.json defaults to the committed repo-root BENCH_perf_simulator.json.
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_perf_simulator.json"


def load_rows(path):
    with open(path, encoding="utf-8") as handle:
        artifact = json.load(handle)
    columns = artifact["columns"]
    rows = {}
    for cells in artifact["rows"]:
        row = dict(zip(columns, cells))
        key = (row.get("workload"), row.get("kernel"), row.get("phase"))
        rows[key] = row
    return rows


def parse_ms(cell):
    """'12.34' -> 12.34; '-' or unparseable -> None."""
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def timing_cells(row):
    """(label, value) pairs of the comparable timings in one row."""
    out = []
    if row.get("phase") == "ns/op":
        out.append(("ns/op", parse_ms(row.get("instances"))))
    for column in ("tree ms", "bytecode ms"):
        out.append((column, parse_ms(row.get(column))))
    return [(label, value) for label, value in out if value is not None]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly emitted BENCH json")
    parser.add_argument("baseline", nargs="?", default=str(DEFAULT_BASELINE))
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative slowdown that counts as a regression "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--fail-on-regression", action="store_true")
    args = parser.parse_args()

    fresh = load_rows(args.fresh)
    baseline = load_rows(args.baseline)

    # Timings are only comparable on the same machine; the artifact embeds
    # a fingerprint (hardware_threads + compiler, docs/BENCH_FORMAT.md).
    # On a mismatch the ratio checks are SKIPPED, not merely warned about:
    # cross-machine ratios are noise that would either cry wolf or lull.
    fingerprint_keys = (("env", "hardware_threads", "count"),
                       ("env", "compiler", "id"))
    mismatches = []
    for key in fingerprint_keys:
        fresh_value = fresh.get(key, {}).get("instances")
        base_value = baseline.get(key, {}).get("instances")
        if fresh_value != base_value:
            mismatches.append("%s: baseline %s vs fresh %s"
                              % (key[1], base_value, fresh_value))
    if mismatches:
        print("bench_diff: machine fingerprints differ — skipping all "
              "cross-machine ratio checks")
        for line in mismatches:
            print("  " + line)
        return 0

    regressions = []
    improvements = []
    compared = 0
    for key, base_row in baseline.items():
        fresh_row = fresh.get(key)
        if fresh_row is None:
            continue
        base_cells = dict(timing_cells(base_row))
        for label, fresh_value in timing_cells(fresh_row):
            base_value = base_cells.get(label)
            if base_value is None or base_value == 0.0:
                continue
            compared += 1
            ratio = fresh_value / base_value
            line = "%-40s %-12s %8.2f -> %8.2f  (%+5.1f%%)" % (
                "/".join(str(part) for part in key), label,
                base_value, fresh_value, (ratio - 1.0) * 100.0)
            if ratio > 1.0 + args.threshold:
                regressions.append(line)
            elif ratio < 1.0 - args.threshold:
                improvements.append(line)

    print("bench_diff: compared %d timing cells (threshold %.0f%%)"
          % (compared, args.threshold * 100.0))
    missing = sorted(set(baseline) - set(fresh))
    if missing:
        print("  %d baseline row(s) missing from the fresh run:" % len(missing))
        for key in missing:
            print("    " + "/".join(str(part) for part in key))
    if improvements:
        print("improvements (> %.0f%% faster):" % (args.threshold * 100.0))
        for line in improvements:
            print("  " + line)
    if regressions:
        print("REGRESSIONS (> %.0f%% slower):" % (args.threshold * 100.0))
        for line in regressions:
            print("  " + line)
    else:
        print("no regressions beyond the threshold")

    if regressions and args.fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
