#!/usr/bin/env python3
"""Validate and summarize a Chrome trace-event JSON file (SAPART_TRACE).

The trace format is documented in docs/TRACE_FORMAT.md: complete ("X")
span events with microsecond ts/dur, instant ("i") events, thread-name
metadata ("M"), and a final counter ("C") dump of the metrics registry.
This tool:

1. validates the structural contract (a JSON object with a traceEvents
   array; every event carries ph/name, X events carry cat/ts/dur) — a
   malformed artifact exits 1 so CI catches exporter rot, and
2. prints a per-phase wall-time table — total time, call count and mean
   per (category, name) span — plus the instant-event tallies and the
   deterministic counter totals, so `trace_summary.py run.trace` answers
   "where did the time go?" without opening Perfetto.

Exit codes: 0 valid trace, 1 validation failure, 2 usage error (missing
or unreadable file).

Usage:
  tools/trace_summary.py TRACE.json [--min-us 0.0]
  tools/trace_summary.py --self-test
"""

import argparse
import json
import pathlib
import sys
import tempfile

VALID_PHASES = {"X", "i", "M", "C"}


def validate(trace):
    """Returns a list of validation error strings (empty = valid)."""
    errors = []
    if not isinstance(trace, dict):
        return ["top level is not a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array traceEvents"]
    for i, event in enumerate(events):
        where = "traceEvents[%d]" % i
        if not isinstance(event, dict):
            errors.append("%s: not an object" % where)
            continue
        phase = event.get("ph")
        if phase not in VALID_PHASES:
            errors.append("%s: unknown phase %r" % (where, phase))
            continue
        if not isinstance(event.get("name"), str):
            errors.append("%s: missing name" % where)
        if phase == "X":
            if not isinstance(event.get("cat"), str):
                errors.append("%s: X event without cat" % where)
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append("%s: X event %s is not a non-negative "
                                  "number" % (where, field))
        if phase == "i" and not isinstance(event.get("ts"), (int, float)):
            errors.append("%s: i event without ts" % where)
        if phase == "C" and not isinstance(event.get("args"), dict):
            errors.append("%s: C event without args" % where)
    return errors


def span_table(events, min_us=0.0):
    """Aggregates X events into (cat/name -> total_us, count) rows,
    sorted by total descending."""
    totals = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        key = "%s/%s" % (event.get("cat", "?"), event.get("name", "?"))
        total, count = totals.get(key, (0.0, 0))
        totals[key] = (total + float(event.get("dur", 0.0)), count + 1)
    rows = [(key, total, count) for key, (total, count) in totals.items()
            if total >= min_us]
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows


def instant_tally(events):
    totals = {}
    for event in events:
        if event.get("ph") != "i":
            continue
        key = "%s/%s" % (event.get("cat", "?"), event.get("name", "?"))
        totals[key] = totals.get(key, 0) + 1
    return sorted(totals.items())


def counter_dump(events):
    """(name, value) rows from the final C events, sorted by name."""
    rows = []
    for event in events:
        if event.get("ph") != "C":
            continue
        value = event.get("args", {}).get("value")
        rows.append((event.get("name", "?"), value))
    rows.sort()
    return rows


def fmt_us(us):
    if us >= 1e6:
        return "%.2f s" % (us / 1e6)
    if us >= 1e3:
        return "%.2f ms" % (us / 1e3)
    return "%.1f us" % us


def summarize(trace, min_us=0.0, out=sys.stdout):
    events = trace["traceEvents"]
    rows = span_table(events, min_us)
    print("phase wall-time (X spans, self-inclusive):", file=out)
    print("  %-36s %12s %8s %12s" % ("phase", "total", "calls", "mean"),
          file=out)
    for key, total, count in rows:
        print("  %-36s %12s %8d %12s"
              % (key, fmt_us(total), count, fmt_us(total / count)), file=out)
    if not rows:
        print("  (no spans above the threshold)", file=out)
    instants = instant_tally(events)
    if instants:
        print("instant events:", file=out)
        for key, count in instants:
            print("  %-36s %8d" % (key, count), file=out)
    counters = counter_dump(events)
    if counters:
        print("counters (final metrics dump):", file=out)
        for name, value in counters:
            print("  %-36s %12s" % (name, value), file=out)


# ---------------------------------------------------------------------------
# Self-test: invoked from CI (tools/trace_summary.py --self-test) so the
# validator cannot silently rot — it has no other test harness.
# ---------------------------------------------------------------------------

def _event(ph, name, cat="test", **extra):
    event = {"ph": ph, "name": name, "cat": cat, "pid": 0, "tid": 0}
    event.update(extra)
    return event


def _valid_trace():
    return {
        "displayTimeUnit": "ms",
        "traceEvents": [
            _event("M", "thread_name", args={"name": "main"}),
            _event("X", "parse", cat="compile", ts=0.0, dur=120.0),
            _event("X", "parse", cat="compile", ts=130.0, dur=80.0),
            _event("X", "replay", cat="runtime", ts=10.0, dur=5000.0),
            _event("i", "park", cat="runtime", ts=50.0, s="t"),
            _event("C", "cache/hits", cat="cache", ts=6000.0,
                   args={"value": 42}),
        ],
    }


def self_test():
    import io
    failures = []

    def check(label, condition):
        print("%s %s" % ("ok  " if condition else "FAIL", label))
        if not condition:
            failures.append(label)

    # 1. A well-formed trace validates and summarizes.
    trace = _valid_trace()
    check("valid trace has no validation errors", validate(trace) == [])
    out = io.StringIO()
    summarize(trace, out=out)
    text = out.getvalue()
    check("summary aggregates repeated spans",
          "compile/parse" in text and "       2" in text)
    check("summary ranks the longest phase first",
          text.find("runtime/replay") < text.find("compile/parse"))
    check("summary reports instants", "runtime/park" in text)
    check("summary reports counters", "cache/hits" in text)

    # 2. Structural breakage is caught.
    check("non-object top level is invalid", validate([]) != [])
    check("missing traceEvents is invalid", validate({}) != [])
    bad_phase = {"traceEvents": [_event("Q", "x")]}
    check("unknown phase is invalid", validate(bad_phase) != [])
    no_dur = {"traceEvents": [_event("X", "x", ts=1.0)]}
    check("X event without dur is invalid", validate(no_dur) != [])
    negative = {"traceEvents": [_event("X", "x", ts=-1.0, dur=1.0)]}
    check("negative ts is invalid", validate(negative) != [])
    no_args = {"traceEvents": [_event("C", "x", ts=0.0)]}
    check("C event without args is invalid", validate(no_args) != [])
    unnamed = {"traceEvents": [{"ph": "X", "cat": "c", "ts": 0, "dur": 1}]}
    check("X event without name is invalid", validate(unnamed) != [])

    # 3. End-to-end through a file, exactly as CI drives it.
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "trace.json"
        path.write_text(json.dumps(_valid_trace()))
        check("run() accepts a valid trace file", run(str(path), 0.0) == 0)
        path.write_text("{not json")
        check("run() rejects unparseable JSON", run(str(path), 0.0) == 1)
        path.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        check("run() rejects structural breakage", run(str(path), 0.0) == 1)
        check("run() exits 2 on a missing file",
              run(str(pathlib.Path(tmp) / "absent.json"), 0.0) == 2)

    print("trace_summary self-test: %d failure(s)" % len(failures))
    return 1 if failures else 0


def run(path, min_us, out=None):
    out = out or sys.stdout
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        print("trace_summary: cannot read %s: %s" % (path, error),
              file=sys.stderr)
        return 2
    try:
        trace = json.loads(text)
    except json.JSONDecodeError as error:
        print("trace_summary: %s is not JSON: %s" % (path, error),
              file=sys.stderr)
        return 1
    errors = validate(trace)
    if errors:
        print("trace_summary: %s failed validation:" % path, file=sys.stderr)
        for line in errors[:20]:
            print("  " + line, file=sys.stderr)
        if len(errors) > 20:
            print("  ... and %d more" % (len(errors) - 20), file=sys.stderr)
        return 1
    events = trace["traceEvents"]
    print("%s: %d events (%d spans, %d instants, %d counters) — valid"
          % (path, len(events),
             sum(1 for e in events if e.get("ph") == "X"),
             sum(1 for e in events if e.get("ph") == "i"),
             sum(1 for e in events if e.get("ph") == "C")), file=out)
    summarize(trace, min_us, out=out)
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?",
                        help="Chrome trace-event JSON (SAPART_TRACE output)")
    parser.add_argument("--min-us", type=float, default=0.0,
                        help="hide span rows totalling less than this many "
                             "microseconds")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded unit tests and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.trace is None:
        parser.error("TRACE.json required (or --self-test)")
    return run(args.trace, args.min_us)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Piping into head/less closes stdout early; that is not an error.
        sys.exit(0)
