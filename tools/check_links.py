#!/usr/bin/env python3
"""Fails when a relative markdown link in the docs points at nothing.

Scans README.md, DESIGN.md and docs/*.md for [text](target) links, skips
absolute URLs (http/https/mailto) and pure in-page anchors, and verifies
that every remaining target exists relative to the file that links to it.
Exit code 0 when every link resolves, 1 otherwise (one line per break).

Usage: python3 tools/check_links.py [repo_root]
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root: Path):
    for name in ("README.md", "DESIGN.md"):
        path = root / name
        if path.exists():
            yield path
    yield from sorted((root / "docs").glob("*.md"))


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    broken = []
    checked = 0
    for doc in doc_files(root):
        for line_no, line in enumerate(doc.read_text().splitlines(), start=1):
            for target in LINK_RE.findall(line):
                if target.startswith(SKIP_PREFIXES):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                checked += 1
                if not (doc.parent / relative).exists():
                    broken.append(f"{doc.relative_to(root)}:{line_no}: "
                                  f"broken link -> {target}")
    for entry in broken:
        print(entry)
    print(f"{checked} relative links checked, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
