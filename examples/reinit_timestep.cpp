// The §5 host-processor re-initialization protocol in a time-stepped
// Jacobi-style solver: two buffers are reused across steps via REINIT
// instead of allocating a fresh version per step, demonstrating how a
// statically-allocated single-assignment machine supports iteration.
// Runs in both execution modes and prices the protocol.
#include <iostream>

#include "core/program_builder.hpp"
#include "core/simulator.hpp"
#include "support/text_table.hpp"

namespace {

/// CUR holds the current field; each step writes NEXT from CUR's stencil,
/// then copies NEXT back into a re-initialized CUR.  (A real compiler
/// would swap roles per step; the copy keeps the example's loop bodies
/// identical across steps, which is what REINIT enables.)
sap::CompiledProgram jacobi(std::int64_t n, std::int64_t steps) {
  using namespace sap;
  ProgramBuilder b("jacobi_reinit");
  b.prefix_array("CUR", {n}, n);  // initial field = init data
  b.array("NEXT", {n});
  b.input_array("BC", {2});  // Dirichlet boundary values
  const Ex i = b.var("I");
  b.begin_loop("T", 1, ex_num(static_cast<double>(steps)));
  b.reinit("NEXT");
  b.begin_loop("I", 2, ex_num(static_cast<double>(n - 1)));
  b.assign("NEXT", {i},
           0.5 * b.at("CUR", {i}) +
               0.25 * (b.at("CUR", {i - 1}) + b.at("CUR", {i + 1})));
  b.end_loop();
  // Re-initialization wipes every cell, boundaries included: the new
  // generation re-establishes them from the boundary-condition array.
  b.reinit("CUR");
  b.assign("CUR", {1}, b.at("BC", {1}));
  b.assign("CUR", {ex_num(static_cast<double>(n))}, b.at("BC", {2}));
  b.begin_loop("I", 2, ex_num(static_cast<double>(n - 1)));
  b.assign("CUR", {i}, b.at("NEXT", {i}));
  b.end_loop();
  b.end_loop();
  return b.compile();
}

}  // namespace

int main() {
  using namespace sap;
  constexpr std::int64_t kN = 512;
  constexpr std::int64_t kSteps = 5;
  const CompiledProgram program = jacobi(kN, kSteps);

  std::cout << "Time-stepped Jacobi smoothing, " << kN << " cells, " << kSteps
            << " steps, arrays reused via the Section-5 protocol\n\n";

  TextTable table({"PEs", "mode", "remote %", "reinit msgs", "page msgs",
                   "generations (CUR)"});
  for (const std::uint32_t pes : {4u, 16u}) {
    for (const auto mode :
         {ExecutionMode::kCounting, ExecutionMode::kDataflow}) {
      const Simulator sim(MachineConfig{}.with_pes(pes));
      std::unique_ptr<Machine> machine;
      const SimulationResult result =
          sim.run_with_machine(program, mode, machine);
      table.add_row(
          {std::to_string(pes), to_string(mode),
           TextTable::pct(result.remote_read_fraction()),
           std::to_string(result.reinit_messages),
           std::to_string(result.network.messages - result.reinit_messages),
           std::to_string(machine->arrays().by_name("CUR").generation())});
    }
  }
  std::cout << table.to_string() << "\n"
            << "Each REINIT costs 2(N-1) protocol messages; the generation "
               "tags keep stale cached pages from ever serving the next "
               "step (no coherence protocol needed).\n"
            << "Both execution modes agree on every count — the §3 "
               "synchronization is fully automatic.\n";
  return 0;
}
