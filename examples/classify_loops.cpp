// Runs the full front end (lexer -> parser -> sema -> affine analysis ->
// classifier) on the DSL sources of the Livermore kernels and prints the
// §7.1 class table, cross-checked against the sweep-based empirical
// classifier.  This is the "compiler view" of the paper's Section 7.
#include <iostream>

#include "core/empirical_classifier.hpp"
#include "core/simulator.hpp"
#include "kernels/dsl_sources.hpp"
#include "kernels/livermore.hpp"
#include "support/text_table.hpp"

int main() {
  using namespace sap;

  MachineConfig config;  // the paper's machine

  TextTable table({"kernel", "static class", "empirical class",
                   "static rationale"});
  for (const auto& entry : dsl_kernel_sources()) {
    const CompiledProgram prog = compile_source(entry.source);
    const auto static_result = classify_program(prog.program, prog.sema);
    const auto empirical = classify_empirical(prog, config);

    // First loop's rationale is the interesting one.
    std::string why = static_result.loops.empty()
                          ? std::string("-")
                          : static_result.loops.front().rationale;
    table.add_row({std::string(entry.id), to_string(static_result.cls),
                   to_string(empirical.cls), std::move(why)});
  }
  std::cout << "Classification of the Livermore kernels (from DSL sources)\n\n"
            << table.to_string() << "\n";

  // Show the full per-read report for one interesting kernel.
  const CompiledProgram iccg = compile_source(dsl_source_for("k02_iccg"));
  std::cout << "Detailed report for ICCG (the paper's cyclic example):\n"
            << classify_program(iccg.program, iccg.sema).report();
  return 0;
}
