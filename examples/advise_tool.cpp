// Partition advisor CLI: DSL program in, recommended partition out.
//
//   advise_tool k02_iccg                 # built-in kernel by id
//   advise_tool my_loop.sap              # DSL source file
//   advise_tool - < my_loop.sap          # DSL source on stdin
//
// Options:
//   --pes N        machine size (default 16)
//   --cache N      cache elements per PE (default 256; 0 disables)
//   --page-sizes a,b,...   candidate page sizes (default 16,32,64)
//   --top-k K      candidates validated by real simulation (default 3)
//   --strategy S   'enumerate' (fixed cross product, the default),
//                  'beam' (guided search over the widened mapping space:
//                  scheme x block x page size x cache, DESIGN.md §11) or
//                  'joint' (per-array assignment search: scalar beam,
//                  then coordinate descent over the array->scheme
//                  vector, DESIGN.md §14)
//   --beam-width N        beam states kept per search round (default 4)
//   --budget N            beam measurement budget: total simulations the
//                         search may spend (default 12)
//   --joint-budget N      fresh measurement budget for the joint
//                         coordinate-descent phase (default: --budget)
//   --assign A=KIND[:b]   pin array A to a partition scheme in the base
//                         configuration: KIND is modulo, block or
//                         block-cyclic (an optional :b sets the
//                         block-cyclic block in pages).  Repeatable.
//                         Pinned arrays are never moved by the joint
//                         search; unknown arrays or malformed specs are
//                         usage errors (exit 2).
//   --cache-sizes a,b,... extra cache capacities the beam may move to
//                         (0 = no cache; default: the base cache only)
//   --summary      also print the per-read classification verdicts
//   --trace PATH   write a Chrome trace-event profile (advisor phase
//                  spans, sweep batches, metrics counters) to PATH at
//                  exit; overrides SAPART_TRACE.  Loadable in Perfetto.
//
// The recommendation table shows every candidate with its predicted cost
// and, for the validated top-k (plus the paper's modulo default, always),
// the measured remote-read fraction.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "advisor/advisor.hpp"
#include "kernels/livermore.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"
#include "support/parse.hpp"
#include "support/thread_pool.hpp"

namespace {

void print_usage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " [--pes N] [--cache N] [--page-sizes a,b,...] [--top-k K]"
         " [--strategy enumerate|beam|joint] [--beam-width N] [--budget N]"
         " [--joint-budget N] [--assign ARRAY=KIND[:block]]..."
         " [--cache-sizes a,b,...] [--summary] [--trace <path>]"
         " <kernel-id | file.sap | ->\n"
         "--assign pins an array to modulo, block or block-cyclic[:pages]\n"
         "in the base configuration (unknown arrays are errors; the joint\n"
         "search never moves a pinned array)\n"
         "--trace writes a Chrome trace-event profile to <path> at exit\n"
         "(overrides SAPART_TRACE; never changes the recommendation)\n";
}

[[noreturn]] void usage(const char* argv0) {
  print_usage(std::cerr, argv0);
  std::exit(2);
}

/// Strict integer option parsing with range checks: garbage or an
/// out-of-range value is a usage error, not a crash (or a 4-billion-PE
/// machine from a negative value wrapping through an unsigned cast).
std::int64_t parse_int_option(const std::string& flag,
                              const std::string& text, std::int64_t min,
                              std::int64_t max) {
  if (const auto value = sap::parse_strict_int(text, min, max)) {
    return *value;
  }
  std::cerr << flag << ": '" << text << "' is not an integer in [" << min
            << ", " << max << "]\n";
  std::exit(2);
}

std::vector<std::int64_t> parse_int_list(const std::string& flag,
                                         const std::string& text,
                                         std::int64_t min, std::int64_t max) {
  std::vector<std::int64_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(parse_int_option(flag, item, min, max));
  }
  // Catches "" and "16,32," — a shrunken candidate space must be loud.
  if (out.empty() || text.empty() || text.back() == ',') {
    std::cerr << flag << ": '" << text
              << "' is not a comma-separated integer list\n";
    std::exit(2);
  }
  return out;
}

/// One --assign ARRAY=KIND[:block] flag, parsed but not yet checked
/// against the program (the program is compiled after flag parsing).
struct AssignFlag {
  std::string array;
  sap::ArrayPartitionSpec spec;
};

AssignFlag parse_assign(const std::string& text) {
  const auto fail = [&](const std::string& why) -> AssignFlag {
    std::cerr << "--assign: '" << text << "': " << why
              << " (expected ARRAY=modulo|block|block-cyclic[:pages])\n";
    std::exit(2);
  };
  const std::size_t eq = text.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == text.size()) {
    return fail("missing ARRAY=KIND");
  }
  AssignFlag out;
  out.array = text.substr(0, eq);
  std::string kind = text.substr(eq + 1);
  const std::size_t colon = kind.find(':');
  std::string block;
  if (colon != std::string::npos) {
    block = kind.substr(colon + 1);
    kind = kind.substr(0, colon);
  }
  if (kind == "modulo") {
    out.spec.partition = sap::PartitionKind::kModulo;
  } else if (kind == "block") {
    out.spec.partition = sap::PartitionKind::kBlock;
  } else if (kind == "block-cyclic") {
    out.spec.partition = sap::PartitionKind::kBlockCyclic;
  } else {
    return fail("unknown partition kind '" + kind + "'");
  }
  if (colon != std::string::npos) {
    if (out.spec.partition != sap::PartitionKind::kBlockCyclic) {
      return fail("a :pages block is only valid for block-cyclic");
    }
    if (const auto pages = sap::parse_strict_int(block, 1, 1 << 20)) {
      out.spec.block_cyclic_pages = *pages;
    } else {
      return fail("'" + block + "' is not a block size in [1, " +
                  std::to_string(1 << 20) + "]");
    }
  }
  return out;
}

sap::CompiledProgram load_program(const std::string& spec) {
  // A known kernel id wins; otherwise the spec is a file path ("-" for
  // stdin) holding DSL source.
  for (const sap::KernelSpec& kernel : sap::livermore_kernels()) {
    if (kernel.id == spec) return kernel.build();
  }
  std::ostringstream source;
  if (spec == "-") {
    source << std::cin.rdbuf();
  } else {
    std::ifstream in(spec);
    if (!in) {
      throw sap::Error("cannot open '" + spec +
                       "' (and it is not a kernel id)");
    }
    source << in.rdbuf();
  }
  return sap::compile_source(source.str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sap;

  MachineConfig base;
  base.num_pes = 16;
  base.page_size = 32;
  base.cache_elements = 256;
  AdvisorOptions options;
  options.page_sizes = {16, 32, 64};
  bool print_summary = false;
  std::vector<AssignFlag> assigns;
  std::string trace_flag;
  std::string spec;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--pes") {
      base.num_pes = static_cast<std::uint32_t>(
          parse_int_option(arg, next(), 1, 1 << 16));
    } else if (arg == "--cache") {
      base.cache_elements = parse_int_option(arg, next(), 0, 1 << 30);
    } else if (arg == "--page-sizes") {
      options.page_sizes = parse_int_list(arg, next(), 1, 1 << 20);
    } else if (arg == "--top-k") {
      options.validate_top_k = static_cast<std::size_t>(
          parse_int_option(arg, next(), 0, 1 << 20));
    } else if (arg == "--strategy") {
      const std::string name = next();
      try {
        options.strategy = advisor_strategy_from_name(name);
      } catch (const ConfigError& e) {
        std::cerr << arg << ": " << e.what() << '\n';
        std::exit(2);
      }
    } else if (arg == "--beam-width") {
      options.beam_width = static_cast<std::size_t>(
          parse_int_option(arg, next(), 1, 1 << 20));
    } else if (arg == "--budget") {
      options.measurement_budget = static_cast<std::size_t>(
          parse_int_option(arg, next(), 1, 1 << 20));
    } else if (arg == "--joint-budget") {
      options.joint_measurement_budget = static_cast<std::size_t>(
          parse_int_option(arg, next(), 1, 1 << 20));
    } else if (arg == "--assign") {
      assigns.push_back(parse_assign(next()));
    } else if (arg == "--cache-sizes") {
      options.cache_sizes = parse_int_list(arg, next(), 0, 1 << 30);
    } else if (arg == "--summary") {
      print_summary = true;
    } else if (arg == "--trace") {
      trace_flag = next();
    } else if (arg == "--help" || arg == "-h") {
      print_usage(std::cout, argv[0]);  // help on request is not an error
      return 0;
    } else if (!spec.empty()) {
      usage(argv[0]);
    } else {
      spec = arg;
    }
  }
  if (spec.empty()) usage(argv[0]);

  // Honor the SAPART_WORKERS convention like the bench drivers do,
  // including the exit-2-with-named-variable contract for bad values.
  unsigned workers = 0;
  try {
    workers = parse_worker_count(std::getenv("SAPART_WORKERS"));
  } catch (const ConfigError& e) {
    std::cerr << "SAPART_WORKERS: " << e.what() << '\n';
    return 2;
  }

  // Same SAPART_TRACE / SAPART_METRICS contract as the bench drivers:
  // the flag beats the environment, bad values are exit 2.
  std::string trace_dest = trace_flag;
  const char* trace_knob = "--trace";
  if (trace_dest.empty()) {
    trace_knob = "SAPART_TRACE";
    try {
      if (const auto env = obs::trace_path_from_env()) trace_dest = *env;
    } catch (const ConfigError& e) {
      std::cerr << "SAPART_TRACE: " << e.what() << '\n';
      return 2;
    }
  }
  if (!trace_dest.empty()) {
    try {
      obs::enable_trace_output(trace_dest);
    } catch (const ConfigError& e) {
      std::cerr << trace_knob << ": " << e.what() << '\n';
      return 2;
    }
  }
  try {
    if (const auto metrics_dest = obs::metrics_path_from_env()) {
      obs::enable_metrics_output(*metrics_dest);
    }
  } catch (const ConfigError& e) {
    std::cerr << "SAPART_METRICS: " << e.what() << '\n';
    return 2;
  }

  try {
    const CompiledProgram compiled = load_program(spec);
    // --assign names must exist in the program: a typo that silently
    // pinned nothing would make the "pinned" recommendation a lie.
    for (const AssignFlag& assign : assigns) {
      const auto& arrays = compiled.program.arrays;
      const bool known =
          std::any_of(arrays.begin(), arrays.end(),
                      [&](const auto& decl) { return decl.name == assign.array; });
      if (!known) {
        std::cerr << "--assign: program '" << compiled.name()
                  << "' has no array named '" << assign.array << "'\n";
        return 2;
      }
      base = base.with_array_partition(assign.array, assign.spec);
      options.pinned_arrays.push_back(assign.array);
    }
    ThreadPool pool(workers);
    const AdvisorReport report = advise(compiled, base, options, &pool);
    if (print_summary) {
      // The access digest is already part of report(); --summary adds the
      // per-loop, per-read classification verdicts on top.
      std::cout << report.summary.classification.report() << '\n';
    }
    std::cout << report.report();
    std::cout << "\nTo verify with a full sweep: run the fig/ablation "
                 "benches, or sweep_pes() with the recommended config.\n";
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
