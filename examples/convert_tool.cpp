// The §5 automatic conversion tool, end to end: two conventional
// (non-single-assignment) programs are converted — one by array
// versioning, one by inserting the host-processor re-initialization
// protocol — printed before/after, statically checked, and executed.
#include <iostream>

#include "core/reference_interpreter.hpp"
#include "core/simulator.hpp"
#include "frontend/convert.hpp"
#include "frontend/printer.hpp"
#include "frontend/sa_check.hpp"
#include "frontend/sema.hpp"
#include "kernels/synthetic.hpp"

namespace {

void demo(const char* title, sap::Program input) {
  using namespace sap;
  std::cout << "==== " << title << " ====\n\n--- before ---\n"
            << print_program(input);

  {
    Program probe = clone(input);
    const SemanticInfo sema = analyze(probe);
    std::cout << "\nstatic single-assignment check:\n"
              << check_single_assignment(probe, sema).report();
  }

  const ConversionResult converted = convert_to_single_assignment(input);
  std::cout << "\nconversion actions:\n"
            << converted.report() << "\n--- after ---\n"
            << print_program(converted.program);

  const CompiledProgram compiled = compile(clone(converted.program));
  const Simulator sim(MachineConfig{}.with_pes(4));
  const SimulationResult result = sim.run(compiled);
  std::cout << "\nruns clean on 4 PEs: " << result.summary() << "\n";
  if (result.reinit_messages > 0) {
    std::cout << "re-init protocol messages: " << result.reinit_messages
              << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace sap;
  // Case 1: a second top-level loop overwrites A -> fresh version A__2;
  // the trailing consumer automatically reads the new version.
  demo("sequential overwrite -> array versioning",
       make_nonsa_sequential_overwrite(64));

  // Case 2: a time-stepping loop rewrites A every iteration — renaming
  // cannot help, so the converter inserts REINIT (the §5 protocol).
  demo("time-stepped reuse -> host-processor re-initialization",
       make_nonsa_timestep(64, 3));

  std::cout << "Both inputs trap with DoubleWriteError if run unconverted — "
               "the §3 hardware trap.\n";
  return 0;
}
