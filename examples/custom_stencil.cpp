// Building a custom workload against the public API: a 9-point 2-D
// stencil constructed with ProgramBuilder, swept over PE counts and page
// sizes — the workflow a user follows to evaluate their own kernel under
// single-assignment partitioning.
#include <iostream>

#include "core/program_builder.hpp"
#include "core/sweep.hpp"
#include "frontend/classifier.hpp"
#include "stats/report.hpp"
#include "support/text_table.hpp"

namespace {

sap::CompiledProgram nine_point_stencil(std::int64_t rows, std::int64_t cols) {
  using namespace sap;
  ProgramBuilder b("nine_point");
  b.array("OUT", {rows, cols});
  b.input_array("IN", {rows, cols});
  b.scalar("W0", 0.2);
  b.scalar("W1", 0.125);
  b.scalar("W2", 0.075);
  const Ex i = b.var("I");
  const Ex j = b.var("J");
  b.begin_loop("I", 2, ex_num(static_cast<double>(rows - 1)));
  b.begin_loop("J", 2, ex_num(static_cast<double>(cols - 1)));
  b.assign(
      "OUT", {i, j},
      b.var("W0") * b.at("IN", {i, j}) +
          b.var("W1") * (b.at("IN", {i - 1, j}) + b.at("IN", {i + 1, j}) +
                         b.at("IN", {i, j - 1}) + b.at("IN", {i, j + 1})) +
          b.var("W2") *
              (b.at("IN", {i - 1, j - 1}) + b.at("IN", {i - 1, j + 1}) +
               b.at("IN", {i + 1, j - 1}) + b.at("IN", {i + 1, j + 1})));
  b.end_loop();
  b.end_loop();
  return b.compile();
}

}  // namespace

int main() {
  using namespace sap;
  const CompiledProgram stencil = nine_point_stencil(64, 64);

  std::cout << "9-point stencil, 64x64 grid, row-major pages\n\n"
            << "Static class: "
            << to_string(classify_program(stencil.program, stencil.sema).cls)
            << " (multi-dimensional offsets revisited by the row sweep)\n\n";

  // How does it scale? The paper's figure layout for a user kernel.
  const auto series =
      figure_series(stencil, MachineConfig{}, {1, 2, 4, 8, 16, 32}, {32, 64});
  std::cout << series_table(series, "PEs", false) << "\n"
            << series_chart(series, "9-point stencil: % remote reads",
                            "PEs", "% reads remote")
            << "\n";

  // Load balance at 16 PEs.
  const Simulator sim(MachineConfig{}.with_pes(16));
  const SimulationResult result = sim.run(stencil);
  const LoadBalance balance = result.local_read_balance();
  std::cout << "Load balance @16 PEs: local-read cv = "
            << TextTable::num(balance.coefficient_of_variation(), 3)
            << ", write imbalance = "
            << TextTable::num(result.write_balance().imbalance(), 2) << "\n"
            << result.summary() << "\n";
  return 0;
}
