// Quickstart: compile a loop program from DSL source, run it on the
// paper's abstract machine, and read off the access distribution.
//
//   $ ./quickstart
//
// covers the whole public API surface in ~40 lines: compile_source,
// Simulator, SimulationResult, and the static classifier.
#include <iostream>

#include "core/simulator.hpp"
#include "frontend/classifier.hpp"
#include "stats/report.hpp"

int main() {
  using namespace sap;

  // The paper's running example (§2): three 100-element arrays, four PEs,
  // pages of 32 elements — plus its Figure-1 hydro loop.
  const CompiledProgram program = compile_source(R"(
PROGRAM quickstart
ARRAY A(100) INIT NONE
ARRAY B(100) INIT ALL
ARRAY C(100) INIT ALL
DO i = 1, 100
  A(i) = B(101 - i) + C(i)
END DO
END PROGRAM
)");

  MachineConfig config;       // defaults = the paper's machine
  config.num_pes = 4;         // §2's example machine
  config.page_size = 32;
  config.cache_elements = 256;

  const Simulator simulator(config);
  const SimulationResult result = simulator.run(program);

  std::cout << result.summary() << "\n\n"
            << "Per-PE distribution (write = always local, owner-computes):\n"
            << per_pe_table(result) << "\n";

  // What does the compiler think of this loop?
  const auto classification =
      classify_program(program.program, program.sema);
  std::cout << "Static classification: " << to_string(classification.cls)
            << "\n"
            << classification.report() << "\n"
            << "Note B's reversed index (101 - i): its stride runs against "
               "the write,\nso the pages cycle — the cache absorbs most of "
               "the remote traffic.\n";
  return 0;
}
