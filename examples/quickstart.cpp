// Quickstart: compile a loop program from DSL source, run it on the
// paper's abstract machine, and read off the access distribution.
//
//   $ ./quickstart
//
// covers the whole public API surface in ~40 lines: compile_source,
// Simulator, SimulationResult, the static classifier, and the two
// expression engines (bytecode vs the tree-walk oracle).
#include <iostream>

#include "core/bytecode.hpp"
#include "core/simulator.hpp"
#include "frontend/classifier.hpp"
#include "stats/report.hpp"

// The paper's running example (§2): three 100-element arrays, four PEs,
// pages of 32 elements — plus its Figure-1 hydro loop.
constexpr const char* kSource = R"(
PROGRAM quickstart
ARRAY A(100) INIT NONE
ARRAY B(100) INIT ALL
ARRAY C(100) INIT ALL
DO i = 1, 100
  A(i) = B(101 - i) + C(i)
END DO
END PROGRAM
)";

int main() {
  using namespace sap;

  const CompiledProgram program = compile_source(kSource);

  MachineConfig config;       // defaults = the paper's machine
  config.num_pes = 4;         // §2's example machine
  config.page_size = 32;
  config.cache_elements = 256;

  const Simulator simulator(config);
  const SimulationResult result = simulator.run(program);

  std::cout << result.summary() << "\n\n"
            << "Per-PE distribution (write = always local, owner-computes):\n"
            << per_pe_table(result) << "\n";

  // What does the compiler think of this loop?
  const auto classification =
      classify_program(program.program, program.sema);
  std::cout << "Static classification: " << to_string(classification.cls)
            << "\n"
            << classification.report() << "\n"
            << "Note B's reversed index (101 - i): its stride runs against "
               "the write,\nso the pages cycle — the cache absorbs most of "
               "the remote traffic.\n";

  // Statements executed through the compile-once bytecode engine above
  // (the default; see DESIGN.md §8).  The eval.hpp tree walk remains the
  // oracle — SAPART_EVAL=tree program-wide, or per program like this —
  // and is byte-identical by construction.
  CompiledProgram oracle = compile_source(kSource);
  oracle.bytecode.reset();  // null bytecode = tree-walk execution
  const SimulationResult tree_result = simulator.run(oracle);
  std::cout << "\nTree-walk oracle agrees: "
            << (tree_result.totals == result.totals ? "yes" : "NO")
            << " (remote reads " << tree_result.totals.remote_reads << " vs "
            << result.totals.remote_reads << ")\n";
  return 0;
}
