// The abstract loosely-coupled MIMD machine.
//
// Owns the arrays, the partitioner, the PEs (each with its private cache)
// and the network, and implements the access-classification rules of §4/§7:
//
//   write        -> always local (owner-computes: the writer owns the page)
//   read, owner == reader          -> local read
//   read, page in reader's cache   -> cached read
//   read, otherwise                -> remote read: PAGE_REQ + PAGE_REPLY
//                                     messages, page inserted in the cache
//
// Both interpreters (core/) drive all their accesses through this class, so
// the accounting is defined in exactly one place.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "machine/config.hpp"
#include "machine/pe.hpp"
#include "memory/array_registry.hpp"
#include "network/network.hpp"
#include "partition/partitioner.hpp"
#include "stats/sim_result.hpp"

namespace sap {

class HostReinitCoordinator;

class Machine {
 public:
  explicit Machine(MachineConfig config);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const noexcept { return config_; }
  ArrayRegistry& arrays() noexcept { return arrays_; }
  const ArrayRegistry& arrays() const noexcept { return arrays_; }
  const Partitioner& partitioner() const noexcept { return *partitioner_; }
  Network& network() noexcept { return *network_; }
  HostReinitCoordinator& reinit() noexcept { return *reinit_; }

  std::uint32_t num_pes() const noexcept { return config_.num_pes; }
  ProcessingElement& pe(PeId id);
  const ProcessingElement& pe(PeId id) const;

  /// Owner PE of `array[linear]` — the PE that executes statements
  /// writing that element (owner-computes, §2).
  PeId owner_of(const SaArray& array, std::int64_t linear) const {
    return partitioner_->owner_of_element(array, linear);
  }

  /// Classifies and accounts one read performed by `reader` of
  /// `array[linear]`, updating the reader's cache and the network.
  AccessKind account_read(PeId reader, const SaArray& array,
                          std::int64_t linear);

  /// As above, but message accounting goes to `net` instead of the shared
  /// network — the sharded runtime passes the reader shard's private
  /// NetworkBuffer here (merged in PE-id order after the run).  The PE's
  /// counters and cache are only ever touched by the shard executing that
  /// PE's stream, so they need no indirection.
  AccessKind account_read(PeId reader, const SaArray& array,
                          std::int64_t linear, NetworkChannel& net);

  /// Accounts one write by `writer` (always local; the caller must have
  /// screened ownership already — checked in debug builds).
  void account_write(PeId writer, const SaArray& array, std::int64_t linear);

  /// Drops `array`'s pages from every PE cache (§5 re-init support).
  void invalidate_caches(ArrayId array);

  /// Gathers every counter into a result snapshot.
  SimulationResult snapshot(std::string program_name) const;

  /// Clears counters, caches and network tallies (arrays untouched).
  void reset_stats();

 private:
  bool page_fully_defined(const SaArray& array, PageIndex page) const;

  MachineConfig config_;
  ArrayRegistry arrays_;
  std::unique_ptr<Partitioner> partitioner_;
  std::unique_ptr<Network> network_;
  std::vector<ProcessingElement> pes_;
  std::unique_ptr<HostReinitCoordinator> reinit_;
};

}  // namespace sap
