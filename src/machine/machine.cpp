#include "machine/machine.hpp"

#include "machine/host_reinit.hpp"
#include "support/check.hpp"

namespace sap {

Machine::Machine(MachineConfig config) : config_(config) {
  config_.validate();
  partitioner_ = std::make_unique<Partitioner>(config_);
  network_ = std::make_unique<Network>(
      make_topology(config_.topology, config_.num_pes));
  pes_.reserve(config_.num_pes);
  for (std::uint32_t i = 0; i < config_.num_pes; ++i) {
    pes_.emplace_back(i, config_.cache_elements, config_.page_size,
                      config_.replacement, config_.seed);
  }
  reinit_ = std::make_unique<HostReinitCoordinator>(*this);
}

Machine::~Machine() = default;

ProcessingElement& Machine::pe(PeId id) {
  SAP_CHECK(id < pes_.size(), "PE id out of range");
  return pes_[id];
}

const ProcessingElement& Machine::pe(PeId id) const {
  SAP_CHECK(id < pes_.size(), "PE id out of range");
  return pes_[id];
}

bool Machine::page_fully_defined(const SaArray& array, PageIndex page) const {
  const std::int64_t first = page_first_element(page, config_.page_size);
  const std::int64_t valid =
      page_valid_elements(page, array.element_count(), config_.page_size);
  for (std::int64_t i = 0; i < valid; ++i) {
    if (!array.is_defined(first + i)) return false;
  }
  return true;
}

AccessKind Machine::account_read(PeId reader, const SaArray& array,
                                 std::int64_t linear) {
  return account_read(reader, array, linear, *network_);
}

AccessKind Machine::account_read(PeId reader, const SaArray& array,
                                 std::int64_t linear, NetworkChannel& net) {
  ProcessingElement& p = pe(reader);
  const PeId owner = partitioner_->owner_of_element(array, linear);
  if (owner == reader) {
    p.counters().record(AccessKind::kLocalRead);
    return AccessKind::kLocalRead;
  }

  const PageIndex page = partitioner_->page_of_element(linear);
  const PageId page_id{array.id(), page};
  if (p.cache().lookup(page_id, array.generation())) {
    p.counters().record(AccessKind::kCachedRead);
    return AccessKind::kCachedRead;
  }

  // Remote read: request/reply pair; the whole page travels back (§4).
  p.counters().record(AccessKind::kRemoteRead);
  const std::int64_t payload =
      page_valid_elements(page, array.element_count(), config_.page_size);
  net.send({reader, owner, MessageKind::kPageRequest, 0});
  net.send({owner, reader, MessageKind::kPageReply, payload});

  // §4: the paper caches unconditionally, "ignoring for now the possibility
  // of partially filled pages."  With the extension switch on, a partially
  // defined page is not cached, so later touches re-fetch it.
  if (!config_.count_partial_page_refetch || page_fully_defined(array, page)) {
    p.cache().insert(page_id, array.generation());
  }
  return AccessKind::kRemoteRead;
}

void Machine::account_write(PeId writer, [[maybe_unused]] const SaArray& array,
                            [[maybe_unused]] std::int64_t linear) {
  SAP_DCHECK(partitioner_->owner_of_element(array, linear) == writer,
             "owner-computes violation: write executed off-owner");
  pe(writer).counters().record(AccessKind::kWrite);
}

void Machine::invalidate_caches(ArrayId array) {
  for (auto& p : pes_) p.cache().invalidate_array(array);
}

SimulationResult Machine::snapshot(std::string program_name) const {
  SimulationResult result;
  result.program_name = std::move(program_name);
  result.num_pes = config_.num_pes;
  result.page_size = config_.page_size;
  result.cache_elements = config_.cache_elements;
  result.per_pe.reserve(pes_.size());
  for (const auto& p : pes_) {
    result.per_pe.push_back(p.counters());
    result.totals += p.counters();
    result.cache_totals.hits += p.cache().stats().hits;
    result.cache_totals.misses += p.cache().stats().misses;
    result.cache_totals.evictions += p.cache().stats().evictions;
    result.cache_totals.invalidations += p.cache().stats().invalidations;
  }
  result.network = network_->stats();
  result.max_link_load = network_->max_link_load();
  result.contention_factor = network_->contention_factor();
  result.reinit_messages = reinit_->protocol_messages();
  return result;
}

void Machine::reset_stats() {
  for (auto& p : pes_) {
    p.counters() = AccessCounters{};
    p.cache().clear();
  }
  network_->reset();
}

}  // namespace sap
