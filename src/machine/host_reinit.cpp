#include "machine/host_reinit.hpp"

#include "machine/machine.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

HostReinitCoordinator::HostReinitCoordinator(Machine& machine)
    : machine_(machine) {}

PeId HostReinitCoordinator::host_of(ArrayId array) const {
  // Round-robin over array ids: "the compiler ensures that the host
  // processors are evenly distributed among the arrays" (§5).
  return static_cast<PeId>(array % machine_.num_pes());
}

HostReinitCoordinator::Round& HostReinitCoordinator::round_for(ArrayId array) {
  if (rounds_.size() <= array) {
    rounds_.resize(array + 1);
  }
  Round& round = rounds_[array];
  if (round.requested.size() != machine_.num_pes()) {
    round.requested.assign(machine_.num_pes(), false);
    round.count = 0;
  }
  return round;
}

bool HostReinitCoordinator::request_reinit(PeId pe, ArrayId array) {
  SAP_CHECK(pe < machine_.num_pes(), "PE id out of range");
  SaArray& target = machine_.arrays().at(array);
  Round& round = round_for(array);
  if (round.requested[pe]) {
    throw Error("protocol violation: PE " + std::to_string(pe) +
                " requested re-init of '" + target.name() +
                "' twice in one round");
  }
  round.requested[pe] = true;
  ++round.count;

  const PeId host = host_of(array);
  if (pe != host) {
    machine_.network().send({pe, host, MessageKind::kReinitRequest, 0});
    ++messages_;
  }

  if (round.count < machine_.num_pes()) return false;

  // Last request arrived: the host performs the re-initialization and
  // broadcasts the grant to every other PE (§5).
  target.reinitialize();
  machine_.invalidate_caches(array);
  for (PeId other = 0; other < machine_.num_pes(); ++other) {
    if (other == host) continue;
    machine_.network().send({host, other, MessageKind::kReinitGrant, 0});
    ++messages_;
  }
  round.requested.assign(machine_.num_pes(), false);
  round.count = 0;
  ++round.completed;
  return true;
}

std::uint32_t HostReinitCoordinator::pending_requests(ArrayId array) const {
  if (array >= rounds_.size() ||
      rounds_[array].requested.size() != machine_.num_pes()) {
    return machine_.num_pes();
  }
  return machine_.num_pes() - rounds_[array].count;
}

std::uint64_t HostReinitCoordinator::rounds_completed(ArrayId array) const {
  if (array >= rounds_.size()) return 0;
  return rounds_[array].completed;
}

}  // namespace sap
