// One processing element of the abstract machine: an id, a private page
// cache for remotely fetched pages, and its access counters.
#pragma once

#include <cstdint>

#include "cache/page_cache.hpp"
#include "stats/counters.hpp"

namespace sap {

class ProcessingElement {
 public:
  ProcessingElement(std::uint32_t id, std::int64_t cache_elements,
                    std::int64_t page_size, ReplacementPolicy policy,
                    std::uint64_t seed);

  std::uint32_t id() const noexcept { return id_; }

  PageCache& cache() noexcept { return cache_; }
  const PageCache& cache() const noexcept { return cache_; }

  AccessCounters& counters() noexcept { return counters_; }
  const AccessCounters& counters() const noexcept { return counters_; }

 private:
  std::uint32_t id_;
  PageCache cache_;
  AccessCounters counters_;
};

}  // namespace sap
