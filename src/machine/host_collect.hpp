// Vector-to-scalar operations via host-processor collection (§9).
//
// The paper's first future-research item: "How will vector to scalar
// operations be implemented? Current ideas include the extension of the
// host processor mechanism to allow collection of subrange results."
//
// This implements that idea: a global reduction over an array is split
// into per-PE partials — each PE combines the elements of the pages it
// owns (all local reads) — and the partials travel to the array's host
// PE, which folds them and writes the scalar result.  Communication is
// N-1 partial-result messages instead of the owner-computes alternative
// where one PE performs every read (mostly remote).  The A6/extension
// tests quantify the win.
#pragma once

#include <cstdint>
#include <functional>

#include "machine/machine.hpp"

namespace sap {

enum class CollectOp {
  kSum,
  kMin,
  kMax,
};

std::string to_string(CollectOp op);

struct CollectResult {
  double value = 0.0;
  /// Partial-result messages sent to the host (N-1 on an N-PE machine,
  /// minus PEs that own no pages of the array).
  std::uint64_t messages = 0;
  /// Elements each PE combined locally (diagnostics / balance checks).
  std::vector<std::int64_t> per_pe_elements;
};

/// Reduces every *defined* element of `array` with `op`, using the §9
/// host-collection protocol.  Reads are accounted on the owning PEs (all
/// local); the result is both returned and written into `result_array` at
/// linear index 0 by the host PE (which must own it for the write to be
/// legal under owner-computes — pass an array whose page 0 maps to the
/// host, or use the returned value directly).
CollectResult host_collect(Machine& machine, const SaArray& array,
                           CollectOp op);

/// As above, and commits the scalar into `target[target_linear]` on the
/// host PE (throws if the host does not own that element).
CollectResult host_collect_into(Machine& machine, const SaArray& array,
                                CollectOp op, SaArray& target,
                                std::int64_t target_linear);

}  // namespace sap
