#include "machine/host_collect.hpp"

#include <algorithm>
#include <limits>

#include "machine/host_reinit.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

std::string to_string(CollectOp op) {
  switch (op) {
    case CollectOp::kSum: return "sum";
    case CollectOp::kMin: return "min";
    case CollectOp::kMax: return "max";
  }
  return "?";
}

namespace {

double identity_of(CollectOp op) {
  switch (op) {
    case CollectOp::kSum:
      return 0.0;
    case CollectOp::kMin:
      return std::numeric_limits<double>::infinity();
    case CollectOp::kMax:
      return -std::numeric_limits<double>::infinity();
  }
  return 0.0;
}

double combine(CollectOp op, double a, double b) {
  switch (op) {
    case CollectOp::kSum: return a + b;
    case CollectOp::kMin: return std::min(a, b);
    case CollectOp::kMax: return std::max(a, b);
  }
  return a;
}

}  // namespace

CollectResult host_collect(Machine& machine, const SaArray& array,
                           CollectOp op) {
  const std::uint32_t pes = machine.num_pes();
  const PeId host = machine.reinit().host_of(array.id());

  CollectResult result;
  result.per_pe_elements.assign(pes, 0);

  // Phase 1: every PE folds the defined elements of its own pages.
  // Local reads only — this is the whole point of subrange collection.
  std::vector<double> partials(pes, identity_of(op));
  std::vector<bool> contributed(pes, false);
  for (std::int64_t linear = 0; linear < array.element_count(); ++linear) {
    if (!array.is_defined(linear)) continue;
    const PeId owner = machine.owner_of(array, linear);
    machine.account_read(owner, array, linear);
    partials[owner] = combine(op, partials[owner], array.read(linear));
    contributed[owner] = true;
    ++result.per_pe_elements[owner];
  }

  // Phase 2: partials gather at the host (the §5 mechanism, reused for
  // data).  A PE that owns no pages of the array stays silent.
  double folded = identity_of(op);
  for (PeId pe = 0; pe < pes; ++pe) {
    if (!contributed[pe]) continue;
    if (pe != host) {
      machine.network().send({pe, host, MessageKind::kPageReply,
                              /*payload_elements=*/1});
      ++result.messages;
    }
    folded = combine(op, folded, partials[pe]);
  }
  result.value = folded;
  return result;
}

CollectResult host_collect_into(Machine& machine, const SaArray& array,
                                CollectOp op, SaArray& target,
                                std::int64_t target_linear) {
  const PeId host = machine.reinit().host_of(array.id());
  if (machine.owner_of(target, target_linear) != host) {
    throw ConfigError(
        "host_collect_into: host PE " + std::to_string(host) +
        " does not own the target element (owner-computes would be "
        "violated); map the result array so its page lands on the host");
  }
  CollectResult result = host_collect(machine, array, op);
  machine.account_write(host, target, target_linear);
  target.write(target_linear, result.value);
  return result;
}

}  // namespace sap
