// Host-processor re-initialization protocol (§5).
//
// "Each array in a computation has a specific PE assigned to it as an
// administrative center called the host processor … For the
// re-initialization of some array A, each PE sends a re-initialization
// message to A's host processor. These messages are collected until the
// last PE has requested re-initialization. Once this happens, the host
// processor for A broadcasts a message to the other PEs informing them
// that A can now be reused."
//
// Host PEs are dealt round-robin over array ids, mirroring "the compiler
// ensures that the host processors are evenly distributed among the
// arrays."  Completion bumps the array generation (all cells undefined)
// and invalidates the array's pages in every PE cache.
#pragma once

#include <cstdint>
#include <vector>

#include "memory/page.hpp"
#include "partition/scheme.hpp"

namespace sap {

class Machine;

class HostReinitCoordinator {
 public:
  explicit HostReinitCoordinator(Machine& machine);

  /// The administrative host PE for an array.
  PeId host_of(ArrayId array) const;

  /// PE `pe` requests that `array` be re-initialized.  Returns true when
  /// this was the last outstanding request and the re-init was performed
  /// (generation bumped, caches invalidated, grant broadcast counted).
  /// A PE asking twice within one round is a protocol violation.
  bool request_reinit(PeId pe, ArrayId array);

  /// Number of PEs still to ask before `array` is re-initialized.
  std::uint32_t pending_requests(ArrayId array) const;

  /// Total protocol messages (requests + grants) issued so far.
  std::uint64_t protocol_messages() const noexcept { return messages_; }

  /// Completed re-initialization rounds per array (diagnostics).
  std::uint64_t rounds_completed(ArrayId array) const;

 private:
  struct Round {
    std::vector<bool> requested;  // indexed by PE
    std::uint32_t count = 0;
    std::uint64_t completed = 0;
  };

  Round& round_for(ArrayId array);

  Machine& machine_;
  std::vector<Round> rounds_;  // indexed by ArrayId
  std::uint64_t messages_ = 0;
};

}  // namespace sap
