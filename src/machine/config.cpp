#include "machine/config.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "support/error.hpp"

namespace sap {

std::string to_string(const ArrayPartitionSpec& spec) {
  if (spec.partition == PartitionKind::kBlockCyclic) {
    return "block-cyclic(b=" + std::to_string(spec.block_cyclic_pages) + ")";
  }
  return to_string(spec.partition);
}

namespace {

std::vector<ArrayPartitionOverride>::const_iterator find_override(
    const std::vector<ArrayPartitionOverride>& overrides,
    std::string_view array) {
  return std::find_if(
      overrides.begin(), overrides.end(),
      [&](const ArrayPartitionOverride& o) { return o.array == array; });
}

}  // namespace

ArrayPartitionSpec MachineConfig::partition_spec_for(
    std::string_view array) const {
  const auto it = find_override(per_array, array);
  return it == per_array.end() ? default_partition_spec() : it->spec;
}

bool MachineConfig::has_array_partition(std::string_view array) const {
  return find_override(per_array, array) != per_array.end();
}

MachineConfig MachineConfig::with_array_partition(
    std::string_view array, ArrayPartitionSpec spec) const {
  MachineConfig c = *this;
  const auto it = std::find_if(
      c.per_array.begin(), c.per_array.end(),
      [&](const ArrayPartitionOverride& o) { return o.array == array; });
  if (it != c.per_array.end()) {
    it->spec = spec;
    return c;
  }
  const auto pos = std::lower_bound(
      c.per_array.begin(), c.per_array.end(), array,
      [](const ArrayPartitionOverride& o, std::string_view name) {
        return o.array < name;
      });
  c.per_array.insert(pos, ArrayPartitionOverride{std::string(array), spec});
  return c;
}

MachineConfig MachineConfig::without_array_partition(
    std::string_view array) const {
  MachineConfig c = *this;
  std::erase_if(c.per_array, [&](const ArrayPartitionOverride& o) {
    return o.array == array;
  });
  return c;
}

void MachineConfig::validate() const {
  if (num_pes == 0) throw ConfigError("num_pes must be >= 1");
  if (page_size < 1) throw ConfigError("page_size must be >= 1");
  if (cache_elements < 0) throw ConfigError("cache_elements must be >= 0");
  if (cache_elements > 0 && cache_elements < page_size) {
    throw ConfigError(
        "cache smaller than one page: cache_elements=" +
        std::to_string(cache_elements) +
        " < page_size=" + std::to_string(page_size));
  }
  if (partition == PartitionKind::kBlockCyclic && block_cyclic_pages < 1) {
    throw ConfigError("block_cyclic_pages must be >= 1");
  }
  for (const ArrayPartitionOverride& o : per_array) {
    if (o.array.empty()) {
      throw ConfigError("per_array override with an empty array name");
    }
    if (o.spec.partition == PartitionKind::kBlockCyclic &&
        o.spec.block_cyclic_pages < 1) {
      throw ConfigError("per_array override for '" + o.array +
                        "': block_cyclic_pages must be >= 1");
    }
  }
  for (std::size_t i = 0; i < per_array.size(); ++i) {
    for (std::size_t j = i + 1; j < per_array.size(); ++j) {
      if (per_array[i].array == per_array[j].array) {
        throw ConfigError("duplicate per_array override for '" +
                          per_array[i].array + "'");
      }
    }
  }
  if (topology == TopologyKind::kHypercube && !std::has_single_bit(num_pes)) {
    throw ConfigError("hypercube topology needs a power-of-two PE count");
  }
}

std::string MachineConfig::to_string() const {
  std::ostringstream os;
  os << "pes=" << num_pes << " ps=" << page_size
     << " cache=" << cache_elements << " (" << sap::to_string(replacement)
     << ") partition=" << sap::to_string(default_partition_spec());
  if (!per_array.empty()) {
    // Print overrides sorted by name so hand-built unsorted vectors still
    // produce the canonical identity string.
    std::vector<const ArrayPartitionOverride*> sorted;
    sorted.reserve(per_array.size());
    for (const ArrayPartitionOverride& o : per_array) sorted.push_back(&o);
    std::sort(sorted.begin(), sorted.end(),
              [](const ArrayPartitionOverride* a,
                 const ArrayPartitionOverride* b) { return a->array < b->array; });
    os << " arrays=[";
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (i > 0) os << ',';
      os << sorted[i]->array << '=' << sap::to_string(sorted[i]->spec);
    }
    os << ']';
  }
  os << " topology=" << sap::to_string(topology);
  if (count_partial_page_refetch) os << " partial-refetch";
  if (seed != MachineConfig{}.seed) os << " seed=" << seed;
  return os.str();
}

}  // namespace sap
