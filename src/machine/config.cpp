#include "machine/config.hpp"

#include <bit>
#include <sstream>

#include "support/error.hpp"

namespace sap {

void MachineConfig::validate() const {
  if (num_pes == 0) throw ConfigError("num_pes must be >= 1");
  if (page_size < 1) throw ConfigError("page_size must be >= 1");
  if (cache_elements < 0) throw ConfigError("cache_elements must be >= 0");
  if (cache_elements > 0 && cache_elements < page_size) {
    throw ConfigError(
        "cache smaller than one page: cache_elements=" +
        std::to_string(cache_elements) +
        " < page_size=" + std::to_string(page_size));
  }
  if (partition == PartitionKind::kBlockCyclic && block_cyclic_pages < 1) {
    throw ConfigError("block_cyclic_pages must be >= 1");
  }
  if (topology == TopologyKind::kHypercube && !std::has_single_bit(num_pes)) {
    throw ConfigError("hypercube topology needs a power-of-two PE count");
  }
}

std::string MachineConfig::to_string() const {
  std::ostringstream os;
  os << "pes=" << num_pes << " ps=" << page_size
     << " cache=" << cache_elements << " (" << sap::to_string(replacement)
     << ") partition=" << sap::to_string(partition)
     << " topology=" << sap::to_string(topology);
  return os.str();
}

}  // namespace sap
