// Machine configuration: the knobs of the paper's simulation (§6) plus the
// extension knobs called out in §9 (partition scheme, replacement policy,
// topology, partial-page accounting) and the per-array partition assignment
// (DESIGN.md §14): a joint array→scheme mapping with a machine-wide default
// for unnamed arrays.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cache/replacement.hpp"
#include "network/topology.hpp"
#include "partition/scheme.hpp"

namespace sap {

/// One array's partition choice: a scheme kind plus the pages-per-block of
/// the block-cyclic scheme (meaningful only for kBlockCyclic).
struct ArrayPartitionSpec {
  PartitionKind partition = PartitionKind::kModulo;
  std::int64_t block_cyclic_pages = 2;

  /// Canonical form for interning/memo keys: the block is zeroed on non-BC
  /// schemes, where it is simulation-invisible (mirrors the PR 6 search
  /// interning rule).
  ArrayPartitionSpec canonical() const {
    return {partition,
            partition == PartitionKind::kBlockCyclic ? block_cyclic_pages : 0};
  }

  friend bool operator==(const ArrayPartitionSpec&,
                         const ArrayPartitionSpec&) = default;
};

/// "modulo", "block", or "block-cyclic(b=N)".
std::string to_string(const ArrayPartitionSpec& spec);

/// A named array's override of the machine-wide default spec.
struct ArrayPartitionOverride {
  std::string array;
  ArrayPartitionSpec spec;

  friend bool operator==(const ArrayPartitionOverride&,
                         const ArrayPartitionOverride&) = default;
};

struct MachineConfig {
  /// Number of processing elements ("number of processors", §6).
  std::uint32_t num_pes = 1;

  /// Page size "in units of atomic data elements" (§6). Paper sweeps 32/64.
  std::int64_t page_size = 32;

  /// Per-PE cache capacity in elements; the paper fixes 256.  0 disables
  /// the cache (every figure's "No Cache" series).
  std::int64_t cache_elements = 256;

  ReplacementPolicy replacement = ReplacementPolicy::kLru;

  PartitionKind partition = PartitionKind::kModulo;
  /// Pages per block for the block-cyclic scheme (ignored otherwise).
  std::int64_t block_cyclic_pages = 2;

  /// Per-array partition overrides, kept sorted by array name (the fluent
  /// helper maintains the order); arrays not named here use the
  /// machine-wide default above.
  std::vector<ArrayPartitionOverride> per_array;

  TopologyKind topology = TopologyKind::kCrossbar;

  /// §4 footnote: "a single page might have to be fetched more than once if
  /// that page is only partially filled at the time of the first request."
  /// The paper ignores this; turning it on makes pages uncacheable until
  /// they are completely defined.
  bool count_partial_page_refetch = false;

  /// Seed for random replacement / synthetic workloads.
  std::uint64_t seed = 0x5eed;

  /// The machine-wide default as a spec.
  ArrayPartitionSpec default_partition_spec() const {
    return {partition, block_cyclic_pages};
  }

  /// The spec governing `array`: its override when present, the
  /// machine-wide default otherwise.
  ArrayPartitionSpec partition_spec_for(std::string_view array) const;

  /// True when `array` carries an explicit override.
  bool has_array_partition(std::string_view array) const;

  /// Throws ConfigError when inconsistent.
  void validate() const;

  /// Covers every simulation-visible field (the sweep memo key is this
  /// string), including the block-cyclic block, partial-page switch,
  /// non-default seed and the per-array assignment.
  std::string to_string() const;

  // Fluent helpers keep sweep code terse.
  MachineConfig with_pes(std::uint32_t n) const {
    MachineConfig c = *this;
    c.num_pes = n;
    return c;
  }
  MachineConfig with_page_size(std::int64_t ps) const {
    MachineConfig c = *this;
    c.page_size = ps;
    return c;
  }
  MachineConfig with_cache(std::int64_t elements) const {
    MachineConfig c = *this;
    c.cache_elements = elements;
    return c;
  }
  MachineConfig with_partition(PartitionKind kind) const {
    MachineConfig c = *this;
    c.partition = kind;
    return c;
  }
  MachineConfig with_block_cyclic_pages(std::int64_t pages) const {
    MachineConfig c = *this;
    c.block_cyclic_pages = pages;
    return c;
  }
  MachineConfig with_replacement(ReplacementPolicy policy) const {
    MachineConfig c = *this;
    c.replacement = policy;
    return c;
  }
  MachineConfig with_topology(TopologyKind kind) const {
    MachineConfig c = *this;
    c.topology = kind;
    return c;
  }
  /// Adds or replaces `array`'s override, keeping per_array sorted by name.
  MachineConfig with_array_partition(std::string_view array,
                                     ArrayPartitionSpec spec) const;
  MachineConfig with_array_partition(std::string_view array,
                                     PartitionKind kind,
                                     std::int64_t block_pages = 2) const {
    return with_array_partition(array, ArrayPartitionSpec{kind, block_pages});
  }
  /// Drops `array`'s override (no-op when absent).
  MachineConfig without_array_partition(std::string_view array) const;
};

}  // namespace sap
