// Machine configuration: the knobs of the paper's simulation (§6) plus the
// extension knobs called out in §9 (partition scheme, replacement policy,
// topology, partial-page accounting).
#pragma once

#include <cstdint>
#include <string>

#include "cache/replacement.hpp"
#include "network/topology.hpp"
#include "partition/scheme.hpp"

namespace sap {

struct MachineConfig {
  /// Number of processing elements ("number of processors", §6).
  std::uint32_t num_pes = 1;

  /// Page size "in units of atomic data elements" (§6). Paper sweeps 32/64.
  std::int64_t page_size = 32;

  /// Per-PE cache capacity in elements; the paper fixes 256.  0 disables
  /// the cache (every figure's "No Cache" series).
  std::int64_t cache_elements = 256;

  ReplacementPolicy replacement = ReplacementPolicy::kLru;

  PartitionKind partition = PartitionKind::kModulo;
  /// Pages per block for the block-cyclic scheme (ignored otherwise).
  std::int64_t block_cyclic_pages = 2;

  TopologyKind topology = TopologyKind::kCrossbar;

  /// §4 footnote: "a single page might have to be fetched more than once if
  /// that page is only partially filled at the time of the first request."
  /// The paper ignores this; turning it on makes pages uncacheable until
  /// they are completely defined.
  bool count_partial_page_refetch = false;

  /// Seed for random replacement / synthetic workloads.
  std::uint64_t seed = 0x5eed;

  /// Throws ConfigError when inconsistent.
  void validate() const;

  std::string to_string() const;

  // Fluent helpers keep sweep code terse.
  MachineConfig with_pes(std::uint32_t n) const {
    MachineConfig c = *this;
    c.num_pes = n;
    return c;
  }
  MachineConfig with_page_size(std::int64_t ps) const {
    MachineConfig c = *this;
    c.page_size = ps;
    return c;
  }
  MachineConfig with_cache(std::int64_t elements) const {
    MachineConfig c = *this;
    c.cache_elements = elements;
    return c;
  }
  MachineConfig with_partition(PartitionKind kind) const {
    MachineConfig c = *this;
    c.partition = kind;
    return c;
  }
  MachineConfig with_replacement(ReplacementPolicy policy) const {
    MachineConfig c = *this;
    c.replacement = policy;
    return c;
  }
  MachineConfig with_topology(TopologyKind kind) const {
    MachineConfig c = *this;
    c.topology = kind;
    return c;
  }
};

}  // namespace sap
