#include "machine/pe.hpp"

namespace sap {

ProcessingElement::ProcessingElement(std::uint32_t id,
                                     std::int64_t cache_elements,
                                     std::int64_t page_size,
                                     ReplacementPolicy policy,
                                     std::uint64_t seed)
    : id_(id),
      // Distinct, deterministic per-PE seeds so random replacement does not
      // correlate across PEs.
      cache_(cache_elements, page_size, policy, seed ^ (0x9e37u + id * 2654435761u)) {
  cache_.attribute_pe(id);
}

}  // namespace sap
