#include "core/dataflow_trace.hpp"

#include <variant>

#include "support/check.hpp"

namespace sap {

namespace {

void collect_free_vars(const Expr& expr,
                       std::vector<const std::string*>& out) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, VarRef>) {
          for (const std::string* name : out) {
            if (*name == node.name) return;
          }
          out.push_back(&node.name);
        } else if constexpr (std::is_same_v<T, ArrayRefExpr>) {
          for (const ExprPtr& idx : node.indices) {
            collect_free_vars(*idx, out);
          }
        } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
          for (const ExprPtr& arg : node.args) {
            collect_free_vars(*arg, out);
          }
        } else if constexpr (std::is_same_v<T, UnaryNeg>) {
          collect_free_vars(*node.operand, out);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          collect_free_vars(*node.lhs, out);
          collect_free_vars(*node.rhs, out);
        } else if constexpr (std::is_same_v<T, CompareExpr>) {
          collect_free_vars(*node.lhs, out);
          collect_free_vars(*node.rhs, out);
        }
        // NumberLit: nothing.
      },
      expr.node);
}

}  // namespace

const EnvLayout& EnvLayoutCache::layout_for(const ArrayAssign& stmt) {
  const auto it = layouts_.find(&stmt);
  if (it != layouts_.end()) return *it->second;
  auto layout = std::make_unique<EnvLayout>();
  collect_free_vars(*stmt.value, layout->names);
  const EnvLayout& ref = *layout;
  layouts_.emplace(&stmt, std::move(layout));
  return ref;
}

TraceInstance& InstanceStream::append() {
  const std::size_t chunk = size_ / kChunkSize;
  if (chunk == chunks_.size()) {
    auto fresh = std::make_unique<Chunk>();
    const std::lock_guard<std::mutex> lock(chunks_mutex_);
    chunks_.push_back(std::move(fresh));
  }
  TraceInstance& slot = chunks_[chunk]->items[size_ % kChunkSize];
  ++size_;
  return slot;
}

const InstanceStream::Chunk* InstanceStream::chunk_at(std::size_t chunk) const {
  const std::lock_guard<std::mutex> lock(chunks_mutex_);
  return chunks_[chunk].get();
}

// The pulse runs *before* a new slot is appended (and from finalize()),
// so at publication time every appended slot has been completely filled —
// the builder fills each emitted slot synchronously before its next call.
TraceInstance& StreamingSink::emit(PeId pe) {
  if (unpublished_ >= kPublishBatch) pulse();
  TraceInstance& slot = set_.streams[pe].append();
  ++unpublished_;
  return slot;
}

void StreamingSink::emit_reinit(ArrayId array) {
  if (unpublished_ >= kPublishBatch) pulse();
  for (InstanceStream& stream : set_.streams) {
    TraceInstance& inst = stream.append();
    inst.kind = TraceInstance::Kind::kReinit;
    inst.env_count = 0;
    inst.array = array;
    inst.stmt = nullptr;
    inst.layout = nullptr;
    inst.target_linear = 0;
    ++unpublished_;
  }
}

void StreamingSink::finalize() { pulse(); }

void StreamingSink::pulse() {
  for (InstanceStream& stream : set_.streams) {
    stream.publish();
  }
  unpublished_ = 0;
  if (on_publish_) on_publish_();
}

TraceBuilder::TraceBuilder(const CompiledProgram& compiled,
                           const Partitioner& partitioner, TraceSink& sink,
                           EnvLayoutCache& layouts)
    : compiled_(compiled),
      partitioner_(partitioner),
      sink_(sink),
      layouts_(layouts) {}

void TraceBuilder::build() {
  materialize_arrays(compiled_, scratch_);
  execute(compiled_, scratch_);
  sink_.finalize();
}

PeId TraceBuilder::owner_of(const SaArray& array, std::int64_t linear) {
  return partitioner_.owner_of_element(array, linear);
}

bool TraceBuilder::tolerate_undefined_reads() const {
  // The trace pass resolves control and ownership only; values are
  // recomputed during replay against the real I-structure store, where
  // a read-before-write manifests as the machine-level deadlock.
  return true;
}

void TraceBuilder::capture_env(const ArrayAssign& assign, const EvalEnv& env,
                               TraceInstance& inst) {
  LayoutSlots* cached = nullptr;
  for (LayoutSlots& entry : slot_cache_) {
    if (entry.key == &assign) {
      cached = &entry;
      break;
    }
  }
  if (cached == nullptr) {
    slot_cache_.push_back(LayoutSlots{});
    cached = &slot_cache_.back();
    cached->key = &assign;
    cached->layout = &layouts_.layout_for(assign);
    cached->env_version = 0;  // forces slot resolution below
  }
  const EnvLayout& layout = *cached->layout;
  if (cached->env_version != env.version() ||
      cached->slots.size() != layout.names.size()) {
    cached->slots.clear();
    cached->slots.reserve(layout.names.size());
    for (const std::string* name : layout.names) {
      const double* slot = env.find_slot(*name);
      SAP_CHECK(slot != nullptr, "free variable unbound at trace time");
      cached->slots.push_back(slot);
    }
    cached->env_version = env.version();
  }

  const std::size_t count = layout.names.size();
  SAP_CHECK(count <= 255, "statement references too many variables");
  inst.layout = &layout;
  inst.env_count = static_cast<std::uint8_t>(count);
  double* out = inst.env.data();
  if (count > kInlineEnvSlots) {
    inst.env_spill = std::make_unique<double[]>(count);
    out = inst.env_spill.get();
  }
  for (std::size_t i = 0; i < count; ++i) out[i] = *cached->slots[i];
}

void TraceBuilder::on_instance(const ArrayAssign& assign, PeId pe,
                               std::int64_t target_linear, const EvalEnv& env,
                               bool is_commit) {
  TraceInstance& inst = sink_.emit(pe);
  inst.stmt = &assign;
  inst.array = scratch_.by_name(assign.array).id();
  inst.target_linear = target_linear;
  if (is_commit) {
    inst.kind = TraceInstance::Kind::kCommit;
    inst.env_count = 0;
    inst.layout = nullptr;
  } else {
    inst.kind = assign.is_reduction ? TraceInstance::Kind::kAccumulate
                                    : TraceInstance::Kind::kStatement;
    capture_env(assign, env, inst);
  }
}

void TraceBuilder::on_reinit(const SaArray& array) {
  sink_.emit_reinit(array.id());
  SequentialExecutor::on_reinit(array);  // keep scratch values coherent
}

}  // namespace sap
