#include "core/empirical_classifier.hpp"

#include <algorithm>
#include <sstream>

#include "core/sweep.hpp"

namespace sap {

EmpiricalClassification classify_empirical(const CompiledProgram& compiled,
                                           const MachineConfig& base) {
  // Single-PE runs are trivially 0% remote; sweep multi-PE counts only.
  const std::vector<std::uint32_t> pes{2, 4, 8, 16, 32};

  const SweepSeries cached = sweep_pes(compiled, base, pes, "cache",
                                       remote_read_percent());
  const SweepSeries nocache = sweep_pes(compiled, base.with_cache(0), pes,
                                        "nocache", remote_read_percent());

  EmpiricalClassification out;
  out.cached_min_percent = cached.min_y();
  out.cached_max_percent = cached.max_y();
  out.cached_first_percent = cached.points.front().y;
  out.cached_last_percent = cached.points.back().y;
  out.nocache_max_percent = nocache.max_y();

  std::ostringstream why;
  if (out.nocache_max_percent < 0.5 && out.cached_max_percent < 0.5) {
    out.cls = AccessClass::kMatched;
    why << "remote reads ~0% at every PE count";
  } else if (out.cached_min_percent > 20.0) {
    // §7.1.4: "RD exhibits large remote access ratios regardless of the
    // presence or absence of caching."
    out.cls = AccessClass::kRandom;
    why << "cache leaves >=" << out.cached_min_percent
        << "% remote at every PE count";
  } else if (out.cached_last_percent <= 0.6 * out.cached_first_percent &&
             out.cached_first_percent > 0.5) {
    // §7.1.3: remote% "decreases ... as the number of PEs increases".
    out.cls = AccessClass::kCyclic;
    why << "cached remote% falls from " << out.cached_first_percent
        << "% to " << out.cached_last_percent << "% as PEs grow";
  } else if (out.cached_max_percent <= 12.0 &&
             out.nocache_max_percent <= 25.0) {
    // §7.1.2: low remote% whose no-cache penalty is just the skew cost.
    out.cls = AccessClass::kSkewed;
    why << "cached remote% stays low (max " << out.cached_max_percent
        << "%) with a modest no-cache penalty";
  } else if (out.cached_max_percent <= 12.0) {
    // §7.1.3's other signature: "without a cache, CD displays poor
    // performance ... with a cache the percentage of remote accesses
    // decreases" — the cache rescues a pattern that jumps page to page.
    out.cls = AccessClass::kCyclic;
    why << "cache rescues a poor pattern: " << out.nocache_max_percent
        << "% remote uncached vs " << out.cached_max_percent << "% cached";
  } else {
    out.cls = AccessClass::kRandom;
    why << "cached remote% high (max " << out.cached_max_percent
        << "%) without the cyclic decrease";
  }
  out.rationale = why.str();
  return out;
}

}  // namespace sap
