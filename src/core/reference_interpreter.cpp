#include "core/reference_interpreter.hpp"

#include "core/executor_base.hpp"

namespace sap {

std::unique_ptr<ArrayRegistry> run_reference(const CompiledProgram& compiled) {
  auto registry = std::make_unique<ArrayRegistry>();
  materialize_arrays(compiled, *registry);
  SequentialExecutor executor;  // default hooks: no machine, no accounting
  executor.execute(compiled, *registry);
  return registry;
}

}  // namespace sap
