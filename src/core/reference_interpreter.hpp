// Reference interpreter: plain sequential execution with no machine, no
// partitioning and no accounting.  Produces the ground-truth array values
// the two machine interpreters are tested against, and traps any
// single-assignment violation (DoubleWriteError / UndefinedReadError).
#pragma once

#include <memory>

#include "core/simulator.hpp"
#include "memory/array_registry.hpp"

namespace sap {

/// Runs the program sequentially; returns the registry with final values.
std::unique_ptr<ArrayRegistry> run_reference(const CompiledProgram& compiled);

}  // namespace sap
