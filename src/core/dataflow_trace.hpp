// The dataflow trace: per-PE screened instance streams (§3).
//
// A sequential pass (TraceBuilder) resolves control — loop bounds, scalar
// arithmetic, indirect indices — against a private scratch registry and
// screens every statement instance to its owner PE (§2 owner-computes).
// The replay (core/dataflow_replay.hpp) then re-executes each instance
// against the real I-structure store.
//
// Two things distinguish this from a plain event log:
//
//  * Compact environments.  An instance does not snapshot the whole scalar
//    environment (the old representation); it stores only the values of the
//    *free variables* of its statement's value expression, in the fixed
//    order given by that statement's EnvLayout.  The replay re-binds
//    exactly those names, so evaluation sees the same values as a full
//    snapshot would — everything else in the environment is out of scope
//    for the expression by sema's scoping rules.
//
//  * Streaming publication.  InstanceStream is a single-producer,
//    multi-consumer chunked sequence: the trace pass appends and
//    periodically *publishes* (a release store of the visible size), and
//    replay shards may start consuming published prefixes while the trace
//    is still running.  Chunks are address-stable, so consumers never race
//    the producer's appends; the serial interpreter uses the same container
//    uncontended.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/executor_base.hpp"
#include "core/simulator.hpp"
#include "partition/partitioner.hpp"

namespace sap {

/// Fixed capture order for one statement's free value-expression variables.
struct EnvLayout {
  std::vector<const std::string*> names;  // deduped, point into the AST
};

/// Lazily built EnvLayout per assignment statement.  Populated only by the
/// (single-threaded) trace pass; replay shards merely dereference the
/// stable EnvLayout pointers carried by published instances.
class EnvLayoutCache {
 public:
  const EnvLayout& layout_for(const ArrayAssign& stmt);

 private:
  std::unordered_map<const ArrayAssign*, std::unique_ptr<EnvLayout>> layouts_;
};

inline constexpr std::size_t kInlineEnvSlots = 8;

/// One screened statement instance of a PE's stream.
struct TraceInstance {
  enum class Kind : std::uint8_t { kStatement, kAccumulate, kCommit, kReinit };
  Kind kind = Kind::kStatement;
  std::uint8_t env_count = 0;
  ArrayId array = 0;                  // target array (all kinds)
  const ArrayAssign* stmt = nullptr;  // null for kReinit
  const EnvLayout* layout = nullptr;  // null for kCommit / kReinit
  std::int64_t target_linear = 0;
  std::array<double, kInlineEnvSlots> env{};  // values, layout order
  std::unique_ptr<double[]> env_spill;        // env_count > kInlineEnvSlots

  const double* env_values() const noexcept {
    return env_count <= kInlineEnvSlots ? env.data() : env_spill.get();
  }
};

/// Single-producer / multi-consumer append-only sequence of instances.
/// The producer appends and publish()es; consumers read indices below
/// published() through a Reader (which caches the current chunk and takes
/// the growth mutex only on chunk boundaries).
class InstanceStream {
 private:
  struct Chunk;

 public:
  static constexpr std::size_t kChunkSize = 256;

  InstanceStream() = default;
  InstanceStream(const InstanceStream&) = delete;
  InstanceStream& operator=(const InstanceStream&) = delete;

  /// Producer: slot for the next instance (unpublished until publish()).
  TraceInstance& append();

  /// Producer: makes every appended instance visible to consumers.
  void publish() noexcept {
    published_.store(size_, std::memory_order_release);
  }

  /// Producer-side count (appended, possibly unpublished).
  std::size_t size() const noexcept { return size_; }

  /// Consumer: count of visible instances.
  std::size_t published() const noexcept {
    return published_.load(std::memory_order_acquire);
  }

  /// Consumer-side cursor into one stream.  Each consumer owns its Reader.
  class Reader {
   public:
    Reader() = default;
    explicit Reader(const InstanceStream& stream) : stream_(&stream) {}

    /// `i` must be < stream.published().
    const TraceInstance& get(std::size_t i) {
      const std::size_t chunk = i / kChunkSize;
      if (chunk != cached_chunk_ || cached_ == nullptr) {
        cached_ = stream_->chunk_at(chunk);
        cached_chunk_ = chunk;
      }
      return cached_->items[i % kChunkSize];
    }

   private:
    const InstanceStream* stream_ = nullptr;
    const Chunk* cached_ = nullptr;
    std::size_t cached_chunk_ = static_cast<std::size_t>(-1);
  };

 private:
  struct Chunk {
    std::array<TraceInstance, kChunkSize> items;
  };

  const Chunk* chunk_at(std::size_t chunk) const;

  // Chunk pointers are stable; only the index vector grows (under mutex).
  std::vector<std::unique_ptr<Chunk>> chunks_;
  mutable std::mutex chunks_mutex_;
  std::size_t size_ = 0;
  // Consumers poll published_ while the producer appends at full rate;
  // keep the line to itself so the polls never stall the appends.
  alignas(64) std::atomic<std::size_t> published_{0};
  char pad_[64 - sizeof(std::atomic<std::size_t>)];
};

/// Where the trace pass delivers instances (sequential program order).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual TraceInstance& emit(PeId pe) = 0;        // slot to fill
  virtual void emit_reinit(ArrayId array) = 0;     // appended to all streams
  virtual void finalize() = 0;                     // publish the tail
};

/// The per-PE streams plus the layout cache the instances point into.
struct StreamSet {
  explicit StreamSet(std::uint32_t num_pes) : streams(num_pes) {}
  std::vector<InstanceStream> streams;
  EnvLayoutCache layouts;
};

/// TraceSink writing into a StreamSet, publishing every kPublishBatch
/// emitted instances; `on_publish` (optional) fires after each publication
/// pulse — the sharded runtime uses it to wake input-starved shards.
class StreamingSink final : public TraceSink {
 public:
  // Big enough that the producer's publication pulses (and the shard wakes
  // they trigger) are noise next to the tracing itself; small enough that
  // consumers keep streaming while the trace runs.
  static constexpr std::size_t kPublishBatch = 1024;

  explicit StreamingSink(StreamSet& set,
                         std::function<void()> on_publish = nullptr)
      : set_(set), on_publish_(std::move(on_publish)) {}

  TraceInstance& emit(PeId pe) override;
  void emit_reinit(ArrayId array) override;
  void finalize() override;

 private:
  void pulse();

  StreamSet& set_;
  std::function<void()> on_publish_;
  std::size_t unpublished_ = 0;
};

/// Sequential pass that resolves control and screens instances per PE.
/// Values are computed locally (a private registry) only to resolve
/// indirect indices; they are discarded afterwards.
class TraceBuilder final : public SequentialExecutor {
 public:
  TraceBuilder(const CompiledProgram& compiled, const Partitioner& partitioner,
               TraceSink& sink, EnvLayoutCache& layouts);

  /// Runs the whole trace pass, finalizing the sink.
  void build();

 protected:
  PeId owner_of(const SaArray& array, std::int64_t linear) override;
  void on_instance(const ArrayAssign& assign, PeId pe,
                   std::int64_t target_linear, const EvalEnv& env,
                   bool is_commit) override;
  void on_reinit(const SaArray& array) override;
  bool tolerate_undefined_reads() const override;

 private:
  void capture_env(const ArrayAssign& assign, const EvalEnv& env,
                   TraceInstance& inst);

  /// Per-statement slot-pointer cache for fast env capture: valid while the
  /// environment's binding layout (its version) is unchanged.
  struct LayoutSlots {
    const ArrayAssign* key = nullptr;
    const EnvLayout* layout = nullptr;
    std::uint64_t env_version = 0;
    std::vector<const double*> slots;
  };

  const CompiledProgram& compiled_;
  const Partitioner& partitioner_;
  TraceSink& sink_;
  EnvLayoutCache& layouts_;
  ArrayRegistry scratch_;
  std::vector<LayoutSlots> slot_cache_;
};

}  // namespace sap
