#include "core/sweep.hpp"

namespace sap {

Metric remote_read_percent() {
  return [](const SimulationResult& result) {
    return result.remote_read_fraction() * 100.0;
  };
}

SweepSeries sweep_pes(const CompiledProgram& compiled,
                      const MachineConfig& base,
                      const std::vector<std::uint32_t>& pe_counts,
                      std::string label, const Metric& metric) {
  SweepSeries series;
  series.label = std::move(label);
  for (const std::uint32_t pes : pe_counts) {
    const Simulator sim(base.with_pes(pes));
    series.add(static_cast<double>(pes), metric(sim.run(compiled)));
  }
  return series;
}

SweepSeries sweep_page_sizes(const CompiledProgram& compiled,
                             const MachineConfig& base,
                             const std::vector<std::int64_t>& page_sizes,
                             std::string label, const Metric& metric) {
  SweepSeries series;
  series.label = std::move(label);
  for (const std::int64_t ps : page_sizes) {
    const Simulator sim(base.with_page_size(ps));
    series.add(static_cast<double>(ps), metric(sim.run(compiled)));
  }
  return series;
}

SweepSeries sweep_cache_sizes(const CompiledProgram& compiled,
                              const MachineConfig& base,
                              const std::vector<std::int64_t>& cache_sizes,
                              std::string label, const Metric& metric) {
  SweepSeries series;
  series.label = std::move(label);
  for (const std::int64_t cache : cache_sizes) {
    const Simulator sim(base.with_cache(cache));
    series.add(static_cast<double>(cache), metric(sim.run(compiled)));
  }
  return series;
}

std::vector<SweepSeries> figure_series(
    const CompiledProgram& compiled, const MachineConfig& base,
    const std::vector<std::uint32_t>& pe_counts,
    const std::vector<std::int64_t>& page_sizes) {
  std::vector<SweepSeries> out;
  for (const std::int64_t ps : page_sizes) {
    out.push_back(sweep_pes(compiled, base.with_page_size(ps), pe_counts,
                            "Cache, ps " + std::to_string(ps),
                            remote_read_percent()));
  }
  for (const std::int64_t ps : page_sizes) {
    out.push_back(sweep_pes(compiled, base.with_page_size(ps).with_cache(0),
                            pe_counts, "No Cache, ps " + std::to_string(ps),
                            remote_read_percent()));
  }
  return out;
}

}  // namespace sap
