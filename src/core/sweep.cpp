#include "core/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"

namespace sap {

Metric remote_read_percent() {
  return [](const SimulationResult& result) {
    return result.remote_read_fraction() * 100.0;
  };
}

std::vector<SimulationResult> parallel_sweep_results(
    const std::vector<SweepJob>& jobs, ThreadPool* pool) {
  for (const SweepJob& job : jobs) {
    SAP_CHECK(job.program != nullptr, "SweepJob without a program");
  }
  obs::Span span("sweep", "batch");
  span.arg("jobs", static_cast<std::int64_t>(jobs.size()));
  static obs::Counter& batches = obs::counter("sweep/batches");
  static obs::Counter& job_count = obs::counter("sweep/jobs");
  batches.add(1);
  job_count.add(jobs.size());
  std::vector<SimulationResult> results(jobs.size());
  const auto run_one = [&](std::size_t i) {
    const Simulator sim(jobs[i].config);
    if (obs::collecting()) {
      const auto start = std::chrono::steady_clock::now();
      results[i] = sim.run(*jobs[i].program, jobs[i].mode);
      const auto elapsed = std::chrono::steady_clock::now() - start;
      obs::histogram("sweep/run_ns")
          .record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()));
    } else {
      results[i] = sim.run(*jobs[i].program, jobs[i].mode);
    }
  };
  if (pool == nullptr || jobs.size() <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) run_one(i);
  } else {
    parallel_for_each(*pool, jobs.size(), run_one);
  }
  return results;
}

std::string config_identity(const MachineConfig& config) {
  // to_string() covers every simulation-visible field — the block-cyclic
  // block, partial-page switch, non-default seed and the per-array
  // assignment — so it IS the memo key.  (It deliberately omits fields a
  // simulation cannot observe, e.g. the block size under a non-BC default,
  // which makes the memo slightly more effective, not less sound.)
  return config.to_string();
}

BudgetedSweeper::BudgetedSweeper(const CompiledProgram& program,
                                 ExecutionMode mode, std::size_t budget,
                                 ThreadPool* pool)
    : program_(program), mode_(mode), budget_(budget), pool_(pool) {}

const SimulationResult* BudgetedSweeper::find(const std::string& key) const {
  for (const auto& [memo_key, result] : memo_) {
    if (memo_key == key) return result.get();
  }
  return nullptr;
}

std::vector<const SimulationResult*> BudgetedSweeper::measure(
    const std::vector<MachineConfig>& configs) {
  // Assemble the batch: first occurrence of each unmeasured config, in
  // request order, until the budget is spent.
  std::vector<std::string> keys;
  keys.reserve(configs.size());
  for (const MachineConfig& config : configs) {
    keys.push_back(config_identity(config));
  }
  static obs::Counter& memo_hits = obs::counter("advisor/memo_hits");
  static obs::Counter& measured_runs = obs::counter("advisor/measured_runs");
  std::vector<SweepJob> jobs;
  std::vector<std::string> job_keys;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (spent_ + jobs.size() >= budget_) break;
    if (find(keys[i]) != nullptr) {
      memo_hits.add(1);
      continue;
    }
    if (std::find(job_keys.begin(), job_keys.end(), keys[i]) !=
        job_keys.end()) {
      memo_hits.add(1);
      continue;  // duplicate within this very request
    }
    jobs.push_back({&program_, configs[i], mode_});
    job_keys.push_back(keys[i]);
  }

  const std::vector<SimulationResult> results =
      parallel_sweep_results(jobs, pool_);
  measured_runs.add(results.size());
  for (std::size_t j = 0; j < results.size(); ++j) {
    memo_.emplace_back(job_keys[j],
                       std::make_unique<SimulationResult>(results[j]));
  }
  spent_ += results.size();

  std::vector<const SimulationResult*> out;
  out.reserve(configs.size());
  for (const std::string& key : keys) out.push_back(find(key));
  return out;
}

SweepGrid sweep_grid(const std::vector<CompiledProgram>& programs,
                     const std::vector<MachineConfig>& configs,
                     ThreadPool* pool) {
  std::vector<SweepJob> jobs;
  jobs.reserve(programs.size() * configs.size());
  for (const CompiledProgram& program : programs) {
    for (const MachineConfig& config : configs) {
      jobs.push_back({&program, config, ExecutionMode::kCounting});
    }
  }
  return {configs.size(), parallel_sweep_results(jobs, pool)};
}

std::vector<double> parallel_sweep(const CompiledProgram& compiled,
                                   const std::vector<MachineConfig>& configs,
                                   const Metric& metric, ThreadPool* pool) {
  std::vector<SweepJob> jobs;
  jobs.reserve(configs.size());
  for (const MachineConfig& config : configs) {
    jobs.push_back({&compiled, config, ExecutionMode::kCounting});
  }
  const std::vector<SimulationResult> results =
      parallel_sweep_results(jobs, pool);
  std::vector<double> values;
  values.reserve(results.size());
  for (const SimulationResult& result : results) {
    values.push_back(metric(result));
  }
  return values;
}

namespace {

/// Zips precomputed x values with the swept metric values into a series.
SweepSeries make_series(std::string label, const std::vector<double>& xs,
                        const std::vector<double>& ys) {
  SweepSeries series;
  series.label = std::move(label);
  for (std::size_t i = 0; i < xs.size(); ++i) series.add(xs[i], ys[i]);
  return series;
}

}  // namespace

std::vector<SweepSeries> grid_series(const SweepGrid& grid,
                                     const std::vector<std::string>& labels,
                                     const std::vector<double>& xs,
                                     const Metric& metric) {
  SAP_CHECK(labels.size() * grid.columns == grid.results.size(),
            "grid_series: one label per grid row required");
  SAP_CHECK(xs.size() == grid.columns,
            "grid_series: one x per grid column required");
  std::vector<SweepSeries> out;
  out.reserve(labels.size());
  for (std::size_t k = 0; k < labels.size(); ++k) {
    std::vector<double> ys;
    ys.reserve(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      ys.push_back(metric(grid.at(k, i)));
    }
    out.push_back(make_series(labels[k], xs, ys));
  }
  return out;
}

SweepSeries sweep_pes(const CompiledProgram& compiled,
                      const MachineConfig& base,
                      const std::vector<std::uint32_t>& pe_counts,
                      std::string label, const Metric& metric,
                      ThreadPool* pool) {
  std::vector<MachineConfig> configs;
  std::vector<double> xs;
  configs.reserve(pe_counts.size());
  xs.reserve(pe_counts.size());
  for (const std::uint32_t pes : pe_counts) {
    configs.push_back(base.with_pes(pes));
    xs.push_back(static_cast<double>(pes));
  }
  return make_series(std::move(label), xs,
                     parallel_sweep(compiled, configs, metric, pool));
}

SweepSeries sweep_page_sizes(const CompiledProgram& compiled,
                             const MachineConfig& base,
                             const std::vector<std::int64_t>& page_sizes,
                             std::string label, const Metric& metric,
                             ThreadPool* pool) {
  std::vector<MachineConfig> configs;
  std::vector<double> xs;
  configs.reserve(page_sizes.size());
  xs.reserve(page_sizes.size());
  for (const std::int64_t ps : page_sizes) {
    configs.push_back(base.with_page_size(ps));
    xs.push_back(static_cast<double>(ps));
  }
  return make_series(std::move(label), xs,
                     parallel_sweep(compiled, configs, metric, pool));
}

SweepSeries sweep_cache_sizes(const CompiledProgram& compiled,
                              const MachineConfig& base,
                              const std::vector<std::int64_t>& cache_sizes,
                              std::string label, const Metric& metric,
                              ThreadPool* pool) {
  std::vector<MachineConfig> configs;
  std::vector<double> xs;
  configs.reserve(cache_sizes.size());
  xs.reserve(cache_sizes.size());
  for (const std::int64_t cache : cache_sizes) {
    configs.push_back(base.with_cache(cache));
    xs.push_back(static_cast<double>(cache));
  }
  return make_series(std::move(label), xs,
                     parallel_sweep(compiled, configs, metric, pool));
}

std::vector<SweepSeries> figure_series(
    const CompiledProgram& compiled, const MachineConfig& base,
    const std::vector<std::uint32_t>& pe_counts,
    const std::vector<std::int64_t>& page_sizes, ThreadPool* pool) {
  // Flatten all (series, point) pairs into one batch so every simulation
  // of the figure fans across the pool at once.
  std::vector<MachineConfig> configs;
  std::vector<std::string> labels;
  configs.reserve(2 * page_sizes.size() * pe_counts.size());
  for (const std::int64_t ps : page_sizes) {
    labels.push_back("Cache, ps " + std::to_string(ps));
    for (const std::uint32_t pes : pe_counts) {
      configs.push_back(base.with_page_size(ps).with_pes(pes));
    }
  }
  for (const std::int64_t ps : page_sizes) {
    labels.push_back("No Cache, ps " + std::to_string(ps));
    for (const std::uint32_t pes : pe_counts) {
      configs.push_back(base.with_page_size(ps).with_cache(0).with_pes(pes));
    }
  }

  const std::vector<double> values =
      parallel_sweep(compiled, configs, remote_read_percent(), pool);

  std::vector<double> xs;
  xs.reserve(pe_counts.size());
  for (const std::uint32_t pes : pe_counts) {
    xs.push_back(static_cast<double>(pes));
  }

  std::vector<SweepSeries> out;
  out.reserve(labels.size());
  for (std::size_t s = 0; s < labels.size(); ++s) {
    const std::vector<double> ys(
        values.begin() + static_cast<std::ptrdiff_t>(s * xs.size()),
        values.begin() + static_cast<std::ptrdiff_t>((s + 1) * xs.size()));
    out.push_back(make_series(labels[s], xs, ys));
  }
  return out;
}

}  // namespace sap
