// Empirical access-pattern classification.
//
// The paper derives its four classes from simulation curves ("by examining
// graphs produced by the simulation data, we were able to classify the
// various loops", §7.1).  This classifier does the same mechanically from
// a PE sweep:
//
//   Matched — ~0% remote with or without cache at every PE count
//   Cyclic  — cached remote% decreases markedly as PEs grow (§7.1.3:
//             caching becomes "nearly perfect" as each PE's share shrinks)
//   Random  — high remote% with the cache at every PE count (§7.1.4)
//   Skewed  — the remainder: low, roughly flat cached remote%
//
// Tests cross-validate this against the static classifier on the
// Livermore suite.
#pragma once

#include <string>

#include "core/simulator.hpp"
#include "frontend/classifier.hpp"

namespace sap {

struct EmpiricalClassification {
  AccessClass cls = AccessClass::kMatched;
  double cached_min_percent = 0.0;   // min over PE counts, cache on
  double cached_max_percent = 0.0;   // max over PE counts, cache on
  double cached_first_percent = 0.0; // at the smallest multi-PE count
  double cached_last_percent = 0.0;  // at the largest PE count
  double nocache_max_percent = 0.0;
  std::string rationale;
};

EmpiricalClassification classify_empirical(const CompiledProgram& compiled,
                                           const MachineConfig& base);

}  // namespace sap
