// Parameter sweeps: the data series behind every figure and ablation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "stats/series.hpp"

namespace sap {

/// Any scalar pulled from a simulation result.
using Metric = std::function<double(const SimulationResult&)>;

/// The paper's headline metric, "% of Reads Remote", in percent.
Metric remote_read_percent();

/// y = metric(result) for each PE count; x = PE count.
SweepSeries sweep_pes(const CompiledProgram& compiled,
                      const MachineConfig& base,
                      const std::vector<std::uint32_t>& pe_counts,
                      std::string label, const Metric& metric);

/// y = metric(result) for each page size; x = page size.
SweepSeries sweep_page_sizes(const CompiledProgram& compiled,
                             const MachineConfig& base,
                             const std::vector<std::int64_t>& page_sizes,
                             std::string label, const Metric& metric);

/// y = metric(result) for each cache capacity; x = capacity in elements.
SweepSeries sweep_cache_sizes(const CompiledProgram& compiled,
                              const MachineConfig& base,
                              const std::vector<std::int64_t>& cache_sizes,
                              std::string label, const Metric& metric);

/// Figures 1-4: four series ({Cache, No Cache} x page sizes) of
/// "% reads remote" vs number of PEs.  `base.cache_elements` sizes the
/// cache of the "Cache" series (the paper's 256).
std::vector<SweepSeries> figure_series(
    const CompiledProgram& compiled, const MachineConfig& base,
    const std::vector<std::uint32_t>& pe_counts = {1, 2, 4, 8, 16, 32, 64},
    const std::vector<std::int64_t>& page_sizes = {32, 64});

}  // namespace sap
