// Parameter sweeps: the data series behind every figure and ablation.
//
// Every sweep is a set of *independent* Simulator::run invocations — one
// per machine configuration — so they parallelize trivially.  Each helper
// takes an optional ThreadPool; pass one to fan the runs across workers.
// Output is deterministic and order-stable: each run writes its own
// pre-assigned slot, so the parallel result is identical to the serial one
// for any worker count.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/simulator.hpp"
#include "stats/series.hpp"
#include "support/thread_pool.hpp"

namespace sap {

/// Any scalar pulled from a simulation result.
using Metric = std::function<double(const SimulationResult&)>;

/// The paper's headline metric, "% of Reads Remote", in percent.
Metric remote_read_percent();

/// One simulation of the general parallel-sweep form: a program to run on
/// a machine configuration under an execution mode.
struct SweepJob {
  const CompiledProgram* program = nullptr;
  MachineConfig config;
  ExecutionMode mode = ExecutionMode::kCounting;
};

/// The engine under every sweep helper: runs one independent simulation
/// per job and returns the full results in input order.  With a pool the
/// jobs fan across its workers; without one they run serially in the
/// calling thread.  Both paths produce identical output.
std::vector<SimulationResult> parallel_sweep_results(
    const std::vector<SweepJob>& jobs, ThreadPool* pool = nullptr);

/// Row-major results of a programs x configs cross-product sweep.
struct SweepGrid {
  std::size_t columns = 0;
  std::vector<SimulationResult> results;

  const SimulationResult& at(std::size_t program_idx,
                             std::size_t config_idx) const {
    return results.at(program_idx * columns + config_idx);
  }
};

/// Runs every program under every configuration — one independent
/// simulation per pair, fanned across the pool as a single batch.  The
/// shape behind the ablation tables (kernels x schemes/policies/...).
SweepGrid sweep_grid(const std::vector<CompiledProgram>& programs,
                     const std::vector<MachineConfig>& configs,
                     ThreadPool* pool = nullptr);

/// One series per grid row: label from `labels` (one per program), x from
/// `xs` (one per configuration), y = metric(cell).
std::vector<SweepSeries> grid_series(const SweepGrid& grid,
                                     const std::vector<std::string>& labels,
                                     const std::vector<double>& xs,
                                     const Metric& metric);

/// As parallel_sweep_results, but reduces each result through `metric`:
/// one program across many configurations, metric values in input order.
std::vector<double> parallel_sweep(const CompiledProgram& compiled,
                                   const std::vector<MachineConfig>& configs,
                                   const Metric& metric,
                                   ThreadPool* pool = nullptr);

/// y = metric(result) for each PE count; x = PE count.
SweepSeries sweep_pes(const CompiledProgram& compiled,
                      const MachineConfig& base,
                      const std::vector<std::uint32_t>& pe_counts,
                      std::string label, const Metric& metric,
                      ThreadPool* pool = nullptr);

/// y = metric(result) for each page size; x = page size.
SweepSeries sweep_page_sizes(const CompiledProgram& compiled,
                             const MachineConfig& base,
                             const std::vector<std::int64_t>& page_sizes,
                             std::string label, const Metric& metric,
                             ThreadPool* pool = nullptr);

/// y = metric(result) for each cache capacity; x = capacity in elements.
SweepSeries sweep_cache_sizes(const CompiledProgram& compiled,
                              const MachineConfig& base,
                              const std::vector<std::int64_t>& cache_sizes,
                              std::string label, const Metric& metric,
                              ThreadPool* pool = nullptr);

/// Budgeted, memoized measurement engine for search strategies (the
/// beam-search advisor).  Each `measure` call runs the not-yet-measured
/// configurations — in request order, truncated to the remaining budget —
/// as ONE parallel_sweep_results batch, then answers every request from
/// the memo.  Re-requesting a measured configuration is free and does not
/// touch the budget, so a search loop can ask for whole frontiers without
/// bookkeeping which points it already paid for.  Determinism: the batch
/// order is the request order, the engine underneath is order-stable, and
/// the memo key is the full machine configuration — output is identical
/// for any worker count.
class BudgetedSweeper {
 public:
  /// `budget` caps the number of *distinct* simulations ever run.
  BudgetedSweeper(const CompiledProgram& program, ExecutionMode mode,
                  std::size_t budget, ThreadPool* pool = nullptr);

  /// One entry per requested config: a pointer into the memo when that
  /// configuration is measured (now or previously), nullptr when the
  /// budget ran out before its turn.  Pointers stay valid for the
  /// sweeper's lifetime.
  std::vector<const SimulationResult*> measure(
      const std::vector<MachineConfig>& configs);

  std::size_t spent() const noexcept { return spent_; }
  std::size_t remaining() const noexcept { return budget_ - spent_; }

 private:
  const CompiledProgram& program_;
  ExecutionMode mode_;
  std::size_t budget_;
  std::size_t spent_ = 0;
  ThreadPool* pool_;
  // Memo keyed by the canonical configuration string; deque-like stable
  // storage via unique_ptr so measure() can hand out raw pointers.
  std::vector<std::pair<std::string, std::unique_ptr<SimulationResult>>>
      memo_;

  const SimulationResult* find(const std::string& key) const;
};

/// Canonical memo key: every MachineConfig field that can change a
/// simulation result (to_string() omits block_cyclic_pages and the seed,
/// so it is NOT a safe identity).
std::string config_identity(const MachineConfig& config);

/// Figures 1-4: four series ({Cache, No Cache} x page sizes) of
/// "% reads remote" vs number of PEs.  `base.cache_elements` sizes the
/// cache of the "Cache" series (the paper's 256).  All points of all four
/// series fan across the pool as one batch.
std::vector<SweepSeries> figure_series(
    const CompiledProgram& compiled, const MachineConfig& base,
    const std::vector<std::uint32_t>& pe_counts = {1, 2, 4, 8, 16, 32, 64},
    const std::vector<std::int64_t>& page_sizes = {32, 64},
    ThreadPool* pool = nullptr);

}  // namespace sap
