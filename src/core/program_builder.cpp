#include "core/program_builder.hpp"

#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

Ex::Ex(double value) : expr_(make_number(value)) {}
Ex::Ex(int value) : expr_(make_number(value)) {}
Ex::Ex(ExprPtr expr) : expr_(std::move(expr)) {}

Ex::Ex(const Ex& other) : expr_(other.expr_ ? clone(*other.expr_) : nullptr) {}

Ex& Ex::operator=(const Ex& other) {
  if (this != &other) {
    expr_ = other.expr_ ? clone(*other.expr_) : nullptr;
  }
  return *this;
}

ExprPtr Ex::take() {
  SAP_CHECK(expr_ != nullptr, "expression handle already consumed");
  return std::move(expr_);
}

ExprPtr Ex::materialize() const {
  SAP_CHECK(expr_ != nullptr, "expression handle is empty");
  return clone(*expr_);
}

Ex operator+(Ex lhs, Ex rhs) {
  return Ex(make_binary(BinaryOp::kAdd, lhs.take(), rhs.take()));
}
Ex operator-(Ex lhs, Ex rhs) {
  return Ex(make_binary(BinaryOp::kSub, lhs.take(), rhs.take()));
}
Ex operator*(Ex lhs, Ex rhs) {
  return Ex(make_binary(BinaryOp::kMul, lhs.take(), rhs.take()));
}
Ex operator/(Ex lhs, Ex rhs) {
  return Ex(make_binary(BinaryOp::kDiv, lhs.take(), rhs.take()));
}
Ex operator-(Ex operand) { return Ex(make_neg(operand.take())); }

Ex ex_num(double value) { return Ex(make_number(value)); }
Ex ex_var(const std::string& name) { return Ex(make_var(name)); }

Ex ex_at(const std::string& array, std::vector<Ex> indices) {
  std::vector<ExprPtr> idx;
  idx.reserve(indices.size());
  for (auto& e : indices) idx.push_back(e.take());
  return Ex(make_array_ref(array, std::move(idx)));
}

namespace {
Ex intrinsic2(IntrinsicKind kind, Ex a, Ex b) {
  std::vector<ExprPtr> args;
  args.push_back(a.take());
  args.push_back(b.take());
  return Ex(make_intrinsic(kind, std::move(args)));
}
}  // namespace

Ex ex_idiv(Ex lhs, Ex rhs) {
  return intrinsic2(IntrinsicKind::kIDiv, std::move(lhs), std::move(rhs));
}
Ex ex_mod(Ex lhs, Ex rhs) {
  return intrinsic2(IntrinsicKind::kMod, std::move(lhs), std::move(rhs));
}
Ex ex_min(Ex lhs, Ex rhs) {
  return intrinsic2(IntrinsicKind::kMin, std::move(lhs), std::move(rhs));
}
Ex ex_max(Ex lhs, Ex rhs) {
  return intrinsic2(IntrinsicKind::kMax, std::move(lhs), std::move(rhs));
}
Ex ex_abs(Ex operand) {
  std::vector<ExprPtr> args;
  args.push_back(operand.take());
  return Ex(make_intrinsic(IntrinsicKind::kAbs, std::move(args)));
}

Ex ex_cmp(CompareOp op, Ex lhs, Ex rhs) {
  return Ex(make_compare(op, lhs.take(), rhs.take()));
}
Ex ex_lt(Ex lhs, Ex rhs) { return ex_cmp(CompareOp::kLt, std::move(lhs), std::move(rhs)); }
Ex ex_le(Ex lhs, Ex rhs) { return ex_cmp(CompareOp::kLe, std::move(lhs), std::move(rhs)); }
Ex ex_gt(Ex lhs, Ex rhs) { return ex_cmp(CompareOp::kGt, std::move(lhs), std::move(rhs)); }
Ex ex_ge(Ex lhs, Ex rhs) { return ex_cmp(CompareOp::kGe, std::move(lhs), std::move(rhs)); }
Ex ex_eq(Ex lhs, Ex rhs) { return ex_cmp(CompareOp::kEq, std::move(lhs), std::move(rhs)); }
Ex ex_ne(Ex lhs, Ex rhs) { return ex_cmp(CompareOp::kNe, std::move(lhs), std::move(rhs)); }

Ex ex_and(Ex lhs, Ex rhs) {
  return intrinsic2(IntrinsicKind::kAnd, std::move(lhs), std::move(rhs));
}
Ex ex_or(Ex lhs, Ex rhs) {
  return intrinsic2(IntrinsicKind::kOr, std::move(lhs), std::move(rhs));
}
Ex ex_not(Ex operand) {
  std::vector<ExprPtr> args;
  args.push_back(operand.take());
  return Ex(make_intrinsic(IntrinsicKind::kNot, std::move(args)));
}
Ex ex_select(Ex cond, Ex a, Ex b) {
  std::vector<ExprPtr> args;
  args.push_back(cond.take());
  args.push_back(a.take());
  args.push_back(b.take());
  return Ex(make_intrinsic(IntrinsicKind::kSelect, std::move(args)));
}

ProgramBuilder::ProgramBuilder(std::string name) {
  program_.name = std::move(name);
}

ProgramBuilder& ProgramBuilder::array(const std::string& name,
                                      std::vector<std::int64_t> extents) {
  ArrayDecl decl;
  decl.name = name;
  for (const std::int64_t e : extents) decl.dims.push_back(DimBound{1, e});
  decl.init = InitMode::kNone;
  program_.arrays.push_back(std::move(decl));
  return *this;
}

ProgramBuilder& ProgramBuilder::input_array(
    const std::string& name, std::vector<std::int64_t> extents) {
  ArrayDecl decl;
  decl.name = name;
  for (const std::int64_t e : extents) decl.dims.push_back(DimBound{1, e});
  decl.init = InitMode::kAll;
  program_.arrays.push_back(std::move(decl));
  return *this;
}

ProgramBuilder& ProgramBuilder::prefix_array(const std::string& name,
                                             std::vector<std::int64_t> extents,
                                             std::int64_t prefix) {
  ArrayDecl decl;
  decl.name = name;
  for (const std::int64_t e : extents) decl.dims.push_back(DimBound{1, e});
  decl.init = InitMode::kPrefix;
  decl.init_prefix = prefix;
  program_.arrays.push_back(std::move(decl));
  return *this;
}

ProgramBuilder& ProgramBuilder::array_decl(ArrayDecl decl) {
  program_.arrays.push_back(std::move(decl));
  return *this;
}

ProgramBuilder& ProgramBuilder::scalar(const std::string& name, double init) {
  ScalarDecl decl;
  decl.name = name;
  decl.init = init;
  program_.scalars.push_back(std::move(decl));
  return *this;
}

ProgramBuilder& ProgramBuilder::custom_init(
    const std::string& name, std::function<double(std::int64_t)> fn) {
  custom_inits_[name] = std::move(fn);
  return *this;
}

std::vector<StmtPtr>& ProgramBuilder::current_body() {
  if (block_stack_.empty()) return program_.body;
  OpenBlock& block = block_stack_.back();
  if (block.loop != nullptr) return block.loop->body;
  return block.in_else ? block.branch->else_body : block.branch->then_body;
}

ProgramBuilder& ProgramBuilder::begin_loop(const std::string& var, Ex lower,
                                           Ex upper) {
  auto stmt = std::make_unique<Stmt>();
  DoLoop loop;
  loop.var = var;
  loop.lower = lower.take();
  loop.upper = upper.take();
  stmt->node = std::move(loop);
  auto& body = current_body();
  body.push_back(std::move(stmt));
  block_stack_.push_back(
      OpenBlock{&std::get<DoLoop>(body.back()->node), nullptr, false});
  return *this;
}

ProgramBuilder& ProgramBuilder::begin_loop_step(const std::string& var,
                                                Ex lower, Ex upper, Ex step) {
  begin_loop(var, std::move(lower), std::move(upper));
  block_stack_.back().loop->step = step.take();
  return *this;
}

ProgramBuilder& ProgramBuilder::end_loop() {
  SAP_CHECK(!block_stack_.empty() && block_stack_.back().loop != nullptr,
            "end_loop without begin_loop");
  block_stack_.pop_back();
  return *this;
}

ProgramBuilder& ProgramBuilder::begin_if(Ex cond) {
  auto stmt = std::make_unique<Stmt>();
  IfStmt branch;
  branch.cond = cond.take();
  stmt->node = std::move(branch);
  auto& body = current_body();
  body.push_back(std::move(stmt));
  block_stack_.push_back(
      OpenBlock{nullptr, &std::get<IfStmt>(body.back()->node), false});
  return *this;
}

ProgramBuilder& ProgramBuilder::begin_else() {
  SAP_CHECK(!block_stack_.empty() && block_stack_.back().branch != nullptr &&
                !block_stack_.back().in_else,
            "begin_else without an open begin_if");
  block_stack_.back().in_else = true;
  return *this;
}

ProgramBuilder& ProgramBuilder::end_if() {
  SAP_CHECK(!block_stack_.empty() && block_stack_.back().branch != nullptr,
            "end_if without begin_if");
  block_stack_.pop_back();
  return *this;
}

ProgramBuilder& ProgramBuilder::assign(const std::string& array,
                                       std::vector<Ex> indices, Ex value) {
  auto stmt = std::make_unique<Stmt>();
  ArrayAssign node;
  node.array = array;
  for (auto& idx : indices) node.indices.push_back(idx.take());
  node.value = value.take();
  stmt->node = std::move(node);
  current_body().push_back(std::move(stmt));
  return *this;
}

ProgramBuilder& ProgramBuilder::scalar_assign(const std::string& name,
                                              Ex value) {
  auto stmt = std::make_unique<Stmt>();
  stmt->node = ScalarAssign{name, value.take()};
  current_body().push_back(std::move(stmt));
  return *this;
}

ProgramBuilder& ProgramBuilder::reinit(const std::string& array) {
  auto stmt = std::make_unique<Stmt>();
  stmt->node = ReinitStmt{array};
  current_body().push_back(std::move(stmt));
  return *this;
}

Program ProgramBuilder::build() {
  SAP_CHECK(block_stack_.empty(), "unclosed loop or IF at build()");
  SAP_CHECK(!built_, "build() called twice");
  built_ = true;
  return std::move(program_);
}

CompiledProgram ProgramBuilder::compile() {
  CompiledProgram compiled = sap::compile(build());
  compiled.custom_inits = std::move(custom_inits_);
  return compiled;
}

}  // namespace sap
