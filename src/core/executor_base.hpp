// Sequential program walker shared by the reference interpreter, the
// counting interpreter and the dataflow trace builder.
//
// The walker executes the program in sequential (Fortran) order against an
// ArrayRegistry, resolving control (loops, scalar assignments) eagerly, and
// routes every array touch through virtual hooks so subclasses can account,
// record, or ignore accesses.  Expressions execute through the compiled
// bytecode (core/bytecode.hpp) when the program carries it, and through the
// eval.hpp tree walk otherwise — both paths drive the identical ArrayReader
// seam, so the hooks see the identical access sequence.  Owner-computes attribution: each array
// assignment instance is executed "by" the PE owning the written element
// (hook `owner_of`); reductions accumulate in registers and commit at the
// trip end of their commit loop (§5 / DESIGN.md).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/bytecode.hpp"
#include "core/eval.hpp"
#include "core/simulator.hpp"
#include "memory/array_registry.hpp"
#include "partition/scheme.hpp"

namespace sap {

/// Hash for in-flight reduction registers, keyed (statement, element) —
/// shared by the sequential walker and the dataflow replay.
struct ReductionKeyHash {
  std::size_t operator()(
      const std::pair<const ArrayAssign*, std::int64_t>& key) const noexcept {
    return std::hash<const void*>()(key.first) ^
           (static_cast<std::size_t>(key.second) * 0x9e3779b97f4a7c15ull);
  }
};

/// (stmt, element) -> accumulated value for in-flight reductions.
using ReductionRegisters =
    std::unordered_map<std::pair<const ArrayAssign*, std::int64_t>, double,
                       ReductionKeyHash>;

class SequentialExecutor {
 public:
  virtual ~SequentialExecutor() = default;

  /// Executes the whole program.  The registry must already contain all
  /// declared arrays with their initialization data.
  void execute(const CompiledProgram& compiled, ArrayRegistry& registry);

 protected:
  // ------------------------------------------------------------------ hooks
  /// PE that executes statements writing array[linear] (default: PE 0).
  virtual PeId owner_of(const SaArray& array, std::int64_t linear);

  /// An array read performed by `pe`; called *before* the value is fetched.
  virtual void on_read(PeId pe, const SaArray& array, std::int64_t linear);

  /// An array write performed by `pe`; called *before* the store.
  virtual void on_write(PeId pe, const SaArray& array, std::int64_t linear);

  /// Reads performed while resolving an indirect *write* index: attributed
  /// to the owner once it is known (empty for affine targets).
  virtual void on_target_index_reads(
      PeId pe, const std::vector<std::pair<const SaArray*, std::int64_t>>&
                   reads);

  /// Statement-instance bracket (the dataflow trace builder records here).
  virtual void on_instance(const ArrayAssign& assign, PeId pe,
                           std::int64_t target_linear, const EvalEnv& env,
                           bool is_commit);

  /// §5 protocol point.
  virtual void on_reinit(const SaArray& array);

  /// When true, a read of an undefined cell yields a placeholder (0.0)
  /// instead of trapping.  Only the dataflow trace builder enables this:
  /// it resolves control and ownership, not values — replay recomputes
  /// every value against the real I-structure store, so an illegal
  /// read-before-write surfaces there as the paper's machine-level
  /// behaviour (a deadlocked PE), not as a front-end trap.  Legal
  /// single-assignment programs never reach the placeholder path.
  virtual bool tolerate_undefined_reads() const { return false; }

  ArrayRegistry* registry() noexcept { return registry_; }

 private:
  struct PendingCommit {
    const ArrayAssign* stmt;
    std::int64_t linear;
  };

  void exec_stmt(const Stmt& stmt);
  void exec_assign(const ArrayAssign& assign);
  void exec_loop(const DoLoop& loop);
  void exec_if(const IfStmt& branch);
  void flush_commits(std::map<const DoLoop*, std::vector<PendingCommit>>& queue,
                     const DoLoop* loop);
  double read_for_value(PeId pe, const std::string& name,
                        const std::vector<std::int64_t>& indices);
  /// read_for_value for a site the interpreter pre-resolved and
  /// bounds-checked (ArrayReader::read_direct fast path) — identical
  /// accounting, tolerance and errors, minus resolve + linearize.
  double read_for_value_direct(PeId pe, SaArray& array, std::int64_t linear);
  /// Memoized registry lookup (same resolution, same errors as by_name).
  SaArray& resolve_array(const std::string& name) {
    return arrays_.resolve(name);
  }

  /// Memoized bytecode + frame handles for one assignment statement.
  /// `ca` is null when the program carries no bytecode for it.  The
  /// returned reference is valid until the next assign_memo call.
  struct AssignMemo {
    const ArrayAssign* key = nullptr;
    const CompiledAssign* ca = nullptr;
    BytecodeFrame::SlotHandle target_handle = 0;
    BytecodeFrame::SlotHandle value_handle = 0;
    /// Target array, bound lazily at first execution — the same point
    /// the per-instance resolve ran, so unknown-name errors keep their
    /// timing.  Valid for one execute() (memos are cleared with the
    /// registry binding).
    mutable SaArray* target = nullptr;
  };
  const AssignMemo& assign_memo(const ArrayAssign& assign);

  /// One hoisted index program recomputed at a loop's entry (the
  /// optimizer's preamble; kHoistIndex consumes the slot per instance).
  struct LoopPreamble {
    const CompiledExpr* program = nullptr;
    std::uint32_t slot = 0;
    BytecodeFrame::SlotHandle handle = 0;
  };
  /// Memoized loop bytecode: bound programs with pre-interned frame
  /// handles plus the preamble list — resolved once per loop statement,
  /// not once per loop entry.  Reference valid until the next loop_memo
  /// call (exec_loop consumes it fully before recursing into the body).
  struct LoopMemo {
    const DoLoop* key = nullptr;
    const CompiledLoop* cl = nullptr;
    BytecodeFrame::SlotHandle lower_handle = 0;
    BytecodeFrame::SlotHandle upper_handle = 0;
    BytecodeFrame::SlotHandle step_handle = 0;
    std::vector<LoopPreamble> preambles;
  };
  const LoopMemo& loop_memo(const DoLoop& loop);

  const CompiledProgram* compiled_ = nullptr;
  const ProgramBytecode* bytecode_ = nullptr;
  BytecodeFrame frame_;
  std::vector<std::int64_t> target_scratch_;
  ArrayRegistry* registry_ = nullptr;
  ArrayNameCache arrays_;
  // Pointer-keyed statement memos: a handful of entries scanned with
  // pointer compares beats a hash per statement instance.  The last-hit
  // indices short-circuit the scan for the common case (an inner loop
  // re-executing one statement / re-entering one loop back to back).
  std::vector<AssignMemo> assign_memo_;
  std::size_t last_assign_ = static_cast<std::size_t>(-1);
  std::vector<LoopMemo> loop_memo_;
  std::size_t last_loop_ = static_cast<std::size_t>(-1);
  struct ScalarMemo {
    const ScalarAssign* key = nullptr;
    const CompiledExpr* ce = nullptr;
    BytecodeFrame::SlotHandle handle = 0;
  };
  std::vector<ScalarMemo> scalar_memo_;
  struct GuardMemo {
    const IfStmt* key = nullptr;
    const CompiledExpr* ce = nullptr;
    BytecodeFrame::SlotHandle handle = 0;
  };
  std::vector<GuardMemo> guard_memo_;
  EvalEnv env_;
  ReductionRegisters registers_;
  // commit loop -> pending commits; trip-end commits flush after every
  // iteration, exit commits flush once when the loop finishes.
  std::map<const DoLoop*, std::vector<PendingCommit>> pending_trip_;
  std::map<const DoLoop*, std::vector<PendingCommit>> pending_exit_;
};

}  // namespace sap
