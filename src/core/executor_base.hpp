// Sequential program walker shared by the reference interpreter, the
// counting interpreter and the dataflow trace builder.
//
// The walker executes the program in sequential (Fortran) order against an
// ArrayRegistry, resolving control (loops, scalar assignments) eagerly, and
// routes every array touch through virtual hooks so subclasses can account,
// record, or ignore accesses.  Owner-computes attribution: each array
// assignment instance is executed "by" the PE owning the written element
// (hook `owner_of`); reductions accumulate in registers and commit at the
// trip end of their commit loop (§5 / DESIGN.md).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/eval.hpp"
#include "core/simulator.hpp"
#include "memory/array_registry.hpp"
#include "partition/scheme.hpp"

namespace sap {

class SequentialExecutor {
 public:
  virtual ~SequentialExecutor() = default;

  /// Executes the whole program.  The registry must already contain all
  /// declared arrays with their initialization data.
  void execute(const CompiledProgram& compiled, ArrayRegistry& registry);

 protected:
  // ------------------------------------------------------------------ hooks
  /// PE that executes statements writing array[linear] (default: PE 0).
  virtual PeId owner_of(const SaArray& array, std::int64_t linear);

  /// An array read performed by `pe`; called *before* the value is fetched.
  virtual void on_read(PeId pe, const SaArray& array, std::int64_t linear);

  /// An array write performed by `pe`; called *before* the store.
  virtual void on_write(PeId pe, const SaArray& array, std::int64_t linear);

  /// Reads performed while resolving an indirect *write* index: attributed
  /// to the owner once it is known (empty for affine targets).
  virtual void on_target_index_reads(
      PeId pe, const std::vector<std::pair<const SaArray*, std::int64_t>>&
                   reads);

  /// Statement-instance bracket (the dataflow trace builder records here).
  virtual void on_instance(const ArrayAssign& assign, PeId pe,
                           std::int64_t target_linear, const EvalEnv& env,
                           bool is_commit);

  /// §5 protocol point.
  virtual void on_reinit(const SaArray& array);

  /// When true, a read of an undefined cell yields a placeholder (0.0)
  /// instead of trapping.  Only the dataflow trace builder enables this:
  /// it resolves control and ownership, not values — replay recomputes
  /// every value against the real I-structure store, so an illegal
  /// read-before-write surfaces there as the paper's machine-level
  /// behaviour (a deadlocked PE), not as a front-end trap.  Legal
  /// single-assignment programs never reach the placeholder path.
  virtual bool tolerate_undefined_reads() const { return false; }

  ArrayRegistry* registry() noexcept { return registry_; }

 private:
  struct PendingCommit {
    const ArrayAssign* stmt;
    std::int64_t linear;
  };

  void exec_stmt(const Stmt& stmt);
  void exec_assign(const ArrayAssign& assign);
  void exec_loop(const DoLoop& loop);
  void flush_commits(std::map<const DoLoop*, std::vector<PendingCommit>>& queue,
                     const DoLoop* loop);
  double read_for_value(PeId pe, const std::string& name,
                        const std::vector<std::int64_t>& indices);

  const CompiledProgram* compiled_ = nullptr;
  ArrayRegistry* registry_ = nullptr;
  EvalEnv env_;
  // (stmt, element) -> accumulated value for in-flight reductions.
  std::map<std::pair<const ArrayAssign*, std::int64_t>, double> registers_;
  // commit loop -> pending commits; trip-end commits flush after every
  // iteration, exit commits flush once when the loop finishes.
  std::map<const DoLoop*, std::vector<PendingCommit>> pending_trip_;
  std::map<const DoLoop*, std::vector<PendingCommit>> pending_exit_;
};

}  // namespace sap
