#include "core/eval.hpp"

#include <atomic>
#include <cmath>

#include "support/error.hpp"

namespace sap {

std::uint64_t EvalEnv::next_version() noexcept {
  // Globally unique (not merely per-env monotonic): a copied env carries
  // its source's version, so stamps must never collide across objects.
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::optional<double> ArrayReader::read_direct(SaArray&, std::int64_t,
                                               const std::string& name,
                                               const std::int64_t* indices,
                                               std::size_t rank) {
  return read(name, std::vector<std::int64_t>(indices, indices + rank));
}

double EvalEnv::get(const std::string& name) const {
  const auto it = vars_.find(name);
  if (it == vars_.end()) {
    throw Error("unbound variable '" + name + "' at evaluation time");
  }
  return it->second;
}

std::optional<double> eval_expr(const Expr& expr, const EvalEnv& env,
                                ArrayReader& reader) {
  return std::visit(
      [&](const auto& node) -> std::optional<double> {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, NumberLit>) {
          return node.value;
        } else if constexpr (std::is_same_v<T, VarRef>) {
          return env.get(node.name);
        } else if constexpr (std::is_same_v<T, ArrayRefExpr>) {
          const auto indices = eval_indices(node.indices, env, reader);
          if (!indices) return std::nullopt;
          return reader.read(node.name, *indices);
        } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
          if (node.kind == IntrinsicKind::kSelect) {
            // A real branch: the condition first, then ONLY the selected
            // operand (its reads are the only ones performed/accounted).
            const auto cond = eval_expr(*node.args[0], env, reader);
            if (!cond) return std::nullopt;
            return eval_expr(*node.args[*cond != 0.0 ? 1 : 2], env, reader);
          }
          std::vector<double> args;
          args.reserve(node.args.size());
          for (const auto& a : node.args) {
            const auto v = eval_expr(*a, env, reader);
            if (!v) return std::nullopt;
            args.push_back(*v);
          }
          switch (node.kind) {
            case IntrinsicKind::kIDiv:
              if (args[1] == 0.0) throw Error("IDIV by zero");
              return std::trunc(args[0] / args[1]);
            case IntrinsicKind::kMod:
              if (args[1] == 0.0) throw Error("MOD by zero");
              return std::fmod(args[0], args[1]);
            case IntrinsicKind::kMin:
              return std::min(args[0], args[1]);
            case IntrinsicKind::kMax:
              return std::max(args[0], args[1]);
            case IntrinsicKind::kAbs:
              return std::abs(args[0]);
            case IntrinsicKind::kAnd:
              // Strict (both operands evaluate): the operand *reads* must
              // not depend on the other operand's value.
              return args[0] != 0.0 && args[1] != 0.0 ? 1.0 : 0.0;
            case IntrinsicKind::kOr:
              return args[0] != 0.0 || args[1] != 0.0 ? 1.0 : 0.0;
            case IntrinsicKind::kNot:
              return args[0] == 0.0 ? 1.0 : 0.0;
            case IntrinsicKind::kSelect:
              break;  // handled above
          }
          throw Error("unknown intrinsic");
        } else if constexpr (std::is_same_v<T, UnaryNeg>) {
          const auto v = eval_expr(*node.operand, env, reader);
          if (!v) return std::nullopt;
          return -*v;
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          const auto lhs = eval_expr(*node.lhs, env, reader);
          if (!lhs) return std::nullopt;
          const auto rhs = eval_expr(*node.rhs, env, reader);
          if (!rhs) return std::nullopt;
          switch (node.op) {
            case BinaryOp::kAdd: return *lhs + *rhs;
            case BinaryOp::kSub: return *lhs - *rhs;
            case BinaryOp::kMul: return *lhs * *rhs;
            case BinaryOp::kDiv:
              if (*rhs == 0.0) throw Error("division by zero");
              return *lhs / *rhs;
          }
          throw Error("unknown binary operator");
        } else if constexpr (std::is_same_v<T, CompareExpr>) {
          const auto lhs = eval_expr(*node.lhs, env, reader);
          if (!lhs) return std::nullopt;
          const auto rhs = eval_expr(*node.rhs, env, reader);
          if (!rhs) return std::nullopt;
          switch (node.op) {
            case CompareOp::kLt: return *lhs < *rhs ? 1.0 : 0.0;
            case CompareOp::kLe: return *lhs <= *rhs ? 1.0 : 0.0;
            case CompareOp::kGt: return *lhs > *rhs ? 1.0 : 0.0;
            case CompareOp::kGe: return *lhs >= *rhs ? 1.0 : 0.0;
            case CompareOp::kEq: return *lhs == *rhs ? 1.0 : 0.0;
            case CompareOp::kNe: return *lhs != *rhs ? 1.0 : 0.0;
          }
          throw Error("unknown comparison operator");
        }
      },
      expr.node);
}

std::optional<std::int64_t> eval_index(const Expr& expr, const EvalEnv& env,
                                       ArrayReader& reader) {
  const auto v = eval_expr(expr, env, reader);
  if (!v) return std::nullopt;
  const double rounded = std::round(*v);
  if (std::abs(*v - rounded) > 1e-6) {
    throw Error("array index evaluated to non-integer " + std::to_string(*v));
  }
  return static_cast<std::int64_t>(rounded);
}

std::optional<std::vector<std::int64_t>> eval_indices(
    const std::vector<ExprPtr>& indices, const EvalEnv& env,
    ArrayReader& reader) {
  std::vector<std::int64_t> out;
  out.reserve(indices.size());
  for (const auto& idx : indices) {
    const auto v = eval_index(*idx, env, reader);
    if (!v) return std::nullopt;
    out.push_back(*v);
  }
  return out;
}

}  // namespace sap
