#include "core/dataflow_interpreter.hpp"

#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "core/dataflow_replay.hpp"
#include "core/dataflow_trace.hpp"
#include "machine/host_reinit.hpp"
#include "obs/trace.hpp"
#include "runtime/sim_runtime.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

DataflowSchedulerSelection dataflow_scheduler_selection_from_env() {
  const char* raw = std::getenv("SAPART_DATAFLOW");
  if (raw == nullptr) return {DataflowScheduler::kSharded, false};
  const std::string value(raw);
  if (value == "sharded") return {DataflowScheduler::kSharded, true};
  if (value == "serial") return {DataflowScheduler::kSerial, true};
  throw ConfigError("SAPART_DATAFLOW must be 'sharded' or 'serial', got '" +
                    value + "'");
}

DataflowScheduler dataflow_scheduler_from_env() {
  return dataflow_scheduler_selection_from_env().scheduler;
}

namespace {

/// The round-robin oracle: polls the PEs in id order, running each to its
/// next block; a full pass with no progress means the program has a
/// read-before-write in sequential order — DeadlockError.
class SerialScheduler {
 public:
  SerialScheduler(const CompiledProgram& compiled, Machine& machine)
      : machine_(machine), set_(machine.num_pes()) {
    StreamingSink sink(set_);
    TraceBuilder builder(compiled, machine.partitioner(), sink, set_.layouts);
    builder.build();
    replays_.reserve(machine.num_pes());
    for (PeId pe = 0; pe < machine.num_pes(); ++pe) {
      replays_.push_back(std::make_unique<ShardReplay>(
          compiled, machine, pe, set_.streams[pe], machine.network()));
    }
    reinit_state_.resize(machine.num_pes());
  }

  DataflowStats run() {
    DataflowStats stats;
    std::vector<ReaderToken> woken;  // round-robin repolls; tokens unused
    for (;;) {
      bool progress = false;
      bool all_done = true;
      ++stats.scheduler_rounds;
      for (PeId pe = 0; pe < replays_.size(); ++pe) {
        // Run-to-block: a PE keeps going until it suspends or drains.
        for (;;) {
          woken.clear();
          const ReplayResult r =
              replays_[pe]->run(set_.streams[pe].published(), woken);
          if (r.executed > 0) progress = true;
          if (r.status != ReplayStatus::kReinitBarrier) break;
          if (!pass_reinit_barrier(pe, r.reinit_array)) break;
          progress = true;
        }
        if (replays_[pe]->cursor() < set_.streams[pe].published()) {
          all_done = false;
        }
      }
      if (all_done) {
        for (const auto& replay : replays_) {
          stats.suspensions += replay->suspensions();
        }
        return stats;
      }
      if (!progress) {
        throw DeadlockError(
            "dataflow machine quiesced with unfinished PEs: the program "
            "reads a value before sequential order produces it (not legal "
            "single assignment)");
      }
    }
  }

 private:
  /// §5 polling protocol, per PE: request once, then wait for the host's
  /// grant broadcast (rounds_completed advancing past the base round).
  bool pass_reinit_barrier(PeId pe, ArrayId array) {
    auto& state = reinit_state_[pe];
    auto& requested = state.requested[array];
    auto& base_round = state.base_round[array];
    HostReinitCoordinator& coord = machine_.reinit();
    if (!requested) {
      base_round = coord.rounds_completed(array);
      coord.request_reinit(pe, array);
      requested = true;
    }
    if (coord.rounds_completed(array) <= base_round) {
      return false;  // waiting for the host's grant broadcast
    }
    requested = false;
    replays_[pe]->advance_past_reinit();
    return true;
  }

  struct ReinitState {
    std::map<ArrayId, bool> requested;
    std::map<ArrayId, std::uint64_t> base_round;
  };

  Machine& machine_;
  StreamSet set_;
  std::vector<std::unique_ptr<ShardReplay>> replays_;
  std::vector<ReinitState> reinit_state_;
};

}  // namespace

DataflowStats run_dataflow_serial(const CompiledProgram& compiled,
                                  Machine& machine) {
  const obs::Span span("runtime", "dataflow-serial");
  SerialScheduler scheduler(compiled, machine);
  return scheduler.run();
}

DataflowStats run_dataflow(const CompiledProgram& compiled, Machine& machine) {
  // Partial-page refetch accounting is defined by the serial interleaving
  // (see the header comment); the *default* sharded choice silently routes
  // such configs to the serial scheduler (run_dataflow_sharded does the
  // same for direct callers), but an explicit SAPART_DATAFLOW=sharded
  // request cannot be honored and must fail loudly instead of quietly
  // running a different scheduler than asked.
  const DataflowSchedulerSelection sel =
      dataflow_scheduler_selection_from_env();
  if (sel.scheduler == DataflowScheduler::kSharded && sel.explicit_env &&
      machine.config().count_partial_page_refetch) {
    throw ConfigError(
        "SAPART_DATAFLOW=sharded is incompatible with "
        "count_partial_page_refetch configs: that extension's cache "
        "accounting is defined by the serial write interleaving; unset "
        "SAPART_DATAFLOW or set it to 'serial'");
  }
  switch (sel.scheduler) {
    case DataflowScheduler::kSerial:
      return run_dataflow_serial(compiled, machine);
    case DataflowScheduler::kSharded:
      return run_dataflow_sharded(compiled, machine);
  }
  SAP_CHECK(false, "unknown dataflow scheduler");
  return {};
}

}  // namespace sap
