#include "core/dataflow_interpreter.hpp"

#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/executor_base.hpp"
#include "machine/host_reinit.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

namespace {

struct TraceInstance {
  enum class Kind { kStatement, kAccumulate, kCommit, kReinit };
  Kind kind = Kind::kStatement;
  const ArrayAssign* stmt = nullptr;  // null for kReinit
  ArrayId array = 0;                  // target array (all kinds)
  std::int64_t target_linear = 0;
  std::map<std::string, double> env;  // kStatement / kAccumulate only
};

/// Sequential pass that resolves control and screens instances per PE.
/// Values are computed locally (a private registry) only to resolve
/// indirect indices; they are discarded afterwards.
class TraceBuilder final : public SequentialExecutor {
 public:
  TraceBuilder(const CompiledProgram& compiled, const Partitioner& partitioner,
               std::uint32_t num_pes)
      : partitioner_(partitioner), streams_(num_pes) {
    materialize_arrays(compiled, scratch_);
    execute(compiled, scratch_);
  }

  std::vector<std::deque<TraceInstance>> take_streams() {
    return std::move(streams_);
  }

 protected:
  PeId owner_of(const SaArray& array, std::int64_t linear) override {
    return partitioner_.owner_of_element(array, linear);
  }

  void on_instance(const ArrayAssign& assign, PeId pe,
                   std::int64_t target_linear, const EvalEnv& env,
                   bool is_commit) override {
    TraceInstance inst;
    inst.stmt = &assign;
    inst.array = scratch_.by_name(assign.array).id();
    inst.target_linear = target_linear;
    if (is_commit) {
      inst.kind = TraceInstance::Kind::kCommit;
    } else if (assign.is_reduction) {
      inst.kind = TraceInstance::Kind::kAccumulate;
      inst.env = env.values();
    } else {
      inst.kind = TraceInstance::Kind::kStatement;
      inst.env = env.values();
    }
    streams_[pe].push_back(std::move(inst));
  }

  void on_reinit(const SaArray& array) override {
    TraceInstance inst;
    inst.kind = TraceInstance::Kind::kReinit;
    inst.array = array.id();
    for (auto& stream : streams_) stream.push_back(inst);
    SequentialExecutor::on_reinit(array);  // keep scratch values coherent
  }

  bool tolerate_undefined_reads() const override {
    // The trace pass resolves control and ownership only; values are
    // recomputed during replay against the real I-structure store, where
    // a read-before-write manifests as the machine-level deadlock.
    return true;
  }

 private:
  const Partitioner& partitioner_;
  ArrayRegistry scratch_;
  std::vector<std::deque<TraceInstance>> streams_;
};

/// Replays per-PE instance streams against the machine with I-structure
/// semantics.
class Replay {
 public:
  Replay(const CompiledProgram& compiled, Machine& machine,
         std::vector<std::deque<TraceInstance>> streams)
      : compiled_(compiled),
        bytecode_(compiled.bytecode.get()),
        machine_(machine),
        arrays_(machine.arrays()),
        streams_(std::move(streams)),
        cursors_(streams_.size(), 0),
        reinit_state_(streams_.size()) {}

  DataflowStats run() {
    DataflowStats stats;
    for (;;) {
      bool progress = false;
      bool all_done = true;
      ++stats.scheduler_rounds;
      for (PeId pe = 0; pe < streams_.size(); ++pe) {
        // Run-to-block: a PE keeps going until it suspends or drains.
        while (step(pe, stats)) progress = true;
        if (cursors_[pe] < streams_[pe].size()) all_done = false;
      }
      if (all_done) return stats;
      if (!progress) {
        throw DeadlockError(
            "dataflow machine quiesced with unfinished PEs: the program "
            "reads a value before sequential order produces it (not legal "
            "single assignment)");
      }
    }
  }

 private:
  // Probe phase: is every operand defined?  Queues the PE on the first
  // undefined cell; performs no accounting.
  class ProbeReader final : public ArrayReader {
   public:
    ProbeReader(ArrayNameCache& arrays, PeId pe, const TraceInstance& inst)
        : arrays_(arrays), pe_(pe), inst_(inst) {}
    std::optional<double> read(
        const std::string& array,
        const std::vector<std::int64_t>& indices) override {
      SaArray& a = arrays_.resolve(array);
      const std::int64_t linear = a.shape().linearize(indices);
      if (inst_.kind == TraceInstance::Kind::kAccumulate &&
          a.id() == inst_.array && linear == inst_.target_linear) {
        return 0.0;  // accumulator register: always available
      }
      return a.read_or_defer(linear, pe_);
    }

   private:
    ArrayNameCache& arrays_;
    PeId pe_;
    const TraceInstance& inst_;
  };

  // Execute phase: accounted reads, guaranteed defined.
  class AccountingReader final : public ArrayReader {
   public:
    AccountingReader(Machine& machine, ArrayNameCache& arrays, PeId pe,
                     const TraceInstance& inst, double register_value)
        : machine_(machine),
          arrays_(arrays),
          pe_(pe),
          inst_(inst),
          register_value_(register_value) {}
    std::optional<double> read(
        const std::string& array,
        const std::vector<std::int64_t>& indices) override {
      SaArray& a = arrays_.resolve(array);
      const std::int64_t linear = a.shape().linearize(indices);
      if (inst_.kind == TraceInstance::Kind::kAccumulate &&
          a.id() == inst_.array && linear == inst_.target_linear) {
        return register_value_;
      }
      machine_.account_read(pe_, a, linear);
      return a.read(linear);
    }

   private:
    Machine& machine_;
    ArrayNameCache& arrays_;
    PeId pe_;
    const TraceInstance& inst_;
    double register_value_;
  };

  bool step(PeId pe, DataflowStats& stats) {
    auto& stream = streams_[pe];
    std::size_t& cursor = cursors_[pe];
    if (cursor >= stream.size()) return false;
    TraceInstance& inst = stream[cursor];

    switch (inst.kind) {
      case TraceInstance::Kind::kStatement:
      case TraceInstance::Kind::kAccumulate: {
        EvalEnv env;
        env.restore(inst.env);
        ProbeReader probe(arrays_, pe, inst);
        if (!eval_value(*inst.stmt, env, probe).has_value()) {
          ++stats.suspensions;
          return false;  // suspended: queued on the missing cell
        }
        const auto key = std::make_pair(inst.stmt, inst.target_linear);
        const double reg =
            inst.kind == TraceInstance::Kind::kAccumulate &&
                    registers_.count(key)
                ? registers_.at(key)
                : 0.0;
        AccountingReader reader(machine_, arrays_, pe, inst, reg);
        const auto value = eval_value(*inst.stmt, env, reader);
        SAP_CHECK(value.has_value(), "execute phase suspended after probe");
        SaArray& array = machine_.arrays().at(inst.array);
        if (inst.kind == TraceInstance::Kind::kAccumulate) {
          registers_[key] = *value;
        } else {
          machine_.account_write(pe, array, inst.target_linear);
          array.write(inst.target_linear, *value);
        }
        ++cursor;
        return true;
      }
      case TraceInstance::Kind::kCommit: {
        const auto key = std::make_pair(inst.stmt, inst.target_linear);
        const auto reg = registers_.find(key);
        SAP_CHECK(reg != registers_.end(),
                  "commit without prior accumulation");
        SaArray& array = machine_.arrays().at(inst.array);
        machine_.account_write(pe, array, inst.target_linear);
        array.write(inst.target_linear, reg->second);
        registers_.erase(reg);
        ++cursor;
        return true;
      }
      case TraceInstance::Kind::kReinit: {
        auto& state = reinit_state_[pe];
        auto& requested = state.requested[inst.array];
        auto& base_round = state.base_round[inst.array];
        HostReinitCoordinator& coord = machine_.reinit();
        if (!requested) {
          base_round = coord.rounds_completed(inst.array);
          coord.request_reinit(pe, inst.array);
          requested = true;
        }
        if (coord.rounds_completed(inst.array) <= base_round) {
          return false;  // waiting for the host's grant broadcast
        }
        requested = false;
        ++cursor;
        return true;
      }
    }
    SAP_CHECK(false, "unknown instance kind");
    return false;
  }

  /// Value expression of one statement instance, through the engine the
  /// program was compiled with (bytecode when present, tree walk else).
  std::optional<double> eval_value(const ArrayAssign& stmt, const EvalEnv& env,
                                   ArrayReader& reader) {
    if (bytecode_ != nullptr) {
      const AssignMemo* memo = nullptr;
      for (const AssignMemo& entry : assign_memo_) {
        if (entry.key == &stmt) {
          memo = &entry;
          break;
        }
      }
      if (memo == nullptr) {
        AssignMemo entry;
        entry.key = &stmt;
        const auto it = bytecode_->assigns.find(&stmt);
        if (it != bytecode_->assigns.end()) {
          entry.ca = &it->second;
          entry.value_handle = frame_.intern(it->second.value);
        }
        assign_memo_.push_back(entry);
        memo = &assign_memo_.back();
      }
      if (memo->ca != nullptr) {
        return frame_.run(memo->ca->value, memo->value_handle, env, reader);
      }
    }
    return eval_expr(*stmt.value, env, reader);
  }

  struct ReinitState {
    std::map<ArrayId, bool> requested;
    std::map<ArrayId, std::uint64_t> base_round;
  };

  struct AssignMemo {
    const ArrayAssign* key = nullptr;
    const CompiledAssign* ca = nullptr;
    BytecodeFrame::SlotHandle value_handle = 0;
  };

  const CompiledProgram& compiled_;
  const ProgramBytecode* bytecode_ = nullptr;
  BytecodeFrame frame_;
  std::vector<AssignMemo> assign_memo_;
  Machine& machine_;
  ArrayNameCache arrays_;
  std::vector<std::deque<TraceInstance>> streams_;
  std::vector<std::size_t> cursors_;
  ReductionRegisters registers_;
  std::vector<ReinitState> reinit_state_;
};

}  // namespace

DataflowStats run_dataflow(const CompiledProgram& compiled, Machine& machine) {
  TraceBuilder builder(compiled, machine.partitioner(), machine.num_pes());
  Replay replay(compiled, machine, builder.take_streams());
  return replay.run();
}

}  // namespace sap
