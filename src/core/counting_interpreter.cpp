#include "core/counting_interpreter.hpp"

#include "core/executor_base.hpp"
#include "machine/host_reinit.hpp"
#include "obs/trace.hpp"

namespace sap {

namespace {

class CountingExecutor final : public SequentialExecutor {
 public:
  explicit CountingExecutor(Machine& machine) : machine_(machine) {}

 protected:
  PeId owner_of(const SaArray& array, std::int64_t linear) override {
    return machine_.owner_of(array, linear);
  }

  void on_read(PeId pe, const SaArray& array, std::int64_t linear) override {
    machine_.account_read(pe, array, linear);
  }

  void on_write(PeId pe, const SaArray& array, std::int64_t linear) override {
    machine_.account_write(pe, array, linear);
  }

  void on_target_index_reads(
      PeId pe, const std::vector<std::pair<const SaArray*, std::int64_t>>&
                   reads) override {
    for (const auto& [array, linear] : reads) {
      machine_.account_read(pe, *array, linear);
    }
  }

  void on_reinit(const SaArray& array) override {
    // §5: every PE requests; the host grants on the last request (the
    // coordinator reinitializes the array and invalidates caches).
    for (PeId pe = 0; pe < machine_.num_pes(); ++pe) {
      machine_.reinit().request_reinit(pe, array.id());
    }
  }

 private:
  Machine& machine_;
};

}  // namespace

void run_counting(const CompiledProgram& compiled, Machine& machine) {
  const obs::Span span("runtime", "counting");
  CountingExecutor executor(machine);
  executor.execute(compiled, machine.arrays());
}

}  // namespace sap
