// Per-PE replay of a dataflow trace stream (§3/§4 semantics).
//
// ShardReplay executes one PE's screened instance stream against the
// machine with I-structure semantics.  Statement instances are two-phase: a
// *probe* checks that every operand is defined (queuing the PE's token on
// the first undefined cell, with no accounting side effects), and only then
// the *execute* phase performs the accounted reads and the write.  This
// guarantees each operand is accounted exactly once, in the same per-PE
// order as the counting interpreter — the equivalence the tests assert.
//
// The engine is scheduler-agnostic: the serial round-robin driver
// (core/dataflow_interpreter.cpp) and the sharded runtime
// (runtime/sim_runtime.cpp) both drive run() and differ only in what they
// do with a blocked shard.  All accounting flows through the PE's own
// counters/cache plus the NetworkChannel given at construction, so a shard
// can account into a private buffer while the serial driver uses the
// shared network directly.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dataflow_trace.hpp"
#include "machine/machine.hpp"

namespace sap {

enum class ReplayStatus : std::uint8_t {
  kExhausted,      // cursor reached the given limit
  kSuspended,      // probe failed; this PE's token is queued on the cell
  kReinitBarrier,  // at a kReinit instance; the driver coordinates §5
};

struct ReplayResult {
  ReplayStatus status = ReplayStatus::kExhausted;
  ArrayId reinit_array = 0;     // valid when status == kReinitBarrier
  std::uint64_t executed = 0;   // instances completed by this run() call
};

class ShardReplay {
 public:
  ShardReplay(const CompiledProgram& compiled, Machine& machine, PeId pe,
              const InstanceStream& stream, NetworkChannel& net);

  ShardReplay(const ShardReplay&) = delete;
  ShardReplay& operator=(const ShardReplay&) = delete;

  /// Executes instances until one blocks or `limit` is reached.  Reader
  /// tokens released by writes are appended to `woken` (the sharded
  /// scheduler re-arms them; the serial driver ignores them and repolls).
  ReplayResult run(std::size_t limit, std::vector<ReaderToken>& woken);

  /// The driver passed the §5 barrier for the pending kReinit instance.
  void advance_past_reinit() noexcept { ++cursor_; }

  PeId pe() const noexcept { return pe_; }
  std::size_t cursor() const noexcept { return cursor_; }
  std::uint64_t suspensions() const noexcept { return suspensions_; }

 private:
  /// One hoisted index program this statement's value depends on
  /// (kHoistIndex operand).  Replay never walks loops, so the per-loop
  /// preamble is re-expressed per instance: the programs are total
  /// functions of variables in the instance's EnvLayout, evaluated once
  /// before the probe (probe and execute see identical slot values).
  struct HoistDep {
    const CompiledExpr* program = nullptr;
    std::uint32_t slot = 0;
    BytecodeFrame::SlotHandle handle = 0;
  };
  struct AssignMemo {
    const ArrayAssign* key = nullptr;
    const CompiledAssign* ca = nullptr;
    BytecodeFrame::SlotHandle value_handle = 0;
    std::vector<HoistDep> hoists;
  };
  const AssignMemo& assign_memo(const ArrayAssign& stmt);
  std::optional<double> eval_value(const AssignMemo& memo,
                                   const ArrayAssign& stmt,
                                   ArrayReader& reader);

  const ProgramBytecode* bytecode_ = nullptr;
  Machine& machine_;
  PeId pe_;
  InstanceStream::Reader reader_;
  NetworkChannel& net_;
  ArrayNameCache arrays_;
  BytecodeFrame frame_;
  std::vector<AssignMemo> assign_memo_;
  std::size_t last_assign_ = static_cast<std::size_t>(-1);
  // Persistent across instances: bindings are updated in place per the
  // instance's EnvLayout, so bytecode slot pointers stay valid (stale
  // bindings of out-of-scope names are harmless — sema guarantees an
  // expression only references in-scope variables, all of which are in its
  // layout and therefore freshly set).
  EvalEnv env_;
  /// Batched env refresh: while consecutive instances share one EnvLayout
  /// and the environment's binding layout is unchanged, their values are
  /// written straight through cached mutable slot pointers — pure value
  /// updates, no map lookups, no version churn.  Any layout switch or
  /// structural env change falls back to set() and recaptures.
  struct LayoutSlots {
    const EnvLayout* layout = nullptr;
    std::uint64_t env_version = 0;
    std::vector<double*> ptrs;
  };
  LayoutSlots layout_slots_;
  ReductionRegisters registers_;
  std::size_t cursor_ = 0;
  std::uint64_t suspensions_ = 0;
};

}  // namespace sap
