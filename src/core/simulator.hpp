// Compilation façade and the Simulator entry point.
//
// A CompiledProgram bundles the analyzed AST with its semantic facts and
// the precomputed reduction-commit points.  Simulator::run materializes
// the arrays on an abstract machine and executes the program under either
// interpreter, returning the paper's access distribution.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "core/bytecode.hpp"
#include "frontend/ast.hpp"
#include "frontend/sema.hpp"
#include "machine/machine.hpp"
#include "stats/sim_result.hpp"

namespace sap {

/// Where a reduction's accumulated value becomes the single write.
struct CommitPoint {
  const DoLoop* loop = nullptr;
  /// false: commit at each trip end of `loop` (the written element advances
  /// with it).  true: commit once when `loop` exits (the target is invariant
  /// in the whole nest — dot-product style).  loop == nullptr: immediately.
  bool at_exit = false;
};

struct CompiledProgram {
  Program program;
  SemanticInfo sema;

  /// Reduction statement -> its commit point.
  std::map<const ArrayAssign*, CommitPoint> commit_loops;

  /// Per-statement bytecode (core/bytecode.hpp).  Null when compiled with
  /// EvalEngine::kTree (or SAPART_EVAL=tree): the executors then fall back
  /// to the eval.hpp tree walk, which stays byte-identical by construction.
  /// Tests flip a program between engines by resetting this pointer.
  std::shared_ptr<const ProgramBytecode> bytecode;

  /// Optional per-array initial values (linear index -> value); arrays
  /// without an entry use synthetic_init_value.  Needed by workloads whose
  /// *data* are indices (permutation tables for the Random class).
  std::map<std::string, std::function<double(std::int64_t)>, std::less<>>
      custom_inits;

  const std::string& name() const noexcept { return program.name; }
};

/// Analyzes a built AST (mutates it: reduction marking), precomputes
/// commit loops, and flattens every statement to bytecode under the given
/// engine; `opt` selects whether the optimize_bytecode tier (super-
/// instruction fusion + loop-invariant index hoisting) runs on the result.
/// Throws SemanticError on invalid programs.
CompiledProgram compile(Program program, EvalEngine engine, BytecodeOpt opt);

/// As above with the tier taken from SAPART_BYTECODE_OPT (default: on).
CompiledProgram compile(Program program, EvalEngine engine);

/// As above with the engine taken from SAPART_EVAL (default: bytecode).
CompiledProgram compile(Program program);

/// Lex + parse + compile DSL source.
CompiledProgram compile_source(std::string_view source);

/// Deterministic initialization data: positive, varied, reproducible.
double synthetic_init_value(std::string_view array, std::int64_t linear);

/// Declares every array of the program in the registry and fills
/// initialization data per its InitMode (§3).
void materialize_arrays(const CompiledProgram& compiled,
                        ArrayRegistry& registry);
void materialize_arrays(const CompiledProgram& compiled, Machine& machine);

/// How to execute (see DESIGN.md §5 "two interpreters, one accounting").
enum class ExecutionMode {
  kCounting,  // one sequential pass, owner-attributed accounting (fast)
  kDataflow,  // per-PE streams with I-structure deferred reads (faithful)
};

std::string to_string(ExecutionMode mode);

class Simulator {
 public:
  explicit Simulator(MachineConfig config);

  const MachineConfig& config() const noexcept { return config_; }

  /// Runs the program on a fresh machine; returns the access distribution.
  SimulationResult run(const CompiledProgram& compiled,
                       ExecutionMode mode = ExecutionMode::kCounting) const;

  /// As `run`, but also hands back the machine (cache/network inspection).
  SimulationResult run_with_machine(const CompiledProgram& compiled,
                                    ExecutionMode mode,
                                    std::unique_ptr<Machine>& machine_out) const;

 private:
  MachineConfig config_;
};

}  // namespace sap
