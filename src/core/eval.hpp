// Expression evaluation shared by every interpreter.
//
// Evaluation is parameterized over an ArrayReader so the same walk serves:
//   - the reference interpreter (strict reads from a plain registry),
//   - the counting interpreter (reads accounted against the executing PE),
//   - the dataflow interpreter (split-phase reads that may suspend).
// A read returning nullopt aborts the evaluation with nullopt ("suspend");
// strict readers throw instead, so nullopt never escapes them.
//
// This recursive walk is the *oracle*: the hot path executes the
// compile-once bytecode twin (core/bytecode.hpp) by default, and the tree
// walk remains behind SAPART_EVAL=tree for cross-checking.  Any semantic
// change here must be mirrored there (the differential tests enforce it)
// AND in the optimizer tier (optimize_bytecode), whose superinstructions
// re-encode these semantics a third time; SAPART_BYTECODE_OPT=off keeps
// the straight-line bytecode as a second oracle next to this walk.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "frontend/ast.hpp"

namespace sap {

/// Loop variables and scalars live here during execution.  Scalar control
/// is replicated across PEs (§2: each PE runs a copy of the loop body), so
/// the environment is never a source of communication.
///
/// Bindings have *stable value slots*: updating an existing binding keeps
/// its address, so the bytecode engine caches slot pointers across
/// statement instances.  `version()` changes exactly when a cached pointer
/// could dangle (bind/unbind/restore/copy), never on a pure value update.
class EvalEnv {
 public:
  EvalEnv() = default;
  // Copies get a fresh version stamp: the copy's value slots are new map
  // nodes, so any pointer cached against the destination's old (address,
  // version) pair must be invalidated.  Moves keep the source's stamp —
  // a version is globally unique, so it can never collide with one a
  // frame cached for the destination address.
  EvalEnv(const EvalEnv& other)
      : vars_(other.vars_), version_(next_version()) {}
  EvalEnv& operator=(const EvalEnv& other) {
    vars_ = other.vars_;
    version_ = next_version();
    return *this;
  }
  EvalEnv(EvalEnv&&) = default;
  EvalEnv& operator=(EvalEnv&&) = default;

  void set(const std::string& name, double value) {
    const auto [it, inserted] = vars_.insert_or_assign(name, value);
    if (inserted) version_ = next_version();
  }
  double get(const std::string& name) const;
  bool contains(const std::string& name) const {
    return vars_.count(name) != 0;
  }
  void erase(const std::string& name) {
    if (vars_.erase(name) != 0) version_ = next_version();
  }

  /// Stable address of `name`'s value while the binding persists;
  /// nullptr when unbound.  Invalidated whenever version() changes.
  const double* find_slot(const std::string& name) const {
    const auto it = vars_.find(name);
    return it == vars_.end() ? nullptr : &it->second;
  }

  /// Mutable slot for repeated value updates of an existing binding (the
  /// loop-variable hot path).  Writing through it is equivalent to set()
  /// on a bound name: a pure value update, no version change.  The caller
  /// must re-fetch after any version() change.
  double* find_slot_mutable(const std::string& name) {
    const auto it = vars_.find(name);
    return it == vars_.end() ? nullptr : &it->second;
  }

  /// Slot-invalidation stamp: globally unique per structural change, so
  /// (env address, version) identifies one stable binding layout.
  std::uint64_t version() const noexcept { return version_; }

  /// Snapshot for the dataflow trace (instances re-evaluate later).
  const std::map<std::string, double>& values() const noexcept { return vars_; }
  void restore(std::map<std::string, double> values) {
    vars_ = std::move(values);
    version_ = next_version();
  }

 private:
  static std::uint64_t next_version() noexcept;

  std::map<std::string, double> vars_;
  std::uint64_t version_ = next_version();
};

class SaArray;

/// Supplies array element values during evaluation.
class ArrayReader {
 public:
  virtual ~ArrayReader() = default;

  /// Value of array[indices]; nullopt = suspend (dataflow probe only).
  virtual std::optional<double> read(const std::string& array,
                                     const std::vector<std::int64_t>& indices) = 0;

  /// Fast path for a site the bytecode interpreter pre-resolved and
  /// bounds-checked: `array` is the object `name` resolves to and `linear`
  /// its row-major offset for indices[0..rank).  The default forwards to
  /// read() — bit-exact for readers that don't specialize; an override
  /// must preserve read()'s accounting, suspension and error behavior
  /// exactly (the oracle differentials enforce this).
  virtual std::optional<double> read_direct(SaArray& array,
                                            std::int64_t linear,
                                            const std::string& name,
                                            const std::int64_t* indices,
                                            std::size_t rank);
};

/// Evaluates an expression; nullopt propagates a suspended read.
/// Throws Error on arithmetic faults (division by zero, non-integral index).
std::optional<double> eval_expr(const Expr& expr, const EvalEnv& env,
                                ArrayReader& reader);

/// Evaluates an index expression to an integer (validates integrality).
std::optional<std::int64_t> eval_index(const Expr& expr, const EvalEnv& env,
                                       ArrayReader& reader);

/// Evaluates every index of an array reference.
std::optional<std::vector<std::int64_t>> eval_indices(
    const std::vector<ExprPtr>& indices, const EvalEnv& env,
    ArrayReader& reader);

}  // namespace sap
