// Expression evaluation shared by every interpreter.
//
// Evaluation is parameterized over an ArrayReader so the same walk serves:
//   - the reference interpreter (strict reads from a plain registry),
//   - the counting interpreter (reads accounted against the executing PE),
//   - the dataflow interpreter (split-phase reads that may suspend).
// A read returning nullopt aborts the evaluation with nullopt ("suspend");
// strict readers throw instead, so nullopt never escapes them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "frontend/ast.hpp"

namespace sap {

/// Loop variables and scalars live here during execution.  Scalar control
/// is replicated across PEs (§2: each PE runs a copy of the loop body), so
/// the environment is never a source of communication.
class EvalEnv {
 public:
  void set(const std::string& name, double value) { vars_[name] = value; }
  double get(const std::string& name) const;
  bool contains(const std::string& name) const {
    return vars_.count(name) != 0;
  }
  void erase(const std::string& name) { vars_.erase(name); }

  /// Snapshot for the dataflow trace (instances re-evaluate later).
  const std::map<std::string, double>& values() const noexcept { return vars_; }
  void restore(std::map<std::string, double> values) {
    vars_ = std::move(values);
  }

 private:
  std::map<std::string, double> vars_;
};

/// Supplies array element values during evaluation.
class ArrayReader {
 public:
  virtual ~ArrayReader() = default;

  /// Value of array[indices]; nullopt = suspend (dataflow probe only).
  virtual std::optional<double> read(const std::string& array,
                                     const std::vector<std::int64_t>& indices) = 0;
};

/// Evaluates an expression; nullopt propagates a suspended read.
/// Throws Error on arithmetic faults (division by zero, non-integral index).
std::optional<double> eval_expr(const Expr& expr, const EvalEnv& env,
                                ArrayReader& reader);

/// Evaluates an index expression to an integer (validates integrality).
std::optional<std::int64_t> eval_index(const Expr& expr, const EvalEnv& env,
                                       ArrayReader& reader);

/// Evaluates every index of an array reference.
std::optional<std::vector<std::int64_t>> eval_indices(
    const std::vector<ExprPtr>& indices, const EvalEnv& env,
    ArrayReader& reader);

}  // namespace sap
