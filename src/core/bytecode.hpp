// Compile-once bytecode twin of the eval.hpp tree walk.
//
// Every interpreter used to re-traverse the AST for each statement instance
// of each loop trip.  Single-assignment programs are fully analyzable before
// execution, so each statement is flattened ONCE into a compact
// register-style instruction stream (`CompiledExpr`) and the per-instance
// cost drops to a linear pass over a few instructions.  The engine is a
// drop-in twin of `eval_expr`:
//
//   - reads go through the identical `ArrayReader` seam, in the identical
//     order, so page-cache / network / ownership accounting is untouched;
//   - a read returning nullopt aborts the stream ("suspend"), exactly like
//     the tree walk's nullopt propagation;
//   - arithmetic faults throw the same `Error`s with the same messages;
//   - array indices pass the same integrality check as `eval_index`.
//
// Affine index expressions additionally carry a precomputed integer form
// (sum of coeff * var + constant over the enclosing loop variables): when
// every participating variable holds an exactly-integral value — the only
// case that arises in practice — the index is produced by pure integer
// arithmetic and the generic instruction sequence is skipped.  Otherwise
// the guard falls through to the generic sequence, which reproduces the
// tree walk's double arithmetic bit for bit.
//
// The tree walk stays available as the oracle: `SAPART_EVAL=tree` disables
// bytecode compilation (see eval_engine_from_env), and the differential
// tests run both engines and require byte-identical results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/eval.hpp"
#include "frontend/ast.hpp"
#include "frontend/sema.hpp"

namespace sap {

class ArrayNameCache;
class SaArray;

/// Which expression engine the executors use.
enum class EvalEngine {
  kBytecode,  // compiled instruction streams (default)
  kTree,      // the eval.hpp recursive walk (oracle / escape hatch)
};

std::string to_string(EvalEngine engine);

/// Engine selected by the SAPART_EVAL environment variable: unset or
/// "bytecode" -> kBytecode, "tree" -> kTree; anything else throws
/// ConfigError (consistent with the SAPART_WORKERS hardening).
EvalEngine eval_engine_from_env();

/// Whether compile() runs the optimize_bytecode tier after compilation.
enum class BytecodeOpt {
  kOn,   // superinstruction fusion + loop-invariant index hoisting (default)
  kOff,  // raw compile_bytecode output (second oracle next to the tree walk)
};

std::string to_string(BytecodeOpt opt);

/// Tier selected by the SAPART_BYTECODE_OPT environment variable: unset or
/// "on" -> kOn, "off" -> kOff; anything else (empty included) throws
/// ConfigError (the SAPART_EVAL/SAPART_DATAFLOW hardening convention).
BytecodeOpt bytecode_opt_from_env();

/// Dispatch strategy the execute loop was built with: "computed-goto" when
/// the CMake feature probe found labels-as-values support, "switch"
/// otherwise.  Both share one instruction-semantics body (see bytecode.cpp).
const char* bytecode_dispatch_kind() noexcept;

// ---------------------------------------------------------------------------
// Instruction set
// ---------------------------------------------------------------------------

enum class Op : std::uint8_t {
  kConst,        // reg[dst] = consts[a]
  kLoadVar,      // reg[dst] = env value of vars[a] (cached per run)
  kNeg,          // reg[dst] = -reg[a]
  kAdd,          // reg[dst] = reg[a] + reg[b]
  kSub,          // reg[dst] = reg[a] - reg[b]
  kMul,          // reg[dst] = reg[a] * reg[b]
  kDiv,          // reg[dst] = reg[a] / reg[b]; reg[b] == 0 throws
  kIDiv,         // reg[dst] = trunc(reg[a] / reg[b]); reg[b] == 0 throws
  kMod,          // reg[dst] = fmod(reg[a], reg[b]); reg[b] == 0 throws
  kMin,          // reg[dst] = min(reg[a], reg[b])
  kMax,          // reg[dst] = max(reg[a], reg[b])
  kAbs,          // reg[dst] = abs(reg[a])
  // Boolean ops (1.0 / 0.0 results, mirroring the tree walk exactly).
  kCmpLt,        // reg[dst] = reg[a] <  reg[b]
  kCmpLe,        // reg[dst] = reg[a] <= reg[b]
  kCmpGt,        // reg[dst] = reg[a] >  reg[b]
  kCmpGe,        // reg[dst] = reg[a] >= reg[b]
  kCmpEq,        // reg[dst] = reg[a] == reg[b]
  kCmpNe,        // reg[dst] = reg[a] != reg[b]
  kAnd,          // reg[dst] = reg[a] != 0 && reg[b] != 0
  kOr,           // reg[dst] = reg[a] != 0 || reg[b] != 0
  kNot,          // reg[dst] = reg[a] == 0
  // Branching (SELECT's lazily evaluated arms).
  kMove,         // reg[dst] = reg[a]
  kJump,         // skip the next a instructions
  kJumpIfZero,   // skip the next b instructions when reg[a] == 0.0
  kCheckIndex,   // idx[dst] = integrality-checked reg[a] (eval_index rules)
  kAffineIndex,  // idx[dst] = affine[a] if every term var is exactly
                 // integral, then skip the next b instructions (the generic
                 // sequence for the same index); falls through otherwise
  kRead,         // reg[dst] = reader.read(site[a]); suspends on nullopt
  // Superinstructions: emitted only by optimize_bytecode, never by the
  // base compiler.  Each is bit-identical to the pair it replaces.
  kAddConst,     // reg[dst] = reg[a] + consts[b]
  kSubConst,     // reg[dst] = reg[a] - consts[b]
  kConstSub,     // reg[dst] = consts[b] - reg[a]
  kMulConst,     // reg[dst] = reg[a] * consts[b]
  kDivConst,     // reg[dst] = reg[a] / consts[b]; consts[b] == 0 throws
  kConstDiv,     // reg[dst] = consts[b] / reg[a]; reg[a] == 0 throws
  // Fused compare + kJumpIfZero (SELECT conditions): skip the next dst
  // instructions when the comparison is FALSE (== the compare producing
  // 0.0 and the kJumpIfZero taking its skip).
  kJumpIfNotLt,  // skip dst when !(reg[a] <  reg[b])
  kJumpIfNotLe,  // skip dst when !(reg[a] <= reg[b])
  kJumpIfNotGt,  // skip dst when !(reg[a] >  reg[b])
  kJumpIfNotGe,  // skip dst when !(reg[a] >= reg[b])
  kJumpIfNotEq,  // skip dst when !(reg[a] == reg[b])
  kJumpIfNotNe,  // skip dst when !(reg[a] != reg[b])
  kAffineRead,   // fused kAffineIndex + kRead (fused_reads[a]): when every
                 // term var is integral, produce the site's last index
                 // slot, perform the read into reg[dst] (suspends on
                 // nullopt) and skip the next b instructions — the generic
                 // index sequence plus the original kRead, which stay in
                 // place as the non-integral fallback
  kHoistIndex,   // idx[dst] = integrality-checked hoist slot a (a loop
                 // preamble value; kCheckIndex rules and error message)
};

/// Number of opcodes (dispatch table / per-opcode tally size).
inline constexpr std::size_t kOpCount =
    static_cast<std::size_t>(Op::kHoistIndex) + 1;

/// Lower-case opcode name for metrics and diagnostics.
const char* op_name(Op op) noexcept;

struct Instr {
  Op op = Op::kConst;
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
};

/// One array-read site: which array, and where its (contiguous) index
/// slots live.
struct ReadSite {
  std::string array;
  std::uint16_t rank = 0;
  std::uint16_t first_idx_slot = 0;
};

/// Precomputed integer form of an affine index: constant + sum of
/// coeff * value(var_slot).
struct AffineForm {
  struct Term {
    std::uint16_t var_slot = 0;
    std::int64_t coeff = 0;
  };
  std::int64_t constant = 0;
  std::vector<Term> terms;
};

/// One fused affine-read site (kAffineRead operand): the affine form that
/// guards the index and the read site it feeds.
struct FusedRead {
  std::uint16_t affine = 0;
  std::uint16_t site = 0;
};

/// Compile-time record of one emitted index program: [begin, end) in code
/// computes idx[slot] for `expr`.  Consumed (and cleared) by the optimizer
/// when deciding loop-invariant hoists; carries no runtime meaning.
struct IndexRange {
  const Expr* expr = nullptr;
  std::uint16_t slot = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

/// A flattened expression: straight-line code over a double register file,
/// an int64 index-slot file, interned constants/variables and read sites.
struct CompiledExpr {
  std::vector<Instr> code;
  std::vector<double> consts;
  std::vector<std::string> vars;  // slot -> name, distinct per expression
  std::vector<ReadSite> reads;
  std::vector<AffineForm> affines;
  std::vector<FusedRead> fused_reads;  // kAffineRead operands (optimizer)
  std::uint16_t num_regs = 0;
  std::uint16_t num_idx_slots = 0;
  /// Value programs: register holding the final value.
  std::uint16_t result_reg = 0;
  /// Index programs (assignment targets): slots holding the final indices,
  /// one per target dimension.
  std::vector<std::uint16_t> out_index_slots;
  /// Optimizer metadata: emitted index programs (cleared by the optimizer).
  std::vector<IndexRange> index_ranges;
  /// Global hoist slots this program reads via kHoistIndex (sorted,
  /// unique).  Consumers that never walk loops (ShardReplay) evaluate the
  /// corresponding ProgramBytecode::hoists programs per instance.
  std::vector<std::uint32_t> hoist_deps;
};

// ---------------------------------------------------------------------------
// Per-statement compilation
// ---------------------------------------------------------------------------

/// Bytecode for one `A(indices) = value` statement.
struct CompiledAssign {
  CompiledExpr target;  // produces out_index_slots
  CompiledExpr value;   // produces result_reg
};

/// Bytecode for the loop-entry bound expressions of one DO loop.
struct CompiledLoop {
  CompiledExpr lower;
  CompiledExpr upper;
  std::optional<CompiledExpr> step;
};

/// Bytecode for a whole program, keyed by the AST nodes the executors
/// walk.  Node pointers stay valid for the life of the owning Program
/// (statements live behind unique_ptrs and never move).
struct ProgramBytecode {
  std::unordered_map<const ArrayAssign*, CompiledAssign> assigns;
  std::unordered_map<const ScalarAssign*, CompiledExpr> scalar_assigns;
  std::unordered_map<const DoLoop*, CompiledLoop> loops;
  /// IF guards: the statement-level branch lives in the executor; the
  /// guard expression itself runs as a compiled value program.
  std::unordered_map<const IfStmt*, CompiledExpr> guards;
  /// Hoisted loop-invariant index subexpressions (optimizer): slot ->
  /// value program.  Every program is total — pure +,-,*,MIN,MAX,ABS over
  /// enclosing-loop variables and constant scalars, no reads, no division
  /// — so evaluating one early is semantically invisible (claim 11).
  std::vector<CompiledExpr> hoists;
  /// Per-loop preamble: hoist slots (re)computed at each loop entry,
  /// before the first trip.  SequentialExecutor runs these; ShardReplay
  /// evaluates a statement's hoist_deps per instance instead (the
  /// instance env carries every variable the programs need).
  std::unordered_map<const DoLoop*, std::vector<std::uint32_t>> preambles;
  /// True once optimize_bytecode ran (SAPART_BYTECODE_OPT=on, default).
  bool optimized = false;
};

/// Flattens one expression into a value program.  `enclosing` is the loop
/// nest around the expression (outermost first) — it scopes the affine
/// fast path; pass an empty vector for control expressions.
CompiledExpr compile_value_expr(const Expr& expr, const Program& program,
                                const SemanticInfo& sema,
                                const std::vector<const DoLoop*>& enclosing);

/// Flattens the index expressions of an assignment target into an index
/// program (out_index_slots holds one slot per dimension).
CompiledExpr compile_target_indices(
    const std::vector<ExprPtr>& indices, const Program& program,
    const SemanticInfo& sema, const std::vector<const DoLoop*>& enclosing);

/// Compiles one statement into `out`, recursing into loop bodies.
/// `enclosing` is the current loop nest (mutated while recursing).
void compile_stmt(const Stmt& stmt, const Program& program,
                  const SemanticInfo& sema,
                  std::vector<const DoLoop*>& enclosing, ProgramBytecode& out);

/// Compiles every statement of an analyzed program.
ProgramBytecode compile_bytecode(const Program& program,
                                 const SemanticInfo& sema);

// ---------------------------------------------------------------------------
// Optimization tier (superinstructions + loop-invariant hoisting)
// ---------------------------------------------------------------------------

/// Peephole pass over one program's instruction stream: folds single-use
/// kConst operands into arithmetic (kAddConst-family), fuses compare +
/// kJumpIfZero pairs (kJumpIfNot*-family) and kAffineIndex + kRead into
/// kAffineRead.  Every relative skip is re-encoded, the replaced
/// instructions stay bit-identical in effect, and the generic sequences
/// remain in place as non-integral fallbacks.  Exposed for unit tests;
/// optimize_bytecode applies it to every program of a ProgramBytecode.
void fuse_superinstructions(CompiledExpr& expr);

/// The optimization tier between compile_bytecode and execution: runs
/// fuse_superinstructions over every compiled program and hoists
/// loop-invariant index subexpressions out of instance bodies into
/// per-loop preamble programs (kHoistIndex).  Read order, suspension
/// points and error semantics are preserved exactly — DESIGN.md claim 11;
/// SAPART_BYTECODE_OPT=off keeps the unoptimized bytecode as a second
/// differential oracle.
ProgramBytecode optimize_bytecode(ProgramBytecode bytecode,
                                  const Program& program,
                                  const SemanticInfo& sema);

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Reusable scratch state for executing compiled expressions: register and
/// index files, per-expression variable slot-pointer caches, and the index
/// vector handed to ArrayReader::read.  Variable slots resolve lazily (an
/// unbound variable traps at the same evaluation point as the tree walk)
/// into stable EvalEnv value addresses, and stay resolved across statement
/// instances until the environment's binding layout changes
/// (EvalEnv::version).  One frame per executor; never shared across
/// threads.
class BytecodeFrame {
 public:
  BytecodeFrame() = default;
  BytecodeFrame(const BytecodeFrame&) = delete;
  BytecodeFrame& operator=(const BytecodeFrame&) = delete;
  /// Flushes the per-opcode dispatch tallies (collected only while
  /// obs::collecting()) into the obs counters.
  ~BytecodeFrame();

  /// Stable handle to one expression's variable slot cache.  Interning
  /// once and passing the handle to run()/run_indices() removes a hash
  /// lookup per statement instance; the handle stays valid for the life
  /// of the frame.
  using SlotHandle = std::uint32_t;
  SlotHandle intern(const CompiledExpr& expr);

  /// Value program: the expression's value, or nullopt when a read
  /// suspended.  Throws exactly like eval_expr.
  std::optional<double> run(const CompiledExpr& expr, const EvalEnv& env,
                            ArrayReader& reader);
  std::optional<double> run(const CompiledExpr& expr, SlotHandle handle,
                            const EvalEnv& env, ArrayReader& reader);

  /// Index program: fills `indices_out` (resized to the target rank) and
  /// returns true, or returns false when a read suspended.  Throws exactly
  /// like eval_indices.
  bool run_indices(const CompiledExpr& expr, const EvalEnv& env,
                   ArrayReader& reader, std::vector<std::int64_t>& indices_out);
  bool run_indices(const CompiledExpr& expr, SlotHandle handle,
                   const EvalEnv& env, ArrayReader& reader,
                   std::vector<std::int64_t>& indices_out);

  /// Hoist-slot file (kHoistIndex operands).  Executors size it once from
  /// ProgramBytecode::hoists and write per-loop preamble values before any
  /// body program runs.
  void ensure_hoist(std::size_t count) {
    if (hoist_.size() < count) hoist_.resize(count, 0.0);
  }
  void set_hoist(std::uint32_t slot, double value) { hoist_[slot] = value; }

  /// Installs (or clears, with nullptr) the array binder for the direct
  /// read path: read sites resolve lazily — at the same execution point,
  /// with the same errors, as the name-based seam — into cached SaArray
  /// pointers, and reads go through ArrayReader::read_direct with a
  /// pre-computed linear offset.  Call once per execution run; every call
  /// invalidates previously bound pointers (the registry may differ).
  void set_binder(ArrayNameCache* binder) {
    binder_ = binder;
    ++binder_epoch_;
  }

 private:
  /// Lazily-resolved env slot pointers for one CompiledExpr's variables.
  struct SlotCache {
    std::uint64_t epoch = 0;
    std::vector<const double*> ptrs;
    /// Direct read path: per-ReadSite array pointers, resolved lazily
    /// through binder_ and invalidated whenever the binder changes.
    std::uint64_t bind_epoch = 0;
    std::vector<SaArray*> arrays;
  };

  bool execute(const CompiledExpr& expr, const EvalEnv& env,
               ArrayReader& reader, SlotCache& slots);
  double load_var(const CompiledExpr& expr, const EvalEnv& env,
                  SlotCache& slots, std::uint16_t slot);
  SlotCache& slots_for(const CompiledExpr& expr, SlotHandle handle,
                       const EvalEnv& env);

  std::vector<double> regs_;
  std::vector<std::int64_t> idx_;
  std::vector<SlotCache> slot_store_;
  std::unordered_map<const CompiledExpr*, SlotHandle> handles_;
  const EvalEnv* cached_env_ = nullptr;
  std::uint64_t cached_env_version_ = 0;
  std::uint64_t epoch_ = 0;  // bumps when (env, version) changes
  std::vector<std::int64_t> read_scratch_;
  std::vector<double> hoist_;
  ArrayNameCache* binder_ = nullptr;
  std::uint64_t binder_epoch_ = 0;
  /// Per-opcode dispatch counts, bumped only while obs::collecting() and
  /// flushed to "bytecode/dispatch/<op>" counters on destruction.
  std::uint64_t tally_[kOpCount] = {};
};

}  // namespace sap
