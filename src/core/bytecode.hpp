// Compile-once bytecode twin of the eval.hpp tree walk.
//
// Every interpreter used to re-traverse the AST for each statement instance
// of each loop trip.  Single-assignment programs are fully analyzable before
// execution, so each statement is flattened ONCE into a compact
// register-style instruction stream (`CompiledExpr`) and the per-instance
// cost drops to a linear pass over a few instructions.  The engine is a
// drop-in twin of `eval_expr`:
//
//   - reads go through the identical `ArrayReader` seam, in the identical
//     order, so page-cache / network / ownership accounting is untouched;
//   - a read returning nullopt aborts the stream ("suspend"), exactly like
//     the tree walk's nullopt propagation;
//   - arithmetic faults throw the same `Error`s with the same messages;
//   - array indices pass the same integrality check as `eval_index`.
//
// Affine index expressions additionally carry a precomputed integer form
// (sum of coeff * var + constant over the enclosing loop variables): when
// every participating variable holds an exactly-integral value — the only
// case that arises in practice — the index is produced by pure integer
// arithmetic and the generic instruction sequence is skipped.  Otherwise
// the guard falls through to the generic sequence, which reproduces the
// tree walk's double arithmetic bit for bit.
//
// The tree walk stays available as the oracle: `SAPART_EVAL=tree` disables
// bytecode compilation (see eval_engine_from_env), and the differential
// tests run both engines and require byte-identical results.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/eval.hpp"
#include "frontend/ast.hpp"
#include "frontend/sema.hpp"

namespace sap {

/// Which expression engine the executors use.
enum class EvalEngine {
  kBytecode,  // compiled instruction streams (default)
  kTree,      // the eval.hpp recursive walk (oracle / escape hatch)
};

std::string to_string(EvalEngine engine);

/// Engine selected by the SAPART_EVAL environment variable: unset or
/// "bytecode" -> kBytecode, "tree" -> kTree; anything else throws
/// ConfigError (consistent with the SAPART_WORKERS hardening).
EvalEngine eval_engine_from_env();

// ---------------------------------------------------------------------------
// Instruction set
// ---------------------------------------------------------------------------

enum class Op : std::uint8_t {
  kConst,        // reg[dst] = consts[a]
  kLoadVar,      // reg[dst] = env value of vars[a] (cached per run)
  kNeg,          // reg[dst] = -reg[a]
  kAdd,          // reg[dst] = reg[a] + reg[b]
  kSub,          // reg[dst] = reg[a] - reg[b]
  kMul,          // reg[dst] = reg[a] * reg[b]
  kDiv,          // reg[dst] = reg[a] / reg[b]; reg[b] == 0 throws
  kIDiv,         // reg[dst] = trunc(reg[a] / reg[b]); reg[b] == 0 throws
  kMod,          // reg[dst] = fmod(reg[a], reg[b]); reg[b] == 0 throws
  kMin,          // reg[dst] = min(reg[a], reg[b])
  kMax,          // reg[dst] = max(reg[a], reg[b])
  kAbs,          // reg[dst] = abs(reg[a])
  // Boolean ops (1.0 / 0.0 results, mirroring the tree walk exactly).
  kCmpLt,        // reg[dst] = reg[a] <  reg[b]
  kCmpLe,        // reg[dst] = reg[a] <= reg[b]
  kCmpGt,        // reg[dst] = reg[a] >  reg[b]
  kCmpGe,        // reg[dst] = reg[a] >= reg[b]
  kCmpEq,        // reg[dst] = reg[a] == reg[b]
  kCmpNe,        // reg[dst] = reg[a] != reg[b]
  kAnd,          // reg[dst] = reg[a] != 0 && reg[b] != 0
  kOr,           // reg[dst] = reg[a] != 0 || reg[b] != 0
  kNot,          // reg[dst] = reg[a] == 0
  // Branching (SELECT's lazily evaluated arms).
  kMove,         // reg[dst] = reg[a]
  kJump,         // skip the next a instructions
  kJumpIfZero,   // skip the next b instructions when reg[a] == 0.0
  kCheckIndex,   // idx[dst] = integrality-checked reg[a] (eval_index rules)
  kAffineIndex,  // idx[dst] = affine[a] if every term var is exactly
                 // integral, then skip the next b instructions (the generic
                 // sequence for the same index); falls through otherwise
  kRead,         // reg[dst] = reader.read(site[a]); suspends on nullopt
};

struct Instr {
  Op op = Op::kConst;
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
};

/// One array-read site: which array, and where its (contiguous) index
/// slots live.
struct ReadSite {
  std::string array;
  std::uint16_t rank = 0;
  std::uint16_t first_idx_slot = 0;
};

/// Precomputed integer form of an affine index: constant + sum of
/// coeff * value(var_slot).
struct AffineForm {
  struct Term {
    std::uint16_t var_slot = 0;
    std::int64_t coeff = 0;
  };
  std::int64_t constant = 0;
  std::vector<Term> terms;
};

/// A flattened expression: straight-line code over a double register file,
/// an int64 index-slot file, interned constants/variables and read sites.
struct CompiledExpr {
  std::vector<Instr> code;
  std::vector<double> consts;
  std::vector<std::string> vars;  // slot -> name, distinct per expression
  std::vector<ReadSite> reads;
  std::vector<AffineForm> affines;
  std::uint16_t num_regs = 0;
  std::uint16_t num_idx_slots = 0;
  /// Value programs: register holding the final value.
  std::uint16_t result_reg = 0;
  /// Index programs (assignment targets): slots holding the final indices,
  /// one per target dimension.
  std::vector<std::uint16_t> out_index_slots;
};

// ---------------------------------------------------------------------------
// Per-statement compilation
// ---------------------------------------------------------------------------

/// Bytecode for one `A(indices) = value` statement.
struct CompiledAssign {
  CompiledExpr target;  // produces out_index_slots
  CompiledExpr value;   // produces result_reg
};

/// Bytecode for the loop-entry bound expressions of one DO loop.
struct CompiledLoop {
  CompiledExpr lower;
  CompiledExpr upper;
  std::optional<CompiledExpr> step;
};

/// Bytecode for a whole program, keyed by the AST nodes the executors
/// walk.  Node pointers stay valid for the life of the owning Program
/// (statements live behind unique_ptrs and never move).
struct ProgramBytecode {
  std::unordered_map<const ArrayAssign*, CompiledAssign> assigns;
  std::unordered_map<const ScalarAssign*, CompiledExpr> scalar_assigns;
  std::unordered_map<const DoLoop*, CompiledLoop> loops;
  /// IF guards: the statement-level branch lives in the executor; the
  /// guard expression itself runs as a compiled value program.
  std::unordered_map<const IfStmt*, CompiledExpr> guards;
};

/// Flattens one expression into a value program.  `enclosing` is the loop
/// nest around the expression (outermost first) — it scopes the affine
/// fast path; pass an empty vector for control expressions.
CompiledExpr compile_value_expr(const Expr& expr, const Program& program,
                                const SemanticInfo& sema,
                                const std::vector<const DoLoop*>& enclosing);

/// Flattens the index expressions of an assignment target into an index
/// program (out_index_slots holds one slot per dimension).
CompiledExpr compile_target_indices(
    const std::vector<ExprPtr>& indices, const Program& program,
    const SemanticInfo& sema, const std::vector<const DoLoop*>& enclosing);

/// Compiles one statement into `out`, recursing into loop bodies.
/// `enclosing` is the current loop nest (mutated while recursing).
void compile_stmt(const Stmt& stmt, const Program& program,
                  const SemanticInfo& sema,
                  std::vector<const DoLoop*>& enclosing, ProgramBytecode& out);

/// Compiles every statement of an analyzed program.
ProgramBytecode compile_bytecode(const Program& program,
                                 const SemanticInfo& sema);

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Reusable scratch state for executing compiled expressions: register and
/// index files, per-expression variable slot-pointer caches, and the index
/// vector handed to ArrayReader::read.  Variable slots resolve lazily (an
/// unbound variable traps at the same evaluation point as the tree walk)
/// into stable EvalEnv value addresses, and stay resolved across statement
/// instances until the environment's binding layout changes
/// (EvalEnv::version).  One frame per executor; never shared across
/// threads.
class BytecodeFrame {
 public:
  /// Stable handle to one expression's variable slot cache.  Interning
  /// once and passing the handle to run()/run_indices() removes a hash
  /// lookup per statement instance; the handle stays valid for the life
  /// of the frame.
  using SlotHandle = std::uint32_t;
  SlotHandle intern(const CompiledExpr& expr);

  /// Value program: the expression's value, or nullopt when a read
  /// suspended.  Throws exactly like eval_expr.
  std::optional<double> run(const CompiledExpr& expr, const EvalEnv& env,
                            ArrayReader& reader);
  std::optional<double> run(const CompiledExpr& expr, SlotHandle handle,
                            const EvalEnv& env, ArrayReader& reader);

  /// Index program: fills `indices_out` (resized to the target rank) and
  /// returns true, or returns false when a read suspended.  Throws exactly
  /// like eval_indices.
  bool run_indices(const CompiledExpr& expr, const EvalEnv& env,
                   ArrayReader& reader, std::vector<std::int64_t>& indices_out);
  bool run_indices(const CompiledExpr& expr, SlotHandle handle,
                   const EvalEnv& env, ArrayReader& reader,
                   std::vector<std::int64_t>& indices_out);

 private:
  /// Lazily-resolved env slot pointers for one CompiledExpr's variables.
  struct SlotCache {
    std::uint64_t epoch = 0;
    std::vector<const double*> ptrs;
  };

  bool execute(const CompiledExpr& expr, const EvalEnv& env,
               ArrayReader& reader, SlotCache& slots);
  double load_var(const CompiledExpr& expr, const EvalEnv& env,
                  SlotCache& slots, std::uint16_t slot);
  SlotCache& slots_for(const CompiledExpr& expr, SlotHandle handle,
                       const EvalEnv& env);

  std::vector<double> regs_;
  std::vector<std::int64_t> idx_;
  std::vector<SlotCache> slot_store_;
  std::unordered_map<const CompiledExpr*, SlotHandle> handles_;
  const EvalEnv* cached_env_ = nullptr;
  std::uint64_t cached_env_version_ = 0;
  std::uint64_t epoch_ = 0;  // bumps when (env, version) changes
  std::vector<std::int64_t> read_scratch_;
};

}  // namespace sap
