#include "core/simulator.hpp"

#include "core/counting_interpreter.hpp"
#include "core/dataflow_interpreter.hpp"
#include "frontend/affine.hpp"
#include "frontend/parser.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sap {

CompiledProgram compile(Program program) {
  return compile(std::move(program), eval_engine_from_env());
}

CompiledProgram compile(Program program, EvalEngine engine) {
  return compile(std::move(program), engine, bytecode_opt_from_env());
}

CompiledProgram compile(Program program, EvalEngine engine, BytecodeOpt opt) {
  const obs::Span span("compile", "compile");
  CompiledProgram compiled;
  compiled.sema = analyze(program);  // annotates reductions in-place
  compiled.program = std::move(program);

  for (const auto& site : compiled.sema.assign_sites) {
    if (!site.assign->is_reduction) continue;
    AffineContext ctx{&compiled.program, &compiled.sema, site.loops};
    const ArrayShape shape(
        compiled.program.arrays[compiled.sema.arrays.at(site.assign->array)]
            .dims);
    ArrayRefExpr target;
    target.name = site.assign->array;
    for (const auto& idx : site.assign->indices) {
      target.indices.push_back(clone(*idx));
    }
    const AffineIndex aff = element_affine(target, shape, ctx);
    if (!aff.affine) {
      throw SemanticError(
          "reduction into '" + site.assign->array +
          "' has a non-affine target; commit point cannot be determined");
    }
    CommitPoint commit;
    for (std::size_t d = site.loops.size(); d-- > 0;) {
      const auto stride = stride_per_trip(aff, *site.loops[d], ctx);
      if (stride && *stride != 0) {
        commit.loop = site.loops[d];
        commit.at_exit = false;
        break;
      }
    }
    if (commit.loop == nullptr && !site.loops.empty()) {
      // Target invariant across the whole nest (dot product): the single
      // write happens when the outermost loop finishes.
      commit.loop = site.loops.front();
      commit.at_exit = true;
    }
    compiled.commit_loops[site.assign] = commit;
  }
  if (engine == EvalEngine::kBytecode) {
    ProgramBytecode bc = compile_bytecode(compiled.program, compiled.sema);
    if (opt == BytecodeOpt::kOn) {
      bc = optimize_bytecode(std::move(bc), compiled.program, compiled.sema);
    }
    compiled.bytecode =
        std::make_shared<const ProgramBytecode>(std::move(bc));
  }
  return compiled;
}

CompiledProgram compile_source(std::string_view source) {
  return compile(Parser::parse(source));
}

double synthetic_init_value(std::string_view array, std::int64_t linear) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the name
  for (const char c : array) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  SplitMix64 rng(h ^ (static_cast<std::uint64_t>(linear) *
                      0x9e3779b97f4a7c15ull));
  // Positive and bounded away from zero so kernels may divide by sums of
  // initialization data.
  return 0.5 + rng.next_double();
}

void materialize_arrays(const CompiledProgram& compiled,
                        ArrayRegistry& registry) {
  for (const auto& decl : compiled.program.arrays) {
    const ArrayId id = registry.declare(decl.name, ArrayShape(decl.dims));
    SaArray& array = registry.at(id);
    std::int64_t init_count = 0;
    switch (decl.init) {
      case InitMode::kNone:
        init_count = 0;
        break;
      case InitMode::kAll:
        init_count = array.element_count();
        break;
      case InitMode::kPrefix:
        init_count = decl.init_prefix;
        break;
    }
    const auto custom = compiled.custom_inits.find(decl.name);
    for (std::int64_t i = 0; i < init_count; ++i) {
      const double v = custom != compiled.custom_inits.end()
                           ? custom->second(i)
                           : synthetic_init_value(decl.name, i);
      array.initialize(i, v);
    }
  }
}

void materialize_arrays(const CompiledProgram& compiled, Machine& machine) {
  materialize_arrays(compiled, machine.arrays());
}

std::string to_string(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kCounting:
      return "counting";
    case ExecutionMode::kDataflow:
      return "dataflow";
  }
  return "?";
}

Simulator::Simulator(MachineConfig config) : config_(config) {
  config_.validate();
}

SimulationResult Simulator::run(const CompiledProgram& compiled,
                                ExecutionMode mode) const {
  std::unique_ptr<Machine> machine;
  return run_with_machine(compiled, mode, machine);
}

SimulationResult Simulator::run_with_machine(
    const CompiledProgram& compiled, ExecutionMode mode,
    std::unique_ptr<Machine>& machine_out) const {
  obs::Span span("runtime", "simulate");
  span.arg("pes", config_.num_pes);
  static obs::Counter& runs = obs::counter("runtime/simulations");
  runs.add(1);
  machine_out = std::make_unique<Machine>(config_);
  materialize_arrays(compiled, *machine_out);
  switch (mode) {
    case ExecutionMode::kCounting:
      run_counting(compiled, *machine_out);
      break;
    case ExecutionMode::kDataflow:
      run_dataflow(compiled, *machine_out);
      break;
  }
  return machine_out->snapshot(compiled.name());
}

}  // namespace sap
