#include "core/executor_base.hpp"

#include <variant>

#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

namespace {

/// Reader that must never be consulted (scalar control reads no arrays;
/// enforced by sema).
class NoArrayReader final : public ArrayReader {
 public:
  std::optional<double> read(const std::string& array,
                             const std::vector<std::int64_t>&) override {
    throw Error("array '" + array +
                "' read in a scalar/control context (not allowed)");
  }
};

}  // namespace

void SequentialExecutor::execute(const CompiledProgram& compiled,
                                 ArrayRegistry& registry) {
  compiled_ = &compiled;
  bytecode_ = compiled.bytecode.get();
  registry_ = &registry;
  arrays_.reset(registry);
  frame_.set_binder(&arrays_);
  assign_memo_.clear();
  last_assign_ = static_cast<std::size_t>(-1);
  loop_memo_.clear();
  last_loop_ = static_cast<std::size_t>(-1);
  scalar_memo_.clear();
  guard_memo_.clear();
  if (bytecode_ != nullptr) frame_.ensure_hoist(bytecode_->hoists.size());
  env_ = EvalEnv{};
  registers_.clear();
  pending_trip_.clear();
  pending_exit_.clear();

  for (const auto& decl : compiled.program.scalars) {
    env_.set(decl.name, decl.init);
  }
  for (const auto& stmt : compiled.program.body) exec_stmt(*stmt);
  // Commit-immediately reductions are keyed on nullptr.
  flush_commits(pending_trip_, nullptr);
  SAP_CHECK(registers_.empty(), "unfinished reduction registers at end");
}

PeId SequentialExecutor::owner_of(const SaArray&, std::int64_t) { return 0; }
void SequentialExecutor::on_read(PeId, const SaArray&, std::int64_t) {}
void SequentialExecutor::on_write(PeId, const SaArray&, std::int64_t) {}
void SequentialExecutor::on_target_index_reads(
    PeId, const std::vector<std::pair<const SaArray*, std::int64_t>>&) {}
void SequentialExecutor::on_instance(const ArrayAssign&, PeId, std::int64_t,
                                     const EvalEnv&, bool) {}
void SequentialExecutor::on_reinit(const SaArray& array) {
  registry_->by_name(array.name()).reinitialize();
}

void SequentialExecutor::exec_stmt(const Stmt& stmt) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, ArrayAssign>) {
          exec_assign(node);
        } else if constexpr (std::is_same_v<T, ScalarAssign>) {
          NoArrayReader reader;
          const ScalarMemo* memo = nullptr;
          for (const ScalarMemo& entry : scalar_memo_) {
            if (entry.key == &node) {
              memo = &entry;
              break;
            }
          }
          if (memo == nullptr) {
            ScalarMemo entry;
            entry.key = &node;
            if (bytecode_ != nullptr) {
              const auto it = bytecode_->scalar_assigns.find(&node);
              if (it != bytecode_->scalar_assigns.end()) {
                entry.ce = &it->second;
                entry.handle = frame_.intern(it->second);
              }
            }
            scalar_memo_.push_back(entry);
            memo = &scalar_memo_.back();
          }
          const auto v =
              memo->ce != nullptr
                  ? frame_.run(*memo->ce, memo->handle, env_, reader)
                  : eval_expr(*node.value, env_, reader);
          SAP_CHECK(v.has_value(), "scalar evaluation suspended");
          env_.set(node.name, *v);
        } else if constexpr (std::is_same_v<T, DoLoop>) {
          exec_loop(node);
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          exec_if(node);
        } else if constexpr (std::is_same_v<T, ReinitStmt>) {
          on_reinit(registry_->by_name(node.array));
        }
      },
      stmt.node);
}

void SequentialExecutor::exec_if(const IfStmt& branch) {
  // Guard reads are replicated control operands (§2: every PE runs a copy
  // of the control), not modeled memory traffic — the same rule loop
  // bounds and trace-time index resolution follow.  They read the
  // registry directly, with the trace builder's undefined-read tolerance.
  class GuardReader final : public ArrayReader {
   public:
    explicit GuardReader(SequentialExecutor& exec) : exec_(exec) {}
    std::optional<double> read(
        const std::string& array,
        const std::vector<std::int64_t>& indices) override {
      SaArray& a = exec_.resolve_array(array);
      const std::int64_t linear = a.shape().linearize(indices);
      if (exec_.tolerate_undefined_reads() && !a.is_defined(linear)) {
        return 0.0;
      }
      return a.read(linear);
    }
    std::optional<double> read_direct(SaArray& a, std::int64_t linear,
                                      const std::string&,
                                      const std::int64_t*,
                                      std::size_t) override {
      if (exec_.tolerate_undefined_reads() && !a.is_defined(linear)) {
        return 0.0;
      }
      return a.read(linear);
    }

   private:
    SequentialExecutor& exec_;
  };
  GuardReader reader(*this);

  const GuardMemo* memo = nullptr;
  for (const GuardMemo& entry : guard_memo_) {
    if (entry.key == &branch) {
      memo = &entry;
      break;
    }
  }
  if (memo == nullptr) {
    GuardMemo entry;
    entry.key = &branch;
    if (bytecode_ != nullptr) {
      const auto it = bytecode_->guards.find(&branch);
      if (it != bytecode_->guards.end()) {
        entry.ce = &it->second;
        entry.handle = frame_.intern(it->second);
      }
    }
    guard_memo_.push_back(entry);
    memo = &guard_memo_.back();
  }
  const auto v = memo->ce != nullptr
                     ? frame_.run(*memo->ce, memo->handle, env_, reader)
                     : eval_expr(*branch.cond, env_, reader);
  SAP_CHECK(v.has_value(), "guard evaluation suspended");
  const auto& body = *v != 0.0 ? branch.then_body : branch.else_body;
  for (const auto& stmt : body) exec_stmt(*stmt);
}

void SequentialExecutor::exec_loop(const DoLoop& loop) {
  NoArrayReader reader;
  // One memo resolution per entry replaces a hash find per bound program
  // plus an intern per evaluation; the memo is consumed fully before the
  // body recurses (nested loops may grow loop_memo_ and move it).
  const LoopMemo& memo = loop_memo(loop);
  const CompiledLoop* cl = memo.cl;
  const auto lo = cl != nullptr
                      ? frame_.run(cl->lower, memo.lower_handle, env_, reader)
                      : eval_expr(*loop.lower, env_, reader);
  const auto hi = cl != nullptr
                      ? frame_.run(cl->upper, memo.upper_handle, env_, reader)
                      : eval_expr(*loop.upper, env_, reader);
  double step = 1.0;
  if (loop.step) {
    const auto s = cl != nullptr && cl->step
                       ? frame_.run(*cl->step, memo.step_handle, env_, reader)
                       : eval_expr(*loop.step, env_, reader);
    SAP_CHECK(s.has_value(), "loop step suspended");
    step = *s;
  }
  if (step == 0.0) throw Error("loop '" + loop.var + "' has zero step");
  SAP_CHECK(lo && hi, "loop bounds suspended");

  // Preamble: recompute the hoisted loop-invariant index expressions for
  // this entry.  The programs are total and read-free (claim 11), so
  // running them before the trip check — even for a zero-trip loop — is
  // semantically invisible; kHoistIndex re-checks integrality per
  // instance at the original evaluation point.
  for (const LoopPreamble& p : memo.preambles) {
    const auto v = frame_.run(*p.program, p.handle, env_, reader);
    SAP_CHECK(v.has_value(), "hoisted index evaluation suspended");
    frame_.set_hoist(p.slot, *v);
  }

  // The loop variable's slot is updated in place between iterations (a
  // pure value update, exactly like set() on a bound name); the slot is
  // re-resolved whenever the environment's binding layout changes (e.g. a
  // nested loop unbinding its own variable).
  double* slot = nullptr;
  std::uint64_t env_version = 0;
  for (double v = *lo; step > 0 ? v <= *hi : v >= *hi; v += step) {
    if (slot != nullptr && env_.version() == env_version) {
      *slot = v;
    } else {
      env_.set(loop.var, v);
      env_version = env_.version();
      slot = env_.find_slot_mutable(loop.var);
    }
    for (const auto& stmt : loop.body) exec_stmt(*stmt);
    flush_commits(pending_trip_, &loop);
  }
  flush_commits(pending_exit_, &loop);
  env_.erase(loop.var);
}

void SequentialExecutor::flush_commits(
    std::map<const DoLoop*, std::vector<PendingCommit>>& queue,
    const DoLoop* loop) {
  const auto it = queue.find(loop);
  if (it == queue.end()) return;
  for (const PendingCommit& pc : it->second) {
    const auto key = std::make_pair(pc.stmt, pc.linear);
    const auto reg = registers_.find(key);
    SAP_CHECK(reg != registers_.end(), "missing reduction register");
    const double value = reg->second;
    registers_.erase(reg);

    SaArray& array = arrays_.resolve(pc.stmt->array);
    const PeId pe = owner_of(array, pc.linear);
    on_instance(*pc.stmt, pe, pc.linear, env_, /*is_commit=*/true);
    on_write(pe, array, pc.linear);
    array.write(pc.linear, value);
  }
  it->second.clear();
}

const SequentialExecutor::LoopMemo& SequentialExecutor::loop_memo(
    const DoLoop& loop) {
  if (last_loop_ < loop_memo_.size() && loop_memo_[last_loop_].key == &loop) {
    return loop_memo_[last_loop_];
  }
  for (std::size_t i = 0; i < loop_memo_.size(); ++i) {
    if (loop_memo_[i].key == &loop) {
      last_loop_ = i;
      return loop_memo_[i];
    }
  }
  LoopMemo entry;
  entry.key = &loop;
  if (bytecode_ != nullptr) {
    const auto it = bytecode_->loops.find(&loop);
    if (it != bytecode_->loops.end()) {
      entry.cl = &it->second;
      entry.lower_handle = frame_.intern(it->second.lower);
      entry.upper_handle = frame_.intern(it->second.upper);
      if (it->second.step) entry.step_handle = frame_.intern(*it->second.step);
    }
    const auto pre = bytecode_->preambles.find(&loop);
    if (pre != bytecode_->preambles.end()) {
      for (const std::uint32_t slot : pre->second) {
        const CompiledExpr& program = bytecode_->hoists[slot];
        entry.preambles.push_back(
            LoopPreamble{&program, slot, frame_.intern(program)});
      }
    }
  }
  loop_memo_.push_back(std::move(entry));
  last_loop_ = loop_memo_.size() - 1;
  return loop_memo_.back();
}

const SequentialExecutor::AssignMemo& SequentialExecutor::assign_memo(
    const ArrayAssign& assign) {
  if (last_assign_ < assign_memo_.size() &&
      assign_memo_[last_assign_].key == &assign) {
    return assign_memo_[last_assign_];
  }
  for (std::size_t i = 0; i < assign_memo_.size(); ++i) {
    if (assign_memo_[i].key == &assign) {
      last_assign_ = i;
      return assign_memo_[i];
    }
  }
  AssignMemo entry;
  entry.key = &assign;
  if (bytecode_ != nullptr) {
    const auto it = bytecode_->assigns.find(&assign);
    if (it != bytecode_->assigns.end()) {
      entry.ca = &it->second;
      entry.target_handle = frame_.intern(it->second.target);
      entry.value_handle = frame_.intern(it->second.value);
    }
  }
  assign_memo_.push_back(entry);
  last_assign_ = assign_memo_.size() - 1;
  return assign_memo_.back();
}

double SequentialExecutor::read_for_value(
    PeId pe, const std::string& name,
    const std::vector<std::int64_t>& indices) {
  SaArray& array = arrays_.resolve(name);
  const std::int64_t linear = array.shape().linearize(indices);
  on_read(pe, array, linear);
  if (tolerate_undefined_reads() && !array.is_defined(linear)) return 0.0;
  return array.read(linear);
}

double SequentialExecutor::read_for_value_direct(PeId pe, SaArray& array,
                                                 std::int64_t linear) {
  on_read(pe, array, linear);
  if (tolerate_undefined_reads() && !array.is_defined(linear)) return 0.0;
  return array.read(linear);
}

void SequentialExecutor::exec_assign(const ArrayAssign& assign) {
  // Resolve the target.  Reads needed by an *indirect* write index are
  // collected first and attributed once the owner is known.
  std::vector<std::pair<const SaArray*, std::int64_t>> index_reads;
  class CollectingReader final : public ArrayReader {
   public:
    CollectingReader(SequentialExecutor& exec,
                     std::vector<std::pair<const SaArray*, std::int64_t>>& out,
                     bool tolerant)
        : exec_(exec), out_(out), tolerant_(tolerant) {}
    std::optional<double> read(
        const std::string& array,
        const std::vector<std::int64_t>& indices) override {
      SaArray& a = exec_.resolve_array(array);
      const std::int64_t linear = a.shape().linearize(indices);
      out_.emplace_back(&a, linear);
      if (tolerant_ && !a.is_defined(linear)) return 0.0;
      return a.read(linear);
    }
    std::optional<double> read_direct(SaArray& a, std::int64_t linear,
                                      const std::string&,
                                      const std::int64_t*,
                                      std::size_t) override {
      out_.emplace_back(&a, linear);
      if (tolerant_ && !a.is_defined(linear)) return 0.0;
      return a.read(linear);
    }

   private:
    SequentialExecutor& exec_;
    std::vector<std::pair<const SaArray*, std::int64_t>>& out_;
    bool tolerant_;
  };
  CollectingReader target_reader(*this, index_reads,
                                 tolerate_undefined_reads());
  // By reference: nothing below adds memos, so no reallocation can move it.
  const AssignMemo& memo = assign_memo(assign);
  const std::vector<std::int64_t>* indices = nullptr;
  std::optional<std::vector<std::int64_t>> tree_indices;
  if (memo.ca != nullptr) {
    const bool resolved = frame_.run_indices(
        memo.ca->target, memo.target_handle, env_, target_reader,
        target_scratch_);
    SAP_CHECK(resolved, "target index evaluation suspended");
    indices = &target_scratch_;
  } else {
    tree_indices = eval_indices(assign.indices, env_, target_reader);
    SAP_CHECK(tree_indices.has_value(), "target index evaluation suspended");
    indices = &*tree_indices;
  }

  if (memo.target == nullptr) memo.target = &arrays_.resolve(assign.array);
  SaArray& array = *memo.target;
  const ArrayShape& shape = array.shape();
  // Unchecked linearize behind an inline bounds test; a failure re-runs
  // the checked path so the error text is byte-identical.
  const std::int64_t target_linear =
      shape.contains_span(indices->data(), indices->size())
          ? shape.linearize_span_unchecked(indices->data(), indices->size())
          : shape.linearize(*indices);
  const PeId pe = owner_of(array, target_linear);
  if (!index_reads.empty()) on_target_index_reads(pe, index_reads);
  on_instance(assign, pe, target_linear, env_, /*is_commit=*/false);

  if (assign.is_reduction) {
    // Accumulate in an owner-local register; reads of the target element
    // come from the register and are not memory traffic.
    // One hash probe serves the fetch and the post-evaluation store; the
    // evaluation below never touches the map, so the iterator holds.
    const auto [reg_it, fresh] =
        registers_.try_emplace(std::make_pair(&assign, target_linear), 0.0);
    const double current = reg_it->second;

    class ReductionReader final : public ArrayReader {
     public:
      ReductionReader(SequentialExecutor& exec, PeId pe, SaArray& target,
                      const std::string& target_array,
                      std::int64_t target_linear, double register_value)
          : exec_(exec),
            pe_(pe),
            target_(&target),
            target_array_(target_array),
            target_linear_(target_linear),
            register_value_(register_value) {}
      std::optional<double> read(
          const std::string& array,
          const std::vector<std::int64_t>& indices) override {
        SaArray& a = exec_.resolve_array(array);
        const std::int64_t linear = a.shape().linearize(indices);
        if (array == target_array_ && linear == target_linear_) {
          return register_value_;
        }
        exec_.on_read(pe_, a, linear);
        if (exec_.tolerate_undefined_reads() && !a.is_defined(linear)) {
          return 0.0;
        }
        return a.read(linear);
      }
      // Pointer identity replaces the name compare: the registry maps
      // each name to exactly one SaArray, so the checks are equivalent.
      std::optional<double> read_direct(SaArray& a, std::int64_t linear,
                                        const std::string&,
                                        const std::int64_t*,
                                        std::size_t) override {
        if (&a == target_ && linear == target_linear_) {
          return register_value_;
        }
        exec_.on_read(pe_, a, linear);
        if (exec_.tolerate_undefined_reads() && !a.is_defined(linear)) {
          return 0.0;
        }
        return a.read(linear);
      }

     private:
      SequentialExecutor& exec_;
      PeId pe_;
      const SaArray* target_;
      const std::string& target_array_;
      std::int64_t target_linear_;
      double register_value_;
    };
    ReductionReader reader(*this, pe, array, assign.array, target_linear,
                           current);
    const auto value =
        memo.ca != nullptr
            ? frame_.run(memo.ca->value, memo.value_handle, env_, reader)
            : eval_expr(*assign.value, env_, reader);
    SAP_CHECK(value.has_value(), "reduction evaluation suspended");
    reg_it->second = *value;

    if (fresh) {
      const auto commit_it = compiled_->commit_loops.find(&assign);
      const CommitPoint commit = commit_it != compiled_->commit_loops.end()
                                     ? commit_it->second
                                     : CommitPoint{};
      auto& queue = commit.at_exit ? pending_exit_ : pending_trip_;
      queue[commit.loop].push_back(PendingCommit{&assign, target_linear});
      if (commit.loop == nullptr) flush_commits(pending_trip_, nullptr);
    }
    return;
  }

  class ValueReader final : public ArrayReader {
   public:
    ValueReader(SequentialExecutor& exec, PeId pe) : exec_(exec), pe_(pe) {}
    std::optional<double> read(
        const std::string& array,
        const std::vector<std::int64_t>& indices) override {
      return exec_.read_for_value(pe_, array, indices);
    }
    std::optional<double> read_direct(SaArray& array, std::int64_t linear,
                                      const std::string&,
                                      const std::int64_t*,
                                      std::size_t) override {
      return exec_.read_for_value_direct(pe_, array, linear);
    }

   private:
    SequentialExecutor& exec_;
    PeId pe_;
  };
  ValueReader reader(*this, pe);
  const auto value =
      memo.ca != nullptr
          ? frame_.run(memo.ca->value, memo.value_handle, env_, reader)
          : eval_expr(*assign.value, env_, reader);
  SAP_CHECK(value.has_value(), "value evaluation suspended");
  on_write(pe, array, target_linear);
  array.write(target_linear, *value);
}

}  // namespace sap
