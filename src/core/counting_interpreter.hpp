// Counting interpreter: one sequential pass over the iteration space,
// attributing every statement instance to the PE that owns the written
// element (owner-computes) and driving all accounting through the Machine.
//
// This is exact (not an approximation): caches are per-PE and mutate only
// on that PE's own statement instances, so a single global pass produces
// the same per-PE access streams as running the PEs concurrently.  The
// dataflow interpreter cross-checks this claim test-side.
#pragma once

#include "core/simulator.hpp"
#include "machine/machine.hpp"

namespace sap {

/// Executes the program on the machine (arrays must be materialized).
/// Throws DoubleWriteError / UndefinedReadError on SA violations.
void run_counting(const CompiledProgram& compiled, Machine& machine);

}  // namespace sap
