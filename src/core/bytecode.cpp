#include "core/bytecode.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <variant>

#include "frontend/affine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

std::string to_string(EvalEngine engine) {
  switch (engine) {
    case EvalEngine::kBytecode:
      return "bytecode";
    case EvalEngine::kTree:
      return "tree";
  }
  return "?";
}

EvalEngine eval_engine_from_env() {
  const char* raw = std::getenv("SAPART_EVAL");
  if (raw == nullptr) return EvalEngine::kBytecode;
  const std::string value(raw);
  if (value == "bytecode") return EvalEngine::kBytecode;
  if (value == "tree") return EvalEngine::kTree;
  // Empty included: a typo'd `SAPART_EVAL= ctest` must fail loudly, not
  // silently pick the default (the SAPART_WORKERS hardening convention).
  throw ConfigError("SAPART_EVAL must be 'bytecode' or 'tree', got '" +
                    value + "'");
}

namespace {

/// The affine fast path substitutes exact integer arithmetic for the tree
/// walk's double arithmetic.  That is bit-identical only when every folded
/// leaf (number literal, constant scalar) is an exact integer — the affine
/// analysis itself folds anything within 1e-9.  Gate the fast path on
/// exactness so the generic sequence keeps the tree semantics for the
/// pathological rest.
bool exact_integer_leaves(const Expr& expr, const Program& program,
                          const SemanticInfo& sema) {
  return std::visit(
      [&](const auto& node) -> bool {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, NumberLit>) {
          return node.value == std::round(node.value);
        } else if constexpr (std::is_same_v<T, VarRef>) {
          const auto it = sema.scalars.find(node.name);
          if (it == sema.scalars.end() || !it->second.is_constant()) {
            return true;  // loop var / induction scalar: runtime value used
          }
          const double init = program.scalars[it->second.decl_index].init;
          return init == std::round(init);
        } else if constexpr (std::is_same_v<T, ArrayRefExpr>) {
          return true;  // not affine anyway; the generic path handles it
        } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
          for (const auto& a : node.args) {
            if (!exact_integer_leaves(*a, program, sema)) return false;
          }
          return true;
        } else if constexpr (std::is_same_v<T, UnaryNeg>) {
          return exact_integer_leaves(*node.operand, program, sema);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          return exact_integer_leaves(*node.lhs, program, sema) &&
                 exact_integer_leaves(*node.rhs, program, sema);
        } else if constexpr (std::is_same_v<T, CompareExpr>) {
          return exact_integer_leaves(*node.lhs, program, sema) &&
                 exact_integer_leaves(*node.rhs, program, sema);
        }
      },
      expr.node);
}

constexpr std::size_t kSlotLimit = std::numeric_limits<std::uint16_t>::max();

/// Flattens expression trees into CompiledExpr streams.  Registers are
/// allocated SSA-style (one per node); variables, constants and read sites
/// are interned per expression.
class ExprCompiler {
 public:
  ExprCompiler(const Program& program, const SemanticInfo& sema,
               const std::vector<const DoLoop*>& enclosing)
      : program_(program), sema_(sema), enclosing_(enclosing) {}

  CompiledExpr compile_value(const Expr& expr) {
    out_.result_reg = emit_value(expr);
    return finish();
  }

  CompiledExpr compile_indices(const std::vector<ExprPtr>& indices) {
    const std::uint16_t first = alloc_idx_slots(indices.size());
    for (std::size_t d = 0; d < indices.size(); ++d) {
      emit_index(*indices[d], static_cast<std::uint16_t>(first + d));
      out_.out_index_slots.push_back(static_cast<std::uint16_t>(first + d));
    }
    return finish();
  }

 private:
  CompiledExpr finish() {
    out_.num_regs = next_reg_;
    out_.num_idx_slots = next_idx_;
    return std::move(out_);
  }

  std::uint16_t alloc_reg() {
    SAP_CHECK(next_reg_ < kSlotLimit, "expression too large for bytecode");
    return next_reg_++;
  }

  std::uint16_t alloc_idx_slots(std::size_t count) {
    SAP_CHECK(next_idx_ + count < kSlotLimit,
              "expression has too many index slots for bytecode");
    const std::uint16_t first = next_idx_;
    next_idx_ = static_cast<std::uint16_t>(next_idx_ + count);
    return first;
  }

  std::uint16_t var_slot(const std::string& name) {
    for (std::size_t i = 0; i < out_.vars.size(); ++i) {
      if (out_.vars[i] == name) return static_cast<std::uint16_t>(i);
    }
    SAP_CHECK(out_.vars.size() < kSlotLimit, "too many variables in bytecode");
    out_.vars.push_back(name);
    return static_cast<std::uint16_t>(out_.vars.size() - 1);
  }

  std::uint16_t const_slot(double value) {
    for (std::size_t i = 0; i < out_.consts.size(); ++i) {
      // Bitwise comparison: -0.0 and 0.0 must not alias, NaN interns fine.
      if (std::memcmp(&out_.consts[i], &value, sizeof value) == 0) {
        return static_cast<std::uint16_t>(i);
      }
    }
    SAP_CHECK(out_.consts.size() < kSlotLimit, "too many constants in bytecode");
    out_.consts.push_back(value);
    return static_cast<std::uint16_t>(out_.consts.size() - 1);
  }

  void emit(Op op, std::uint16_t dst, std::uint16_t a = 0,
            std::uint16_t b = 0) {
    out_.code.push_back(Instr{op, dst, a, b});
  }

  /// Emits code computing `expr` as a double; returns the result register.
  /// Instruction order matches the tree walk's evaluation order exactly
  /// (operands left to right, indices before the read), so accounting and
  /// suspension points are identical.
  std::uint16_t emit_value(const Expr& expr) {
    return std::visit(
        [&](const auto& node) -> std::uint16_t {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, NumberLit>) {
            const std::uint16_t dst = alloc_reg();
            emit(Op::kConst, dst, const_slot(node.value));
            return dst;
          } else if constexpr (std::is_same_v<T, VarRef>) {
            const std::uint16_t dst = alloc_reg();
            emit(Op::kLoadVar, dst, var_slot(node.name));
            return dst;
          } else if constexpr (std::is_same_v<T, ArrayRefExpr>) {
            return emit_read(node);
          } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
            return emit_intrinsic(node);
          } else if constexpr (std::is_same_v<T, UnaryNeg>) {
            const std::uint16_t operand = emit_value(*node.operand);
            const std::uint16_t dst = alloc_reg();
            emit(Op::kNeg, dst, operand);
            return dst;
          } else if constexpr (std::is_same_v<T, BinaryExpr>) {
            const std::uint16_t lhs = emit_value(*node.lhs);
            const std::uint16_t rhs = emit_value(*node.rhs);
            const std::uint16_t dst = alloc_reg();
            switch (node.op) {
              case BinaryOp::kAdd: emit(Op::kAdd, dst, lhs, rhs); break;
              case BinaryOp::kSub: emit(Op::kSub, dst, lhs, rhs); break;
              case BinaryOp::kMul: emit(Op::kMul, dst, lhs, rhs); break;
              case BinaryOp::kDiv: emit(Op::kDiv, dst, lhs, rhs); break;
            }
            return dst;
          } else if constexpr (std::is_same_v<T, CompareExpr>) {
            const std::uint16_t lhs = emit_value(*node.lhs);
            const std::uint16_t rhs = emit_value(*node.rhs);
            const std::uint16_t dst = alloc_reg();
            switch (node.op) {
              case CompareOp::kLt: emit(Op::kCmpLt, dst, lhs, rhs); break;
              case CompareOp::kLe: emit(Op::kCmpLe, dst, lhs, rhs); break;
              case CompareOp::kGt: emit(Op::kCmpGt, dst, lhs, rhs); break;
              case CompareOp::kGe: emit(Op::kCmpGe, dst, lhs, rhs); break;
              case CompareOp::kEq: emit(Op::kCmpEq, dst, lhs, rhs); break;
              case CompareOp::kNe: emit(Op::kCmpNe, dst, lhs, rhs); break;
            }
            return dst;
          }
        },
        expr.node);
  }

  std::uint16_t emit_intrinsic(const IntrinsicExpr& node) {
    const std::size_t arity = intrinsic_arity(node.kind);
    SAP_CHECK(node.args.size() == arity, "intrinsic arity mismatch");
    if (node.kind == IntrinsicKind::kSelect) return emit_select(node);
    std::uint16_t args[2] = {0, 0};
    for (std::size_t i = 0; i < arity; ++i) {
      args[i] = emit_value(*node.args[i]);
    }
    const std::uint16_t dst = alloc_reg();
    switch (node.kind) {
      case IntrinsicKind::kIDiv: emit(Op::kIDiv, dst, args[0], args[1]); break;
      case IntrinsicKind::kMod: emit(Op::kMod, dst, args[0], args[1]); break;
      case IntrinsicKind::kMin: emit(Op::kMin, dst, args[0], args[1]); break;
      case IntrinsicKind::kMax: emit(Op::kMax, dst, args[0], args[1]); break;
      case IntrinsicKind::kAbs: emit(Op::kAbs, dst, args[0]); break;
      case IntrinsicKind::kAnd: emit(Op::kAnd, dst, args[0], args[1]); break;
      case IntrinsicKind::kOr: emit(Op::kOr, dst, args[0], args[1]); break;
      case IntrinsicKind::kNot: emit(Op::kNot, dst, args[0]); break;
      case IntrinsicKind::kSelect: break;  // handled above
    }
    return dst;
  }

  /// SELECT(cond, a, b) with lazily evaluated arms, exactly like the tree
  /// walk: the condition runs first, then a branch skips the untaken arm —
  /// its instructions (reads included) never execute.
  std::uint16_t emit_select(const IntrinsicExpr& node) {
    const std::uint16_t cond = emit_value(*node.args[0]);
    const std::uint16_t dst = alloc_reg();
    const std::size_t jz_pos = out_.code.size();
    emit(Op::kJumpIfZero, 0, cond, /*patched below*/ 0);
    const std::uint16_t then_reg = emit_value(*node.args[1]);
    emit(Op::kMove, dst, then_reg);
    const std::size_t jump_pos = out_.code.size();
    emit(Op::kJump, 0, /*patched below*/ 0);
    const std::size_t then_len = out_.code.size() - jz_pos - 1;
    SAP_CHECK(then_len <= kSlotLimit, "SELECT arm too long for bytecode");
    out_.code[jz_pos].b = static_cast<std::uint16_t>(then_len);
    const std::uint16_t else_reg = emit_value(*node.args[2]);
    emit(Op::kMove, dst, else_reg);
    const std::size_t else_len = out_.code.size() - jump_pos - 1;
    SAP_CHECK(else_len <= kSlotLimit, "SELECT arm too long for bytecode");
    out_.code[jump_pos].a = static_cast<std::uint16_t>(else_len);
    return dst;
  }

  std::uint16_t emit_read(const ArrayRefExpr& ref) {
    const std::uint16_t first = alloc_idx_slots(ref.indices.size());
    for (std::size_t d = 0; d < ref.indices.size(); ++d) {
      emit_index(*ref.indices[d], static_cast<std::uint16_t>(first + d));
    }
    SAP_CHECK(out_.reads.size() < kSlotLimit, "too many reads in bytecode");
    const auto site = static_cast<std::uint16_t>(out_.reads.size());
    out_.reads.push_back(ReadSite{
        ref.name, static_cast<std::uint16_t>(ref.indices.size()), first});
    const std::uint16_t dst = alloc_reg();
    emit(Op::kRead, dst, site);
    return dst;
  }

  /// Emits code leaving the integrality-checked index in idx[slot].  When
  /// the expression is affine over the enclosing nest, an affine guard is
  /// emitted first; the generic sequence stays behind it as the fallback
  /// (and as the semantics oracle for non-integral variables).
  void emit_index(const Expr& expr, std::uint16_t slot) {
    std::size_t guard_pos = 0;
    bool guarded = false;
    const AffineContext ctx{&program_, &sema_, enclosing_};
    const AffineIndex aff = affine_of_index(expr, ctx);
    if (aff.affine && exact_integer_leaves(expr, program_, sema_)) {
      AffineForm form;
      form.constant = aff.constant;
      for (const auto& [var, coeff] : aff.coeffs) {
        form.terms.push_back(AffineForm::Term{var_slot(var), coeff});
      }
      SAP_CHECK(out_.affines.size() < kSlotLimit,
                "too many affine forms in bytecode");
      const auto id = static_cast<std::uint16_t>(out_.affines.size());
      out_.affines.push_back(std::move(form));
      guard_pos = out_.code.size();
      emit(Op::kAffineIndex, slot, id, /*patched below*/ 0);
      guarded = true;
    }
    const std::size_t generic_begin = out_.code.size();
    const std::uint16_t value_reg = emit_value(expr);
    emit(Op::kCheckIndex, slot, value_reg);
    if (guarded) {
      const std::size_t generic_len = out_.code.size() - generic_begin;
      SAP_CHECK(generic_len <= kSlotLimit, "index program too long");
      out_.code[guard_pos].b = static_cast<std::uint16_t>(generic_len);
    }
  }

  const Program& program_;
  const SemanticInfo& sema_;
  const std::vector<const DoLoop*>& enclosing_;
  CompiledExpr out_;
  std::uint16_t next_reg_ = 0;
  std::uint16_t next_idx_ = 0;
};

}  // namespace

CompiledExpr compile_value_expr(const Expr& expr, const Program& program,
                                const SemanticInfo& sema,
                                const std::vector<const DoLoop*>& enclosing) {
  return ExprCompiler(program, sema, enclosing).compile_value(expr);
}

CompiledExpr compile_target_indices(
    const std::vector<ExprPtr>& indices, const Program& program,
    const SemanticInfo& sema, const std::vector<const DoLoop*>& enclosing) {
  return ExprCompiler(program, sema, enclosing).compile_indices(indices);
}

void compile_stmt(const Stmt& stmt, const Program& program,
                  const SemanticInfo& sema,
                  std::vector<const DoLoop*>& enclosing,
                  ProgramBytecode& out) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, ArrayAssign>) {
          CompiledAssign compiled;
          compiled.target =
              compile_target_indices(node.indices, program, sema, enclosing);
          compiled.value =
              compile_value_expr(*node.value, program, sema, enclosing);
          out.assigns.emplace(&node, std::move(compiled));
        } else if constexpr (std::is_same_v<T, ScalarAssign>) {
          out.scalar_assigns.emplace(
              &node, compile_value_expr(*node.value, program, sema, enclosing));
        } else if constexpr (std::is_same_v<T, DoLoop>) {
          CompiledLoop compiled;
          compiled.lower =
              compile_value_expr(*node.lower, program, sema, enclosing);
          compiled.upper =
              compile_value_expr(*node.upper, program, sema, enclosing);
          if (node.step) {
            compiled.step =
                compile_value_expr(*node.step, program, sema, enclosing);
          }
          out.loops.emplace(&node, std::move(compiled));
          enclosing.push_back(&node);
          for (const auto& child : node.body) {
            compile_stmt(*child, program, sema, enclosing, out);
          }
          enclosing.pop_back();
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          out.guards.emplace(
              &node, compile_value_expr(*node.cond, program, sema, enclosing));
          for (const auto& child : node.then_body) {
            compile_stmt(*child, program, sema, enclosing, out);
          }
          for (const auto& child : node.else_body) {
            compile_stmt(*child, program, sema, enclosing, out);
          }
        } else if constexpr (std::is_same_v<T, ReinitStmt>) {
          // No expressions to compile.
        }
      },
      stmt.node);
}

ProgramBytecode compile_bytecode(const Program& program,
                                 const SemanticInfo& sema) {
  const obs::Span span("compile", "bytecode");
  static obs::Counter& compiles = obs::counter("compile/bytecode_programs");
  compiles.add(1);
  ProgramBytecode out;
  std::vector<const DoLoop*> enclosing;
  for (const auto& stmt : program.body) {
    compile_stmt(*stmt, program, sema, enclosing, out);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

double BytecodeFrame::load_var(const CompiledExpr& expr, const EvalEnv& env,
                               SlotCache& slots, std::uint16_t slot) {
  const double* p = slots.ptrs[slot];
  if (p == nullptr) {
    p = env.find_slot(expr.vars[slot]);
    if (p == nullptr) {
      // The identical trap, at the identical evaluation point, as the
      // tree walk's EvalEnv::get.
      throw Error("unbound variable '" + expr.vars[slot] +
                  "' at evaluation time");
    }
    slots.ptrs[slot] = p;
  }
  return *p;
}

BytecodeFrame::SlotHandle BytecodeFrame::intern(const CompiledExpr& expr) {
  const auto [it, inserted] =
      handles_.emplace(&expr, static_cast<SlotHandle>(slot_store_.size()));
  if (inserted) slot_store_.emplace_back();
  return it->second;
}

BytecodeFrame::SlotCache& BytecodeFrame::slots_for(const CompiledExpr& expr,
                                                   SlotHandle handle,
                                                   const EvalEnv& env) {
  if (cached_env_ != &env || cached_env_version_ != env.version()) {
    cached_env_ = &env;
    cached_env_version_ = env.version();
    ++epoch_;  // invalidates every expression's slot pointers
  }
  SlotCache& slots = slot_store_[handle];
  if (slots.epoch != epoch_ || slots.ptrs.size() != expr.vars.size()) {
    slots.ptrs.assign(expr.vars.size(), nullptr);
    slots.epoch = epoch_;
  }
  return slots;
}

bool BytecodeFrame::execute(const CompiledExpr& expr, const EvalEnv& env,
                            ArrayReader& reader, SlotCache& slots) {
  if (regs_.size() < expr.num_regs) regs_.resize(expr.num_regs);
  if (idx_.size() < expr.num_idx_slots) idx_.resize(expr.num_idx_slots);

  double* const regs = regs_.data();
  std::int64_t* const idx = idx_.data();
  const Instr* const code = expr.code.data();
  const std::size_t size = expr.code.size();
  for (std::size_t pc = 0; pc < size; ++pc) {
    const Instr in = code[pc];
    switch (in.op) {
      case Op::kConst:
        regs[in.dst] = expr.consts[in.a];
        break;
      case Op::kLoadVar:
        regs[in.dst] = load_var(expr, env, slots, in.a);
        break;
      case Op::kNeg:
        regs[in.dst] = -regs[in.a];
        break;
      case Op::kAdd:
        regs[in.dst] = regs[in.a] + regs[in.b];
        break;
      case Op::kSub:
        regs[in.dst] = regs[in.a] - regs[in.b];
        break;
      case Op::kMul:
        regs[in.dst] = regs[in.a] * regs[in.b];
        break;
      case Op::kDiv:
        if (regs[in.b] == 0.0) throw Error("division by zero");
        regs[in.dst] = regs[in.a] / regs[in.b];
        break;
      case Op::kIDiv:
        if (regs[in.b] == 0.0) throw Error("IDIV by zero");
        regs[in.dst] = std::trunc(regs[in.a] / regs[in.b]);
        break;
      case Op::kMod:
        if (regs[in.b] == 0.0) throw Error("MOD by zero");
        regs[in.dst] = std::fmod(regs[in.a], regs[in.b]);
        break;
      case Op::kMin:
        regs[in.dst] = std::min(regs[in.a], regs[in.b]);
        break;
      case Op::kMax:
        regs[in.dst] = std::max(regs[in.a], regs[in.b]);
        break;
      case Op::kAbs:
        regs[in.dst] = std::abs(regs[in.a]);
        break;
      case Op::kCmpLt:
        regs[in.dst] = regs[in.a] < regs[in.b] ? 1.0 : 0.0;
        break;
      case Op::kCmpLe:
        regs[in.dst] = regs[in.a] <= regs[in.b] ? 1.0 : 0.0;
        break;
      case Op::kCmpGt:
        regs[in.dst] = regs[in.a] > regs[in.b] ? 1.0 : 0.0;
        break;
      case Op::kCmpGe:
        regs[in.dst] = regs[in.a] >= regs[in.b] ? 1.0 : 0.0;
        break;
      case Op::kCmpEq:
        regs[in.dst] = regs[in.a] == regs[in.b] ? 1.0 : 0.0;
        break;
      case Op::kCmpNe:
        regs[in.dst] = regs[in.a] != regs[in.b] ? 1.0 : 0.0;
        break;
      case Op::kAnd:
        regs[in.dst] = regs[in.a] != 0.0 && regs[in.b] != 0.0 ? 1.0 : 0.0;
        break;
      case Op::kOr:
        regs[in.dst] = regs[in.a] != 0.0 || regs[in.b] != 0.0 ? 1.0 : 0.0;
        break;
      case Op::kNot:
        regs[in.dst] = regs[in.a] == 0.0 ? 1.0 : 0.0;
        break;
      case Op::kMove:
        regs[in.dst] = regs[in.a];
        break;
      case Op::kJump:
        pc += in.a;
        break;
      case Op::kJumpIfZero:
        if (regs[in.a] == 0.0) pc += in.b;
        break;
      case Op::kCheckIndex: {
        const double v = regs[in.a];
        const double rounded = std::round(v);
        if (std::abs(v - rounded) > 1e-6) {
          throw Error("array index evaluated to non-integer " +
                      std::to_string(v));
        }
        idx[in.dst] = static_cast<std::int64_t>(rounded);
        break;
      }
      case Op::kAffineIndex: {
        const AffineForm& form = expr.affines[in.a];
        std::int64_t value = form.constant;
        bool integral = true;
        for (const AffineForm::Term& term : form.terms) {
          const double v = load_var(expr, env, slots, term.var_slot);
          if (v != std::round(v)) {
            integral = false;
            break;
          }
          value += term.coeff * static_cast<std::int64_t>(v);
        }
        if (integral) {
          idx[in.dst] = value;
          pc += in.b;  // skip the generic sequence
        }
        break;
      }
      case Op::kRead: {
        const ReadSite& site = expr.reads[in.a];
        read_scratch_.assign(idx + site.first_idx_slot,
                             idx + site.first_idx_slot + site.rank);
        const auto v = reader.read(site.array, read_scratch_);
        if (!v) return false;  // suspended: abort, like the tree walk
        regs[in.dst] = *v;
        break;
      }
    }
  }
  return true;
}

std::optional<double> BytecodeFrame::run(const CompiledExpr& expr,
                                         const EvalEnv& env,
                                         ArrayReader& reader) {
  return run(expr, intern(expr), env, reader);
}

std::optional<double> BytecodeFrame::run(const CompiledExpr& expr,
                                         SlotHandle handle, const EvalEnv& env,
                                         ArrayReader& reader) {
  if (!execute(expr, env, reader, slots_for(expr, handle, env))) {
    return std::nullopt;
  }
  return regs_[expr.result_reg];
}

bool BytecodeFrame::run_indices(const CompiledExpr& expr, const EvalEnv& env,
                                ArrayReader& reader,
                                std::vector<std::int64_t>& indices_out) {
  return run_indices(expr, intern(expr), env, reader, indices_out);
}

bool BytecodeFrame::run_indices(const CompiledExpr& expr, SlotHandle handle,
                                const EvalEnv& env, ArrayReader& reader,
                                std::vector<std::int64_t>& indices_out) {
  if (!execute(expr, env, reader, slots_for(expr, handle, env))) return false;
  indices_out.resize(expr.out_index_slots.size());
  for (std::size_t d = 0; d < expr.out_index_slots.size(); ++d) {
    indices_out[d] = idx_[expr.out_index_slots[d]];
  }
  return true;
}

}  // namespace sap
