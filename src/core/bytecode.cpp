#include "core/bytecode.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <variant>

#include "frontend/affine.hpp"
#include "memory/array_registry.hpp"
#include "memory/sa_array.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

std::string to_string(EvalEngine engine) {
  switch (engine) {
    case EvalEngine::kBytecode:
      return "bytecode";
    case EvalEngine::kTree:
      return "tree";
  }
  return "?";
}

EvalEngine eval_engine_from_env() {
  const char* raw = std::getenv("SAPART_EVAL");
  if (raw == nullptr) return EvalEngine::kBytecode;
  const std::string value(raw);
  if (value == "bytecode") return EvalEngine::kBytecode;
  if (value == "tree") return EvalEngine::kTree;
  // Empty included: a typo'd `SAPART_EVAL= ctest` must fail loudly, not
  // silently pick the default (the SAPART_WORKERS hardening convention).
  throw ConfigError("SAPART_EVAL must be 'bytecode' or 'tree', got '" +
                    value + "'");
}

std::string to_string(BytecodeOpt opt) {
  switch (opt) {
    case BytecodeOpt::kOn:
      return "on";
    case BytecodeOpt::kOff:
      return "off";
  }
  return "?";
}

BytecodeOpt bytecode_opt_from_env() {
  const char* raw = std::getenv("SAPART_BYTECODE_OPT");
  if (raw == nullptr) return BytecodeOpt::kOn;
  const std::string value(raw);
  if (value == "on") return BytecodeOpt::kOn;
  if (value == "off") return BytecodeOpt::kOff;
  // Empty included, same as SAPART_EVAL: fail loudly, never silently
  // fall back to the default tier.
  throw ConfigError("SAPART_BYTECODE_OPT must be 'on' or 'off', got '" +
                    value + "'");
}

const char* bytecode_dispatch_kind() noexcept {
#if defined(SAP_BYTECODE_COMPUTED_GOTO)
  return "computed-goto";
#else
  return "switch";
#endif
}

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kLoadVar: return "load_var";
    case Op::kNeg: return "neg";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kIDiv: return "idiv";
    case Op::kMod: return "mod";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kAbs: return "abs";
    case Op::kCmpLt: return "cmp_lt";
    case Op::kCmpLe: return "cmp_le";
    case Op::kCmpGt: return "cmp_gt";
    case Op::kCmpGe: return "cmp_ge";
    case Op::kCmpEq: return "cmp_eq";
    case Op::kCmpNe: return "cmp_ne";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kNot: return "not";
    case Op::kMove: return "move";
    case Op::kJump: return "jump";
    case Op::kJumpIfZero: return "jump_if_zero";
    case Op::kCheckIndex: return "check_index";
    case Op::kAffineIndex: return "affine_index";
    case Op::kRead: return "read";
    case Op::kAddConst: return "add_const";
    case Op::kSubConst: return "sub_const";
    case Op::kConstSub: return "const_sub";
    case Op::kMulConst: return "mul_const";
    case Op::kDivConst: return "div_const";
    case Op::kConstDiv: return "const_div";
    case Op::kJumpIfNotLt: return "jump_if_not_lt";
    case Op::kJumpIfNotLe: return "jump_if_not_le";
    case Op::kJumpIfNotGt: return "jump_if_not_gt";
    case Op::kJumpIfNotGe: return "jump_if_not_ge";
    case Op::kJumpIfNotEq: return "jump_if_not_eq";
    case Op::kJumpIfNotNe: return "jump_if_not_ne";
    case Op::kAffineRead: return "affine_read";
    case Op::kHoistIndex: return "hoist_index";
  }
  return "?";
}

namespace {

/// The affine fast path substitutes exact integer arithmetic for the tree
/// walk's double arithmetic.  That is bit-identical only when every folded
/// leaf (number literal, constant scalar) is an exact integer — the affine
/// analysis itself folds anything within 1e-9.  Gate the fast path on
/// exactness so the generic sequence keeps the tree semantics for the
/// pathological rest.
bool exact_integer_leaves(const Expr& expr, const Program& program,
                          const SemanticInfo& sema) {
  return std::visit(
      [&](const auto& node) -> bool {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, NumberLit>) {
          return node.value == std::round(node.value);
        } else if constexpr (std::is_same_v<T, VarRef>) {
          const auto it = sema.scalars.find(node.name);
          if (it == sema.scalars.end() || !it->second.is_constant()) {
            return true;  // loop var / induction scalar: runtime value used
          }
          const double init = program.scalars[it->second.decl_index].init;
          return init == std::round(init);
        } else if constexpr (std::is_same_v<T, ArrayRefExpr>) {
          return true;  // not affine anyway; the generic path handles it
        } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
          for (const auto& a : node.args) {
            if (!exact_integer_leaves(*a, program, sema)) return false;
          }
          return true;
        } else if constexpr (std::is_same_v<T, UnaryNeg>) {
          return exact_integer_leaves(*node.operand, program, sema);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          return exact_integer_leaves(*node.lhs, program, sema) &&
                 exact_integer_leaves(*node.rhs, program, sema);
        } else if constexpr (std::is_same_v<T, CompareExpr>) {
          return exact_integer_leaves(*node.lhs, program, sema) &&
                 exact_integer_leaves(*node.rhs, program, sema);
        }
      },
      expr.node);
}

constexpr std::size_t kSlotLimit = std::numeric_limits<std::uint16_t>::max();

/// Flattens expression trees into CompiledExpr streams.  Registers are
/// allocated SSA-style (one per node); variables, constants and read sites
/// are interned per expression.
class ExprCompiler {
 public:
  ExprCompiler(const Program& program, const SemanticInfo& sema,
               const std::vector<const DoLoop*>& enclosing)
      : program_(program), sema_(sema), enclosing_(enclosing) {}

  CompiledExpr compile_value(const Expr& expr) {
    out_.result_reg = emit_value(expr);
    return finish();
  }

  CompiledExpr compile_indices(const std::vector<ExprPtr>& indices) {
    const std::uint16_t first = alloc_idx_slots(indices.size());
    for (std::size_t d = 0; d < indices.size(); ++d) {
      emit_index(*indices[d], static_cast<std::uint16_t>(first + d));
      out_.out_index_slots.push_back(static_cast<std::uint16_t>(first + d));
    }
    return finish();
  }

 private:
  CompiledExpr finish() {
    out_.num_regs = next_reg_;
    out_.num_idx_slots = next_idx_;
    return std::move(out_);
  }

  std::uint16_t alloc_reg() {
    SAP_CHECK(next_reg_ < kSlotLimit, "expression too large for bytecode");
    return next_reg_++;
  }

  std::uint16_t alloc_idx_slots(std::size_t count) {
    SAP_CHECK(next_idx_ + count < kSlotLimit,
              "expression has too many index slots for bytecode");
    const std::uint16_t first = next_idx_;
    next_idx_ = static_cast<std::uint16_t>(next_idx_ + count);
    return first;
  }

  std::uint16_t var_slot(const std::string& name) {
    for (std::size_t i = 0; i < out_.vars.size(); ++i) {
      if (out_.vars[i] == name) return static_cast<std::uint16_t>(i);
    }
    SAP_CHECK(out_.vars.size() < kSlotLimit, "too many variables in bytecode");
    out_.vars.push_back(name);
    return static_cast<std::uint16_t>(out_.vars.size() - 1);
  }

  std::uint16_t const_slot(double value) {
    for (std::size_t i = 0; i < out_.consts.size(); ++i) {
      // Bitwise comparison: -0.0 and 0.0 must not alias, NaN interns fine.
      if (std::memcmp(&out_.consts[i], &value, sizeof value) == 0) {
        return static_cast<std::uint16_t>(i);
      }
    }
    SAP_CHECK(out_.consts.size() < kSlotLimit, "too many constants in bytecode");
    out_.consts.push_back(value);
    return static_cast<std::uint16_t>(out_.consts.size() - 1);
  }

  void emit(Op op, std::uint16_t dst, std::uint16_t a = 0,
            std::uint16_t b = 0) {
    out_.code.push_back(Instr{op, dst, a, b});
  }

  /// Emits code computing `expr` as a double; returns the result register.
  /// Instruction order matches the tree walk's evaluation order exactly
  /// (operands left to right, indices before the read), so accounting and
  /// suspension points are identical.
  std::uint16_t emit_value(const Expr& expr) {
    return std::visit(
        [&](const auto& node) -> std::uint16_t {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, NumberLit>) {
            const std::uint16_t dst = alloc_reg();
            emit(Op::kConst, dst, const_slot(node.value));
            return dst;
          } else if constexpr (std::is_same_v<T, VarRef>) {
            const std::uint16_t dst = alloc_reg();
            emit(Op::kLoadVar, dst, var_slot(node.name));
            return dst;
          } else if constexpr (std::is_same_v<T, ArrayRefExpr>) {
            return emit_read(node);
          } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
            return emit_intrinsic(node);
          } else if constexpr (std::is_same_v<T, UnaryNeg>) {
            const std::uint16_t operand = emit_value(*node.operand);
            const std::uint16_t dst = alloc_reg();
            emit(Op::kNeg, dst, operand);
            return dst;
          } else if constexpr (std::is_same_v<T, BinaryExpr>) {
            const std::uint16_t lhs = emit_value(*node.lhs);
            const std::uint16_t rhs = emit_value(*node.rhs);
            const std::uint16_t dst = alloc_reg();
            switch (node.op) {
              case BinaryOp::kAdd: emit(Op::kAdd, dst, lhs, rhs); break;
              case BinaryOp::kSub: emit(Op::kSub, dst, lhs, rhs); break;
              case BinaryOp::kMul: emit(Op::kMul, dst, lhs, rhs); break;
              case BinaryOp::kDiv: emit(Op::kDiv, dst, lhs, rhs); break;
            }
            return dst;
          } else if constexpr (std::is_same_v<T, CompareExpr>) {
            const std::uint16_t lhs = emit_value(*node.lhs);
            const std::uint16_t rhs = emit_value(*node.rhs);
            const std::uint16_t dst = alloc_reg();
            switch (node.op) {
              case CompareOp::kLt: emit(Op::kCmpLt, dst, lhs, rhs); break;
              case CompareOp::kLe: emit(Op::kCmpLe, dst, lhs, rhs); break;
              case CompareOp::kGt: emit(Op::kCmpGt, dst, lhs, rhs); break;
              case CompareOp::kGe: emit(Op::kCmpGe, dst, lhs, rhs); break;
              case CompareOp::kEq: emit(Op::kCmpEq, dst, lhs, rhs); break;
              case CompareOp::kNe: emit(Op::kCmpNe, dst, lhs, rhs); break;
            }
            return dst;
          }
        },
        expr.node);
  }

  std::uint16_t emit_intrinsic(const IntrinsicExpr& node) {
    const std::size_t arity = intrinsic_arity(node.kind);
    SAP_CHECK(node.args.size() == arity, "intrinsic arity mismatch");
    if (node.kind == IntrinsicKind::kSelect) return emit_select(node);
    std::uint16_t args[2] = {0, 0};
    for (std::size_t i = 0; i < arity; ++i) {
      args[i] = emit_value(*node.args[i]);
    }
    const std::uint16_t dst = alloc_reg();
    switch (node.kind) {
      case IntrinsicKind::kIDiv: emit(Op::kIDiv, dst, args[0], args[1]); break;
      case IntrinsicKind::kMod: emit(Op::kMod, dst, args[0], args[1]); break;
      case IntrinsicKind::kMin: emit(Op::kMin, dst, args[0], args[1]); break;
      case IntrinsicKind::kMax: emit(Op::kMax, dst, args[0], args[1]); break;
      case IntrinsicKind::kAbs: emit(Op::kAbs, dst, args[0]); break;
      case IntrinsicKind::kAnd: emit(Op::kAnd, dst, args[0], args[1]); break;
      case IntrinsicKind::kOr: emit(Op::kOr, dst, args[0], args[1]); break;
      case IntrinsicKind::kNot: emit(Op::kNot, dst, args[0]); break;
      case IntrinsicKind::kSelect: break;  // handled above
    }
    return dst;
  }

  /// SELECT(cond, a, b) with lazily evaluated arms, exactly like the tree
  /// walk: the condition runs first, then a branch skips the untaken arm —
  /// its instructions (reads included) never execute.
  std::uint16_t emit_select(const IntrinsicExpr& node) {
    const std::uint16_t cond = emit_value(*node.args[0]);
    const std::uint16_t dst = alloc_reg();
    const std::size_t jz_pos = out_.code.size();
    emit(Op::kJumpIfZero, 0, cond, /*patched below*/ 0);
    const std::uint16_t then_reg = emit_value(*node.args[1]);
    emit(Op::kMove, dst, then_reg);
    const std::size_t jump_pos = out_.code.size();
    emit(Op::kJump, 0, /*patched below*/ 0);
    const std::size_t then_len = out_.code.size() - jz_pos - 1;
    SAP_CHECK(then_len <= kSlotLimit, "SELECT arm too long for bytecode");
    out_.code[jz_pos].b = static_cast<std::uint16_t>(then_len);
    const std::uint16_t else_reg = emit_value(*node.args[2]);
    emit(Op::kMove, dst, else_reg);
    const std::size_t else_len = out_.code.size() - jump_pos - 1;
    SAP_CHECK(else_len <= kSlotLimit, "SELECT arm too long for bytecode");
    out_.code[jump_pos].a = static_cast<std::uint16_t>(else_len);
    return dst;
  }

  std::uint16_t emit_read(const ArrayRefExpr& ref) {
    const std::uint16_t first = alloc_idx_slots(ref.indices.size());
    for (std::size_t d = 0; d < ref.indices.size(); ++d) {
      emit_index(*ref.indices[d], static_cast<std::uint16_t>(first + d));
    }
    SAP_CHECK(out_.reads.size() < kSlotLimit, "too many reads in bytecode");
    const auto site = static_cast<std::uint16_t>(out_.reads.size());
    out_.reads.push_back(ReadSite{
        ref.name, static_cast<std::uint16_t>(ref.indices.size()), first});
    const std::uint16_t dst = alloc_reg();
    emit(Op::kRead, dst, site);
    return dst;
  }

  /// Emits code leaving the integrality-checked index in idx[slot].  When
  /// the expression is affine over the enclosing nest, an affine guard is
  /// emitted first; the generic sequence stays behind it as the fallback
  /// (and as the semantics oracle for non-integral variables).
  void emit_index(const Expr& expr, std::uint16_t slot) {
    const std::size_t range_begin = out_.code.size();
    std::size_t guard_pos = 0;
    bool guarded = false;
    const AffineContext ctx{&program_, &sema_, enclosing_};
    const AffineIndex aff = affine_of_index(expr, ctx);
    if (aff.affine && exact_integer_leaves(expr, program_, sema_)) {
      AffineForm form;
      form.constant = aff.constant;
      for (const auto& [var, coeff] : aff.coeffs) {
        form.terms.push_back(AffineForm::Term{var_slot(var), coeff});
      }
      SAP_CHECK(out_.affines.size() < kSlotLimit,
                "too many affine forms in bytecode");
      const auto id = static_cast<std::uint16_t>(out_.affines.size());
      out_.affines.push_back(std::move(form));
      guard_pos = out_.code.size();
      emit(Op::kAffineIndex, slot, id, /*patched below*/ 0);
      guarded = true;
    }
    const std::size_t generic_begin = out_.code.size();
    const std::uint16_t value_reg = emit_value(expr);
    emit(Op::kCheckIndex, slot, value_reg);
    if (guarded) {
      const std::size_t generic_len = out_.code.size() - generic_begin;
      SAP_CHECK(generic_len <= kSlotLimit, "index program too long");
      out_.code[guard_pos].b = static_cast<std::uint16_t>(generic_len);
    }
    // Optimizer metadata: the whole index program for this slot, AST
    // attached, so optimize_bytecode can judge loop invariance.
    out_.index_ranges.push_back(
        IndexRange{&expr, slot, static_cast<std::uint32_t>(range_begin),
                   static_cast<std::uint32_t>(out_.code.size())});
  }

  const Program& program_;
  const SemanticInfo& sema_;
  const std::vector<const DoLoop*>& enclosing_;
  CompiledExpr out_;
  std::uint16_t next_reg_ = 0;
  std::uint16_t next_idx_ = 0;
};

}  // namespace

CompiledExpr compile_value_expr(const Expr& expr, const Program& program,
                                const SemanticInfo& sema,
                                const std::vector<const DoLoop*>& enclosing) {
  return ExprCompiler(program, sema, enclosing).compile_value(expr);
}

CompiledExpr compile_target_indices(
    const std::vector<ExprPtr>& indices, const Program& program,
    const SemanticInfo& sema, const std::vector<const DoLoop*>& enclosing) {
  return ExprCompiler(program, sema, enclosing).compile_indices(indices);
}

void compile_stmt(const Stmt& stmt, const Program& program,
                  const SemanticInfo& sema,
                  std::vector<const DoLoop*>& enclosing,
                  ProgramBytecode& out) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, ArrayAssign>) {
          CompiledAssign compiled;
          compiled.target =
              compile_target_indices(node.indices, program, sema, enclosing);
          compiled.value =
              compile_value_expr(*node.value, program, sema, enclosing);
          out.assigns.emplace(&node, std::move(compiled));
        } else if constexpr (std::is_same_v<T, ScalarAssign>) {
          out.scalar_assigns.emplace(
              &node, compile_value_expr(*node.value, program, sema, enclosing));
        } else if constexpr (std::is_same_v<T, DoLoop>) {
          CompiledLoop compiled;
          compiled.lower =
              compile_value_expr(*node.lower, program, sema, enclosing);
          compiled.upper =
              compile_value_expr(*node.upper, program, sema, enclosing);
          if (node.step) {
            compiled.step =
                compile_value_expr(*node.step, program, sema, enclosing);
          }
          out.loops.emplace(&node, std::move(compiled));
          enclosing.push_back(&node);
          for (const auto& child : node.body) {
            compile_stmt(*child, program, sema, enclosing, out);
          }
          enclosing.pop_back();
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          out.guards.emplace(
              &node, compile_value_expr(*node.cond, program, sema, enclosing));
          for (const auto& child : node.then_body) {
            compile_stmt(*child, program, sema, enclosing, out);
          }
          for (const auto& child : node.else_body) {
            compile_stmt(*child, program, sema, enclosing, out);
          }
        } else if constexpr (std::is_same_v<T, ReinitStmt>) {
          // No expressions to compile.
        }
      },
      stmt.node);
}

ProgramBytecode compile_bytecode(const Program& program,
                                 const SemanticInfo& sema) {
  const obs::Span span("compile", "bytecode");
  static obs::Counter& compiles = obs::counter("compile/bytecode_programs");
  compiles.add(1);
  ProgramBytecode out;
  std::vector<const DoLoop*> enclosing;
  for (const auto& stmt : program.body) {
    compile_stmt(*stmt, program, sema, enclosing, out);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Optimization tier
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kNoTarget = static_cast<std::size_t>(-1);

/// Which operand fields of `in` read a register.
struct RegReads {
  bool a = false;
  bool b = false;
};

RegReads reg_reads(const Instr& in) {
  switch (in.op) {
    case Op::kNeg:
    case Op::kAbs:
    case Op::kNot:
    case Op::kMove:
    case Op::kCheckIndex:
    case Op::kAddConst:
    case Op::kSubConst:
    case Op::kConstSub:
    case Op::kMulConst:
    case Op::kDivConst:
    case Op::kConstDiv:
      return {true, false};
    case Op::kJumpIfZero:
      return {true, false};
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDiv:
    case Op::kIDiv:
    case Op::kMod:
    case Op::kMin:
    case Op::kMax:
    case Op::kCmpLt:
    case Op::kCmpLe:
    case Op::kCmpGt:
    case Op::kCmpGe:
    case Op::kCmpEq:
    case Op::kCmpNe:
    case Op::kAnd:
    case Op::kOr:
    case Op::kJumpIfNotLt:
    case Op::kJumpIfNotLe:
    case Op::kJumpIfNotGt:
    case Op::kJumpIfNotGe:
    case Op::kJumpIfNotEq:
    case Op::kJumpIfNotNe:
      return {true, true};
    case Op::kConst:
    case Op::kLoadVar:
    case Op::kJump:
    case Op::kAffineIndex:
    case Op::kRead:
    case Op::kAffineRead:
    case Op::kHoistIndex:
      return {false, false};
  }
  return {false, false};
}

/// Absolute position a skip-carrying instruction at `pc` can land on;
/// kNoTarget for straight-line instructions.
std::size_t skip_target(const Instr& in, std::size_t pc) {
  switch (in.op) {
    case Op::kJump:
      return pc + 1 + in.a;
    case Op::kJumpIfZero:
    case Op::kAffineIndex:
    case Op::kAffineRead:
      return pc + 1 + in.b;
    case Op::kJumpIfNotLt:
    case Op::kJumpIfNotLe:
    case Op::kJumpIfNotGt:
    case Op::kJumpIfNotGe:
    case Op::kJumpIfNotEq:
    case Op::kJumpIfNotNe:
      return pc + 1 + in.dst;
    default:
      return kNoTarget;
  }
}

/// Rebuilds expr.code from per-position decisions: `removed[i]` drops old
/// instruction i, otherwise `repl[i]` is emitted; `target[i]` is the
/// absolute OLD position its skip field must land on (kNoTarget for
/// straight-line instructions).  Skips are re-encoded against the new
/// positions — a removed target maps to the next retained instruction,
/// which by construction absorbs the removed instruction's effect.
void rebuild_code(CompiledExpr& expr, const std::vector<Instr>& repl,
                  const std::vector<char>& removed,
                  const std::vector<std::size_t>& target) {
  const std::size_t n = repl.size();
  std::vector<std::uint32_t> new_pos(n + 1, 0);
  std::vector<Instr> out;
  std::vector<std::size_t> out_target;
  out.reserve(n);
  out_target.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    new_pos[i] = static_cast<std::uint32_t>(out.size());
    if (removed[i]) continue;
    out.push_back(repl[i]);
    out_target.push_back(target[i]);
  }
  new_pos[n] = static_cast<std::uint32_t>(out.size());

  for (std::size_t j = 0; j < out.size(); ++j) {
    const std::size_t t = out_target[j];
    if (t == kNoTarget) continue;
    SAP_CHECK(t <= n, "optimizer: skip target out of range");
    const std::size_t new_t = new_pos[t];
    SAP_CHECK(new_t > j, "optimizer: non-forward skip");
    const std::size_t skip = new_t - j - 1;
    SAP_CHECK(skip <= kSlotLimit, "optimizer: skip too long");
    Instr& in = out[j];
    switch (in.op) {
      case Op::kJump:
        in.a = static_cast<std::uint16_t>(skip);
        break;
      case Op::kJumpIfZero:
      case Op::kAffineIndex:
      case Op::kAffineRead:
        in.b = static_cast<std::uint16_t>(skip);
        break;
      case Op::kJumpIfNotLt:
      case Op::kJumpIfNotLe:
      case Op::kJumpIfNotGt:
      case Op::kJumpIfNotGe:
      case Op::kJumpIfNotEq:
      case Op::kJumpIfNotNe:
        in.dst = static_cast<std::uint16_t>(skip);
        break;
      default:
        SAP_CHECK(false, "optimizer: target on straight-line instruction");
    }
  }
  expr.code = std::move(out);
}

struct FusionCounts {
  std::uint64_t const_arith = 0;
  std::uint64_t cmp_branch = 0;
  std::uint64_t affine_read = 0;
};

/// The peephole pass body.  Decisions are made on the original stream
/// (SSA register discipline: one def, and the use counts below tell us
/// when that def's only consumer is the instruction being fused), then
/// the stream is rebuilt once with every skip re-encoded.
void fuse_expr(CompiledExpr& expr, FusionCounts& counts) {
  const std::vector<Instr>& old = expr.code;
  const std::size_t n = old.size();
  if (n == 0) return;

  // Register use counts: operand reads plus the program result.
  std::vector<std::uint32_t> uses(expr.num_regs, 0);
  for (const Instr& in : old) {
    const RegReads r = reg_reads(in);
    if (r.a) ++uses[in.a];
    if (r.b) ++uses[in.b];
  }
  if (expr.out_index_slots.empty() && expr.num_regs > 0) {
    ++uses[expr.result_reg];
  }

  // Positions some skip can land on (guards the cmp+branch adjacency).
  std::vector<char> is_target(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t t = skip_target(old[i], i);
    if (t != kNoTarget) {
      SAP_CHECK(t <= n, "bytecode: skip target out of range");
      is_target[t] = 1;
    }
  }

  // kConst definitions: register -> defining position.
  constexpr std::uint32_t kNoDef = 0xffffffffu;
  std::vector<std::uint32_t> const_def(expr.num_regs, kNoDef);
  for (std::size_t i = 0; i < n; ++i) {
    if (old[i].op == Op::kConst) const_def[old[i].dst] = static_cast<std::uint32_t>(i);
  }
  // A const is foldable into its consumer when the consumer is the
  // register's ONLY use (result_reg counts as a use, so the materialized
  // program result is never folded away).
  const auto foldable_const = [&](std::uint16_t reg) -> std::uint32_t {
    const std::uint32_t d = const_def[reg];
    return (d != kNoDef && uses[reg] == 1) ? d : kNoDef;
  };

  std::vector<char> removed(n, 0);
  std::vector<Instr> repl(old);
  std::vector<std::size_t> target(n, kNoTarget);
  for (std::size_t i = 0; i < n; ++i) target[i] = skip_target(old[i], i);

  for (std::size_t i = 0; i < n; ++i) {
    const Instr& in = old[i];
    switch (in.op) {
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv: {
        const std::uint32_t rb = foldable_const(in.b);
        if (rb != kNoDef) {
          Op fused = Op::kAddConst;
          switch (in.op) {
            case Op::kAdd: fused = Op::kAddConst; break;
            case Op::kSub: fused = Op::kSubConst; break;
            case Op::kMul: fused = Op::kMulConst; break;
            default: fused = Op::kDivConst; break;
          }
          repl[i] = Instr{fused, in.dst, in.a, old[rb].a};
          removed[rb] = 1;
          ++counts.const_arith;
          break;
        }
        const std::uint32_t ra = foldable_const(in.a);
        if (ra != kNoDef) {
          const double c = expr.consts[old[ra].a];
          Op fused = Op::kConstSub;
          switch (in.op) {
            case Op::kAdd:
            case Op::kMul:
              // Commuted to the reg-op-const form.  IEEE add/mul are
              // bit-commutative except for the payload choice between TWO
              // NaN operands, so a NaN constant (never produced by the
              // frontend, but cheap to exclude) is left unfused.
              if (std::isnan(c)) continue;
              fused = in.op == Op::kAdd ? Op::kAddConst : Op::kMulConst;
              break;
            case Op::kSub: fused = Op::kConstSub; break;
            default: fused = Op::kConstDiv; break;
          }
          repl[i] = Instr{fused, in.dst, in.b, old[ra].a};
          removed[ra] = 1;
          ++counts.const_arith;
        }
        break;
      }
      case Op::kCmpLt:
      case Op::kCmpLe:
      case Op::kCmpGt:
      case Op::kCmpGe:
      case Op::kCmpEq:
      case Op::kCmpNe: {
        // Fuse with an adjacent kJumpIfZero consuming this compare's
        // single-use result: "jump when the comparison is false".
        if (i + 1 >= n || old[i + 1].op != Op::kJumpIfZero) break;
        if (old[i + 1].a != in.dst || uses[in.dst] != 1) break;
        if (is_target[i + 1]) break;  // never the case today; stay safe
        Op fused = Op::kJumpIfNotLt;
        switch (in.op) {
          case Op::kCmpLt: fused = Op::kJumpIfNotLt; break;
          case Op::kCmpLe: fused = Op::kJumpIfNotLe; break;
          case Op::kCmpGt: fused = Op::kJumpIfNotGt; break;
          case Op::kCmpGe: fused = Op::kJumpIfNotGe; break;
          case Op::kCmpEq: fused = Op::kJumpIfNotEq; break;
          default: fused = Op::kJumpIfNotNe; break;
        }
        repl[i] = Instr{fused, /*skip re-encoded*/ 0, in.a, in.b};
        target[i] = i + 2 + old[i + 1].b;
        removed[i + 1] = 1;
        ++counts.cmp_branch;
        break;
      }
      case Op::kAffineIndex: {
        // Fuse with the kRead the guard's generic sequence lands on —
        // only valid when this guard produces the site's LAST index slot
        // (the read follows immediately on the fast path).  The generic
        // sequence and the original kRead stay behind the fused op as the
        // non-integral fallback.
        const std::size_t t = i + 1 + old[i].b;
        if (t >= n || old[t].op != Op::kRead) break;
        const ReadSite& site = expr.reads[old[t].a];
        if (static_cast<std::uint16_t>(site.first_idx_slot + site.rank - 1) !=
            old[i].dst) {
          break;
        }
        if (expr.fused_reads.size() >= kSlotLimit) break;
        const auto fid = static_cast<std::uint16_t>(expr.fused_reads.size());
        expr.fused_reads.push_back(FusedRead{old[i].a, old[t].a});
        repl[i] = Instr{Op::kAffineRead, old[t].dst, fid, 0};
        target[i] = t + 1;  // skip the fallback INCLUDING the kRead
        ++counts.affine_read;
        break;
      }
      default:
        break;
    }
  }

  rebuild_code(expr, repl, removed, target);
}

/// Loop-invariance scan for one index expression against the enclosing
/// nest.  Returns the deepest enclosing-loop index whose variable the
/// expression references (-1 when none), or kNotHoistable when the
/// expression is not a total, read-free function of enclosing loop
/// variables and constant scalars.  Division (can fault), reads (would
/// reorder accounting) and SELECT/compare/bool forms are all excluded, so
/// a hoisted program can run at loop entry — even for a zero-trip loop or
/// a never-taken guard — without any observable difference (claim 11).
constexpr int kNotHoistable = -2;

int hoist_scan(const Expr& expr, const std::vector<const DoLoop*>& enclosing,
               const SemanticInfo& sema) {
  return std::visit(
      [&](const auto& node) -> int {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, NumberLit>) {
          return -1;
        } else if constexpr (std::is_same_v<T, VarRef>) {
          for (std::size_t k = enclosing.size(); k-- > 0;) {
            if (enclosing[k]->var == node.name) return static_cast<int>(k);
          }
          const auto it = sema.scalars.find(node.name);
          if (it != sema.scalars.end() && it->second.is_constant()) return -1;
          return kNotHoistable;  // induction scalar / unknown name
        } else if constexpr (std::is_same_v<T, UnaryNeg>) {
          return hoist_scan(*node.operand, enclosing, sema);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          if (node.op == BinaryOp::kDiv) return kNotHoistable;
          const int lhs = hoist_scan(*node.lhs, enclosing, sema);
          if (lhs == kNotHoistable) return kNotHoistable;
          const int rhs = hoist_scan(*node.rhs, enclosing, sema);
          if (rhs == kNotHoistable) return kNotHoistable;
          return std::max(lhs, rhs);
        } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
          if (node.kind != IntrinsicKind::kMin &&
              node.kind != IntrinsicKind::kMax &&
              node.kind != IntrinsicKind::kAbs) {
            return kNotHoistable;
          }
          int deepest = -1;
          for (const auto& arg : node.args) {
            const int d = hoist_scan(*arg, enclosing, sema);
            if (d == kNotHoistable) return kNotHoistable;
            deepest = std::max(deepest, d);
          }
          return deepest;
        } else {
          return kNotHoistable;  // ArrayRefExpr, CompareExpr
        }
      },
      expr.node);
}

/// Hoists this program's loop-invariant index subexpressions into the
/// preamble of the outermost loop they are invariant in: the replaced
/// index program becomes a single kHoistIndex (per-instance integrality
/// check — same timing, same message as kCheckIndex), and the hoisted
/// value program is recomputed at every entry of the target loop.
void hoist_expr(CompiledExpr& ce, const std::vector<const DoLoop*>& enclosing,
                const Program& program, const SemanticInfo& sema,
                ProgramBytecode& bc, std::uint64_t& hoisted) {
  if (enclosing.empty() || ce.index_ranges.empty()) {
    ce.index_ranges.clear();
    return;
  }
  struct Rewrite {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    std::uint16_t idx_slot = 0;
    std::uint32_t hoist_slot = 0;
  };
  std::vector<Rewrite> rewrites;
  for (const IndexRange& r : ce.index_ranges) {
    const int deepest = hoist_scan(*r.expr, enclosing, sema);
    if (deepest == kNotHoistable) continue;
    // Must be invariant in at least the innermost loop, with the preamble
    // of the next-deeper loop as the recompute point.
    if (deepest + 1 >= static_cast<int>(enclosing.size())) continue;
    // Profitability: a constant affine index already executes as one
    // guarded instruction; everything else shrinks to one kHoistIndex.
    const Instr& first = ce.code[r.begin];
    if (first.op == Op::kAffineIndex && ce.affines[first.a].terms.empty()) {
      continue;
    }
    if (bc.hoists.size() >= kSlotLimit) break;
    const auto slot = static_cast<std::uint32_t>(bc.hoists.size());
    bc.hoists.push_back(compile_value_expr(*r.expr, program, sema, {}));
    bc.preambles[enclosing[deepest + 1]].push_back(slot);
    rewrites.push_back(Rewrite{r.begin, r.end, r.slot, slot});
    ++hoisted;
  }
  ce.index_ranges.clear();
  if (rewrites.empty()) return;

  const std::size_t n = ce.code.size();
  std::vector<char> removed(n, 0);
  std::vector<Instr> repl(ce.code);
  std::vector<std::size_t> target(n, kNoTarget);
  for (std::size_t i = 0; i < n; ++i) target[i] = skip_target(ce.code[i], i);
  for (const Rewrite& rw : rewrites) {
    repl[rw.begin] = Instr{Op::kHoistIndex, rw.idx_slot,
                           static_cast<std::uint16_t>(rw.hoist_slot), 0};
    target[rw.begin] = kNoTarget;
    for (std::uint32_t i = rw.begin + 1; i < rw.end; ++i) removed[i] = 1;
  }
  rebuild_code(ce, repl, removed, target);
}

void collect_hoist_deps(CompiledExpr& ce) {
  ce.hoist_deps.clear();
  for (const Instr& in : ce.code) {
    if (in.op == Op::kHoistIndex) ce.hoist_deps.push_back(in.a);
  }
  std::sort(ce.hoist_deps.begin(), ce.hoist_deps.end());
  ce.hoist_deps.erase(
      std::unique(ce.hoist_deps.begin(), ce.hoist_deps.end()),
      ce.hoist_deps.end());
}

void optimize_assign_expr(CompiledExpr& ce,
                          const std::vector<const DoLoop*>& enclosing,
                          const Program& program, const SemanticInfo& sema,
                          ProgramBytecode& bc, FusionCounts& counts,
                          std::uint64_t& hoisted) {
  hoist_expr(ce, enclosing, program, sema, bc, hoisted);
  fuse_expr(ce, counts);
  collect_hoist_deps(ce);
}

void optimize_stmt(const Stmt& stmt, const Program& program,
                   const SemanticInfo& sema,
                   std::vector<const DoLoop*>& enclosing, ProgramBytecode& bc,
                   FusionCounts& counts, std::uint64_t& hoisted) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, ArrayAssign>) {
          const auto it = bc.assigns.find(&node);
          if (it == bc.assigns.end()) return;
          optimize_assign_expr(it->second.target, enclosing, program, sema,
                               bc, counts, hoisted);
          optimize_assign_expr(it->second.value, enclosing, program, sema,
                               bc, counts, hoisted);
        } else if constexpr (std::is_same_v<T, ScalarAssign>) {
          const auto it = bc.scalar_assigns.find(&node);
          if (it != bc.scalar_assigns.end()) fuse_expr(it->second, counts);
        } else if constexpr (std::is_same_v<T, DoLoop>) {
          const auto it = bc.loops.find(&node);
          if (it != bc.loops.end()) {
            fuse_expr(it->second.lower, counts);
            fuse_expr(it->second.upper, counts);
            if (it->second.step) fuse_expr(*it->second.step, counts);
          }
          enclosing.push_back(&node);
          for (const auto& child : node.body) {
            optimize_stmt(*child, program, sema, enclosing, bc, counts,
                          hoisted);
          }
          enclosing.pop_back();
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          const auto it = bc.guards.find(&node);
          if (it != bc.guards.end()) fuse_expr(it->second, counts);
          for (const auto& child : node.then_body) {
            optimize_stmt(*child, program, sema, enclosing, bc, counts,
                          hoisted);
          }
          for (const auto& child : node.else_body) {
            optimize_stmt(*child, program, sema, enclosing, bc, counts,
                          hoisted);
          }
        } else if constexpr (std::is_same_v<T, ReinitStmt>) {
          // No programs to optimize.
        }
      },
      stmt.node);
}

}  // namespace

void fuse_superinstructions(CompiledExpr& expr) {
  FusionCounts counts;
  fuse_expr(expr, counts);
  collect_hoist_deps(expr);
}

ProgramBytecode optimize_bytecode(ProgramBytecode bytecode,
                                  const Program& program,
                                  const SemanticInfo& sema) {
  const obs::Span span("compile", "optimize-bytecode");
  FusionCounts counts;
  std::uint64_t hoisted = 0;
  std::vector<const DoLoop*> enclosing;
  for (const auto& stmt : program.body) {
    optimize_stmt(*stmt, program, sema, enclosing, bytecode, counts, hoisted);
  }
  bytecode.optimized = true;
  // Fusion-hit (compile-side) counters: how much of the stream the pass
  // rewrote.  Runtime hit rates come from the per-opcode dispatch tallies.
  static obs::Counter& const_arith =
      obs::counter("bytecode/opt/fused_const_arith");
  static obs::Counter& cmp_branch =
      obs::counter("bytecode/opt/fused_cmp_branch");
  static obs::Counter& affine_read =
      obs::counter("bytecode/opt/fused_affine_read");
  static obs::Counter& hoists = obs::counter("bytecode/opt/hoisted_indices");
  const_arith.add(counts.const_arith);
  cmp_branch.add(counts.cmp_branch);
  affine_read.add(counts.affine_read);
  hoists.add(hoisted);
  return bytecode;
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

double BytecodeFrame::load_var(const CompiledExpr& expr, const EvalEnv& env,
                               SlotCache& slots, std::uint16_t slot) {
  const double* p = slots.ptrs[slot];
  if (p == nullptr) {
    p = env.find_slot(expr.vars[slot]);
    if (p == nullptr) {
      // The identical trap, at the identical evaluation point, as the
      // tree walk's EvalEnv::get.
      throw Error("unbound variable '" + expr.vars[slot] +
                  "' at evaluation time");
    }
    slots.ptrs[slot] = p;
  }
  return *p;
}

BytecodeFrame::SlotHandle BytecodeFrame::intern(const CompiledExpr& expr) {
  const auto [it, inserted] =
      handles_.emplace(&expr, static_cast<SlotHandle>(slot_store_.size()));
  if (inserted) slot_store_.emplace_back();
  return it->second;
}

BytecodeFrame::SlotCache& BytecodeFrame::slots_for(const CompiledExpr& expr,
                                                   SlotHandle handle,
                                                   const EvalEnv& env) {
  if (cached_env_ != &env || cached_env_version_ != env.version()) {
    cached_env_ = &env;
    cached_env_version_ = env.version();
    ++epoch_;  // invalidates every expression's slot pointers
  }
  SlotCache& slots = slot_store_[handle];
  if (slots.epoch != epoch_ || slots.ptrs.size() != expr.vars.size()) {
    slots.ptrs.assign(expr.vars.size(), nullptr);
    slots.epoch = epoch_;
  }
  return slots;
}

BytecodeFrame::~BytecodeFrame() {
  // Cold path: the tallies only accumulate while obs::collecting(), and a
  // frame lives as long as its executor, so one registry lookup per opcode
  // at teardown is noise.  kScheduler because replay re-execution counts
  // (probe retries) vary with worker interleaving.
  for (std::size_t i = 0; i < kOpCount; ++i) {
    if (tally_[i] == 0) continue;
    obs::counter(
        std::string("bytecode/dispatch/") + op_name(static_cast<Op>(i)),
        obs::Determinism::kScheduler)
        .add(tally_[i]);
  }
}

// The interpreter loop is written ONCE: SAP_CASE/SAP_NEXT expand either to
// labels-as-values dispatch (SAP_BYTECODE_COMPUTED_GOTO, set by the CMake
// feature probe — one indirect jump per instruction, per-opcode branch
// prediction) or to a portable switch.  Both builds share every
// instruction's semantics body below; bytecode_dispatch_kind() reports
// which one is live.
#if defined(SAP_BYTECODE_COMPUTED_GOTO)
#define SAP_CASE(op) lbl_##op:
#define SAP_DISPATCH()                                       \
  do {                                                       \
    if (pc >= size) return true;                             \
    in = code[pc];                                           \
    if (tallying) ++tally_[static_cast<std::size_t>(in.op)]; \
    goto* kDispatch[static_cast<std::size_t>(in.op)];        \
  } while (0)
#define SAP_NEXT() \
  do {             \
    ++pc;          \
    SAP_DISPATCH(); \
  } while (0)
#else
#define SAP_CASE(op) case Op::op:
#define SAP_NEXT() break
#endif

bool BytecodeFrame::execute(const CompiledExpr& expr, const EvalEnv& env,
                            ArrayReader& reader, SlotCache& slots) {
  if (regs_.size() < expr.num_regs) regs_.resize(expr.num_regs);
  if (idx_.size() < expr.num_idx_slots) idx_.resize(expr.num_idx_slots);
  // Direct read path: (re)size this program's site->array cache when the
  // binder changed.  Pointers resolve lazily inside kRead/kAffineRead so
  // an unknown-array error keeps its tree-walk evaluation point.
  if (binder_ != nullptr && slots.bind_epoch != binder_epoch_) {
    slots.arrays.assign(expr.reads.size(), nullptr);
    slots.bind_epoch = binder_epoch_;
  }

  double* const regs = regs_.data();
  std::int64_t* const idx = idx_.data();
  const Instr* const code = expr.code.data();
  const std::size_t size = expr.code.size();
  const bool tallying = obs::collecting();
  std::size_t pc = 0;
  Instr in{};

  // Shared by kRead / kAffineRead.  With a binder installed the site
  // resolves once into a cached SaArray*, bounds are checked inline, and
  // the read skips the name-resolve + checked-linearize work inside the
  // reader; errors and their evaluation points are identical to the
  // name-based seam (the bounds failure re-runs the checked linearize for
  // its exact message).
  const auto read_site = [&](const ReadSite& site,
                             std::uint16_t site_id) -> std::optional<double> {
    const std::int64_t* const ip = idx + site.first_idx_slot;
    if (binder_ != nullptr) {
      SaArray*& array = slots.arrays[site_id];
      if (array == nullptr) array = &binder_->resolve(site.array);
      const ArrayShape& shape = array->shape();
      if (!shape.contains_span(ip, site.rank)) {
        read_scratch_.assign(ip, ip + site.rank);
        shape.linearize(read_scratch_);  // throws the seam's BoundsError
      }
      return reader.read_direct(*array,
                                shape.linearize_span_unchecked(ip, site.rank),
                                site.array, ip, site.rank);
    }
    read_scratch_.assign(ip, ip + site.rank);
    return reader.read(site.array, read_scratch_);
  };

#if defined(SAP_BYTECODE_COMPUTED_GOTO)
  // One label per opcode, in exact Op declaration order.
  static const void* const kDispatch[kOpCount] = {
      &&lbl_kConst,        &&lbl_kLoadVar,      &&lbl_kNeg,
      &&lbl_kAdd,          &&lbl_kSub,          &&lbl_kMul,
      &&lbl_kDiv,          &&lbl_kIDiv,         &&lbl_kMod,
      &&lbl_kMin,          &&lbl_kMax,          &&lbl_kAbs,
      &&lbl_kCmpLt,        &&lbl_kCmpLe,        &&lbl_kCmpGt,
      &&lbl_kCmpGe,        &&lbl_kCmpEq,        &&lbl_kCmpNe,
      &&lbl_kAnd,          &&lbl_kOr,           &&lbl_kNot,
      &&lbl_kMove,         &&lbl_kJump,         &&lbl_kJumpIfZero,
      &&lbl_kCheckIndex,   &&lbl_kAffineIndex,  &&lbl_kRead,
      &&lbl_kAddConst,     &&lbl_kSubConst,     &&lbl_kConstSub,
      &&lbl_kMulConst,     &&lbl_kDivConst,     &&lbl_kConstDiv,
      &&lbl_kJumpIfNotLt,  &&lbl_kJumpIfNotLe,  &&lbl_kJumpIfNotGt,
      &&lbl_kJumpIfNotGe,  &&lbl_kJumpIfNotEq,  &&lbl_kJumpIfNotNe,
      &&lbl_kAffineRead,   &&lbl_kHoistIndex,
  };
  SAP_DISPATCH();
#else
  for (; pc < size; ++pc) {
    in = code[pc];
    if (tallying) ++tally_[static_cast<std::size_t>(in.op)];
    switch (in.op) {
#endif

  SAP_CASE(kConst) {
    regs[in.dst] = expr.consts[in.a];
  }
  SAP_NEXT();
  SAP_CASE(kLoadVar) {
    regs[in.dst] = load_var(expr, env, slots, in.a);
  }
  SAP_NEXT();
  SAP_CASE(kNeg) {
    regs[in.dst] = -regs[in.a];
  }
  SAP_NEXT();
  SAP_CASE(kAdd) {
    regs[in.dst] = regs[in.a] + regs[in.b];
  }
  SAP_NEXT();
  SAP_CASE(kSub) {
    regs[in.dst] = regs[in.a] - regs[in.b];
  }
  SAP_NEXT();
  SAP_CASE(kMul) {
    regs[in.dst] = regs[in.a] * regs[in.b];
  }
  SAP_NEXT();
  SAP_CASE(kDiv) {
    if (regs[in.b] == 0.0) throw Error("division by zero");
    regs[in.dst] = regs[in.a] / regs[in.b];
  }
  SAP_NEXT();
  SAP_CASE(kIDiv) {
    if (regs[in.b] == 0.0) throw Error("IDIV by zero");
    regs[in.dst] = std::trunc(regs[in.a] / regs[in.b]);
  }
  SAP_NEXT();
  SAP_CASE(kMod) {
    if (regs[in.b] == 0.0) throw Error("MOD by zero");
    regs[in.dst] = std::fmod(regs[in.a], regs[in.b]);
  }
  SAP_NEXT();
  SAP_CASE(kMin) {
    regs[in.dst] = std::min(regs[in.a], regs[in.b]);
  }
  SAP_NEXT();
  SAP_CASE(kMax) {
    regs[in.dst] = std::max(regs[in.a], regs[in.b]);
  }
  SAP_NEXT();
  SAP_CASE(kAbs) {
    regs[in.dst] = std::abs(regs[in.a]);
  }
  SAP_NEXT();
  SAP_CASE(kCmpLt) {
    regs[in.dst] = regs[in.a] < regs[in.b] ? 1.0 : 0.0;
  }
  SAP_NEXT();
  SAP_CASE(kCmpLe) {
    regs[in.dst] = regs[in.a] <= regs[in.b] ? 1.0 : 0.0;
  }
  SAP_NEXT();
  SAP_CASE(kCmpGt) {
    regs[in.dst] = regs[in.a] > regs[in.b] ? 1.0 : 0.0;
  }
  SAP_NEXT();
  SAP_CASE(kCmpGe) {
    regs[in.dst] = regs[in.a] >= regs[in.b] ? 1.0 : 0.0;
  }
  SAP_NEXT();
  SAP_CASE(kCmpEq) {
    regs[in.dst] = regs[in.a] == regs[in.b] ? 1.0 : 0.0;
  }
  SAP_NEXT();
  SAP_CASE(kCmpNe) {
    regs[in.dst] = regs[in.a] != regs[in.b] ? 1.0 : 0.0;
  }
  SAP_NEXT();
  SAP_CASE(kAnd) {
    regs[in.dst] = regs[in.a] != 0.0 && regs[in.b] != 0.0 ? 1.0 : 0.0;
  }
  SAP_NEXT();
  SAP_CASE(kOr) {
    regs[in.dst] = regs[in.a] != 0.0 || regs[in.b] != 0.0 ? 1.0 : 0.0;
  }
  SAP_NEXT();
  SAP_CASE(kNot) {
    regs[in.dst] = regs[in.a] == 0.0 ? 1.0 : 0.0;
  }
  SAP_NEXT();
  SAP_CASE(kMove) {
    regs[in.dst] = regs[in.a];
  }
  SAP_NEXT();
  SAP_CASE(kJump) {
    pc += in.a;
  }
  SAP_NEXT();
  SAP_CASE(kJumpIfZero) {
    if (regs[in.a] == 0.0) pc += in.b;
  }
  SAP_NEXT();
  SAP_CASE(kCheckIndex) {
    const double v = regs[in.a];
    const double rounded = std::round(v);
    if (std::abs(v - rounded) > 1e-6) {
      throw Error("array index evaluated to non-integer " +
                  std::to_string(v));
    }
    idx[in.dst] = static_cast<std::int64_t>(rounded);
  }
  SAP_NEXT();
  SAP_CASE(kAffineIndex) {
    const AffineForm& form = expr.affines[in.a];
    std::int64_t value = form.constant;
    bool integral = true;
    for (const AffineForm::Term& term : form.terms) {
      const double v = load_var(expr, env, slots, term.var_slot);
      if (v != std::round(v)) {
        integral = false;
        break;
      }
      value += term.coeff * static_cast<std::int64_t>(v);
    }
    if (integral) {
      idx[in.dst] = value;
      pc += in.b;  // skip the generic sequence
    }
  }
  SAP_NEXT();
  SAP_CASE(kRead) {
    const auto v = read_site(expr.reads[in.a], in.a);
    if (!v) return false;  // suspended: abort, like the tree walk
    regs[in.dst] = *v;
  }
  SAP_NEXT();
  // ----- superinstructions (optimize_bytecode output) -----
  SAP_CASE(kAddConst) {
    regs[in.dst] = regs[in.a] + expr.consts[in.b];
  }
  SAP_NEXT();
  SAP_CASE(kSubConst) {
    regs[in.dst] = regs[in.a] - expr.consts[in.b];
  }
  SAP_NEXT();
  SAP_CASE(kConstSub) {
    regs[in.dst] = expr.consts[in.b] - regs[in.a];
  }
  SAP_NEXT();
  SAP_CASE(kMulConst) {
    regs[in.dst] = regs[in.a] * expr.consts[in.b];
  }
  SAP_NEXT();
  SAP_CASE(kDivConst) {
    // Divisor is the constant; a zero constant must throw exactly like
    // the unfused kDiv it replaced.
    if (expr.consts[in.b] == 0.0) throw Error("division by zero");
    regs[in.dst] = regs[in.a] / expr.consts[in.b];
  }
  SAP_NEXT();
  SAP_CASE(kConstDiv) {
    if (regs[in.a] == 0.0) throw Error("division by zero");
    regs[in.dst] = expr.consts[in.b] / regs[in.a];
  }
  SAP_NEXT();
  SAP_CASE(kJumpIfNotLt) {
    if (!(regs[in.a] < regs[in.b])) pc += in.dst;
  }
  SAP_NEXT();
  SAP_CASE(kJumpIfNotLe) {
    if (!(regs[in.a] <= regs[in.b])) pc += in.dst;
  }
  SAP_NEXT();
  SAP_CASE(kJumpIfNotGt) {
    if (!(regs[in.a] > regs[in.b])) pc += in.dst;
  }
  SAP_NEXT();
  SAP_CASE(kJumpIfNotGe) {
    if (!(regs[in.a] >= regs[in.b])) pc += in.dst;
  }
  SAP_NEXT();
  SAP_CASE(kJumpIfNotEq) {
    if (!(regs[in.a] == regs[in.b])) pc += in.dst;
  }
  SAP_NEXT();
  SAP_CASE(kJumpIfNotNe) {
    if (!(regs[in.a] != regs[in.b])) pc += in.dst;
  }
  SAP_NEXT();
  SAP_CASE(kAffineRead) {
    const FusedRead& fr = expr.fused_reads[in.a];
    const AffineForm& form = expr.affines[fr.affine];
    std::int64_t value = form.constant;
    bool integral = true;
    for (const AffineForm::Term& term : form.terms) {
      const double v = load_var(expr, env, slots, term.var_slot);
      if (v != std::round(v)) {
        integral = false;
        break;
      }
      value += term.coeff * static_cast<std::int64_t>(v);
    }
    if (integral) {
      const ReadSite& site = expr.reads[fr.site];
      // The guard produced the site's LAST index slot (the fusion
      // precondition); earlier slots were filled by the preceding index
      // programs, exactly as for the unfused kRead.
      idx[site.first_idx_slot + site.rank - 1] = value;
      const auto v = read_site(site, fr.site);
      if (!v) return false;  // suspended, same point as the unfused read
      regs[in.dst] = *v;
      pc += in.b;  // skip the generic sequence AND the fallback kRead
    }
  }
  SAP_NEXT();
  SAP_CASE(kHoistIndex) {
    const double v = hoist_[in.a];
    const double rounded = std::round(v);
    if (std::abs(v - rounded) > 1e-6) {
      // Same per-instance check, same message, as the kCheckIndex this
      // instruction replaced (DESIGN.md claim 11).
      throw Error("array index evaluated to non-integer " +
                  std::to_string(v));
    }
    idx[in.dst] = static_cast<std::int64_t>(rounded);
  }
  SAP_NEXT();

#if !defined(SAP_BYTECODE_COMPUTED_GOTO)
    }
  }
#endif
  return true;  // (computed-goto exits via SAP_DISPATCH; this is the switch's)
}

#undef SAP_CASE
#undef SAP_NEXT
#if defined(SAP_BYTECODE_COMPUTED_GOTO)
#undef SAP_DISPATCH
#endif

std::optional<double> BytecodeFrame::run(const CompiledExpr& expr,
                                         const EvalEnv& env,
                                         ArrayReader& reader) {
  return run(expr, intern(expr), env, reader);
}

std::optional<double> BytecodeFrame::run(const CompiledExpr& expr,
                                         SlotHandle handle, const EvalEnv& env,
                                         ArrayReader& reader) {
  if (!execute(expr, env, reader, slots_for(expr, handle, env))) {
    return std::nullopt;
  }
  return regs_[expr.result_reg];
}

bool BytecodeFrame::run_indices(const CompiledExpr& expr, const EvalEnv& env,
                                ArrayReader& reader,
                                std::vector<std::int64_t>& indices_out) {
  return run_indices(expr, intern(expr), env, reader, indices_out);
}

bool BytecodeFrame::run_indices(const CompiledExpr& expr, SlotHandle handle,
                                const EvalEnv& env, ArrayReader& reader,
                                std::vector<std::int64_t>& indices_out) {
  if (!execute(expr, env, reader, slots_for(expr, handle, env))) return false;
  indices_out.resize(expr.out_index_slots.size());
  for (std::size_t d = 0; d < expr.out_index_slots.size(); ++d) {
    indices_out[d] = idx_[expr.out_index_slots[d]];
  }
  return true;
}

}  // namespace sap
