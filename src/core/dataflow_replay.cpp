#include "core/dataflow_replay.hpp"

#include "support/check.hpp"

namespace sap {

namespace {

// Probe phase: is every operand defined?  Queues the PE's token on the
// first undefined cell; performs no accounting.
class ProbeReader final : public ArrayReader {
 public:
  ProbeReader(ArrayNameCache& arrays, PeId pe, const TraceInstance& inst)
      : arrays_(arrays), pe_(pe), inst_(inst) {}
  std::optional<double> read(
      const std::string& array,
      const std::vector<std::int64_t>& indices) override {
    SaArray& a = arrays_.resolve(array);
    const std::int64_t linear = a.shape().linearize(indices);
    if (inst_.kind == TraceInstance::Kind::kAccumulate &&
        a.id() == inst_.array && linear == inst_.target_linear) {
      return 0.0;  // accumulator register: always available
    }
    return a.read_or_defer(linear, pe_);
  }

 private:
  ArrayNameCache& arrays_;
  PeId pe_;
  const TraceInstance& inst_;
};

// Execute phase: accounted reads, guaranteed defined.
class AccountingReader final : public ArrayReader {
 public:
  AccountingReader(Machine& machine, NetworkChannel& net,
                   ArrayNameCache& arrays, PeId pe, const TraceInstance& inst,
                   double register_value)
      : machine_(machine),
        net_(net),
        arrays_(arrays),
        pe_(pe),
        inst_(inst),
        register_value_(register_value) {}
  std::optional<double> read(
      const std::string& array,
      const std::vector<std::int64_t>& indices) override {
    SaArray& a = arrays_.resolve(array);
    const std::int64_t linear = a.shape().linearize(indices);
    if (inst_.kind == TraceInstance::Kind::kAccumulate &&
        a.id() == inst_.array && linear == inst_.target_linear) {
      return register_value_;
    }
    machine_.account_read(pe_, a, linear, net_);
    return a.read(linear);
  }

 private:
  Machine& machine_;
  NetworkChannel& net_;
  ArrayNameCache& arrays_;
  PeId pe_;
  const TraceInstance& inst_;
  double register_value_;
};

}  // namespace

ShardReplay::ShardReplay(const CompiledProgram& compiled, Machine& machine,
                         PeId pe, const InstanceStream& stream,
                         NetworkChannel& net)
    : bytecode_(compiled.bytecode.get()),
      machine_(machine),
      pe_(pe),
      reader_(stream),
      net_(net),
      arrays_(machine.arrays()) {}

std::optional<double> ShardReplay::eval_value(const ArrayAssign& stmt,
                                              ArrayReader& reader) {
  if (bytecode_ != nullptr) {
    const AssignMemo* memo = nullptr;
    for (const AssignMemo& entry : assign_memo_) {
      if (entry.key == &stmt) {
        memo = &entry;
        break;
      }
    }
    if (memo == nullptr) {
      AssignMemo entry;
      entry.key = &stmt;
      const auto it = bytecode_->assigns.find(&stmt);
      if (it != bytecode_->assigns.end()) {
        entry.ca = &it->second;
        entry.value_handle = frame_.intern(it->second.value);
      }
      assign_memo_.push_back(entry);
      memo = &assign_memo_.back();
    }
    if (memo->ca != nullptr) {
      return frame_.run(memo->ca->value, memo->value_handle, env_, reader);
    }
  }
  return eval_expr(*stmt.value, env_, reader);
}

ReplayResult ShardReplay::run(std::size_t limit,
                              std::vector<ReaderToken>& woken) {
  ReplayResult result;
  while (cursor_ < limit) {
    const TraceInstance& inst = reader_.get(cursor_);
    switch (inst.kind) {
      case TraceInstance::Kind::kStatement:
      case TraceInstance::Kind::kAccumulate: {
        const EnvLayout* layout = inst.layout;
        const double* values = inst.env_values();
        for (std::uint8_t i = 0; i < inst.env_count; ++i) {
          env_.set(*layout->names[i], values[i]);
        }
        ProbeReader probe(arrays_, pe_, inst);
        if (!eval_value(*inst.stmt, probe).has_value()) {
          ++suspensions_;
          result.status = ReplayStatus::kSuspended;
          return result;
        }
        const auto key = std::make_pair(inst.stmt, inst.target_linear);
        const double reg =
            inst.kind == TraceInstance::Kind::kAccumulate &&
                    registers_.count(key)
                ? registers_.at(key)
                : 0.0;
        AccountingReader reader(machine_, net_, arrays_, pe_, inst, reg);
        const auto value = eval_value(*inst.stmt, reader);
        SAP_CHECK(value.has_value(), "execute phase suspended after probe");
        SaArray& array = machine_.arrays().at(inst.array);
        if (inst.kind == TraceInstance::Kind::kAccumulate) {
          registers_[key] = *value;
        } else {
          machine_.account_write(pe_, array, inst.target_linear);
          auto released = array.write(inst.target_linear, *value);
          woken.insert(woken.end(), released.begin(), released.end());
        }
        ++cursor_;
        ++result.executed;
        break;
      }
      case TraceInstance::Kind::kCommit: {
        const auto key = std::make_pair(inst.stmt, inst.target_linear);
        const auto reg = registers_.find(key);
        SAP_CHECK(reg != registers_.end(),
                  "commit without prior accumulation");
        SaArray& array = machine_.arrays().at(inst.array);
        machine_.account_write(pe_, array, inst.target_linear);
        auto released = array.write(inst.target_linear, reg->second);
        woken.insert(woken.end(), released.begin(), released.end());
        registers_.erase(reg);
        ++cursor_;
        ++result.executed;
        break;
      }
      case TraceInstance::Kind::kReinit: {
        result.status = ReplayStatus::kReinitBarrier;
        result.reinit_array = inst.array;
        return result;
      }
    }
  }
  result.status = ReplayStatus::kExhausted;
  return result;
}

}  // namespace sap
