#include "core/dataflow_replay.hpp"

#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

namespace {

// Probe phase: is every operand defined?  Queues the PE's token on the
// first undefined cell; performs no accounting.
class ProbeReader final : public ArrayReader {
 public:
  ProbeReader(ArrayNameCache& arrays, PeId pe, const TraceInstance& inst)
      : arrays_(arrays), pe_(pe), inst_(inst) {}
  std::optional<double> read(
      const std::string& array,
      const std::vector<std::int64_t>& indices) override {
    SaArray& a = arrays_.resolve(array);
    const std::int64_t linear = a.shape().linearize(indices);
    if (inst_.kind == TraceInstance::Kind::kAccumulate &&
        a.id() == inst_.array && linear == inst_.target_linear) {
      return 0.0;  // accumulator register: always available
    }
    return a.read_or_defer(linear, pe_);
  }
  // Fast path: the interpreter already resolved + bounds-checked the
  // site; same accumulator-register screen, same defer protocol.
  std::optional<double> read_direct(SaArray& a, std::int64_t linear,
                                    const std::string&, const std::int64_t*,
                                    std::size_t) override {
    if (inst_.kind == TraceInstance::Kind::kAccumulate &&
        a.id() == inst_.array && linear == inst_.target_linear) {
      return 0.0;
    }
    return a.read_or_defer(linear, pe_);
  }

 private:
  ArrayNameCache& arrays_;
  PeId pe_;
  const TraceInstance& inst_;
};

// Execute phase: accounted reads, guaranteed defined.
class AccountingReader final : public ArrayReader {
 public:
  AccountingReader(Machine& machine, NetworkChannel& net,
                   ArrayNameCache& arrays, PeId pe, const TraceInstance& inst,
                   double register_value)
      : machine_(machine),
        net_(net),
        arrays_(arrays),
        pe_(pe),
        inst_(inst),
        register_value_(register_value) {}
  std::optional<double> read(
      const std::string& array,
      const std::vector<std::int64_t>& indices) override {
    SaArray& a = arrays_.resolve(array);
    const std::int64_t linear = a.shape().linearize(indices);
    if (inst_.kind == TraceInstance::Kind::kAccumulate &&
        a.id() == inst_.array && linear == inst_.target_linear) {
      return register_value_;
    }
    machine_.account_read(pe_, a, linear, net_);
    return a.read(linear);
  }
  std::optional<double> read_direct(SaArray& a, std::int64_t linear,
                                    const std::string&, const std::int64_t*,
                                    std::size_t) override {
    if (inst_.kind == TraceInstance::Kind::kAccumulate &&
        a.id() == inst_.array && linear == inst_.target_linear) {
      return register_value_;
    }
    machine_.account_read(pe_, a, linear, net_);
    return a.read(linear);
  }

 private:
  Machine& machine_;
  NetworkChannel& net_;
  ArrayNameCache& arrays_;
  PeId pe_;
  const TraceInstance& inst_;
  double register_value_;
};

// Hoisted index programs are read-free by construction (claim 11); any
// read reaching this reader is an optimizer bug, not a data condition.
class HoistReader final : public ArrayReader {
 public:
  std::optional<double> read(const std::string& array,
                             const std::vector<std::int64_t>&) override {
    throw Error("array '" + array + "' read in a hoisted index program");
  }
};

}  // namespace

ShardReplay::ShardReplay(const CompiledProgram& compiled, Machine& machine,
                         PeId pe, const InstanceStream& stream,
                         NetworkChannel& net)
    : bytecode_(compiled.bytecode.get()),
      machine_(machine),
      pe_(pe),
      reader_(stream),
      net_(net),
      arrays_(machine.arrays()) {
  if (bytecode_ != nullptr) frame_.ensure_hoist(bytecode_->hoists.size());
  // The machine's registry is fixed for the replay's lifetime, so the
  // interpreter may pre-bind read sites to SaArray pointers.
  frame_.set_binder(&arrays_);
}

const ShardReplay::AssignMemo& ShardReplay::assign_memo(
    const ArrayAssign& stmt) {
  if (last_assign_ < assign_memo_.size() &&
      assign_memo_[last_assign_].key == &stmt) {
    return assign_memo_[last_assign_];
  }
  for (std::size_t i = 0; i < assign_memo_.size(); ++i) {
    if (assign_memo_[i].key == &stmt) {
      last_assign_ = i;
      return assign_memo_[i];
    }
  }
  AssignMemo entry;
  entry.key = &stmt;
  if (bytecode_ != nullptr) {
    const auto it = bytecode_->assigns.find(&stmt);
    if (it != bytecode_->assigns.end()) {
      entry.ca = &it->second;
      entry.value_handle = frame_.intern(it->second.value);
      for (const std::uint32_t slot : it->second.value.hoist_deps) {
        const CompiledExpr& program = bytecode_->hoists[slot];
        entry.hoists.push_back(
            HoistDep{&program, slot, frame_.intern(program)});
      }
    }
  }
  assign_memo_.push_back(std::move(entry));
  last_assign_ = assign_memo_.size() - 1;
  return assign_memo_.back();
}

std::optional<double> ShardReplay::eval_value(const AssignMemo& memo,
                                              const ArrayAssign& stmt,
                                              ArrayReader& reader) {
  if (memo.ca != nullptr) {
    return frame_.run(memo.ca->value, memo.value_handle, env_, reader);
  }
  return eval_expr(*stmt.value, env_, reader);
}

ReplayResult ShardReplay::run(std::size_t limit,
                              std::vector<ReaderToken>& woken) {
  ReplayResult result;
  while (cursor_ < limit) {
    const TraceInstance& inst = reader_.get(cursor_);
    switch (inst.kind) {
      case TraceInstance::Kind::kStatement:
      case TraceInstance::Kind::kAccumulate: {
        const EnvLayout* layout = inst.layout;
        const double* values = inst.env_values();
        if (layout_slots_.layout == layout &&
            layout_slots_.env_version == env_.version()) {
          // Batched fast path: consecutive instances of one statement
          // stream share a layout, so refreshing their variables is a
          // straight store through the captured slot pointers (identical
          // to set() on a bound name — a pure value update).
          for (std::uint8_t i = 0; i < inst.env_count; ++i) {
            *layout_slots_.ptrs[i] = values[i];
          }
        } else {
          for (std::uint8_t i = 0; i < inst.env_count; ++i) {
            env_.set(*layout->names[i], values[i]);
          }
          layout_slots_.layout = layout;
          layout_slots_.ptrs.resize(inst.env_count);
          for (std::uint8_t i = 0; i < inst.env_count; ++i) {
            layout_slots_.ptrs[i] = env_.find_slot_mutable(*layout->names[i]);
          }
          layout_slots_.env_version = env_.version();
        }
        const AssignMemo& memo = assign_memo(*inst.stmt);
        // Hoist dependencies once per instance, before the probe: both
        // phases then consume identical slot values.
        if (!memo.hoists.empty()) {
          HoistReader hoist_reader;
          for (const HoistDep& h : memo.hoists) {
            const auto v = frame_.run(*h.program, h.handle, env_, hoist_reader);
            SAP_CHECK(v.has_value(), "hoisted index evaluation suspended");
            frame_.set_hoist(h.slot, *v);
          }
        }
        ProbeReader probe(arrays_, pe_, inst);
        if (!eval_value(memo, *inst.stmt, probe).has_value()) {
          ++suspensions_;
          result.status = ReplayStatus::kSuspended;
          return result;
        }
        // One hash probe covers both the register fetch and the store
        // after evaluation (the execute phase never touches the map, so
        // the iterator stays valid across it).
        auto reg_it = registers_.end();
        double reg = 0.0;
        if (inst.kind == TraceInstance::Kind::kAccumulate) {
          reg_it = registers_
                       .try_emplace(std::make_pair(inst.stmt,
                                                   inst.target_linear),
                                    0.0)
                       .first;
          reg = reg_it->second;
        }
        AccountingReader reader(machine_, net_, arrays_, pe_, inst, reg);
        const auto value = eval_value(memo, *inst.stmt, reader);
        SAP_CHECK(value.has_value(), "execute phase suspended after probe");
        SaArray& array = machine_.arrays().at(inst.array);
        if (inst.kind == TraceInstance::Kind::kAccumulate) {
          reg_it->second = *value;
        } else {
          machine_.account_write(pe_, array, inst.target_linear);
          auto released = array.write(inst.target_linear, *value);
          woken.insert(woken.end(), released.begin(), released.end());
        }
        ++cursor_;
        ++result.executed;
        break;
      }
      case TraceInstance::Kind::kCommit: {
        const auto key = std::make_pair(inst.stmt, inst.target_linear);
        const auto reg = registers_.find(key);
        SAP_CHECK(reg != registers_.end(),
                  "commit without prior accumulation");
        SaArray& array = machine_.arrays().at(inst.array);
        machine_.account_write(pe_, array, inst.target_linear);
        auto released = array.write(inst.target_linear, reg->second);
        woken.insert(woken.end(), released.begin(), released.end());
        registers_.erase(reg);
        ++cursor_;
        ++result.executed;
        break;
      }
      case TraceInstance::Kind::kReinit: {
        result.status = ReplayStatus::kReinitBarrier;
        result.reinit_array = inst.array;
        return result;
      }
    }
  }
  result.status = ReplayStatus::kExhausted;
  return result;
}

}  // namespace sap
