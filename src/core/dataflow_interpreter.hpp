// Dataflow interpreter: faithful execution of the §3 synchronization model.
//
// Every PE executes its screened subsequence of statement instances
// in order.  A read of an undefined cell *suspends* the PE (the request is
// queued on the cell, §3/§4); the scheduler round-robins the PEs until all
// streams drain.  A full pass with no progress means the program has a
// read-before-write in sequential order — DeadlockError.  A second write to
// any cell traps (DoubleWriteError), exactly the paper's "runtime error".
//
// Mechanically: a sequential trace pass first resolves control (loop
// bounds, scalar arithmetic — replicated on every PE per §2, hence
// identical and precomputable) into per-PE instance streams; the replay
// then performs every memory access against the machine in stream order.
// Statement instances are two-phase: a *probe* checks that every operand
// is defined (queuing the PE otherwise, with no accounting side effects),
// and only then the *execute* phase performs the accounted reads and the
// write.  This guarantees each operand is accounted exactly once, in the
// same per-PE order as the counting interpreter — the equivalence the
// tests assert.
#pragma once

#include "core/simulator.hpp"
#include "machine/machine.hpp"

namespace sap {

struct DataflowStats {
  std::uint64_t scheduler_rounds = 0;  // full passes over the PE set
  std::uint64_t suspensions = 0;       // probe failures (deferred reads)
};

/// Executes the program on the machine (arrays must be materialized).
/// Throws DeadlockError when the program is not legal single assignment.
DataflowStats run_dataflow(const CompiledProgram& compiled, Machine& machine);

}  // namespace sap
