// Dataflow interpreter: faithful execution of the §3 synchronization model.
//
// Every PE executes its screened subsequence of statement instances in
// order.  A read of an undefined cell *suspends* the PE (the request is
// queued on the cell, §3/§4); a second write to any cell traps
// (DoubleWriteError), exactly the paper's "runtime error".  A program that
// reads a value before sequential order produces it deadlocks the machine
// (DeadlockError).
//
// Mechanically: a sequential trace pass (core/dataflow_trace.hpp) resolves
// control into per-PE instance streams, and a replay engine
// (core/dataflow_replay.hpp) performs every memory access against the
// machine in stream order.  Two schedulers drive the replay:
//
//   * serial — the round-robin oracle: one thread polls the PEs in id
//     order, running each to its next block (SAPART_DATAFLOW=serial);
//   * sharded — the parallel runtime (runtime/sim_runtime.hpp): per-PE
//     streams replay concurrently on ThreadPool workers, overlapped with
//     the trace pass, and per-shard accounting merges in PE-id order.
//     This is the default; its SimulationResults are byte-identical to
//     the serial scheduler's for any worker count.
//
// The machine-config extension `count_partial_page_refetch` makes cache
// admission depend on the *interleaving* of cross-PE writes, which only the
// serial scheduler pins down; run_dataflow therefore always routes such
// configs to the serial scheduler.
#pragma once

#include "core/simulator.hpp"
#include "machine/machine.hpp"

namespace sap {

struct DataflowStats {
  // Serial: full passes over the PE set.  Sharded: run-to-block dispatch
  // episodes (a shard popped from a ready deque and run until it blocks).
  std::uint64_t scheduler_rounds = 0;
  std::uint64_t suspensions = 0;       // probe failures (deferred reads)
  std::uint64_t parks = 0;             // sharded: shard park events
  std::uint64_t steals = 0;            // sharded: cross-worker deque steals
  unsigned workers = 1;                // sharded: replay worker count
};

/// Scheduler selection for run_dataflow (SAPART_DATAFLOW).
enum class DataflowScheduler {
  kSharded,  // parallel shard runtime (default)
  kSerial,   // single-threaded round-robin oracle
};

/// Scheduler choice plus whether the user asked for it explicitly.  The
/// distinction matters for `count_partial_page_refetch` configs: their
/// accounting is defined by the serial interleaving, so the *default*
/// sharded choice silently routes them to the serial scheduler, while an
/// explicit SAPART_DATAFLOW=sharded on such a config is a ConfigError —
/// honoring it would change the numbers behind the user's back.
struct DataflowSchedulerSelection {
  DataflowScheduler scheduler = DataflowScheduler::kSharded;
  bool explicit_env = false;  // SAPART_DATAFLOW was set
};

/// Selection from the SAPART_DATAFLOW environment variable: unset ->
/// default sharded (explicit_env false), "sharded"/"serial" -> that
/// scheduler (explicit_env true); anything else (including empty) throws
/// ConfigError naming the valid set.
DataflowSchedulerSelection dataflow_scheduler_selection_from_env();

/// Scheduler part of dataflow_scheduler_selection_from_env().
DataflowScheduler dataflow_scheduler_from_env();

/// Executes the program on the machine (arrays must be materialized) under
/// the scheduler selected by SAPART_DATAFLOW.
/// Throws DeadlockError when the program is not legal single assignment.
DataflowStats run_dataflow(const CompiledProgram& compiled, Machine& machine);

/// The serial round-robin scheduler (the oracle the sharded runtime is
/// differentially tested against).
DataflowStats run_dataflow_serial(const CompiledProgram& compiled,
                                  Machine& machine);

}  // namespace sap
