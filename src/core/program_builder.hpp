// Programmatic construction of loop programs.
//
// Kernels (src/kernels) and tests build ASTs directly instead of going
// through DSL text.  `Ex` is a copyable expression handle with natural
// operator overloading:
//
//   ProgramBuilder b("hydro");
//   b.input_array("ZX", {1012}).array("X", {1001}).scalar("Q", 0.5);
//   b.begin_loop("k", 1, 400);
//   b.assign("X", {b.var("k")}, b.var("Q") + b.at("ZX", {b.var("k") + 10}));
//   b.end_loop();
//   CompiledProgram p = b.compile();
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "frontend/ast.hpp"

namespace sap {

/// Value-semantic expression handle (deep-copies on copy).
class Ex {
 public:
  Ex() = default;
  /*implicit*/ Ex(double value);  // NOLINT: literals read naturally
  /*implicit*/ Ex(int value);     // NOLINT
  explicit Ex(ExprPtr expr);

  Ex(const Ex& other);
  Ex& operator=(const Ex& other);
  Ex(Ex&&) noexcept = default;
  Ex& operator=(Ex&&) noexcept = default;

  bool valid() const noexcept { return expr_ != nullptr; }

  /// Releases the underlying AST node (handle becomes invalid).
  ExprPtr take();
  /// Deep copy of the underlying node.
  ExprPtr materialize() const;

  friend Ex operator+(Ex lhs, Ex rhs);
  friend Ex operator-(Ex lhs, Ex rhs);
  friend Ex operator*(Ex lhs, Ex rhs);
  friend Ex operator/(Ex lhs, Ex rhs);
  friend Ex operator-(Ex operand);

 private:
  ExprPtr expr_;
};

/// Free-standing expression constructors.
Ex ex_num(double value);
Ex ex_var(const std::string& name);
Ex ex_at(const std::string& array, std::vector<Ex> indices);
Ex ex_idiv(Ex lhs, Ex rhs);
Ex ex_mod(Ex lhs, Ex rhs);
Ex ex_min(Ex lhs, Ex rhs);
Ex ex_max(Ex lhs, Ex rhs);
Ex ex_abs(Ex operand);
// Boolean forms (comparisons, logicals, the lazily-evaluated SELECT).
Ex ex_cmp(CompareOp op, Ex lhs, Ex rhs);
Ex ex_lt(Ex lhs, Ex rhs);
Ex ex_le(Ex lhs, Ex rhs);
Ex ex_gt(Ex lhs, Ex rhs);
Ex ex_ge(Ex lhs, Ex rhs);
Ex ex_eq(Ex lhs, Ex rhs);
Ex ex_ne(Ex lhs, Ex rhs);
Ex ex_and(Ex lhs, Ex rhs);
Ex ex_or(Ex lhs, Ex rhs);
Ex ex_not(Ex operand);
Ex ex_select(Ex cond, Ex a, Ex b);

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  // ------------------------------------------------------------ declarations
  /// Output array (INIT NONE), 1-based extents.
  ProgramBuilder& array(const std::string& name,
                        std::vector<std::int64_t> extents);
  /// Input array (INIT ALL).
  ProgramBuilder& input_array(const std::string& name,
                              std::vector<std::int64_t> extents);
  /// Array whose first `prefix` linear cells are initialization data.
  ProgramBuilder& prefix_array(const std::string& name,
                               std::vector<std::int64_t> extents,
                               std::int64_t prefix);
  /// Fully general declaration.
  ProgramBuilder& array_decl(ArrayDecl decl);
  ProgramBuilder& scalar(const std::string& name, double init = 0.0);
  /// Custom initialization data for one array (linear index -> value).
  ProgramBuilder& custom_init(const std::string& name,
                              std::function<double(std::int64_t)> fn);

  // ------------------------------------------------------------- statements
  ProgramBuilder& begin_loop(const std::string& var, Ex lower, Ex upper);
  ProgramBuilder& begin_loop_step(const std::string& var, Ex lower, Ex upper,
                                  Ex step);
  ProgramBuilder& end_loop();
  /// IF (cond) THEN ...; statements go to the THEN arm until begin_else().
  ProgramBuilder& begin_if(Ex cond);
  ProgramBuilder& begin_else();
  ProgramBuilder& end_if();
  ProgramBuilder& assign(const std::string& array, std::vector<Ex> indices,
                         Ex value);
  ProgramBuilder& scalar_assign(const std::string& name, Ex value);
  ProgramBuilder& reinit(const std::string& array);

  // ------------------------------------------------------------ convenience
  Ex var(const std::string& name) const { return ex_var(name); }
  Ex at(const std::string& array, std::vector<Ex> indices) const {
    return ex_at(array, std::move(indices));
  }

  /// Finalizes the AST (open loops are an error).
  Program build();
  /// build + semantic analysis + commit-loop precomputation.
  CompiledProgram compile();

 private:
  std::vector<StmtPtr>& current_body();

  Program program_;
  std::map<std::string, std::function<double(std::int64_t)>, std::less<>>
      custom_inits_;
  /// One open DO loop or IF arm; statements append to the innermost.
  struct OpenBlock {
    DoLoop* loop = nullptr;
    IfStmt* branch = nullptr;
    bool in_else = false;
  };
  std::vector<OpenBlock> block_stack_;
  std::vector<StmtPtr> pending_root_;
  bool built_ = false;
};

}  // namespace sap
