#include "kernels/synthetic.hpp"

#include "core/program_builder.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace sap {

CompiledProgram make_matched(std::int64_t n) {
  SAP_CHECK(n >= 1, "n must be positive");
  ProgramBuilder b("syn_matched_" + std::to_string(n));
  b.array("A", {n});
  b.input_array("B", {n});
  b.input_array("C", {n});
  const Ex k = b.var("K");
  b.begin_loop("K", 1, ex_num(static_cast<double>(n)));
  b.assign("A", {k}, b.at("B", {k}) + b.at("C", {k}));
  b.end_loop();
  return b.compile();
}

CompiledProgram make_skewed(std::int64_t n, std::int64_t skew) {
  SAP_CHECK(n >= 1, "n must be positive");
  // For negative skews the loop starts where k + skew is still in range
  // (extending B's lower bound instead would shift its linear space and
  // silently cancel the skew).
  const std::int64_t lo_k = skew < 0 ? 1 - skew : 1;
  SAP_CHECK(lo_k <= n, "skew leaves an empty iteration range");
  ProgramBuilder b("syn_skewed_" + std::to_string(n) + "_s" +
                   std::to_string(skew));
  b.array("A", {n});
  b.input_array("B", {n + std::max<std::int64_t>(skew, 0)});
  b.input_array("C", {n});
  const Ex k = b.var("K");
  b.begin_loop("K", ex_num(static_cast<double>(lo_k)),
               ex_num(static_cast<double>(n)));
  b.assign("A", {k},
           b.at("B", {k + ex_num(static_cast<double>(skew))}) +
               b.at("C", {k}));
  b.end_loop();
  return b.compile();
}

CompiledProgram make_cyclic(std::int64_t n, std::int64_t rate) {
  SAP_CHECK(n >= 1 && rate >= 2, "need n >= 1 and rate >= 2");
  ProgramBuilder b("syn_cyclic_" + std::to_string(n) + "_r" +
                   std::to_string(rate));
  b.array("A", {n});
  b.input_array("B", {n * rate});
  const Ex k = b.var("K");
  const Ex r = ex_num(static_cast<double>(rate));
  b.begin_loop("K", 1, ex_num(static_cast<double>(n)));
  b.assign("A", {k},
           b.at("B", {r * k}) +
               b.at("B", {r * k - ex_num(static_cast<double>(rate - 1))}));
  b.end_loop();
  return b.compile();
}

CompiledProgram make_random_permutation(std::int64_t n, std::uint64_t seed) {
  SAP_CHECK(n >= 1, "n must be positive");
  ProgramBuilder b("syn_random_" + std::to_string(n));
  b.array("A", {n});
  b.input_array("B", {n});
  b.input_array("P", {n});
  const auto perm = random_permutation(n, seed);
  b.custom_init("P", [perm](std::int64_t linear) {
    return static_cast<double>(perm[static_cast<std::size_t>(linear)] + 1);
  });
  const Ex k = b.var("K");
  b.begin_loop("K", 1, ex_num(static_cast<double>(n)));
  b.assign("A", {k}, b.at("B", {b.at("P", {k})}));
  b.end_loop();
  return b.compile();
}

CompiledProgram make_dot_product(std::int64_t n) {
  SAP_CHECK(n >= 1, "n must be positive");
  ProgramBuilder b("syn_dot_" + std::to_string(n));
  b.array("S", {1});
  b.input_array("X", {n});
  b.input_array("Y", {n});
  const Ex k = b.var("K");
  b.begin_loop("K", 1, ex_num(static_cast<double>(n)));
  b.assign("S", {1}, b.at("S", {1}) + b.at("X", {k}) * b.at("Y", {k}));
  b.end_loop();
  return b.compile();
}

CompiledProgram make_stencil_2d(std::int64_t rows, std::int64_t cols) {
  SAP_CHECK(rows >= 3 && cols >= 3, "stencil needs at least a 3x3 grid");
  ProgramBuilder b("syn_stencil_" + std::to_string(rows) + "x" +
                   std::to_string(cols));
  b.array("OUT", {rows, cols});
  b.input_array("IN", {rows, cols});
  b.scalar("C", 0.25);
  const Ex i = b.var("I");
  const Ex j = b.var("J");
  b.begin_loop("I", 2, ex_num(static_cast<double>(rows - 1)));
  b.begin_loop("J", 2, ex_num(static_cast<double>(cols - 1)));
  b.assign("OUT", {i, j},
           b.at("IN", {i, j}) +
               b.var("C") * (b.at("IN", {i - 1, j}) + b.at("IN", {i + 1, j}) +
                             b.at("IN", {i, j - 1}) + b.at("IN", {i, j + 1}) -
                             4.0 * b.at("IN", {i, j})));
  b.end_loop();
  b.end_loop();
  return b.compile();
}

CompiledProgram make_mixed_skew_vs_rate(std::int64_t n, std::int64_t skew) {
  SAP_CHECK(n >= 1 && skew >= 1, "mixed workload parameters must be positive");
  ProgramBuilder b("syn_mixed_skew_rate_" + std::to_string(n));
  b.array("A", {n});
  b.input_array("D", {n + skew});
  b.array("C", {n});
  b.input_array("B", {2 * n});
  const Ex k = b.var("K");
  b.begin_loop("K", 1, ex_num(static_cast<double>(n)));
  b.assign("A", {k}, b.at("D", {k + ex_num(static_cast<double>(skew))}));
  b.assign("C", {k}, b.at("B", {2.0 * k}));
  b.end_loop();
  return b.compile();
}

CompiledProgram make_mixed_multigroup(std::int64_t n, std::int64_t skew) {
  SAP_CHECK(n >= 1 && skew >= 1, "mixed workload parameters must be positive");
  ProgramBuilder b("syn_mixed_multigroup_" + std::to_string(n));
  b.array("A", {n});
  b.input_array("D", {n + skew});
  b.array("C", {n});
  b.input_array("B", {4 * n});
  b.array("E", {n});
  b.input_array("F", {n});
  b.scalar("C0", 1.0);
  const Ex k = b.var("K");
  b.begin_loop("K", 1, ex_num(static_cast<double>(n)));
  b.assign("A", {k}, b.at("D", {k + ex_num(static_cast<double>(skew))}));
  b.assign("C", {k}, b.at("B", {4.0 * k}) + b.at("B", {4.0 * k - 3.0}));
  b.assign("E", {k}, b.at("F", {k}) + b.var("C0"));
  b.end_loop();
  return b.compile();
}

Program make_nonsa_timestep(std::int64_t n, std::int64_t steps) {
  SAP_CHECK(n >= 1 && steps >= 2, "need n >= 1 and steps >= 2");
  ProgramBuilder b("nonsa_timestep");
  b.array("A", {n});
  b.input_array("B", {n});
  const Ex t = b.var("T");
  const Ex i = b.var("I");
  b.begin_loop("T", 1, ex_num(static_cast<double>(steps)));
  b.begin_loop("I", 1, ex_num(static_cast<double>(n)));
  b.assign("A", {i}, b.at("B", {i}) * t);
  b.end_loop();
  b.end_loop();
  return b.build();
}

Program make_nonsa_sequential_overwrite(std::int64_t n) {
  SAP_CHECK(n >= 1, "n must be positive");
  ProgramBuilder b("nonsa_sequential");
  b.array("A", {n});
  b.array("C", {n});
  b.input_array("B", {n});
  const Ex i = b.var("I");
  const Ex j = b.var("J");
  const Ex k = b.var("K");
  b.begin_loop("I", 1, ex_num(static_cast<double>(n)));
  b.assign("A", {i}, b.at("B", {i}) + 1.0);
  b.end_loop();
  // Overwrites A (not a self-accumulation): the converter must version it.
  b.begin_loop("J", 1, ex_num(static_cast<double>(n)));
  b.assign("A", {j}, b.at("B", {j}) * 2.0);
  b.end_loop();
  // Reads after the overwrite must resolve to the new version.
  b.begin_loop("K", 1, ex_num(static_cast<double>(n)));
  b.assign("C", {k}, b.at("A", {k}));
  b.end_loop();
  return b.build();
}

}  // namespace sap
