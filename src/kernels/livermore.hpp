// Livermore Loops in single-assignment form.
//
// Each kernel is transcribed from the classic Livermore Fortran Kernels
// with the minimal SA rewrites the paper's model requires (§5):
//   - accumulations (K6, K21) stay syntactically `W(i) = W(i) + ...` and
//     are detected as reductions;
//   - kernels that overwrite an array in place (K18's zr/zz update, K23)
//     write to fresh output arrays instead;
//   - K8's per-sweep scratch arrays (DU1..DU3) gain the sweep index as an
//     extra dimension so every element is written once.
// Loop bounds are the classic shapes scaled so a full figure sweep runs in
// milliseconds; access *patterns* (strides, skews, cycles) are preserved.
// Deviations are noted per kernel in the .cpp.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/simulator.hpp"
#include "frontend/classifier.hpp"

namespace sap {

struct KernelSpec {
  int lfk_number = 0;        // classic kernel number, 0 = not an LFK
  std::string id;            // stable identifier, e.g. "k01_hydro"
  std::string title;         // e.g. "Hydro Fragment"
  AccessClass paper_class = AccessClass::kMatched;  // §7.1 class
  bool named_in_paper = false;  // explicitly listed in §7.1
  std::function<CompiledProgram()> build;
};

/// All implemented kernels, ascending by LFK number.
const std::vector<KernelSpec>& livermore_kernels();

/// Lookup by id; throws Error when unknown.
const KernelSpec& kernel_by_id(std::string_view id);

/// Builds and compiles one kernel by id.
CompiledProgram build_kernel(std::string_view id);

// Individual builders (used directly by benches and tests).  Sized
// parameters default to the values the figure benches use; Figure 5's
// load-balance run passes a larger K18 grid so 64 PEs all own pages.
CompiledProgram build_k1_hydro(std::int64_t n = 400);
CompiledProgram build_k2_iccg(std::int64_t n = 512);  // power of two
CompiledProgram build_k3_inner_product();
CompiledProgram build_k5_tridiag();
CompiledProgram build_k6_general_linear_recurrence(std::int64_t n = 100);
CompiledProgram build_k7_equation_of_state();
CompiledProgram build_k8_adi(std::int64_t n = 500);
CompiledProgram build_k9_integrate_predictors();
CompiledProgram build_k10_difference_predictors();
CompiledProgram build_k11_first_sum();
CompiledProgram build_k12_first_diff();
CompiledProgram build_k13_pic_2d();
CompiledProgram build_k14_pic_1d();
// Conditional kernels (guarded assignments / SELECT; Table 1's
// "conditional" column):
CompiledProgram build_k15_flow_limiter(std::int64_t n = 400);
CompiledProgram build_k16_min_search(std::int64_t n = 1000);
CompiledProgram build_k18_explicit_hydro_2d(std::int64_t n = 100);
CompiledProgram build_k21_matmul(std::int64_t dim = 32);
CompiledProgram build_k23_implicit_hydro_2d(std::int64_t n = 400);
CompiledProgram build_k24_first_min(std::int64_t n = 1000);

}  // namespace sap
