// DSL source text for a subset of the kernels.
//
// The same kernels exist twice — as ProgramBuilder code (livermore.hpp)
// and as DSL text here — so the integration tests can prove the whole
// front end (lexer through lowering) produces byte-identical access
// distributions to the builder path.
#pragma once

#include <string_view>
#include <vector>

namespace sap {

struct DslKernelSource {
  std::string_view id;       // matches KernelSpec::id
  std::string_view source;   // full DSL program text
};

/// Kernels available in DSL form.
const std::vector<DslKernelSource>& dsl_kernel_sources();

/// Source by kernel id; throws Error when the kernel has no DSL form.
std::string_view dsl_source_for(std::string_view id);

}  // namespace sap
