#include "kernels/livermore.hpp"

#include "support/check.hpp"

#include "core/program_builder.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace sap {

// --------------------------------------------------------------------------
// K1 — Hydro Fragment (paper §7.1.2, Figure 1).  Skewed: ZX is read 10 and
// 11 elements ahead of the X element being produced.  `n` scales the trip
// count (default 400, the paper's size; array shapes scale along so the
// skew pattern is preserved).
CompiledProgram build_k1_hydro(std::int64_t n) {
  SAP_CHECK(n >= 1, "k1 needs a positive trip count");
  ProgramBuilder b("k01_hydro");
  b.array("X", {n + 601});
  b.input_array("Y", {n + 601});
  b.input_array("ZX", {n + 612});
  b.scalar("Q", 0.5).scalar("R", 0.25).scalar("T", 0.125);
  const Ex k = b.var("K");
  b.begin_loop("K", 1, ex_num(static_cast<double>(n)));
  b.assign("X", {k},
           b.var("Q") + b.at("Y", {k}) * (b.var("R") * b.at("ZX", {k + 10}) +
                                          b.var("T") * b.at("ZX", {k + 11})));
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K2 — Incomplete Cholesky Conjugate Gradient (paper §7.1.3, Figure 2).
// Cyclic: the write index advances half as fast as the read index.  The
// log-halving recursion runs 8 levels on n = 512 (the classic code's final
// length-2 level is omitted: its single iteration reads the element it is
// about to write, which the element-wise SA rule cannot express).
CompiledProgram build_k2_iccg(std::int64_t n) {
  SAP_CHECK(n >= 8 && (n & (n - 1)) == 0, "ICCG needs a power-of-two n");
  // Levels of length n, n/2, ..., 4 (the classic length-2 tail is omitted,
  // see the comment above): floor(log2 n) - 1 levels.
  std::int64_t levels = -2;  // floor(log2 n) - 1: lengths n down to 4
  for (std::int64_t v = n; v > 0; v >>= 1) ++levels;
  const std::int64_t total = 2 * n - 2;
  ProgramBuilder b("k02_iccg");
  b.prefix_array("X", {total}, n);  // X(1..n) is input data
  b.input_array("V", {total});
  b.scalar("II", static_cast<double>(n))
      .scalar("IPNT", 0)
      .scalar("IPNTP", 0)
      .scalar("I", 0);
  b.begin_loop("L", 1, ex_num(static_cast<double>(levels)));
  b.scalar_assign("IPNT", b.var("IPNTP"));
  b.scalar_assign("IPNTP", b.var("IPNTP") + b.var("II"));
  b.scalar_assign("II", ex_idiv(b.var("II"), 2));
  b.scalar_assign("I", b.var("IPNTP"));
  b.begin_loop_step("K", b.var("IPNT") + 2, b.var("IPNTP"), 2);
  b.scalar_assign("I", b.var("I") + 1);
  const Ex k = b.var("K");
  b.assign("X", {b.var("I")},
           b.at("X", {k}) - b.at("V", {k}) * b.at("X", {k - 1}) -
               b.at("V", {k + 1}) * b.at("X", {k + 1}));
  b.end_loop();
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K3 — Inner Product.  A reduction into a single cell: one PE owns the
// result and streams both vectors through its cache.  Not named in the
// paper; under owner-computes it is inherently sequential.  Cyclic-class
// behaviour: nearly every read is off-owner, and the cache collapses each
// remote page to a single fetch.
CompiledProgram build_k3_inner_product() {
  ProgramBuilder b("k03_inner_product");
  b.array("Q", {1});
  b.input_array("Z", {1001});
  b.input_array("X", {1001});
  const Ex k = b.var("K");
  b.begin_loop("K", 1, 1001);
  b.assign("Q", {1}, b.at("Q", {1}) + b.at("Z", {k}) * b.at("X", {k}));
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K5 — Tri-Diagonal Elimination (named SD in §7.1.2).  First-order linear
// recurrence: X(i) depends on X(i-1), a skew of one element.
CompiledProgram build_k5_tridiag() {
  ProgramBuilder b("k05_tridiag");
  b.prefix_array("X", {1000}, 1);  // X(1) seeds the recurrence
  b.input_array("Y", {1000});
  b.input_array("Z", {1000});
  const Ex i = b.var("I");
  b.begin_loop("I", 2, 1000);
  b.assign("X", {i}, b.at("Z", {i}) * (b.at("Y", {i}) - b.at("X", {i - 1})));
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K6 — General Linear Recurrence Equations (paper §7.1.4, Figure 4).
// Random: the B(k,i) column walk strides a full row per iteration and the
// per-element read window grows with i — far beyond the 256-element cache.
CompiledProgram build_k6_general_linear_recurrence(std::int64_t n) {
  SAP_CHECK(n >= 2, "GLR needs n >= 2");
  ProgramBuilder b("k06_glr");
  b.prefix_array("W", {n}, 1);  // W(1) seeds the recurrence
  b.input_array("B", {n, n});
  const Ex i = b.var("I");
  const Ex k = b.var("K");
  b.begin_loop("I", 2, ex_num(static_cast<double>(n)));
  b.begin_loop("K", 1, i - 1);
  b.assign("W", {i}, b.at("W", {i}) + b.at("B", {k, i}) * b.at("W", {i - k}));
  b.end_loop();
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K7 — Equation of State Fragment (named SD in §7.1.2).  Skews 1..6 on U.
CompiledProgram build_k7_equation_of_state() {
  ProgramBuilder b("k07_eos");
  b.array("X", {994});
  b.input_array("U", {1001});
  b.input_array("Y", {1001});
  b.input_array("Z", {1001});
  b.scalar("Q", 0.5).scalar("R", 0.25).scalar("T", 0.125);
  const Ex k = b.var("K");
  const Ex r = b.var("R");
  const Ex q = b.var("Q");
  const Ex t = b.var("T");
  b.begin_loop("K", 1, 994);
  b.assign(
      "X", {k},
      b.at("U", {k}) + r * (b.at("Z", {k}) + r * b.at("Y", {k})) +
          t * (b.at("U", {k + 3}) +
               r * (b.at("U", {k + 2}) + r * b.at("U", {k + 1})) +
               t * (b.at("U", {k + 6}) +
                    q * (b.at("U", {k + 5}) + q * b.at("U", {k + 4})))));
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K8 — A.D.I. Integration (paper §7.1.4).  Random: a dozen concurrent
// read streams (three solution arrays with +/- one-row offsets plus three
// difference arrays) overflow the 8-frame cache.  Deviation from the
// classic source: the double-buffer third index (nl1/nl2) is split into
// input arrays U1..U3 and output arrays U1N..U3N, and the per-sweep
// scratch arrays DU1..DU3 gain the sweep index kx so every element is
// written exactly once (single assignment).
CompiledProgram build_k8_adi(std::int64_t n) {
  SAP_CHECK(n >= 3, "ADI needs n >= 3");
  const std::int64_t kN = n;
  ProgramBuilder b("k08_adi");
  for (const char* name : {"U1", "U2", "U3"}) {
    b.input_array(name, {4, kN + 2});
  }
  for (const char* name : {"U1N", "U2N", "U3N"}) {
    b.array(name, {4, kN + 2});
  }
  for (const char* name : {"DU1", "DU2", "DU3"}) {
    b.array(name, {2, kN + 2});
  }
  b.scalar("A11", 0.50).scalar("A12", 0.33).scalar("A13", 0.25);
  b.scalar("A21", 0.20).scalar("A22", 0.16).scalar("A23", 0.14);
  b.scalar("A31", 0.12).scalar("A32", 0.11).scalar("A33", 0.10);
  b.scalar("SIG", 0.05);
  const Ex kx = b.var("KX");
  const Ex ky = b.var("KY");
  b.begin_loop("KX", 2, 3);
  b.begin_loop("KY", 2, ex_num(static_cast<double>(kN)));
  b.assign("DU1", {kx - 1, ky},
           b.at("U1", {kx, ky + 1}) - b.at("U1", {kx, ky - 1}));
  b.assign("DU2", {kx - 1, ky},
           b.at("U2", {kx, ky + 1}) - b.at("U2", {kx, ky - 1}));
  b.assign("DU3", {kx - 1, ky},
           b.at("U3", {kx, ky + 1}) - b.at("U3", {kx, ky - 1}));
  b.assign("U1N", {kx, ky},
           b.at("U1", {kx, ky}) + b.var("A11") * b.at("DU1", {kx - 1, ky}) +
               b.var("A12") * b.at("DU2", {kx - 1, ky}) +
               b.var("A13") * b.at("DU3", {kx - 1, ky}) +
               b.var("SIG") * (b.at("U1", {kx + 1, ky}) -
                               2.0 * b.at("U1", {kx, ky}) +
                               b.at("U1", {kx - 1, ky})));
  b.assign("U2N", {kx, ky},
           b.at("U2", {kx, ky}) + b.var("A21") * b.at("DU1", {kx - 1, ky}) +
               b.var("A22") * b.at("DU2", {kx - 1, ky}) +
               b.var("A23") * b.at("DU3", {kx - 1, ky}) +
               b.var("SIG") * (b.at("U2", {kx + 1, ky}) -
                               2.0 * b.at("U2", {kx, ky}) +
                               b.at("U2", {kx - 1, ky})));
  b.assign("U3N", {kx, ky},
           b.at("U3", {kx, ky}) + b.var("A31") * b.at("DU1", {kx - 1, ky}) +
               b.var("A32") * b.at("DU2", {kx - 1, ky}) +
               b.var("A33") * b.at("DU3", {kx - 1, ky}) +
               b.var("SIG") * (b.at("U3", {kx + 1, ky}) -
                               2.0 * b.at("U3", {kx, ky}) +
                               b.at("U3", {kx - 1, ky})));
  b.end_loop();
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K9 — Integrate Predictors.  SA deviation: the prediction is written to a
// separate vector PX1 instead of column 1 of PX, so the read stride (13
// elements per row) differs from the write stride (1) — a cyclic pattern.
CompiledProgram build_k9_integrate_predictors() {
  constexpr int kN = 500;
  ProgramBuilder b("k09_integrate_predictors");
  b.array("PX1", {kN});
  b.input_array("PX", {kN, 13});
  b.scalar("DM22", 0.1).scalar("DM23", 0.2).scalar("DM24", 0.3);
  b.scalar("DM25", 0.4).scalar("DM26", 0.5).scalar("DM27", 0.6);
  b.scalar("DM28", 0.7).scalar("C0", 1.1);
  const Ex i = b.var("I");
  b.begin_loop("I", 1, kN);
  b.assign("PX1", {i},
           b.var("DM28") * b.at("PX", {i, 13}) +
               b.var("DM27") * b.at("PX", {i, 12}) +
               b.var("DM26") * b.at("PX", {i, 11}) +
               b.var("DM25") * b.at("PX", {i, 10}) +
               b.var("DM24") * b.at("PX", {i, 9}) +
               b.var("DM23") * b.at("PX", {i, 8}) +
               b.var("DM22") * b.at("PX", {i, 7}) +
               b.var("C0") * (b.at("PX", {i, 5}) + b.at("PX", {i, 6})) +
               b.at("PX", {i, 3}));
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K10 — Difference Predictors.  The classic kernel chains scalar temps
// through columns 5..14 of PX in place; the SA form expands the chain so
// each output column is one write of partial sums over the *old* PX
// columns (input) — per-row skewed reads within a 14-element row.
CompiledProgram build_k10_difference_predictors() {
  constexpr int kN = 500;
  ProgramBuilder b("k10_diff_predictors");
  b.array("PXN", {kN, 14});
  b.input_array("PX", {kN, 14});
  b.input_array("CX", {kN, 14});
  const Ex i = b.var("I");
  b.begin_loop("I", 1, kN);
  Ex chain = b.at("CX", {i, 5});
  for (int j = 5; j <= 14; ++j) {
    b.assign("PXN", {i, j}, chain);
    if (j < 14) chain = std::move(chain) - b.at("PX", {i, j});
  }
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K11 — First Sum (named SD in §7.1.2).  Prefix sum: skew of one element.
CompiledProgram build_k11_first_sum() {
  ProgramBuilder b("k11_first_sum");
  b.prefix_array("X", {1000}, 1);
  b.input_array("Y", {1000});
  const Ex k = b.var("K");
  b.begin_loop("K", 2, 1000);
  b.assign("X", {k}, b.at("X", {k - 1}) + b.at("Y", {k}));
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K12 — First Difference (named SD in §7.1.2).  Skew of one element.
CompiledProgram build_k12_first_diff() {
  ProgramBuilder b("k12_first_diff");
  b.array("X", {999});
  b.input_array("Y", {1000});
  const Ex k = b.var("K");
  b.begin_loop("K", 1, 999);
  b.assign("X", {k}, b.at("Y", {k + 1}) - b.at("Y", {k}));
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K13 — 2-D Particle in Cell (gather fragment).  Particle coordinates are
// permutation-like lookups into the field grids: the paper's "permutation
// lookups" Random case (§7.1.4).
CompiledProgram build_k13_pic_2d() {
  constexpr int kParticles = 1000;
  constexpr int kGrid = 64;
  ProgramBuilder b("k13_pic2d");
  b.array("VX", {kParticles});
  b.array("VY", {kParticles});
  b.input_array("IX", {kParticles});
  b.input_array("IY", {kParticles});
  b.input_array("EX", {kGrid, kGrid});
  b.input_array("EY", {kGrid, kGrid});
  // Deterministic pseudo-random cell coordinates in [1, kGrid].
  b.custom_init("IX", [](std::int64_t p) {
    SplitMix64 rng(0xA11CEull ^ static_cast<std::uint64_t>(p));
    return static_cast<double>(1 + static_cast<std::int64_t>(
                                       rng.next_below(kGrid)));
  });
  b.custom_init("IY", [](std::int64_t p) {
    SplitMix64 rng(0xB0B5ull ^ static_cast<std::uint64_t>(p));
    return static_cast<double>(1 + static_cast<std::int64_t>(
                                       rng.next_below(kGrid)));
  });
  const Ex p = b.var("P");
  b.begin_loop("P", 1, kParticles);
  b.assign("VX", {p}, b.at("EX", {b.at("IX", {p}), b.at("IY", {p})}));
  b.assign("VY", {p}, b.at("EY", {b.at("IX", {p}), b.at("IY", {p})}));
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K14 — 1-D Particle in Cell (the paper's Matched example, §7.1.1:
// "RX(k) = XX(k) - IR(k)").  Every index equals every other index.
CompiledProgram build_k14_pic_1d() {
  ProgramBuilder b("k14_pic1d");
  b.array("RX", {1000});
  b.input_array("XX", {1000});
  b.input_array("IR", {1000});
  const Ex k = b.var("K");
  b.begin_loop("K", 1, 1000);
  b.assign("RX", {k}, b.at("XX", {k}) - b.at("IR", {k}));
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K15 — Casual Fortran (2-D flow limiter fragment).  The classic LFK 15
// picks between a damped and an undamped stencil update per cell; in SA
// form both arms write the same VS cell (legal: the arms are mutually
// exclusive, the DSA merge).  The guard reads input data — control is
// replicated, so guard reads are not modeled memory traffic — while the
// per-arm stencil reads make the access *density* data-dependent.
// Cyclic class like K18/K23: +/-1 row/column offsets revisited by the
// outer sweep.
CompiledProgram build_k15_flow_limiter(std::int64_t n) {
  SAP_CHECK(n >= 3, "flow limiter needs n >= 3");
  const std::int64_t kN = n;
  ProgramBuilder b("k15_flow_limiter");
  for (const char* name : {"VG", "VH", "VF"}) {
    b.input_array(name, {kN + 1, 7});
  }
  b.array("VS", {kN + 1, 7});
  b.scalar("R", 0.125);
  const Ex j = b.var("J");
  const Ex k = b.var("K");
  b.begin_loop("J", 2, 6);
  b.begin_loop("K", 2, ex_num(static_cast<double>(kN)));
  b.begin_if(ex_and(ex_gt(b.at("VH", {k, j}), b.at("VG", {k, j})),
                    ex_gt(b.at("VF", {k, j}), b.var("R"))));
  b.assign("VS", {k, j},
           b.at("VH", {k, j}) -
               b.var("R") * (b.at("VH", {k, j + 1}) - b.at("VH", {k, j - 1})));
  b.begin_else();
  b.assign("VS", {k, j},
           b.at("VG", {k, j}) +
               b.var("R") * (b.at("VG", {k + 1, j}) - b.at("VG", {k - 1, j})));
  b.end_if();
  b.end_loop();
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K16 — Monte Carlo Minimum Search.  The classic LFK 16 hunts for a
// minimum with data-dependent branches; the SA transcription carries the
// running minimum as a recurrence whose two producers sit in opposite IF
// arms and write the same cell.  Skewed class: the surviving read is
// XM(K-1), one element behind the write.
CompiledProgram build_k16_min_search(std::int64_t n) {
  SAP_CHECK(n >= 2, "min search needs n >= 2");
  ProgramBuilder b("k16_min_search");
  b.input_array("X", {n});
  b.prefix_array("XM", {n}, 1);  // XM(1) seeds the recurrence
  const Ex k = b.var("K");
  b.begin_loop("K", 2, ex_num(static_cast<double>(n)));
  b.begin_if(ex_lt(b.at("X", {k}), b.at("XM", {k - 1})));
  b.assign("XM", {k}, b.at("X", {k}));
  b.begin_else();
  b.assign("XM", {k}, b.at("XM", {k - 1}));
  b.end_if();
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K18 — 2-D Explicit Hydrodynamics Fragment (paper §7.1.3 Figure 3 and
// §7.2 Figure 5).  Cyclic + skewed: row-major (j,k) arrays are walked with
// j inner (stride 7) while the k sweep revisits the same page set.
// SA deviations: the in-place zr/zz update of the third loop writes fresh
// output arrays ZROUT/ZZOUT, and the second/third loops shrink the
// interior by one cell (k 2..5, j 3..n-1) because the classic driver
// pre-initializes the whole ZA/ZB arrays while SA only defines the cells
// loop 1 produces.
CompiledProgram build_k18_explicit_hydro_2d(std::int64_t n) {
  SAP_CHECK(n >= 8, "2-D hydro needs n >= 8");
  const std::int64_t kN = n;  // j extent; k spans 7 columns as in the paper
  ProgramBuilder b("k18_hydro2d");
  for (const char* name : {"ZP", "ZQ", "ZR", "ZM", "ZZ", "ZU0", "ZV0"}) {
    b.input_array(name, {kN + 1, 7});
  }
  for (const char* name : {"ZA", "ZB", "ZU", "ZV", "ZROUT", "ZZOUT"}) {
    b.array(name, {kN + 1, 7});
  }
  b.scalar("S", 0.5).scalar("T", 0.25);
  const Ex j = b.var("J");
  const Ex k = b.var("K");

  b.begin_loop("K", 2, 6);
  b.begin_loop("J", 2, ex_num(static_cast<double>(kN)));
  b.assign("ZA", {j, k},
           (b.at("ZP", {j - 1, k + 1}) + b.at("ZQ", {j - 1, k}) -
            b.at("ZP", {j - 1, k}) - b.at("ZQ", {j - 1, k})) *
               (b.at("ZR", {j, k}) + b.at("ZR", {j - 1, k})) /
               (b.at("ZM", {j - 1, k}) + b.at("ZM", {j - 1, k + 1})));
  b.assign("ZB", {j, k},
           (b.at("ZP", {j - 1, k}) + b.at("ZQ", {j - 1, k}) -
            b.at("ZP", {j, k}) - b.at("ZQ", {j, k})) *
               (b.at("ZR", {j, k}) + b.at("ZR", {j, k - 1})) /
               (b.at("ZM", {j, k}) + b.at("ZM", {j - 1, k})));
  b.end_loop();
  b.end_loop();

  b.begin_loop("K", 2, 5);
  b.begin_loop("J", 3, ex_num(static_cast<double>(kN - 1)));
  b.assign("ZU", {j, k},
           b.at("ZU0", {j, k}) +
               b.var("S") * (b.at("ZA", {j, k}) *
                                 (b.at("ZZ", {j, k}) - b.at("ZZ", {j + 1, k})) -
                             b.at("ZA", {j - 1, k}) *
                                 (b.at("ZZ", {j, k}) - b.at("ZZ", {j - 1, k})) -
                             b.at("ZB", {j, k}) *
                                 (b.at("ZZ", {j, k}) - b.at("ZZ", {j, k - 1})) +
                             b.at("ZB", {j, k + 1}) *
                                 (b.at("ZZ", {j, k}) - b.at("ZZ", {j, k + 1}))));
  b.assign("ZV", {j, k},
           b.at("ZV0", {j, k}) +
               b.var("S") * (b.at("ZA", {j, k}) *
                                 (b.at("ZR", {j, k}) - b.at("ZR", {j + 1, k})) -
                             b.at("ZA", {j - 1, k}) *
                                 (b.at("ZR", {j, k}) - b.at("ZR", {j - 1, k})) -
                             b.at("ZB", {j, k}) *
                                 (b.at("ZR", {j, k}) - b.at("ZR", {j, k - 1})) +
                             b.at("ZB", {j, k + 1}) *
                                 (b.at("ZR", {j, k}) - b.at("ZR", {j, k + 1}))));
  b.end_loop();
  b.end_loop();

  b.begin_loop("K", 2, 5);
  b.begin_loop("J", 3, ex_num(static_cast<double>(kN - 1)));
  b.assign("ZROUT", {j, k},
           b.at("ZR", {j, k}) + b.var("T") * b.at("ZU", {j, k}));
  b.assign("ZZOUT", {j, k},
           b.at("ZZ", {j, k}) + b.var("T") * b.at("ZV", {j, k}));
  b.end_loop();
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K21 — Matrix Product.  The CX(k,j) column walk strides a full row per
// accumulation step; with the paper's 8-frame cache the read window
// thrashes (random-like), an instructive contrast to blocked multiply.
CompiledProgram build_k21_matmul(std::int64_t dim) {
  SAP_CHECK(dim >= 2, "matmul needs dim >= 2");
  const std::int64_t kDim = dim;
  ProgramBuilder b("k21_matmul");
  b.array("PX", {kDim, kDim});
  b.input_array("VY", {kDim, kDim});
  b.input_array("CX", {kDim, kDim});
  const Ex i = b.var("I");
  const Ex j = b.var("J");
  const Ex k = b.var("K");
  b.begin_loop("J", 1, ex_num(static_cast<double>(kDim)));
  b.begin_loop("I", 1, ex_num(static_cast<double>(kDim)));
  b.begin_loop("K", 1, ex_num(static_cast<double>(kDim)));
  b.assign("PX", {i, j},
           b.at("PX", {i, j}) + b.at("VY", {i, k}) * b.at("CX", {k, j}));
  b.end_loop();
  b.end_loop();
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K23 — 2-D Implicit Hydrodynamics.  SA deviation: the relaxation update
// writes ZAOUT instead of updating ZA in place.  A 2-D stencil with +/- 1
// row/column offsets: cyclic + skewed like K18.
CompiledProgram build_k23_implicit_hydro_2d(std::int64_t n) {
  SAP_CHECK(n >= 3, "implicit hydro needs n >= 3");
  const std::int64_t kN = n;
  ProgramBuilder b("k23_implicit_hydro2d");
  for (const char* name : {"ZA", "ZR", "ZB", "ZU", "ZV", "ZZ"}) {
    b.input_array(name, {kN + 1, 7});
  }
  b.array("ZAOUT", {kN + 1, 7});
  const Ex j = b.var("J");
  const Ex k = b.var("K");
  b.begin_loop("J", 2, 6);
  b.begin_loop("K", 2, ex_num(static_cast<double>(kN)));
  b.assign("ZAOUT", {k, j},
           b.at("ZA", {k, j}) +
               0.175 * (b.at("ZA", {k, j + 1}) * b.at("ZR", {k, j}) +
                        b.at("ZA", {k, j - 1}) * b.at("ZB", {k, j}) +
                        b.at("ZA", {k + 1, j}) * b.at("ZU", {k, j}) +
                        b.at("ZA", {k - 1, j}) * b.at("ZV", {k, j}) +
                        b.at("ZZ", {k, j}) - b.at("ZA", {k, j})));
  b.end_loop();
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------
// K24 — Find Location of First Minimum.  The classic LFK 24 computes the
// index of the smallest element; in SA form the running (value, position)
// pair is a pair of recurrences, with the position carried by a SELECT
// whose untaken arm is never read (the evaluator's lazy branch).
// Skewed class: XM(K-1)/LOC(K-1) trail the writes by one element.
CompiledProgram build_k24_first_min(std::int64_t n) {
  SAP_CHECK(n >= 2, "first-min needs n >= 2");
  ProgramBuilder b("k24_first_min");
  b.input_array("X", {n});
  b.prefix_array("XM", {n}, 1);
  b.prefix_array("LOC", {n}, 1);
  const Ex k = b.var("K");
  b.begin_loop("K", 2, ex_num(static_cast<double>(n)));
  b.assign("XM", {k}, ex_min(b.at("X", {k}), b.at("XM", {k - 1})));
  b.assign("LOC", {k}, ex_select(ex_lt(b.at("X", {k}), b.at("XM", {k - 1})),
                                 k, b.at("LOC", {k - 1})));
  b.end_loop();
  return b.compile();
}

// --------------------------------------------------------------------------

const std::vector<KernelSpec>& livermore_kernels() {
  static const std::vector<KernelSpec> kernels = [] {
    std::vector<KernelSpec> out;
    out.push_back({1, "k01_hydro", "Hydro Fragment", AccessClass::kSkewed,
                   true, [] { return build_k1_hydro(); }});
    out.push_back({2, "k02_iccg", "Incomplete Cholesky-Conjugate Gradient",
                   AccessClass::kCyclic, true, [] { return build_k2_iccg(); }});
    out.push_back({3, "k03_inner_product", "Inner Product",
                   AccessClass::kCyclic, false, build_k3_inner_product});
    out.push_back({5, "k05_tridiag", "Tri-Diagonal Elimination",
                   AccessClass::kSkewed, true, build_k5_tridiag});
    out.push_back({6, "k06_glr", "General Linear Recurrence Equations",
                   AccessClass::kRandom, true,
                   [] { return build_k6_general_linear_recurrence(); }});
    out.push_back({7, "k07_eos", "Equation of State Fragment",
                   AccessClass::kSkewed, true, build_k7_equation_of_state});
    out.push_back({8, "k08_adi", "A.D.I. Integration", AccessClass::kRandom,
                   true, [] { return build_k8_adi(); }});
    out.push_back({9, "k09_integrate_predictors", "Integrate Predictors",
                   AccessClass::kCyclic, false,
                   build_k9_integrate_predictors});
    out.push_back({10, "k10_diff_predictors", "Difference Predictors",
                   AccessClass::kSkewed, false,
                   build_k10_difference_predictors});
    out.push_back({11, "k11_first_sum", "First Sum", AccessClass::kSkewed,
                   true, build_k11_first_sum});
    out.push_back({12, "k12_first_diff", "First Difference",
                   AccessClass::kSkewed, true, build_k12_first_diff});
    out.push_back({13, "k13_pic2d", "2-D Particle in Cell (gather)",
                   AccessClass::kRandom, false, build_k13_pic_2d});
    out.push_back({14, "k14_pic1d", "1-D Particle in Cell (fragment)",
                   AccessClass::kMatched, true, build_k14_pic_1d});
    out.push_back({15, "k15_flow_limiter", "Casual Fortran (2-D flow limiter)",
                   AccessClass::kCyclic, false,
                   [] { return build_k15_flow_limiter(); }});
    out.push_back({16, "k16_min_search", "Monte Carlo Minimum Search",
                   AccessClass::kSkewed, false,
                   [] { return build_k16_min_search(); }});
    out.push_back({18, "k18_hydro2d", "2-D Explicit Hydrodynamics Fragment",
                   AccessClass::kCyclic, true, [] { return build_k18_explicit_hydro_2d(); }});
    out.push_back({21, "k21_matmul", "Matrix Product", AccessClass::kRandom,
                   false, [] { return build_k21_matmul(); }});
    out.push_back({23, "k23_implicit_hydro2d", "2-D Implicit Hydrodynamics",
                   AccessClass::kCyclic, false, [] { return build_k23_implicit_hydro_2d(); }});
    out.push_back({24, "k24_first_min", "First Minimum Location",
                   AccessClass::kSkewed, false,
                   [] { return build_k24_first_min(); }});
    return out;
  }();
  return kernels;
}

const KernelSpec& kernel_by_id(std::string_view id) {
  for (const auto& spec : livermore_kernels()) {
    if (spec.id == id) return spec;
  }
  throw Error("unknown kernel '" + std::string(id) + "'");
}

CompiledProgram build_kernel(std::string_view id) {
  return kernel_by_id(id).build();
}

}  // namespace sap
