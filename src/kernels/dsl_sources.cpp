#include "kernels/dsl_sources.hpp"

#include "support/error.hpp"

namespace sap {

namespace {

constexpr std::string_view kHydroSource = R"(
PROGRAM k01_hydro
ARRAY X(1001) INIT NONE
ARRAY Y(1001) INIT ALL
ARRAY ZX(1012) INIT ALL
SCALAR Q = 0.5
SCALAR R = 0.25
SCALAR T = 0.125
DO k = 1, 400
  X(k) = Q + Y(k) * (R * ZX(k+10) + T * ZX(k+11))
END DO
END PROGRAM
)";

constexpr std::string_view kIccgSource = R"(
PROGRAM k02_iccg
ARRAY X(1022) INIT PREFIX 512
ARRAY V(1022) INIT ALL
SCALAR II = 512
SCALAR IPNT = 0
SCALAR IPNTP = 0
SCALAR I = 0
DO L = 1, 8
  IPNT = IPNTP
  IPNTP = IPNTP + II
  II = IDIV(II, 2)
  I = IPNTP
  DO K = IPNT + 2, IPNTP, 2
    I = I + 1
    X(I) = X(K) - V(K) * X(K-1) - V(K+1) * X(K+1)
  END DO
END DO
END PROGRAM
)";

constexpr std::string_view kTridiagSource = R"(
PROGRAM k05_tridiag
ARRAY X(1000) INIT PREFIX 1
ARRAY Y(1000) INIT ALL
ARRAY Z(1000) INIT ALL
DO I = 2, 1000
  X(I) = Z(I) * (Y(I) - X(I-1))
END DO
END PROGRAM
)";

constexpr std::string_view kGlrSource = R"(
PROGRAM k06_glr
ARRAY W(100) INIT PREFIX 1
ARRAY B(100, 100) INIT ALL
DO I = 2, 100
  DO K = 1, I - 1
    W(I) = W(I) + B(K, I) * W(I-K)
  END DO
END DO
END PROGRAM
)";

constexpr std::string_view kEosSource = R"(
PROGRAM k07_eos
ARRAY X(994) INIT NONE
ARRAY U(1001) INIT ALL
ARRAY Y(1001) INIT ALL
ARRAY Z(1001) INIT ALL
SCALAR Q = 0.5
SCALAR R = 0.25
SCALAR T = 0.125
DO K = 1, 994
  X(K) = U(K) + R * (Z(K) + R * Y(K)) + T * (U(K+3) + R * (U(K+2) + R * U(K+1)) + T * (U(K+6) + Q * (U(K+5) + Q * U(K+4))))
END DO
END PROGRAM
)";

constexpr std::string_view kFirstSumSource = R"(
PROGRAM k11_first_sum
ARRAY X(1000) INIT PREFIX 1
ARRAY Y(1000) INIT ALL
DO K = 2, 1000
  X(K) = X(K-1) + Y(K)
END DO
END PROGRAM
)";

constexpr std::string_view kFirstDiffSource = R"(
PROGRAM k12_first_diff
ARRAY X(999) INIT NONE
ARRAY Y(1000) INIT ALL
DO K = 1, 999
  X(K) = Y(K+1) - Y(K)
END DO
END PROGRAM
)";

constexpr std::string_view kPic1dSource = R"(
PROGRAM k14_pic1d
ARRAY RX(1000) INIT NONE
ARRAY XX(1000) INIT ALL
ARRAY IR(1000) INIT ALL
DO K = 1, 1000
  RX(K) = XX(K) - IR(K)
END DO
END PROGRAM
)";

constexpr std::string_view kAdiSource = R"(
PROGRAM k08_adi
ARRAY U1(4, 502) INIT ALL
ARRAY U2(4, 502) INIT ALL
ARRAY U3(4, 502) INIT ALL
ARRAY U1N(4, 502) INIT NONE
ARRAY U2N(4, 502) INIT NONE
ARRAY U3N(4, 502) INIT NONE
ARRAY DU1(2, 502) INIT NONE
ARRAY DU2(2, 502) INIT NONE
ARRAY DU3(2, 502) INIT NONE
SCALAR A11 = 0.5
SCALAR A12 = 0.33
SCALAR A13 = 0.25
SCALAR A21 = 0.2
SCALAR A22 = 0.16
SCALAR A23 = 0.14
SCALAR A31 = 0.12
SCALAR A32 = 0.11
SCALAR A33 = 0.1
SCALAR SIG = 0.05
DO KX = 2, 3
  DO KY = 2, 500
    DU1(KX - 1, KY) = U1(KX, KY + 1) - U1(KX, KY - 1)
    DU2(KX - 1, KY) = U2(KX, KY + 1) - U2(KX, KY - 1)
    DU3(KX - 1, KY) = U3(KX, KY + 1) - U3(KX, KY - 1)
    U1N(KX, KY) = U1(KX, KY) + A11 * DU1(KX - 1, KY) + A12 * DU2(KX - 1, KY) + A13 * DU3(KX - 1, KY) + SIG * (U1(KX + 1, KY) - 2 * U1(KX, KY) + U1(KX - 1, KY))
    U2N(KX, KY) = U2(KX, KY) + A21 * DU1(KX - 1, KY) + A22 * DU2(KX - 1, KY) + A23 * DU3(KX - 1, KY) + SIG * (U2(KX + 1, KY) - 2 * U2(KX, KY) + U2(KX - 1, KY))
    U3N(KX, KY) = U3(KX, KY) + A31 * DU1(KX - 1, KY) + A32 * DU2(KX - 1, KY) + A33 * DU3(KX - 1, KY) + SIG * (U3(KX + 1, KY) - 2 * U3(KX, KY) + U3(KX - 1, KY))
  END DO
END DO
END PROGRAM
)";

constexpr std::string_view kHydro2dSource = R"(
PROGRAM k18_hydro2d
ARRAY ZP(101, 7) INIT ALL
ARRAY ZQ(101, 7) INIT ALL
ARRAY ZR(101, 7) INIT ALL
ARRAY ZM(101, 7) INIT ALL
ARRAY ZZ(101, 7) INIT ALL
ARRAY ZU0(101, 7) INIT ALL
ARRAY ZV0(101, 7) INIT ALL
ARRAY ZA(101, 7) INIT NONE
ARRAY ZB(101, 7) INIT NONE
ARRAY ZU(101, 7) INIT NONE
ARRAY ZV(101, 7) INIT NONE
ARRAY ZROUT(101, 7) INIT NONE
ARRAY ZZOUT(101, 7) INIT NONE
SCALAR S = 0.5
SCALAR T = 0.25
DO K = 2, 6
  DO J = 2, 100
    ZA(J, K) = (ZP(J - 1, K + 1) + ZQ(J - 1, K) - ZP(J - 1, K) - ZQ(J - 1, K)) * (ZR(J, K) + ZR(J - 1, K)) / (ZM(J - 1, K) + ZM(J - 1, K + 1))
    ZB(J, K) = (ZP(J - 1, K) + ZQ(J - 1, K) - ZP(J, K) - ZQ(J, K)) * (ZR(J, K) + ZR(J, K - 1)) / (ZM(J, K) + ZM(J - 1, K))
  END DO
END DO
DO K = 2, 5
  DO J = 3, 99
    ZU(J, K) = ZU0(J, K) + S * (ZA(J, K) * (ZZ(J, K) - ZZ(J + 1, K)) - ZA(J - 1, K) * (ZZ(J, K) - ZZ(J - 1, K)) - ZB(J, K) * (ZZ(J, K) - ZZ(J, K - 1)) + ZB(J, K + 1) * (ZZ(J, K) - ZZ(J, K + 1)))
    ZV(J, K) = ZV0(J, K) + S * (ZA(J, K) * (ZR(J, K) - ZR(J + 1, K)) - ZA(J - 1, K) * (ZR(J, K) - ZR(J - 1, K)) - ZB(J, K) * (ZR(J, K) - ZR(J, K - 1)) + ZB(J, K + 1) * (ZR(J, K) - ZR(J, K + 1)))
  END DO
END DO
DO K = 2, 5
  DO J = 3, 99
    ZROUT(J, K) = ZR(J, K) + T * ZU(J, K)
    ZZOUT(J, K) = ZZ(J, K) + T * ZV(J, K)
  END DO
END DO
END PROGRAM
)";

constexpr std::string_view kMatmulSource = R"(
PROGRAM k21_matmul
ARRAY PX(32, 32) INIT NONE
ARRAY VY(32, 32) INIT ALL
ARRAY CX(32, 32) INIT ALL
DO J = 1, 32
  DO I = 1, 32
    DO K = 1, 32
      PX(I, J) = PX(I, J) + VY(I, K) * CX(K, J)
    END DO
  END DO
END DO
END PROGRAM
)";

constexpr std::string_view kFlowLimiterSource = R"(
PROGRAM k15_flow_limiter
ARRAY VG(401, 7) INIT ALL
ARRAY VH(401, 7) INIT ALL
ARRAY VF(401, 7) INIT ALL
ARRAY VS(401, 7) INIT NONE
SCALAR R = 0.125
DO J = 2, 6
  DO K = 2, 400
    IF (AND(VH(K, J) > VG(K, J), VF(K, J) > R)) THEN
      VS(K, J) = VH(K, J) - R * (VH(K, J + 1) - VH(K, J - 1))
    ELSE
      VS(K, J) = VG(K, J) + R * (VG(K + 1, J) - VG(K - 1, J))
    END IF
  END DO
END DO
END PROGRAM
)";

constexpr std::string_view kMinSearchSource = R"(
PROGRAM k16_min_search
ARRAY X(1000) INIT ALL
ARRAY XM(1000) INIT PREFIX 1
DO K = 2, 1000
  IF (X(K) < XM(K - 1)) THEN
    XM(K) = X(K)
  ELSE
    XM(K) = XM(K - 1)
  END IF
END DO
END PROGRAM
)";

constexpr std::string_view kFirstMinSource = R"(
PROGRAM k24_first_min
ARRAY X(1000) INIT ALL
ARRAY XM(1000) INIT PREFIX 1
ARRAY LOC(1000) INIT PREFIX 1
DO K = 2, 1000
  XM(K) = MIN(X(K), XM(K - 1))
  LOC(K) = SELECT(X(K) < XM(K - 1), K, LOC(K - 1))
END DO
END PROGRAM
)";

constexpr std::string_view kImplicitHydroSource = R"(
PROGRAM k23_implicit_hydro2d
ARRAY ZA(401, 7) INIT ALL
ARRAY ZR(401, 7) INIT ALL
ARRAY ZB(401, 7) INIT ALL
ARRAY ZU(401, 7) INIT ALL
ARRAY ZV(401, 7) INIT ALL
ARRAY ZZ(401, 7) INIT ALL
ARRAY ZAOUT(401, 7) INIT NONE
DO J = 2, 6
  DO K = 2, 400
    ZAOUT(K, J) = ZA(K, J) + 0.175 * (ZA(K, J + 1) * ZR(K, J) + ZA(K, J - 1) * ZB(K, J) + ZA(K + 1, J) * ZU(K, J) + ZA(K - 1, J) * ZV(K, J) + ZZ(K, J) - ZA(K, J))
  END DO
END DO
END PROGRAM
)";

const std::vector<DslKernelSource>& sources() {
  static const std::vector<DslKernelSource> list = {
      {"k01_hydro", kHydroSource},
      {"k02_iccg", kIccgSource},
      {"k05_tridiag", kTridiagSource},
      {"k06_glr", kGlrSource},
      {"k07_eos", kEosSource},
      {"k08_adi", kAdiSource},
      {"k11_first_sum", kFirstSumSource},
      {"k12_first_diff", kFirstDiffSource},
      {"k14_pic1d", kPic1dSource},
      {"k15_flow_limiter", kFlowLimiterSource},
      {"k16_min_search", kMinSearchSource},
      {"k18_hydro2d", kHydro2dSource},
      {"k21_matmul", kMatmulSource},
      {"k23_implicit_hydro2d", kImplicitHydroSource},
      {"k24_first_min", kFirstMinSource},
  };
  return list;
}

}  // namespace

const std::vector<DslKernelSource>& dsl_kernel_sources() { return sources(); }

std::string_view dsl_source_for(std::string_view id) {
  for (const auto& s : sources()) {
    if (s.id == id) return s.source;
  }
  throw Error("kernel '" + std::string(id) + "' has no DSL source");
}

}  // namespace sap
