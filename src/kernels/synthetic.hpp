// Synthetic workload generators.
//
// Parameterized pure-pattern programs, one per access class, used by the
// property tests ("matched implies 0% remote for any size/skew"), the
// ablation benches, and the conversion-tool example (a deliberately
// non-single-assignment time-stepping loop).
#pragma once

#include <cstdint>

#include "core/simulator.hpp"
#include "frontend/ast.hpp"

namespace sap {

/// Class 1 — Matched: A(k) = B(k) + C(k).
CompiledProgram make_matched(std::int64_t n);

/// Class 2 — Skewed: A(k) = B(k + skew) + C(k).  skew may be negative.
CompiledProgram make_skewed(std::int64_t n, std::int64_t skew);

/// Class 3 — Cyclic: A(k) = B(rate*k) + B(rate*k - rate + 1): the read
/// index advances `rate` times faster than the write index (rate >= 2).
CompiledProgram make_cyclic(std::int64_t n, std::int64_t rate);

/// Class 4 — Random: A(k) = B(P(k)) where P is a random permutation of
/// 1..n (the paper's "permutation lookups").
CompiledProgram make_random_permutation(std::int64_t n, std::uint64_t seed);

/// Reduction into one cell (owner-computes serializes it on one PE).
CompiledProgram make_dot_product(std::int64_t n);

/// 5-point 2-D stencil: OUT(i,j) from IN(i +/- 1, j +/- 1 cross).
CompiledProgram make_stencil_2d(std::int64_t rows, std::int64_t cols);

/// NOT single assignment: rewrites A every time step.  Input for the
/// conversion tool (REINIT insertion); running it directly traps with
/// DoubleWriteError on step 2.
Program make_nonsa_timestep(std::int64_t n, std::int64_t steps);

/// NOT single assignment: two sequential loops both writing A.  Input for
/// the conversion tool (array versioning).
Program make_nonsa_sequential_overwrite(std::int64_t n);

}  // namespace sap
