// Synthetic workload generators.
//
// Parameterized pure-pattern programs, one per access class, used by the
// property tests ("matched implies 0% remote for any size/skew"), the
// ablation benches, and the conversion-tool example (a deliberately
// non-single-assignment time-stepping loop).
#pragma once

#include <cstdint>

#include "core/simulator.hpp"
#include "frontend/ast.hpp"

namespace sap {

/// Class 1 — Matched: A(k) = B(k) + C(k).
CompiledProgram make_matched(std::int64_t n);

/// Class 2 — Skewed: A(k) = B(k + skew) + C(k).  skew may be negative.
CompiledProgram make_skewed(std::int64_t n, std::int64_t skew);

/// Class 3 — Cyclic: A(k) = B(rate*k) + B(rate*k - rate + 1): the read
/// index advances `rate` times faster than the write index (rate >= 2).
CompiledProgram make_cyclic(std::int64_t n, std::int64_t rate);

/// Class 4 — Random: A(k) = B(P(k)) where P is a random permutation of
/// 1..n (the paper's "permutation lookups").
CompiledProgram make_random_permutation(std::int64_t n, std::uint64_t seed);

/// Reduction into one cell (owner-computes serializes it on one PE).
CompiledProgram make_dot_product(std::int64_t n);

/// 5-point 2-D stencil: OUT(i,j) from IN(i +/- 1, j +/- 1 cross).
CompiledProgram make_stencil_2d(std::int64_t rows, std::int64_t cols);

/// Mixed-shape workload where no uniform partition scheme wins (DESIGN.md
/// §14): one loop nest with two statements over disjoint array groups of
/// opposing shape.  {A, D} is a skew — A(k) = D(k + skew) — and {C, B} is
/// a rate-2 read C(k) = B(2k), aligned under block (B has exactly twice
/// C's pages) but decorrelated under modulo.  Choose `skew` a whole
/// multiple of num_pes * page_size so the skew is invisible under modulo
/// (read owner == exec PE) but shifts owners under block/block-cyclic:
/// then the heterogeneous assignment {C, B} -> block with {A, D} on
/// modulo reaches exactly 0% remote while every uniform scheme leaves one
/// statement remote.  When the advisor may also move the page size (the
/// beam's doubling walk), pick skew as a multiple of num_pes * max_ps and
/// n a power-of-two multiple of it so both properties hold at every page
/// size the search can visit.
CompiledProgram make_mixed_skew_vs_rate(std::int64_t n, std::int64_t skew);

/// Second mixed-shape workload: three disjoint groups in one nest —
/// A(k) = D(k + skew) as above, C(k) = B(4k) + B(4k-3) (rate-4, aligned
/// only under block), and a matched pair E(k) = F(k) that is local under
/// every scheme (the assignment search must leave it at the default
/// rather than waste moves).  The same skew/size guidance applies;
/// heterogeneity ({C, B} on block) again reaches 0% remote while every
/// uniform scheme pays on some statement.
CompiledProgram make_mixed_multigroup(std::int64_t n, std::int64_t skew);

/// NOT single assignment: rewrites A every time step.  Input for the
/// conversion tool (REINIT insertion); running it directly traps with
/// DoubleWriteError on step 2.
Program make_nonsa_timestep(std::int64_t n, std::int64_t steps);

/// NOT single assignment: two sequential loops both writing A.  Input for
/// the conversion tool (array versioning).
Program make_nonsa_sequential_overwrite(std::int64_t n);

}  // namespace sap
