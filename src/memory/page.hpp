// Page arithmetic.
//
// §2: "Data partitioning is accomplished by segmenting each array into
// pages of some fixed (perhaps parameterized) size."  Pages are numbered
// per-array starting at 0; a (array, page) pair is the unit of ownership,
// of remote fetches and of caching.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace sap {

/// Index of an array in the registry.
using ArrayId = std::uint32_t;

/// Index of a page within one array's linear address space.
using PageIndex = std::int64_t;

/// Globally unique page handle: (which array, which page of it).
struct PageId {
  ArrayId array = 0;
  PageIndex page = 0;

  friend bool operator==(const PageId&, const PageId&) = default;
  friend auto operator<=>(const PageId&, const PageId&) = default;

  std::string to_string() const;
};

/// Page of linear element index `linear` given `page_size` elements/page.
constexpr PageIndex page_of(std::int64_t linear,
                            std::int64_t page_size) noexcept {
  return linear / page_size;
}

/// Number of pages needed to hold `element_count` elements
/// (the final page may be partial, §4).
constexpr std::int64_t page_count_for(std::int64_t element_count,
                                      std::int64_t page_size) noexcept {
  return (element_count + page_size - 1) / page_size;
}

/// First linear element of a page.
constexpr std::int64_t page_first_element(PageIndex page,
                                          std::int64_t page_size) noexcept {
  return page * page_size;
}

/// Number of valid elements on `page` for an array of `element_count`
/// elements (page_size except possibly the last page).
constexpr std::int64_t page_valid_elements(PageIndex page,
                                           std::int64_t element_count,
                                           std::int64_t page_size) noexcept {
  const std::int64_t first = page_first_element(page, page_size);
  const std::int64_t remaining = element_count - first;
  return remaining < page_size ? remaining : page_size;
}

}  // namespace sap

template <>
struct std::hash<sap::PageId> {
  std::size_t operator()(const sap::PageId& id) const noexcept {
    // Page counts are < 2^32 in practice; fold array id into the top bits.
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(id.array) << 40) ^
        static_cast<std::uint64_t>(id.page));
  }
};
