// Multi-dimensional array shapes with Fortran-style inclusive bounds and
// row-major linearization.
//
// The paper maps multidimensional arrays "to a linear address space through
// row-major ordering" (§7); the *last* index varies fastest.  Bounds default
// to 1-based like the Livermore Fortran sources, but any lower bound is
// allowed so kernels can be transcribed verbatim.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace sap {

/// One dimension: inclusive [lower, upper].
struct DimBound {
  std::int64_t lower = 1;
  std::int64_t upper = 1;

  std::int64_t extent() const noexcept { return upper - lower + 1; }
  friend bool operator==(const DimBound&, const DimBound&) = default;
};

/// Shape of an N-dimensional array (N >= 1).
class ArrayShape {
 public:
  /// 1-D, 1-based shape of the given size: bounds [1, size].
  static ArrayShape vector_1based(std::int64_t size);

  /// N-D, 1-based shape with the given extents.
  static ArrayShape of_extents(std::initializer_list<std::int64_t> extents);

  /// Fully general constructor.
  explicit ArrayShape(std::vector<DimBound> dims);

  std::size_t rank() const noexcept { return dims_.size(); }
  const std::vector<DimBound>& dims() const noexcept { return dims_; }

  /// Total number of elements.
  std::int64_t element_count() const noexcept { return element_count_; }

  /// Row-major linearization (last index fastest). Throws BoundsError if
  /// any index is out of range.
  std::int64_t linearize(const std::vector<std::int64_t>& indices) const;

  /// Linearization without bounds checks (hot path; caller has validated).
  std::int64_t linearize_unchecked(
      const std::vector<std::int64_t>& indices) const noexcept;

  /// Span variants of contains/linearize_unchecked for the bytecode
  /// interpreter's pre-bound read path: one pass, no vector, inline.
  bool contains_span(const std::int64_t* indices, std::size_t n) const
      noexcept {
    if (n != dims_.size()) return false;
    for (std::size_t d = 0; d < n; ++d) {
      if (indices[d] < dims_[d].lower || indices[d] > dims_[d].upper) {
        return false;
      }
    }
    return true;
  }
  std::int64_t linearize_span_unchecked(const std::int64_t* indices,
                                        std::size_t n) const noexcept {
    std::int64_t linear = 0;
    for (std::size_t d = 0; d < n; ++d) {
      linear += (indices[d] - dims_[d].lower) * strides_[d];
    }
    return linear;
  }

  /// Inverse of linearize: recovers per-dimension indices.
  std::vector<std::int64_t> delinearize(std::int64_t linear) const;

  /// True when each index lies within its dimension bound.
  bool contains(const std::vector<std::int64_t>& indices) const noexcept;

  /// Row-major stride of dimension d (elements skipped per unit step).
  std::int64_t stride(std::size_t d) const noexcept { return strides_[d]; }

  /// "A(1:10, 0:6)" style description for diagnostics.
  std::string to_string() const;

  friend bool operator==(const ArrayShape&, const ArrayShape&) = default;

 private:
  std::vector<DimBound> dims_;
  std::vector<std::int64_t> strides_;
  std::int64_t element_count_ = 0;
};

}  // namespace sap
