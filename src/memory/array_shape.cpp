#include "memory/array_shape.hpp"

#include <sstream>

#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

ArrayShape ArrayShape::vector_1based(std::int64_t size) {
  SAP_CHECK(size >= 1, "vector size must be positive");
  return ArrayShape({DimBound{1, size}});
}

ArrayShape ArrayShape::of_extents(std::initializer_list<std::int64_t> extents) {
  std::vector<DimBound> dims;
  dims.reserve(extents.size());
  for (std::int64_t e : extents) {
    SAP_CHECK(e >= 1, "extent must be positive");
    dims.push_back(DimBound{1, e});
  }
  return ArrayShape(std::move(dims));
}

ArrayShape::ArrayShape(std::vector<DimBound> dims) : dims_(std::move(dims)) {
  SAP_CHECK(!dims_.empty(), "array rank must be >= 1");
  for (const auto& d : dims_) {
    SAP_CHECK(d.upper >= d.lower, "dimension upper bound below lower bound");
  }
  // Row-major: last dimension has stride 1.
  strides_.assign(dims_.size(), 1);
  for (std::size_t d = dims_.size() - 1; d-- > 0;) {
    strides_[d] = strides_[d + 1] * dims_[d + 1].extent();
  }
  element_count_ = strides_[0] * dims_[0].extent();
}

std::int64_t ArrayShape::linearize(
    const std::vector<std::int64_t>& indices) const {
  if (indices.size() != dims_.size()) {
    throw BoundsError("rank mismatch: got " + std::to_string(indices.size()) +
                      " indices for " + to_string());
  }
  if (!contains(indices)) {
    std::ostringstream os;
    os << "index (";
    for (std::size_t d = 0; d < indices.size(); ++d) {
      if (d) os << ", ";
      os << indices[d];
    }
    os << ") out of bounds for " << to_string();
    throw BoundsError(os.str());
  }
  return linearize_unchecked(indices);
}

std::int64_t ArrayShape::linearize_unchecked(
    const std::vector<std::int64_t>& indices) const noexcept {
  std::int64_t linear = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    linear += (indices[d] - dims_[d].lower) * strides_[d];
  }
  return linear;
}

std::vector<std::int64_t> ArrayShape::delinearize(std::int64_t linear) const {
  SAP_CHECK(linear >= 0 && linear < element_count_,
            "linear index out of range");
  std::vector<std::int64_t> indices(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    indices[d] = dims_[d].lower + linear / strides_[d];
    linear %= strides_[d];
  }
  return indices;
}

bool ArrayShape::contains(
    const std::vector<std::int64_t>& indices) const noexcept {
  if (indices.size() != dims_.size()) return false;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (indices[d] < dims_[d].lower || indices[d] > dims_[d].upper) {
      return false;
    }
  }
  return true;
}

std::string ArrayShape::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (d) os << ", ";
    os << dims_[d].lower << ':' << dims_[d].upper;
  }
  os << ')';
  return os.str();
}

}  // namespace sap
