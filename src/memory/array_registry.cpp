#include "memory/array_registry.hpp"

#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

ArrayId ArrayRegistry::declare(std::string name, ArrayShape shape) {
  SAP_CHECK(!name.empty(), "array name must be non-empty");
  if (contains(name)) {
    throw SemanticError("array '" + name + "' declared twice");
  }
  const auto id = static_cast<ArrayId>(arrays_.size());
  arrays_.push_back(
      std::make_unique<SaArray>(id, std::move(name), std::move(shape)));
  return id;
}

SaArray& ArrayRegistry::at(ArrayId id) {
  SAP_CHECK(id < arrays_.size(), "array id out of range");
  return *arrays_[id];
}

const SaArray& ArrayRegistry::at(ArrayId id) const {
  SAP_CHECK(id < arrays_.size(), "array id out of range");
  return *arrays_[id];
}

SaArray& ArrayRegistry::by_name(std::string_view name) {
  for (auto& a : arrays_) {
    if (a->name() == name) return *a;
  }
  throw SemanticError("unknown array '" + std::string(name) + "'");
}

const SaArray& ArrayRegistry::by_name(std::string_view name) const {
  for (const auto& a : arrays_) {
    if (a->name() == name) return *a;
  }
  throw SemanticError("unknown array '" + std::string(name) + "'");
}

bool ArrayRegistry::contains(std::string_view name) const noexcept {
  for (const auto& a : arrays_) {
    if (a->name() == name) return true;
  }
  return false;
}

std::int64_t ArrayRegistry::total_elements() const noexcept {
  std::int64_t total = 0;
  for (const auto& a : arrays_) total += a->element_count();
  return total;
}

void ArrayRegistry::reinitialize_all() {
  for (auto& a : arrays_) a->reinitialize();
}

}  // namespace sap
