#include "memory/page.hpp"

namespace sap {

std::string PageId::to_string() const {
  return "page(" + std::to_string(array) + ", " + std::to_string(page) + ")";
}

}  // namespace sap
