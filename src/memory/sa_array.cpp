#include "memory/sa_array.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

SaArray::SaArray(ArrayId id, std::string name, ArrayShape shape)
    : id_(id),
      name_(std::move(name)),
      shape_(std::move(shape)),
      values_(static_cast<std::size_t>(shape_.element_count()), 0.0),
      defined_(static_cast<std::size_t>(shape_.element_count()), 0) {}

void SaArray::bounds_check(std::int64_t linear) const {
  if (linear < 0 || linear >= shape_.element_count()) {
    throw BoundsError("linear index " + std::to_string(linear) +
                      " out of range for " + name_ + shape_.to_string());
  }
}

bool SaArray::is_defined(std::int64_t linear) const {
  bounds_check(linear);
  return defined_[static_cast<std::size_t>(linear)] != 0;
}

std::vector<ReaderToken> SaArray::write(std::int64_t linear, double value) {
  bounds_check(linear);
  auto& flag = defined_[static_cast<std::size_t>(linear)];
  if (flag) throw DoubleWriteError(name_, linear);
  flag = 1;
  ++defined_count_;
  values_[static_cast<std::size_t>(linear)] = value;

  std::vector<ReaderToken> woken;
  auto it = std::find_if(queues_.begin(), queues_.end(),
                         [&](const auto& q) { return q.first == linear; });
  if (it != queues_.end()) {
    woken = std::move(it->second);
    queues_.erase(it);
  }
  return woken;
}

double SaArray::read(std::int64_t linear) const {
  bounds_check(linear);
  if (!defined_[static_cast<std::size_t>(linear)]) {
    throw UndefinedReadError(name_, linear);
  }
  return values_[static_cast<std::size_t>(linear)];
}

std::optional<double> SaArray::read_or_defer(std::int64_t linear,
                                             ReaderToken reader) {
  bounds_check(linear);
  if (defined_[static_cast<std::size_t>(linear)]) {
    return values_[static_cast<std::size_t>(linear)];
  }
  auto it = std::find_if(queues_.begin(), queues_.end(),
                         [&](const auto& q) { return q.first == linear; });
  if (it == queues_.end()) {
    queues_.emplace_back(linear, std::vector<ReaderToken>{reader});
  } else if (std::find(it->second.begin(), it->second.end(), reader) ==
             it->second.end()) {
    it->second.push_back(reader);
  }
  return std::nullopt;
}

void SaArray::initialize(std::int64_t linear, double value) {
  bounds_check(linear);
  auto& flag = defined_[static_cast<std::size_t>(linear)];
  SAP_CHECK(!flag, "initialize() may only target undefined cells");
  flag = 1;
  ++defined_count_;
  values_[static_cast<std::size_t>(linear)] = value;
}

void SaArray::initialize_all(double value) {
  for (std::int64_t i = 0; i < shape_.element_count(); ++i) {
    auto& flag = defined_[static_cast<std::size_t>(i)];
    if (!flag) {
      flag = 1;
      ++defined_count_;
    }
    values_[static_cast<std::size_t>(i)] = value;
  }
}

void SaArray::reinitialize() {
  std::fill(defined_.begin(), defined_.end(), std::uint8_t{0});
  std::fill(values_.begin(), values_.end(), 0.0);
  queues_.clear();
  defined_count_ = 0;
  ++generation_;
}

}  // namespace sap
