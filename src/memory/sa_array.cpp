#include "memory/sa_array.hpp"

#include <algorithm>
#include <atomic>

#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

namespace {

inline std::atomic_ref<std::uint8_t> flag_ref(const std::uint8_t& flag) {
  return std::atomic_ref<std::uint8_t>(const_cast<std::uint8_t&>(flag));
}

}  // namespace

SaArray::SaArray(ArrayId id, std::string name, ArrayShape shape)
    : id_(id),
      name_(std::move(name)),
      shape_(std::move(shape)),
      values_(static_cast<std::size_t>(shape_.element_count()), 0.0),
      defined_(static_cast<std::size_t>(shape_.element_count()), 0) {}

void SaArray::bounds_check(std::int64_t linear) const {
  if (linear < 0 || linear >= shape_.element_count()) {
    throw BoundsError("linear index " + std::to_string(linear) +
                      " out of range for " + name_ + shape_.to_string());
  }
}

bool SaArray::defined_at(std::int64_t linear) const noexcept {
  return flag_ref(defined_[static_cast<std::size_t>(linear)])
             .load(std::memory_order_acquire) != 0;
}

bool SaArray::is_defined(std::int64_t linear) const {
  bounds_check(linear);
  return defined_at(linear);
}

std::int64_t SaArray::defined_count() const noexcept {
  std::int64_t count = 0;
  for (std::int64_t i = 0; i < shape_.element_count(); ++i) {
    if (defined_at(i)) ++count;
  }
  return count;
}

std::vector<ReaderToken> SaArray::write(std::int64_t linear, double value) {
  bounds_check(linear);
  auto& flag = defined_[static_cast<std::size_t>(linear)];
  // Owner-computes guarantees a single writing shard per cell, so a relaxed
  // load suffices for the double-write trap (the racing case is impossible,
  // not merely unlikely).
  if (flag_ref(flag).load(std::memory_order_relaxed)) {
    throw DoubleWriteError(name_, linear);
  }
  values_[static_cast<std::size_t>(linear)] = value;
  // Publish: the store orders the value before the flag (seq_cst includes
  // release), so any reader that acquires the flag sees the value.
  flag_ref(flag).store(1, std::memory_order_seq_cst);

  // Wake any suspended readers.  The common case — nobody suspended on
  // this array — must stay lock-free, so the queue check is a racing load
  // gated by a store-buffering handshake: the writer orders
  // {flag store -> queued_cells_ load} and a deferring reader orders
  // {queued_cells_ increment -> flag re-check}, all four seq_cst, so the
  // single total order forbids both sides reading the old value (the
  // classic SB litmus): a token is either drained here or its reader saw
  // the flag and never parked.  The queue contents themselves stay behind
  // defer_mutex_.
  if (queued_cells_.load(std::memory_order_seq_cst) == 0) return {};

  std::vector<ReaderToken> woken;
  {
    const std::lock_guard<std::mutex> lock(defer_mutex_);
    auto it = std::find_if(queues_.begin(), queues_.end(),
                           [&](const auto& q) { return q.first == linear; });
    if (it != queues_.end()) {
      woken = std::move(it->second);
      queues_.erase(it);
      queued_cells_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  return woken;
}

double SaArray::read(std::int64_t linear) const {
  bounds_check(linear);
  if (!defined_at(linear)) {
    throw UndefinedReadError(name_, linear);
  }
  return values_[static_cast<std::size_t>(linear)];
}

std::optional<double> SaArray::read_or_defer(std::int64_t linear,
                                             ReaderToken reader) {
  bounds_check(linear);
  if (defined_at(linear)) {
    return values_[static_cast<std::size_t>(linear)];
  }
  const std::lock_guard<std::mutex> lock(defer_mutex_);
  auto it = std::find_if(queues_.begin(), queues_.end(),
                         [&](const auto& q) { return q.first == linear; });
  const bool fresh_cell = it == queues_.end();
  if (fresh_cell) {
    // Raise the writer-visible queue count *before* the final flag
    // re-check (see write() for the pairing seq_cst handshake).
    queued_cells_.fetch_add(1, std::memory_order_seq_cst);
  }
  if (flag_ref(defined_[static_cast<std::size_t>(linear)])
          .load(std::memory_order_seq_cst) != 0) {
    if (fresh_cell) queued_cells_.fetch_sub(1, std::memory_order_relaxed);
    return values_[static_cast<std::size_t>(linear)];
  }
  if (fresh_cell) {
    queues_.emplace_back(linear, std::vector<ReaderToken>{reader});
  } else if (std::find(it->second.begin(), it->second.end(), reader) ==
             it->second.end()) {
    it->second.push_back(reader);
  }
  return std::nullopt;
}

void SaArray::initialize(std::int64_t linear, double value) {
  bounds_check(linear);
  auto& flag = defined_[static_cast<std::size_t>(linear)];
  SAP_CHECK(!flag_ref(flag).load(std::memory_order_relaxed),
            "initialize() may only target undefined cells");
  values_[static_cast<std::size_t>(linear)] = value;
  flag_ref(flag).store(1, std::memory_order_release);
}

void SaArray::initialize_all(double value) {
  for (std::int64_t i = 0; i < shape_.element_count(); ++i) {
    values_[static_cast<std::size_t>(i)] = value;
    flag_ref(defined_[static_cast<std::size_t>(i)])
        .store(1, std::memory_order_release);
  }
}

void SaArray::reinitialize() {
  // Quiescent by protocol (§5 barrier); plain fills would be correct, but
  // the flag stores stay atomic so the happens-before edges the runtime
  // establishes through its scheduler mutex are visible to TSan as well.
  for (auto& flag : defined_) {
    flag_ref(flag).store(0, std::memory_order_relaxed);
  }
  std::fill(values_.begin(), values_.end(), 0.0);
  {
    const std::lock_guard<std::mutex> lock(defer_mutex_);
    queues_.clear();
    queued_cells_.store(0, std::memory_order_relaxed);
  }
  ++generation_;
}

}  // namespace sap
