// Registry of all arrays in a simulated program.
//
// The simulator stores arrays centrally; *ownership* of their pages is a
// pure function of the partition scheme (see src/partition).  This is the
// paper's abstract machine: what is measured is the categorical access
// distribution, which depends only on the ownership map and cache contents.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "memory/array_shape.hpp"
#include "memory/page.hpp"
#include "memory/sa_array.hpp"

namespace sap {

class ArrayRegistry {
 public:
  /// Declares a new array; names must be unique. Returns its id.
  ArrayId declare(std::string name, ArrayShape shape);

  std::size_t size() const noexcept { return arrays_.size(); }

  SaArray& at(ArrayId id);
  const SaArray& at(ArrayId id) const;

  /// Lookup by name; throws SemanticError when absent.
  SaArray& by_name(std::string_view name);
  const SaArray& by_name(std::string_view name) const;
  bool contains(std::string_view name) const noexcept;

  /// Sum of element counts over all arrays (memory footprint metric).
  std::int64_t total_elements() const noexcept;

  /// Resets every array to fully undefined, generation bumps included.
  void reinitialize_all();

  auto begin() const { return arrays_.begin(); }
  auto end() const { return arrays_.end(); }

 private:
  std::vector<std::unique_ptr<SaArray>> arrays_;
};

/// Memoized name -> array resolution for executor hot paths, keyed by the
/// *address* of the name string: AST nodes and bytecode read sites hand the
/// same string object to every read they issue, so one scan over a handful
/// of pointer-keyed entries replaces a string comparison per access.
/// Resolution still goes through ArrayRegistry::by_name on first use (same
/// SemanticError on unknown names).  Valid while the registry neither grows
/// nor destroys arrays — true for the span of one program execution, which
/// is exactly a cache instance's lifetime.
class ArrayNameCache {
 public:
  /// Unbound; call reset() before the first resolve().
  ArrayNameCache() = default;
  explicit ArrayNameCache(ArrayRegistry& registry) : registry_(&registry) {}

  /// Rebinds to a registry and forgets every entry (start of a run).
  void reset(ArrayRegistry& registry) {
    registry_ = &registry;
    entries_.clear();
  }

  SaArray& resolve(const std::string& name) {
    for (const auto& [key, array] : entries_) {
      if (key == &name) return *array;
    }
    SaArray& array = registry_->by_name(name);
    entries_.emplace_back(&name, &array);
    return array;
  }

 private:
  ArrayRegistry* registry_ = nullptr;
  std::vector<std::pair<const std::string*, SaArray*>> entries_;
};

}  // namespace sap
