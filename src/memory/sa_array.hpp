// Single-assignment (I-structure style) array storage.
//
// §3: "Each memory cell has two states — undefined or defined. If a cell is
// undefined, it may also have a queue of read requests associated with it.
// Hardware enforces the write-before-read requirement."  Writing a defined
// cell is a trap (DoubleWriteError).
//
// §5 adds controlled reuse: a *generation* counter models the host-processor
// re-initialization protocol.  Bumping the generation resets every cell to
// undefined; stale cached copies are invalidated by the machine layer.
//
// Concurrency (the sharded dataflow runtime, DESIGN.md §9): every cell has
// exactly one writing shard (owner-computes screens writes to the owner PE)
// but any shard may read it.  The defined flag is a release/acquire
// publication bit: the value is stored before the flag, so a reader that
// observes "defined" always reads the final value — the fast path of both
// probe and read is a single wait-free atomic load.  Only the deferred-read
// queue (the rare suspension path) takes the per-array mutex, with the
// classic recheck-under-lock handshake against the writer so no wakeup is
// ever lost.  The serial interpreters run the same code uncontended.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "memory/array_shape.hpp"
#include "memory/page.hpp"

namespace sap {

/// Identifier of a suspended reader, queued on an undefined cell.
/// The machine layer interprets it (PE id in the dataflow interpreter).
using ReaderToken = std::uint32_t;

/// Tagged write-once array of doubles.
class SaArray {
 public:
  SaArray(ArrayId id, std::string name, ArrayShape shape);

  SaArray(const SaArray&) = delete;
  SaArray& operator=(const SaArray&) = delete;

  ArrayId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  const ArrayShape& shape() const noexcept { return shape_; }
  std::int64_t element_count() const noexcept {
    return shape_.element_count();
  }

  /// Current re-initialization generation (starts at 0).
  std::uint64_t generation() const noexcept { return generation_; }

  bool is_defined(std::int64_t linear) const;

  /// Write-once store. Throws DoubleWriteError on a second write.
  /// Returns the queue of readers that were suspended on this cell
  /// (the caller re-arms them); the queue is cleared.
  std::vector<ReaderToken> write(std::int64_t linear, double value);

  /// Strict read: throws UndefinedReadError when the cell is undefined.
  double read(std::int64_t linear) const;

  /// Split-phase read: value if defined; otherwise queues `reader` on the
  /// cell and returns nullopt (I-structure deferred read).  Safe against a
  /// concurrent write of the same cell: either the value is returned, or
  /// the token is enqueued before the writer drains the queue.
  std::optional<double> read_or_defer(std::int64_t linear, ReaderToken reader);

  /// Pre-execution initialization (§3: "an array is either undefined or
  /// filled with initialization data").  Not a single-assignment write:
  /// it may only target undefined cells of a freshly (re)initialized array.
  void initialize(std::int64_t linear, double value);

  /// Fills the whole array with `value` as initialization data.
  void initialize_all(double value);

  /// §5 re-initialization: every cell back to undefined, generation bump.
  /// Any queued readers are dropped (the protocol guarantees quiescence).
  /// Callers must guarantee no concurrent access (the §5 protocol is a
  /// full barrier: every PE has requested, hence none is executing).
  void reinitialize();

  /// Number of defined cells (diagnostics/tests; O(element_count) scan so
  /// the write path never touches shared state beyond the cell itself).
  std::int64_t defined_count() const noexcept;

  /// Opaque memo slot for the Partitioner's per-array scheme resolution
  /// (partition/partitioner.hpp): a pointer into the resolving
  /// Partitioner's immutable resolution table, stored here so repeated
  /// ownership queries skip the name lookup.  Atomic because the sharded
  /// runtime's trace producer and shard workers may race on the first
  /// touch; resolution is deterministic, so every racer stores the same
  /// value.  void* keeps memory/ independent of partition/.
  const void* partition_hint() const noexcept {
    return partition_hint_.load(std::memory_order_acquire);
  }
  void set_partition_hint(const void* hint) const noexcept {
    partition_hint_.store(hint, std::memory_order_release);
  }

 private:
  void bounds_check(std::int64_t linear) const;
  bool defined_at(std::int64_t linear) const noexcept;

  ArrayId id_;
  std::string name_;
  ArrayShape shape_;
  std::vector<double> values_;
  // One byte per cell, accessed through std::atomic_ref: release-stored by
  // the (unique) writer after the value, acquire-loaded by readers.
  std::vector<std::uint8_t> defined_;
  // Deferred-read queues are rare; keep them out of the hot arrays.
  // Index: linear cell -> waiting readers.  Guarded by defer_mutex_.
  // queued_cells_ mirrors queues_.size() so the write path can skip the
  // lock entirely while no reader is suspended anywhere on this array
  // (incremented before a token is enqueued, decremented after a drain,
  // so a non-zero queue is never missed).
  std::vector<std::pair<std::int64_t, std::vector<ReaderToken>>> queues_;
  std::atomic<std::int64_t> queued_cells_{0};
  mutable std::mutex defer_mutex_;
  std::uint64_t generation_ = 0;
  mutable std::atomic<const void*> partition_hint_{nullptr};
};

}  // namespace sap
