// Single-assignment (I-structure style) array storage.
//
// §3: "Each memory cell has two states — undefined or defined. If a cell is
// undefined, it may also have a queue of read requests associated with it.
// Hardware enforces the write-before-read requirement."  Writing a defined
// cell is a trap (DoubleWriteError).
//
// §5 adds controlled reuse: a *generation* counter models the host-processor
// re-initialization protocol.  Bumping the generation resets every cell to
// undefined; stale cached copies are invalidated by the machine layer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "memory/array_shape.hpp"
#include "memory/page.hpp"

namespace sap {

/// Identifier of a suspended reader, queued on an undefined cell.
/// The machine layer interprets it (PE id in the dataflow interpreter).
using ReaderToken = std::uint32_t;

/// Tagged write-once array of doubles.
class SaArray {
 public:
  SaArray(ArrayId id, std::string name, ArrayShape shape);

  ArrayId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  const ArrayShape& shape() const noexcept { return shape_; }
  std::int64_t element_count() const noexcept {
    return shape_.element_count();
  }

  /// Current re-initialization generation (starts at 0).
  std::uint64_t generation() const noexcept { return generation_; }

  bool is_defined(std::int64_t linear) const;

  /// Write-once store. Throws DoubleWriteError on a second write.
  /// Returns the queue of readers that were suspended on this cell
  /// (the caller re-arms them); the queue is cleared.
  std::vector<ReaderToken> write(std::int64_t linear, double value);

  /// Strict read: throws UndefinedReadError when the cell is undefined.
  double read(std::int64_t linear) const;

  /// Split-phase read: value if defined; otherwise queues `reader` on the
  /// cell and returns nullopt (I-structure deferred read).
  std::optional<double> read_or_defer(std::int64_t linear, ReaderToken reader);

  /// Pre-execution initialization (§3: "an array is either undefined or
  /// filled with initialization data").  Not a single-assignment write:
  /// it may only target undefined cells of a freshly (re)initialized array.
  void initialize(std::int64_t linear, double value);

  /// Fills the whole array with `value` as initialization data.
  void initialize_all(double value);

  /// §5 re-initialization: every cell back to undefined, generation bump.
  /// Any queued readers are dropped (the protocol guarantees quiescence).
  void reinitialize();

  /// Number of defined cells (diagnostics/tests).
  std::int64_t defined_count() const noexcept { return defined_count_; }

 private:
  void bounds_check(std::int64_t linear) const;

  ArrayId id_;
  std::string name_;
  ArrayShape shape_;
  std::vector<double> values_;
  std::vector<std::uint8_t> defined_;
  // Deferred-read queues are rare; keep them out of the hot arrays.
  // Index: linear cell -> waiting readers.
  std::vector<std::pair<std::int64_t, std::vector<ReaderToken>>> queues_;
  std::uint64_t generation_ = 0;
  std::int64_t defined_count_ = 0;
};

}  // namespace sap
