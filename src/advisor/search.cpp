#include "advisor/search.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/error.hpp"

namespace sap {

namespace {

// Caps that bound the search, not the space the user asked for: the
// doubling/halving moves stop at 4x past the configured page-size axis
// and at kMaxBlockPages block-cyclic pages; rounds and hill steps stop
// runaway walks long before the measurement budget usually does.
constexpr std::int64_t kMaxBlockPages = 64;
constexpr std::size_t kMaxBeamRounds = 6;
constexpr std::size_t kMaxHillSteps = 8;
// Beam rounds leave this many measurements for the hill-climb phase.
constexpr std::size_t kHillClimbReserve = 2;
// Coordinate-descent passes over the assignment vector (kJoint); the
// descent usually converges — or runs out of budget — well before this.
constexpr std::size_t kMaxJointRounds = 4;

/// The form search points are *stored* in: the block-cyclic block is
/// zeroed under non-BC schemes (machine-wide and per-array) and the
/// override list is name-sorted — but overrides equal to the machine
/// default are KEPT.  Moves derive new configs from the stored form, and
/// absorbing an override into the default would silently unpin the array
/// the moment a later move changes the machine-wide scheme.
MachineConfig canonical_stored(MachineConfig config) {
  if (config.partition != PartitionKind::kBlockCyclic) {
    config.block_cyclic_pages = 0;
  }
  for (ArrayPartitionOverride& o : config.per_array) {
    o.spec = o.spec.canonical();
  }
  std::sort(config.per_array.begin(), config.per_array.end(),
            [](const ArrayPartitionOverride& a,
               const ArrayPartitionOverride& b) { return a.array < b.array; });
  return config;
}

/// The dedup-key form on top: overrides equal to the canonical default
/// are dropped, so "default bc4 + V=bc4" and plain "default bc4" — the
/// same machine — cannot split into two search states (or spend the
/// measurement budget twice through the sweeper's memo).
MachineConfig canonical(MachineConfig config) {
  config = canonical_stored(std::move(config));
  const ArrayPartitionSpec default_spec =
      config.default_partition_spec().canonical();
  std::erase_if(config.per_array, [&](const ArrayPartitionOverride& o) {
    return o.spec == default_spec;
  });
  return config;
}

/// The beam search state: every discovered point (in discovery order —
/// the deterministic tie-break), its identity key, and the budgeted
/// measurement engine.
class BeamSearch {
 public:
  BeamSearch(const CompiledProgram& compiled, const MachineConfig& base,
             const AccessSummary& summary, const AdvisorOptions& options,
             ThreadPool* pool)
      : base_(base),
        options_(options),
        summary_(summary),
        // The baseline must always be measurable: a zero budget still
        // admits one run.
        sweeper_(compiled, options.validation_mode,
                 std::max<std::size_t>(options.measurement_budget, 1), pool) {
    // The axes the step moves walk along.  Page sizes may extend past
    // the configured axis by doubling/halving (bounded below); the cache
    // axis is exactly options.cache_sizes plus the base cache.
    page_min_ = base.page_size;
    page_max_ = base.page_size;
    for (const std::int64_t ps : options.page_sizes) {
      if (ps < 1) {
        throw ConfigError("advisor page size must be >= 1, got " +
                          std::to_string(ps));
      }
      page_min_ = std::min(page_min_, ps);
      page_max_ = std::max(page_max_, ps);
    }
    page_min_ = std::max<std::int64_t>(1, page_min_ / 4);
    page_max_ = page_max_ * 4;
    // The assignment the modulo baseline carries: the base's own overrides
    // in the same canonical form intern() compares against.
    base_assignment_ =
        canonical(base.with_partition(PartitionKind::kModulo)).per_array;
    cache_axis_ = {base.cache_elements};
    for (const std::int64_t cache : options.cache_sizes) {
      if (cache < 0) {
        throw ConfigError("advisor cache size must be >= 0, got " +
                          std::to_string(cache));
      }
      cache_axis_.push_back(cache);
    }
    std::sort(cache_axis_.begin(), cache_axis_.end());
    cache_axis_.erase(std::unique(cache_axis_.begin(), cache_axis_.end()),
                      cache_axis_.end());
  }

  /// Registers a configuration as a search point: canonicalized, machine-
  /// validated (invalid combinations are skipped, not fatal), priced with
  /// the cost model, deduplicated against everything already discovered.
  /// Returns the point's index, or npos for an invalid combination.
  std::size_t intern(const MachineConfig& raw) {
    const MachineConfig config = canonical_stored(raw);
    try {
      config.validate();
    } catch (const ConfigError&) {
      return npos;
    }
    const std::string key = config_identity(canonical(config));
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] == key) return i;
    }
    AdvisorCandidate c;
    c.config = config;
    // The baseline is the paper's modulo default at the base page size and
    // cache, carrying exactly the base's own (canonical) assignment — under
    // manual --assign pins the pins are part of the baseline, since no
    // candidate may drop them.
    c.is_baseline = config.partition == PartitionKind::kModulo &&
                    config.page_size == base_.page_size &&
                    config.cache_elements == base_.cache_elements &&
                    canonical(config).per_array == base_assignment_;
    c.predicted = estimate_cost(summary_, config);
    points_.push_back(std::move(c));
    keys_.push_back(key);
    return points_.size() - 1;
  }

  /// Interns `candidate`'s config and, when the candidate carries a
  /// measured result this search has not, copies it over — the joint
  /// strategy folds the scalar phase's measured uniform tier in without
  /// spending this search's budget on re-simulation.
  std::size_t adopt(const AdvisorCandidate& candidate) {
    const std::size_t idx = intern(candidate.config);
    if (idx == npos) return npos;
    AdvisorCandidate& point = points_[idx];
    if (candidate.validated && !point.validated) {
      point.validated = true;
      point.measured_remote_fraction = candidate.measured_remote_fraction;
      point.measured_remote_reads = candidate.measured_remote_reads;
      point.measured_total_reads = candidate.measured_total_reads;
      point.measured_write_imbalance = candidate.measured_write_imbalance;
    }
    return idx;
  }

  /// One-axis-step moves from `idx`, in a fixed order (scheme flips,
  /// block down/up, page down/up, cache down/up).  New points are
  /// interned; the returned list carries no duplicates.
  std::vector<std::size_t> neighbors(std::size_t idx) {
    const MachineConfig at = points_[idx].config;  // copy: intern reallocates
    std::vector<std::size_t> out;
    const auto add = [&](const MachineConfig& config) {
      const std::size_t n = intern(config);
      if (n != npos && n != idx &&
          std::find(out.begin(), out.end(), n) == out.end()) {
        out.push_back(n);
      }
    };

    for (const PartitionKind kind : options_.kinds) {
      if (kind == at.partition) continue;
      MachineConfig next = at.with_partition(kind);
      if (kind == PartitionKind::kBlockCyclic) {
        next.block_cyclic_pages =
            options_.block_cyclic_pages.empty()
                ? 2
                : options_.block_cyclic_pages.front();
      }
      add(next);
    }
    if (at.partition == PartitionKind::kBlockCyclic) {
      if (at.block_cyclic_pages / 2 >= 1) {
        MachineConfig next = at;
        next.block_cyclic_pages = at.block_cyclic_pages / 2;
        add(next);
      }
      if (at.block_cyclic_pages * 2 <= kMaxBlockPages) {
        MachineConfig next = at;
        next.block_cyclic_pages = at.block_cyclic_pages * 2;
        add(next);
      }
    }
    if (at.page_size / 2 >= page_min_) {
      add(at.with_page_size(at.page_size / 2));
    }
    if (at.page_size * 2 <= page_max_) {
      add(at.with_page_size(at.page_size * 2));
    }
    const auto cache_pos =
        std::find(cache_axis_.begin(), cache_axis_.end(), at.cache_elements);
    if (cache_pos != cache_axis_.end()) {
      if (cache_pos != cache_axis_.begin()) {
        add(at.with_cache(*std::prev(cache_pos)));
      }
      if (std::next(cache_pos) != cache_axis_.end()) {
        add(at.with_cache(*std::next(cache_pos)));
      }
    }
    return out;
  }

  /// Measures the given points (request order, budget permitting) as one
  /// batch and folds the results into them.
  void measure(const std::vector<std::size_t>& idxs) {
    std::vector<MachineConfig> configs;
    configs.reserve(idxs.size());
    for (const std::size_t idx : idxs) configs.push_back(points_[idx].config);
    const std::vector<const SimulationResult*> results =
        sweeper_.measure(configs);
    for (std::size_t j = 0; j < idxs.size(); ++j) {
      if (results[j] == nullptr) continue;
      AdvisorCandidate& c = points_[idxs[j]];
      const SimulationResult& r = *results[j];
      c.validated = true;
      c.measured_remote_fraction = r.remote_read_fraction();
      c.measured_remote_reads = r.totals.remote_reads;
      c.measured_total_reads = r.totals.total_reads();
      c.measured_write_imbalance = r.write_balance().imbalance();
    }
  }

  /// Measured points best-first: (remote fraction, write imbalance,
  /// predicted score), discovery index as the final tie — the same order
  /// rank_candidates gives the validated tier.
  std::vector<std::size_t> measured_ranking() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (points_[i].validated) out.push_back(i);
    }
    std::stable_sort(out.begin(), out.end(), [&](std::size_t a,
                                                 std::size_t b) {
      const AdvisorCandidate& ca = points_[a];
      const AdvisorCandidate& cb = points_[b];
      if (ca.measured_remote_fraction != cb.measured_remote_fraction) {
        return ca.measured_remote_fraction < cb.measured_remote_fraction;
      }
      if (ca.measured_write_imbalance != cb.measured_write_imbalance) {
        return ca.measured_write_imbalance < cb.measured_write_imbalance;
      }
      return ca.predicted.score() < cb.predicted.score();
    });
    return out;
  }

  /// Unmeasured candidates of `idxs` ordered by (predicted score,
  /// discovery index) — the CostModel screen.
  std::vector<std::size_t> screen(std::vector<std::size_t> idxs) const {
    idxs.erase(std::remove_if(idxs.begin(), idxs.end(),
                              [&](std::size_t i) {
                                return points_[i].validated;
                              }),
               idxs.end());
    std::stable_sort(idxs.begin(), idxs.end(),
                     [&](std::size_t a, std::size_t b) {
                       if (points_[a].predicted.score() !=
                           points_[b].predicted.score()) {
                         return points_[a].predicted.score() <
                                points_[b].predicted.score();
                       }
                       return a < b;
                     });
    return idxs;
  }

  std::size_t remaining_budget() const { return sweeper_.remaining(); }
  const AdvisorCandidate& point(std::size_t idx) const { return points_[idx]; }
  std::vector<AdvisorCandidate> take_points() { return std::move(points_); }

  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

 private:
  MachineConfig base_;
  std::vector<ArrayPartitionOverride> base_assignment_;
  const AdvisorOptions& options_;
  const AccessSummary& summary_;
  BudgetedSweeper sweeper_;
  std::int64_t page_min_ = 1;
  std::int64_t page_max_ = 1;
  std::vector<std::int64_t> cache_axis_;
  std::vector<AdvisorCandidate> points_;
  std::vector<std::string> keys_;
};

/// Strict measured-tier comparison (remote fraction, write imbalance,
/// predicted score) — the coordinate descent only moves on a strict win,
/// so ties keep the incumbent and the walk terminates deterministically.
bool measured_better(const AdvisorCandidate& a, const AdvisorCandidate& b) {
  if (a.measured_remote_fraction != b.measured_remote_fraction) {
    return a.measured_remote_fraction < b.measured_remote_fraction;
  }
  if (a.measured_write_imbalance != b.measured_write_imbalance) {
    return a.measured_write_imbalance < b.measured_write_imbalance;
  }
  return a.predicted.score() < b.predicted.score();
}

}  // namespace

AdvisorReport advise_beam(const CompiledProgram& compiled,
                          const MachineConfig& base,
                          const AdvisorOptions& options, ThreadPool* pool) {
  base.validate();
  static obs::Counter& reports = obs::counter("advisor/reports");
  reports.add(1);

  AdvisorReport report;
  report.program = compiled.name();
  report.base = base;
  report.summary = summarize_access(
      compiled, ClassifierConfig{base.page_size, base.cache_elements});

  BeamSearch search(compiled, base, report.summary, options, pool);

  // 1. Seeds: the full enumerate space is registered (so the report
  //    always covers it), and the measured seed set is the baseline plus
  //    the best-predicted enumerate candidates — a superset of what the
  //    enumerate strategy validates whenever the budget allows, which is
  //    what makes the beam never worse than the enumerator, not just
  //    never worse than modulo.
  std::size_t baseline_idx = BeamSearch::npos;
  {
    const obs::Span span("advisor", "seed");
    std::vector<std::size_t> enumerated;
    for (const AdvisorCandidate& c : enumerate_candidates(base, options)) {
      const std::size_t idx = search.intern(c.config);
      if (idx == BeamSearch::npos) continue;
      enumerated.push_back(idx);
      if (search.point(idx).is_baseline) baseline_idx = idx;
    }
    SAP_CHECK(baseline_idx != BeamSearch::npos,
              "beam search lost the modulo baseline");

    std::vector<std::size_t> seeds = {baseline_idx};
    const std::size_t seed_count =
        std::max(options.validate_top_k, options.beam_width);
    for (const std::size_t idx : search.screen(enumerated)) {
      if (seeds.size() > seed_count) break;
      if (idx != baseline_idx) seeds.push_back(idx);
    }
    search.measure(seeds);
  }

  // 2. Beam rounds: expand the measured beam, screen the frontier with
  //    the cost model, measure the screened best as one batch.  The
  //    budget (minus a reserve for the hill climb) is the loop bound
  //    that matters; the round cap only stops degenerate walks.
  {
    const obs::Span beam_span("advisor", "beam");
    static obs::Counter& beam_rounds = obs::counter("advisor/beam_rounds");
    for (std::size_t round = 0; round < kMaxBeamRounds; ++round) {
      if (search.remaining_budget() <= kHillClimbReserve) break;
      beam_rounds.add(1);
      const std::vector<std::size_t> ranking = search.measured_ranking();
      std::vector<std::size_t> frontier;
      for (std::size_t b = 0;
           b < std::min(options.beam_width, ranking.size()); ++b) {
        for (const std::size_t n : search.neighbors(ranking[b])) {
          if (std::find(frontier.begin(), frontier.end(), n) ==
              frontier.end()) {
            frontier.push_back(n);
          }
        }
      }
      std::vector<std::size_t> batch = search.screen(frontier);
      const std::size_t batch_cap = std::min(
          options.beam_width, search.remaining_budget() - kHillClimbReserve);
      if (batch.size() > batch_cap) batch.resize(batch_cap);
      if (batch.empty()) break;
      search.measure(batch);
    }
  }

  // 3. Hill-climb refinement: steepest descent on the predicted-cost
  //    surface from the best measured state; the unmeasured states along
  //    the path get the reserved measurements.
  const std::vector<std::size_t> ranking = search.measured_ranking();
  if (!ranking.empty()) {
    const obs::Span span("advisor", "hill-climb");
    std::size_t cur = ranking.front();
    std::vector<std::size_t> path;
    for (std::size_t step = 0; step < kMaxHillSteps; ++step) {
      const std::vector<std::size_t> ns = search.neighbors(cur);
      std::size_t best = BeamSearch::npos;
      for (const std::size_t n : ns) {
        if (best == BeamSearch::npos ||
            search.point(n).predicted.score() <
                search.point(best).predicted.score()) {
          best = n;
        }
      }
      if (best == BeamSearch::npos ||
          search.point(best).predicted.score() >=
              search.point(cur).predicted.score()) {
        break;
      }
      if (!search.point(best).validated &&
          std::find(path.begin(), path.end(), best) == path.end()) {
        path.push_back(best);
      }
      cur = best;
    }
    search.measure(path);
  }

  // 4. Rank exactly like the enumerate strategy: validated tier by
  //    measured cost, everything else by predicted score, stable on
  //    discovery order.  The baseline is measured, so best() can never
  //    rank behind it.
  std::vector<AdvisorCandidate> candidates = search.take_points();
  for (const AdvisorCandidate& c : candidates) {
    if (c.validated) report.validated_count++;
  }
  rank_candidates(candidates);
  report.candidates = std::move(candidates);
  return report;
}

AdvisorReport advise_joint(const CompiledProgram& compiled,
                           const MachineConfig& base,
                           const AdvisorOptions& options, ThreadPool* pool) {
  base.validate();

  // Phase 1: the scalar beam picks the best *uniform* configuration and
  // measures the uniform tier — the modulo baseline, the enumerator's top
  // predictions, and whatever the beam discovered.
  AdvisorReport scalar = advise_beam(compiled, base, options, pool);

  static obs::Counter& reports = obs::counter("advisor/reports");
  reports.add(1);

  AdvisorReport report;
  report.program = std::move(scalar.program);
  report.base = base;
  report.summary = std::move(scalar.summary);

  // Phase 2: coordinate descent over the per-array assignment vector,
  // holding the incumbent's page size and cache fixed (only the partition
  // axis is per-array).
  const obs::Span span("advisor", "joint");
  static obs::Counter& joint_rounds = obs::counter("advisor/joint_rounds");
  static obs::Counter& joint_moves = obs::counter("advisor/joint_moves");
  static obs::Counter& joint_memo_hits =
      obs::counter("advisor/joint_memo_hits");

  // The descent gets a fresh budget (the scalar phase spent its own); the
  // scalar phase's measured points are folded in below without spending
  // any of it.
  AdvisorOptions joint_options = options;
  if (options.joint_measurement_budget > 0) {
    joint_options.measurement_budget = options.joint_measurement_budget;
  }
  BeamSearch search(compiled, base, report.summary, joint_options, pool);
  for (const AdvisorCandidate& c : scalar.candidates) search.adopt(c);

  // The incumbent: the best measured uniform point.  Every uniform vector
  // the scalar phase validated is in the point set with its measurement,
  // so the final ranking can never fall behind the scalar answer.
  std::vector<std::size_t> ranking = search.measured_ranking();
  SAP_CHECK(!ranking.empty(), "joint search has no measured uniform seed");
  std::size_t current = ranking.front();

  const auto is_pinned = [&](const std::string& name) {
    return std::find(options.pinned_arrays.begin(),
                     options.pinned_arrays.end(),
                     name) != options.pinned_arrays.end();
  };

  // Coordinate order: traffic-major (ties by name — summary.arrays is
  // name-sorted and the sort is stable), pinned arrays excluded.
  std::vector<const ArrayDigest*> arrays;
  for (const ArrayDigest& digest : report.summary.arrays) {
    if (!is_pinned(digest.array)) arrays.push_back(&digest);
  }
  std::stable_sort(arrays.begin(), arrays.end(),
                   [](const ArrayDigest* a, const ArrayDigest* b) {
                     return a->traffic() > b->traffic();
                   });

  // The per-coordinate spec axis: every configured kind, BC expanded over
  // the block axis.
  std::vector<ArrayPartitionSpec> specs;
  for (const PartitionKind kind : options.kinds) {
    if (kind == PartitionKind::kBlockCyclic) {
      std::vector<std::int64_t> blocks = options.block_cyclic_pages;
      if (blocks.empty()) blocks.push_back(2);
      for (const std::int64_t block : blocks) specs.push_back({kind, block});
    } else {
      specs.push_back({kind, 0});
    }
  }

  for (std::size_t round = 0; round < kMaxJointRounds; ++round) {
    bool moved_this_round = false;
    joint_rounds.add(1);
    for (const ArrayDigest* digest : arrays) {
      const MachineConfig cur = search.point(current).config;
      std::vector<std::size_t> moves;
      const auto consider = [&](const MachineConfig& config) {
        const std::size_t idx = search.intern(config);
        if (idx == BeamSearch::npos || idx == current) return;
        if (std::find(moves.begin(), moves.end(), idx) != moves.end()) return;
        if (search.point(idx).validated) joint_memo_hits.add(1);
        moves.push_back(idx);
      };
      // Drop the override, every single-array re-spec, and the coupled
      // group move (this array plus its statement partners together —
      // single moves alone stall when the win needs the reader's and the
      // writer's array to flip in the same step).
      consider(cur.without_array_partition(digest->array));
      for (const ArrayPartitionSpec& spec : specs) {
        consider(cur.with_array_partition(digest->array, spec));
        MachineConfig group = cur.with_array_partition(digest->array, spec);
        for (const std::string& partner : digest->coupled) {
          if (!is_pinned(partner)) {
            group = group.with_array_partition(partner, spec);
          }
        }
        consider(group);
      }
      // CostModel screen, then measure the most promising as one batch.
      std::vector<std::size_t> batch = search.screen(moves);
      const std::size_t cap =
          std::min(options.beam_width, search.remaining_budget());
      if (batch.size() > cap) batch.resize(cap);
      search.measure(batch);
      // Adopt the best measured move on a strict win (discovery order
      // breaks ties toward the earliest candidate).
      std::size_t best = current;
      for (const std::size_t idx : moves) {
        if (search.point(idx).validated &&
            measured_better(search.point(idx), search.point(best))) {
          best = idx;
        }
      }
      if (best != current) {
        current = best;
        moved_this_round = true;
        joint_moves.add(1);
      }
    }
    if (!moved_this_round) break;
  }

  std::vector<AdvisorCandidate> candidates = search.take_points();
  for (const AdvisorCandidate& c : candidates) {
    if (c.validated) report.validated_count++;
  }
  rank_candidates(candidates);
  report.candidates = std::move(candidates);
  return report;
}

}  // namespace sap
