// Partition advisor: cost-model-driven automatic partition selection.
//
// Layer 3 of the advisor (DESIGN.md §7) and the piece the paper's §9 asks
// for: "allowing the programmer or compiler to select the [scheme]" turns
// the fixed modulo machine into a per-program choice.  advise() digests
// the program once (AccessSummary), prices every candidate
// (PartitionKind, block-cyclic block, page size) with the analytic cost
// model, validates the most promising candidates with real
// Simulator::run calls — independent runs fanned across the ThreadPool
// exactly like a sweep — and returns a ranked report.
//
// The paper's own configuration (modulo partitioning at the base page
// size) is always part of the validated set, so the advisor's pick is
// never worse than the paper default *by construction*: the final ranking
// orders measured candidates by measured remote fraction.
//
// Results are deterministic for any worker count: candidate enumeration
// is a fixed order, validation uses parallel_sweep_results (order-stable
// slots), and every sort breaks ties by enumeration index.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "advisor/access_summary.hpp"
#include "advisor/cost_model.hpp"
#include "core/sweep.hpp"

namespace sap {

/// How the advisor covers the candidate space.
enum class AdvisorStrategy {
  /// Enumerate the full kinds x blocks x page-sizes cross product at the
  /// base cache, validate the top-k predictions (the PR-2 advisor).
  kEnumerate,
  /// Guided search over the widened joint space — scheme x block-cyclic
  /// block x page size x cache configuration: beam search seeded from
  /// the enumerator's top candidates plus the modulo baseline, screened
  /// by the analytic CostModel, steered by measured runs, finished with
  /// a hill-climb refinement pass (advisor/search.hpp, DESIGN.md §11).
  kBeam,
  /// Per-array assignment search (DESIGN.md §14): runs the scalar beam
  /// first, then coordinate descent over the array→scheme vector —
  /// per-array single moves and coupled-group moves, CostModel-screened,
  /// measured through a BudgetedSweeper.  The scalar phase's measured
  /// candidates (the modulo baseline included) seed the joint tier, so
  /// the pick is never worse than the best uniform answer by
  /// construction.
  kJoint,
};

std::string to_string(AdvisorStrategy strategy);
/// "enumerate" / "beam" / "joint" -> the enum; anything else throws
/// ConfigError.
AdvisorStrategy advisor_strategy_from_name(std::string_view name);

struct AdvisorOptions {
  /// Schemes to consider.  BlockCyclic expands over `block_cyclic_pages`.
  std::vector<PartitionKind> kinds = {PartitionKind::kModulo,
                                      PartitionKind::kBlock,
                                      PartitionKind::kBlockCyclic};
  std::vector<std::int64_t> block_cyclic_pages = {2, 4};

  /// Page sizes to consider; empty keeps the base configuration's.
  /// Duplicates are collapsed; values < 1 raise ConfigError.
  std::vector<std::int64_t> page_sizes = {};

  /// Candidates validated with real simulations, best-predicted first.
  /// The baseline (modulo at the base page size) is always validated on
  /// top of this budget.
  std::size_t validate_top_k = 3;

  ExecutionMode validation_mode = ExecutionMode::kCounting;

  AdvisorStrategy strategy = AdvisorStrategy::kEnumerate;

  /// kBeam: states kept per search round (also the seed count).
  std::size_t beam_width = 4;
  /// kBeam: total measured simulations the search may spend.  The modulo
  /// baseline is always measured, even with a budget of zero or one, so
  /// the never-worse guarantee survives any setting.
  std::size_t measurement_budget = 12;
  /// kBeam: extra cache capacities the search may move to (elements;
  /// 0 = no cache).  Empty keeps the base configuration's cache as the
  /// only cache point.  Values < 0 raise ConfigError.
  std::vector<std::int64_t> cache_sizes = {};

  /// kJoint: arrays whose per-array spec the coordinate descent must not
  /// move (manual --assign overrides in the base config stay as pinned).
  std::vector<std::string> pinned_arrays = {};
  /// kJoint: fresh measurement budget for the coordinate-descent phase
  /// (the scalar phase spends `measurement_budget`); 0 reuses
  /// `measurement_budget`.
  std::size_t joint_measurement_budget = 0;
};

struct AdvisorCandidate {
  MachineConfig config;
  CostEstimate predicted;
  bool is_baseline = false;  // the paper's modulo default at base page size
  bool validated = false;
  double measured_remote_fraction = 0.0;  // meaningful when `validated`
  std::uint64_t measured_remote_reads = 0;
  std::uint64_t measured_total_reads = 0;
  double measured_write_imbalance = 0.0;

  /// "block ps=32" / "block-cyclic(b=2) ps=64" style display name.
  std::string label() const;

  /// Measured fraction when validated, predicted otherwise.
  double remote_fraction() const noexcept {
    return validated ? measured_remote_fraction
                     : predicted.remote_read_fraction();
  }
};

struct AdvisorReport {
  std::string program;
  MachineConfig base;
  AccessSummary summary;
  /// Final ranking, best first.  Validated candidates precede unvalidated
  /// ones; within each tier lower (measured, predicted) cost wins.
  std::vector<AdvisorCandidate> candidates;
  std::size_t validated_count = 0;

  const AdvisorCandidate& best() const;
  /// The paper's modulo default (always validated); null never happens
  /// for reports produced by advise().
  const AdvisorCandidate* baseline() const;

  /// Human-readable recommendation with the candidate table and the
  /// access-summary rationale.
  std::string report() const;
};

/// Runs the full pipeline.  `base` fixes the machine shape (PE count,
/// cache, topology); the candidate space varies partition scheme, block
/// size, page size and — under the kBeam strategy — cache configuration.
/// Validation simulations fan across `pool` when given, serially
/// otherwise — output is identical either way.
AdvisorReport advise(const CompiledProgram& compiled,
                     const MachineConfig& base,
                     const AdvisorOptions& options = {},
                     ThreadPool* pool = nullptr);

// --- Shared between the enumerate strategy (advisor.cpp) and the beam
// --- search (search.cpp); exposed for tests.

/// The kEnumerate candidate space in its fixed order (page size major,
/// scheme minor), deduplicated, each candidate priced-free (predicted is
/// filled by the caller).  Always contains the modulo baseline at the
/// base page size, flagged is_baseline.  Throws ConfigError on page
/// sizes < 1 in `options.page_sizes`.
std::vector<AdvisorCandidate> enumerate_candidates(
    const MachineConfig& base, const AdvisorOptions& options);

/// The final ranking shared by both strategies: validated candidates
/// first by (measured remote fraction, measured write imbalance), then
/// everything by predicted score; all ties broken by the candidates'
/// current order (enumeration / discovery index) via stable sort.
void rank_candidates(std::vector<AdvisorCandidate>& candidates);

}  // namespace sap
