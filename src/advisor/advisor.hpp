// Partition advisor: cost-model-driven automatic partition selection.
//
// Layer 3 of the advisor (DESIGN.md §7) and the piece the paper's §9 asks
// for: "allowing the programmer or compiler to select the [scheme]" turns
// the fixed modulo machine into a per-program choice.  advise() digests
// the program once (AccessSummary), prices every candidate
// (PartitionKind, block-cyclic block, page size) with the analytic cost
// model, validates the most promising candidates with real
// Simulator::run calls — independent runs fanned across the ThreadPool
// exactly like a sweep — and returns a ranked report.
//
// The paper's own configuration (modulo partitioning at the base page
// size) is always part of the validated set, so the advisor's pick is
// never worse than the paper default *by construction*: the final ranking
// orders measured candidates by measured remote fraction.
//
// Results are deterministic for any worker count: candidate enumeration
// is a fixed order, validation uses parallel_sweep_results (order-stable
// slots), and every sort breaks ties by enumeration index.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "advisor/access_summary.hpp"
#include "advisor/cost_model.hpp"
#include "core/sweep.hpp"

namespace sap {

struct AdvisorOptions {
  /// Schemes to consider.  BlockCyclic expands over `block_cyclic_pages`.
  std::vector<PartitionKind> kinds = {PartitionKind::kModulo,
                                      PartitionKind::kBlock,
                                      PartitionKind::kBlockCyclic};
  std::vector<std::int64_t> block_cyclic_pages = {2, 4};

  /// Page sizes to consider; empty keeps the base configuration's.
  std::vector<std::int64_t> page_sizes = {};

  /// Candidates validated with real simulations, best-predicted first.
  /// The baseline (modulo at the base page size) is always validated on
  /// top of this budget.
  std::size_t validate_top_k = 3;

  ExecutionMode validation_mode = ExecutionMode::kCounting;
};

struct AdvisorCandidate {
  MachineConfig config;
  CostEstimate predicted;
  bool is_baseline = false;  // the paper's modulo default at base page size
  bool validated = false;
  double measured_remote_fraction = 0.0;  // meaningful when `validated`
  std::uint64_t measured_remote_reads = 0;
  std::uint64_t measured_total_reads = 0;
  double measured_write_imbalance = 0.0;

  /// "block ps=32" / "block-cyclic(b=2) ps=64" style display name.
  std::string label() const;

  /// Measured fraction when validated, predicted otherwise.
  double remote_fraction() const noexcept {
    return validated ? measured_remote_fraction
                     : predicted.remote_read_fraction();
  }
};

struct AdvisorReport {
  std::string program;
  MachineConfig base;
  AccessSummary summary;
  /// Final ranking, best first.  Validated candidates precede unvalidated
  /// ones; within each tier lower (measured, predicted) cost wins.
  std::vector<AdvisorCandidate> candidates;
  std::size_t validated_count = 0;

  const AdvisorCandidate& best() const;
  /// The paper's modulo default (always validated); null never happens
  /// for reports produced by advise().
  const AdvisorCandidate* baseline() const;

  /// Human-readable recommendation with the candidate table and the
  /// access-summary rationale.
  std::string report() const;
};

/// Runs the full pipeline.  `base` fixes the machine shape (PE count,
/// cache, topology); the candidate space varies partition scheme, block
/// size and (optionally) page size.  Validation simulations fan across
/// `pool` when given, serially otherwise — output is identical either way.
AdvisorReport advise(const CompiledProgram& compiled,
                     const MachineConfig& base,
                     const AdvisorOptions& options = {},
                     ThreadPool* pool = nullptr);

}  // namespace sap
