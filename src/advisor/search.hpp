// Search-based partition advisor over the widened mapping space.
//
// The enumerate strategy (advisor.cpp) covers a fixed cross product —
// kinds x block sizes x page sizes at the base cache — and validates its
// top predictions.  The beam strategy here searches the *joint* space of
// partition scheme x block-cyclic block x page size x cache
// configuration, most of which the enumerator never visits: block and
// page sizes extend past the configured axes by doubling/halving moves,
// and the cache axis (AdvisorOptions::cache_sizes) opens a dimension the
// enumerator holds fixed.
//
// Shape of the search (DESIGN.md §11):
//   1. Seed the beam with the enumerator's top predicted candidates plus
//      the paper's modulo baseline — exactly the set the enumerate
//      strategy validates — and measure them.
//   2. Beam rounds: keep the `beam_width` best *measured* states, expand
//      their neighbors (one axis step at a time), screen the frontier
//      with the analytic CostModel, and measure the most promising
//      screened states as one parallel_sweep_results batch.
//   3. Hill-climb refinement: from the best measured state, walk the
//      predicted-cost surface steepest-descent-first and measure the
//      unvisited states along the path.
//
// Measurements are budgeted (AdvisorOptions::measurement_budget) through
// core/sweep's BudgetedSweeper; the modulo baseline is always measured
// first, so the advisor's pick is never worse than the paper default by
// construction no matter how small the budget.  Every ordering ties off
// by discovery index, so reports are byte-identical at any worker count.
#pragma once

#include "advisor/advisor.hpp"

namespace sap {

/// The AdvisorStrategy::kBeam pipeline.  Called by advise(); callable
/// directly when the caller wants the beam search regardless of
/// `options.strategy`.
AdvisorReport advise_beam(const CompiledProgram& compiled,
                          const MachineConfig& base,
                          const AdvisorOptions& options = {},
                          ThreadPool* pool = nullptr);

/// The AdvisorStrategy::kJoint pipeline (DESIGN.md §14): the scalar beam
/// above picks the best *uniform* configuration, then coordinate descent
/// over the per-array assignment vector — for each array (traffic-major
/// order from the AccessSummary digests) try every (kind, block) spec as
/// a single move and as a group move together with its statement-coupled
/// arrays, screen with the CostModel, measure the screened best through a
/// fresh BudgetedSweeper.  The scalar phase's measured candidates are
/// carried into the joint ranking, so the result is never worse than the
/// best uniform answer (and hence never worse than the modulo baseline).
AdvisorReport advise_joint(const CompiledProgram& compiled,
                           const MachineConfig& base,
                           const AdvisorOptions& options = {},
                           ThreadPool* pool = nullptr);

}  // namespace sap
