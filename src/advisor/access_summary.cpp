#include "advisor/access_summary.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "frontend/affine.hpp"
#include "support/check.hpp"

namespace sap {

namespace {

/// Midpoint of a loop's range when its bounds are compile-time constants.
std::optional<double> loop_midpoint(const DoLoop& loop,
                                    const AffineContext& ctx) {
  const auto lo = eval_const_expr(*loop.lower, ctx);
  const auto hi = eval_const_expr(*loop.upper, ctx);
  if (!lo || !hi) return std::nullopt;
  return (*lo + *hi) / 2.0;
}

/// Evaluates an affine bound at the midpoints of the enclosing loops
/// (triangular nests like GLR's K = 1, I-1 average out this way).
std::optional<double> bound_at_midpoints(const Expr& bound,
                                         const AffineContext& ctx) {
  const AffineIndex aff = affine_of_index(bound, ctx);
  if (!aff.affine || !aff.constant_known) return std::nullopt;
  double value = static_cast<double>(aff.constant);
  for (const auto& [var, coeff] : aff.coeffs) {
    const DoLoop* enclosing = nullptr;
    for (const DoLoop* loop : ctx.loops) {
      if (loop->var == var) enclosing = loop;
    }
    if (!enclosing) return std::nullopt;  // induction scalar: base unknown
    const auto mid = loop_midpoint(*enclosing, ctx);
    if (!mid) return std::nullopt;
    value += static_cast<double>(coeff) * *mid;
  }
  return value;
}

/// Trip count of `loop`: exact for constant bounds; a midpoint estimate
/// for bounds affine in outer loop variables; otherwise bounded by how far
/// the statement's fastest-advancing reference can travel in its array.
std::int64_t estimate_trips(const DoLoop& loop, const AffineContext& ctx,
                            std::int64_t travel_fallback, bool& exact) {
  if (const auto t = const_trip_count(loop, ctx)) {
    exact = true;
    return std::max<std::int64_t>(*t, 0);
  }
  exact = false;
  const auto lo = bound_at_midpoints(*loop.lower, ctx);
  const auto hi = bound_at_midpoints(*loop.upper, ctx);
  double step = 1.0;
  if (loop.step) {
    const auto s = eval_const_expr(*loop.step, ctx);
    if (s && *s != 0.0) step = *s;
  }
  if (lo && hi && step != 0.0) {
    const double trips = std::floor((*hi - *lo) / step) + 1.0;
    return trips < 0 ? 0 : static_cast<std::int64_t>(trips);
  }
  return std::max<std::int64_t>(travel_fallback, 1);
}

/// Linear element index of an affine form at the first iteration of the
/// nest: constant + sum(coeff * loop lower).  Unknown when the form
/// involves an induction scalar or a non-constant lower bound.
std::optional<std::int64_t> start_element(const AffineIndex& aff,
                                          const AffineContext& ctx) {
  if (!aff.affine || !aff.constant_known) return std::nullopt;
  std::int64_t start = aff.constant;
  for (const auto& [var, coeff] : aff.coeffs) {
    const DoLoop* enclosing = nullptr;
    for (const DoLoop* loop : ctx.loops) {
      if (loop->var == var) enclosing = loop;
    }
    if (!enclosing) return std::nullopt;
    const auto lo = eval_const_expr(*enclosing->lower, ctx);
    if (!lo) return std::nullopt;
    start += coeff * static_cast<std::int64_t>(std::llround(*lo));
  }
  return start;
}

/// Is `ref` the reduction's read of its own target element?
bool is_self_accumulation(const ArrayAssign& assign, const ArrayRefExpr& ref) {
  if (!assign.is_reduction || ref.name != assign.array ||
      ref.indices.size() != assign.indices.size()) {
    return false;
  }
  for (std::size_t i = 0; i < ref.indices.size(); ++i) {
    if (!equal(*ref.indices[i], *assign.indices[i])) return false;
  }
  return true;
}

}  // namespace

std::int64_t StatementAccess::memory_reads() const noexcept {
  std::int64_t refs = 0;
  for (const auto& read : reads) {
    if (!read.self_accumulation) ++refs;
  }
  return instances * refs;
}

AccessSummary summarize_access(const CompiledProgram& compiled,
                               const ClassifierConfig& nominal) {
  const Program& program = compiled.program;
  const SemanticInfo& sema = compiled.sema;

  AccessSummary out;
  out.program = program.name;
  out.classification = classify_program(program, sema, nominal);

  for_each_stmt(program, [&](const Stmt& stmt) {
    if (std::holds_alternative<ReinitStmt>(stmt.node)) ++out.reinit_count;
  });

  // Loop-group ids: statements sharing an innermost loop share a cache.
  std::vector<const DoLoop*> group_keys;
  const auto group_of = [&](const DoLoop* innermost) {
    for (std::size_t i = 0; i < group_keys.size(); ++i) {
      if (group_keys[i] == innermost) return static_cast<std::int64_t>(i);
    }
    group_keys.push_back(innermost);
    return static_cast<std::int64_t>(group_keys.size() - 1);
  };

  const auto shape_of = [&](const std::string& array) {
    return ArrayShape(program.arrays[sema.arrays.at(array)].dims);
  };

  for (const AssignSite& site : sema.assign_sites) {
    const ArrayAssign& assign = *site.assign;
    const AffineContext ctx{&program, &sema, site.loops};

    StatementAccess st;
    st.array = assign.array;
    const ArrayShape write_shape = shape_of(assign.array);
    st.array_elements = write_shape.element_count();
    st.is_reduction = assign.is_reduction;
    // Balanced-branch prior: each enclosing IF arm executes half the time.
    st.exec_probability = 1.0;
    for (std::size_t c = 0; c < site.conditionals.size(); ++c) {
      st.exec_probability *= 0.5;
    }
    st.loop_group = group_of(site.loops.empty() ? nullptr : site.loops.back());

    // Write descriptor.
    ArrayRefExpr target;
    target.name = assign.array;
    for (const auto& idx : assign.indices) {
      target.indices.push_back(clone(*idx));
    }
    const AffineIndex write_aff = element_affine(target, write_shape, ctx);
    st.write_affine = write_aff.affine;
    st.write_strides_known = write_aff.affine;
    for (const DoLoop* loop : site.loops) {
      const auto s = stride_per_trip(write_aff, *loop, ctx);
      if (!s) st.write_strides_known = false;
      st.write_strides.push_back(s.value_or(0));
    }
    if (const auto s0 = start_element(write_aff, ctx)) {
      st.write_start = *s0;
      st.write_start_known = true;
    }

    // Reads: refs in the value expression plus refs used as write indices
    // (indirect writes read their index arrays too).  The walk carries a
    // probability: a SELECT evaluates its condition always but only the
    // chosen arm, so arm reads execute half the time (balanced prior).
    const auto add_read = [&](const ArrayRefExpr& ref, double probability) {
      ReadAccess read;
      read.array = ref.name;
      const ArrayShape shape = shape_of(ref.name);
      read.array_elements = shape.element_count();
      read.self_accumulation = is_self_accumulation(assign, ref);
      read.probability = probability;
      const AffineIndex aff = element_affine(ref, shape, ctx);
      read.affine = aff.affine;
      read.strides_known = aff.affine;
      for (const DoLoop* loop : site.loops) {
        const auto s = stride_per_trip(aff, *loop, ctx);
        if (!s) read.strides_known = false;
        read.strides.push_back(s.value_or(0));
      }
      if (const auto r0 = start_element(aff, ctx)) {
        read.start = *r0;
        read.start_known = true;
      }
      st.reads.push_back(std::move(read));
    };
    const std::function<void(const Expr&, double)> walk_reads =
        [&](const Expr& expr, double probability) {
          std::visit(
              [&](const auto& node) {
                using T = std::decay_t<decltype(node)>;
                if constexpr (std::is_same_v<T, ArrayRefExpr>) {
                  add_read(node, probability);
                  for (const auto& idx : node.indices) {
                    walk_reads(*idx, probability);
                  }
                } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
                  if (node.kind == IntrinsicKind::kSelect) {
                    walk_reads(*node.args[0], probability);
                    walk_reads(*node.args[1], probability * 0.5);
                    walk_reads(*node.args[2], probability * 0.5);
                  } else {
                    for (const auto& a : node.args) {
                      walk_reads(*a, probability);
                    }
                  }
                } else if constexpr (std::is_same_v<T, UnaryNeg>) {
                  walk_reads(*node.operand, probability);
                } else if constexpr (std::is_same_v<T, BinaryExpr>) {
                  walk_reads(*node.lhs, probability);
                  walk_reads(*node.rhs, probability);
                } else if constexpr (std::is_same_v<T, CompareExpr>) {
                  walk_reads(*node.lhs, probability);
                  walk_reads(*node.rhs, probability);
                }
              },
              expr.node);
        };
    for (const auto& idx : assign.indices) {
      walk_reads(*idx, 1.0);
    }
    walk_reads(*assign.value, 1.0);

    // Trip counts, outermost first.  The travel fallback bounds a
    // scalar-driven loop (ICCG's level walk) by how far the fastest
    // advancing reference can move inside its array.
    st.instances = 1;
    for (std::size_t d = 0; d < site.loops.size(); ++d) {
      std::int64_t travel = 0;
      const auto consider = [&](std::int64_t stride,
                                std::int64_t elements) {
        if (stride != 0) {
          travel = std::max(travel, elements / std::max<std::int64_t>(
                                                   std::llabs(stride), 1));
        }
      };
      if (st.write_strides_known) {
        consider(st.write_strides[d], st.array_elements);
      }
      for (const ReadAccess& read : st.reads) {
        if (read.strides_known) consider(read.strides[d], read.array_elements);
      }

      LoopDim dim;
      dim.var = site.loops[d]->var;
      dim.trips = estimate_trips(*site.loops[d], ctx, travel, dim.trips_exact);
      st.instances *= std::max<std::int64_t>(dim.trips, 0);
      st.loops.push_back(std::move(dim));
    }

    // Committed writes: every instance for plain assignments; one commit
    // per distinct target element for reductions (§5).
    if (!assign.is_reduction) {
      st.distinct_writes = st.instances;
    } else if (st.write_strides_known) {
      std::int64_t distinct = 1;
      for (std::size_t d = 0; d < st.loops.size(); ++d) {
        if (st.write_strides[d] != 0) {
          distinct *= std::max<std::int64_t>(st.loops[d].trips, 1);
        }
      }
      st.distinct_writes = std::min(distinct, st.array_elements);
    } else {
      st.distinct_writes = std::min(st.instances, st.array_elements);
    }

    out.total_reads += st.memory_reads();
    out.total_writes += st.distinct_writes;
    double read_probability_sum = 0.0;
    for (const ReadAccess& read : st.reads) {
      if (!read.self_accumulation) read_probability_sum += read.probability;
    }
    out.expected_reads += static_cast<double>(st.instances) *
                          read_probability_sum * st.exec_probability;
    out.expected_writes +=
        static_cast<double>(st.distinct_writes) * st.exec_probability;
    out.statements.push_back(std::move(st));
  }

  // Per-array rollup: traffic totals and shared-statement coupling, in
  // name order (deterministic regardless of statement order).
  std::map<std::string, ArrayDigest> digests;
  std::map<std::string, std::set<std::string>> coupled;
  const auto touch = [&](const std::string& name, std::int64_t elements) {
    ArrayDigest& d = digests[name];
    d.array = name;
    d.elements = std::max(d.elements, elements);
    return &d;
  };
  for (const StatementAccess& st : out.statements) {
    std::set<std::string> participants;
    participants.insert(st.array);
    ArrayDigest* wd = touch(st.array, st.array_elements);
    wd->writes += st.distinct_writes;
    wd->expected_writes +=
        static_cast<double>(st.distinct_writes) * st.exec_probability;
    for (const ReadAccess& read : st.reads) {
      if (read.self_accumulation) continue;
      participants.insert(read.array);
      ArrayDigest* rd = touch(read.array, read.array_elements);
      rd->reads += st.instances;
      rd->expected_reads += static_cast<double>(st.instances) *
                            read.probability * st.exec_probability;
    }
    for (const std::string& name : participants) {
      ++digests[name].statements;
      for (const std::string& other : participants) {
        if (other != name) coupled[name].insert(other);
      }
    }
  }
  out.arrays.reserve(digests.size());
  for (auto& [name, digest] : digests) {
    const auto it = coupled.find(name);
    if (it != coupled.end()) {
      digest.coupled.assign(it->second.begin(), it->second.end());
    }
    out.arrays.push_back(std::move(digest));
  }

  return out;
}

const ArrayDigest* AccessSummary::digest_for(std::string_view array) const {
  for (const ArrayDigest& digest : arrays) {
    if (digest.array == array) return &digest;
  }
  return nullptr;
}

std::string AccessSummary::report() const {
  std::ostringstream os;
  os << "access summary for '" << program << "': " << statements.size()
     << " statement(s), ~" << total_reads << " reads, ~" << total_writes
     << " writes";
  if (reinit_count > 0) os << ", " << reinit_count << " REINIT";
  os << "\n  " << classification.rationale << '\n';
  for (const StatementAccess& st : statements) {
    os << "  " << st.array << " :=";
    if (st.is_reduction) os << " [reduction]";
    if (st.exec_probability < 1.0) os << " [p=" << st.exec_probability << "]";
    os << " nest(";
    for (std::size_t d = 0; d < st.loops.size(); ++d) {
      if (d) os << ", ";
      os << st.loops[d].var << 'x' << st.loops[d].trips
         << (st.loops[d].trips_exact ? "" : "~");
    }
    os << ") write ";
    if (!st.write_affine) {
      os << "non-affine";
    } else {
      os << "strides(";
      for (std::size_t d = 0; d < st.write_strides.size(); ++d) {
        if (d) os << ',';
        os << st.write_strides[d];
      }
      os << ')';
      if (st.write_start_known) os << " start " << st.write_start;
    }
    os << '\n';
    for (const ReadAccess& read : st.reads) {
      os << "    read " << read.array;
      if (read.self_accumulation) {
        os << " [register]";
      } else if (!read.affine) {
        os << " non-affine";
      } else {
        os << " strides(";
        for (std::size_t d = 0; d < read.strides.size(); ++d) {
          if (d) os << ',';
          os << read.strides[d];
        }
        os << ')';
        if (read.start_known) os << " start " << read.start;
      }
      if (read.probability < 1.0) os << " [p=" << read.probability << "]";
      os << '\n';
    }
  }
  for (const ArrayDigest& digest : arrays) {
    os << "  array " << digest.array << ": " << digest.elements
       << " elements, ~" << digest.reads << " reads, ~" << digest.writes
       << " writes";
    if (!digest.coupled.empty()) {
      os << ", coupled with ";
      for (std::size_t i = 0; i < digest.coupled.size(); ++i) {
        if (i) os << ", ";
        os << digest.coupled[i];
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace sap
