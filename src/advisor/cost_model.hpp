// Analytic partition cost model.
//
// Layer 2 of the partition advisor (DESIGN.md §7).  estimate_cost prices a
// candidate machine configuration — (PartitionKind, block-cyclic block,
// page size, cache) — against an AccessSummary without running a
// simulation.  Affine statements are costed exactly at *page* granularity:
// the write and each read advance linearly through the innermost loop, so
// ownership can only change at page boundaries, and walking boundary
// segments is ~page_size times cheaper than walking elements.  Non-affine
// or statically unknown accesses fall back to a decorrelated-owner model
// (a random page is remote with probability (N-1)/N).
//
// The model predicts the paper's headline metric (remote read fraction),
// remote-page traffic (fetches x page size), host-collect volume for
// scalar reductions (§9), and the per-PE write balance under the
// area-of-responsibility rule.  Predictions rank candidates; the advisor
// validates the top ranks with real Simulator::run calls.
#pragma once

#include <cstdint>
#include <string>

#include "advisor/access_summary.hpp"
#include "machine/config.hpp"
#include "stats/load_balance.hpp"

namespace sap {

struct CostEstimate {
  /// Memory reads priced (mirrors AccessSummary::total_reads).
  double total_reads = 0.0;
  /// Reads predicted to go over the network under the candidate's cache.
  double remote_reads = 0.0;
  /// Remote page transfers (each moves `page_size` elements).
  double page_fetches = 0.0;
  /// page_fetches x page size: the raw interconnect volume.
  double page_traffic_elements = 0.0;
  /// §9 host-collection volume: partial-result messages if every scalar
  /// reduction used the host-collect protocol instead of owner-computes.
  double host_collect_messages = 0.0;
  /// Committed writes and their predicted distribution over PEs.
  double writes = 0.0;
  LoadBalance write_balance;

  double remote_read_fraction() const noexcept {
    return total_reads > 0.0 ? remote_reads / total_reads : 0.0;
  }

  /// Ranking score, lower is better: the remote fraction, plus a small
  /// penalty for write imbalance (idle PEs) and a tie-break toward less
  /// raw page traffic.  Weights are documented in DESIGN.md §7.
  double score() const noexcept {
    const double imbalance =
        write_balance.imbalance() > 1.0 ? write_balance.imbalance() - 1.0
                                        : 0.0;
    const double traffic =
        total_reads > 0.0 ? page_traffic_elements / total_reads : 0.0;
    return remote_read_fraction() + 0.05 * imbalance + 1e-6 * traffic;
  }

  /// One-line human summary.
  std::string summary() const;
};

/// Prices `config` for the program digested in `summary`.
CostEstimate estimate_cost(const AccessSummary& summary,
                           const MachineConfig& config);

}  // namespace sap
