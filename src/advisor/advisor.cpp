#include "advisor/advisor.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "advisor/search.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/error.hpp"
#include "support/text_table.hpp"

namespace sap {

namespace {

bool same_assignment(const MachineConfig& a, const MachineConfig& b) {
  if (a.per_array.size() != b.per_array.size()) return false;
  for (std::size_t i = 0; i < a.per_array.size(); ++i) {
    if (a.per_array[i].array != b.per_array[i].array ||
        a.per_array[i].spec.canonical() != b.per_array[i].spec.canonical()) {
      return false;
    }
  }
  return true;
}

bool same_candidate_config(const MachineConfig& a, const MachineConfig& b) {
  return a.partition == b.partition && a.page_size == b.page_size &&
         a.cache_elements == b.cache_elements &&
         (a.partition != PartitionKind::kBlockCyclic ||
          a.block_cyclic_pages == b.block_cyclic_pages) &&
         same_assignment(a, b);
}

}  // namespace

std::string to_string(AdvisorStrategy strategy) {
  switch (strategy) {
    case AdvisorStrategy::kEnumerate:
      return "enumerate";
    case AdvisorStrategy::kBeam:
      return "beam";
    case AdvisorStrategy::kJoint:
      return "joint";
  }
  return "unknown";
}

AdvisorStrategy advisor_strategy_from_name(std::string_view name) {
  if (name == "enumerate") return AdvisorStrategy::kEnumerate;
  if (name == "beam") return AdvisorStrategy::kBeam;
  if (name == "joint") return AdvisorStrategy::kJoint;
  throw ConfigError("unknown advisor strategy '" + std::string(name) +
                    "' (expected 'enumerate', 'beam' or 'joint')");
}

std::string AdvisorCandidate::label() const {
  std::ostringstream os;
  switch (config.partition) {
    case PartitionKind::kModulo:
      os << "modulo";
      break;
    case PartitionKind::kBlock:
      os << "block";
      break;
    case PartitionKind::kBlockCyclic:
      os << "block-cyclic(b=" << config.block_cyclic_pages << ")";
      break;
  }
  os << " ps=" << config.page_size << " cache=" << config.cache_elements;
  if (!config.per_array.empty()) {
    os << " [";
    for (std::size_t i = 0; i < config.per_array.size(); ++i) {
      if (i > 0) os << ',';
      os << config.per_array[i].array << '='
         << sap::to_string(config.per_array[i].spec);
    }
    os << ']';
  }
  return os.str();
}

const AdvisorCandidate& AdvisorReport::best() const {
  SAP_CHECK(!candidates.empty(), "advisor report has no candidates");
  return candidates.front();
}

const AdvisorCandidate* AdvisorReport::baseline() const {
  for (const AdvisorCandidate& c : candidates) {
    if (c.is_baseline) return &c;
  }
  return nullptr;
}

std::string AdvisorReport::report() const {
  std::ostringstream os;
  os << "Partition advisor — " << program << " on " << base.num_pes
     << " PEs, cache " << base.cache_elements << " elements\n\n"
     << summary.report() << '\n';

  TextTable table({"rank", "candidate", "predicted", "measured", "score",
                   "notes"});
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const AdvisorCandidate& c = candidates[i];
    std::string notes;
    if (i == 0) notes = "<- recommended";
    if (c.is_baseline) {
      notes += notes.empty() ? "paper default" : " (paper default)";
    }
    table.add_row({std::to_string(i + 1), c.label(),
                   TextTable::pct(c.predicted.remote_read_fraction()),
                   c.validated ? TextTable::pct(c.measured_remote_fraction)
                               : std::string("-"),
                   TextTable::num(c.predicted.score(), 4), notes});
  }
  os << table.to_string() << '\n';

  const AdvisorCandidate& pick = best();
  const AdvisorCandidate* paper = baseline();
  os << "recommendation: " << pick.label() << " — measured "
     << TextTable::pct(pick.measured_remote_fraction) << " reads remote";
  if (paper && !pick.is_baseline) {
    os << " vs " << TextTable::pct(paper->measured_remote_fraction)
       << " under the paper's modulo default";
  }
  os << "\nrationale: " << summary.classification.rationale << "; "
     << pick.predicted.summary() << '\n';
  return os.str();
}

std::vector<AdvisorCandidate> enumerate_candidates(
    const MachineConfig& base, const AdvisorOptions& options) {
  // The candidate space in a fixed order: page size major, scheme minor,
  // so equal scores resolve the same way everywhere.  A malformed page
  // size is a caller error worth stopping on — silently skipping it (as
  // an invalid *combination* below is) would shrink the requested space
  // without a trace.  Repeats are collapsed up front so they cannot eat
  // the validation budget as duplicate candidates.
  std::vector<std::int64_t> page_sizes;
  for (const std::int64_t ps : options.page_sizes) {
    if (ps < 1) {
      throw ConfigError("advisor page size must be >= 1, got " +
                        std::to_string(ps));
    }
    if (std::find(page_sizes.begin(), page_sizes.end(), ps) ==
        page_sizes.end()) {
      page_sizes.push_back(ps);
    }
  }
  if (page_sizes.empty()) page_sizes = {base.page_size};
  std::vector<AdvisorCandidate> candidates;
  for (const std::int64_t ps : page_sizes) {
    for (const PartitionKind kind : options.kinds) {
      const std::vector<std::int64_t> blocks =
          kind == PartitionKind::kBlockCyclic ? options.block_cyclic_pages
                                              : std::vector<std::int64_t>{0};
      for (const std::int64_t block : blocks) {
        AdvisorCandidate c;
        c.config = base.with_partition(kind).with_page_size(ps);
        if (kind == PartitionKind::kBlockCyclic) {
          c.config.block_cyclic_pages = block;
        }
        // A candidate the machine cannot run (e.g. a page larger than
        // the cache) is skipped, not fatal: the rest of the space — the
        // baseline included — is still worth searching.
        try {
          c.config.validate();
        } catch (const ConfigError&) {
          continue;
        }
        const bool duplicate =
            std::any_of(candidates.begin(), candidates.end(),
                        [&](const AdvisorCandidate& other) {
                          return same_candidate_config(other.config, c.config);
                        });
        if (!duplicate) candidates.push_back(std::move(c));
      }
    }
  }
  // The paper's machine is always a candidate, whatever the options say.
  MachineConfig paper_config =
      base.with_partition(PartitionKind::kModulo);
  if (std::none_of(candidates.begin(), candidates.end(),
                   [&](const AdvisorCandidate& c) {
                     return same_candidate_config(c.config, paper_config);
                   })) {
    AdvisorCandidate c;
    c.config = paper_config;
    candidates.push_back(std::move(c));
  }
  for (AdvisorCandidate& c : candidates) {
    c.is_baseline = same_candidate_config(c.config, paper_config);
  }
  return candidates;
}

void rank_candidates(std::vector<AdvisorCandidate>& candidates) {
  std::vector<std::size_t> rank(candidates.size());
  std::iota(rank.begin(), rank.end(), 0);
  std::stable_sort(
      rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
        const AdvisorCandidate& ca = candidates[a];
        const AdvisorCandidate& cb = candidates[b];
        if (ca.validated != cb.validated) return ca.validated;
        if (ca.validated) {
          if (ca.measured_remote_fraction != cb.measured_remote_fraction) {
            return ca.measured_remote_fraction < cb.measured_remote_fraction;
          }
          if (ca.measured_write_imbalance != cb.measured_write_imbalance) {
            return ca.measured_write_imbalance < cb.measured_write_imbalance;
          }
        }
        return ca.predicted.score() < cb.predicted.score();
      });
  std::vector<AdvisorCandidate> ranked;
  ranked.reserve(candidates.size());
  for (const std::size_t idx : rank) {
    ranked.push_back(std::move(candidates[idx]));
  }
  candidates = std::move(ranked);
}

AdvisorReport advise(const CompiledProgram& compiled,
                     const MachineConfig& base, const AdvisorOptions& options,
                     ThreadPool* pool) {
  base.validate();
  if (options.strategy == AdvisorStrategy::kBeam) {
    return advise_beam(compiled, base, options, pool);
  }
  if (options.strategy == AdvisorStrategy::kJoint) {
    return advise_joint(compiled, base, options, pool);
  }

  static obs::Counter& reports = obs::counter("advisor/reports");
  reports.add(1);

  AdvisorReport report;
  report.program = compiled.name();
  report.base = base;
  report.summary = summarize_access(
      compiled, ClassifierConfig{base.page_size, base.cache_elements});

  std::vector<AdvisorCandidate> candidates;
  std::vector<std::size_t> to_validate;
  {
    const obs::Span span("advisor", "enumerate");

    // 1. Enumerate the candidate space.
    candidates = enumerate_candidates(base, options);

    // 2. Price every candidate with the analytic model (the prune).
    for (AdvisorCandidate& c : candidates) {
      c.predicted = estimate_cost(report.summary, c.config);
    }

    // 3. Pick the validation set: the top-k predicted plus the baseline.
    std::vector<std::size_t> order(candidates.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return candidates[a].predicted.score() <
                              candidates[b].predicted.score();
                     });
    for (const std::size_t idx : order) {
      if (to_validate.size() < options.validate_top_k) {
        to_validate.push_back(idx);
      }
    }
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].is_baseline &&
          std::find(to_validate.begin(), to_validate.end(), i) ==
              to_validate.end()) {
        to_validate.push_back(i);
      }
    }
    std::sort(to_validate.begin(), to_validate.end());
  }

  // 4. Validate: one independent Simulator::run per candidate, fanned
  //    across the pool as a single batch (the core sweep engine).
  const obs::Span validate_span("advisor", "validate");
  std::vector<SweepJob> jobs;
  jobs.reserve(to_validate.size());
  for (const std::size_t idx : to_validate) {
    jobs.push_back({&compiled, candidates[idx].config,
                    options.validation_mode});
  }
  const std::vector<SimulationResult> results =
      parallel_sweep_results(jobs, pool);
  for (std::size_t j = 0; j < to_validate.size(); ++j) {
    AdvisorCandidate& c = candidates[to_validate[j]];
    const SimulationResult& r = results[j];
    c.validated = true;
    c.measured_remote_fraction = r.remote_read_fraction();
    c.measured_remote_reads = r.totals.remote_reads;
    c.measured_total_reads = r.totals.total_reads();
    c.measured_write_imbalance = r.write_balance().imbalance();
    report.validated_count++;
  }

  // 5. Final ranking: validated first by measured cost (write imbalance
  //    and predicted score as tie-breaks), then unvalidated by predicted.
  rank_candidates(candidates);
  report.candidates = std::move(candidates);
  return report;
}

}  // namespace sap
