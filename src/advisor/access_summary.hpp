// Static access summaries: the advisor's view of a compiled program.
//
// Layer 1 of the partition advisor (DESIGN.md §7).  summarize_access walks
// the semantic facts of a CompiledProgram — no simulation, no array
// materialization — and extracts, per assignment statement, an affine
// descriptor of the write and of every read: element-space strides per
// enclosing loop, start offsets when they are compile-time constants, trip
// counts (exact where bounds are constant, estimated otherwise), and the
// reduction/commit structure.  The §7.1 static classification rides along
// so reports can name the paper's class.
//
// Everything here is in *element* space and page-size independent: one
// summary serves every candidate (PartitionKind, block size, page size)
// the cost model scores.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/simulator.hpp"
#include "frontend/classifier.hpp"

namespace sap {

/// One loop of a statement's enclosing nest, outermost first.
struct LoopDim {
  std::string var;
  /// Iterations; exact when the bounds are compile-time constants,
  /// otherwise an estimate (triangular bounds use the midpoint of the
  /// enclosing loops; scalar-driven bounds fall back to how far the
  /// write can travel inside its array).
  std::int64_t trips = 1;
  bool trips_exact = false;
};

/// One read reference of one statement, as an affine element walk.
struct ReadAccess {
  std::string array;
  std::int64_t array_elements = 0;

  /// False for indirect (permutation-style) indexing: strides/start are
  /// meaningless and the cost model uses the decorrelated-owner model.
  bool affine = false;
  /// Element stride per trip of each enclosing loop (aligned with
  /// StatementAccess::loops).  Valid when `affine`.
  std::vector<std::int64_t> strides;
  /// True when every stride resolved (loop steps compile-time constants).
  bool strides_known = false;
  /// Linear element index read at the first iteration of the whole nest,
  /// when statically known (constant offsets, constant loop lower bounds).
  std::int64_t start = 0;
  bool start_known = false;

  /// A reduction's read of its own target element: an owner-local
  /// register read, not memory traffic (§5) — excluded from totals.
  bool self_accumulation = false;

  /// Probability this read executes *given* the statement instance runs:
  /// 0.5 per enclosing SELECT arm (the untaken arm's reads never happen),
  /// 1.0 for unconditional reads.  Multiplies with the statement's
  /// exec_probability in the cost model.
  double probability = 1.0;
};

/// One array assignment with its loop nest, write descriptor and reads.
struct StatementAccess {
  std::string array;  // written array
  std::int64_t array_elements = 0;

  std::vector<LoopDim> loops;  // outermost first

  bool write_affine = false;
  std::vector<std::int64_t> write_strides;  // aligned with `loops`
  bool write_strides_known = false;
  std::int64_t write_start = 0;
  bool write_start_known = false;

  bool is_reduction = false;

  /// Probability that one structural instance actually executes: 0.5 per
  /// enclosing IF arm (the balanced-branch prior of probabilistic alias
  /// analysis), 1.0 for unguarded statements.  The cost model weights the
  /// statement's page traffic and writes by it — structural counts
  /// (instances, distinct_writes) stay unweighted.
  double exec_probability = 1.0;

  /// Statements that share an innermost loop share the executing PE's
  /// cache; the cost model counts read streams per group (ADI's overflow).
  std::int64_t loop_group = 0;

  /// Product of trip counts: statement instances executed.
  std::int64_t instances = 0;
  /// Committed writes: equals `instances` for plain assignments; for
  /// reductions, the number of *distinct* target elements (§5: the
  /// accumulation commits once per element).
  std::int64_t distinct_writes = 0;

  std::vector<ReadAccess> reads;

  /// Memory reads per full execution (self-accumulation excluded).
  std::int64_t memory_reads() const noexcept;
};

/// Per-array rollup across statements: how much traffic one array carries
/// and which arrays share a statement with it.  The joint advisor
/// (DESIGN.md §14) orders its coordinate descent by traffic and derives
/// group moves from the coupling sets — arrays that co-occur in a
/// statement constrain each other's best scheme (the executing PE follows
/// the writer's scheme, the read owner the reader's).
struct ArrayDigest {
  std::string array;
  std::int64_t elements = 0;
  /// Statements the array participates in (as the write target or a read).
  std::int64_t statements = 0;
  std::int64_t reads = 0;   // memory reads of this array
  std::int64_t writes = 0;  // committed writes into this array
  double expected_reads = 0.0;   // probability-weighted
  double expected_writes = 0.0;  // probability-weighted
  /// Arrays co-occurring with this one in at least one statement, sorted,
  /// self excluded.
  std::vector<std::string> coupled;

  double traffic() const noexcept { return expected_reads + expected_writes; }
};

/// The advisor's program digest.
struct AccessSummary {
  std::string program;
  std::vector<StatementAccess> statements;

  /// Per-array digests, sorted by array name.
  std::vector<ArrayDigest> arrays;

  /// Digest for `array`; nullptr when the program never touches it.
  const ArrayDigest* digest_for(std::string_view array) const;

  /// §7.1 static classification under the nominal machine (page size and
  /// cache the summary was taken with) — for reporting, not costing.
  ProgramClassification classification;

  std::int64_t reinit_count = 0;
  std::int64_t total_reads = 0;   // memory reads over all statements
  std::int64_t total_writes = 0;  // committed writes over all statements
  /// Probability-weighted totals (== the structural totals when the
  /// program has no conditionals).
  double expected_reads = 0.0;
  double expected_writes = 0.0;

  /// Human-readable multi-line digest.
  std::string report() const;
};

/// Extracts the summary.  `nominal` only parameterizes the embedded
/// classification (the affine descriptors are machine-independent).
AccessSummary summarize_access(const CompiledProgram& compiled,
                               const ClassifierConfig& nominal = {});

}  // namespace sap
