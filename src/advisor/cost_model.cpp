#include "advisor/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>
#include <sstream>
#include <vector>

#include "memory/page.hpp"
#include "partition/scheme.hpp"
#include "support/check.hpp"

namespace sap {

namespace {

/// Outer iteration-space cap: nests larger than this are sampled at a
/// deterministic stride and the tallies rescaled.  Keeps the model cheap
/// on big grids while staying exact for every kernel in the suite.
constexpr std::int64_t kMaxOuterSamples = 2048;

std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Per-read tallies accumulated by the page-segment walk.
struct ReadTally {
  bool analytic = false;       // walked exactly (affine, known start)
  bool counts_fetches = true;  // false: shares pages with an earlier read
  double local = 0.0;
  double remote_touches = 0.0;  // no-cache remote reads
  double fetches = 0.0;         // cache-on remote reads (page transfers)
  std::string stream_key;       // identity for cache-frame pressure
  std::int64_t invariant_repeat = 1;  // exact window revisits (see below)
  std::int64_t window_pages = 1;      // pages per innermost sweep
  // Streaming state carried across outer iterations.
  std::int64_t prev_page = std::numeric_limits<std::int64_t>::min();
  PeId prev_pe = std::numeric_limits<PeId>::max();
};

class CostModel {
 public:
  CostModel(const AccessSummary& summary, const MachineConfig& config)
      : summary_(summary),
        config_(config),
        default_scheme_(make_partition_scheme(config.partition,
                                              config.block_cyclic_pages)),
        ps_(config.page_size),
        pes_(config.num_pes),
        frames_(config.cache_elements > 0 ? config.cache_elements / ps_ : 0),
        per_pe_writes_(config.num_pes, 0.0) {
    named_schemes_.reserve(config.per_array.size());
    for (const ArrayPartitionOverride& o : config.per_array) {
      named_schemes_.emplace_back(
          o.array, make_partition_scheme(o.spec.partition,
                                         o.spec.block_cyclic_pages));
    }
  }

  CostEstimate run() {
    std::vector<std::vector<ReadTally>> tallies;
    tallies.reserve(summary_.statements.size());
    for (std::size_t s = 0; s < summary_.statements.size(); ++s) {
      tallies.push_back(price_statement(summary_.statements[s], s));
    }
    apply_frame_pressure(tallies);

    // Probability-weighted totals: a statement inside an IF arm only
    // contributes its traffic in the fraction of instances its guard
    // admits (AccessSummary::exec_probability — the per-tally weights are
    // already scaled inside price_statement).
    CostEstimate est;
    est.total_reads = summary_.expected_reads;
    est.writes = summary_.expected_writes;
    for (std::size_t s = 0; s < tallies.size(); ++s) {
      for (ReadTally& t : tallies[s]) {
        if (frames_ > 0) {
          est.remote_reads += t.fetches;
          est.page_fetches += t.fetches;
        } else {
          est.remote_reads += t.remote_touches;
          est.page_fetches += t.remote_touches;
        }
      }
      const StatementAccess& st = summary_.statements[s];
      if (st.is_reduction && st.distinct_writes == 1 && pes_ > 1) {
        est.host_collect_messages +=
            static_cast<double>(pes_ - 1) * st.exec_probability;
      }
    }
    est.page_traffic_elements = est.page_fetches * static_cast<double>(ps_);

    std::vector<std::uint64_t> writes_rounded(pes_, 0);
    for (std::uint32_t pe = 0; pe < pes_; ++pe) {
      writes_rounded[pe] =
          static_cast<std::uint64_t>(std::llround(per_pe_writes_[pe]));
    }
    est.write_balance = summarize_load(writes_rounded);
    return est;
  }

 private:
  /// The scheme governing `array` under the candidate's assignment (its
  /// override, else the machine-wide default) — the model's mirror of
  /// Partitioner::scheme_for.
  const PartitionScheme& scheme_for(const std::string& array) const {
    for (const auto& [name, scheme] : named_schemes_) {
      if (name == array) return *scheme;
    }
    return *default_scheme_;
  }

  PeId owner_of(const PartitionScheme& scheme, std::int64_t elements,
                std::int64_t linear) const {
    const std::int64_t clamped =
        std::clamp<std::int64_t>(linear, 0, std::max<std::int64_t>(
                                                elements - 1, 0));
    return scheme.owner(page_of(clamped, ps_),
                        page_count_for(elements, ps_), pes_);
  }

  /// Smallest k' > k where base + stride*k' lands on a different page;
  /// "never" for stride 0.
  static std::int64_t next_page_boundary(std::int64_t base,
                                         std::int64_t stride, std::int64_t k,
                                         std::int64_t ps) {
    if (stride == 0) return std::numeric_limits<std::int64_t>::max();
    const std::int64_t element = base + stride * k;
    const std::int64_t page = floor_div(element, ps);
    if (stride > 0) {
      return k + ceil_div((page + 1) * ps - element, stride);
    }
    return k + ceil_div(element - (page * ps - 1), -stride);
  }

  std::vector<ReadTally> price_statement(const StatementAccess& st,
                                         std::size_t stmt_index) {
    std::vector<ReadTally> tallies(st.reads.size());
    if (st.instances <= 0) return tallies;

    const bool write_analytic =
        st.write_affine && st.write_strides_known && st.write_start_known;

    // Merge reads that stream the same pages (e.g. ZX(k+10) next to
    // ZX(k+11)): followers touch pages the representative just fetched.
    std::int64_t synthetic_key = 0;
    for (std::size_t r = 0; r < st.reads.size(); ++r) {
      const ReadAccess& read = st.reads[r];
      if (read.self_accumulation) continue;
      tallies[r].analytic = write_analytic && read.affine &&
                            read.strides_known && read.start_known;
      if (tallies[r].analytic) {
        std::ostringstream key;
        key << read.array << '#';
        for (const std::int64_t s : read.strides) key << s << ',';
        key << '#' << floor_div(read.start, ps_);
        tallies[r].stream_key = key.str();
        for (std::size_t prev = 0; prev < r; ++prev) {
          if (!tallies[prev].analytic || !tallies[prev].counts_fetches ||
              st.reads[prev].array != read.array ||
              st.reads[prev].strides != read.strides) {
            continue;
          }
          if (std::llabs(st.reads[prev].start - read.start) < ps_) {
            tallies[r].counts_fetches = false;
            tallies[r].stream_key = tallies[prev].stream_key;
            break;
          }
        }
      } else {
        // Statement index keeps non-affine streams distinct across
        // statements of one loop group (frame-pressure counting).
        tallies[r].stream_key = read.array + "#?" +
                                std::to_string(stmt_index) + "." +
                                std::to_string(synthetic_key++);
      }
    }

    // Outer odometer (all loops but the innermost), sampled when huge.
    const std::size_t depth = st.loops.size();
    const std::size_t outer_dims = depth > 0 ? depth - 1 : 0;
    const std::int64_t inner_trips =
        depth > 0 ? std::max<std::int64_t>(st.loops[depth - 1].trips, 0) : 1;
    std::int64_t outer_total = 1;
    for (std::size_t d = 0; d < outer_dims; ++d) {
      outer_total *= std::max<std::int64_t>(st.loops[d].trips, 0);
    }
    if (outer_total <= 0 || inner_trips <= 0) return tallies;

    const std::int64_t sample_step =
        outer_total > kMaxOuterSamples ? ceil_div(outer_total, kMaxOuterSamples)
                                       : 1;
    const std::int64_t sampled = ceil_div(outer_total, sample_step);
    // exec_probability folds the guard into the walk: every touch, fetch
    // and write this statement contributes is scaled by how often its
    // enclosing IF arms admit it.
    const double weight = st.exec_probability *
                          static_cast<double>(outer_total) /
                          static_cast<double>(sampled);

    double raw_writes_total = 0.0;
    std::vector<double> raw_writes(pes_, 0.0);

    // Resolve each array's scheme once per statement: the executing PE
    // follows the *written* array's scheme (owner-computes), a read's
    // owner follows the *read* array's scheme — under a heterogeneous
    // assignment these can differ within one statement.
    const PartitionScheme& write_scheme = scheme_for(st.array);
    std::vector<const PartitionScheme*> read_schemes(st.reads.size());
    for (std::size_t r = 0; r < st.reads.size(); ++r) {
      read_schemes[r] = &scheme_for(st.reads[r].array);
    }

    if (write_analytic) {
      const std::int64_t sw = depth > 0 ? st.write_strides[depth - 1] : 0;
      std::vector<std::int64_t> combo(outer_dims, 0);
      for (std::int64_t o = 0; o < outer_total; o += sample_step) {
        // Decode the odometer (outermost = most significant digit).
        std::int64_t rest = o;
        for (std::size_t d = outer_dims; d-- > 0;) {
          combo[d] = rest % st.loops[d].trips;
          rest /= st.loops[d].trips;
        }
        std::int64_t wbase = st.write_start;
        for (std::size_t d = 0; d < outer_dims; ++d) {
          wbase += st.write_strides[d] * combo[d];
        }

        for (std::size_t r = 0; r < st.reads.size(); ++r) {
          const ReadAccess& read = st.reads[r];
          if (read.self_accumulation || !tallies[r].analytic) continue;
          std::int64_t rbase = read.start;
          for (std::size_t d = 0; d < outer_dims; ++d) {
            rbase += read.strides[d] * combo[d];
          }
          walk_one_read(st, read, tallies[r], write_scheme, *read_schemes[r],
                        wbase, sw, rbase,
                        read.strides.empty() ? 0 : read.strides[depth - 1],
                        inner_trips, weight);
        }
        walk_writes(st, raw_writes, write_scheme, wbase, sw, inner_trips,
                    weight);
      }
      for (std::uint32_t pe = 0; pe < pes_; ++pe) {
        raw_writes_total += raw_writes[pe];
      }
    }

    // Fallback pricing for reads the walk could not cover, and for the
    // whole statement when the write itself is not analyzable.
    price_fallback_reads(st, tallies);

    // Per-read probability (reads inside SELECT arms execute only when
    // their arm is taken): scale each read's tallies by it, on top of the
    // statement-level exec_probability already folded into the weights.
    for (std::size_t r = 0; r < st.reads.size(); ++r) {
      const double p = st.reads[r].probability;
      if (p >= 1.0) continue;
      tallies[r].local *= p;
      tallies[r].remote_touches *= p;
      tallies[r].fetches *= p;
    }

    // Exact-window revisits: outer loops (a contiguous suffix next to the
    // innermost one) in which neither the read nor the write advances
    // replay the identical page sequence on the identical PEs, so a
    // fitting window is fetched once and then served from cache.
    for (std::size_t r = 0; r < st.reads.size(); ++r) {
      const ReadAccess& read = st.reads[r];
      if (!tallies[r].analytic) continue;
      const std::int64_t sr = depth > 0 ? read.strides[depth - 1] : 0;
      tallies[r].window_pages =
          1 + std::llabs(sr) * std::max<std::int64_t>(inner_trips - 1, 0) /
                  ps_;
      for (std::size_t d = outer_dims; d-- > 0;) {
        if (read.strides[d] != 0 || st.write_strides[d] != 0) break;
        tallies[r].invariant_repeat *=
            std::max<std::int64_t>(st.loops[d].trips, 1);
      }
    }

    // Distribute the committed writes: proportionally to the walked
    // tallies when available, else to page ownership of the written array.
    const double writes =
        static_cast<double>(st.distinct_writes) * st.exec_probability;
    if (raw_writes_total > 0.0) {
      for (std::uint32_t pe = 0; pe < pes_; ++pe) {
        per_pe_writes_[pe] += writes * raw_writes[pe] / raw_writes_total;
      }
    } else {
      distribute_by_ownership(write_scheme, st.array_elements, writes);
    }
    return tallies;
  }

  /// Page-segment walk of one read against the executing PE through one
  /// innermost sweep.  Ownership can only flip where the write or the
  /// read crosses a page boundary, so segments — not elements — are
  /// visited.  A fetch is tallied when the stream enters a remote page it
  /// was not already holding (page change), or when the executing PE
  /// changes (per-PE caches: the new owner's cache is cold).
  void walk_one_read(const StatementAccess& st, const ReadAccess& read,
                     ReadTally& tally, const PartitionScheme& write_scheme,
                     const PartitionScheme& read_scheme, std::int64_t wbase,
                     std::int64_t sw, std::int64_t rbase, std::int64_t sr,
                     std::int64_t inner_trips, double weight) {
    std::int64_t k = 0;
    while (k < inner_trips) {
      const PeId exec_pe =
          owner_of(write_scheme, st.array_elements, wbase + sw * k);
      const std::int64_t element = rbase + sr * k;
      const PeId read_pe = owner_of(read_scheme, read.array_elements, element);
      const std::int64_t page = floor_div(element, ps_);
      const std::int64_t k_next =
          std::min({next_page_boundary(wbase, sw, k, ps_),
                    next_page_boundary(rbase, sr, k, ps_), inner_trips});
      const std::int64_t n = k_next - k;
      if (read_pe == exec_pe) {
        tally.local += weight * static_cast<double>(n);
      } else {
        tally.remote_touches += weight * static_cast<double>(n);
        if (tally.counts_fetches &&
            (page != tally.prev_page || exec_pe != tally.prev_pe)) {
          tally.fetches += weight;
        }
      }
      tally.prev_page = page;
      tally.prev_pe = exec_pe;
      k = k_next;
    }
  }

  void walk_writes(const StatementAccess& st, std::vector<double>& raw_writes,
                   const PartitionScheme& write_scheme, std::int64_t wbase,
                   std::int64_t sw, std::int64_t inner_trips, double weight) {
    std::int64_t k = 0;
    while (k < inner_trips) {
      const PeId pe =
          owner_of(write_scheme, st.array_elements, wbase + sw * k);
      const std::int64_t boundary =
          next_page_boundary(wbase, sw, k, ps_);
      const std::int64_t k_next = std::min(boundary, inner_trips);
      const std::int64_t n = k_next - k;
      if (st.is_reduction && sw == 0) {
        raw_writes[pe] += weight;  // one commit per (outer combo, target)
      } else {
        raw_writes[pe] += weight * static_cast<double>(n);
      }
      k = k_next;
    }
  }

  void price_fallback_reads(const StatementAccess& st,
                            std::vector<ReadTally>& tallies) {
    const double decorrelated =
        pes_ > 1 ? static_cast<double>(pes_ - 1) / static_cast<double>(pes_)
                 : 0.0;
    const std::size_t depth = st.loops.size();
    const std::int64_t inner_trips =
        depth > 0 ? std::max<std::int64_t>(st.loops[depth - 1].trips, 1) : 1;
    const double outer_total = st.exec_probability *
                               static_cast<double>(st.instances) /
                               static_cast<double>(inner_trips);
    for (std::size_t r = 0; r < st.reads.size(); ++r) {
      const ReadAccess& read = st.reads[r];
      ReadTally& tally = tallies[r];
      if (read.self_accumulation || tally.analytic) continue;
      const double touches =
          static_cast<double>(st.instances) * st.exec_probability;
      tally.remote_touches = touches * decorrelated;
      tally.local = touches - tally.remote_touches;
      if (read.affine && read.strides_known) {
        // Strides known, alignment not: one fetch per page the innermost
        // walk enters, owners decorrelated.
        const std::int64_t sr = depth > 0 ? read.strides[depth - 1] : 0;
        const double pages_per_sweep =
            1.0 + static_cast<double>(std::llabs(sr)) *
                      static_cast<double>(inner_trips - 1) /
                      static_cast<double>(ps_);
        tally.fetches = outer_total * pages_per_sweep * decorrelated;
      } else {
        // Indirect addressing: a permutation touch hits the cache only as
        // often as the cache covers the array (§7.1.4).
        const double coverage =
            read.array_elements > 0
                ? std::min(1.0, static_cast<double>(config_.cache_elements) /
                                    static_cast<double>(read.array_elements))
                : 1.0;
        tally.fetches = tally.remote_touches * (1.0 - coverage);
      }
    }
  }

  void distribute_by_ownership(const PartitionScheme& scheme,
                               std::int64_t elements, double writes) {
    if (elements <= 0 || writes <= 0.0) return;
    const std::int64_t pages = page_count_for(elements, ps_);
    std::vector<double> owned(pes_, 0.0);
    for (std::int64_t p = 0; p < pages; ++p) {
      owned[scheme.owner(p, pages, pes_)] +=
          static_cast<double>(page_valid_elements(p, elements, ps_));
    }
    for (std::uint32_t pe = 0; pe < pes_; ++pe) {
      per_pe_writes_[pe] += writes * owned[pe] / static_cast<double>(elements);
    }
  }

  /// §7.1.4's frame-pressure rule: statements sharing an innermost loop
  /// share the cache; when their concurrent remote streams outnumber the
  /// frames, the cache thrashes and stops collapsing touches to fetches
  /// (ADI's 12 streams vs 8 frames).  Also applies the exact-window reuse
  /// credit where the window fits the per-stream share of the frames.
  void apply_frame_pressure(std::vector<std::vector<ReadTally>>& tallies) {
    if (frames_ <= 0) return;
    std::set<std::pair<std::int64_t, std::string>> streams;
    for (std::size_t s = 0; s < tallies.size(); ++s) {
      const std::int64_t group = summary_.statements[s].loop_group;
      for (const ReadTally& t : tallies[s]) {
        if (t.remote_touches > 0.0) streams.insert({group, t.stream_key});
      }
    }
    std::vector<std::int64_t> group_streams;
    for (const auto& [group, key] : streams) {
      if (group >= static_cast<std::int64_t>(group_streams.size())) {
        group_streams.resize(group + 1, 0);
      }
      ++group_streams[group];
    }
    for (std::size_t s = 0; s < tallies.size(); ++s) {
      const std::int64_t group = summary_.statements[s].loop_group;
      const std::int64_t in_group =
          group < static_cast<std::int64_t>(group_streams.size())
              ? group_streams[group]
              : 0;
      for (ReadTally& t : tallies[s]) {
        if (in_group > frames_) {
          t.fetches = t.remote_touches;  // thrash: every touch refetches
          continue;
        }
        const std::int64_t share =
            std::max<std::int64_t>(frames_ / std::max<std::int64_t>(
                                                 in_group, 1),
                                   1);
        if (t.invariant_repeat > 1 && t.window_pages <= share) {
          t.fetches /= static_cast<double>(t.invariant_repeat);
        }
      }
    }
  }

  const AccessSummary& summary_;
  const MachineConfig& config_;
  std::unique_ptr<PartitionScheme> default_scheme_;
  std::vector<std::pair<std::string, std::unique_ptr<PartitionScheme>>>
      named_schemes_;
  std::int64_t ps_;
  std::uint32_t pes_;
  std::int64_t frames_;
  std::vector<double> per_pe_writes_;
};

}  // namespace

std::string CostEstimate::summary() const {
  std::ostringstream os;
  os << "predicted remote " << remote_reads << '/' << total_reads << " ("
     << remote_read_fraction() * 100.0 << "%), " << page_fetches
     << " fetches (" << page_traffic_elements << " elements), write imbalance "
     << write_balance.imbalance() << ", score " << score();
  return os.str();
}

CostEstimate estimate_cost(const AccessSummary& summary,
                           const MachineConfig& config) {
  config.validate();
  return CostModel(summary, config).run();
}

}  // namespace sap
