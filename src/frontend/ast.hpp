// Abstract syntax tree of the loop DSL.
//
// The AST doubles as the executable IR: the parser and the programmatic
// ProgramBuilder (core/program_builder.hpp) both produce it, the semantic
// analyzer annotates it, and the interpreters (core/) execute it directly.
// Nodes are variant-based; traversal helpers at the bottom keep client code
// free of std::visit boilerplate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "frontend/source_location.hpp"
#include "memory/array_shape.hpp"

namespace sap {

enum class BinaryOp { kAdd, kSub, kMul, kDiv };

/// Comparison operators.  A comparison is the DSL's only boolean-valued
/// primitive: it evaluates to 1.0 (true) or 0.0 (false) and may appear
/// only in boolean contexts (IF guards, SELECT conditions, AND/OR/NOT
/// operands) — sema rejects booleans used as numeric values and vice
/// versa.
enum class CompareOp { kLt, kLe, kGt, kGe, kEq, kNe };

/// kSelect is SELECT(cond, a, b): cond is evaluated first, then ONLY the
/// chosen operand — a real branch, so the two arms may have different
/// access densities (the conditional workloads the classifier and the
/// advisor's probability weights exist for).  kAnd/kOr/kNot are strict
/// over boolean operands.
enum class IntrinsicKind {
  kIDiv,
  kMod,
  kMin,
  kMax,
  kAbs,
  kAnd,
  kOr,
  kNot,
  kSelect,
};

std::string to_string(BinaryOp op);
std::string to_string(CompareOp op);
std::string to_string(IntrinsicKind kind);

/// Argument count of an intrinsic (kAbs/kNot: 1, kSelect: 3, rest: 2).
std::size_t intrinsic_arity(IntrinsicKind kind);

/// True for the boolean-valued expression forms (comparison, AND/OR/NOT).
bool is_boolean_expr(const struct Expr& expr);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Literal constant.
struct NumberLit {
  double value = 0.0;
};

/// Reference to a loop variable or scalar; sema distinguishes them.
struct VarRef {
  std::string name;
};

/// A(i, j+1) — also used as an assignment target.
struct ArrayRefExpr {
  std::string name;
  std::vector<ExprPtr> indices;
};

/// IDIV(a,b), MOD(a,b), MIN(a,b), MAX(a,b), ABS(a).  IDIV is the integer
/// division the Fortran originals perform on INTEGER scalars (II/2 in
/// ICCG); everything else is exact in double arithmetic.
struct IntrinsicExpr {
  IntrinsicKind kind = IntrinsicKind::kIDiv;
  std::vector<ExprPtr> args;
};

struct UnaryNeg {
  ExprPtr operand;
};

struct BinaryExpr {
  BinaryOp op = BinaryOp::kAdd;
  ExprPtr lhs;
  ExprPtr rhs;
};

/// lhs <op> rhs — boolean-valued (see CompareOp).  Both operands are
/// evaluated (left first), exactly like an arithmetic BinaryExpr.
struct CompareExpr {
  CompareOp op = CompareOp::kLt;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct Expr {
  SourceLocation loc;
  std::variant<NumberLit, VarRef, ArrayRefExpr, IntrinsicExpr, UnaryNeg,
               BinaryExpr, CompareExpr>
      node;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// A(indices) = value.  `is_reduction` is set by sema when the value
/// expression references the identical target element (e.g. Fortran's
/// W(i) = W(i) + ...): the converter/interpreters then treat it as an
/// owner-local accumulation with a single final commit, preserving the
/// element-wise single-assignment rule (§5 / DESIGN.md).
struct ArrayAssign {
  std::string array;
  std::vector<ExprPtr> indices;
  ExprPtr value;
  bool is_reduction = false;
};

/// name = value — replicated control arithmetic (induction scalars etc.).
struct ScalarAssign {
  std::string name;
  ExprPtr value;
};

/// DO var = lower, upper [, step] … END DO.  Bounds are evaluated at loop
/// entry (Fortran semantics); `step` defaults to 1 when null.
struct DoLoop {
  std::string var;
  ExprPtr lower;
  ExprPtr upper;
  ExprPtr step;  // may be null
  std::vector<StmtPtr> body;
};

/// IF (cond) THEN ... [ELSE ...] END IF.  The guard is *control*: it is
/// resolved sequentially (in the dataflow modes, by the trace pass, so the
/// per-PE instance streams stay deterministic under the sharded runtime),
/// and its array reads are replicated control operands that are not
/// modeled as memory traffic — the same rule loop bounds and trace-time
/// index resolution follow (§2: every PE runs a copy of the control).
/// Under single assignment the two arms may define the *same* cell: the
/// arms are mutually exclusive, so the merged definition is still unique
/// per execution (the DSA translation of conditionals; DESIGN.md).
struct IfStmt {
  ExprPtr cond;
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;  // empty when there is no ELSE
};

/// REINIT A — the §5 host-processor re-initialization protocol: every PE
/// requests the re-init of A; when the last request reaches A's host PE,
/// the array's cells become undefined again and caches are invalidated.
/// Inserted by the conversion tool for in-loop array reuse.
struct ReinitStmt {
  std::string array;
};

struct Stmt {
  SourceLocation loc;
  std::variant<ArrayAssign, ScalarAssign, DoLoop, IfStmt, ReinitStmt> node;
};

// ---------------------------------------------------------------------------
// Declarations / program
// ---------------------------------------------------------------------------

/// How an array is populated before execution (§3: "an array is either
/// undefined or filled with initialization data").
enum class InitMode {
  kNone,    // fully undefined; the program must produce it
  kAll,     // input data: every cell defined before execution
  kPrefix,  // first `init_prefix` linear cells defined (ICCG-style seed)
};

struct ArrayDecl {
  std::string name;
  std::vector<DimBound> dims;
  InitMode init = InitMode::kNone;
  std::int64_t init_prefix = 0;
  SourceLocation loc;
};

struct ScalarDecl {
  std::string name;
  double init = 0.0;
  SourceLocation loc;
};

struct Program {
  std::string name;
  std::vector<ArrayDecl> arrays;
  std::vector<ScalarDecl> scalars;
  std::vector<StmtPtr> body;
};

// ---------------------------------------------------------------------------
// Construction helpers (used by parser, builder, converter)
// ---------------------------------------------------------------------------

ExprPtr make_number(double value, SourceLocation loc = {});
ExprPtr make_var(std::string name, SourceLocation loc = {});
ExprPtr make_array_ref(std::string name, std::vector<ExprPtr> indices,
                       SourceLocation loc = {});
ExprPtr make_intrinsic(IntrinsicKind kind, std::vector<ExprPtr> args,
                       SourceLocation loc = {});
ExprPtr make_neg(ExprPtr operand, SourceLocation loc = {});
ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs,
                    SourceLocation loc = {});
ExprPtr make_compare(CompareOp op, ExprPtr lhs, ExprPtr rhs,
                     SourceLocation loc = {});

/// Deep copies.
ExprPtr clone(const Expr& expr);
StmtPtr clone(const Stmt& stmt);
Program clone(const Program& program);

/// Structural equality (used by sema's reduction detection and tests).
bool equal(const Expr& a, const Expr& b);

// ---------------------------------------------------------------------------
// Traversal helpers
// ---------------------------------------------------------------------------

/// Calls fn on every ArrayRefExpr in an expression tree (pre-order),
/// including refs nested inside index expressions (indirect addressing).
void for_each_array_ref(const Expr& expr,
                        const std::function<void(const ArrayRefExpr&)>& fn);

/// Calls fn on every statement, recursing into loop bodies (pre-order).
void for_each_stmt(const Program& program,
                   const std::function<void(const Stmt&)>& fn);

/// Calls fn on every VarRef name in an expression tree.
void for_each_var(const Expr& expr,
                  const std::function<void(const std::string&)>& fn);

}  // namespace sap
