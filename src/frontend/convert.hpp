// Automatic conversion of conventional loop programs to single-assignment
// form — the translator §5 sketches:
//
//   "Use an automatic conversion tool. For many conventional loops, this
//    conversion will be straight-forward and can be done by a translator
//    program. These translators will tend to increase the amount of memory
//    used for array storage…"
//
// Three rewrites, reported per action:
//   1. *Reduction marking* — W(i) = W(i) + e accumulates in an owner-local
//      register and commits once (keeps element-wise SA).
//   2. *Array versioning* — a second top-level statement overwriting an
//      already-produced array gets a fresh version A__2 (the memory-cost
//      trade §5 mentions); reads between the writes keep referring to the
//      old version.
//   3. *Re-init insertion* — an array rewritten on every iteration of an
//      enclosing loop cannot be statically renamed; a REINIT statement
//      (the §5 host-processor protocol) is inserted before the producing
//      statement inside that loop.
#pragma once

#include <string>
#include <vector>

#include "frontend/ast.hpp"

namespace sap {

enum class ConversionActionKind {
  kMarkedReduction,
  kRenamedVersion,
  kInsertedReinit,
};

std::string to_string(ConversionActionKind kind);

struct ConversionAction {
  ConversionActionKind kind = ConversionActionKind::kMarkedReduction;
  std::string array;
  std::string detail;
};

struct ConversionResult {
  Program program;  // single-assignment form
  std::vector<ConversionAction> actions;

  bool changed() const noexcept { return !actions.empty(); }
  std::string report() const;
};

/// Converts `input` (not modified) to single-assignment form.
/// Throws SemanticError when the input is not analyzable.
ConversionResult convert_to_single_assignment(const Program& input);

}  // namespace sap
