// Recursive-descent parser for the loop DSL.
//
// Grammar (newline-separated statements, case-insensitive keywords):
//
//   program  := PROGRAM ident NL { decl } { stmt } END PROGRAM
//   decl     := ARRAY ident '(' dim {',' dim} ')' [INIT init] NL
//             | SCALAR ident ['=' signed-number] NL
//   dim      := signed-int [':' signed-int]          (default lower = 1)
//   init     := ALL | NONE | PREFIX signed-int
//   stmt     := DO ident '=' expr ',' expr [',' expr] NL {stmt} END DO NL
//             | IF '(' expr ')' THEN NL {stmt} [ELSE NL {stmt}] END IF NL
//             | REINIT ident NL
//             | ident '(' expr {',' expr} ')' '=' expr NL    (array assign)
//             | ident '=' expr NL                            (scalar assign)
//   expr     := sum [('<'|'<='|'>'|'>='|'=='|'/=') sum]  (non-associative)
//   sum      := term {('+'|'-') term}
//   term     := factor {('*'|'/') factor}
//   factor   := ['+'|'-'] primary
//   primary  := number | '(' expr ')'
//             | ident ['(' expr {',' expr} ')']   (array ref or intrinsic)
//
// Comparisons are boolean-valued and non-associative (a < b < c is a parse
// error); sema enforces that booleans appear only in guard positions.
#pragma once

#include <string_view>
#include <vector>

#include "frontend/ast.hpp"
#include "frontend/token.hpp"

namespace sap {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens);

  /// Parses a full program; throws ParseError on malformed input.
  Program parse_program();

  /// Convenience: lex + parse in one step.
  static Program parse(std::string_view source);

 private:
  const Token& peek(int ahead = 0) const;
  const Token& advance();
  bool check(TokenKind kind) const;
  bool match(TokenKind kind);
  const Token& expect(TokenKind kind, const std::string& context);
  void expect_newline(const std::string& context);
  [[noreturn]] void fail(const std::string& message) const;

  ArrayDecl parse_array_decl();
  ScalarDecl parse_scalar_decl();
  std::int64_t parse_signed_int(const std::string& context);
  StmtPtr parse_stmt();
  StmtPtr parse_do_loop();
  StmtPtr parse_if();
  StmtPtr parse_assignment();
  ExprPtr parse_expr();
  ExprPtr parse_sum();
  ExprPtr parse_term();
  ExprPtr parse_factor();
  ExprPtr parse_primary();

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace sap
