#include "frontend/token.hpp"

namespace sap {

std::string to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kKwProgram: return "PROGRAM";
    case TokenKind::kKwEnd: return "END";
    case TokenKind::kKwArray: return "ARRAY";
    case TokenKind::kKwScalar: return "SCALAR";
    case TokenKind::kKwInit: return "INIT";
    case TokenKind::kKwAll: return "ALL";
    case TokenKind::kKwNone: return "NONE";
    case TokenKind::kKwPrefix: return "PREFIX";
    case TokenKind::kKwDo: return "DO";
    case TokenKind::kKwReinit: return "REINIT";
    case TokenKind::kKwIf: return "IF";
    case TokenKind::kKwThen: return "THEN";
    case TokenKind::kKwElse: return "ELSE";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kColon: return "':'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kEquals: return "'='";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kLessEqual: return "'<='";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kGreaterEqual: return "'>='";
    case TokenKind::kEqualEqual: return "'=='";
    case TokenKind::kNotEqual: return "'/='";
    case TokenKind::kNewline: return "newline";
    case TokenKind::kEndOfFile: return "end of file";
  }
  return "?";
}

}  // namespace sap
