#include "frontend/ast.hpp"

#include "support/check.hpp"

namespace sap {

std::string to_string(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
  }
  return "?";
}

std::string to_string(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
    case CompareOp::kEq: return "==";
    case CompareOp::kNe: return "/=";
  }
  return "?";
}

std::string to_string(IntrinsicKind kind) {
  switch (kind) {
    case IntrinsicKind::kIDiv: return "IDIV";
    case IntrinsicKind::kMod: return "MOD";
    case IntrinsicKind::kMin: return "MIN";
    case IntrinsicKind::kMax: return "MAX";
    case IntrinsicKind::kAbs: return "ABS";
    case IntrinsicKind::kAnd: return "AND";
    case IntrinsicKind::kOr: return "OR";
    case IntrinsicKind::kNot: return "NOT";
    case IntrinsicKind::kSelect: return "SELECT";
  }
  return "?";
}

std::size_t intrinsic_arity(IntrinsicKind kind) {
  switch (kind) {
    case IntrinsicKind::kAbs:
    case IntrinsicKind::kNot:
      return 1;
    case IntrinsicKind::kSelect:
      return 3;
    case IntrinsicKind::kIDiv:
    case IntrinsicKind::kMod:
    case IntrinsicKind::kMin:
    case IntrinsicKind::kMax:
    case IntrinsicKind::kAnd:
    case IntrinsicKind::kOr:
      return 2;
  }
  return 2;
}

bool is_boolean_expr(const Expr& expr) {
  if (std::holds_alternative<CompareExpr>(expr.node)) return true;
  const auto* intr = std::get_if<IntrinsicExpr>(&expr.node);
  return intr != nullptr &&
         (intr->kind == IntrinsicKind::kAnd ||
          intr->kind == IntrinsicKind::kOr ||
          intr->kind == IntrinsicKind::kNot);
}

ExprPtr make_number(double value, SourceLocation loc) {
  auto e = std::make_unique<Expr>();
  e->loc = loc;
  e->node = NumberLit{value};
  return e;
}

ExprPtr make_var(std::string name, SourceLocation loc) {
  auto e = std::make_unique<Expr>();
  e->loc = loc;
  e->node = VarRef{std::move(name)};
  return e;
}

ExprPtr make_array_ref(std::string name, std::vector<ExprPtr> indices,
                       SourceLocation loc) {
  auto e = std::make_unique<Expr>();
  e->loc = loc;
  e->node = ArrayRefExpr{std::move(name), std::move(indices)};
  return e;
}

ExprPtr make_intrinsic(IntrinsicKind kind, std::vector<ExprPtr> args,
                       SourceLocation loc) {
  auto e = std::make_unique<Expr>();
  e->loc = loc;
  e->node = IntrinsicExpr{kind, std::move(args)};
  return e;
}

ExprPtr make_neg(ExprPtr operand, SourceLocation loc) {
  auto e = std::make_unique<Expr>();
  e->loc = loc;
  e->node = UnaryNeg{std::move(operand)};
  return e;
}

ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs,
                    SourceLocation loc) {
  auto e = std::make_unique<Expr>();
  e->loc = loc;
  e->node = BinaryExpr{op, std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr make_compare(CompareOp op, ExprPtr lhs, ExprPtr rhs,
                     SourceLocation loc) {
  auto e = std::make_unique<Expr>();
  e->loc = loc;
  e->node = CompareExpr{op, std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr clone(const Expr& expr) {
  auto out = std::make_unique<Expr>();
  out->loc = expr.loc;
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, NumberLit>) {
          out->node = node;
        } else if constexpr (std::is_same_v<T, VarRef>) {
          out->node = node;
        } else if constexpr (std::is_same_v<T, ArrayRefExpr>) {
          ArrayRefExpr copy;
          copy.name = node.name;
          for (const auto& idx : node.indices) copy.indices.push_back(clone(*idx));
          out->node = std::move(copy);
        } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
          IntrinsicExpr copy;
          copy.kind = node.kind;
          for (const auto& a : node.args) copy.args.push_back(clone(*a));
          out->node = std::move(copy);
        } else if constexpr (std::is_same_v<T, UnaryNeg>) {
          out->node = UnaryNeg{clone(*node.operand)};
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          out->node = BinaryExpr{node.op, clone(*node.lhs), clone(*node.rhs)};
        } else if constexpr (std::is_same_v<T, CompareExpr>) {
          out->node = CompareExpr{node.op, clone(*node.lhs), clone(*node.rhs)};
        }
      },
      expr.node);
  return out;
}

StmtPtr clone(const Stmt& stmt) {
  auto out = std::make_unique<Stmt>();
  out->loc = stmt.loc;
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, ArrayAssign>) {
          ArrayAssign copy;
          copy.array = node.array;
          for (const auto& idx : node.indices) copy.indices.push_back(clone(*idx));
          copy.value = clone(*node.value);
          copy.is_reduction = node.is_reduction;
          out->node = std::move(copy);
        } else if constexpr (std::is_same_v<T, ScalarAssign>) {
          out->node = ScalarAssign{node.name, clone(*node.value)};
        } else if constexpr (std::is_same_v<T, DoLoop>) {
          DoLoop copy;
          copy.var = node.var;
          copy.lower = clone(*node.lower);
          copy.upper = clone(*node.upper);
          copy.step = node.step ? clone(*node.step) : nullptr;
          for (const auto& s : node.body) copy.body.push_back(clone(*s));
          out->node = std::move(copy);
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          IfStmt copy;
          copy.cond = clone(*node.cond);
          for (const auto& s : node.then_body) {
            copy.then_body.push_back(clone(*s));
          }
          for (const auto& s : node.else_body) {
            copy.else_body.push_back(clone(*s));
          }
          out->node = std::move(copy);
        } else if constexpr (std::is_same_v<T, ReinitStmt>) {
          out->node = node;
        }
      },
      stmt.node);
  return out;
}

Program clone(const Program& program) {
  Program out;
  out.name = program.name;
  out.arrays = program.arrays;
  out.scalars = program.scalars;
  for (const auto& s : program.body) out.body.push_back(clone(*s));
  return out;
}

bool equal(const Expr& a, const Expr& b) {
  if (a.node.index() != b.node.index()) return false;
  return std::visit(
      [&](const auto& na) -> bool {
        using T = std::decay_t<decltype(na)>;
        const auto& nb = std::get<T>(b.node);
        if constexpr (std::is_same_v<T, NumberLit>) {
          return na.value == nb.value;
        } else if constexpr (std::is_same_v<T, VarRef>) {
          return na.name == nb.name;
        } else if constexpr (std::is_same_v<T, ArrayRefExpr>) {
          if (na.name != nb.name || na.indices.size() != nb.indices.size()) {
            return false;
          }
          for (std::size_t i = 0; i < na.indices.size(); ++i) {
            if (!equal(*na.indices[i], *nb.indices[i])) return false;
          }
          return true;
        } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
          if (na.kind != nb.kind || na.args.size() != nb.args.size()) {
            return false;
          }
          for (std::size_t i = 0; i < na.args.size(); ++i) {
            if (!equal(*na.args[i], *nb.args[i])) return false;
          }
          return true;
        } else if constexpr (std::is_same_v<T, UnaryNeg>) {
          return equal(*na.operand, *nb.operand);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          return na.op == nb.op && equal(*na.lhs, *nb.lhs) &&
                 equal(*na.rhs, *nb.rhs);
        } else if constexpr (std::is_same_v<T, CompareExpr>) {
          return na.op == nb.op && equal(*na.lhs, *nb.lhs) &&
                 equal(*na.rhs, *nb.rhs);
        }
      },
      a.node);
}

void for_each_array_ref(const Expr& expr,
                        const std::function<void(const ArrayRefExpr&)>& fn) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, ArrayRefExpr>) {
          fn(node);
          for (const auto& idx : node.indices) for_each_array_ref(*idx, fn);
        } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
          for (const auto& a : node.args) for_each_array_ref(*a, fn);
        } else if constexpr (std::is_same_v<T, UnaryNeg>) {
          for_each_array_ref(*node.operand, fn);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          for_each_array_ref(*node.lhs, fn);
          for_each_array_ref(*node.rhs, fn);
        } else if constexpr (std::is_same_v<T, CompareExpr>) {
          for_each_array_ref(*node.lhs, fn);
          for_each_array_ref(*node.rhs, fn);
        }
      },
      expr.node);
}

namespace {

void walk_stmt(const Stmt& stmt, const std::function<void(const Stmt&)>& fn) {
  fn(stmt);
  if (const auto* loop = std::get_if<DoLoop>(&stmt.node)) {
    for (const auto& s : loop->body) walk_stmt(*s, fn);
  } else if (const auto* branch = std::get_if<IfStmt>(&stmt.node)) {
    for (const auto& s : branch->then_body) walk_stmt(*s, fn);
    for (const auto& s : branch->else_body) walk_stmt(*s, fn);
  }
}

}  // namespace

void for_each_stmt(const Program& program,
                   const std::function<void(const Stmt&)>& fn) {
  for (const auto& s : program.body) walk_stmt(*s, fn);
}

void for_each_var(const Expr& expr,
                  const std::function<void(const std::string&)>& fn) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, VarRef>) {
          fn(node.name);
        } else if constexpr (std::is_same_v<T, ArrayRefExpr>) {
          for (const auto& idx : node.indices) for_each_var(*idx, fn);
        } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
          for (const auto& a : node.args) for_each_var(*a, fn);
        } else if constexpr (std::is_same_v<T, UnaryNeg>) {
          for_each_var(*node.operand, fn);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          for_each_var(*node.lhs, fn);
          for_each_var(*node.rhs, fn);
        } else if constexpr (std::is_same_v<T, CompareExpr>) {
          for_each_var(*node.lhs, fn);
          for_each_var(*node.rhs, fn);
        }
      },
      expr.node);
}

}  // namespace sap
