// Affine analysis of index expressions.
//
// An index is *affine* when it is  sum(c_v * v) + c0  over loop variables
// and basic induction scalars.  The classifier compares, per statement, the
// element-space stride of each read against the write's stride — that
// single comparison is what separates the paper's Matched / Skewed / Cyclic
// classes; anything non-affine (indirect addressing, IDIV of a live scalar)
// falls into Random (§7.1.4: "permutation lookups").
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "frontend/sema.hpp"

namespace sap {

/// Context shared by the affine queries: the program, its semantic facts
/// and the loop nest enclosing the expression under analysis.
struct AffineContext {
  const Program* program = nullptr;
  const SemanticInfo* sema = nullptr;
  std::vector<const DoLoop*> loops;  // outermost first
};

/// sum(coeffs[v] * v) + constant.  `constant_known` is false when the
/// expression involves an induction scalar whose loop-entry value is not a
/// compile-time constant (strides are still exact; only the offset isn't).
struct AffineIndex {
  bool affine = false;
  bool constant_known = true;
  std::map<std::string, std::int64_t> coeffs;
  std::int64_t constant = 0;

  bool is_constant() const noexcept { return affine && coeffs.empty(); }
};

/// Affine form of a single index expression (index space, one dimension).
AffineIndex affine_of_index(const Expr& expr, const AffineContext& ctx);

/// Affine form of a whole array reference in *element* (linearized row-major)
/// space: per-dimension forms scaled by the array's strides and folded with
/// its lower bounds.  Non-affine if any dimension is.
AffineIndex element_affine(const ArrayRefExpr& ref, const ArrayShape& shape,
                           const AffineContext& ctx);

/// Element-stride of an affine form per one trip of `loop`: the loop
/// variable's coefficient times the loop step, plus every induction scalar
/// updated in that loop times its induction step.  nullopt when the loop
/// step is not a compile-time constant.
std::optional<std::int64_t> stride_per_trip(const AffineIndex& index,
                                            const DoLoop& loop,
                                            const AffineContext& ctx);

/// Evaluates an expression to a compile-time constant: literals, constant
/// scalars (declared init, never assigned) and arithmetic/intrinsics over
/// them.  nullopt otherwise.
std::optional<double> eval_const_expr(const Expr& expr,
                                      const AffineContext& ctx);

/// Constant trip count of a loop when lower/upper/step are compile-time
/// constants; nullopt otherwise (e.g. ICCG's scalar-driven bounds).
std::optional<std::int64_t> const_trip_count(const DoLoop& loop,
                                             const AffineContext& ctx);

}  // namespace sap
