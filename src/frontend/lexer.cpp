#include "frontend/lexer.hpp"

#include <cctype>
#include <charconv>
#include <unordered_map>

#include "support/error.hpp"

namespace sap {

namespace {

const std::unordered_map<std::string, TokenKind>& keyword_table() {
  static const std::unordered_map<std::string, TokenKind> table = {
      {"PROGRAM", TokenKind::kKwProgram}, {"END", TokenKind::kKwEnd},
      {"ARRAY", TokenKind::kKwArray},     {"SCALAR", TokenKind::kKwScalar},
      {"INIT", TokenKind::kKwInit},       {"ALL", TokenKind::kKwAll},
      {"NONE", TokenKind::kKwNone},       {"PREFIX", TokenKind::kKwPrefix},
      {"DO", TokenKind::kKwDo},
      {"REINIT", TokenKind::kKwReinit},
      {"IF", TokenKind::kKwIf},
      {"THEN", TokenKind::kKwThen},
      {"ELSE", TokenKind::kKwElse},
  };
  return table;
}

char to_upper(char c) {
  return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
}

}  // namespace

Lexer::Lexer(std::string_view source) : source_(source) {}

bool Lexer::at_end() const noexcept { return pos_ >= source_.size(); }

char Lexer::peek() const noexcept { return at_end() ? '\0' : source_[pos_]; }

char Lexer::advance() noexcept {
  const char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

SourceLocation Lexer::here() const noexcept { return {line_, column_}; }

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> tokens;
  for (;;) {
    Token token = next_token();
    const bool done = token.kind == TokenKind::kEndOfFile;
    // Collapse consecutive newlines; drop a leading newline.
    if (token.kind == TokenKind::kNewline &&
        (tokens.empty() || tokens.back().kind == TokenKind::kNewline)) {
      continue;
    }
    tokens.push_back(std::move(token));
    if (done) return tokens;
  }
}

Token Lexer::next_token() {
  // Skip horizontal whitespace and comments.
  while (!at_end()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r') {
      advance();
    } else if (c == '!' || c == '#') {
      while (!at_end() && peek() != '\n') advance();
    } else {
      break;
    }
  }

  const SourceLocation loc = here();
  if (at_end()) return {TokenKind::kEndOfFile, "", 0.0, loc};

  const char c = advance();
  switch (c) {
    case '\n': return {TokenKind::kNewline, "\n", 0.0, loc};
    case ';': return {TokenKind::kNewline, ";", 0.0, loc};
    case '(': return {TokenKind::kLParen, "(", 0.0, loc};
    case ')': return {TokenKind::kRParen, ")", 0.0, loc};
    case ',': return {TokenKind::kComma, ",", 0.0, loc};
    case ':': return {TokenKind::kColon, ":", 0.0, loc};
    case '+': return {TokenKind::kPlus, "+", 0.0, loc};
    case '-': return {TokenKind::kMinus, "-", 0.0, loc};
    case '*': return {TokenKind::kStar, "*", 0.0, loc};
    case '/':
      if (peek() == '=') {
        advance();
        return {TokenKind::kNotEqual, "/=", 0.0, loc};
      }
      return {TokenKind::kSlash, "/", 0.0, loc};
    case '=':
      if (peek() == '=') {
        advance();
        return {TokenKind::kEqualEqual, "==", 0.0, loc};
      }
      return {TokenKind::kEquals, "=", 0.0, loc};
    case '<':
      if (peek() == '=') {
        advance();
        return {TokenKind::kLessEqual, "<=", 0.0, loc};
      }
      return {TokenKind::kLess, "<", 0.0, loc};
    case '>':
      if (peek() == '=') {
        advance();
        return {TokenKind::kGreaterEqual, ">=", 0.0, loc};
      }
      return {TokenKind::kGreater, ">", 0.0, loc};
    default: break;
  }

  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(peek())))) {
    std::string text(1, c);
    bool seen_dot = c == '.';
    bool seen_exp = false;
    while (!at_end()) {
      const char n = peek();
      if (std::isdigit(static_cast<unsigned char>(n))) {
        text += advance();
      } else if (n == '.' && !seen_dot && !seen_exp) {
        seen_dot = true;
        text += advance();
      } else if ((n == 'e' || n == 'E') && !seen_exp) {
        seen_exp = true;
        text += advance();
        if (peek() == '+' || peek() == '-') text += advance();
      } else {
        break;
      }
    }
    double value = 0.0;
    const auto* begin = text.data();
    const auto* end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) {
      throw ParseError("malformed number '" + text + "'", loc.line,
                       loc.column);
    }
    return {TokenKind::kNumber, std::move(text), value, loc};
  }

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string text(1, to_upper(c));
    while (!at_end()) {
      const char n = peek();
      if (std::isalnum(static_cast<unsigned char>(n)) || n == '_') {
        text += to_upper(advance());
      } else {
        break;
      }
    }
    const auto& table = keyword_table();
    if (auto it = table.find(text); it != table.end()) {
      return {it->second, std::move(text), 0.0, loc};
    }
    return {TokenKind::kIdentifier, std::move(text), 0.0, loc};
  }

  throw ParseError(std::string("unexpected character '") + c + "'", loc.line,
                   loc.column);
}

}  // namespace sap
