// Tokens of the loop DSL.
//
// The DSL is a small Fortran-flavoured loop language sufficient to express
// the Livermore Loops in single-assignment form:
//
//   PROGRAM hydro
//   ARRAY  X(1001) INIT NONE
//   ARRAY  ZX(1012) INIT ALL
//   SCALAR Q = 0.5
//   DO k = 1, 400
//     X(k) = Q + ZX(k+10)
//   END DO
//   END PROGRAM
//
// Keywords and identifiers are case-insensitive (normalized to upper case);
// '!' starts a comment; newlines separate statements.
#pragma once

#include <string>

#include "frontend/source_location.hpp"

namespace sap {

enum class TokenKind {
  kIdentifier,
  kNumber,
  // Keywords.
  kKwProgram,
  kKwEnd,
  kKwArray,
  kKwScalar,
  kKwInit,
  kKwAll,
  kKwNone,
  kKwPrefix,
  kKwDo,
  kKwReinit,
  kKwIf,
  kKwThen,
  kKwElse,
  // Punctuation / operators.
  kLParen,
  kRParen,
  kComma,
  kColon,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kEquals,
  // Comparison operators (Fortran-flavoured: /= is not-equal).
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
  kEqualEqual,
  kNotEqual,
  kNewline,
  kEndOfFile,
};

std::string to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;     // normalized (upper case) for identifiers/keywords
  double number = 0.0;  // valid when kind == kNumber
  SourceLocation loc;
};

}  // namespace sap
