#include "frontend/sema.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace sap {

const ArrayDecl& SemanticInfo::array_decl(const Program& program,
                                          const std::string& name) const {
  auto it = arrays.find(name);
  if (it == arrays.end()) {
    throw SemanticError("unknown array '" + name + "'");
  }
  return program.arrays[it->second];
}

bool mutually_exclusive(const AssignSite& a, const AssignSite& b) {
  for (const ConditionalArm& arm_a : a.conditionals) {
    for (const ConditionalArm& arm_b : b.conditionals) {
      if (arm_a.stmt == arm_b.stmt && arm_a.in_else != arm_b.in_else) {
        return true;
      }
    }
  }
  return false;
}

namespace {

bool is_intrinsic_name(const std::string& name) {
  return name == "IDIV" || name == "MOD" || name == "MIN" || name == "MAX" ||
         name == "ABS" || name == "AND" || name == "OR" || name == "NOT" ||
         name == "SELECT";
}

class Analyzer {
 public:
  explicit Analyzer(Program& program) : program_(program) {}

  SemanticInfo run() {
    collect_declarations();
    for (auto& stmt : program_.body) visit_stmt(*stmt);
    detect_inductions();
    emit_warnings();
    return std::move(info_);
  }

 private:
  [[noreturn]] void error(const SourceLocation& loc,
                          const std::string& message) {
    throw SemanticError(message + " (at " + loc.to_string() + ")");
  }

  void collect_declarations() {
    for (std::size_t i = 0; i < program_.arrays.size(); ++i) {
      const auto& decl = program_.arrays[i];
      if (is_intrinsic_name(decl.name)) {
        error(decl.loc, "'" + decl.name + "' is a reserved intrinsic name");
      }
      if (!info_.arrays.emplace(decl.name, i).second) {
        error(decl.loc, "array '" + decl.name + "' declared twice");
      }
      if (decl.init == InitMode::kPrefix) {
        const ArrayShape shape(decl.dims);
        if (decl.init_prefix > shape.element_count()) {
          error(decl.loc, "INIT PREFIX exceeds array size of '" + decl.name +
                              "'");
        }
      }
    }
    for (std::size_t i = 0; i < program_.scalars.size(); ++i) {
      const auto& decl = program_.scalars[i];
      if (is_intrinsic_name(decl.name)) {
        error(decl.loc, "'" + decl.name + "' is a reserved intrinsic name");
      }
      if (info_.arrays.count(decl.name)) {
        error(decl.loc,
              "'" + decl.name + "' declared as both array and scalar");
      }
      ScalarInfo si;
      si.decl_index = i;
      if (!info_.scalars.emplace(decl.name, si).second) {
        error(decl.loc, "scalar '" + decl.name + "' declared twice");
      }
    }
  }

  bool is_loop_var(const std::string& name) const {
    return std::any_of(loop_stack_.begin(), loop_stack_.end(),
                       [&](const DoLoop* l) { return l->var == name; });
  }

  void visit_stmt(Stmt& stmt) {
    std::visit(
        [&](auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, ArrayAssign>) {
            visit_array_assign(stmt, node);
          } else if constexpr (std::is_same_v<T, ScalarAssign>) {
            visit_scalar_assign(stmt, node);
          } else if constexpr (std::is_same_v<T, DoLoop>) {
            visit_loop(stmt, node);
          } else if constexpr (std::is_same_v<T, IfStmt>) {
            visit_if(stmt, node);
          } else if constexpr (std::is_same_v<T, ReinitStmt>) {
            if (!info_.arrays.count(node.array)) {
              error(stmt.loc, "REINIT of undeclared array '" + node.array +
                                  "'");
            }
            const auto& decl =
                program_.arrays[info_.arrays.at(node.array)];
            if (decl.init == InitMode::kAll) {
              error(stmt.loc, "REINIT of INIT ALL input array '" +
                                  node.array + "' would lose its data");
            }
          }
        },
        stmt.node);
  }

  void visit_array_assign(Stmt& stmt, ArrayAssign& assign) {
    auto it = info_.arrays.find(assign.array);
    if (it == info_.arrays.end()) {
      error(stmt.loc, "assignment to undeclared array '" + assign.array + "'");
    }
    const auto& decl = program_.arrays[it->second];
    if (assign.indices.size() != decl.dims.size()) {
      error(stmt.loc, "array '" + assign.array + "' has rank " +
                          std::to_string(decl.dims.size()) + " but " +
                          std::to_string(assign.indices.size()) +
                          " indices were given");
    }
    if (decl.init == InitMode::kAll) {
      error(stmt.loc, "array '" + assign.array +
                          "' is INIT ALL input data and may not be written "
                          "(single assignment)");
    }
    for (const auto& idx : assign.indices) {
      visit_expr(*idx);
      require_numeric(*idx, "array index");
    }
    visit_expr(*assign.value);
    require_numeric(*assign.value, "assigned value");
    info_.written_arrays.insert(assign.array);

    // Reduction detection: the value references the identical element.
    const Expr target_probe{stmt.loc,
                            ArrayRefExpr{assign.array, clone_indices(assign)}};
    bool self_ref = false;
    for_each_array_ref(*assign.value, [&](const ArrayRefExpr& ref) {
      if (ref.name != assign.array ||
          ref.indices.size() != assign.indices.size()) {
        return;
      }
      bool same = true;
      for (std::size_t i = 0; i < ref.indices.size(); ++i) {
        if (!equal(*ref.indices[i], *assign.indices[i])) same = false;
      }
      if (same) self_ref = true;
    });
    assign.is_reduction = self_ref;

    AssignSite site;
    site.stmt = &stmt;
    site.assign = &assign;
    site.loops = loop_stack_;
    site.conditionals = cond_stack_;
    info_.assign_sites.push_back(std::move(site));
  }

  static std::vector<ExprPtr> clone_indices(const ArrayAssign& assign) {
    std::vector<ExprPtr> out;
    for (const auto& idx : assign.indices) out.push_back(clone(*idx));
    return out;
  }

  void visit_scalar_assign(Stmt& stmt, ScalarAssign& assign) {
    if (is_loop_var(assign.name)) {
      error(stmt.loc, "loop variable '" + assign.name +
                          "' may not be assigned inside its loop");
    }
    auto it = info_.scalars.find(assign.name);
    if (it == info_.scalars.end()) {
      error(stmt.loc,
            "assignment to undeclared scalar '" + assign.name + "'");
    }
    visit_expr(*assign.value);
    require_numeric(*assign.value, "assigned value");
    ++it->second.assign_count;
    scalar_updates_.push_back(
        {&assign, loop_stack_, !cond_stack_.empty()});
  }

  void visit_loop(Stmt& stmt, DoLoop& loop) {
    if (is_loop_var(loop.var)) {
      error(stmt.loc, "nested loops reuse variable '" + loop.var + "'");
    }
    if (info_.arrays.count(loop.var) || info_.scalars.count(loop.var)) {
      error(stmt.loc, "loop variable '" + loop.var +
                          "' shadows a declared array or scalar");
    }
    visit_expr(*loop.lower);
    require_numeric(*loop.lower, "loop bound");
    visit_expr(*loop.upper);
    require_numeric(*loop.upper, "loop bound");
    if (loop.step) {
      visit_expr(*loop.step);
      require_numeric(*loop.step, "loop step");
    }
    loop_stack_.push_back(&loop);
    for (auto& s : loop.body) visit_stmt(*s);
    loop_stack_.pop_back();
  }

  void visit_if(Stmt& stmt, IfStmt& branch) {
    visit_expr(*branch.cond);
    if (!is_boolean_expr(*branch.cond)) {
      error(stmt.loc,
            "IF condition must be a boolean expression (a comparison or "
            "AND/OR/NOT), not a numeric value");
    }
    cond_stack_.push_back({&branch, /*in_else=*/false});
    for (auto& s : branch.then_body) visit_stmt(*s);
    cond_stack_.back().in_else = true;
    for (auto& s : branch.else_body) visit_stmt(*s);
    cond_stack_.pop_back();
  }

  void require_boolean(const Expr& expr, const std::string& what) {
    if (!is_boolean_expr(expr)) {
      error(expr.loc, what + " must be a boolean expression (a comparison "
                          "or AND/OR/NOT)");
    }
  }

  void require_numeric(const Expr& expr, const std::string& what) {
    if (is_boolean_expr(expr)) {
      error(expr.loc, "boolean expression used as a " + what +
                          "; use SELECT(cond, a, b) to produce a value");
    }
  }

  void visit_expr(const Expr& expr) {
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, VarRef>) {
            if (!is_loop_var(node.name) && !info_.scalars.count(node.name)) {
              if (info_.arrays.count(node.name)) {
                error(expr.loc, "array '" + node.name +
                                    "' used without indices");
              }
              error(expr.loc, "undeclared identifier '" + node.name + "'");
            }
          } else if constexpr (std::is_same_v<T, ArrayRefExpr>) {
            auto it = info_.arrays.find(node.name);
            if (it == info_.arrays.end()) {
              error(expr.loc, "read of undeclared array '" + node.name + "'");
            }
            const auto& decl = program_.arrays[it->second];
            if (node.indices.size() != decl.dims.size()) {
              error(expr.loc, "array '" + node.name + "' has rank " +
                                  std::to_string(decl.dims.size()) + " but " +
                                  std::to_string(node.indices.size()) +
                                  " indices were given");
            }
            info_.read_arrays.insert(node.name);
            for (const auto& idx : node.indices) {
              visit_expr(*idx);
              require_numeric(*idx, "array index");
            }
          } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
            const std::size_t want = intrinsic_arity(node.kind);
            if (node.args.size() != want) {
              error(expr.loc, to_string(node.kind) + " expects " +
                                  std::to_string(want) + " argument(s)");
            }
            for (const auto& a : node.args) visit_expr(*a);
            switch (node.kind) {
              case IntrinsicKind::kAnd:
              case IntrinsicKind::kOr:
              case IntrinsicKind::kNot:
                for (const auto& a : node.args) {
                  require_boolean(*a, to_string(node.kind) + " operand");
                }
                break;
              case IntrinsicKind::kSelect:
                require_boolean(*node.args[0], "SELECT condition");
                require_numeric(*node.args[1], "SELECT operand");
                require_numeric(*node.args[2], "SELECT operand");
                break;
              default:
                for (const auto& a : node.args) {
                  require_numeric(*a, to_string(node.kind) + " operand");
                }
                break;
            }
          } else if constexpr (std::is_same_v<T, UnaryNeg>) {
            visit_expr(*node.operand);
            require_numeric(*node.operand, "operand of unary '-'");
          } else if constexpr (std::is_same_v<T, BinaryExpr>) {
            visit_expr(*node.lhs);
            visit_expr(*node.rhs);
            require_numeric(*node.lhs, "operand of '" + to_string(node.op) +
                                           "'");
            require_numeric(*node.rhs, "operand of '" + to_string(node.op) +
                                           "'");
          } else if constexpr (std::is_same_v<T, CompareExpr>) {
            visit_expr(*node.lhs);
            visit_expr(*node.rhs);
            require_numeric(*node.lhs, "comparison operand");
            require_numeric(*node.rhs, "comparison operand");
          }
        },
        expr.node);
  }

  void detect_inductions() {
    // A basic induction variable has exactly one *self-increment* update
    // (s = s + c / s = c + s / s = s - c, c a literal) inside a loop; any
    // other assignments (resets like ICCG's `i = ipntp`) must sit outside
    // that loop, so within one trip sequence the stride is exactly c.
    for (const auto& [assign, loops, guarded] : scalar_updates_) {
      auto& si = info_.scalars.at(assign->name);
      if (loops.empty()) continue;
      // A guarded update's stride is data-dependent: never an induction.
      if (guarded) continue;
      const auto* bin = std::get_if<BinaryExpr>(&assign->value->node);
      if (!bin) continue;
      const auto step_of = [&](const Expr& self,
                               const Expr& amount) -> std::optional<double> {
        const auto* var = std::get_if<VarRef>(&self.node);
        const auto* lit = std::get_if<NumberLit>(&amount.node);
        if (!var || var->name != assign->name || !lit) return std::nullopt;
        return lit->value;
      };
      std::optional<double> step;
      if (bin->op == BinaryOp::kAdd) {
        step = step_of(*bin->lhs, *bin->rhs);
        if (!step) step = step_of(*bin->rhs, *bin->lhs);
      } else if (bin->op == BinaryOp::kSub) {
        step = step_of(*bin->lhs, *bin->rhs);
        if (step) step = -*step;
      }
      if (!step) continue;

      const DoLoop* increment_loop = loops.back();
      bool conflicting = false;
      for (const auto& [other, other_loops, other_guarded] :
           scalar_updates_) {
        if (other == assign || other->name != assign->name) continue;
        // Another update inside the increment's loop breaks the stride.
        if (std::find(other_loops.begin(), other_loops.end(),
                      increment_loop) != other_loops.end()) {
          conflicting = true;
        }
      }
      if (conflicting || si.induction_step.has_value()) {
        // Two self-increments of the same scalar: not a basic induction.
        si.induction_step.reset();
        si.induction_loop = nullptr;
        continue;
      }
      si.induction_step = step;
      si.induction_loop = increment_loop;
    }
  }

  void emit_warnings() {
    for (const auto& decl : program_.arrays) {
      const bool written = info_.written_arrays.count(decl.name) != 0;
      const bool read = info_.read_arrays.count(decl.name) != 0;
      if (!written && !read) {
        info_.warnings.push_back("array '" + decl.name + "' is never used");
      } else if (!written && decl.init == InitMode::kNone) {
        info_.warnings.push_back("array '" + decl.name +
                                 "' is read but never written nor "
                                 "initialized (INIT NONE)");
      }
    }
  }

  struct ScalarUpdate {
    const ScalarAssign* assign = nullptr;
    std::vector<const DoLoop*> loops;
    bool guarded = false;  // inside an IF arm
  };

  Program& program_;
  SemanticInfo info_;
  std::vector<const DoLoop*> loop_stack_;
  std::vector<ConditionalArm> cond_stack_;
  std::vector<ScalarUpdate> scalar_updates_;
};

}  // namespace

SemanticInfo analyze(Program& program) {
  const obs::Span span("compile", "sema");
  static obs::Counter& runs = obs::counter("compile/sema_runs");
  runs.add(1);
  return Analyzer(program).run();
}

}  // namespace sap
