#include "frontend/affine.hpp"

#include <cmath>

#include "support/check.hpp"

namespace sap {

namespace {

constexpr double kIntegralTolerance = 1e-9;

bool is_integral(double v) {
  return std::abs(v - std::round(v)) < kIntegralTolerance;
}

AffineIndex non_affine() { return AffineIndex{}; }

AffineIndex constant_form(std::int64_t c) {
  AffineIndex out;
  out.affine = true;
  out.constant = c;
  return out;
}

AffineIndex add(const AffineIndex& a, const AffineIndex& b, bool subtract) {
  if (!a.affine || !b.affine) return non_affine();
  AffineIndex out = a;
  out.constant_known = a.constant_known && b.constant_known;
  for (const auto& [var, coeff] : b.coeffs) {
    out.coeffs[var] += subtract ? -coeff : coeff;
    if (out.coeffs[var] == 0) out.coeffs.erase(var);
  }
  out.constant += subtract ? -b.constant : b.constant;
  return out;
}

AffineIndex scale(const AffineIndex& a, std::int64_t factor) {
  AffineIndex out = a;
  if (!out.affine) return out;
  if (factor == 0) return constant_form(0);
  for (auto& [var, coeff] : out.coeffs) coeff *= factor;
  out.constant *= factor;
  return out;
}

bool is_loop_var(const std::string& name, const AffineContext& ctx) {
  for (const auto* loop : ctx.loops) {
    if (loop->var == name) return true;
  }
  return false;
}

}  // namespace

AffineIndex affine_of_index(const Expr& expr, const AffineContext& ctx) {
  SAP_CHECK(ctx.program && ctx.sema, "affine context incomplete");
  return std::visit(
      [&](const auto& node) -> AffineIndex {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, NumberLit>) {
          if (!is_integral(node.value)) return non_affine();
          return constant_form(static_cast<std::int64_t>(
              std::llround(node.value)));
        } else if constexpr (std::is_same_v<T, VarRef>) {
          if (is_loop_var(node.name, ctx)) {
            AffineIndex out;
            out.affine = true;
            out.coeffs[node.name] = 1;
            return out;
          }
          auto it = ctx.sema->scalars.find(node.name);
          if (it == ctx.sema->scalars.end()) return non_affine();
          const ScalarInfo& si = it->second;
          if (si.is_constant()) {
            const double v = ctx.program->scalars[si.decl_index].init;
            if (!is_integral(v)) return non_affine();
            return constant_form(static_cast<std::int64_t>(std::llround(v)));
          }
          if (si.induction_step && is_integral(*si.induction_step)) {
            // Basic induction variable: stride exact, base unknown.
            AffineIndex out;
            out.affine = true;
            out.constant_known = false;
            out.coeffs[node.name] = 1;
            return out;
          }
          return non_affine();
        } else if constexpr (std::is_same_v<T, ArrayRefExpr>) {
          return non_affine();  // indirect addressing
        } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
          // Constant-folding only; a live IDIV/MOD is not affine.
          const auto v = eval_const_expr(expr, ctx);
          if (v && is_integral(*v)) {
            return constant_form(static_cast<std::int64_t>(std::llround(*v)));
          }
          return non_affine();
        } else if constexpr (std::is_same_v<T, UnaryNeg>) {
          return scale(affine_of_index(*node.operand, ctx), -1);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          const AffineIndex lhs = affine_of_index(*node.lhs, ctx);
          const AffineIndex rhs = affine_of_index(*node.rhs, ctx);
          switch (node.op) {
            case BinaryOp::kAdd:
              return add(lhs, rhs, /*subtract=*/false);
            case BinaryOp::kSub:
              return add(lhs, rhs, /*subtract=*/true);
            case BinaryOp::kMul:
              if (lhs.is_constant() && lhs.constant_known) {
                return scale(rhs, lhs.constant);
              }
              if (rhs.is_constant() && rhs.constant_known) {
                return scale(lhs, rhs.constant);
              }
              return non_affine();
            case BinaryOp::kDiv: {
              // Exact division by a constant that divides every term.
              if (!rhs.is_constant() || !rhs.constant_known ||
                  rhs.constant == 0 || !lhs.affine) {
                return non_affine();
              }
              AffineIndex out = lhs;
              for (auto& [var, coeff] : out.coeffs) {
                if (coeff % rhs.constant != 0) return non_affine();
                coeff /= rhs.constant;
              }
              if (out.constant % rhs.constant != 0) return non_affine();
              out.constant /= rhs.constant;
              return out;
            }
          }
          return non_affine();
        } else if constexpr (std::is_same_v<T, CompareExpr>) {
          // Boolean-valued; never a legal index form (sema enforces it),
          // but const-folding keeps eval_const_expr-style callers exact.
          const auto v = eval_const_expr(expr, ctx);
          if (v && is_integral(*v)) {
            return constant_form(static_cast<std::int64_t>(std::llround(*v)));
          }
          return non_affine();
        }
      },
      expr.node);
}

AffineIndex element_affine(const ArrayRefExpr& ref, const ArrayShape& shape,
                           const AffineContext& ctx) {
  if (ref.indices.size() != shape.rank()) return non_affine();
  AffineIndex out = constant_form(0);
  for (std::size_t d = 0; d < shape.rank(); ++d) {
    AffineIndex dim = affine_of_index(*ref.indices[d], ctx);
    if (!dim.affine) return non_affine();
    dim.constant -= shape.dims()[d].lower;
    out = add(out, scale(dim, shape.stride(d)), /*subtract=*/false);
    if (!out.affine) return out;
  }
  return out;
}

std::optional<std::int64_t> stride_per_trip(const AffineIndex& index,
                                            const DoLoop& loop,
                                            const AffineContext& ctx) {
  if (!index.affine) return std::nullopt;
  std::int64_t step = 1;
  if (loop.step) {
    const auto v = eval_const_expr(*loop.step, ctx);
    if (!v || !is_integral(*v) || *v == 0.0) return std::nullopt;
    step = static_cast<std::int64_t>(std::llround(*v));
  }
  std::int64_t stride = 0;
  for (const auto& [var, coeff] : index.coeffs) {
    if (var == loop.var) {
      stride += coeff * step;
      continue;
    }
    const auto it = ctx.sema->scalars.find(var);
    if (it != ctx.sema->scalars.end() && it->second.induction_loop == &loop &&
        it->second.induction_step && is_integral(*it->second.induction_step)) {
      stride += coeff * static_cast<std::int64_t>(
                            std::llround(*it->second.induction_step));
    }
  }
  return stride;
}

std::optional<double> eval_const_expr(const Expr& expr,
                                      const AffineContext& ctx) {
  return std::visit(
      [&](const auto& node) -> std::optional<double> {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, NumberLit>) {
          return node.value;
        } else if constexpr (std::is_same_v<T, VarRef>) {
          const auto it = ctx.sema->scalars.find(node.name);
          if (it == ctx.sema->scalars.end() || !it->second.is_constant()) {
            return std::nullopt;
          }
          return ctx.program->scalars[it->second.decl_index].init;
        } else if constexpr (std::is_same_v<T, ArrayRefExpr>) {
          return std::nullopt;
        } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
          if (node.kind == IntrinsicKind::kSelect) {
            // Lazy like the evaluator: fold the condition, then only the
            // chosen operand.
            const auto cond = eval_const_expr(*node.args[0], ctx);
            if (!cond) return std::nullopt;
            return eval_const_expr(*node.args[*cond != 0.0 ? 1 : 2], ctx);
          }
          std::vector<double> args;
          for (const auto& a : node.args) {
            const auto v = eval_const_expr(*a, ctx);
            if (!v) return std::nullopt;
            args.push_back(*v);
          }
          switch (node.kind) {
            case IntrinsicKind::kIDiv:
              if (args[1] == 0.0) return std::nullopt;
              return std::trunc(args[0] / args[1]);
            case IntrinsicKind::kMod:
              if (args[1] == 0.0) return std::nullopt;
              return std::fmod(args[0], args[1]);
            case IntrinsicKind::kMin:
              return std::min(args[0], args[1]);
            case IntrinsicKind::kMax:
              return std::max(args[0], args[1]);
            case IntrinsicKind::kAbs:
              return std::abs(args[0]);
            case IntrinsicKind::kAnd:
              return args[0] != 0.0 && args[1] != 0.0 ? 1.0 : 0.0;
            case IntrinsicKind::kOr:
              return args[0] != 0.0 || args[1] != 0.0 ? 1.0 : 0.0;
            case IntrinsicKind::kNot:
              return args[0] == 0.0 ? 1.0 : 0.0;
            case IntrinsicKind::kSelect:
              break;  // handled above
          }
          return std::nullopt;
        } else if constexpr (std::is_same_v<T, UnaryNeg>) {
          const auto v = eval_const_expr(*node.operand, ctx);
          return v ? std::optional<double>(-*v) : std::nullopt;
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          const auto l = eval_const_expr(*node.lhs, ctx);
          const auto r = eval_const_expr(*node.rhs, ctx);
          if (!l || !r) return std::nullopt;
          switch (node.op) {
            case BinaryOp::kAdd: return *l + *r;
            case BinaryOp::kSub: return *l - *r;
            case BinaryOp::kMul: return *l * *r;
            case BinaryOp::kDiv:
              if (*r == 0.0) return std::nullopt;
              return *l / *r;
          }
          return std::nullopt;
        } else if constexpr (std::is_same_v<T, CompareExpr>) {
          const auto l = eval_const_expr(*node.lhs, ctx);
          const auto r = eval_const_expr(*node.rhs, ctx);
          if (!l || !r) return std::nullopt;
          switch (node.op) {
            case CompareOp::kLt: return *l < *r ? 1.0 : 0.0;
            case CompareOp::kLe: return *l <= *r ? 1.0 : 0.0;
            case CompareOp::kGt: return *l > *r ? 1.0 : 0.0;
            case CompareOp::kGe: return *l >= *r ? 1.0 : 0.0;
            case CompareOp::kEq: return *l == *r ? 1.0 : 0.0;
            case CompareOp::kNe: return *l != *r ? 1.0 : 0.0;
          }
          return std::nullopt;
        }
      },
      expr.node);
}

std::optional<std::int64_t> const_trip_count(const DoLoop& loop,
                                             const AffineContext& ctx) {
  const auto lo = eval_const_expr(*loop.lower, ctx);
  const auto hi = eval_const_expr(*loop.upper, ctx);
  if (!lo || !hi) return std::nullopt;
  double step = 1.0;
  if (loop.step) {
    const auto s = eval_const_expr(*loop.step, ctx);
    if (!s || *s == 0.0) return std::nullopt;
    step = *s;
  }
  const double trips = std::floor((*hi - *lo) / step) + 1.0;
  return trips < 0 ? 0 : static_cast<std::int64_t>(trips);
}

}  // namespace sap
