// Static single-assignment checking.
//
// §5 suggests "conventional compilers can be modified to perform data path
// analysis to help programmers adhere to single assignment rules" — this is
// that analysis.  For affine writes it proves or refutes the element-wise
// write-once property; where bounds are runtime values it reports a
// *possible* violation instead of a proof.  The dataflow machine still
// traps any actual double write at runtime (DoubleWriteError).
#pragma once

#include <string>
#include <vector>

#include "frontend/ast.hpp"
#include "frontend/sema.hpp"

namespace sap {

enum class SaFindingKind {
  kProvenViolation,    // statically certain double write
  kPossibleViolation,  // overlap cannot be excluded
  kReductionRewrite,   // self-accumulation handled as owner-local reduction
};

std::string to_string(SaFindingKind kind);

struct SaFinding {
  SaFindingKind kind = SaFindingKind::kPossibleViolation;
  std::string array;
  std::string message;
};

struct SaCheckResult {
  std::vector<SaFinding> findings;

  bool has_proven_violation() const noexcept;
  std::string report() const;
};

SaCheckResult check_single_assignment(const Program& program,
                                      const SemanticInfo& sema);

}  // namespace sap
