// Static access-pattern classification (§7.1's four classes).
//
// Per innermost loop, every read of every array assignment is compared
// against the write it feeds, in element (linearized) space:
//
//   Matched  — identical affine form (same strides in every loop, zero
//              offset): the read always lands on the written page's PE.
//   Skewed   — same strides, constant nonzero offset, single varying loop.
//   Cyclic   — stride mismatch against the commit loop (ICCG: the write
//              "changes twice as slowly as the read"), a reduction walking
//              a bounded window, or a multi-dimensional offset access whose
//              page set is revisited by an outer loop (2-D Hydro).
//   Random   — non-affine indexing (indirect/permutation), reduction
//              windows larger than the cache, page-jumping strides beyond
//              cache reach, or too many distinct read streams for the
//              cache frames (ADI's 12 streams vs 8 frames).
//
// Classification is relative to a machine configuration (page size and
// cache capacity) because the paper's classes are behavioural: the same
// loop can be Cyclic with a big cache and Random with a tiny one (§7.1.4).
// The empirical classifier (core/empirical_classifier.hpp) derives the
// class from simulation sweeps instead; tests cross-validate the two on
// the Livermore suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/affine.hpp"
#include "frontend/ast.hpp"
#include "frontend/sema.hpp"

namespace sap {

enum class AccessClass : int {
  kMatched = 0,
  kSkewed = 1,
  kCyclic = 2,
  kRandom = 3,
};

std::string to_string(AccessClass cls);

struct ClassifierConfig {
  std::int64_t page_size = 32;
  std::int64_t cache_elements = 256;  // the paper's fixed cache

  std::int64_t cache_frames() const noexcept {
    return page_size > 0 ? cache_elements / page_size : 0;
  }
};

/// Verdict for one read reference.
struct ReadClassification {
  std::string array;
  AccessClass cls = AccessClass::kMatched;
  std::int64_t skew = 0;  // element offset, meaningful for kSkewed
  bool skew_known = false;
  std::string rationale;
};

/// Verdict for one innermost loop (or the straight-line top level).
struct LoopClassification {
  const DoLoop* loop = nullptr;  // null for straight-line statements
  AccessClass cls = AccessClass::kMatched;
  std::int64_t read_stream_count = 0;
  /// Statements of this group whose access density is data-dependent —
  /// inside an IF arm, or branching through a SELECT (Table 1's
  /// "conditional" column; the advisor weights them by execution
  /// probability).
  std::int64_t guarded_sites = 0;
  std::int64_t total_sites = 0;
  std::vector<ReadClassification> reads;
  std::string rationale;

  bool conditional() const noexcept { return guarded_sites > 0; }
};

struct ProgramClassification {
  AccessClass cls = AccessClass::kMatched;
  std::vector<LoopClassification> loops;
  std::string rationale;
  /// Conditional assignment sites (IF-guarded or SELECT-branching),
  /// program-wide.
  std::int64_t guarded_sites = 0;

  bool conditional() const noexcept { return guarded_sites > 0; }

  /// Human-readable multi-line report.
  std::string report() const;
};

ProgramClassification classify_program(const Program& program,
                                       const SemanticInfo& sema,
                                       const ClassifierConfig& config = {});

}  // namespace sap
