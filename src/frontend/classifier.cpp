#include "frontend/classifier.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "support/check.hpp"

namespace sap {

std::string to_string(AccessClass cls) {
  switch (cls) {
    case AccessClass::kMatched: return "matched";
    case AccessClass::kSkewed: return "skewed";
    case AccessClass::kCyclic: return "cyclic";
    case AccessClass::kRandom: return "random";
  }
  return "?";
}

namespace {

AccessClass worse(AccessClass a, AccessClass b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

/// Does the expression branch (a SELECT whose arms have different reads)?
bool contains_select(const Expr& expr) {
  return std::visit(
      [&](const auto& node) -> bool {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, ArrayRefExpr>) {
          for (const auto& idx : node.indices) {
            if (contains_select(*idx)) return true;
          }
          return false;
        } else if constexpr (std::is_same_v<T, IntrinsicExpr>) {
          if (node.kind == IntrinsicKind::kSelect) return true;
          for (const auto& a : node.args) {
            if (contains_select(*a)) return true;
          }
          return false;
        } else if constexpr (std::is_same_v<T, UnaryNeg>) {
          return contains_select(*node.operand);
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          return contains_select(*node.lhs) || contains_select(*node.rhs);
        } else if constexpr (std::is_same_v<T, CompareExpr>) {
          return contains_select(*node.lhs) || contains_select(*node.rhs);
        } else {
          return false;
        }
      },
      expr.node);
}

/// Is the statement's access density data-dependent — under an IF arm, or
/// reading through a SELECT branch?
bool site_is_conditional(const AssignSite& site) {
  if (!site.conditionals.empty()) return true;
  if (contains_select(*site.assign->value)) return true;
  for (const auto& idx : site.assign->indices) {
    if (contains_select(*idx)) return true;
  }
  return false;
}

class Classifier {
 public:
  Classifier(const Program& program, const SemanticInfo& sema,
             const ClassifierConfig& config)
      : program_(program), sema_(sema), config_(config) {}

  ProgramClassification run() {
    // Group assignment sites by their innermost loop: statements sharing a
    // loop body share the executing PE's cache, so stream pressure is a
    // per-loop property (ADI only misbehaves because its three statements
    // together overflow the frames).
    std::map<const DoLoop*, std::vector<const AssignSite*>> groups;
    for (const auto& site : sema_.assign_sites) {
      const DoLoop* key = site.loops.empty() ? nullptr : site.loops.back();
      groups[key].push_back(&site);
    }

    ProgramClassification out;
    for (const auto& [loop, sites] : groups) {
      out.loops.push_back(classify_group(loop, sites));
      out.cls = worse(out.cls, out.loops.back().cls);
      out.guarded_sites += out.loops.back().guarded_sites;
    }
    std::ostringstream why;
    why << "program class = " << to_string(out.cls) << " over "
        << out.loops.size() << " loop group(s)";
    if (out.guarded_sites > 0) {
      why << "; " << out.guarded_sites
          << " conditional statement(s) (IF-guarded or SELECT-branching)";
    }
    out.rationale = why.str();
    return out;
  }

 private:
  const ArrayShape shape_of(const std::string& array) const {
    return ArrayShape(program_.arrays[sema_.arrays.at(array)].dims);
  }

  std::int64_t estimate_trips(const DoLoop& loop, const AffineContext& ctx,
                              const AffineIndex& aff,
                              const std::string& array) const {
    if (const auto t = const_trip_count(loop, ctx)) return std::max<std::int64_t>(*t, 0);
    // Bounds are runtime scalars (ICCG, GLR): bound the walk by how far the
    // affine form can travel inside the array.
    const auto stride = stride_per_trip(aff, loop, ctx);
    const std::int64_t s = stride ? std::max<std::int64_t>(std::llabs(*stride), 1) : 1;
    return shape_of(array).element_count() / s;
  }

  LoopClassification classify_group(const DoLoop* loop,
                                    const std::vector<const AssignSite*>& sites) {
    LoopClassification lc;
    lc.loop = loop;
    std::set<std::string> streams;
    std::int64_t unknown_stream_id = 0;

    for (const AssignSite* site : sites) {
      AffineContext ctx{&program_, &sema_, site->loops};
      const ArrayAssign& assign = *site->assign;
      ++lc.total_sites;
      if (site_is_conditional(*site)) ++lc.guarded_sites;

      // Write side.
      ArrayRefExpr target;
      target.name = assign.array;
      for (const auto& idx : assign.indices) target.indices.push_back(clone(*idx));
      const AffineIndex write_aff =
          element_affine(target, shape_of(assign.array), ctx);
      if (!write_aff.affine) {
        lc.cls = AccessClass::kRandom;
        lc.rationale = "non-affine write index on '" + assign.array + "'";
        continue;
      }

      // Commit loop: the innermost enclosing loop in which the written
      // element actually advances.  For reductions the write is invariant
      // in the accumulation loops; those become the "inner window".
      const DoLoop* commit = nullptr;
      std::size_t commit_depth = site->loops.size();
      for (std::size_t d = site->loops.size(); d-- > 0;) {
        const auto s = stride_per_trip(write_aff, *site->loops[d], ctx);
        if (s && *s != 0) {
          commit = site->loops[d];
          commit_depth = d;
          break;
        }
      }

      for_each_array_ref(*assign.value, [&](const ArrayRefExpr& ref) {
        // The self-accumulation ref of a reduction is an owner-local
        // register read, not a memory access stream.
        if (assign.is_reduction && ref.name == assign.array &&
            ref.indices.size() == assign.indices.size()) {
          bool same = true;
          for (std::size_t i = 0; i < ref.indices.size(); ++i) {
            if (!equal(*ref.indices[i], *assign.indices[i])) same = false;
          }
          if (same) return;
        }
        ReadClassification rc = classify_read(ref, write_aff, commit,
                                              commit_depth, *site, ctx);
        add_stream_key(streams, ref, rc, ctx, unknown_stream_id);
        lc.cls = worse(lc.cls, rc.cls);
        lc.reads.push_back(std::move(rc));
      });
    }

    lc.read_stream_count = static_cast<std::int64_t>(streams.size());
    const std::int64_t frames = config_.cache_frames();
    if (frames > 0 && lc.read_stream_count > frames &&
        lc.cls != AccessClass::kRandom) {
      lc.cls = AccessClass::kRandom;
      lc.rationale = std::to_string(lc.read_stream_count) +
                     " concurrent read streams exceed " +
                     std::to_string(frames) + " cache frames";
    }
    if (lc.rationale.empty()) {
      lc.rationale = "dominant read class is " + to_string(lc.cls);
    }
    return lc;
  }

  ReadClassification classify_read(const ArrayRefExpr& ref,
                                   const AffineIndex& write_aff,
                                   const DoLoop* commit,
                                   std::size_t commit_depth,
                                   const AssignSite& site,
                                   const AffineContext& ctx) {
    ReadClassification rc;
    rc.array = ref.name;
    const AffineIndex aff = element_affine(ref, shape_of(ref.name), ctx);
    if (!aff.affine) {
      rc.cls = AccessClass::kRandom;
      rc.rationale = "non-affine (indirect) index";
      return rc;
    }
    const std::int64_t frames = config_.cache_frames();

    // Inner accumulation window: loops inside the commit loop, or — for a
    // target invariant across the whole nest (dot-product style) — every
    // enclosing loop.  Whether the window hurts depends on *revisits*: a
    // single streaming pass has sequential locality no matter its size,
    // while a window re-walked by an outer loop must fit the cache frames
    // (GLR's column walk and matmul's CX are the paper's Random cases).
    const std::size_t window_start = commit ? commit_depth + 1 : 0;
    for (std::size_t d = window_start; d < site.loops.size(); ++d) {
      const auto sri = stride_per_trip(aff, *site.loops[d], ctx);
      if (!sri) {
        rc.cls = AccessClass::kRandom;
        rc.rationale = "unresolvable inner stride";
        return rc;
      }
      if (*sri == 0) continue;
      const std::int64_t trips =
          estimate_trips(*site.loops[d], ctx, aff, ref.name);
      const std::int64_t span = std::llabs(*sri) * trips;
      const std::int64_t pages =
          span / std::max<std::int64_t>(config_.page_size, 1) + 1;

      bool revisited = false;
      for (std::size_t o = 0; o < d; ++o) {
        const auto so = stride_per_trip(aff, *site.loops[o], ctx);
        const auto outer_trips = const_trip_count(*site.loops[o], ctx);
        const bool multi_trip = !outer_trips || *outer_trips > 1;
        if (so && multi_trip && std::llabs(*so) < span) revisited = true;
      }

      if (revisited) {
        if (frames > 0 && pages > frames) {
          rc.cls = AccessClass::kRandom;
          rc.rationale = "accumulation window of ~" + std::to_string(pages) +
                         " pages is revisited but exceeds " +
                         std::to_string(frames) + " cache frames";
        } else {
          rc.cls = AccessClass::kCyclic;
          rc.rationale = "accumulation window of ~" + std::to_string(pages) +
                         " pages revisited by outer sweeps";
        }
      } else if (std::llabs(*sri) <= config_.page_size) {
        // Sequential stream consumed once per commit: without a cache the
        // off-owner pages are all remote; with one, a single fetch serves
        // the whole page — the cache-rescue behaviour of the cyclic class.
        rc.cls = AccessClass::kCyclic;
        rc.rationale =
            "single-pass streaming accumulation read (one fetch per page)";
      } else {
        rc.cls = AccessClass::kRandom;
        rc.rationale = "single-pass page-jumping read (stride " +
                       std::to_string(*sri) + " > page size)";
      }
      return rc;
    }

    if (commit == nullptr) {
      // Straight-line statement or nest-invariant write whose reads are
      // also invariant: a single cached cell.
      rc.cls = AccessClass::kMatched;
      rc.rationale = "constant access";
      return rc;
    }

    const auto sw_opt = stride_per_trip(write_aff, *commit, ctx);
    const auto sr_opt = stride_per_trip(aff, *commit, ctx);
    if (!sw_opt || !sr_opt) {
      rc.cls = AccessClass::kRandom;
      rc.rationale = "unresolvable stride";
      return rc;
    }
    const std::int64_t sw = *sw_opt;
    const std::int64_t sr = *sr_opt;

    if (sr == sw) {
      // Outer-loop strides decide between matched / skewed / cyclic.
      bool outer_equal = true;
      bool varying_outer = false;
      for (std::size_t d = 0; d < commit_depth; ++d) {
        const auto so_r = stride_per_trip(aff, *site.loops[d], ctx);
        const auto so_w = stride_per_trip(write_aff, *site.loops[d], ctx);
        if (!so_r || !so_w || *so_r != *so_w) outer_equal = false;
        if (so_r && *so_r != 0) varying_outer = true;
      }
      if (aff.constant_known && write_aff.constant_known) {
        const std::int64_t delta = aff.constant - write_aff.constant;
        rc.skew = delta;
        rc.skew_known = true;
        if (delta == 0 && outer_equal) {
          rc.cls = AccessClass::kMatched;
          rc.rationale = "identical index pattern";
          return rc;
        }
        if (!outer_equal) {
          rc.cls = AccessClass::kCyclic;
          rc.rationale = "outer-loop stride mismatch";
          return rc;
        }
        if (varying_outer) {
          rc.cls = AccessClass::kCyclic;
          rc.rationale = "multi-dimensional skew: offset " +
                         std::to_string(delta) +
                         " revisited by outer sweeps";
          return rc;
        }
        rc.cls = AccessClass::kSkewed;
        rc.rationale = "constant skew of " + std::to_string(delta) +
                       " elements";
        return rc;
      }
      rc.cls = AccessClass::kSkewed;
      rc.rationale = "matching strides, statically unknown offset";
      return rc;
    }

    // Stride mismatch against the commit loop.
    if (sr == 0) {
      bool varying_outer = false;
      for (std::size_t d = 0; d < commit_depth; ++d) {
        const auto so = stride_per_trip(aff, *site.loops[d], ctx);
        if (so && *so != 0) varying_outer = true;
      }
      if (!varying_outer) {
        rc.cls = AccessClass::kMatched;
        rc.rationale = "loop-invariant read (single cached page)";
      } else {
        rc.cls = AccessClass::kMatched;
        rc.rationale = "inner-invariant read, advances with outer loop";
      }
      return rc;
    }

    if (std::llabs(sr) > config_.page_size) {
      const std::int64_t trips = estimate_trips(*commit, ctx, aff, ref.name);
      if (frames > 0 && trips > frames) {
        rc.cls = AccessClass::kRandom;
        rc.rationale = "page-jumping stride " + std::to_string(sr) +
                       " over ~" + std::to_string(trips) +
                       " trips exceeds cache reach";
        return rc;
      }
    }
    rc.cls = AccessClass::kCyclic;
    rc.rationale = "stride mismatch: read advances " + std::to_string(sr) +
                   " vs write " + std::to_string(sw) + " per iteration";
    return rc;
  }

  void add_stream_key(std::set<std::string>& streams, const ArrayRefExpr& ref,
                      const ReadClassification& rc, const AffineContext& ctx,
                      std::int64_t& unknown_stream_id) {
    // Fully matched reads stay on the writing PE and never occupy a cache
    // frame; everything else forms a (array, strides, page-offset) stream.
    if (rc.cls == AccessClass::kMatched && rc.skew_known && rc.skew == 0) {
      return;
    }
    const AffineIndex aff = element_affine(ref, shape_of(ref.name), ctx);
    std::ostringstream key;
    key << ref.name << '#';
    if (!aff.affine) {
      key << "nonaffine#" << unknown_stream_id++;
    } else {
      for (const auto& [var, coeff] : aff.coeffs) {
        key << var << '*' << coeff << ',';
      }
      key << '#';
      if (aff.constant_known) {
        const double group = static_cast<double>(aff.constant) /
                             static_cast<double>(std::max<std::int64_t>(
                                 config_.page_size, 1));
        key << std::llround(group);
      } else {
        key << 'u' << unknown_stream_id++;
      }
    }
    streams.insert(key.str());
  }

  const Program& program_;
  const SemanticInfo& sema_;
  ClassifierConfig config_;
};

}  // namespace

std::string ProgramClassification::report() const {
  std::ostringstream os;
  os << rationale << '\n';
  for (const auto& lc : loops) {
    os << "  loop " << (lc.loop ? lc.loop->var : std::string("<top>"))
       << ": " << to_string(lc.cls) << " (" << lc.rationale << "; "
       << lc.read_stream_count << " stream(s)";
    if (lc.conditional()) {
      os << "; " << lc.guarded_sites << "/" << lc.total_sites
         << " guarded site(s)";
    }
    os << ")\n";
    for (const auto& rc : lc.reads) {
      os << "    read " << rc.array << ": " << to_string(rc.cls) << " — "
         << rc.rationale << '\n';
    }
  }
  return os.str();
}

ProgramClassification classify_program(const Program& program,
                                       const SemanticInfo& sema,
                                       const ClassifierConfig& config) {
  return Classifier(program, sema, config).run();
}

}  // namespace sap
