// Semantic analysis: name resolution, rank checking, reduction detection
// and the bookkeeping later passes build on (assignment sites with their
// enclosing loop nests, scalar constancy / induction-variable facts).
//
// `analyze` mutates the Program only by setting ArrayAssign::is_reduction
// where the value expression references the *identical* target element —
// Fortran's `W(i) = W(i) + ...` accumulation idiom, which the paper's
// single-assignment rule would otherwise trap (see DESIGN.md).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "frontend/ast.hpp"

namespace sap {

/// One arm of an enclosing IF: which statement, and which branch.
struct ConditionalArm {
  const IfStmt* stmt = nullptr;
  bool in_else = false;
};

/// One array assignment and the DO loops that enclose it, outermost first.
struct AssignSite {
  const Stmt* stmt = nullptr;
  const ArrayAssign* assign = nullptr;
  std::vector<const DoLoop*> loops;
  /// Enclosing IF arms, outermost first (empty for unguarded statements).
  /// Two sites sharing an IfStmt with *different* arms are mutually
  /// exclusive — the single-assignment checker merges their definitions
  /// per the DSA translation of conditionals.
  std::vector<ConditionalArm> conditionals;
};

/// Do the two sites sit in different arms of one shared IF (and can
/// therefore never both execute in the same control instance)?
bool mutually_exclusive(const AssignSite& a, const AssignSite& b);

/// Facts about one declared scalar.
struct ScalarInfo {
  std::size_t decl_index = 0;
  int assign_count = 0;

  /// Constant: never assigned in the body; its declared init is its value.
  bool is_constant() const noexcept { return assign_count == 0; }

  /// Set when the scalar is a *basic induction variable*: exactly one
  /// assignment, of the form s = s + c (c literal), inside a loop.
  std::optional<double> induction_step;
  /// The innermost loop containing the induction update.
  const DoLoop* induction_loop = nullptr;
};

struct SemanticInfo {
  std::map<std::string, std::size_t> arrays;  // name -> Program::arrays index
  std::map<std::string, ScalarInfo> scalars;
  std::vector<AssignSite> assign_sites;
  std::set<std::string> written_arrays;
  std::set<std::string> read_arrays;
  std::vector<std::string> warnings;

  const ArrayDecl& array_decl(const Program& program,
                              const std::string& name) const;
};

/// Full semantic check; throws SemanticError on the first hard error.
SemanticInfo analyze(Program& program);

}  // namespace sap
