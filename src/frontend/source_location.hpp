// Source positions for diagnostics.
#pragma once

#include <string>

namespace sap {

struct SourceLocation {
  int line = 0;    // 1-based; 0 = synthesized (e.g. by ProgramBuilder)
  int column = 0;  // 1-based

  bool is_synthesized() const noexcept { return line == 0; }
  std::string to_string() const;
};

}  // namespace sap
