// AST pretty-printer: renders a Program back to DSL source text.
//
// Round-trip property (parse(print(p)) structurally equals p up to
// formatting) is exercised by the frontend tests; the conversion tool uses
// the printer for its before/after reports.
#pragma once

#include <string>

#include "frontend/ast.hpp"

namespace sap {

std::string print_expr(const Expr& expr);
std::string print_stmt(const Stmt& stmt, int indent = 0);
std::string print_program(const Program& program);

}  // namespace sap
